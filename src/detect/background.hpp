// Background estimation for a fixed-viewpoint stream.
//
// The SDD's reference image is "usually computed as the average of dozens of
// background frames" (Section 3.2.1). A plain mean is corrupted by whatever
// moves through the calibration window, so we use the standard robust
// alternative: a per-pixel temporal median over frames sampled across the
// window. Transient objects occupy a minority of samples per pixel and drop
// out of the median.
#pragma once

#include <vector>

#include "image/image.hpp"

namespace ffsva::detect {

class BackgroundEstimator {
 public:
  /// `max_samples`: number of frames kept for the median (memory bound).
  explicit BackgroundEstimator(int max_samples = 25) : max_samples_(max_samples) {}

  /// Offer a frame; frames after the first must share its shape. Keeps every
  /// k-th offer once the buffer is full (reservoir-free striding).
  void add(const image::Image& frame);

  /// Per-pixel median of the collected samples. Empty if none collected.
  image::Image estimate() const;

  int sample_count() const { return static_cast<int>(samples_.size()); }
  bool ready() const { return !samples_.empty(); }

 private:
  int max_samples_;
  std::size_t offers_ = 0;
  std::vector<image::Image> samples_;
};

}  // namespace ffsva::detect
