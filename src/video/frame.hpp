// Frame: the unit of work flowing through the FFS-VA pipeline.
//
// Each frame carries its pixels plus provenance (stream id, index, pts).
// Ground truth is attached by the synthetic scene simulator for *evaluation
// only* — no filter reads it; the accuracy experiments compare filter output
// against the reference model and against this ground truth exactly as the
// paper compares FFS-VA's survivors against full YOLOv2 output (Section 5.3).
#pragma once

#include <cstdint>
#include <vector>

#include "image/geometry.hpp"
#include "image/image.hpp"

namespace ffsva::video {

enum class ObjectClass : std::uint8_t { kCar = 0, kPerson = 1, kBus = 2 };

const char* to_string(ObjectClass cls);

/// One simulated object instance as rendered into a frame.
struct GtObject {
  ObjectClass cls = ObjectClass::kCar;
  image::Box full_box;            ///< May extend beyond the frame.
  image::Box visible_box;         ///< Clipped to the frame.
  double visible_fraction = 1.0;  ///< visible_box.area / full_box.area.
  int object_id = 0;              ///< Stable across the object's lifetime.
};

/// Ground truth for one frame.
struct GroundTruth {
  std::vector<GtObject> objects;

  /// Number of objects of `cls` with at least `min_visible` of their area
  /// inside the frame.
  int count(ObjectClass cls, double min_visible = 0.15) const {
    int n = 0;
    for (const auto& o : objects) {
      if (o.cls == cls && o.visible_fraction >= min_visible) ++n;
    }
    return n;
  }

  bool any(ObjectClass cls, double min_visible = 0.15) const {
    return count(cls, min_visible) > 0;
  }

  /// Target-group count: a "car" target counts all vehicles (car + bus),
  /// matching what a traffic camera is deployed to watch; a "person" target
  /// counts persons only.
  int count_target(ObjectClass target, double min_visible = 0.15) const {
    int n = count(target, min_visible);
    if (target == ObjectClass::kCar) n += count(ObjectClass::kBus, min_visible);
    return n;
  }

  bool any_target(ObjectClass target, double min_visible = 0.15) const {
    return count_target(target, min_visible) > 0;
  }
};

struct Frame {
  image::Image image;
  int stream_id = 0;
  std::int64_t index = 0;
  double pts_sec = 0.0;
  GroundTruth gt;
};

}  // namespace ffsva::video
