
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/detect/background_test.cpp" "tests/CMakeFiles/detect_tests.dir/detect/background_test.cpp.o" "gcc" "tests/CMakeFiles/detect_tests.dir/detect/background_test.cpp.o.d"
  "/root/repo/tests/detect/multi_snm_test.cpp" "tests/CMakeFiles/detect_tests.dir/detect/multi_snm_test.cpp.o" "gcc" "tests/CMakeFiles/detect_tests.dir/detect/multi_snm_test.cpp.o.d"
  "/root/repo/tests/detect/reference_test.cpp" "tests/CMakeFiles/detect_tests.dir/detect/reference_test.cpp.o" "gcc" "tests/CMakeFiles/detect_tests.dir/detect/reference_test.cpp.o.d"
  "/root/repo/tests/detect/scene_change_test.cpp" "tests/CMakeFiles/detect_tests.dir/detect/scene_change_test.cpp.o" "gcc" "tests/CMakeFiles/detect_tests.dir/detect/scene_change_test.cpp.o.d"
  "/root/repo/tests/detect/sdd_metric_sweep_test.cpp" "tests/CMakeFiles/detect_tests.dir/detect/sdd_metric_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/detect_tests.dir/detect/sdd_metric_sweep_test.cpp.o.d"
  "/root/repo/tests/detect/sdd_test.cpp" "tests/CMakeFiles/detect_tests.dir/detect/sdd_test.cpp.o" "gcc" "tests/CMakeFiles/detect_tests.dir/detect/sdd_test.cpp.o.d"
  "/root/repo/tests/detect/segmentation_test.cpp" "tests/CMakeFiles/detect_tests.dir/detect/segmentation_test.cpp.o" "gcc" "tests/CMakeFiles/detect_tests.dir/detect/segmentation_test.cpp.o.d"
  "/root/repo/tests/detect/snm_test.cpp" "tests/CMakeFiles/detect_tests.dir/detect/snm_test.cpp.o" "gcc" "tests/CMakeFiles/detect_tests.dir/detect/snm_test.cpp.o.d"
  "/root/repo/tests/detect/specialize_test.cpp" "tests/CMakeFiles/detect_tests.dir/detect/specialize_test.cpp.o" "gcc" "tests/CMakeFiles/detect_tests.dir/detect/specialize_test.cpp.o.d"
  "/root/repo/tests/detect/tyolo_test.cpp" "tests/CMakeFiles/detect_tests.dir/detect/tyolo_test.cpp.o" "gcc" "tests/CMakeFiles/detect_tests.dir/detect/tyolo_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ffsva_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ffsva_core.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/ffsva_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/ffsva_video.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ffsva_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/ffsva_image.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ffsva_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
