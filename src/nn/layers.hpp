// Neural-network layers with forward + backward passes.
//
// Each layer caches what it needs from the forward pass; backward() returns
// the gradient w.r.t. the input and accumulates parameter gradients, which
// the optimizer consumes and zeroes. All backward implementations are
// validated against central-difference numerical gradients in the tests.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "nn/gemm.hpp"
#include "nn/tensor.hpp"
#include "runtime/rng.hpp"

namespace ffsva::nn {

/// A trainable parameter: value and accumulated gradient.
struct Param {
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
};

/// Reusable buffers for Sequential::forward_inference(): GEMM packing /
/// im2col staging plus the two ping-pong activation tensors the layer
/// chain alternates between. After one warming forward per input shape,
/// every buffer has reached its steady-state capacity and repeated
/// inference performs zero heap allocations.
struct InferenceScratch {
  GemmScratch gemm;
  Tensor acts[2];
};

class Layer {
 public:
  virtual ~Layer() = default;

  virtual Tensor forward(const Tensor& x, bool train) = 0;
  virtual Tensor backward(const Tensor& grad_out) = 0;
  virtual std::vector<Param> params() { return {}; }
  virtual std::string name() const = 0;

  /// Inference-only forward into a caller-owned output (x and y must be
  /// distinct). Allocation-free once y and ws are warm. The default
  /// falls back to the allocating forward().
  virtual void forward_into(const Tensor& x, Tensor& y, GemmScratch& ws);
};

/// 2-D convolution (im2col + GEMM), zero padding, square kernel.
class Conv2d final : public Layer {
 public:
  Conv2d(int in_channels, int out_channels, int kernel, int stride, int pad,
         runtime::Xoshiro256& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void forward_into(const Tensor& x, Tensor& y, GemmScratch& ws) override;
  std::vector<Param> params() override;
  std::string name() const override { return "conv2d"; }

  int out_h(int in_h) const { return (in_h + 2 * pad_ - kernel_) / stride_ + 1; }
  int out_w(int in_w) const { return (in_w + 2 * pad_ - kernel_) / stride_ + 1; }

  /// Inference path selection: the im2col+GEMM lowering (nn/gemm.hpp) is
  /// the default; the direct loop remains for verification and training
  /// caches. Both produce identical results up to FP reassociation.
  void set_use_im2col(bool on) { use_im2col_ = on; }
  bool use_im2col() const { return use_im2col_; }

  Tensor weight;  ///< [out_ch, in_ch, k, k]
  Tensor bias;    ///< [out_ch, 1, 1, 1]
  Tensor weight_grad;
  Tensor bias_grad;

 private:
  int in_ch_, out_ch_, kernel_, stride_, pad_;
  bool use_im2col_ = true;
  Tensor cached_input_;
};

/// 2x2-or-larger max pooling with argmax routing on backward.
class MaxPool2d final : public Layer {
 public:
  MaxPool2d(int kernel, int stride);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void forward_into(const Tensor& x, Tensor& y, GemmScratch& ws) override;
  std::string name() const override { return "maxpool2d"; }

 private:
  int kernel_, stride_;
  Tensor cached_input_;
  std::vector<std::uint32_t> argmax_;
  std::array<int, 4> out_shape_{0, 0, 0, 0};
};

/// Fully connected layer; flattens C*H*W of its input.
class Linear final : public Layer {
 public:
  Linear(int in_features, int out_features, runtime::Xoshiro256& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void forward_into(const Tensor& x, Tensor& y, GemmScratch& ws) override;
  std::vector<Param> params() override;
  std::string name() const override { return "linear"; }

  Tensor weight;  ///< [out, in, 1, 1]
  Tensor bias;    ///< [out, 1, 1, 1]
  Tensor weight_grad;
  Tensor bias_grad;

 private:
  int in_features_, out_features_;
  Tensor cached_input_;
};

class ReLU final : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void forward_into(const Tensor& x, Tensor& y, GemmScratch& ws) override;
  std::string name() const override { return "relu"; }

 private:
  Tensor cached_input_;
};

class Sigmoid final : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void forward_into(const Tensor& x, Tensor& y, GemmScratch& ws) override;
  std::string name() const override { return "sigmoid"; }

 private:
  Tensor cached_output_;
};

/// Layer pipeline with parameter-level (de)serialization.
class Sequential {
 public:
  Sequential() = default;

  Sequential& add(std::unique_ptr<Layer> layer) {
    layers_.push_back(std::move(layer));
    return *this;
  }

  Tensor forward(const Tensor& x, bool train = false);
  /// Inference hot path: runs every layer's forward_into() through the
  /// scratch's ping-pong activation buffers and returns a reference to
  /// the last one. Zero heap allocations once ws is warm for the input
  /// shape. The reference is invalidated by the next forward_inference.
  const Tensor& forward_inference(const Tensor& x, InferenceScratch& ws);
  /// Backprop from dLoss/dOutput; returns dLoss/dInput.
  Tensor backward(const Tensor& grad_out);

  std::vector<Param> params();
  void zero_grad();

  std::size_t num_layers() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }

  /// Total trainable scalar count.
  std::size_t num_parameters();

  /// Parameter-only serialization; the architecture must be rebuilt
  /// identically before load (the SNM architecture is fixed per Sec. 3.2.2).
  void save(std::ostream& os);
  void load(std::istream& is);

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace ffsva::nn
