// Centralized binary (de)serialization for trivially-copyable values.
//
// Writing an object's bytes to a stream requires an object-to-bytes
// reinterpret_cast. Rather than scattering that cast across every save/load
// routine, the whole tree funnels through these two helpers so the cast is
// written — and audited — in exactly one file, constrained by a
// static_assert to types where it is well-defined.
#pragma once

#include <cstddef>
#include <istream>
#include <ostream>
#include <type_traits>

namespace ffsva::runtime {

/// Write `count` values starting at `v` as raw bytes.
template <typename T>
void write_pod(std::ostream& os, const T* v, std::size_t count = 1) {
  static_assert(std::is_trivially_copyable_v<T>,
                "raw-byte serialization requires a trivially copyable type");
  // Audited: viewing a trivially-copyable object as char bytes is one of the
  // type-punning forms the language explicitly permits ([basic.lval]).
  // NOLINTNEXTLINE(cppcoreguidelines-pro-type-reinterpret-cast)
  os.write(reinterpret_cast<const char*>(v),
           static_cast<std::streamsize>(sizeof(T) * count));
}

/// Read `count` values into `v` from raw bytes. Returns false on a short or
/// failed read (the stream's fail state is left set for the caller).
template <typename T>
[[nodiscard]] bool read_pod(std::istream& is, T* v, std::size_t count = 1) {
  static_assert(std::is_trivially_copyable_v<T>,
                "raw-byte deserialization requires a trivially copyable type");
  // Audited: see write_pod.
  // NOLINTNEXTLINE(cppcoreguidelines-pro-type-reinterpret-cast)
  is.read(reinterpret_cast<char*>(v),
          static_cast<std::streamsize>(sizeof(T) * count));
  return static_cast<bool>(is);
}

}  // namespace ffsva::runtime
