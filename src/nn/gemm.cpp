#include "nn/gemm.hpp"

#include <cstring>
#include <stdexcept>

namespace ffsva::nn {

void im2col(const Tensor& x, int n, int kernel, int stride, int pad,
            int out_h, int out_w, std::vector<float>& columns) {
  const int in_ch = x.c(), h = x.h(), w = x.w();
  const std::size_t rows = static_cast<std::size_t>(in_ch) * kernel * kernel;
  columns.assign(rows * static_cast<std::size_t>(out_h) * out_w, 0.0f);
  std::size_t row = 0;
  for (int c = 0; c < in_ch; ++c) {
    for (int ky = 0; ky < kernel; ++ky) {
      for (int kx = 0; kx < kernel; ++kx, ++row) {
        float* dst = columns.data() + row * static_cast<std::size_t>(out_h) * out_w;
        for (int oy = 0; oy < out_h; ++oy) {
          const int iy = oy * stride + ky - pad;
          if (iy < 0 || iy >= h) {
            dst += out_w;
            continue;
          }
          for (int ox = 0; ox < out_w; ++ox, ++dst) {
            const int ix = ox * stride + kx - pad;
            if (ix >= 0 && ix < w) *dst = x.at(n, c, iy, ix);
          }
        }
      }
    }
  }
}

void gemm(const float* a, const float* b, float* c, int m, int k, int n) {
  std::memset(c, 0, sizeof(float) * static_cast<std::size_t>(m) * n);
  for (int i = 0; i < m; ++i) {
    for (int p = 0; p < k; ++p) {
      const float aip = a[static_cast<std::size_t>(i) * k + p];
      if (aip == 0.0f) continue;  // pruned weights cost nothing
      const float* brow = b + static_cast<std::size_t>(p) * n;
      float* crow = c + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) crow[j] += aip * brow[j];
    }
  }
}

Tensor conv2d_im2col(const Tensor& x, const Tensor& weight, const Tensor& bias,
                     int stride, int pad) {
  if (x.c() != weight.c()) {
    throw std::invalid_argument("conv2d_im2col: channel mismatch");
  }
  const int kernel = weight.h();
  const int out_ch = weight.n();
  const int oh = (x.h() + 2 * pad - kernel) / stride + 1;
  const int ow = (x.w() + 2 * pad - kernel) / stride + 1;
  Tensor y(x.n(), out_ch, oh, ow);
  const int k = weight.c() * kernel * kernel;
  const int cols = oh * ow;
  std::vector<float> columns;
  for (int n = 0; n < x.n(); ++n) {
    im2col(x, n, kernel, stride, pad, oh, ow, columns);
    float* out = y.data() + static_cast<std::size_t>(n) * out_ch * cols;
    gemm(weight.data(), columns.data(), out, out_ch, k, cols);
    for (int oc = 0; oc < out_ch; ++oc) {
      const float b = bias.at(oc, 0, 0, 0);
      float* row = out + static_cast<std::size_t>(oc) * cols;
      for (int j = 0; j < cols; ++j) row[j] += b;
    }
  }
  return y;
}

}  // namespace ffsva::nn
