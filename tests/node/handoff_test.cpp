// The cluster's core correctness claim (DESIGN.md §15): two NodeServers and
// a ClusterScheduler, with a live migration forced mid-serve, must produce
// per-frame survivor sets bit-identical to a single-process run of the same
// specs — no frame lost, duplicated, or re-judged differently across the
// hand-off.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "core/config.hpp"
#include "node/cluster_scheduler.hpp"
#include "node/node_server.hpp"

// Sanitizer instrumentation slows the engine 2-20x, which turns the
// scheduler's wall-clock hang guards — not the conservation assertions —
// into the binding constraint on a small CI box. Scale the guards, keep
// the assertions.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define FFSVA_TEST_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define FFSVA_TEST_SANITIZED 1
#endif
#endif

namespace ffsva::node {
namespace {

#if defined(FFSVA_TEST_SANITIZED)
constexpr double kDeadlineGrace = 4.0;
#else
constexpr double kDeadlineGrace = 1.0;
#endif

core::FfsVaConfig small_config() {
  core::FfsVaConfig cfg;
  cfg.sdd_workers = 2;
  return cfg;
}

struct TestNode {
  explicit TestNode(std::uint32_t id) {
    NodeOptions opts;
    opts.node_id = id;
    opts.config = small_config();
    server = std::make_unique<NodeServer>(std::move(opts));
  }
  void start() {
    ASSERT_TRUE(server->start());
    loop = std::thread([this] { server->serve(); });
  }
  void join() {
    if (loop.joinable()) loop.join();
  }
  ~TestNode() {
    server->stop();
    join();
  }
  std::unique_ptr<NodeServer> server;
  std::thread loop;
};

TEST(Handoff, TwoNodeForcedMigrationConservesEveryFrame) {
  TestNode n0(0), n1(1);
  n0.start();
  n1.start();

  // Enough frames that the forced migration at 0.5s lands mid-serve.
  const auto specs = make_specs(/*count=*/4, /*frames=*/1500, /*calib=*/10,
                                /*w=*/64, /*h=*/48);
  SchedOptions opts;
  opts.snapshot_interval_ms = 50;
  opts.force_migration_at_sec = 0.5;
  opts.deadline_sec = 180.0 * kDeadlineGrace;
  ClusterScheduler sched(
      {net::Endpoint::tcp("127.0.0.1", n0.server->port()),
       net::Endpoint::tcp("127.0.0.1", n1.server->port())},
      small_config(), opts);
  const ClusterReport report = sched.run(specs);
  n0.join();
  n1.join();

  ASSERT_TRUE(report.ok);
  EXPECT_GE(report.handoffs, 1);
  EXPECT_GT(report.snapshot_frames, 0u);
  EXPECT_EQ(n0.server->handoffs_out() + n1.server->handoffs_out(),
            n0.server->handoffs_in() + n1.server->handoffs_in());

  // Conservation: the merged distributed survivor sets equal the
  // single-process reference, per stream and per frame index.
  const auto local = run_local(specs, small_config());
  ASSERT_EQ(local.size(), specs.size());
  for (const auto& ref : local) {
    const auto* got = report.outcome(ref.stream_id);
    ASSERT_NE(got, nullptr) << "stream " << ref.stream_id << " missing";
    EXPECT_EQ(got->emitted, ref.emitted) << "stream " << ref.stream_id;
    EXPECT_EQ(got->ingested, ref.ingested) << "stream " << ref.stream_id;
  }
}

TEST(Handoff, SingleNodeNoMigrationStillVerifies) {
  TestNode n0(0);
  n0.start();

  const auto specs = make_specs(/*count=*/3, /*frames=*/300, /*calib=*/12,
                                /*w=*/64, /*h=*/48);
  SchedOptions opts;
  opts.snapshot_interval_ms = 50;
  opts.deadline_sec = 120.0 * kDeadlineGrace;
  ClusterScheduler sched({net::Endpoint::tcp("127.0.0.1", n0.server->port())},
                         small_config(), opts);
  const ClusterReport report = sched.run(specs);
  n0.join();

  ASSERT_TRUE(report.ok);
  EXPECT_EQ(report.handoffs, 0);
  const auto local = run_local(specs, small_config());
  for (const auto& ref : local) {
    const auto* got = report.outcome(ref.stream_id);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got->emitted, ref.emitted) << "stream " << ref.stream_id;
  }
}

}  // namespace
}  // namespace ffsva::node
