// Shared SNM-style frame preprocessing (paper Sections 3.2.2 / 5.5).
//
// Both the single-target SnmFilter and the multi-label MultiSnmFilter feed
// their network the same feature: the frame resized to the model input
// size, differenced per pixel against the stream's (pre-resized)
// background with a max-over-channels reduction, scaled to [0, 1] floats.
// This module is that feature computed once, allocation-free on a warm
// scratch, with batches fanned out across the runtime compute pool.
#pragma once

#include <vector>

#include "image/image.hpp"
#include "image/ops.hpp"
#include "nn/layers.hpp"
#include "nn/tensor.hpp"

namespace ffsva::detect {

/// Per-frame resize staging: plan tables + the resized pixels.
struct PreprocScratch {
  image::ResizePlan plan;
  image::Image resized;
};

/// Everything one filter instance needs for allocation-free inference:
/// preprocessing staging (single + per-frame batch slots), the network
/// input tensor, and the Sequential inference workspace. Warm after one
/// predict per (frame geometry, batch size).
struct SnmScratch {
  PreprocScratch pre;
  std::vector<PreprocScratch> pre_batch;
  nn::Tensor input;
  nn::InferenceScratch net;
};

/// Write the difference map of `frame` against `bg_small` into sample `n`
/// of `out` (which must already be shaped [*, 1, s, s]).
void diff_preprocess(const image::Image& frame, const image::Image& bg_small,
                     int input_size, PreprocScratch& ws, nn::Tensor& out, int n);

/// Batched preprocessing: reshapes `out` to [frames.size(), 1, s, s] and
/// fills every sample, in parallel across the compute pool for larger
/// batches. `slots` grows to one scratch per frame (stable thereafter).
void diff_preprocess_batch(const std::vector<const image::Image*>& frames,
                           const image::Image& bg_small, int input_size,
                           std::vector<PreprocScratch>& slots, nn::Tensor& out);

}  // namespace ffsva::detect
