// ClusterScheduler: the cluster control plane (DESIGN.md §15). It owns the
// placement policy — core::ClusterManager, the same object the simulator
// validates at thousand-stream scale — and drives it over sockets against
// real ffsva_node processes:
//
//   * initial placement   place_new_stream() picks a node; the spec goes
//                         out as kAssignStream.
//   * load feedback       every snapshot_interval_ms each node's
//                         InstanceSnapshot is polled and folded into the
//                         manager (report_snapshot), which keeps the
//                         admission windows and overload signals live.
//   * re-forwarding       next_reforward() decisions become real hand-offs:
//                         kEndStream to the source, wait for the stream to
//                         quiesce (kResults + kStreamEnded carrying the
//                         resume cursor), then kAssignStream of the
//                         remainder to the target.
//
// Stream results (per-frame survivor indices) are merged across every node
// that served a segment of the stream; because specs materialize
// deterministically and quiescence is exact, the merged set is bit-identical
// to a single-process run of the same specs — run_local() computes that
// reference for the --verify-local mode.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "core/config.hpp"
#include "net/channel.hpp"
#include "net/socket.hpp"
#include "node/protocol.hpp"
#include "node/stream_spec.hpp"

namespace ffsva::node {

struct SchedOptions {
  int snapshot_interval_ms = 100;
  /// Minimum spacing between policy-driven re-forwards. Offline (flat-out)
  /// nodes sit permanently at their queue thresholds, so the raw overload
  /// signal would ping-pong streams between saturated nodes every loop;
  /// the gap bounds the churn without touching the policy itself.
  double reforward_min_gap_sec = 2.0;
  /// Seconds after start at which one forced hand-off is injected (the
  /// cluster-smoke / CI migration exercise). Negative disables.
  double force_migration_at_sec = -1.0;
  /// Give-up deadline for the whole run (0 = none). A wedged node trips
  /// this instead of hanging the scheduler forever.
  double deadline_sec = 0.0;
  bool verbose = false;
};

struct StreamOutcome {
  std::uint32_t stream_id = 0;
  std::vector<std::uint64_t> emitted;  ///< Merged survivor indices, sorted.
  std::uint64_t ingested = 0;          ///< Summed across serving segments.
  int handoffs = 0;                    ///< Times the stream moved mid-serve.
};

struct ClusterReport {
  bool ok = false;            ///< Every stream ran to completion.
  double wall_sec = 0.0;
  int handoffs = 0;           ///< Total migrations performed.
  std::uint64_t total_emitted = 0;
  std::vector<StreamOutcome> streams;      ///< Sorted by stream id.
  std::vector<double> handoff_ms;          ///< Per-migration end→resume gap.
  std::uint64_t snapshot_frames = 0;       ///< Snapshot polls performed.

  double handoff_p99_ms() const;
  const StreamOutcome* outcome(std::uint32_t stream_id) const;
};

class ClusterScheduler {
 public:
  /// `nodes` are the ffsva_node control endpoints; `config` supplies the
  /// admission policy (admit_tyolo_fps / admit_window_sec) exactly as a
  /// single-process ClusterManager embedding would.
  ClusterScheduler(std::vector<net::Endpoint> nodes,
                   const core::FfsVaConfig& config, SchedOptions opts = {});

  /// Place and serve every spec to completion (including any hand-offs),
  /// then stop all nodes. Blocks until done or the deadline trips.
  ClusterReport run(const std::vector<StreamSpec>& specs);

  net::NetCounters& counters() { return counters_; }

 private:
  struct StreamState {
    StreamSpec spec;           ///< Current segment (begin advances on resume).
    int node = -1;             ///< Serving node index; -1 once finished.
    bool draining = false;     ///< kEndStream sent, awaiting kStreamEnded.
    bool done = false;
    std::int64_t drain_t0_ms = 0;  ///< Hand-off latency clock.
    int pending_target = -1;   ///< Where the remainder goes (-1: natural end).
    StreamOutcome outcome;
  };

  bool connect_all();
  bool assign(int node, const StreamSpec& spec, bool resume);
  void start_migration(std::uint32_t stream_id, int target);
  void dispatch(int node, const net::WireFrame& frame);
  void on_stream_ended(int node, const StreamEnded& ended);
  /// Perform the queued second halves of hand-offs. Called only from the
  /// top-level run() loop: assign() drains channel frames while waiting for
  /// its ack, so starting a resume from inside dispatch() would nest two
  /// recv loops on one channel and let the inner one swallow the outer ack.
  void flush_resumes();
  void poll_snapshots(double now_sec);
  void stop_all();

  std::vector<net::Endpoint> endpoints_;
  core::FfsVaConfig config_;
  SchedOptions opts_;
  net::NetCounters counters_;
  std::vector<net::ReconnectingClient> clients_;
  core::ClusterManager manager_;
  std::map<std::uint32_t, StreamState> streams_;
  /// Hand-offs whose source segment has ended, awaiting reassignment.
  std::vector<std::uint32_t> resume_queue_;
  ClusterReport report_;
  std::int64_t t0_ms_ = 0;
  std::int64_t last_reforward_ms_ = 0;
  bool forced_done_ = false;
};

/// Single-process reference: run the same specs in one serve-mode engine
/// and return the per-stream survivor sets. The distributed run must match
/// this bit-identically (offline pacing — no load-dependent ingest drops).
std::vector<StreamOutcome> run_local(const std::vector<StreamSpec>& specs,
                                     const core::FfsVaConfig& config);

/// The default spec fleet the CLI / smoke tests use: `count` streams over
/// the two workload profiles with per-stream seeds, `frames` serving frames
/// each, sized `w`x`h` (0 = profile default).
std::vector<StreamSpec> make_specs(int count, std::uint64_t frames,
                                   std::uint32_t calib, int w, int h);

}  // namespace ffsva::node
