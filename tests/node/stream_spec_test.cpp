// StreamSpec and control-message serialization: exact round-trips, hostile
// payload rejection, and the determinism contract a resumed segment relies
// on — the same spec materializes the same specialized models on any node.
#include "node/stream_spec.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "node/protocol.hpp"

namespace ffsva::node {
namespace {

StreamSpec sample_spec() {
  StreamSpec s;
  s.stream_id = 9;
  s.profile = Profile::kCoral;
  s.tor = 0.37;
  s.seed = 0xdeadbeefULL;
  s.calib_frames = 12;
  s.begin = 40;
  s.end = 900;
  s.snm_epochs = 3;
  s.width = 64;
  s.height = 48;
  return s;
}

TEST(StreamSpec, SerializeParseRoundTrip) {
  const StreamSpec s = sample_spec();
  const auto parsed = StreamSpec::parse(s.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->stream_id, s.stream_id);
  EXPECT_EQ(parsed->profile, s.profile);
  EXPECT_DOUBLE_EQ(parsed->tor, s.tor);
  EXPECT_EQ(parsed->seed, s.seed);
  EXPECT_EQ(parsed->calib_frames, s.calib_frames);
  EXPECT_EQ(parsed->begin, s.begin);
  EXPECT_EQ(parsed->end, s.end);
  EXPECT_EQ(parsed->snm_epochs, s.snm_epochs);
  EXPECT_EQ(parsed->width, s.width);
  EXPECT_EQ(parsed->height, s.height);
}

TEST(StreamSpec, ParseRejectsHostileBytes) {
  const StreamSpec s = sample_spec();
  const std::string good = s.serialize();
  // Truncation at every prefix length must fail cleanly, never crash.
  for (std::size_t len = 0; len < good.size(); ++len) {
    EXPECT_FALSE(StreamSpec::parse(good.substr(0, len)).has_value())
        << "prefix " << len;
  }
  // Inverted window (end < begin) is semantically invalid.
  StreamSpec bad = s;
  bad.begin = 900;
  bad.end = 40;
  EXPECT_FALSE(StreamSpec::parse(bad.serialize()).has_value());
  // Serving before the calibration window would replay calib frames.
  StreamSpec early = s;
  early.calib_frames = 50;
  early.begin = 10;
  EXPECT_FALSE(StreamSpec::parse(early.serialize()).has_value());
}

TEST(StreamSpec, MaterializeIsDeterministicAcrossNodes) {
  StreamSpec s = sample_spec();
  s.end = 80;  // keep the render short
  MaterializedStream a = materialize(s);
  MaterializedStream b = materialize(s);
  // Two independent materializations (as two nodes would perform) must
  // produce identical per-frame verdict behaviour; probe via the sources.
  for (int i = 0; i < 40; ++i) {
    auto fa = a.source->next();
    auto fb = b.source->next();
    ASSERT_EQ(fa.has_value(), fb.has_value()) << "frame " << i;
    if (!fa) break;
    EXPECT_EQ(fa->index, fb->index);
    EXPECT_EQ(fa->stream_id, static_cast<int>(s.stream_id));
    EXPECT_TRUE(fa->image == fb->image) << "frame " << i;
  }
}

TEST(StreamSpec, ResumedSourceContinuesAtCursor) {
  StreamSpec s = sample_spec();
  s.begin = 40;
  s.end = 60;
  MaterializedStream full = materialize(s);
  auto first = full.source->next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->index, std::int64_t{40});

  StreamSpec resumed = s;
  resumed.begin = 50;  // as if 10 frames were served before the hand-off
  MaterializedStream rest = materialize(resumed);
  auto cont = rest.source->next();
  ASSERT_TRUE(cont.has_value());
  EXPECT_EQ(cont->index, std::int64_t{50});
  std::uint64_t count = 1;
  while (rest.source->next()) ++count;
  EXPECT_EQ(count, 10u);
}

TEST(Protocol, AssignAndResultsRoundTrip) {
  AssignStream as;
  as.spec = sample_spec();
  as.resume = true;
  const auto parsed = AssignStream::parse(as.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->resume);
  EXPECT_EQ(parsed->spec.stream_id, 9u);
  EXPECT_EQ(parsed->spec.end, 900u);

  StreamResults res;
  res.stream_id = 9;
  res.emitted_frames = {40, 41, 55, 899};
  const auto rr = StreamResults::parse(res.serialize());
  ASSERT_TRUE(rr.has_value());
  EXPECT_EQ(rr->stream_id, 9u);
  EXPECT_EQ(rr->emitted_frames, res.emitted_frames);

  StreamEnded ended;
  ended.stream_id = 9;
  ended.cursor = 512;
  ended.ingested = 472;
  ended.emitted = 31;
  const auto re = StreamEnded::parse(ended.serialize());
  ASSERT_TRUE(re.has_value());
  EXPECT_EQ(re->cursor, 512u);
  EXPECT_EQ(re->ingested, 472u);

  // Hostile vector length: a results blob claiming more elements than the
  // payload carries must be rejected, not allocated.
  std::string blob = res.serialize();
  EXPECT_FALSE(StreamResults::parse(blob.substr(0, blob.size() - 3))
                   .has_value());
}

}  // namespace
}  // namespace ffsva::node
