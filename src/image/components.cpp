#include "image/components.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

namespace ffsva::image {

double iou(const Box& a, const Box& b) {
  const long long inter = a.intersect(b).area();
  if (inter == 0) return 0.0;
  const long long uni = a.area() + b.area() - inter;
  return uni > 0 ? static_cast<double>(inter) / static_cast<double>(uni) : 0.0;
}

std::vector<ScoredBox> nms(std::vector<ScoredBox> boxes, double iou_threshold) {
  std::stable_sort(boxes.begin(), boxes.end(),
                   [](const ScoredBox& a, const ScoredBox& b) { return a.score > b.score; });
  std::vector<ScoredBox> kept;
  kept.reserve(boxes.size());
  for (const auto& cand : boxes) {
    bool suppressed = false;
    for (const auto& k : kept) {
      if (iou(cand.box, k.box) > iou_threshold) {
        suppressed = true;
        break;
      }
    }
    if (!suppressed) kept.push_back(cand);
  }
  return kept;
}

std::vector<Component> connected_components_labeled(const Image& binary,
                                                    std::vector<int>& labels,
                                                    int min_pixels) {
  const int w = binary.width(), h = binary.height();
  labels.assign(static_cast<std::size_t>(w) * h, 0);
  std::vector<Component> comps;
  int next_label = 0;
  // bounded-ok: function-local BFS frontier, at most one entry per pixel.
  std::deque<std::pair<int, int>> frontier;

  for (int sy = 0; sy < h; ++sy) {
    for (int sx = 0; sx < w; ++sx) {
      const std::size_t sidx = static_cast<std::size_t>(sy) * w + sx;
      if (binary.at(sx, sy) == 0 || labels[sidx] != 0) continue;
      ++next_label;
      Component comp;
      comp.label = next_label;
      comp.box = Box{sx, sy, sx + 1, sy + 1};
      frontier.clear();
      frontier.emplace_back(sx, sy);
      labels[sidx] = next_label;
      while (!frontier.empty()) {
        const auto [x, y] = frontier.front();
        frontier.pop_front();
        ++comp.pixel_count;
        comp.box.x0 = std::min(comp.box.x0, x);
        comp.box.y0 = std::min(comp.box.y0, y);
        comp.box.x1 = std::max(comp.box.x1, x + 1);
        comp.box.y1 = std::max(comp.box.y1, y + 1);
        constexpr int kDx[4] = {1, -1, 0, 0};
        constexpr int kDy[4] = {0, 0, 1, -1};
        for (int d = 0; d < 4; ++d) {
          const int nx = x + kDx[d], ny = y + kDy[d];
          if (nx < 0 || nx >= w || ny < 0 || ny >= h) continue;
          const std::size_t nidx = static_cast<std::size_t>(ny) * w + nx;
          if (binary.at(nx, ny) != 0 && labels[nidx] == 0) {
            labels[nidx] = next_label;
            frontier.emplace_back(nx, ny);
          }
        }
      }
      if (comp.pixel_count >= min_pixels) comps.push_back(comp);
    }
  }
  std::stable_sort(comps.begin(), comps.end(), [](const Component& a, const Component& b) {
    return a.pixel_count > b.pixel_count;
  });
  return comps;
}

std::vector<Component> connected_components(const Image& binary, int min_pixels) {
  std::vector<int> labels;
  return connected_components_labeled(binary, labels, min_pixels);
}

}  // namespace ffsva::image
