// Simulated FFS-VA instance: conservation, policy behaviour, and the
// paper's headline relationships as invariants over the calibrated model.
#include "sim/ffsva_sim.hpp"

#include <gtest/gtest.h>

namespace ffsva::sim {
namespace {

SimSetup setup_for(double tor, int streams, bool online,
                   core::BatchPolicy policy = core::BatchPolicy::kFeedback,
                   std::int64_t frames = 3000) {
  SimSetup s;
  s.config.batch_policy = policy;
  s.num_streams = streams;
  s.online = online;
  s.duration_sec = 60.0;
  s.frames_per_stream = online ? 100000 : frames;
  s.make_outcomes = [tor](int i) {
    return std::make_unique<MarkovOutcomes>(MarkovParams::for_tor(tor),
                                            1000 + static_cast<unsigned>(i));
  };
  return s;
}

void check_conservation(const SimResult& r) {
  std::int64_t terminal = 0;
  for (const auto& s : r.streams) {
    EXPECT_EQ(s.sdd_in, s.ingested);
    EXPECT_EQ(s.snm_in, s.sdd_pass);
    EXPECT_EQ(s.tyolo_in, s.snm_pass);
    EXPECT_EQ(s.outputs, s.tyolo_pass);
    terminal += s.ingested;
  }
  // Every ingested frame terminated: filtered or output.
  EXPECT_EQ(static_cast<std::int64_t>(r.terminal_latency_ms.count()), terminal);
}

TEST(FfsVaSim, OfflineConservesFrames) {
  const auto r = simulate_ffsva(setup_for(0.2, 1, false));
  EXPECT_EQ(r.total_ingested, 3000);
  EXPECT_EQ(r.total_dropped, 0);
  check_conservation(r);
}

TEST(FfsVaSim, MultiStreamOfflineConserves) {
  const auto r = simulate_ffsva(setup_for(0.2, 4, false,
                                          core::BatchPolicy::kDynamic, 1500));
  EXPECT_EQ(r.total_ingested, 4 * 1500);
  check_conservation(r);
}

TEST(FfsVaSim, DeterministicAcrossRuns) {
  const auto a = simulate_ffsva(setup_for(0.3, 3, true));
  const auto b = simulate_ffsva(setup_for(0.3, 3, true));
  EXPECT_EQ(a.total_ingested, b.total_ingested);
  EXPECT_EQ(a.total_outputs, b.total_outputs);
  EXPECT_DOUBLE_EQ(a.sim_time_sec, b.sim_time_sec);
  EXPECT_DOUBLE_EQ(a.output_latency_ms.mean(), b.output_latency_ms.mean());
}

TEST(FfsVaSim, OfflineBeatsBaselineAtLowTor) {
  // The headline: ~3x offline speedup at TOR ~0.1 (Section 5.2).
  const auto ffs = simulate_ffsva(setup_for(0.103, 1, false));
  const auto base = simulate_baseline(setup_for(0.103, 1, false));
  EXPECT_GT(ffs.throughput_fps, 2.0 * base.throughput_fps);
  EXPECT_LT(ffs.throughput_fps, 5.0 * base.throughput_fps);
}

TEST(FfsVaSim, HighTorErodesTheAdvantage) {
  // Figure 4: at TOR 1.0 the offline advantage largely disappears.
  auto high = setup_for(1.0, 1, false);
  high.make_outcomes = [](int i) {
    auto p = MarkovParams::for_tor(1.0);
    p.ty_in = 0.38;  // crowded stream at the evaluation's object threshold
    return std::make_unique<MarkovOutcomes>(p, 2000 + static_cast<unsigned>(i));
  };
  const auto ffs_high = simulate_ffsva(high);
  const auto ffs_low = simulate_ffsva(setup_for(0.103, 1, false));
  EXPECT_LT(ffs_high.throughput_fps, 0.7 * ffs_low.throughput_fps);
}

TEST(FfsVaSim, OnlineMaxStreamsBeatsBaselineSeveralTimes) {
  // Figure 3 / Section 5.2: FFS-VA sustains several times more live
  // streams than YOLOv2-only on the same simulated hardware.
  const auto base_setup = setup_for(0.103, 1, true);
  const int baseline = max_realtime_streams(base_setup, 1, 12, 0.005, true);
  const int ffs = max_realtime_streams(base_setup, 1, 48);
  EXPECT_GE(baseline, 3);
  EXPECT_LE(baseline, 5);
  EXPECT_GE(ffs, 5 * baseline);
  EXPECT_LE(ffs, 9 * baseline);
}

TEST(FfsVaSim, DynamicBatchCutsLatencyAtModerateLoad) {
  // Section 4.3.2: "the dynamic batch mechanism reduces the average
  // latency by ~50%" vs the feedback queue alone.
  auto fb = setup_for(0.103, 10, true, core::BatchPolicy::kFeedback);
  auto dyn = setup_for(0.103, 10, true, core::BatchPolicy::kDynamic);
  const auto r_fb = simulate_ffsva(fb);
  const auto r_dyn = simulate_ffsva(dyn);
  EXPECT_LT(r_dyn.output_latency_ms.mean(), 0.7 * r_fb.output_latency_ms.mean());
}

TEST(FfsVaSim, DynamicBatchSupportsFewerStreams) {
  // "...at the cost of 20% reduction in the number of supported video
  // streams" (Section 5.2).
  const auto base = setup_for(0.103, 1, true);
  const int fb = max_realtime_streams(
      [&] { auto s = base; s.config.batch_policy = core::BatchPolicy::kFeedback; return s; }(),
      1, 48);
  const int dyn = max_realtime_streams(
      [&] { auto s = base; s.config.batch_policy = core::BatchPolicy::kDynamic; return s; }(),
      1, 48);
  EXPECT_LT(dyn, fb);
  EXPECT_GT(dyn, fb / 2);
}

TEST(FfsVaSim, StaticBatchHasHighestOfflineThroughputAndLatency) {
  const auto st = simulate_ffsva(setup_for(0.2, 1, false, core::BatchPolicy::kStatic));
  const auto fb = simulate_ffsva(setup_for(0.2, 1, false, core::BatchPolicy::kFeedback));
  EXPECT_GE(st.throughput_fps, 0.95 * fb.throughput_fps);
  EXPECT_GT(st.output_latency_ms.mean(), fb.output_latency_ms.mean());
}

TEST(FfsVaSim, MeanSnmBatchFollowsPolicy) {
  const auto fb = simulate_ffsva(setup_for(0.2, 1, false, core::BatchPolicy::kFeedback));
  const auto dyn = simulate_ffsva(setup_for(0.2, 1, false, core::BatchPolicy::kDynamic));
  // Feedback waits for min(batch, queue threshold) = 10; dynamic takes
  // whatever is there.
  EXPECT_NEAR(fb.mean_snm_batch, 10.0, 0.5);
  EXPECT_LT(dyn.mean_snm_batch, fb.mean_snm_batch);
}

TEST(FfsVaSim, OverloadDropsFramesInsteadOfDiverging) {
  auto s = setup_for(0.103, 60, true);  // way beyond capacity
  s.duration_sec = 45.0;                // long enough to fill the ring buffers
  const auto r = simulate_ffsva(s);
  EXPECT_GT(r.drop_rate, 0.1);
  EXPECT_FALSE(r.realtime);
  check_conservation(r);
}

TEST(FfsVaSim, UtilizationsAreSane) {
  const auto r = simulate_ffsva(setup_for(0.2, 8, true));
  EXPECT_GE(r.gpu0_utilization, 0.0);
  EXPECT_LE(r.gpu0_utilization, 1.0 + 1e-9);
  EXPECT_GE(r.gpu1_utilization, 0.0);
  EXPECT_LE(r.gpu1_utilization, 1.0 + 1e-9);
  EXPECT_LE(r.cpu_utilization, 1.0 + 1e-9);
  EXPECT_GT(r.tyolo_service_fps, 0.0);
}

TEST(FfsVaSim, HigherTorLoadsLaterStages) {
  const auto low = simulate_ffsva(setup_for(0.1, 1, false));
  const auto high = simulate_ffsva(setup_for(0.8, 1, false));
  const double low_ty_share =
      static_cast<double>(low.streams[0].tyolo_in) / low.streams[0].ingested;
  const double high_ty_share =
      static_cast<double>(high.streams[0].tyolo_in) / high.streams[0].ingested;
  EXPECT_GT(high_ty_share, 1.5 * low_ty_share);
}

TEST(Baseline, OnlineCapacityIsAboutFourStreams) {
  // Section 2.3: a dual-GPU server analyzes ~4 concurrent streams with
  // YOLOv2 in real time.
  const auto r4 = simulate_baseline(setup_for(0.103, 4, true));
  const auto r6 = simulate_baseline(setup_for(0.103, 6, true));
  EXPECT_TRUE(r4.realtime);
  EXPECT_FALSE(r6.realtime);
}

TEST(Baseline, OfflineThroughputMatchesTwoGpuService) {
  const auto r = simulate_baseline(setup_for(0.5, 1, false));
  // Two GPUs at ~61 fps each (16.4 ms per frame incl. resize+setup),
  // single-stream decode does not bottleneck (454 fps).
  EXPECT_NEAR(r.throughput_fps, 122.0, 10.0);
}

TEST(MaxRealtimeStreams, LowerBoundWhenEvenOneFails) {
  auto s = setup_for(0.103, 1, true);
  s.duration_sec = 10.0;
  // Force an impossible config: zero-capacity T-YOLO via huge cost.
  s.costs.tyolo.per_frame_us = 10'000'000.0;
  const int n = max_realtime_streams(s, 1, 4);
  EXPECT_EQ(n, 0);
}

}  // namespace
}  // namespace ffsva::sim
