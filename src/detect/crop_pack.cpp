#include "detect/crop_pack.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "detect/segmentation.hpp"
#include "image/components.hpp"
#include "runtime/parallel_for.hpp"

namespace ffsva::detect {

std::vector<image::Box> consolidate_candidates(std::vector<image::Box> boxes,
                                               int frame_w, int frame_h, int pad) {
  std::vector<image::Box> out;
  out.reserve(boxes.size());
  for (const auto& b : boxes) {
    if (b.empty()) continue;  // zero-area noise must not inflate into a crop
    const image::Box padded{b.x0 - pad, b.y0 - pad, b.x1 + pad, b.y1 + pad};
    const image::Box clipped = padded.clip(frame_w, frame_h);
    if (!clipped.empty()) out.push_back(clipped);
  }
  // Transitive merge to a fixpoint: an object covered by several overlapping
  // candidates must become ONE crop, or segmentation would see (and count)
  // its pieces twice. Candidate counts are tiny (a handful of T-YOLO boxes
  // per frame), so the quadratic sweep is irrelevant next to segmentation.
  bool merged = true;
  while (merged) {
    merged = false;
    for (std::size_t i = 0; i < out.size() && !merged; ++i) {
      for (std::size_t j = i + 1; j < out.size(); ++j) {
        if (out[i].intersect(out[j]).empty()) continue;
        out[i] = out[i].unite(out[j]);
        out.erase(out.begin() + static_cast<std::ptrdiff_t>(j));
        merged = true;
        break;
      }
    }
  }
  return out;
}

PackPlan plan_pack(const std::vector<CropRequest>& requests,
                   const CropPackConfig& cfg) {
  PackPlan plan;
  plan.canvas_w = plan.canvas_h = std::max(16, cfg.canvas_edge);
  const int gutter = std::max(1, cfg.gutter);

  struct PendingCrop {
    int slot = 0;
    image::Box src;
  };
  std::vector<PendingCrop> crops;

  for (int slot = 0; slot < static_cast<int>(requests.size()); ++slot) {
    const auto& req = requests[slot];
    // Anything the mosaic path cannot represent faithfully goes full-frame:
    // no candidates (nothing localized the object — vet everything), shape
    // or channel mismatches (the full-frame path will surface the error for
    // that slot alone), oversized crops, or coverage past the break-even.
    if (req.frame == nullptr || req.background == nullptr ||
        req.candidates.empty() || !req.frame->same_shape(*req.background)) {
      plan.full_frame.push_back(slot);
      continue;
    }
    if (plan.channels == 0) plan.channels = req.frame->channels();
    if (req.frame->channels() != plan.channels) {
      plan.full_frame.push_back(slot);
      continue;
    }
    const int fw = req.frame->width();
    const int fh = req.frame->height();
    const auto merged = consolidate_candidates(req.candidates, fw, fh, cfg.pad);
    if (merged.empty()) {
      plan.full_frame.push_back(slot);
      continue;
    }
    long long crop_area = 0;
    bool fits = true;
    for (const auto& b : merged) {
      crop_area += b.area();
      if (b.width() + 2 * gutter > plan.canvas_w ||
          b.height() + 2 * gutter > plan.canvas_h) {
        fits = false;
      }
    }
    const double coverage =
        static_cast<double>(crop_area) /
        static_cast<double>(std::max<long long>(1, static_cast<long long>(fw) * fh));
    if (!fits || coverage > cfg.coverage_threshold) {
      plan.full_frame.push_back(slot);
      continue;
    }
    for (const auto& b : merged) crops.push_back({slot, b});
  }
  if (plan.channels == 0) plan.channels = 1;  // no canvases will be rendered

  // Shelf packing, tallest first: crops on one shelf share its height, so
  // descending height keeps shelves dense. stable_sort keeps slot order for
  // equal heights — the plan (and therefore the output) is deterministic.
  std::stable_sort(crops.begin(), crops.end(),
                   [](const PendingCrop& a, const PendingCrop& b) {
                     return a.src.height() > b.src.height();
                   });

  int canvas = -1;
  int x = 0, y = 0, shelf_h = 0;
  const auto open_canvas = [&] {
    ++canvas;
    x = gutter;
    y = gutter;
    shelf_h = 0;
    plan.fill_ratio.push_back(0.0);
    plan.crops_per_canvas.push_back(0);
  };
  for (const auto& c : crops) {
    const int w = c.src.width();
    const int h = c.src.height();
    if (canvas < 0) open_canvas();
    if (x + w + gutter > plan.canvas_w) {  // next shelf
      x = gutter;
      y += shelf_h + gutter;
      shelf_h = 0;
    }
    if (y + h + gutter > plan.canvas_h) open_canvas();
    plan.placements.push_back(CropPlacement{c.slot, c.src, canvas, x, y});
    plan.fill_ratio[static_cast<std::size_t>(canvas)] += static_cast<double>(c.src.area());
    plan.crops_per_canvas[static_cast<std::size_t>(canvas)]++;
    x += w + gutter;
    shelf_h = std::max(shelf_h, h);
  }
  plan.num_canvases = canvas + 1;
  const double canvas_area = static_cast<double>(plan.canvas_w) * plan.canvas_h;
  for (auto& f : plan.fill_ratio) f /= canvas_area;
  return plan;
}

MosaicCanvases render_pack(const std::vector<CropRequest>& requests,
                           const PackPlan& plan) {
  MosaicCanvases out;
  out.frame.reserve(static_cast<std::size_t>(plan.num_canvases));
  out.background.reserve(static_cast<std::size_t>(plan.num_canvases));
  for (int i = 0; i < plan.num_canvases; ++i) {
    out.frame.emplace_back(plan.canvas_w, plan.canvas_h, plan.channels, 0);
    out.background.emplace_back(plan.canvas_w, plan.canvas_h, plan.channels, 0);
  }
  for (const auto& p : plan.placements) {
    const auto& req = requests[static_cast<std::size_t>(p.slot)];
    auto& dst_f = out.frame[static_cast<std::size_t>(p.canvas)];
    auto& dst_b = out.background[static_cast<std::size_t>(p.canvas)];
    const int ch = plan.channels;
    const int row_bytes = p.src.width() * ch;
    for (int yy = 0; yy < p.src.height(); ++yy) {
      const std::size_t src_off =
          (static_cast<std::size_t>(p.src.y0 + yy) * req.frame->width() + p.src.x0) * ch;
      const std::size_t dst_off =
          (static_cast<std::size_t>(p.dy + yy) * plan.canvas_w + p.dx) * ch;
      std::memcpy(dst_f.data() + dst_off, req.frame->data() + src_off,
                  static_cast<std::size_t>(row_bytes));
      std::memcpy(dst_b.data() + dst_off, req.background->data() + src_off,
                  static_cast<std::size_t>(row_bytes));
    }
  }
  return out;
}

MapResult map_back(const PackPlan& plan, int canvas, const image::Box& mosaic_box) {
  for (const auto& p : plan.placements) {
    if (p.canvas != canvas) continue;
    const image::Box d = p.dst();
    if (!d.contains(mosaic_box.cx(), mosaic_box.cy())) continue;
    // Segmentation blurs the |frame-bg| diff map, so a blob hugging a crop
    // edge legitimately bleeds up to the blur radius into the zero gutter.
    // Clip that overhang back to the placement instead of discarding the
    // detection — with gutter > 2*blur_radius blobs cannot bridge crops, so
    // everything centred inside this placement belongs to it.
    const image::Box clipped = mosaic_box.intersect(d);
    if (clipped.empty()) continue;
    const int ox = p.src.x0 - p.dx;
    const int oy = p.src.y0 - p.dy;
    return MapResult{p.slot, image::Box{clipped.x0 + ox, clipped.y0 + oy,
                                        clipped.x1 + ox, clipped.y1 + oy}};
  }
  return MapResult{};  // centre in a gutter: seam artefact, not a detection
}

ConsolidatedBatch consolidate_detect(const std::vector<CropRequest>& requests,
                                     const ReferenceConfig& cfg,
                                     const CropPackConfig& pack) {
  ConsolidatedBatch out;
  out.items.resize(requests.size());
  const PackPlan plan = plan_pack(requests, pack);
  const MosaicCanvases canvases = render_pack(requests, plan);
  out.stats.mosaics = plan.num_canvases;
  out.stats.packed_crops = static_cast<int>(plan.placements.size());
  out.stats.full_frame_fallbacks = static_cast<int>(plan.full_frame.size());
  out.stats.fill_ratio = plan.fill_ratio;
  out.stats.crops_per_mosaic = plan.crops_per_canvas;

  // One work unit per mosaic plus one per full-frame fallback. Each unit
  // writes only its own output slot(s); merging is serial afterwards. A
  // mosaic is many crops' worth of segmentation, a fallback a whole frame —
  // either dwarfs the fork-join cost, hence grain 1.
  struct CanvasOut {
    std::vector<std::pair<int, Detection>> dets;  // (slot, detection)
    int seam = 0;
    bool ok = true;
  };
  std::vector<CanvasOut> per_canvas(static_cast<std::size_t>(plan.num_canvases));
  const std::int64_t units =
      plan.num_canvases + static_cast<std::int64_t>(plan.full_frame.size());

  runtime::parallel_for(0, units, 1, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      if (i < plan.num_canvases) {
        auto& co = per_canvas[static_cast<std::size_t>(i)];
        const int canvas = static_cast<int>(i);
        try {
          const auto comps =
              foreground_components(canvases.frame[static_cast<std::size_t>(canvas)],
                                    canvases.background[static_cast<std::size_t>(canvas)],
                                    cfg.segmentation);
          for (const auto& comp : comps) {
            const MapResult m = map_back(plan, canvas, comp.box);
            if (m.slot < 0) {
              co.seam++;
              continue;
            }
            const auto& req = requests[static_cast<std::size_t>(m.slot)];
            const image::Component mapped{m.frame_box, comp.pixel_count, comp.label};
            co.dets.emplace_back(
                m.slot, classify_component(mapped, req.frame->width(),
                                           req.frame->height(),
                                           cfg.segmentation.min_pixels, cfg.classifier));
          }
        } catch (...) {
          co.ok = false;
        }
      } else {
        const int slot =
            plan.full_frame[static_cast<std::size_t>(i - plan.num_canvases)];
        auto& item = out.items[static_cast<std::size_t>(slot)];
        try {
          const auto& req = requests[static_cast<std::size_t>(slot)];
          if (req.frame == nullptr || req.background == nullptr) {
            throw std::invalid_argument("crop_pack: null frame or background");
          }
          // Inline ReferenceDetector::detect() against the caller-owned
          // background — same code path, no background copy per frame.
          const auto comps =
              foreground_components(*req.frame, *req.background, cfg.segmentation);
          item.result.detections.reserve(comps.size());
          for (const auto& c : comps) {
            item.result.detections.push_back(classify_component(
                c, req.frame->width(), req.frame->height(),
                cfg.segmentation.min_pixels, cfg.classifier));
          }
        } catch (...) {
          item.ok = false;
          item.result.detections.clear();
        }
      }
    }
  });

  // Serial merge. A slot's crops may span canvases; one failed canvas fails
  // every slot packed into it (per-frame drop-on-error), so mark failures
  // first and only then distribute detections to still-healthy slots.
  for (const auto& co : per_canvas) out.stats.seam_suppressed += co.seam;
  for (std::size_t c = 0; c < per_canvas.size(); ++c) {
    if (per_canvas[c].ok) continue;
    for (const auto& p : plan.placements) {
      if (p.canvas == static_cast<int>(c)) {
        out.items[static_cast<std::size_t>(p.slot)].ok = false;
      }
    }
  }
  for (const auto& co : per_canvas) {
    if (!co.ok) continue;
    for (const auto& [slot, det] : co.dets) {
      auto& item = out.items[static_cast<std::size_t>(slot)];
      if (item.ok) item.result.detections.push_back(det);
    }
  }
  for (auto& item : out.items) {
    if (!item.ok) item.result.detections.clear();
  }
  return out;
}

}  // namespace ffsva::detect
