file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_online_low_tor.dir/bench_fig3_online_low_tor.cpp.o"
  "CMakeFiles/bench_fig3_online_low_tor.dir/bench_fig3_online_low_tor.cpp.o.d"
  "bench_fig3_online_low_tor"
  "bench_fig3_online_low_tor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_online_low_tor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
