# Empty dependencies file for bench_fig4_online_high_tor.
# This may be replaced when dependencies are built.
