// Quickstart: specialize a stream, run the four-stage FFS-VA pipeline on a
// short clip, and print what survives the cascade.
//
//   1. Render a synthetic surveillance stream (a fixed-viewpoint traffic
//      camera) — stands in for a real camera / recording.
//   2. specialize_stream(): estimate the background, label a calibration
//      window with the reference model, calibrate the SDD threshold, train
//      the per-stream SNM, and tune T-YOLO for the scene (paper Sec. 4.1).
//   3. Feed the rest of the stream through FfsVaInstance (threads + bounded
//      feedback queues + shared T-YOLO + reference model).
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "core/pipeline.hpp"
#include "video/profiles.hpp"
#include "video/source.hpp"

using namespace ffsva;

namespace {

/// Yields frames [begin, end) of a shared scene simulator.
class ClipSource final : public video::FrameSource {
 public:
  ClipSource(std::shared_ptr<const video::SceneSimulator> sim, std::int64_t begin,
             std::int64_t end)
      : sim_(std::move(sim)), next_(begin), end_(end) {}
  std::optional<video::Frame> next() override {
    if (next_ >= end_) return std::nullopt;
    return sim_->render(next_++);
  }
  std::int64_t total_frames() const override { return end_; }

 private:
  std::shared_ptr<const video::SceneSimulator> sim_;
  std::int64_t next_, end_;
};

}  // namespace

int main() {
  // --- 1. The camera -------------------------------------------------------
  video::SceneConfig cfg = video::jackson_profile();
  cfg.tor = 0.25;  // a moderately busy intersection
  auto sim = std::make_shared<video::SceneSimulator>(cfg, /*seed=*/7, /*frames=*/2000);
  std::printf("Camera: %dx%d @ %.0f FPS, target '%s', planned TOR %.2f\n",
              cfg.width, cfg.height, cfg.fps, video::to_string(cfg.target),
              sim->planned_tor());

  // --- 2. Specialization (once per camera) ---------------------------------
  std::printf("Specializing SDD + SNM on a 900-frame calibration window...\n");
  std::vector<video::Frame> calib;
  for (int i = 0; i < 900; ++i) calib.push_back(sim->render(i));
  detect::SpecializeConfig sc;
  sc.target = cfg.target;
  const auto models = detect::specialize_stream(calib, sc, /*seed=*/7);
  std::printf("  SDD delta_diff = %.1f   SNM val-accuracy = %.1f%%  "
              "[c_low %.2f, c_high %.2f]\n",
              models.sdd_delta, 100 * models.snm_report.val_accuracy,
              models.snm_report.c_low, models.snm_report.c_high);

  // --- 3. The pipeline ------------------------------------------------------
  core::FfsVaConfig config;       // FilterDegree 0.5, NumberofObjects 1,
  config.number_of_objects = 1;   // feedback thresholds {2,10,2}, dynamic batch
  core::FfsVaInstance instance(config);
  instance.add_stream(std::make_unique<ClipSource>(sim, 900, 2000), models);

  std::printf("Analyzing frames 900..2000 offline...\n\n");
  const auto stats = instance.run(/*online=*/false);

  const auto& s = stats.streams[0];
  std::printf("Cascade:  %llu frames -> SDD passed %llu -> SNM passed %llu "
              "-> T-YOLO passed %llu -> reference model\n",
              (unsigned long long)s.sdd.in, (unsigned long long)s.sdd.passed,
              (unsigned long long)s.snm.passed, (unsigned long long)s.tyolo.passed);
  std::printf("The full-feature model saw only %.1f%% of all frames.\n\n",
              100.0 * static_cast<double>(s.ref.in) / static_cast<double>(s.sdd.in));

  std::printf("First surviving frames (reference-model detections):\n");
  int shown = 0;
  for (const auto& ev : instance.outputs()) {
    if (shown++ >= 8) break;
    std::printf("  frame %5lld @ %6.2fs:", (long long)ev.frame.index,
                ev.frame.pts_sec);
    for (const auto& d : ev.result.detections) {
      std::printf(" %s x%d (conf %.2f)", video::to_string(d.cls), d.instances,
                  d.confidence);
    }
    std::printf("\n");
  }
  std::printf("  ... %zu surviving frames total\n", instance.outputs().size());
  return 0;
}
