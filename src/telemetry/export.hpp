// Live metrics export: a sampler thread that periodically snapshots a
// Registry and appends one JSON object per sample to a sink (JSONL).
//
// Each row carries the sample time, every counter (cumulative), per-counter
// rates over the sampling interval (this is where per-stage FPS and drop
// rates come from), every gauge (instantaneous: queue depths, prefetch-side
// cumulative counters kept as stream atomics), and a summary of every
// histogram (count/mean/p50/p99/max). The sampler takes one final sample on
// stop(), so short runs still produce at least one row.
//
// The exporter owns no metric state — it is safe to start before the
// pipeline's threads and must be stopped before the Registry (or anything
// its gauge callbacks read) is destroyed.
//
// relaxed-ok: samples_ is a monotonic progress counter polled by tests;
// the sampler's state is otherwise confined to its thread and the
// start/stop join edges.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <ostream>
#include <string>
#include <thread>

#include "runtime/annotations.hpp"
#include "telemetry/metrics.hpp"

namespace ffsva::telemetry {

/// Serialize one sample as a single-line JSON object (no trailing newline).
/// `dt_sec` is the time since the previous sample (rates denominator);
/// `prev` may be null for the first sample (rates then span [0, t]).
/// `node_id` >= 0 stamps a `"node_id"` field into the row, so rows from
/// several cluster nodes can share one archive and still be attributed.
std::string metrics_jsonl_row(const MetricsSnapshot& cur,
                              const MetricsSnapshot* prev, double t_sec,
                              double dt_sec, const std::string& label,
                              int node_id = -1);

class MetricsExporter {
 public:
  explicit MetricsExporter(Registry& registry) : registry_(registry) {}
  ~MetricsExporter() { stop(); }

  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;

  /// Start sampling every `interval_ms` into a file (append mode, so one
  /// archive can hold several runs). False if the file cannot be opened.
  bool start_file(const std::string& path, int interval_ms,
                  std::string label = {});

  /// Start sampling into a caller-owned stream (must outlive stop()).
  void start_stream(std::ostream* sink, int interval_ms, std::string label = {});

  /// Stop the sampler: takes one final sample, flushes, joins. Idempotent.
  void stop();

  /// Stamp every row with a cluster node id (DESIGN.md §15). Call before
  /// start; negative (the default) omits the field.
  void set_node_id(int id) { node_id_ = id; }

  bool running() const { return thread_.joinable(); }
  std::uint64_t samples() const {
    return samples_.load(std::memory_order_relaxed);
  }

 private:
  void start(int interval_ms, std::string label);
  void loop(int interval_ms);
  void sample_once();

  Registry& registry_;
  // Sink plumbing and sample history are written by start()/stop() and the
  // sampler thread, ordered by the thread create/join edges — the mutex
  // below exists only for the stop handshake.
  std::ofstream file_;
  std::ostream* sink_ = nullptr;
  std::string label_;
  int node_id_ = -1;
  std::thread thread_;  // thread-ok: sampler thread, joined in stop()
  runtime::Mutex mu_{runtime::rank::kTelemetryExporter,
                     "telemetry::MetricsExporter::mu_"};
  runtime::CondVar cv_;
  bool stopping_ FFSVA_GUARDED_BY(mu_) = false;
  std::atomic<std::uint64_t> samples_{0};
  bool have_prev_ = false;
  MetricsSnapshot prev_;
  double prev_t_sec_ = 0.0;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace ffsva::telemetry
