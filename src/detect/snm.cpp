#include "detect/snm.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <numeric>
#include <ostream>
#include <stdexcept>

#include "detect/fault_hook.hpp"
#include "image/ops.hpp"
#include "nn/loss.hpp"
#include "nn/optim.hpp"
#include "runtime/binary_io.hpp"
#include "runtime/cancel.hpp"

namespace ffsva::detect {

namespace {
int conv_out(int in, int kernel, int stride, int pad) {
  return (in + 2 * pad - kernel) / stride + 1;
}
}  // namespace

SnmFilter::SnmFilter(SnmConfig config, const image::Image& background, std::uint64_t seed)
    : config_(config),
      // Color is kept: the network input is the max-channel difference map,
      // matching the detectors' motion map, so chromatic-only objects (a
      // luma-neutral red car) remain visible to the filter.
      background_small_(image::resize_bilinear(background, config.input_size,
                                               config.input_size)) {
  runtime::Xoshiro256 rng(seed);
  const int s1 = conv_out(config_.input_size, 3, 2, 1);
  const int s2 = conv_out(s1, 3, 2, 1);
  fc_features_ = config_.conv2_filters * s2 * s2;
  net_ = std::make_unique<nn::Sequential>();
  net_->add(std::make_unique<nn::Conv2d>(1, config_.conv1_filters, 3, 2, 1, rng))
      .add(std::make_unique<nn::ReLU>())
      .add(std::make_unique<nn::Conv2d>(config_.conv1_filters, config_.conv2_filters, 3, 2,
                                        1, rng))
      .add(std::make_unique<nn::ReLU>())
      .add(std::make_unique<nn::Linear>(fc_features_, 1, rng));
}

nn::Tensor SnmFilter::preprocess(const image::Image& frame) const {
  nn::Tensor x(1, 1, config_.input_size, config_.input_size);
  diff_preprocess(frame, background_small_, config_.input_size, scratch_.pre, x, 0);
  return x;
}

nn::Tensor SnmFilter::preprocess_batch(
    const std::vector<const image::Image*>& frames) const {
  nn::Tensor x;
  diff_preprocess_batch(frames, background_small_, config_.input_size,
                        scratch_.pre_batch, x);
  return x;
}

nn::Tensor SnmFilter::preprocess_batch_augmented(
    const std::vector<const image::Image*>& frames, runtime::Xoshiro256& rng) const {
  nn::Tensor base = preprocess_batch(frames);
  const int s = config_.input_size;
  if (config_.augment_shift <= 0 && !config_.augment_flip &&
      config_.augment_scale <= 0.0) {
    return base;
  }
  nn::Tensor out(base.n(), 1, s, s);
  const double c = (s - 1) * 0.5;
  for (int n = 0; n < base.n(); ++n) {
    const int dx = config_.augment_shift > 0
                       ? static_cast<int>(rng.range(-config_.augment_shift,
                                                    config_.augment_shift))
                       : 0;
    const int dy = config_.augment_shift > 0
                       ? static_cast<int>(rng.range(-config_.augment_shift,
                                                    config_.augment_shift))
                       : 0;
    const bool flip = config_.augment_flip && rng.chance(0.5);
    const double scale =
        config_.augment_scale > 0.0
            ? 1.0 + rng.uniform(-config_.augment_scale, config_.augment_scale)
            : 1.0;
    for (int y = 0; y < s; ++y) {
      // Inverse map: output -> (scale about the center) -> shift.
      const int sy = static_cast<int>(std::lround((y - dy - c) / scale + c));
      for (int x = 0; x < s; ++x) {
        int sx = static_cast<int>(std::lround((x - dx - c) / scale + c));
        if (flip) sx = s - 1 - sx;
        const float v = (sx >= 0 && sx < s && sy >= 0 && sy < s)
                            ? base.at(n, 0, sy, sx)
                            : 0.0f;
        out.at(n, 0, y, x) = v;
      }
    }
  }
  return out;
}

double SnmFilter::predict(const image::Image& frame) const {
  FaultHook::on_call(FaultStage::kSnm);
  runtime::check_cancel();
  const int s = config_.input_size;
  scratch_.input.resize(1, 1, s, s);
  diff_preprocess(frame, background_small_, s, scratch_.pre, scratch_.input, 0);
  const nn::Tensor& logits = net_->forward_inference(scratch_.input, scratch_.net);
  return nn::sigmoid(logits.at(0, 0, 0, 0));
}

std::vector<double> SnmFilter::predict_batch(
    const std::vector<const image::Image*>& frames) const {
  std::vector<double> out;
  if (frames.empty()) return out;
  FaultHook::on_call(FaultStage::kSnm);
  runtime::check_cancel();
  diff_preprocess_batch(frames, background_small_, config_.input_size,
                        scratch_.pre_batch, scratch_.input);
  const nn::Tensor& logits = net_->forward_inference(scratch_.input, scratch_.net);
  out.reserve(frames.size());
  for (int i = 0; i < logits.n(); ++i) out.push_back(nn::sigmoid(logits.at(i, 0, 0, 0)));
  return out;
}

void SnmFilter::set_filter_degree(double fd) {
  config_.filter_degree = std::clamp(fd, 0.0, 1.0);
}

void SnmFilter::set_thresholds(double c_low, double c_high) {
  config_.c_low = c_low;
  config_.c_high = std::max(c_high, c_low);
}

void SnmFilter::select_thresholds(const std::vector<double>& scores,
                                  const std::vector<bool>& labels) {
  std::vector<double> pos, neg;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    (labels[i] ? pos : neg).push_back(scores[i]);
  }
  if (pos.empty() || neg.empty()) return;  // keep defaults; degenerate stream
  std::sort(pos.begin(), pos.end());
  std::sort(neg.begin(), neg.end());
  // c_low: all but threshold_tail of positives score above it.
  const auto lo_idx = static_cast<std::size_t>(config_.threshold_tail *
                                               static_cast<double>(pos.size()));
  double c_low = pos[std::min(lo_idx, pos.size() - 1)] * config_.c_low_relax;
  // c_high: all but threshold_tail of negatives score below it.
  const auto hi_idx = static_cast<std::size_t>((1.0 - config_.threshold_tail) *
                                               static_cast<double>(neg.size()));
  double c_high = neg[std::min(hi_idx, neg.size() - 1)];
  if (c_low > c_high) {
    // Heavy overlap: fall back to a band around the crossing point.
    const double mid = 0.5 * (c_low + c_high);
    c_low = std::max(0.02, mid - 0.1);
    c_high = std::min(0.98, mid + 0.1);
  }
  config_.c_low = c_low;
  config_.c_high = c_high;
}

SnmTrainReport SnmFilter::train(const std::vector<video::Frame>& frames,
                                const std::vector<bool>& labels, double val_fraction) {
  if (frames.size() != labels.size() || frames.empty()) {
    throw std::invalid_argument("SnmFilter::train: bad inputs");
  }
  SnmTrainReport report;

  // Deterministic shuffle, then split train/validation (Section 4.1: "these
  // labeled data are divided into two subsets as a training dataset and a
  // test dataset").
  runtime::Xoshiro256 rng(0x5151u + frames.size());
  std::vector<std::size_t> order(frames.size());
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }
  const auto val_count = static_cast<std::size_t>(val_fraction *
                                                  static_cast<double>(order.size()));
  const std::size_t train_count = order.size() - val_count;

  for (std::size_t i = 0; i < order.size(); ++i) {
    (labels[order[i]] ? report.positives : report.negatives) += 1;
  }

  nn::Sgd optimizer(net_->params(), {config_.lr, 0.9, 1e-4});
  double lr = config_.lr;

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    // Re-shuffle the training prefix each epoch.
    for (std::size_t i = train_count; i > 1; --i) {
      std::swap(order[i - 1], order[rng.below(i)]);
    }
    double epoch_loss = 0.0;
    int batches = 0;
    for (std::size_t start = 0; start < train_count;
         start += static_cast<std::size_t>(config_.batch_size)) {
      const std::size_t end =
          std::min(train_count, start + static_cast<std::size_t>(config_.batch_size));
      std::vector<const image::Image*> imgs;
      std::vector<float> targets;
      for (std::size_t i = start; i < end; ++i) {
        imgs.push_back(&frames[order[i]].image);
        targets.push_back(labels[order[i]] ? 1.0f : 0.0f);
      }
      const nn::Tensor x = preprocess_batch_augmented(imgs, rng);
      const nn::Tensor logits = net_->forward(x, /*train=*/true);
      nn::Tensor grad;
      epoch_loss += nn::bce_with_logits(logits, targets, grad);
      ++batches;
      net_->backward(grad);
      optimizer.step();
    }
    report.final_loss = batches ? epoch_loss / batches : 0.0;
    lr *= config_.lr_decay;
    optimizer.set_lr(lr);
  }

  // Accuracy + threshold selection.
  auto evaluate = [&](std::size_t begin, std::size_t end, std::vector<double>* scores,
                      std::vector<bool>* score_labels) {
    int correct = 0, total = 0;
    for (std::size_t i = begin; i < end; ++i) {
      const double c = predict(frames[order[i]].image);
      const bool pred = c >= 0.5;
      if (pred == labels[order[i]]) ++correct;
      ++total;
      if (scores) {
        scores->push_back(c);
        score_labels->push_back(labels[order[i]]);
      }
    }
    return total ? static_cast<double>(correct) / total : 0.0;
  };

  report.train_accuracy = evaluate(0, train_count, nullptr, nullptr);
  std::vector<double> val_scores;
  std::vector<bool> val_labels;
  report.val_accuracy =
      evaluate(train_count, order.size(), &val_scores, &val_labels);
  if (val_scores.size() >= 10) {
    select_thresholds(val_scores, val_labels);
  } else {
    // Tiny validation set: select on everything.
    std::vector<double> all_scores;
    std::vector<bool> all_labels;
    evaluate(0, order.size(), &all_scores, &all_labels);
    select_thresholds(all_scores, all_labels);
  }
  report.c_low = config_.c_low;
  report.c_high = config_.c_high;
  return report;
}

void SnmFilter::save(std::ostream& os) const {
  runtime::write_pod(os, &config_.c_low);
  runtime::write_pod(os, &config_.c_high);
  net_->save(os);
}

void SnmFilter::load(std::istream& is) {
  if (!runtime::read_pod(is, &config_.c_low) ||
      !runtime::read_pod(is, &config_.c_high)) {
    throw std::runtime_error("truncated SNM threshold header on load");
  }
  net_->load(is);
}

}  // namespace ffsva::detect
