# Empty compiler generated dependencies file for ffsva_bench_common.
# This may be replaced when dependencies are built.
