// Figure 8 — number of output frames and error rate as a function of
// NumberofObjects.
//
// Paper: (a) car detection, TOR 0.197 — output drops steeply (~80%) by
// N=3 because the road scene holds at most ~3 cars; (b) person detection,
// TOR 1.000 — output decreases gradually and approaches 0 past N~12; the
// error rate is relatively high because T-YOLO undercounts small dense
// persons, and tolerating 1-2 miscounted objects cuts the error by 80.7% /
// 94.8% at a 12.6% / 22.2% filtering-efficiency cost (Section 5.3.3).
//
// Method: real filters, recorded traces; N swept as a threshold. The
// "tolerance" rows relax the executed threshold to N - tol while the error
// is still judged against the user's intent N (ref_count >= N).
#include "common.hpp"

using namespace ffsva;

namespace {

struct Point {
  std::int64_t output = 0;
  std::int64_t fn = 0;
  double error = 0.0;
};

/// Cascade with the executed T-YOLO threshold relaxed by `tol`, error
/// measured against intent `n`.
Point eval_with_tolerance(const std::vector<core::FrameRecord>& trace,
                          const core::CascadeThresholds& base, int n, int tol) {
  Point p;
  core::CascadeThresholds t = base;
  t.number_of_objects = std::max(1, n - tol);
  for (const auto& r : trace) {
    const bool pass = core::apply_cascade(r, t) == core::FilteredAt::kNone;
    p.output += pass;
    if (r.ref_count >= n && !pass) ++p.fn;
  }
  p.error = static_cast<double>(p.fn) / static_cast<double>(trace.size());
  return p;
}

void sweep(const char* title, bench::CalibratedStream& s, int max_n) {
  const auto base = core::thresholds_of(s.models, 1);
  std::printf("\n%s   (%zu frames)\n", title, s.trace.size());
  std::printf("%-4s %14s %12s | %20s | %20s\n", "N", "output frames", "error",
              "tol=1: out / err", "tol=2: out / err");
  bench::print_rule();
  for (int n = 1; n <= max_n; ++n) {
    const auto strict = eval_with_tolerance(s.trace, base, n, 0);
    const auto tol1 = eval_with_tolerance(s.trace, base, n, 1);
    const auto tol2 = eval_with_tolerance(s.trace, base, n, 2);
    std::printf("%-4d %14lld %12.4f | %10lld / %7.4f | %10lld / %7.4f\n", n,
                static_cast<long long>(strict.output), strict.error,
                static_cast<long long>(tol1.output), tol1.error,
                static_cast<long long>(tol2.output), tol2.error);
  }
}

}  // namespace

int main() {
  bench::print_header("FIGURE 8 -- output frames & error rate vs NumberofObjects");

  {
    auto s = bench::build_stream(video::jackson_profile(), 0.197, 63, 1200, 5000, 8);
    sweep("(a) car detection, TOR ~= 0.197", s, 5);
    std::printf("(paper: ~80%% fewer output frames by N=3 -- the scene holds <=3 cars)\n");
  }
  {
    auto cfg = video::coral_profile();
    cfg.width = 256;
    cfg.height = 144;
    auto s = bench::build_stream(cfg, 1.0, 64, 1200, 5000, 8);
    sweep("(b) person detection, TOR = 1.000", s, 14);
    std::printf(
        "(paper: gradual decrease, ~0 past N~12; tolerating 1-2 objects cuts the\n"
        " error by 80.7%% / 94.8%% for a 12.6%% / 22.2%% efficiency cost)\n");
  }
  return 0;
}
