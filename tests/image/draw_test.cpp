#include "image/draw.hpp"

#include <gtest/gtest.h>

namespace ffsva::image {
namespace {

TEST(Draw, FillRectWritesColorInside) {
  Image img(10, 10, 3, 0);
  fill_rect(img, Box{2, 3, 5, 6}, Rgb{10, 20, 30});
  EXPECT_EQ(img.at(2, 3, 0), 10);
  EXPECT_EQ(img.at(4, 5, 1), 20);
  EXPECT_EQ(img.at(4, 5, 2), 30);
  EXPECT_EQ(img.at(5, 6, 0), 0);  // half-open: boundary untouched
  EXPECT_EQ(img.at(1, 3, 0), 0);
}

TEST(Draw, FillRectClipsToImage) {
  Image img(4, 4, 3, 0);
  fill_rect(img, Box{-10, -10, 100, 100}, Rgb{255, 0, 0});
  EXPECT_EQ(img.at(0, 0, 0), 255);
  EXPECT_EQ(img.at(3, 3, 0), 255);
}

TEST(Draw, FillRectOnGrayUsesLuma) {
  Image img(3, 3, 1, 0);
  fill_rect(img, Box{0, 0, 3, 3}, Rgb{255, 255, 255});
  EXPECT_GE(img.at(1, 1), 254);
}

TEST(Draw, EllipseStaysInsideBoundingBox) {
  Image img(21, 21, 3, 0);
  fill_ellipse(img, 10, 10, 5, 3, Rgb{100, 0, 0});
  EXPECT_EQ(img.at(10, 10, 0), 100);  // center
  EXPECT_EQ(img.at(15, 10, 0), 100);  // +rx on axis
  EXPECT_EQ(img.at(10, 13, 0), 100);  // +ry on axis
  EXPECT_EQ(img.at(16, 10, 0), 0);    // beyond rx
  EXPECT_EQ(img.at(15, 13, 0), 0);    // corner outside the ellipse
}

TEST(Draw, EllipseDegenerateRadiiNoop) {
  Image img(5, 5, 3, 0);
  fill_ellipse(img, 2, 2, 0, 3, Rgb{9, 9, 9});
  for (std::size_t i = 0; i < img.size_bytes(); ++i) EXPECT_EQ(img.data()[i], 0);
}

TEST(Draw, VerticalGradientEndpoints) {
  Image img(4, 10, 3);
  fill_vertical_gradient(img, Rgb{0, 0, 0}, Rgb{200, 100, 50});
  EXPECT_EQ(img.at(0, 0, 0), 0);
  EXPECT_EQ(img.at(0, 9, 0), 200);
  EXPECT_EQ(img.at(0, 9, 1), 100);
  // Monotone down the column.
  for (int y = 1; y < 10; ++y) EXPECT_GE(img.at(2, y, 0), img.at(2, y - 1, 0));
}

TEST(Draw, ApplyGainScalesAndClamps) {
  Image img(2, 1, 1);
  img.at(0, 0) = 100;
  img.at(1, 0) = 200;
  apply_gain(img, 1.5);
  EXPECT_EQ(img.at(0, 0), 150);
  EXPECT_EQ(img.at(1, 0), 255);  // clamped
}

TEST(Draw, ApplyGainBelowOneDarkens) {
  Image img(1, 1, 1);
  img.at(0, 0) = 100;
  apply_gain(img, 0.5);
  EXPECT_EQ(img.at(0, 0), 50);
}

TEST(Draw, FillBandCoversRows) {
  Image img(6, 8, 3, 0);
  fill_band(img, 2, 4, Rgb{0, 50, 0});
  EXPECT_EQ(img.at(3, 2, 1), 50);
  EXPECT_EQ(img.at(3, 3, 1), 50);
  EXPECT_EQ(img.at(3, 4, 1), 0);
  EXPECT_EQ(img.at(3, 1, 1), 0);
}

TEST(Draw, BlendRectAlphaZeroAndOne) {
  Image img(4, 4, 3, 100);
  blend_rect(img, Box{0, 0, 4, 4}, Rgb{200, 200, 200}, 0.0);
  EXPECT_EQ(img.at(1, 1, 0), 100);
  blend_rect(img, Box{0, 0, 4, 4}, Rgb{200, 200, 200}, 1.0);
  EXPECT_EQ(img.at(1, 1, 0), 200);
}

TEST(Draw, BlendRectHalfAlpha) {
  Image img(2, 2, 3, 0);
  blend_rect(img, Box{0, 0, 2, 2}, Rgb{100, 100, 100}, 0.5);
  EXPECT_NEAR(img.at(0, 0, 0), 50, 1);
}

}  // namespace
}  // namespace ffsva::image
