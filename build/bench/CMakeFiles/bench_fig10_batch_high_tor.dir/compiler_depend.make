# Empty compiler generated dependencies file for bench_fig10_batch_high_tor.
# This may be replaced when dependencies are built.
