# Empty compiler generated dependencies file for bench_table2_error_frames.
# This may be replaced when dependencies are built.
