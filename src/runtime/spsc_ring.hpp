// Single-producer / single-consumer lock-free ring buffer.
//
// Used on the hottest intra-stream edge (prefetch -> SDD), where exactly one
// decoder thread feeds exactly one SDD thread. Follows the classic
// Lamport ring with acquire/release indices; capacity is rounded up to a
// power of two so the index mask is a single AND.
//
// Per C++ Core Guidelines CP.100 we keep the lock-free surface tiny and
// conventional: two monotonically increasing counters, each written by one
// thread only.
//
// relaxed-ok: each index is relaxed-read only by its own writer (the other
// side always reads it with acquire); the release store on publish carries
// the slot's happens-before edge.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

namespace ffsva::runtime {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t min_capacity)
      : mask_(std::bit_ceil(min_capacity < 2 ? std::size_t{2} : min_capacity) - 1),
        slots_(mask_ + 1) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Returns false when full.
  bool try_push(T value) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail > mask_) return false;  // full
    slots_[head & mask_] = std::move(value);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns nullopt when empty.
  std::optional<T> try_pop() {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    if (tail == head) return std::nullopt;  // empty
    T v = std::move(slots_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return v;
  }

  std::size_t capacity() const { return mask_ + 1; }

  /// Approximate size; exact when called from either endpoint thread.
  std::size_t size_approx() const {
    return static_cast<std::size_t>(head_.load(std::memory_order_acquire) -
                                    tail_.load(std::memory_order_acquire));
  }

 private:
  const std::uint64_t mask_;
  std::vector<T> slots_;
  alignas(64) std::atomic<std::uint64_t> head_{0};
  alignas(64) std::atomic<std::uint64_t> tail_{0};
};

}  // namespace ffsva::runtime
