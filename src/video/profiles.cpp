#include "video/profiles.hpp"

namespace ffsva::video {

SceneConfig jackson_profile() {
  SceneConfig c;
  c.width = 320;
  c.height = 240;
  c.fps = 30.0;
  c.target = ObjectClass::kCar;
  c.tor = 0.08;
  c.mean_scene_len_frames = 110;
  c.max_objects = 3;
  c.multi_object_bias = 0.40;
  c.lighting_amp = 0.04;
  c.noise_amp = 2.0;
  c.dynamic_texture = 0.0;
  c.stopline_fraction = 0.15;
  c.stall_frames = 80;
  c.car_w = 54;
  c.car_h = 23;
  c.distractor_rate = 0.30;
  return c;
}

SceneConfig coral_profile() {
  SceneConfig c;
  c.width = 384;
  c.height = 216;
  c.fps = 30.0;
  c.target = ObjectClass::kPerson;
  c.tor = 0.50;
  c.mean_scene_len_frames = 160;
  c.max_objects = 12;
  c.multi_object_bias = 0.65;
  c.lighting_amp = 0.02;
  c.noise_amp = 2.0;
  c.dynamic_texture = 0.45;
  c.crowd_sigma = 15.0;
  c.person_h = 20;
  c.distractor_rate = 0.25;
  return c;
}

SceneConfig with_tor(SceneConfig base, double tor) {
  base.tor = tor;
  return base;
}

double measure_tor(const SceneSimulator& sim, double min_visible) {
  std::int64_t hits = 0;
  for (std::int64_t i = 0; i < sim.total_frames(); ++i) {
    if (sim.render(i).gt.any(sim.config().target, min_visible)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(sim.total_frames());
}

WorkloadRow describe(const std::string& name, const SceneConfig& config,
                     std::uint64_t seed, std::int64_t frames) {
  SceneSimulator sim(config, seed, frames);
  WorkloadRow row;
  row.name = name;
  row.width = config.width;
  row.height = config.height;
  row.object = to_string(config.target);
  row.fps = config.fps;
  row.tor = measure_tor(sim);
  return row;
}

}  // namespace ffsva::video
