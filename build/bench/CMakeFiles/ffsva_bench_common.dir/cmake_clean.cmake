file(REMOVE_RECURSE
  "CMakeFiles/ffsva_bench_common.dir/common.cpp.o"
  "CMakeFiles/ffsva_bench_common.dir/common.cpp.o.d"
  "libffsva_bench_common.a"
  "libffsva_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ffsva_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
