// Scene-change monitoring (paper Section 5.5, "Scene Switch"):
//
//   "when the scene changes dramatically or the function and position of
//    the camera have changed, the previous specialized models will no
//    longer work. If there are no saved models in the past that can match
//    the current environment, a new network model needs to be trained
//    according to the new scene."
//
// The monitor watches the SDD distance stream, which the pipeline computes
// anyway. A *content* event (object passing) is a transient spike; a
// *scene switch* (camera bumped, repointed, lens blocked) is a sustained
// shift of the distance floor: the rolling minimum over the window never
// returns to the calibrated background level. When that persists for
// `confirm_frames`, the monitor fires and the owner should re-specialize
// (or recall a saved model whose background matches the new scene).
#pragma once

#include <cstdint>
#include <deque>

namespace ffsva::detect {

struct SceneChangeConfig {
  /// Multiple of the calibrated background-distance level above which the
  /// rolling floor indicates the old background no longer occurs.
  double floor_factor = 4.0;
  /// Absolute floor offset, so a near-zero calibration level still leaves
  /// headroom for noise.
  double floor_offset = 8.0;
  /// Sliding window over which the minimum distance (the "floor") is taken.
  /// Must exceed the longest plausible single scene, or a busy period
  /// would look like a scene switch.
  int window_frames = 600;
  /// The floor must stay elevated this long before the monitor fires.
  int confirm_frames = 300;
};

class SceneChangeMonitor {
 public:
  /// `background_level`: typical SDD distance of a background frame under
  /// the current models (e.g. the calibrated delta_diff, or a measured
  /// background-frame quantile).
  SceneChangeMonitor(SceneChangeConfig config, double background_level);

  /// Feed the SDD distance of the next frame; returns true exactly once
  /// per detected scene switch (re-arms after reset()).
  bool observe(double sdd_distance);

  /// Current rolling floor (min distance in the window); 0 before any data.
  double floor() const;

  bool triggered() const { return triggered_; }
  std::int64_t frames_elevated() const { return elevated_; }

  /// After re-specialization, restart monitoring against the new level.
  void reset(double background_level);

 private:
  double threshold() const {
    return background_level_ * config_.floor_factor + config_.floor_offset;
  }

  struct Sample {
    std::int64_t index;
    double value;
  };

  SceneChangeConfig config_;
  double background_level_;
  std::int64_t frame_count_ = 0;
  // bounded-ok: monotonic window minimum, pruned to the window span every
  // push; single-thread per-stream state, not an inter-thread channel.
  std::deque<Sample> mono_min_;  ///< Monotonic deque: front = window minimum.
  std::int64_t elevated_ = 0;
  bool triggered_ = false;
};

}  // namespace ffsva::detect
