#include "core/cluster.hpp"

#include <gtest/gtest.h>

#include "core/pipeline.hpp"

namespace ffsva::core {
namespace {

FfsVaConfig cfg() {
  FfsVaConfig c;
  c.admit_tyolo_fps = 140.0;
  c.admit_window_sec = 5.0;
  return c;
}

/// Feed `fps` worth of service reports over [t0, t1] at 10 Hz.
void feed(ClusterManager& cm, int id, double t0, double t1, double fps) {
  for (double t = t0; t <= t1; t += 0.1) {
    cm.report_tyolo_service(id, t, static_cast<int>(fps * 0.1));
  }
}

TEST(ClusterManager, RejectsEmptyCluster) {
  EXPECT_THROW(ClusterManager(0, cfg()), std::invalid_argument);
}

TEST(ClusterManager, StreamMembership) {
  ClusterManager cm(2, cfg());
  cm.attach_stream(7, 0);
  cm.attach_stream(8, 1);
  cm.attach_stream(9, 1);
  EXPECT_EQ(cm.instance_of(7), 0);
  EXPECT_EQ(cm.stream_count(1), 2);
  cm.attach_stream(7, 1);  // move
  EXPECT_EQ(cm.instance_of(7), 1);
  EXPECT_EQ(cm.stream_count(0), 0);
  cm.detach_stream(7);
  EXPECT_EQ(cm.instance_of(7), -1);
  EXPECT_EQ(cm.stream_count(1), 2);
}

TEST(ClusterManager, PlacementPrefersQuietLeastLoaded) {
  ClusterManager cm(3, cfg());
  // All instances quiet over a full window.
  for (int i = 0; i < 3; ++i) feed(cm, i, 0.0, 6.0, 10.0);
  cm.attach_stream(1, 0);
  cm.attach_stream(2, 0);
  cm.attach_stream(3, 1);
  const auto placed = cm.place_new_stream(6.0);
  ASSERT_TRUE(placed.has_value());
  EXPECT_EQ(*placed, 2);  // fewest streams
}

TEST(ClusterManager, NoPlacementWithoutEvidence) {
  ClusterManager cm(2, cfg());
  feed(cm, 0, 0.0, 1.0, 10.0);  // only 1 s of history (< window)
  feed(cm, 1, 0.0, 6.0, 200.0);  // busy
  EXPECT_FALSE(cm.place_new_stream(1.0).has_value());
}

TEST(ClusterManager, BusyInstanceIsNotSpare) {
  ClusterManager cm(1, cfg());
  feed(cm, 0, 0.0, 6.0, 200.0);  // above admit_tyolo_fps
  EXPECT_FALSE(cm.instance_has_spare(0, 6.0));
  EXPECT_FALSE(cm.place_new_stream(6.0).has_value());
}

TEST(ClusterManager, ReforwardMovesFromOverloadedToSpare) {
  ClusterManager cm(2, cfg());
  cm.attach_stream(10, 0);
  cm.attach_stream(11, 0);
  feed(cm, 0, 0.0, 6.0, 200.0);
  feed(cm, 1, 0.0, 6.0, 10.0);
  cm.report_queue_over_threshold(0, 6.0);  // overload signal
  const auto d = cm.next_reforward(6.0);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->from_instance, 0);
  EXPECT_EQ(d->to_instance, 1);
  EXPECT_EQ(cm.instance_of(d->stream_id), 1);
  EXPECT_EQ(cm.stream_count(0), 1);
  EXPECT_EQ(cm.stream_count(1), 1);
}

TEST(ClusterManager, NoReforwardWithoutOverload) {
  ClusterManager cm(2, cfg());
  cm.attach_stream(1, 0);
  feed(cm, 0, 0.0, 6.0, 10.0);
  feed(cm, 1, 0.0, 6.0, 10.0);
  EXPECT_FALSE(cm.next_reforward(6.0).has_value());
}

TEST(ClusterManager, NoReforwardWithoutSpareTarget) {
  ClusterManager cm(2, cfg());
  cm.attach_stream(1, 0);
  cm.attach_stream(2, 1);
  feed(cm, 0, 0.0, 6.0, 200.0);
  feed(cm, 1, 0.0, 6.0, 200.0);
  cm.report_queue_over_threshold(0, 6.0);
  EXPECT_FALSE(cm.next_reforward(6.0).has_value());
}

TEST(ClusterManager, OverloadSignalDecaysAndReforwardStops) {
  ClusterManager cm(2, cfg());
  cm.attach_stream(1, 0);
  feed(cm, 0, 0.0, 6.0, 200.0);
  feed(cm, 1, 0.0, 12.0, 10.0);
  cm.report_queue_over_threshold(0, 6.0);
  EXPECT_TRUE(cm.instance_overloaded(0, 6.5));
  EXPECT_FALSE(cm.instance_overloaded(0, 8.0));  // decayed
  EXPECT_FALSE(cm.next_reforward(8.0).has_value());
}

// --- report_snapshot: the live-engine reporting path ----------------------

/// A snapshot with `streams` streams, each having served `tyolo_in` frames,
/// with every queue at `queue_depth`.
InstanceSnapshot snap_of(int streams, std::uint64_t tyolo_in,
                         std::size_t queue_depth = 0, int quarantined = 0) {
  InstanceSnapshot snap;
  for (int i = 0; i < streams; ++i) {
    StreamSnapshot s;
    s.id = i;
    s.tyolo_in = tyolo_in;
    s.snm_queue_depth = queue_depth;
    s.tyolo_queue_depth = queue_depth;
    snap.streams.push_back(s);
  }
  snap.health.quarantined_streams = quarantined;
  snap.health.healthy_streams = streams - quarantined;
  return snap;
}

/// Feed idle (zero-delta) snapshots over [t0, t1] at 10 Hz so the instance
/// ages into demonstrated spare capacity.
void feed_idle_snapshots(ClusterManager& cm, int id, double t0, double t1) {
  for (double t = t0; t <= t1; t += 0.1) cm.report_snapshot(id, t, snap_of(1, 50));
}

TEST(ClusterManager, UnhealthySnapshotBlocksPlacement) {
  ClusterManager cm(2, cfg());
  feed_idle_snapshots(cm, 0, 0.0, 6.0);
  feed_idle_snapshots(cm, 1, 0.0, 6.0);
  cm.attach_stream(1, 1);  // instance 0 has fewer streams: default target
  ASSERT_EQ(cm.place_new_stream(6.0), std::optional<int>(0));

  // A quarantined stream in the live snapshot marks the instance unhealthy:
  // it stops receiving placements even though its rate signal looks spare.
  cm.report_snapshot(0, 6.0, snap_of(2, 50, 0, /*quarantined=*/1));
  EXPECT_FALSE(cm.instance_healthy(0));
  EXPECT_EQ(cm.place_new_stream(6.0), std::optional<int>(1));

  // Health follows the snapshots: a clean one restores eligibility.
  cm.report_snapshot(0, 6.1, snap_of(2, 50));
  EXPECT_TRUE(cm.instance_healthy(0));
  EXPECT_EQ(cm.place_new_stream(6.1), std::optional<int>(0));
}

TEST(ClusterManager, UnhealthyOnlyInstanceMeansNoPlacement) {
  ClusterManager cm(1, cfg());
  feed_idle_snapshots(cm, 0, 0.0, 6.0);
  ASSERT_TRUE(cm.place_new_stream(6.0).has_value());
  cm.report_snapshot(0, 6.0, snap_of(1, 50, 0, /*quarantined=*/1));
  EXPECT_FALSE(cm.place_new_stream(6.0).has_value());
}

TEST(ClusterManager, SetInstanceHealthIsAnOutOfBandGate) {
  ClusterManager cm(2, cfg());
  feed_idle_snapshots(cm, 0, 0.0, 6.0);
  feed_idle_snapshots(cm, 1, 0.0, 6.0);
  cm.set_instance_health(0, false);
  EXPECT_FALSE(cm.instance_healthy(0));
  EXPECT_EQ(cm.place_new_stream(6.0), std::optional<int>(1));
  cm.set_instance_health(0, true);
  EXPECT_TRUE(cm.instance_healthy(0));
}

TEST(ClusterManager, UnhealthyInstanceIsDrainedByReforward) {
  ClusterManager cm(2, cfg());
  cm.attach_stream(1, 0);
  cm.attach_stream(2, 0);
  feed_idle_snapshots(cm, 0, 0.0, 6.0);
  feed_idle_snapshots(cm, 1, 0.0, 6.0);
  // Not overloaded — queues are empty — but quarantines make it a source.
  cm.report_snapshot(0, 6.0, snap_of(2, 50, 0, /*quarantined=*/1));
  const auto d = cm.next_reforward(6.0);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->from_instance, 0);
  EXPECT_EQ(d->to_instance, 1);
}

TEST(ClusterManager, SnapshotQueueAtThresholdRaisesOverload) {
  const auto c = cfg();
  ClusterManager cm(2, c);
  cm.attach_stream(1, 0);
  feed_idle_snapshots(cm, 0, 0.0, 6.0);
  feed_idle_snapshots(cm, 1, 0.0, 6.0);
  EXPECT_FALSE(cm.instance_overloaded(0, 6.0));

  const auto full = static_cast<std::size_t>(c.capacity(c.tyolo_queue_depth));
  InstanceSnapshot snap = snap_of(1, 60);
  snap.streams[0].tyolo_queue_depth = full;
  cm.report_snapshot(0, 6.0, snap);
  EXPECT_TRUE(cm.instance_overloaded(0, 6.0));
  const auto d = cm.next_reforward(6.0);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->from_instance, 0);
  EXPECT_EQ(d->to_instance, 1);
}

TEST(ClusterManager, SnapshotServedDeltaFeedsAdmissionRate) {
  ClusterManager cm(1, cfg());  // admit threshold: 140 fps
  // 8 streams each advancing 25 frames per 0.1 s => 2000 fps served.
  for (int k = 0; k <= 60; ++k) {
    cm.report_snapshot(0, 0.1 * k, snap_of(8, 25u * static_cast<unsigned>(k)));
  }
  EXPECT_FALSE(cm.instance_has_spare(0, 6.0));  // far above the threshold
  EXPECT_FALSE(cm.place_new_stream(6.0).has_value());
}

TEST(ClusterManager, SnapshotCounterRegressionRebaselines) {
  ClusterManager cm(1, cfg());
  cm.report_snapshot(0, 0.0, snap_of(1, 100000));
  // The instance restarted: its cumulative counter went backwards. The
  // delta must be discarded (re-baseline), not fed as a huge rate.
  cm.report_snapshot(0, 0.1, snap_of(1, 10));
  feed_idle_snapshots(cm, 0, 0.2, 6.0);
  // Checked at t=5.0 so a wrongly-fed wraparound delta (t=0.1) would still
  // sit inside the 5 s admission window and sink this below.
  EXPECT_TRUE(cm.instance_has_spare(0, 5.0));
}

TEST(ClusterManager, HandoffResetsServedBaseline) {
  ClusterManager cm(2, cfg());
  cm.attach_stream(7, 0);
  // Instance 0 idles over a full window: two resident streams, small totals.
  for (double t = 0.0; t <= 6.0; t += 0.1) {
    cm.report_snapshot(0, t, snap_of(2, 1000));
  }
  ASSERT_TRUE(cm.instance_has_spare(0, 6.0));
  // Stream 7 hands off to instance 1 and later returns carrying 100000
  // accumulated tyolo_in frames. The cumulative tyolo_served() sum jumps by
  // that history — a baseline shift, not service performed.
  cm.attach_stream(7, 1);
  cm.attach_stream(7, 0);
  InstanceSnapshot ret = snap_of(2, 1000);
  StreamSnapshot back;
  back.id = 7;
  back.tyolo_in = 100000;
  ret.streams.push_back(back);
  ++ret.health.healthy_streams;
  for (double t = 6.1; t <= 11.0; t += 0.1) cm.report_snapshot(0, t, ret);
  // Without the attach-time baseline reset the jump reads as a 100000-frame
  // burst that sits in the 5 s admission window at t=11.0 and sinks these.
  EXPECT_FALSE(cm.instance_overloaded(0, 11.0));
  EXPECT_TRUE(cm.instance_has_spare(0, 11.0));
}

TEST(ClusterManager, RepeatedReforwardDrainsOverloadedInstance) {
  ClusterManager cm(2, cfg());
  for (int s = 0; s < 4; ++s) cm.attach_stream(s, 0);
  feed(cm, 0, 0.0, 6.0, 200.0);
  feed(cm, 1, 0.0, 6.0, 10.0);
  cm.report_queue_over_threshold(0, 6.0);
  int moves = 0;
  while (cm.next_reforward(6.0 + 0.01 * moves).has_value()) {
    ++moves;
    if (moves > 10) break;
  }
  // Moves until the target no longer has fewer streams / source drains.
  EXPECT_GT(moves, 0);
  EXPECT_LE(cm.stream_count(0) - cm.stream_count(1), 1);
}

}  // namespace
}  // namespace ffsva::core
