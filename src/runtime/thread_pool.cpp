#include "runtime/thread_pool.hpp"

#include <cstdlib>
#include <cstring>
#include <utility>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace ffsva::runtime {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

bool ThreadPool::submit(std::function<void()> task) {
  {
    MutexLock lk(mu_);
    if (stopping_) return false;
    tasks_.push_back(std::move(task));
  }
  work_available_.notify_one();
  return true;
}

void ThreadPool::wait_idle() {
  UniqueLock lk(mu_);
  while (!tasks_.empty() || active_ != 0) idle_.wait(lk);
}

void ThreadPool::shutdown() {
  {
    MutexLock lk(mu_);
    if (stopping_) {
      // Already shut down by a previous call; workers may be joined.
    }
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      UniqueLock lk(mu_);
      while (!stopping_ && tasks_.empty()) work_available_.wait(lk);
      if (tasks_.empty()) {
        // stopping_ and drained
        return;
      }
      task = std::move(tasks_.front());
      tasks_.pop_front();
      ++active_;
    }
    task();
    {
      MutexLock lk(mu_);
      --active_;
      if (tasks_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

int cpu_count() {
#if defined(__linux__)
  cpu_set_t mask;
  CPU_ZERO(&mask);
  if (sched_getaffinity(0, sizeof(mask), &mask) == 0) {
    const int n = CPU_COUNT(&mask);
    if (n > 0) return n;
  }
#endif
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

bool pin_current_thread(int cpu) {
  if (cpu < 0) return false;
#if defined(__linux__)
  cpu_set_t mask;
  CPU_ZERO(&mask);
  if (sched_getaffinity(0, sizeof(mask), &mask) != 0) return false;
  // Pin to the (cpu mod population)-th *set* bit: the process mask may be
  // sparse (cgroup/taskset), so absolute CPU ids would miss it.
  const int population = CPU_COUNT(&mask);
  if (population <= 0) return false;
  int want = cpu % population;
  int chosen = -1;
  for (int c = 0; c < CPU_SETSIZE; ++c) {
    if (CPU_ISSET(c, &mask) && want-- == 0) {
      chosen = c;
      break;
    }
  }
  if (chosen < 0) return false;
  cpu_set_t one;
  CPU_ZERO(&one);
  CPU_SET(chosen, &one);
  return pthread_setaffinity_np(pthread_self(), sizeof(one), &one) == 0;
#else
  return false;
#endif
}

int resolve_ingest_affinity(int config_value) {
  if (const char* env = std::getenv("FFSVA_AFFINITY")) {
    if (*env == '\0' || std::strcmp(env, "off") == 0 || std::strcmp(env, "none") == 0) {
      return -1;
    }
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 0 && v <= 4096) return static_cast<int>(v);
    return -1;  // unparseable: disable rather than pin somewhere surprising
  }
  return config_value;
}

}  // namespace ffsva::runtime
