// Allocation-count checks for the inference hot path.
//
// The steady-state contract of the scratch-threaded forward pass is "warm
// calls never touch the heap": GemmScratch / InferenceScratch / SnmScratch
// buffers are grow-only and sized on the first call, after which predict()
// and forward_inference() must perform zero allocations. This test counts
// them directly by overriding the global allocation functions, which is
// why it lives in its own binary rather than nn_tests.
//
// The counter only increments between arm()/disarm(), so gtest's own
// bookkeeping outside the measured window doesn't pollute the count.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

namespace {
std::atomic<bool> g_armed{false};
std::atomic<long> g_allocs{0};

void count_alloc() {
  if (g_armed.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
}

struct AllocWindow {
  AllocWindow() {
    g_allocs.store(0, std::memory_order_relaxed);
    g_armed.store(true, std::memory_order_relaxed);
  }
  ~AllocWindow() { g_armed.store(false, std::memory_order_relaxed); }
  long count() const { return g_allocs.load(std::memory_order_relaxed); }
};
}  // namespace

void* operator new(std::size_t size) {
  count_alloc();
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  count_alloc();
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

// GCC's -Wmismatched-new-delete pairs an inlined free() with the new
// expression that produced the pointer; it cannot see that the replacement
// operator new above is itself malloc-backed, which makes the pairing valid.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

#include "detect/snm.hpp"
#include "nn/layers.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/rng.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/spans.hpp"

namespace ffsva {
namespace {

image::Image noise_image(int w, int h, std::uint64_t seed) {
  runtime::Xoshiro256 rng(seed);
  image::Image img(w, h, 1);
  for (std::size_t i = 0; i < img.size_bytes(); ++i) {
    img.data()[i] = static_cast<std::uint8_t>(rng.next() & 0xff);
  }
  return img;
}

TEST(ZeroAlloc, SequentialForwardInferenceIsAllocationFree) {
  runtime::set_compute_parallelism(1);
  runtime::Xoshiro256 rng(7);
  nn::Sequential net;
  net.add(std::make_unique<nn::Conv2d>(1, 8, 3, 2, 1, rng))
      .add(std::make_unique<nn::ReLU>())
      .add(std::make_unique<nn::Conv2d>(8, 16, 3, 2, 1, rng))
      .add(std::make_unique<nn::ReLU>())
      .add(std::make_unique<nn::MaxPool2d>(2, 2))
      .add(std::make_unique<nn::Linear>(16 * 6 * 6, 1, rng));

  nn::Tensor x(1, 1, 50, 50);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = 0.01f * static_cast<float>(i % 97);

  nn::InferenceScratch ws;
  net.forward_inference(x, ws);  // Warm-up sizes every buffer.
  net.forward_inference(x, ws);

  AllocWindow window;
  const nn::Tensor& y = net.forward_inference(x, ws);
  EXPECT_EQ(0, window.count());
  EXPECT_EQ(1u, y.size());
}

TEST(ZeroAlloc, WarmSnmPredictIsAllocationFree) {
  runtime::set_compute_parallelism(1);
  const image::Image background = noise_image(160, 120, 1);
  detect::SnmFilter snm(detect::SnmConfig{}, background, 99);

  const image::Image frame_a = noise_image(160, 120, 2);
  const image::Image frame_b = noise_image(160, 120, 3);
  (void)snm.predict(frame_a);  // Warm-up sizes scratch + resize plan.
  (void)snm.predict(frame_b);

  AllocWindow window;
  const double pa = snm.predict(frame_a);
  const double pb = snm.predict(frame_b);
  EXPECT_EQ(0, window.count());
  EXPECT_GE(pa, 0.0);
  EXPECT_LE(pa, 1.0);
  EXPECT_GE(pb, 0.0);
  EXPECT_LE(pb, 1.0);
}

TEST(ZeroAlloc, WarmSnmPredictBatchIsAllocationFree) {
  runtime::set_compute_parallelism(1);
  const image::Image background = noise_image(160, 120, 11);
  detect::SnmFilter snm(detect::SnmConfig{}, background, 99);

  std::vector<image::Image> frames;
  for (int i = 0; i < 4; ++i) frames.push_back(noise_image(160, 120, 20u + i));
  std::vector<const image::Image*> ptrs;
  for (const auto& f : frames) ptrs.push_back(&f);

  (void)snm.predict_batch(ptrs);
  (void)snm.predict_batch(ptrs);

  // The returned vector<double> itself must allocate; everything else is
  // warm. Allow exactly the result allocations for the two calls.
  AllocWindow window;
  const auto probs = snm.predict_batch(ptrs);
  EXPECT_LE(window.count(), 1);
  EXPECT_EQ(4u, probs.size());
}

// The telemetry hot path shares the zero-allocation contract: with metrics
// and tracing armed around the warm inference call — exactly how the
// instrumented engine runs — counter adds, histogram records, and span
// recording must stay off the heap.
TEST(ZeroAlloc, WarmInferenceWithTelemetryArmedIsAllocationFree) {
  runtime::set_compute_parallelism(1);
  const image::Image background = noise_image(160, 120, 31);
  detect::SnmFilter snm(detect::SnmConfig{}, background, 99);
  const image::Image frame = noise_image(160, 120, 32);
  (void)snm.predict(frame);  // Warm-up sizes scratch + resize plan.
  (void)snm.predict(frame);

  telemetry::Registry reg;
  telemetry::Counter& in = reg.counter("snm.in");
  telemetry::AtomicHistogram& hist = reg.histogram("executor.batch_size");
  telemetry::TraceBuffer trace(64);
  trace.enable();
  // Warm-up: registers this thread's span ring and counter shard slot.
  in.add(0);
  hist.record(1.0);
  {
    telemetry::ScopedSpan warm(trace, "warm", telemetry::Stage::kSnm);
  }

  AllocWindow window;
  {
    telemetry::ScopedSpan span(trace, "snm.batch", telemetry::Stage::kSnm);
    in.add();
    const double p = snm.predict(frame);
    hist.record(1.0);
    span.set_batch(1);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
  EXPECT_EQ(0, window.count());
  EXPECT_EQ(in.value(), 1u);
  EXPECT_EQ(hist.count(), 2u);
  EXPECT_EQ(trace.collect().size(), 2u);
}

}  // namespace
}  // namespace ffsva
