// Property-style tests for the crop-consolidation geometry (detect/crop_pack)
// and the batched reference entry points (detect_batch): packing never
// overlaps, the mosaic->frame coordinate round trip is exact, seam
// suppression fires only on straddlers, the full-frame fallback and the
// micro-batch are bit-for-bit the single-frame path, and a throwing frame
// fails alone.
#include "detect/crop_pack.hpp"

#include <gtest/gtest.h>

#include <random>

#include "image/draw.hpp"

namespace ffsva::detect {
namespace {

image::Image flat_bg(int w, int h, std::uint8_t v = 70) {
  return image::Image(w, h, 3, v);
}

void expect_same_detections(const DetectionResult& a, const DetectionResult& b) {
  ASSERT_EQ(a.detections.size(), b.detections.size());
  for (std::size_t i = 0; i < a.detections.size(); ++i) {
    EXPECT_EQ(a.detections[i].cls, b.detections[i].cls);
    EXPECT_EQ(a.detections[i].box, b.detections[i].box);
    EXPECT_DOUBLE_EQ(a.detections[i].confidence, b.detections[i].confidence);
    EXPECT_EQ(a.detections[i].instances, b.detections[i].instances);
    EXPECT_EQ(a.detections[i].pixels, b.detections[i].pixels);
  }
}

TEST(ConsolidateCandidates, PadsClipsAndMergesOverlaps) {
  // Two boxes 2*pad apart merge once padded; a third far away stays alone;
  // a degenerate box disappears.
  const auto out = consolidate_candidates(
      {image::Box{10, 10, 20, 20}, image::Box{22, 10, 30, 20},
       image::Box{100, 100, 120, 118}, image::Box{5, 5, 5, 9}},
      160, 120, /*pad=*/4);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], (image::Box{6, 6, 34, 24}));
  EXPECT_EQ(out[1], (image::Box{96, 96, 124, 120}));  // clipped to the frame
  for (const auto& b : out) EXPECT_FALSE(b.empty());
}

TEST(ConsolidateCandidates, TransitiveChainCollapsesToOneCrop) {
  // a overlaps b, b overlaps c, a does not overlap c: still one crop.
  const auto out = consolidate_candidates({image::Box{0, 0, 12, 10},
                                           image::Box{10, 0, 24, 10},
                                           image::Box{22, 0, 36, 10}},
                                          200, 100, /*pad=*/0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (image::Box{0, 0, 36, 10}));
}

std::vector<CropRequest> random_requests(const std::vector<image::Image>& frames,
                                         const image::Image& bg, std::mt19937& rng) {
  std::uniform_int_distribution<int> nd(1, 5);
  std::uniform_int_distribution<int> xd(0, 150);
  std::uniform_int_distribution<int> yd(0, 110);
  std::uniform_int_distribution<int> wd(4, 40);
  std::vector<CropRequest> reqs;
  for (const auto& f : frames) {
    CropRequest r;
    r.frame = &f;
    r.background = &bg;
    const int n = nd(rng);
    for (int i = 0; i < n; ++i) {
      const int x = xd(rng), y = yd(rng);
      r.candidates.push_back(
          image::Box{x, y, x + wd(rng), y + wd(rng)}.clip(160, 120));
    }
    reqs.push_back(std::move(r));
  }
  return reqs;
}

TEST(PlanPack, PropertyPackedCropsNeverOverlapAndRespectGutter) {
  std::mt19937 rng(42);
  const auto bg = flat_bg(160, 120);
  const std::vector<image::Image> frames(12, bg);
  CropPackConfig cfg;
  cfg.coverage_threshold = 0.9;  // keep most slots on the packed path
  for (int trial = 0; trial < 20; ++trial) {
    const auto reqs = random_requests(frames, bg, rng);
    const auto plan = plan_pack(reqs, cfg);
    // Every slot is routed exactly once: packed (>=1 placement) xor fallback.
    std::vector<int> placed(reqs.size(), 0);
    for (const auto& p : plan.placements) placed[static_cast<std::size_t>(p.slot)]++;
    for (const int slot : plan.full_frame) {
      EXPECT_EQ(placed[static_cast<std::size_t>(slot)], 0);
      placed[static_cast<std::size_t>(slot)] = -1;
    }
    for (const int n : placed) EXPECT_NE(n, 0);

    for (const auto& p : plan.placements) {
      // In bounds with the gutter border.
      EXPECT_GE(p.dx, cfg.gutter);
      EXPECT_GE(p.dy, cfg.gutter);
      EXPECT_LE(p.dx + p.src.width() + cfg.gutter, plan.canvas_w);
      EXPECT_LE(p.dy + p.src.height() + cfg.gutter, plan.canvas_h);
      EXPECT_GE(p.canvas, 0);
      EXPECT_LT(p.canvas, plan.num_canvases);
    }
    // Pairwise: crops on one canvas are separated by >= gutter on an axis.
    for (std::size_t i = 0; i < plan.placements.size(); ++i) {
      for (std::size_t j = i + 1; j < plan.placements.size(); ++j) {
        const auto& a = plan.placements[i];
        const auto& b = plan.placements[j];
        if (a.canvas != b.canvas) continue;
        const auto da = a.dst(), db = b.dst();
        const bool separated =
            da.x1 + cfg.gutter <= db.x0 || db.x1 + cfg.gutter <= da.x0 ||
            da.y1 + cfg.gutter <= db.y0 || db.y1 + cfg.gutter <= da.y0;
        EXPECT_TRUE(separated) << "crops " << i << "," << j << " touch";
      }
    }
  }
}

TEST(RenderPack, MosaicRoundTripIsExactAndGuttersAreBlank) {
  // Distinct per-frame pixel patterns so a misplaced copy cannot pass.
  std::vector<image::Image> frames;
  for (int f = 0; f < 6; ++f) {
    image::Image img(160, 120, 3, 0);
    for (int y = 0; y < 120; ++y) {
      for (int x = 0; x < 160; ++x) {
        img.at(x, y, 0) = static_cast<std::uint8_t>((x + 17 * f) & 0xff);
        img.at(x, y, 1) = static_cast<std::uint8_t>((y + 31 * f) & 0xff);
        img.at(x, y, 2) = static_cast<std::uint8_t>((x ^ y) & 0xff);
      }
    }
    frames.push_back(std::move(img));
  }
  const auto bg = flat_bg(160, 120);
  std::mt19937 rng(7);
  const auto reqs = random_requests(frames, bg, rng);
  CropPackConfig cfg;
  cfg.coverage_threshold = 0.9;
  const auto plan = plan_pack(reqs, cfg);
  ASSERT_GT(plan.placements.size(), 0u);
  const auto canvases = render_pack(reqs, plan);

  std::vector<std::vector<bool>> covered(
      static_cast<std::size_t>(plan.num_canvases),
      std::vector<bool>(static_cast<std::size_t>(plan.canvas_w * plan.canvas_h),
                        false));
  for (const auto& p : plan.placements) {
    const auto& frame = *reqs[static_cast<std::size_t>(p.slot)].frame;
    const auto& cf = canvases.frame[static_cast<std::size_t>(p.canvas)];
    const auto& cb = canvases.background[static_cast<std::size_t>(p.canvas)];
    for (int y = 0; y < p.src.height(); ++y) {
      for (int x = 0; x < p.src.width(); ++x) {
        for (int ch = 0; ch < 3; ++ch) {
          ASSERT_EQ(cf.at(p.dx + x, p.dy + y, ch),
                    frame.at(p.src.x0 + x, p.src.y0 + y, ch));
          ASSERT_EQ(cb.at(p.dx + x, p.dy + y, ch),
                    bg.at(p.src.x0 + x, p.src.y0 + y, ch));
        }
        covered[static_cast<std::size_t>(p.canvas)]
               [static_cast<std::size_t>((p.dy + y) * plan.canvas_w + p.dx + x)] =
                   true;
      }
    }
    // Round trip: a box inside this placement maps back to the exact
    // frame-coordinate translation of itself.
    const image::Box inner{p.dx, p.dy, p.dx + p.src.width(),
                           p.dy + p.src.height()};
    const auto m = map_back(plan, p.canvas, inner);
    ASSERT_EQ(m.slot, p.slot);
    EXPECT_EQ(m.frame_box, p.src);
  }
  // Uncovered canvas pixels (gutters) are zero in BOTH canvases: no
  // frame/background difference can originate outside a crop.
  for (int c = 0; c < plan.num_canvases; ++c) {
    for (int y = 0; y < plan.canvas_h; ++y) {
      for (int x = 0; x < plan.canvas_w; ++x) {
        if (covered[static_cast<std::size_t>(c)]
                   [static_cast<std::size_t>(y * plan.canvas_w + x)]) {
          continue;
        }
        for (int ch = 0; ch < 3; ++ch) {
          ASSERT_EQ(canvases.frame[static_cast<std::size_t>(c)].at(x, y, ch), 0);
          ASSERT_EQ(canvases.background[static_cast<std::size_t>(c)].at(x, y, ch),
                    0);
        }
      }
    }
  }
}

TEST(MapBack, ClipsGutterSpillAndSuppressesOnlyGutterCentredBoxes) {
  const auto bg = flat_bg(160, 120);
  std::vector<CropRequest> reqs(2);
  reqs[0].frame = &bg;
  reqs[0].background = &bg;
  reqs[0].candidates = {image::Box{20, 20, 60, 50}};
  reqs[1].frame = &bg;
  reqs[1].background = &bg;
  reqs[1].candidates = {image::Box{80, 60, 130, 100}};
  CropPackConfig cfg;
  cfg.pad = 0;
  const auto plan = plan_pack(reqs, cfg);
  ASSERT_EQ(plan.placements.size(), 2u);
  ASSERT_TRUE(plan.full_frame.empty());
  for (const auto& p : plan.placements) {
    const auto d = p.dst();
    // Fully inside: mapped, and to the right slot.
    const image::Box inside{d.x0 + 1, d.y0 + 1, d.x1 - 1, d.y1 - 1};
    EXPECT_EQ(map_back(plan, p.canvas, inside).slot, p.slot);
    // Exactly the placement: still inside (closed fit), mapped.
    EXPECT_EQ(map_back(plan, p.canvas, d).slot, p.slot);
    // Overhang into the gutter (blur spill of the diff map) with the centre
    // still inside: mapped, and the overhang clipped to the placement — the
    // mapped box equals the full crop in frame coordinates.
    const image::Box frame_crop = map_back(plan, p.canvas, d).frame_box;
    for (const image::Box spilled :
         {image::Box{d.x0 - 1, d.y0, d.x1, d.y1},
          image::Box{d.x0, d.y0, d.x1 + 1, d.y1},
          image::Box{d.x0, d.y0 - 1, d.x1, d.y1 + 1}}) {
      const auto m = map_back(plan, p.canvas, spilled);
      EXPECT_EQ(m.slot, p.slot);
      EXPECT_EQ(m.frame_box, frame_crop);
    }
  }
  // A box floating in a gutter (no placement owns its centre): suppressed.
  EXPECT_EQ(map_back(plan, 0, image::Box{0, 0, 2, 2}).slot, -1);
}

TEST(ConsolidateDetect, FallbackPathIsBitForBitSingleFrame) {
  const auto bg = flat_bg(320, 240);
  auto frame = bg;
  image::fill_rect(frame, image::Box{80, 100, 130, 122}, image::Rgb{220, 50, 50});
  image::fill_rect(frame, image::Box{200, 100, 214, 136}, image::Rgb{40, 180, 220});
  const ReferenceConfig rc;
  const ReferenceDetector ref(rc, bg);
  const auto oracle = ref.detect(frame);
  ASSERT_EQ(oracle.detections.size(), 2u);

  // Route 1 to fallback by coverage, route 2 by an empty candidate list.
  CropPackConfig cfg;
  cfg.coverage_threshold = 0.0;
  std::vector<CropRequest> reqs(2);
  reqs[0].frame = &frame;
  reqs[0].background = &bg;
  reqs[0].candidates = {image::Box{60, 80, 240, 160}};
  reqs[1].frame = &frame;
  reqs[1].background = &bg;
  const auto out = consolidate_detect(reqs, rc, cfg);
  EXPECT_EQ(out.stats.full_frame_fallbacks, 2);
  EXPECT_EQ(out.stats.mosaics, 0);
  for (const auto& item : out.items) {
    ASSERT_TRUE(item.ok);
    expect_same_detections(item.result, oracle);
  }
}

TEST(ConsolidateDetect, PackedPathFindsTheObjectsWithFrameGeometry) {
  // Two streams, distinct backgrounds, one car-sized object each; candidates
  // are loose boxes around the objects (as T-YOLO would give). The packed
  // path must classify against each frame's own geometry, so the wide blob
  // in the SECOND frame is a bus exactly as the single-frame path says.
  const auto bg0 = flat_bg(320, 240, 70);
  const auto bg1 = flat_bg(320, 240, 110);
  auto f0 = bg0;
  image::fill_rect(f0, image::Box{80, 100, 130, 122}, image::Rgb{220, 50, 50});
  auto f1 = bg1;
  image::fill_rect(f1, image::Box{50, 100, 150, 134}, image::Rgb{230, 200, 40});
  const ReferenceConfig rc;
  const ReferenceDetector ref0(rc, bg0);
  const ReferenceDetector ref1(rc, bg1);
  const auto o0 = ref0.detect(f0);
  const auto o1 = ref1.detect(f1);
  ASSERT_EQ(o0.detections.size(), 1u);
  ASSERT_EQ(o1.detections.size(), 1u);
  ASSERT_EQ(o1.detections[0].cls, video::ObjectClass::kBus);

  std::vector<CropRequest> reqs(2);
  reqs[0] = {&f0, &bg0, {image::Box{75, 95, 135, 127}}};
  reqs[1] = {&f1, &bg1, {image::Box{45, 95, 155, 139}}};
  const auto out = consolidate_detect(reqs, rc, CropPackConfig{});
  EXPECT_EQ(out.stats.full_frame_fallbacks, 0);
  EXPECT_GE(out.stats.mosaics, 1);
  EXPECT_EQ(out.stats.packed_crops, 2);
  ASSERT_TRUE(out.items[0].ok);
  ASSERT_TRUE(out.items[1].ok);
  expect_same_detections(out.items[0].result, o0);
  expect_same_detections(out.items[1].result, o1);
}

TEST(DetectBatch, MatchesSingleFrameBitForBit) {
  const auto bg = flat_bg(320, 240);
  std::vector<image::Image> frames;
  for (int i = 0; i < 5; ++i) {
    auto f = bg;
    image::fill_rect(f, image::Box{40 + 30 * i, 100, 90 + 30 * i, 122},
                     image::Rgb{220, 50, 50});
    frames.push_back(std::move(f));
  }
  const ReferenceDetector ref(ReferenceConfig{}, bg);
  std::vector<const image::Image*> ptrs;
  for (const auto& f : frames) ptrs.push_back(&f);
  const auto batch = ref.detect_batch(ptrs);
  ASSERT_EQ(batch.size(), frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    ASSERT_TRUE(batch[i].ok);
    expect_same_detections(batch[i].result, ref.detect(frames[i]));
  }
}

TEST(DetectBatch, CrossStreamUsesEachFramesOwnDetector) {
  const auto bg0 = flat_bg(320, 240, 70);
  const auto bg1 = flat_bg(320, 240, 140);
  auto f0 = bg0;
  image::fill_rect(f0, image::Box{80, 100, 130, 122}, image::Rgb{220, 50, 50});
  auto f1 = bg1;
  image::fill_rect(f1, image::Box{80, 100, 130, 122}, image::Rgb{220, 50, 50});
  const ReferenceDetector ref0(ReferenceConfig{}, bg0);
  const ReferenceDetector ref1(ReferenceConfig{}, bg1);
  const std::vector<const ReferenceDetector*> dets{&ref0, &ref1};
  const std::vector<const image::Image*> imgs{&f0, &f1};
  const auto batch = detect_batch(dets, imgs);
  ASSERT_EQ(batch.size(), 2u);
  expect_same_detections(batch[0].result, ref0.detect(f0));
  expect_same_detections(batch[1].result, ref1.detect(f1));
}

TEST(DetectBatch, ThrowingFrameFailsAloneAndDropsNoBatchMates) {
  const auto bg = flat_bg(320, 240);
  auto good = bg;
  image::fill_rect(good, image::Box{80, 100, 130, 122}, image::Rgb{220, 50, 50});
  const image::Image truncated(320, 200, 3, 70);  // shape mismatch: throws
  const ReferenceDetector ref(ReferenceConfig{}, bg);
  const std::vector<const image::Image*> imgs{&good, &truncated, &good};
  const auto batch = ref.detect_batch(imgs);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_TRUE(batch[0].ok);
  EXPECT_FALSE(batch[1].ok);
  EXPECT_TRUE(batch[2].ok);
  const auto oracle = ref.detect(good);
  expect_same_detections(batch[0].result, oracle);
  expect_same_detections(batch[2].result, oracle);
}

}  // namespace
}  // namespace ffsva::detect
