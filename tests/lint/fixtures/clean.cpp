// Clean fixture for ffsva_lint --self-test: every rule's token appears,
// each correctly marked, so the whole file must produce zero findings.
//
// relaxed-ok: fixture counter is a statistic only; no ordering is claimed.
#include <atomic>
#include <deque>
#include <thread>

struct CleanFixture {
  // bounded-ok: pruned to a fixed window by the (pretend) caller.
  std::deque<int> window;
  std::atomic<int> hits{0};
};

void fixture_clean_run(CleanFixture& f) {
  f.hits.fetch_add(1, std::memory_order_relaxed);
  // thread-ok: fixture thread, joined or detached right below.
  std::thread t([] {});
  // detach-ok: fixture demonstrating a correctly-audited detach.
  t.detach();
}
