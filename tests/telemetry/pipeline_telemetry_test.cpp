// Telemetry against the real threaded engine: the chrome-trace exporter and
// JSONL metrics stream produced by an actual run, snapshot() polled safely
// while 32 streams are in flight (this binary carries the tsan label), and
// ClusterManager re-forwarding driven solely by live FfsVaInstance
// snapshots — the paper's Section 4.3.1 control loop closed end to end.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/cluster.hpp"
#include "core/pipeline.hpp"
#include "video/profiles.hpp"

namespace ffsva::core {
namespace {

// The same world as pipeline_test's shared stream: it is known to carry
// frames through every stage (SDD/SNM/T-YOLO survivors reach the reference
// model), which the trace/queue-pressure assertions below depend on.
struct World {
  video::SceneConfig cfg;
  detect::StreamModels models;
  std::vector<video::Frame> window;

  World() {
    cfg = video::jackson_profile();
    cfg.width = 128;
    cfg.height = 96;
    cfg.tor = 0.35;
    video::SceneSimulator sim(cfg, 91, 1400);
    std::vector<video::Frame> calib;
    for (int i = 0; i < 700; ++i) calib.push_back(sim.render(i));
    detect::SpecializeConfig sc;
    sc.target = cfg.target;
    sc.snm.epochs = 5;
    models = detect::specialize_stream(calib, sc, 91);
    for (int i = 700; i < 1000; ++i) window.push_back(sim.render(i));
  }
};

World& world() {
  static auto* w = new World();
  return *w;
}

class ReplaySource final : public video::FrameSource {
 public:
  ReplaySource(const std::vector<video::Frame>* window, int stream_id)
      : window_(window), stream_id_(stream_id) {}

  std::optional<video::Frame> next() override {
    if (next_ >= window_->size()) return std::nullopt;
    video::Frame f = (*window_)[next_++];
    f.stream_id = stream_id_;
    return f;
  }
  std::int64_t total_frames() const override {
    return static_cast<std::int64_t>(window_->size());
  }

 private:
  const std::vector<video::Frame>* window_;
  int stream_id_;
  std::size_t next_ = 0;
};

TEST(PipelineTelemetry, RealRunExportsTraceAndMetrics) {
  auto& w = world();
  FfsVaConfig cfg;
  cfg.metrics_interval_ms = 20;
  FfsVaInstance instance(cfg);
  for (int s = 0; s < 4; ++s) {
    instance.add_stream(std::make_unique<ReplaySource>(&w.window, s), w.models);
  }
  instance.set_output_sink([](const OutputEvent&) {});
  std::ostringstream metrics;
  instance.enable_metrics_export(&metrics, "itest");
  instance.enable_tracing();
  const auto stats = instance.run(/*online=*/false);

  // Trace: spans for all four stages (the prefetch decode, the SDD filter,
  // the executor's SNM and T-YOLO batches) plus the reference stage.
  const std::string trace_path =
      ::testing::TempDir() + "/ffsva_itest_trace.json";
  ASSERT_TRUE(instance.export_trace(trace_path));
  std::ifstream in(trace_path);
  ASSERT_TRUE(in.good());
  std::string trace((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  std::remove(trace_path.c_str());
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  for (const char* cat : {"prefetch", "sdd", "snm", "tyolo", "ref"}) {
    EXPECT_NE(trace.find("\"cat\":\"" + std::string(cat) + "\""),
              std::string::npos)
        << cat;
  }
  // Executor batches carry their realized size.
  EXPECT_NE(trace.find("snm.batch"), std::string::npos);
  EXPECT_NE(trace.find("tyolo.batch"), std::string::npos);
  EXPECT_NE(trace.find("\"batch\":"), std::string::npos);

  // Metrics JSONL: at least the final stop() sample, carrying stage
  // counters, per-stage rates, queue-depth gauges, and supervision gauges.
  const std::string rows = metrics.str();
  ASSERT_FALSE(rows.empty());
  for (const char* key :
       {"\"sdd.in\"", "\"snm.in\"", "\"tyolo.in\"", "\"ref.passed\"",
        "\"drop.sdd\"", "\"drop.snm\"", "\"drop.tyolo\"", "\"queue.sdd\"",
        "\"queue.snm\"", "\"queue.tyolo\"", "\"queue.ref\"",
        "\"supervise.stall_ticks\"", "\"executor.batch_size\"", "\"rates\"",
        "\"label\":\"itest\""}) {
    EXPECT_NE(rows.find(key), std::string::npos) << key;
  }

  // The counters agree with the run's frozen stats.
  const auto agg = stats.aggregate();
  EXPECT_NE(rows.rfind("\"ref.passed\":" + std::to_string(agg.ref.passed)),
            std::string::npos);
}

TEST(PipelineTelemetry, SnapshotIsSafeAndMonotonicMidRun) {
  auto& w = world();
  constexpr int kStreams = 32;
  FfsVaConfig cfg;
  FfsVaInstance instance(cfg);
  for (int s = 0; s < kStreams; ++s) {
    instance.add_stream(std::make_unique<ReplaySource>(&w.window, s), w.models);
  }
  instance.set_output_sink([](const OutputEvent&) {});

  EXPECT_FALSE(instance.snapshot().running);

  std::atomic<bool> done{false};
  std::uint64_t polls = 0;
  std::thread poller([&] {
    // Per-location monotonicity is the safe mid-run invariant: each counter
    // is a single atomic, so successive relaxed reads never go backwards.
    // (Cross-stage inequalities are only guaranteed once writers quiesce.)
    std::vector<std::uint64_t> last_sdd_in(kStreams, 0);
    std::uint64_t last_served = 0;
    while (!done.load(std::memory_order_acquire)) {
      const auto snap = instance.snapshot();
      EXPECT_EQ(snap.streams.size(), static_cast<std::size_t>(kStreams));
      const std::uint64_t served = snap.tyolo_served();
      EXPECT_GE(served, last_served);
      last_served = served;
      for (std::size_t i = 0; i < snap.streams.size(); ++i) {
        const auto& s = snap.streams[i];
        EXPECT_EQ(s.id, static_cast<int>(i));
        EXPECT_GE(s.sdd_in, last_sdd_in[i]);
        last_sdd_in[i] = s.sdd_in;
      }
      ++polls;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  const auto stats = instance.run(/*online=*/false);
  done.store(true, std::memory_order_release);
  poller.join();
  EXPECT_GT(polls, 0u);

  // After the run the snapshot is the frozen end state.
  const auto final_snap = instance.snapshot();
  EXPECT_FALSE(final_snap.running);
  std::uint64_t tyolo_in_total = 0;
  for (const auto& st : stats.streams) tyolo_in_total += st.tyolo.in;
  EXPECT_EQ(final_snap.tyolo_served(), tyolo_in_total);
  EXPECT_EQ(final_snap.streams.size(), stats.streams.size());
  for (std::size_t i = 0; i < stats.streams.size(); ++i) {
    EXPECT_EQ(final_snap.streams[i].ref_passed, stats.streams[i].ref.passed);
    EXPECT_EQ(final_snap.streams[i].prefetch_in, stats.streams[i].prefetch.in);
  }
}

// Section 4.3.1 end to end: an instance whose live snapshots show full SNM /
// T-YOLO queues becomes the re-forward source; an instance whose snapshots
// show a quiet T-YOLO over a full admission window becomes the target. No
// hand-fed signals — everything the ClusterManager sees comes from
// FfsVaInstance::snapshot().
TEST(PipelineTelemetry, LiveSnapshotsDriveClusterReforward) {
  auto& w = world();

  FfsVaConfig cfg;
  cfg.admit_tyolo_fps = 1e6;     // spare == any observed full window
  cfg.admit_window_sec = 0.25;
  ClusterManager cm(2, cfg);
  const auto now_sec = [t0 = std::chrono::steady_clock::now()] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  };

  // Instance 1: one light stream, run to completion, then observed idle for
  // a full admission window -> demonstrated spare capacity.
  FfsVaInstance light(cfg);
  light.add_stream(std::make_unique<ReplaySource>(&w.window, 100), w.models);
  light.set_output_sink([](const OutputEvent&) {});
  light.run(/*online=*/false);
  cm.attach_stream(100, 1);
  {
    const double t_begin = now_sec();
    while (now_sec() - t_begin < 1.2 * cfg.admit_window_sec) {
      cm.report_snapshot(1, now_sec(), light.snapshot());
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    cm.report_snapshot(1, now_sec(), light.snapshot());
  }

  // Instance 0: six streams flooding the shared GPU0 executor offline, so
  // some stream's bounded SNM/T-YOLO queue is full whenever we look. The
  // overload decision is latched the moment a live snapshot shows it (and the
  // run wound down early) — the Section 4.3.1 trigger is "a queue is full
  // now", and waiting for the run to finish first would race the drain tail,
  // which under a sanitizer's slowdown outlasts the 1 s overload recency
  // window. The poll racing a full queue is overwhelmingly likely but not
  // certain, so the run is repeated (fresh instance) in the rare miss case.
  constexpr int kBusyStreams = 6;
  for (int s = 0; s < kBusyStreams; ++s) cm.attach_stream(s, 0);
  double last_t = now_sec();
  for (int attempt = 0; attempt < 3 && !cm.instance_overloaded(0, last_t);
       ++attempt) {
    FfsVaInstance busy(cfg);
    for (int s = 0; s < kBusyStreams; ++s) {
      busy.add_stream(std::make_unique<ReplaySource>(&w.window, s), w.models);
    }
    busy.set_output_sink([](const OutputEvent&) {});

    std::atomic<bool> done{false};
    std::thread runner([&] {
      busy.run(/*online=*/false);
      done.store(true, std::memory_order_release);
    });
    while (!done.load(std::memory_order_acquire)) {
      const double t = now_sec();
      cm.report_snapshot(0, t, busy.snapshot());
      if (cm.instance_overloaded(0, t)) {
        last_t = t;
        busy.stop();
        break;
      }
      last_t = t;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    runner.join();
  }

  EXPECT_TRUE(cm.instance_overloaded(0, last_t));
  EXPECT_TRUE(cm.instance_has_spare(1, last_t));
  const auto d = cm.next_reforward(last_t);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->from_instance, 0);
  EXPECT_EQ(d->to_instance, 1);
  EXPECT_EQ(cm.instance_of(d->stream_id), 1);
}

}  // namespace
}  // namespace ffsva::core
