// Data-parallel loops over a shared, process-wide compute pool.
//
// The inference hot path (blocked GEMM rows, batch preprocessing) wants
// fork-join parallelism, not the pipeline's long-lived stage tasks, so the
// compute pool is a separate singleton from any ThreadPool a pipeline
// instance owns: its tasks are short chunk loops that never block on
// queues, which keeps fork-join free of starvation no matter what the
// pipeline threads are doing.
//
// Sizing: FFSVA_THREADS in the environment, else std::hardware_concurrency.
// With parallelism 1 every parallel_for degrades to a plain serial loop
// (no pool is created at all). The caller always participates in the work,
// stealing chunks through a shared atomic cursor, so a busy pool can delay
// but never deadlock a join — even for nested parallel_for calls.
#pragma once

#include <cstdint>
#include <memory>
#include <type_traits>

namespace ffsva::runtime {

class ThreadPool;

/// The shared compute pool, or nullptr when parallelism is 1.
/// Created lazily on first use.
ThreadPool* compute_pool();

/// Current compute parallelism (>= 1): workers available to parallel_for
/// including the calling thread.
int compute_parallelism();

/// Override the compute parallelism (tests / benchmarks; also the hook the
/// FFSVA_THREADS knob resolves through). Rebuilds the pool; must not be
/// called while parallel loops are in flight.
void set_compute_parallelism(int n);

namespace detail {

/// Type-erased chunk body: invoke(ctx, chunk_begin, chunk_end).
using ChunkFn = void (*)(void*, std::int64_t, std::int64_t);

void parallel_for_impl(std::int64_t begin, std::int64_t end, std::int64_t grain,
                       std::int64_t chunks, ChunkFn invoke, void* ctx);

}  // namespace detail

/// Split [begin, end) into chunks of ~`grain` iterations and run
/// fn(chunk_begin, chunk_end) across the compute pool. The calling thread
/// participates. Serial — and allocation-free, which the zero-alloc
/// inference contract relies on — when the range fits a single chunk or
/// parallelism is 1; the callable is passed by reference (no std::function
/// conversion) either way. Exceptions thrown by fn are rethrown on the
/// calling thread (first one wins); remaining chunks are abandoned.
/// The caller's CancelToken (runtime/cancel.hpp), if one is installed, is
/// re-installed on every pool worker running this loop's chunks, so a
/// check_cancel() in the body unwinds the whole loop via CancelledError.
template <typename Fn>
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  Fn&& fn) {
  const std::int64_t n = end - begin;
  if (n <= 0) return;
  if (grain < 1) grain = 1;
  const std::int64_t chunks = (n + grain - 1) / grain;
  if (chunks <= 1 || compute_parallelism() <= 1) {
    fn(begin, end);
    return;
  }
  detail::parallel_for_impl(
      begin, end, grain, chunks,
      [](void* ctx, std::int64_t b, std::int64_t e) {
        (*static_cast<std::remove_reference_t<Fn>*>(ctx))(b, e);
      },
      // Type-erasure const_cast, audited: the trampoline above casts back to
      // std::remove_reference_t<Fn>*, which re-applies const when Fn deduced
      // const — a const callable is never invoked through a non-const path.
      // NOLINTNEXTLINE(cppcoreguidelines-pro-type-const-cast)
      const_cast<void*>(static_cast<const void*>(std::addressof(fn))));
}

}  // namespace ffsva::runtime
