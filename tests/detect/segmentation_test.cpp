#include "detect/segmentation.hpp"

#include <gtest/gtest.h>

#include "image/draw.hpp"

namespace ffsva::detect {
namespace {

image::Image flat(int w, int h, std::uint8_t v) { return image::Image(w, h, 3, v); }

TEST(MotionMap, ZeroForIdenticalImages) {
  const auto img = flat(16, 16, 80);
  const auto m = motion_map(img, img);
  for (std::size_t i = 0; i < m.size_bytes(); ++i) EXPECT_EQ(m.data()[i], 0);
}

TEST(MotionMap, MaxChannelDifference) {
  image::Image a(1, 1, 3), b(1, 1, 3);
  a.at(0, 0, 0) = 100;
  a.at(0, 0, 1) = 100;
  a.at(0, 0, 2) = 100;
  b.at(0, 0, 0) = 110;
  b.at(0, 0, 1) = 160;
  b.at(0, 0, 2) = 90;
  EXPECT_EQ(motion_map(a, b).at(0, 0), 60);
}

TEST(MotionMap, ShapeMismatchThrows) {
  EXPECT_THROW(motion_map(flat(4, 4, 0), flat(4, 5, 0)), std::invalid_argument);
}

TEST(ForegroundComponents, FindsInsertedObject) {
  const auto bg = flat(64, 64, 70);
  auto frame = bg;
  image::fill_rect(frame, image::Box{10, 20, 30, 32}, image::Rgb{200, 60, 60});
  SegmentationParams params;
  params.min_pixels = 20;
  const auto comps = foreground_components(frame, bg, params);
  ASSERT_EQ(comps.size(), 1u);
  // Blur expands the box slightly; the core must be covered.
  EXPECT_LE(comps[0].box.x0, 11);
  EXPECT_GE(comps[0].box.x1, 29);
}

TEST(ForegroundComponents, IgnoresSubThresholdChange) {
  const auto bg = flat(32, 32, 70);
  auto frame = bg;
  image::fill_rect(frame, image::Box{5, 5, 15, 15}, image::Rgb{80, 80, 80});  // diff 10
  SegmentationParams params;  // threshold 26
  EXPECT_TRUE(foreground_components(frame, bg, params).empty());
}

TEST(ForegroundComponents, MorphOpenKillsSpeckle) {
  const auto bg = flat(64, 64, 70);
  auto frame = bg;
  // Single-pixel speckles.
  frame.at(5, 5, 0) = 255;
  frame.at(40, 40, 1) = 255;
  SegmentationParams params;
  params.blur_sigma = 0.0;
  params.min_pixels = 1;
  params.morph_open = true;
  EXPECT_TRUE(foreground_components(frame, bg, params).empty());
  params.morph_open = false;
  EXPECT_FALSE(foreground_components(frame, bg, params).empty());
}

TEST(ForegroundComponents, SeparatesDistantObjects) {
  const auto bg = flat(96, 48, 60);
  auto frame = bg;
  image::fill_rect(frame, image::Box{5, 10, 25, 30}, image::Rgb{220, 220, 220});
  image::fill_rect(frame, image::Box{60, 10, 85, 30}, image::Rgb{220, 220, 220});
  SegmentationParams params;
  params.min_pixels = 30;
  EXPECT_EQ(foreground_components(frame, bg, params).size(), 2u);
}

TEST(Classifier, TallBlobIsPerson) {
  image::Component c;
  c.box = image::Box{0, 0, 8, 20};
  c.pixel_count = 120;
  const auto d = classify_component(c, 320, 240, 30, ClassifierParams{});
  EXPECT_EQ(d.cls, video::ObjectClass::kPerson);
  EXPECT_EQ(d.pixels, 120);
}

TEST(Classifier, WideBlobIsCar) {
  image::Component c;
  c.box = image::Box{0, 0, 40, 18};
  c.pixel_count = 500;
  ClassifierParams params;
  params.car_min_area = 110;
  const auto d = classify_component(c, 320, 240, 30, params);
  EXPECT_EQ(d.cls, video::ObjectClass::kCar);
  EXPECT_GT(d.confidence, 0.5);
}

TEST(Classifier, VeryWideBlobIsBus) {
  image::Component c;
  c.box = image::Box{0, 0, 90, 30};
  c.pixel_count = 2000;
  const auto d = classify_component(c, 320, 240, 30, ClassifierParams{});
  EXPECT_EQ(d.cls, video::ObjectClass::kBus);
}

TEST(Classifier, SmallWideSpeckCannotBeConfidentVehicle) {
  // The half-camouflaged-pedestrian case: 7x7, 41 px.
  image::Component c;
  c.box = image::Box{0, 0, 7, 7};
  c.pixel_count = 41;
  ClassifierParams params;
  params.car_min_area = 110;
  const auto d = classify_component(c, 320, 240, 36, params);
  EXPECT_LT(d.confidence, 0.2);  // below the detection threshold
}

TEST(Classifier, CrowdSplitCountsInstances) {
  image::Component c;
  c.box = image::Box{0, 0, 30, 20};
  c.pixel_count = 360;
  ClassifierParams params;
  params.person_max_aspect = 2.2;
  params.person_split_area = 120.0;
  params.person_wide_min_area = 144.0;
  const auto d = classify_component(c, 320, 240, 30, params);
  EXPECT_EQ(d.cls, video::ObjectClass::kPerson);
  EXPECT_EQ(d.instances, 3);
}

TEST(Classifier, WidePersonNeedsMass) {
  image::Component c;
  c.box = image::Box{0, 0, 14, 8};  // aspect 1.75
  c.pixel_count = 70;               // a fish, not a crowd
  ClassifierParams params;
  params.person_max_aspect = 2.2;
  params.person_split_area = 120.0;
  params.person_wide_min_area = 144.0;
  const auto d = classify_component(c, 320, 240, 30, params);
  EXPECT_NE(d.cls, video::ObjectClass::kPerson);
}

TEST(Classifier, InstanceCapHolds) {
  image::Component c;
  c.box = image::Box{0, 0, 100, 60};
  c.pixel_count = 100000;
  ClassifierParams params;
  params.person_max_aspect = 2.2;
  params.person_split_area = 10.0;
  params.max_instances_per_blob = 8;
  const auto d = classify_component(c, 320, 240, 30, params);
  EXPECT_LE(d.instances, 8);
}

TEST(DetectionResult, CountTargetGroupsVehiclesAndInstances) {
  DetectionResult r;
  r.detections.push_back({video::ObjectClass::kCar, {}, 0.9, 1, 200});
  r.detections.push_back({video::ObjectClass::kBus, {}, 0.8, 1, 900});
  r.detections.push_back({video::ObjectClass::kPerson, {}, 0.9, 3, 360});
  r.detections.push_back({video::ObjectClass::kPerson, {}, 0.1, 5, 40});  // low conf
  EXPECT_EQ(r.count_target(video::ObjectClass::kCar), 2);
  EXPECT_EQ(r.count_target(video::ObjectClass::kPerson), 3);
  EXPECT_TRUE(r.any_target(video::ObjectClass::kCar));
}

}  // namespace
}  // namespace ffsva::detect
