// Frame sources: where the prefetch stage of each stream pipeline pulls
// frames from. Live sources render the synthetic scene on demand (online
// mode: a camera); stored sources decode the delta-RLE bitstream (offline
// mode: a recording), so the prefetch stage pays a real decode cost.
//
// Real camera fleets fail: connections drop, decoders hit corrupt NALs,
// RTSP sessions die and need a reconnect. next() reports those through
// SourceError (transient = retry may succeed, fatal = the session is dead)
// and restart() models the reconnect; the engine's prefetch loop owns the
// retry/restart budget and backoff (DESIGN.md Section 9).
#pragma once

#include <memory>
#include <optional>
#include <stdexcept>
#include <string>

#include "video/codec.hpp"
#include "video/scene.hpp"

namespace ffsva::video {

/// A decode/transport failure raised by FrameSource::next().
///  * kTransient — this read failed but the source is still usable (a
///    corrupt packet, a momentary network hiccup); retrying next() is the
///    right response.
///  * kFatal — the source session is dead (device unplugged, stream
///    closed); only restart() can revive it.
class SourceError : public std::runtime_error {
 public:
  enum class Kind : std::uint8_t { kTransient = 0, kFatal = 1 };

  SourceError(Kind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}

  Kind kind() const { return kind_; }
  bool transient() const { return kind_ == Kind::kTransient; }

 private:
  Kind kind_;
};

class FrameSource {
 public:
  virtual ~FrameSource() = default;
  /// Next frame in presentation order, or nullopt at end of stream.
  /// May throw SourceError; after a transient error the stream position is
  /// unchanged (a successful retry resumes without frame loss).
  virtual std::optional<Frame> next() = 0;
  /// Total frames this source will yield (for progress/termination).
  virtual std::int64_t total_frames() const = 0;
  /// Attempt to revive the source after a fatal SourceError (reconnect the
  /// camera, reopen the file). Returns false when the source does not
  /// support restart (the default) or the revival failed.
  virtual bool restart() { return false; }

  // --- compressed-domain fast path (DecodePolicy::kHinted; DESIGN.md §13) --
  /// Whether this source can describe upcoming frames without decoding
  /// them. Only sources returning true ever see peek_hint()/skip_next().
  virtual bool has_hints() const { return false; }
  /// Residual summary of the frame the following next() would return, or
  /// nullptr (end of stream / no hints). The pointer aliases immutable
  /// source data and stays valid for the source's lifetime.
  virtual const FrameHint* peek_hint() const { return nullptr; }
  /// Advance past the upcoming frame without decoding it. Returns false at
  /// end of stream or when the source cannot skip (the default).
  virtual bool skip_next() { return false; }
  /// Compression statistics of the underlying bitstream, when there is one.
  /// Must be safe to call concurrently with next() (immutable data only) —
  /// the engine reads it from snapshot() while the prefetch thread decodes.
  virtual std::optional<CodecStats> codec_stats() const { return std::nullopt; }
};

/// Renders frames from a shared scene simulator (a "camera").
class LiveSource final : public FrameSource {
 public:
  LiveSource(std::shared_ptr<const SceneSimulator> sim, int stream_id)
      : sim_(std::move(sim)), stream_id_(stream_id) {}

  std::optional<Frame> next() override {
    if (next_index_ >= sim_->total_frames()) return std::nullopt;
    return sim_->render(next_index_++, stream_id_);
  }

  std::int64_t total_frames() const override { return sim_->total_frames(); }

 private:
  std::shared_ptr<const SceneSimulator> sim_;
  int stream_id_;
  std::int64_t next_index_ = 0;
};

/// Decodes frames from a stored video (a "recording").
class StoredSource final : public FrameSource {
 public:
  StoredSource(std::shared_ptr<const StoredVideo> video, int stream_id)
      : video_(std::move(video)), reader_(*video_, stream_id) {}

  std::optional<Frame> next() override { return reader_.next(); }

  std::int64_t total_frames() const override { return video_->frame_count(); }

  bool has_hints() const override { return video_->frame_count() > 0; }
  const FrameHint* peek_hint() const override { return reader_.peek_hint(); }
  bool skip_next() override { return reader_.skip_next(); }
  std::optional<CodecStats> codec_stats() const override { return video_->stats(); }

 private:
  std::shared_ptr<const StoredVideo> video_;
  VideoReader reader_;
};

}  // namespace ffsva::video
