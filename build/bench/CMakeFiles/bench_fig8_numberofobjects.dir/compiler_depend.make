# Empty compiler generated dependencies file for bench_fig8_numberofobjects.
# This may be replaced when dependencies are built.
