// Figure 5 — the ratio of frames executed in each filter.
//
// Paper: car detection at TOR 0.435 and person detection at TOR 0.259;
// caption: "the execution speed of the four filters is about 20K FPS,
// 2K FPS, 200 FPS, and 56 FPS respectively". SDD filters little when the
// scene is busy; SNM's share tracks TOR; T-YOLO "can all work well in any
// case".
//
// Method: real filters over real traces; the printed ratio for stage S is
// (frames actually executed by S) / (all frames).
#include "common.hpp"

using namespace ffsva;

static void report(const char* name, bench::CalibratedStream& s, int n_objects) {
  const auto t = core::thresholds_of(s.models, n_objects);
  const auto stats = core::evaluate_trace(s.trace, t);
  const double n = static_cast<double>(stats.total);
  std::printf("%-22s %8.3f %8.3f %8.3f %8.3f %8.3f\n", name, 1.0,
              stats.sdd_pass / n, stats.snm_pass / n, stats.output / n,
              stats.error_rate);
}

int main() {
  bench::print_header("FIGURE 5 -- ratio of frames executed in each filter");
  std::printf("(fraction of all frames reaching each stage; real filters on real traces)\n\n");
  std::printf("%-22s %8s %8s %8s %8s %8s\n", "workload", "SDD", "SNM", "T-YOLO",
              "RefNN", "err");
  bench::print_rule();

  {
    auto s = bench::build_stream(video::jackson_profile(), 0.435, 51, 1000, 2500, 6);
    report("car    (TOR=0.435)", s, 1);
  }
  {
    auto cfg = video::coral_profile();
    cfg.width = 256;
    cfg.height = 144;
    auto s = bench::build_stream(cfg, 0.259, 52, 1000, 2500, 6);
    report("person (TOR=0.259)", s, 1);
  }

  bench::print_rule();
  std::printf(
      "Calibrated filter service speeds used by the performance simulator\n"
      "(per-frame inference + resize, from detect/cost_model.hpp):\n");
  const auto sdd = detect::calibrated::sdd();
  const auto snm = detect::calibrated::snm();
  const auto ty = detect::calibrated::tyolo();
  const auto ref = detect::calibrated::yolov2();
  auto fps = [](const detect::ModelCost& c) {
    return 1e6 / (c.per_frame_us + c.resize_us);
  };
  std::printf("  SDD %.0f FPS, SNM %.0f FPS, T-YOLO %.0f FPS, YOLOv2 %.0f FPS\n",
              fps(sdd), fps(snm), fps(ty), fps(ref));
  std::printf("  (paper: ~20K, ~2K, ~200, ~56 FPS)\n");
  return 0;
}
