// Core raster operations used by the filters and the scene simulator.
//
// The per-filter resize costs the paper reports (40us / 150us / 400us for
// SDD / SNM / T-YOLO, Section 4.1) correspond to resize_bilinear here; the
// SDD distance metrics of Section 3.2.1 are mse / nrmse / sad.
#pragma once

#include <cstdint>

#include "image/image.hpp"

namespace ffsva::image {

/// Luma conversion (BT.601 integer weights). 1-channel input is copied.
Image to_gray(const Image& src);

/// Bilinear resize to (out_w, out_h); channel count preserved.
Image resize_bilinear(const Image& src, int out_w, int out_h);

/// Mean squared error over all channels. Shapes must match.
double mse(const Image& a, const Image& b);

/// Normalized root mean square error: sqrt(MSE) / 255.
double nrmse(const Image& a, const Image& b);

/// Mean of absolute differences (SAD normalized by pixel count).
double sad(const Image& a, const Image& b);

/// |a - b| per pixel.
Image abs_diff(const Image& a, const Image& b);

/// Separable Gaussian blur; sigma <= 0 returns a copy.
Image gaussian_blur(const Image& src, double sigma);

/// Binary threshold: out = src > t ? 255 : 0 (per channel).
Image threshold(const Image& src, std::uint8_t t);

/// Otsu's automatic threshold for a grayscale image.
std::uint8_t otsu_threshold(const Image& gray);

/// 3x3 binary erosion / dilation (values treated as 0 / nonzero).
Image erode3x3(const Image& binary);
Image dilate3x3(const Image& binary);

/// Summed-area table; out[y][x] = sum of gray pixels in [0,x] x [0,y].
/// Gray input only.
std::vector<std::uint64_t> integral_image(const Image& gray);

/// Box sum over the half-open rect using a table from integral_image().
std::uint64_t box_sum(const std::vector<std::uint64_t>& integral, int img_w,
                      int x0, int y0, int x1, int y1);

}  // namespace ffsva::image
