// Micro-benchmark: seed scalar GEMM (gemm_naive) vs the blocked/packed
// kernel (nn::gemm) at the shapes the inference hot path actually runs.
//
// Shapes cover the acceptance points of the blocked-kernel work: a square
// 256^3 problem, the SNM conv2 GEMM, and T-YOLO-style conv GEMMs (3x3
// filters lowered by im2col). Pruned variants zero 50% of A's k-rows the
// way magnitude pruning does (nn/compress.hpp), exercising the pack-time
// zero-step compaction path. SNM's conv1 GEMM (m=8, k=9) is intentionally
// absent: k < 16 routes nn::gemm to the reference kernel by design (the
// packing overhead exceeds the work), so there is nothing to compare.
//
// Flags:
//   --threads N   set runtime compute parallelism before measuring
//   --json PATH   write {name, fps, p50_ms, p99_ms, threads} rows
//
// Timing is hand-rolled (per-iteration wall samples, sorted for p50/p99)
// so the binary stays usable on machines without google-benchmark.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <random>
#include <vector>

#include "common.hpp"
#include "nn/gemm.hpp"
#include "runtime/parallel_for.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct Shape {
  const char* name;
  int m, k, n;
  double zero_k_fraction;  ///< Fraction of A's k-columns zeroed (pruning).
};

constexpr Shape kShapes[] = {
    {"gemm_256x256x256", 256, 256, 256, 0.0},
    {"gemm_256x256x256_pruned50", 256, 256, 256, 0.5},
    {"snm_conv2_16x72x169", 16, 72, 169, 0.0},
    {"snm_conv2_16x72x169_pruned50", 16, 72, 169, 0.5},
    {"tyolo_conv1_16x27x2704", 16, 27, 2704, 0.0},
    {"tyolo_conv2_32x144x676", 32, 144, 676, 0.0},
    {"tyolo_conv2_32x144x676_pruned50", 32, 144, 676, 0.5},
};

struct Series {
  double fps = 0.0;    ///< GEMMs per second (1 / mean iteration time).
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double gflops = 0.0;
};

template <typename Fn>
Series measure(int m, int k, int n, Fn&& fn) {
  for (int i = 0; i < 3; ++i) fn();  // Warm caches and scratch buffers.

  std::vector<double> samples;
  const auto budget = std::chrono::milliseconds(300);
  const auto t_end = Clock::now() + budget;
  while (Clock::now() < t_end || samples.size() < 20) {
    const auto t0 = Clock::now();
    fn();
    const auto t1 = Clock::now();
    samples.push_back(std::chrono::duration<double>(t1 - t0).count());
    if (samples.size() >= 200000) break;
  }

  std::sort(samples.begin(), samples.end());
  double total = 0.0;
  for (double s : samples) total += s;
  const double mean = total / static_cast<double>(samples.size());

  auto pct = [&](double q) {
    const auto idx = static_cast<std::size_t>(q * (samples.size() - 1));
    return samples[idx];
  };
  Series out;
  out.fps = 1.0 / mean;
  out.p50_ms = pct(0.50) * 1e3;
  out.p99_ms = pct(0.99) * 1e3;
  out.gflops = 2.0 * m * k * n / mean * 1e-9;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0) {
      ffsva::runtime::set_compute_parallelism(std::atoi(argv[i + 1]));
    }
  }
  ffsva::bench::JsonReport report(argc, argv);

  ffsva::bench::print_header("GEMM kernels: seed scalar vs blocked/packed");
  std::printf("compute threads: %d\n", ffsva::runtime::compute_parallelism());
  std::printf("%-34s %10s %10s %9s %9s %8s\n", "shape/kernel", "fps",
              "GFLOP/s", "p50(ms)", "p99(ms)", "speedup");
  ffsva::bench::print_rule();

  std::mt19937 rng(42);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  bool all_ok = true;

  for (const Shape& s : kShapes) {
    const std::size_t asz = static_cast<std::size_t>(s.m) * s.k;
    const std::size_t bsz = static_cast<std::size_t>(s.k) * s.n;
    const std::size_t csz = static_cast<std::size_t>(s.m) * s.n;
    std::vector<float> a(asz), b(bsz), c_naive(csz), c_blocked(csz);
    for (float& v : a) v = dist(rng);
    for (float& v : b) v = dist(rng);
    if (s.zero_k_fraction > 0.0) {
      // Zero whole k-columns of A across all rows, like channel-structured
      // magnitude pruning: every MR-row slice of that step is zero, so the
      // packer can compact it.
      std::bernoulli_distribution zap(s.zero_k_fraction);
      for (int kk = 0; kk < s.k; ++kk) {
        if (!zap(rng)) continue;
        for (int i = 0; i < s.m; ++i) a[static_cast<std::size_t>(i) * s.k + kk] = 0.0f;
      }
    }

    ffsva::nn::GemmScratch ws;
    const Series naive = measure(s.m, s.k, s.n, [&] {
      ffsva::nn::gemm_naive(a.data(), b.data(), c_naive.data(), s.m, s.k, s.n);
    });
    const Series blocked = measure(s.m, s.k, s.n, [&] {
      ffsva::nn::gemm(a.data(), b.data(), c_blocked.data(), s.m, s.k, s.n, ws);
    });

    float max_err = 0.0f;
    for (std::size_t i = 0; i < csz; ++i) {
      max_err = std::max(max_err, std::abs(c_naive[i] - c_blocked[i]));
    }
    // Both kernels accumulate in exact k-order per element at these
    // shapes' magnitudes; anything beyond reassociation noise is a bug.
    const bool ok = max_err <= 1e-3f * static_cast<float>(s.k);
    all_ok = all_ok && ok;

    std::printf("%-34s %10.1f %10.2f %9.4f %9.4f %7s\n",
                (std::string(s.name) + "/naive").c_str(), naive.fps,
                naive.gflops, naive.p50_ms, naive.p99_ms, "1.00x");
    std::printf("%-34s %10.1f %10.2f %9.4f %9.4f %6.2fx%s\n",
                (std::string(s.name) + "/blocked").c_str(), blocked.fps,
                blocked.gflops, blocked.p50_ms, blocked.p99_ms,
                blocked.fps / naive.fps, ok ? "" : "  MISMATCH");

    report.add(std::string(s.name) + "/naive", naive.fps, naive.p50_ms,
               naive.p99_ms);
    report.add(std::string(s.name) + "/blocked", blocked.fps, blocked.p50_ms,
               blocked.p99_ms);
  }

  ffsva::bench::print_rule();
  std::printf("correctness vs seed kernel: %s\n", all_ok ? "OK" : "FAILED");
  return all_ok ? 0 : 1;
}
