
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/baseline_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/baseline_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/baseline_test.cpp.o.d"
  "/root/repo/tests/sim/conservation_sweep_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/conservation_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/conservation_sweep_test.cpp.o.d"
  "/root/repo/tests/sim/engine_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/engine_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/engine_test.cpp.o.d"
  "/root/repo/tests/sim/ffsva_sim_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/ffsva_sim_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/ffsva_sim_test.cpp.o.d"
  "/root/repo/tests/sim/outcome_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/outcome_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/outcome_test.cpp.o.d"
  "/root/repo/tests/sim/sim_queue_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/sim_queue_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/sim_queue_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ffsva_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ffsva_core.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/ffsva_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/ffsva_video.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ffsva_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/ffsva_image.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ffsva_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
