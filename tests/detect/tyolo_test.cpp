#include "detect/tyolo.hpp"

#include <gtest/gtest.h>

#include "detect/reference.hpp"
#include "detect/specialize.hpp"
#include "image/draw.hpp"
#include "video/profiles.hpp"

namespace ffsva::detect {
namespace {

image::Image street_bg() { return image::Image(320, 240, 3, 70); }

image::Image with_car(const image::Image& bg, int x, int y, int w = 46, int h = 20) {
  auto frame = bg;
  image::fill_rect(frame, image::Box{x, y, x + w, y + h}, image::Rgb{220, 60, 60});
  return frame;
}

TEST(TYolo, DetectsFullCar) {
  const auto bg = street_bg();
  TYoloDetector tyolo(TYoloConfig{}, bg);
  const auto result = tyolo.detect(with_car(bg, 100, 120));
  EXPECT_GE(result.count_target(video::ObjectClass::kCar), 1);
}

TEST(TYolo, EmptyFrameHasNoDetections) {
  const auto bg = street_bg();
  TYoloDetector tyolo(TYoloConfig{}, bg);
  EXPECT_TRUE(tyolo.detect(bg).detections.empty());
}

TEST(TYolo, CountsTwoSeparatedCars) {
  const auto bg = street_bg();
  auto frame = with_car(bg, 30, 60);
  image::fill_rect(frame, image::Box{200, 160, 246, 180}, image::Rgb{60, 200, 220});
  TYoloDetector tyolo(TYoloConfig{}, bg);
  EXPECT_EQ(tyolo.detect(frame).count_target(video::ObjectClass::kCar), 2);
}

TEST(TYolo, BoxesMapBackToFrameCoordinates) {
  const auto bg = street_bg();
  TYoloDetector tyolo(TYoloConfig{}, bg);
  const auto result = tyolo.detect(with_car(bg, 100, 120));
  ASSERT_FALSE(result.detections.empty());
  const auto& box = result.detections[0].box;
  // Coarse detection: the box should overlap the true car region.
  EXPECT_LT(box.x0, 146);
  EXPECT_GT(box.x1, 100);
  EXPECT_LT(box.y0, 140);
  EXPECT_GT(box.y1, 120);
}

TEST(TYolo, PassRequiresNumberOfObjects) {
  const auto bg = street_bg();
  TYoloDetector tyolo(TYoloConfig{}, bg);
  const auto one_car = with_car(bg, 100, 120);
  EXPECT_TRUE(tyolo.pass(one_car, video::ObjectClass::kCar, 1));
  EXPECT_FALSE(tyolo.pass(one_car, video::ObjectClass::kCar, 2));
}

TEST(TYolo, CoarseResolutionMissesWhatReferenceSees) {
  // The central fidelity-gap property (paper Section 5.3): among partially
  // visible car slivers at the frame edge there are sizes the full
  // resolution reference detector resolves as a vehicle while T-YOLO's
  // coarse input loses them — and never the opposite at more-visible sizes.
  const auto bg = street_bg();
  ReferenceDetector ref(ReferenceConfig{}, bg);
  TYoloConfig ty_cfg;
  ty_cfg.classifier.person_max_aspect = 0.8;  // car-stream specialization
  TYoloDetector tyolo(ty_cfg, bg);

  int gap_widths = 0;   // ref sees a vehicle, T-YOLO does not
  int both_widths = 0;  // both see it
  for (int visible = 6; visible <= 46; visible += 2) {
    auto frame = bg;
    image::fill_rect(frame, image::Box{0, 120, visible, 140}, image::Rgb{220, 60, 60});
    const bool r = ref.detect(frame).any_target(video::ObjectClass::kCar);
    const bool t = tyolo.detect(frame).any_target(video::ObjectClass::kCar);
    if (r && !t) ++gap_widths;
    if (r && t) ++both_widths;
    if (!r) {
      EXPECT_FALSE(t) << "T-YOLO must not out-resolve the reference";
    }
  }
  EXPECT_GT(gap_widths, 0) << "some partial widths must fall in the fidelity gap";
  EXPECT_GT(both_widths, 0) << "full cars must be seen by both";
}

TEST(TYolo, GridCellSaturationCapsDetections) {
  TYoloConfig cfg;
  cfg.boxes_per_cell = 1;
  const auto bg = street_bg();
  // Two tiny blobs within the same 8-px coarse grid cell.
  auto frame = bg;
  image::fill_rect(frame, image::Box{100, 100, 112, 108}, image::Rgb{230, 230, 60});
  image::fill_rect(frame, image::Box{100, 112, 112, 120}, image::Rgb{60, 230, 230});
  TYoloDetector strict(cfg, bg);
  cfg.boxes_per_cell = 5;
  TYoloDetector loose(cfg, bg);
  EXPECT_LE(strict.detect(frame).detections.size(),
            loose.detect(frame).detections.size());
}

TEST(TYolo, ConfidenceThresholdFiltersWeakBlobs) {
  TYoloConfig cfg;
  cfg.confidence_threshold = 0.99;
  const auto bg = street_bg();
  TYoloDetector picky(cfg, bg);
  auto frame = bg;
  image::fill_rect(frame, image::Box{100, 100, 110, 106}, image::Rgb{120, 120, 120});
  EXPECT_TRUE(picky.detect(frame).detections.empty());
}

TEST(TYolo, UndercountsDenseCrowdVersusReference) {
  // Dense persons on a coral-like scene: with the per-stream calibration of
  // specialize_stream, T-YOLO systematically counts no more than the
  // reference (Figure 8b's error mechanism), and strictly fewer in total.
  video::SceneConfig cfg = video::coral_profile();
  cfg.width = 256;
  cfg.height = 144;
  cfg.tor = 1.0;
  cfg.max_objects = 10;
  cfg.crowd_sigma = 10.0;
  video::SceneSimulator sim(cfg, 77, 900);

  std::vector<video::Frame> calib;
  for (int i = 0; i < 500; ++i) calib.push_back(sim.render(i));
  SpecializeConfig sc;
  sc.target = cfg.target;
  sc.snm.epochs = 2;  // SNM is irrelevant to this test; keep it cheap
  const auto models = specialize_stream(calib, sc, 77);

  std::int64_t ref_total = 0, ty_total = 0;
  for (int i = 500; i < 900; i += 17) {
    const auto f = sim.render(i);
    ref_total += models.reference->detect(f.image).count_target(cfg.target);
    ty_total += models.tyolo->detect(f.image).count_target(cfg.target);
  }
  EXPECT_GT(ref_total, 0);
  EXPECT_LE(ty_total, ref_total * 1.05);
}

}  // namespace
}  // namespace ffsva::detect
