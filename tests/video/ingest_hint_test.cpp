// Codec residual hints + lazy reconstruction (DESIGN.md §13).
//
// The compressed-domain ingest path rests on three properties vetted here:
// the per-frame FrameHint really describes the reconstruction delta a
// decoder would observe; random access and hint-driven skips reproduce the
// sequential decode bit-for-bit (the predictive chain survives cursor
// moves); and the CompressedSdd decision machine agrees with pixel SDD on
// >= 99% of frames while actually skipping work.
#include "video/codec.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "detect/sdd.hpp"
#include "video/profiles.hpp"
#include "video/scene.hpp"

namespace ffsva::video {
namespace {

std::vector<Frame> make_frames(int count, double tor = 0.4) {
  SceneConfig cfg = jackson_profile();
  cfg.width = 96;
  cfg.height = 72;
  cfg.tor = tor;
  SceneSimulator sim(cfg, 7, count);
  std::vector<Frame> frames;
  for (int i = 0; i < count; ++i) frames.push_back(sim.render(i));
  return frames;
}

/// Recompute what summarize_delta should have recorded, from the decoded
/// reconstructions themselves (prev = zero canvas for frame 0).
struct DeltaStats {
  double mse = 0.0, sad = 0.0, zero_frac = 0.0;
};

DeltaStats stats_of(const image::Image& prev, const image::Image& cur) {
  DeltaStats s;
  const std::size_t n = cur.size_bytes();
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const int d = static_cast<int>(cur.data()[i]) - static_cast<int>(prev.data()[i]);
    s.mse += static_cast<double>(d) * d;
    s.sad += std::abs(d);
    if (d == 0) ++zeros;
  }
  s.mse /= static_cast<double>(n);
  s.sad /= static_cast<double>(n);
  s.zero_frac = static_cast<double>(zeros) / static_cast<double>(n);
  return s;
}

TEST(FrameHints, DescribeReconstructionDeltas) {
  const auto frames = make_frames(24, 0.5);
  const StoredVideo video = StoredVideo::encode(frames, /*keyframe_interval=*/8,
                                                /*deadzone=*/4);
  ASSERT_EQ(video.hints().size(), 24u);

  VideoReader reader(video);
  image::Image prev(96, 72, 3);  // zero canvas: frame 0's hint baseline
  for (std::int64_t i = 0; i < video.frame_count(); ++i) {
    const auto got = reader.next();
    ASSERT_TRUE(got.has_value());
    const auto& h = video.hint(i);
    EXPECT_EQ(h.keyframe, i % 8 == 0) << "frame " << i;
    EXPECT_EQ(h.grid_w, (96 + kHintBlockEdge - 1) / kHintBlockEdge);
    EXPECT_EQ(h.grid_h, (72 + kHintBlockEdge - 1) / kHintBlockEdge);
    ASSERT_EQ(h.blocks.size(), static_cast<std::size_t>(h.grid_w) * h.grid_h);
    const DeltaStats want = stats_of(prev, got->image);
    EXPECT_NEAR(h.mse, want.mse, 1e-3 * (1.0 + want.mse)) << "frame " << i;
    EXPECT_NEAR(h.sad, want.sad, 1e-3 * (1.0 + want.sad)) << "frame " << i;
    EXPECT_NEAR(h.zero_frac, want.zero_frac, 1e-4) << "frame " << i;
    prev = got->image;
  }
}

TEST(FrameHints, KeyframeHintsDescribeInterFrameChangeNotResync) {
  // The keyframe packet is coded against a zero frame, but its hint must
  // describe rec(f) - rec(f-1): on a quiet scene a mid-sequence keyframe's
  // hint stays small, while frame 0 (genuinely "appearing" on a black
  // canvas) is enormous.
  const auto frames = make_frames(20, 0.0);
  const StoredVideo video = StoredVideo::encode(frames, 8, 4);
  EXPECT_GT(video.hint(0).mse, 100.0f);
  EXPECT_LT(video.hint(8).mse, video.hint(0).mse / 10.0f);
  EXPECT_LT(video.hint(16).mse, video.hint(0).mse / 10.0f);
}

TEST(FrameHints, MaxBlockEnergyBoundsFrameMse) {
  const auto frames = make_frames(16, 0.6);
  const StoredVideo video = StoredVideo::encode(frames, 8);
  for (std::int64_t i = 0; i < video.frame_count(); ++i) {
    const auto& h = video.hint(i);
    // The frame mean cannot exceed the largest block mean.
    EXPECT_GE(h.max_block_energy(), h.mse) << "frame " << i;
  }
}

TEST(ReaderRandomAccess, EveryKeyframeOffsetMatchesSequential) {
  const auto frames = make_frames(40, 0.5);
  const StoredVideo video = StoredVideo::encode(frames, 8, 3);
  // Sequential ground truth (deadzone makes it differ from `frames`).
  std::vector<image::Image> truth;
  {
    VideoReader r(video);
    while (auto f = r.next()) truth.push_back(f->image);
  }
  ASSERT_EQ(truth.size(), 40u);
  for (std::int64_t start = 0; start < 40; ++start) {
    VideoReader r(video);
    r.seek(start);
    for (std::int64_t i = start; i < 40; ++i) {
      const auto got = r.next();
      ASSERT_TRUE(got.has_value());
      ASSERT_EQ(got->image, truth[static_cast<std::size_t>(i)])
          << "seek(" << start << ") then frame " << i;
    }
  }
}

TEST(ReaderRandomAccess, SkipsMidGopStayBitExact) {
  const auto frames = make_frames(40, 0.5);
  const StoredVideo video = StoredVideo::encode(frames, 8, 3);
  std::vector<image::Image> truth;
  {
    VideoReader r(video);
    while (auto f = r.next()) truth.push_back(f->image);
  }
  // Decode, then skip runs that land mid-GOP, straddle a keyframe, and
  // cover whole GOPs — after each, next() must still match sequential.
  VideoReader r(video);
  std::int64_t pos = 0;
  const auto expect_next = [&] {
    const auto got = r.next();
    ASSERT_TRUE(got.has_value());
    ASSERT_EQ(got->image, truth[static_cast<std::size_t>(pos)]) << "frame " << pos;
    ++pos;
  };
  const auto skip = [&](int n) {
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(r.skip_next());
      ++pos;
    }
  };
  expect_next();      // 0
  skip(3);            // mid-GOP skip: state behind in same GOP
  expect_next();      // 4 (replayed 1..4)
  skip(6);            // crosses the keyframe at 8
  expect_next();      // 11 (re-synced at 8)
  skip(17);           // two whole GOPs with zero pixel work
  expect_next();      // 29
  while (pos < 40) expect_next();
  EXPECT_FALSE(r.next().has_value());
  EXPECT_FALSE(r.skip_next());
}

TEST(ReaderRandomAccess, PeekHintTracksCursorAndEndsNull) {
  const auto frames = make_frames(10, 0.4);
  const StoredVideo video = StoredVideo::encode(frames, 4);
  VideoReader r(video);
  ASSERT_NE(r.peek_hint(), nullptr);
  EXPECT_EQ(r.peek_hint(), &video.hint(0));
  r.next();
  EXPECT_EQ(r.peek_hint(), &video.hint(1));
  r.skip_next();
  EXPECT_EQ(r.peek_hint(), &video.hint(2));
  r.seek(9);
  EXPECT_EQ(r.peek_hint(), &video.hint(9));
  r.next();
  EXPECT_EQ(r.peek_hint(), nullptr);
}

}  // namespace
}  // namespace ffsva::video

namespace ffsva::detect {
namespace {

video::StoredVideo store_scene(double tor, int count, std::uint64_t seed = 11) {
  video::SceneConfig cfg = video::jackson_profile();
  cfg.width = 128;
  cfg.height = 96;
  cfg.tor = tor;
  video::SceneSimulator sim(cfg, seed, count);
  std::vector<video::Frame> frames;
  for (int i = 0; i < count; ++i) frames.push_back(sim.render(i));
  return video::StoredVideo::encode(frames, 32, /*deadzone=*/4);
}

TEST(CompressedSdd, FallsBackUntilAnchored) {
  CompressedSdd csdd(SddMetric::kSad, /*delta_diff=*/10.0, /*hint_relax=*/0.9);
  video::FrameHint quiet;  // zero residual: the most skippable hint possible
  EXPECT_EQ(csdd.decide(quiet), HintDecision::kFallback);
  csdd.anchor(1.0);
  EXPECT_EQ(csdd.decide(quiet), HintDecision::kSkip);
  csdd.invalidate();
  EXPECT_EQ(csdd.decide(quiet), HintDecision::kFallback);
}

TEST(CompressedSdd, BracketsDecideSkipPassFallback) {
  // kSad's norm is the distance itself, so thresholds are easy to read:
  // skip below 9, pass above ~11.1, fall back between.
  video::FrameHint small;
  small.sad = 0.5f;
  small.blocks.resize(1);
  small.blocks[0].sad = 0.5f;

  CompressedSdd csdd(SddMetric::kSad, 10.0, 0.9);
  csdd.anchor(2.0);
  EXPECT_EQ(csdd.decide(small), HintDecision::kSkip);   // hi = 2.5 < 9
  csdd.anchor(20.0);
  EXPECT_EQ(csdd.decide(small), HintDecision::kPass);   // lo = 19.5 > 11.1
  csdd.anchor(10.0);
  EXPECT_EQ(csdd.decide(small), HintDecision::kFallback);  // straddles
}

TEST(CompressedSdd, DriftAccumulatesUntilFallback) {
  video::FrameHint step;
  step.sad = 2.0f;
  step.blocks.resize(1);
  step.blocks[0].sad = 2.0f;
  CompressedSdd csdd(SddMetric::kSad, 10.0, 0.9);
  csdd.anchor(1.0);
  // hi = 1 + drift + 2 crosses thr_skip = 9 once drift reaches 6.
  EXPECT_EQ(csdd.decide(step), HintDecision::kSkip);      // drift -> 2
  EXPECT_EQ(csdd.decide(step), HintDecision::kSkip);      // drift -> 4
  EXPECT_EQ(csdd.decide(step), HintDecision::kSkip);      // drift -> 6
  EXPECT_EQ(csdd.decide(step), HintDecision::kFallback);  // hi = 9, not < 9
  csdd.anchor(1.0);  // re-anchoring resets the drift
  EXPECT_EQ(csdd.decide(step), HintDecision::kSkip);
}

TEST(CompressedSdd, PeakBlockTermForcesCaution) {
  // A change concentrated in one block must widen the bracket even when the
  // frame-level mean stays tiny (the resize-aliasing guard).
  video::FrameHint concentrated;
  concentrated.sad = 0.1f;
  concentrated.blocks.resize(48);
  concentrated.blocks[0].sad = 30.0f;
  CompressedSdd csdd(SddMetric::kSad, 10.0, 0.9);
  csdd.anchor(1.0);
  EXPECT_EQ(csdd.decide(concentrated), HintDecision::kFallback);
}

TEST(CompressedSdd, AgreementOnStoredSceneAtLeast99Percent) {
  const auto video = store_scene(0.25, 300);
  // A mid-scene reference + a threshold in the scene's dynamic range, so
  // both verdicts actually occur.
  video::VideoReader probe(video);
  probe.seek(0);
  const auto ref = probe.next();
  ASSERT_TRUE(ref.has_value());
  SddConfig sc;
  sc.metric = SddMetric::kMse;
  SddFilter sdd(sc, ref->image);
  std::vector<double> dists;
  {
    video::VideoReader r(video);
    while (auto f = r.next()) dists.push_back(sdd.distance(f->image));
  }
  std::nth_element(dists.begin(), dists.begin() + dists.size() / 2, dists.end());
  sdd.set_delta(dists[dists.size() / 2]);  // median: maximally contentious

  const auto report = compressed_sdd_agreement(video, sdd, 0.9);
  EXPECT_EQ(report.frames, 300u);
  EXPECT_EQ(report.skipped + report.hint_passes + report.fallbacks, 300u);
  EXPECT_GE(report.agreement(), 0.99);
  // The fast path must actually decide something, or it is just pixel SDD
  // with extra steps.
  EXPECT_GT(report.skipped + report.hint_passes, 0u);
}

TEST(CompressedSdd, QuietSceneSkipsMostFrames) {
  const auto video = store_scene(0.0, 200);
  video::VideoReader probe(video);
  const auto ref = probe.next();
  ASSERT_TRUE(ref.has_value());
  SddConfig sc;
  sc.metric = SddMetric::kMse;
  sc.delta_diff = 200.0;  // well above a static scene's flicker
  SddFilter sdd(sc, ref->image);
  const auto report = compressed_sdd_agreement(video, sdd, 0.9);
  EXPECT_GE(report.agreement(), 0.99);
  EXPECT_GT(report.skipped, 100u) << "static scene should mostly skip decode";
}

}  // namespace
}  // namespace ffsva::detect
