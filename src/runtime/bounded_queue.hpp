// Bounded multi-producer / multi-consumer queue with close semantics.
//
// This is the backbone of the FFS-VA pipeline: every pair of consecutive
// stages (prefetch -> SDD -> SNM -> T-YOLO -> reference model) is decoupled
// by one of these queues, which is what lets the stages run as an
// asynchronous pipeline instead of in lock step (paper Section 3.1.2).
//
// Design notes:
//  * Blocking push/pop with condition variables; try_/timed_ variants for
//    the feedback-queue controller, which must observe depth without
//    committing to a wait. Wait conditions are explicit loops so the
//    thread-safety analysis (runtime/annotations.hpp) can check every
//    guarded access.
//  * close() wakes all waiters; a closed queue drains remaining elements,
//    then pop() returns std::nullopt. This gives pipelines a clean
//    end-of-stream path with no sentinel values.
//  * depth() is an instantaneous snapshot used by FeedbackController to
//    decide whether an upstream stage must throttle. It is intentionally
//    approximate under concurrency (the controller is a heuristic).
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "runtime/annotations.hpp"

namespace ffsva::runtime {

/// Eventcount for consumers that multiplex over *several* queues (the GPU0
/// executor drains every stream's SNM queue; an SDD worker serves every
/// stream's SDD queue). A consumer cannot block inside any single queue's
/// pop — that would deafen it to the others — so instead each queue is
/// wired to a shared QueueWaiter via BoundedQueue::set_waiter() and the
/// consumer runs the classic eventcount protocol:
///
///     const auto ticket = waiter.prepare();   // 1. arm
///     if (scan_all_queues_found_work()) ...   // 2. re-check
///     else waiter.wait(ticket);               // 3. sleep
///
/// Every push/close on a wired queue bumps the epoch, so activity between
/// (1) and (3) makes wait() return immediately — no missed wakeups, and no
/// polling loop (this replaces the executor's 200us sleep).
///
/// notify() is on every producer's hot path, so it must cost one atomic
/// increment when no consumer is parked (the steady state of a saturated
/// pipeline). Correctness of the fast path rests on seq_cst ordering:
/// the waiter publishes waiters_ before re-reading the epoch (both under
/// the mutex), the notifier bumps the epoch before reading waiters_, so in
/// the single total order either the waiter sees the new epoch and never
/// sleeps, or the notifier sees the waiter and takes the slow wake path.
class QueueWaiter {
 public:
  /// Arm: snapshot the epoch before scanning for work.
  std::uint64_t prepare() const { return epoch_.load(); }

  /// Sleep until any wired queue sees activity after `ticket` was taken.
  void wait(std::uint64_t ticket) const {
    UniqueLock lk(mu_);
    waiters_.fetch_add(1);
    while (epoch_.load() == ticket) cv_.wait(lk);
    waiters_.fetch_sub(1);
  }

  /// Timed variant; false on timeout with no activity.
  template <typename Rep, typename Period>
  bool wait_for(std::uint64_t ticket,
                std::chrono::duration<Rep, Period> timeout) const {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    UniqueLock lk(mu_);
    waiters_.fetch_add(1);
    bool woke = true;
    while (epoch_.load() == ticket) {
      if (cv_.wait_until(lk, deadline) == std::cv_status::timeout) {
        woke = epoch_.load() != ticket;
        break;
      }
    }
    waiters_.fetch_sub(1);
    return woke;
  }

  /// Record activity; wake armed waiters only if any are parked.
  void notify() const {
    epoch_.fetch_add(1);
    if (waiters_.load() != 0) {
      // The lock handshake closes the window where a waiter has re-checked
      // the epoch but not yet atomically released the mutex into the wait.
      { MutexLock lk(mu_); }
      cv_.notify_all();
    }
  }

 private:
  // Innermost rank in the tree: notify() runs under whatever lock the
  // producer already holds (queue mu_, engine streams_mu_ via close sweeps).
  mutable Mutex mu_{rank::kQueueWaiter, "QueueWaiter::mu_"};
  mutable CondVar cv_;
  mutable std::atomic<std::uint64_t> epoch_{0};
  mutable std::atomic<int> waiters_{0};
};

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Wire this queue to a shared QueueWaiter: every push and the close are
  /// reported to it, so a consumer multiplexing over many queues can sleep
  /// on one condition instead of polling. Must be called before the queue
  /// is shared between threads (the pointer itself is unsynchronized).
  void set_waiter(QueueWaiter* waiter) { waiter_ = waiter; }

  /// Blocks until space is available or the queue is closed.
  /// Returns false (and drops the value) if the queue was closed.
  bool push(T value) {
    UniqueLock lk(mu_);
    while (items_.size() >= capacity_ && !closed_) not_full_.wait(lk);
    if (closed_) return false;
    items_.push_back(std::move(value));
    ++total_pushed_;
    lk.unlock();
    not_empty_.notify_one();
    if (waiter_) waiter_->notify();
    return true;
  }

  /// Non-blocking push. Returns false if full or closed.
  bool try_push(T value) {
    {
      MutexLock lk(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(value));
      ++total_pushed_;
    }
    not_empty_.notify_one();
    if (waiter_) waiter_->notify();
    return true;
  }

  /// Push waiting at most `timeout`. Returns false on timeout or close.
  template <typename Rep, typename Period>
  bool push_for(T value, std::chrono::duration<Rep, Period> timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    UniqueLock lk(mu_);
    while (items_.size() >= capacity_ && !closed_) {
      if (not_full_.wait_until(lk, deadline) == std::cv_status::timeout) {
        if (items_.size() >= capacity_ && !closed_) return false;
        break;
      }
    }
    if (closed_) return false;
    items_.push_back(std::move(value));
    ++total_pushed_;
    lk.unlock();
    not_empty_.notify_one();
    if (waiter_) waiter_->notify();
    return true;
  }

  /// Blocks until an element is available; returns nullopt once the queue
  /// is closed *and* drained.
  std::optional<T> pop() {
    UniqueLock lk(mu_);
    while (items_.empty() && !closed_) not_empty_.wait(lk);
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    ++total_popped_;
    lk.unlock();
    not_full_.notify_one();
    return v;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    UniqueLock lk(mu_);
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    ++total_popped_;
    lk.unlock();
    not_full_.notify_one();
    return v;
  }

  /// Pop waiting at most `timeout`.
  template <typename Rep, typename Period>
  std::optional<T> pop_for(std::chrono::duration<Rep, Period> timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    UniqueLock lk(mu_);
    while (items_.empty() && !closed_) {
      if (not_empty_.wait_until(lk, deadline) == std::cv_status::timeout) {
        if (items_.empty() && !closed_) return std::nullopt;
        break;
      }
    }
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    ++total_popped_;
    lk.unlock();
    not_full_.notify_one();
    return v;
  }

  /// Pop up to `max_count` elements at once (the dynamic-batch primitive:
  /// "pop out a batch ... otherwise the frames are popped until the queue
  /// is empty", paper Section 4.3.2). Blocks for the *first* element only.
  /// Returns an empty vector once closed and drained.
  std::vector<T> pop_batch(std::size_t max_count) {
    UniqueLock lk(mu_);
    while (items_.empty() && !closed_) not_empty_.wait(lk);
    std::vector<T> out;
    while (!items_.empty() && out.size() < max_count) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
      ++total_popped_;
    }
    lk.unlock();
    not_full_.notify_all();
    return out;
  }

  /// Blocks until at least `count` elements are present (or close), then
  /// pops exactly min(count, size) elements. This is the *static* batch
  /// primitive: wait for a full batch.
  std::vector<T> pop_exact(std::size_t count) {
    UniqueLock lk(mu_);
    while (items_.size() < count && !closed_) not_empty_.wait(lk);
    std::vector<T> out;
    while (!items_.empty() && out.size() < count) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
      ++total_popped_;
    }
    lk.unlock();
    not_full_.notify_all();
    return out;
  }

  /// Close the queue: producers fail, consumers drain then see end-of-stream.
  void close() {
    {
      MutexLock lk(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
    if (waiter_) waiter_->notify();
  }

  bool closed() const {
    MutexLock lk(mu_);
    return closed_;
  }

  /// Instantaneous queue depth (feedback-queue mechanism reads this).
  std::size_t depth() const {
    MutexLock lk(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

  /// Lifetime counters; used by tests to prove no element is lost.
  std::uint64_t total_pushed() const {
    MutexLock lk(mu_);
    return total_pushed_;
  }
  std::uint64_t total_popped() const {
    MutexLock lk(mu_);
    return total_popped_;
  }

 private:
  const std::size_t capacity_;
  QueueWaiter* waiter_ = nullptr;  ///< Optional multi-queue wakeup target.
  // Queue-leaf rank: taken under the engine's streams_mu_ (stop/close
  // sweep) and before only the QueueWaiter handshake.
  mutable Mutex mu_{rank::kBoundedQueue, "BoundedQueue::mu_"};
  CondVar not_empty_;
  CondVar not_full_;
  // bounded-ok: capacity_ is enforced by every push path above; the deque
  // is the bounded queue's own storage, not an unbounded channel.
  std::deque<T> items_ FFSVA_GUARDED_BY(mu_);
  bool closed_ FFSVA_GUARDED_BY(mu_) = false;
  std::uint64_t total_pushed_ FFSVA_GUARDED_BY(mu_) = 0;
  std::uint64_t total_popped_ FFSVA_GUARDED_BY(mu_) = 0;
};

}  // namespace ffsva::runtime
