#include "detect/snm.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "video/profiles.hpp"

namespace ffsva::detect {
namespace {

/// Small trained SNM on a small scene, shared across tests in this file
/// (training is the expensive part).
struct TrainedSnm {
  video::SceneConfig cfg;
  std::unique_ptr<video::SceneSimulator> sim;
  std::vector<video::Frame> frames;
  std::vector<bool> labels;
  std::unique_ptr<SnmFilter> snm;
  SnmTrainReport report;

  TrainedSnm() {
    cfg = video::jackson_profile();
    cfg.width = 128;
    cfg.height = 96;
    cfg.tor = 0.4;
    sim = std::make_unique<video::SceneSimulator>(cfg, 55, 900);
    for (int i = 0; i < 700; ++i) frames.push_back(sim->render(i));
    for (const auto& f : frames) labels.push_back(f.gt.any_target(cfg.target));
    SnmConfig sc;
    sc.epochs = 6;
    snm = std::make_unique<SnmFilter>(sc, sim->background(), 7);
    report = snm->train(frames, labels);
  }
};

TrainedSnm& trained() {
  static TrainedSnm* t = new TrainedSnm();
  return *t;
}

TEST(SnmFilter, TPreFollowsFilterDegree) {
  SnmConfig cfg;
  cfg.c_low = 0.2;
  cfg.c_high = 0.8;
  cfg.filter_degree = 0.5;
  SnmFilter snm(cfg, image::Image(32, 32, 3, 80), 1);
  EXPECT_NEAR(snm.t_pre(), 0.5, 1e-12);
  snm.set_filter_degree(0.0);
  EXPECT_NEAR(snm.t_pre(), 0.2, 1e-12);
  snm.set_filter_degree(1.0);
  EXPECT_NEAR(snm.t_pre(), 0.8, 1e-12);
  snm.set_filter_degree(2.0);  // clamped
  EXPECT_NEAR(snm.t_pre(), 0.8, 1e-12);
}

TEST(SnmFilter, PredictionIsAProbability) {
  SnmFilter snm(SnmConfig{}, image::Image(32, 32, 3, 80), 2);
  const double c = snm.predict(image::Image(64, 64, 3, 90));
  EXPECT_GE(c, 0.0);
  EXPECT_LE(c, 1.0);
}

TEST(SnmFilter, BatchMatchesSingle) {
  auto& t = trained();
  std::vector<const image::Image*> batch;
  for (int i = 0; i < 5; ++i) batch.push_back(&t.frames[static_cast<std::size_t>(i * 7)].image);
  const auto scores = t.snm->predict_batch(batch);
  ASSERT_EQ(scores.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_NEAR(scores[static_cast<std::size_t>(i)],
                t.snm->predict(*batch[static_cast<std::size_t>(i)]), 1e-6);
  }
}

TEST(SnmFilter, EmptyBatch) {
  auto& t = trained();
  EXPECT_TRUE(t.snm->predict_batch({}).empty());
}

TEST(SnmTraining, ReachesPaperishAccuracy) {
  auto& t = trained();
  // "Using SNM for rapid image recognition in this case can ensure the
  // accuracy to be over 95%" (Section 3.2.2).
  EXPECT_GT(t.report.val_accuracy, 0.9);
  EXPECT_GT(t.report.train_accuracy, 0.9);
  EXPECT_GT(t.report.positives, 0);
  EXPECT_GT(t.report.negatives, 0);
}

TEST(SnmTraining, ThresholdsAreOrdered) {
  auto& t = trained();
  EXPECT_GE(t.report.c_high, t.report.c_low);
  EXPECT_GE(t.report.c_low, 0.0);
  EXPECT_LE(t.report.c_high, 1.0);
}

TEST(SnmTraining, SeparatesScoresOnHeldOutFrames) {
  auto& t = trained();
  // Frames 700..900 were never seen in training.
  double pos_sum = 0, neg_sum = 0;
  int pos_n = 0, neg_n = 0;
  for (int i = 700; i < 900; ++i) {
    const auto f = t.sim->render(i);
    const double c = t.snm->predict(f.image);
    if (f.gt.any_target(t.cfg.target)) {
      pos_sum += c;
      ++pos_n;
    } else {
      neg_sum += c;
      ++neg_n;
    }
  }
  ASSERT_GT(pos_n, 5);
  ASSERT_GT(neg_n, 5);
  EXPECT_GT(pos_sum / pos_n, neg_sum / neg_n + 0.2)
      << "positive frames must score clearly higher on unseen data";
}

TEST(SnmTraining, BadInputsThrow) {
  SnmFilter snm(SnmConfig{}, image::Image(32, 32, 3, 80), 3);
  EXPECT_THROW(snm.train({}, {}), std::invalid_argument);
  std::vector<video::Frame> one(1);
  one[0].image = image::Image(32, 32, 3, 80);
  EXPECT_THROW(snm.train(one, {true, false}), std::invalid_argument);
}

TEST(SnmFilter, SaveLoadPreservesBehaviour) {
  auto& t = trained();
  std::stringstream ss;
  t.snm->save(ss);

  SnmConfig sc;
  sc.epochs = 6;
  SnmFilter restored(sc, t.sim->background(), 999);  // different init seed
  restored.load(ss);

  for (int i = 0; i < 10; ++i) {
    const auto& img = t.frames[static_cast<std::size_t>(i * 31)].image;
    EXPECT_NEAR(restored.predict(img), t.snm->predict(img), 1e-6);
  }
  EXPECT_NEAR(restored.t_pre(), t.snm->t_pre(), 1e-12);
}

TEST(SnmFilter, SetThresholdsKeepsOrdering) {
  SnmFilter snm(SnmConfig{}, image::Image(32, 32, 3, 80), 4);
  snm.set_thresholds(0.6, 0.4);  // inverted input
  snm.set_filter_degree(1.0);
  EXPECT_GE(snm.t_pre(), 0.6 - 1e-12);
}

TEST(SnmFilter, ParameterCountMatchesArchitecture) {
  SnmConfig cfg;  // conv1: 8 filters, conv2: 16 filters, input 50
  SnmFilter snm(cfg, image::Image(32, 32, 3, 80), 5);
  // conv1: 8*1*9+8 = 80; conv2: 16*8*9+16 = 1168; fc: 16*13*13 -> 1 = 2705.
  EXPECT_EQ(snm.num_parameters(), 80u + 1168u + 2705u);
}

}  // namespace
}  // namespace ffsva::detect
