# Empty dependencies file for bench_fig3_online_low_tor.
# This may be replaced when dependencies are built.
