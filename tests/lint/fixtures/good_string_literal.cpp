// Regression fixture: rule tokens inside string literals are NOT code.
// Before the code-view pass, the "::connect" in the log line below needed
// a bogus socket-ok marker; none of these may fire.
#include <string>

void log(const std::string&);

void report_errors() {
  log("::connect refused by peer");
  log("worker calls std::thread then sleep_for( forever )");
  log("queue is a std::deque<Frame> under the hood");
  const char* hint = "call .detach( ) and memory_order_relaxed at will";
  log(hint);
  // Raw strings too: the whole payload is data, not code.
  log(R"(::send( and ::recv( are wire verbs, std::queue<int> is a type)");
  const char quote = '"';  // a lone quote char must not open a string
  log(std::string(1, quote) + "::bind( inside, still a literal");
}
