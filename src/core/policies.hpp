// Pipeline scheduling policies as pure logic, shared verbatim by the
// threaded engine (src/core/pipeline.*) and the discrete-event simulator
// (src/sim). Keeping them engine-agnostic is what makes the simulated
// performance figures an evaluation of the *production* policy code.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "core/config.hpp"

namespace ffsva::core {

/// Dynamic-batch decision (Section 4.3.2). Given the number of frames
/// currently waiting in the SNM queue, how many should the next inference
/// batch take — and is it allowed to run yet?
struct BatchDecision {
  int take = 0;      ///< Frames to pop for this batch.
  bool wait = false; ///< True: not enough frames yet, keep waiting.
};

class DynamicBatcher {
 public:
  DynamicBatcher(BatchPolicy policy, int batch_size, int queue_threshold)
      : policy_(policy), batch_size_(std::max(1, batch_size)),
        queue_threshold_(std::max(1, queue_threshold)) {}

  /// `available`: frames waiting; `stream_ended`: no more frames will come
  /// (drain whatever is left instead of waiting forever).
  BatchDecision next_batch(int available, bool stream_ended) const {
    BatchDecision d;
    if (available <= 0) {
      d.wait = !stream_ended;
      return d;
    }
    switch (policy_) {
      case BatchPolicy::kStatic:
        // Wait for a full batch (Figure 9: throughput keeps growing with
        // BatchSize, latency grows with it too).
        if (available < batch_size_ && !stream_ended) {
          d.wait = true;
        } else {
          d.take = std::min(available, batch_size_);
        }
        break;
      case BatchPolicy::kFeedback: {
        // Feedback-queue alone: the queue can never hold more than its
        // threshold, so a batch larger than the threshold waits for the
        // queue-full level instead ("when the batch size is greater than
        // the queue depth threshold, video frames have to wait").
        const int target = std::min(batch_size_, queue_threshold_);
        if (available < target && !stream_ended) {
          d.wait = true;
        } else {
          d.take = std::min(available, target);
        }
        break;
      }
      case BatchPolicy::kDynamic:
        // Take whatever is there, up to BatchSize; never wait for more.
        d.take = std::min(available, batch_size_);
        break;
    }
    return d;
  }

  BatchPolicy policy() const { return policy_; }
  int batch_size() const { return batch_size_; }

 private:
  BatchPolicy policy_;
  int batch_size_;
  int queue_threshold_;
};

/// Drain driver for a batched single-consumer stage fed by one bounded
/// queue — the GPU1 reference loop. The consumer keeps a pending buffer of
/// already-popped items and asks next() what to do; the DynamicBatcher
/// decision is translated into the only two moves a queue consumer has:
/// consume `take` buffered items now, or blocking-pop one more item first
/// (which is how a kStatic/kFeedback policy waits for a fuller batch
/// without polling). Pure logic, shared with tests.
class BatchDrain {
 public:
  BatchDrain(BatchPolicy policy, int batch_size, int queue_threshold)
      : batcher_(policy, batch_size, queue_threshold) {}

  struct Step {
    int take = 0;       ///< Consume this many pending items now.
    bool block = false; ///< Blocking-pop one more item before re-deciding.
  };

  /// `pending`: items buffered by the consumer; `ended`: the queue is
  /// closed and drained (no more items will ever arrive). take == 0 and
  /// block == false together mean the stage is done.
  Step next(int pending, bool ended) const {
    const auto d = batcher_.next_batch(pending, ended);
    if (d.wait) return {0, true};
    return {d.take, false};
  }

  int batch_size() const { return batcher_.batch_size(); }

 private:
  DynamicBatcher batcher_;
};

/// Feedback-queue throttle (Section 4.3.1): a stage must pause pushing when
/// its downstream queue is at or above the threshold. With bounded queues
/// this emerges naturally from a blocking push; the explicit predicate is
/// used by the simulator and by stages that would rather keep *filtering*
/// (the bypass: SDD can keep discarding background frames while the SNM
/// queue is full, because only passing frames need the downstream slot).
class FeedbackController {
 public:
  explicit FeedbackController(const FfsVaConfig& config) : config_(config) {}

  bool sdd_may_push(int snm_queue_depth) const {
    return snm_queue_depth < effective(config_.snm_queue_depth);
  }
  bool snm_may_push(int tyolo_queue_depth) const {
    return tyolo_queue_depth < effective(config_.tyolo_queue_depth);
  }
  bool tyolo_may_push(int ref_queue_depth) const {
    return ref_queue_depth < effective(config_.ref_queue_depth);
  }

 private:
  int effective(int threshold) const { return config_.capacity(threshold); }
  FfsVaConfig config_;
};

/// Round-robin T-YOLO service order with a per-stream extraction cap
/// (Sections 3.2.3 and 4.3.1): "T-YOLO needs to traverse each T-YOLO queue
/// of all streams one by one and extract at most num_tyolo video frames
/// from the queue for detection, skipping the stream if its queue is empty."
class TYoloScheduler {
 public:
  explicit TYoloScheduler(int num_tyolo) : num_tyolo_(std::max(1, num_tyolo)) {}

  struct Pick {
    int stream = -1;
    int take = 0;
  };

  /// `queue_depths[i]`: frames waiting for stream i. Returns the next
  /// non-empty stream after the previously served one, and how many frames
  /// to take from it. stream = -1 when every queue is empty.
  Pick next(const std::vector<int>& queue_depths) {
    const int n = static_cast<int>(queue_depths.size());
    for (int step = 1; step <= n; ++step) {
      const int s = (cursor_ + step) % n;
      if (queue_depths[static_cast<std::size_t>(s)] > 0) {
        cursor_ = s;
        return Pick{s, std::min(queue_depths[static_cast<std::size_t>(s)], num_tyolo_)};
      }
    }
    return Pick{};
  }

  int num_tyolo() const { return num_tyolo_; }

 private:
  int cursor_ = -1;
  int num_tyolo_;
};

/// Admission / re-forwarding controller (Section 4.3.1): track T-YOLO's
/// service rate over a sliding window; a sustained rate under
/// admit_tyolo_fps means spare capacity (admit another stream), while any
/// queue crossing its threshold persistently means overload (re-forward a
/// stream to another instance).
class AdmissionController {
 public:
  AdmissionController(double admit_fps, double window_sec)
      : admit_fps_(admit_fps), window_sec_(window_sec) {}

  /// Report `frames` served by T-YOLO at time `now_sec`.
  void on_tyolo_served(double now_sec, int frames) {
    if (observed_since_ < 0.0) observed_since_ = now_sec;
    samples_.push_back({now_sec, frames});
    trim(now_sec);
  }

  /// Spare capacity if the windowed T-YOLO rate has stayed below the
  /// threshold for the whole window ("when the execution speed of T-YOLO is
  /// lower than a certain level for a period of time", Section 4.3.1).
  bool has_spare_capacity(double now_sec) {
    if (observed_since_ < 0.0) return true;  // nothing running at all
    if (now_sec - observed_since_ < window_sec_ * 0.95) return false;
    return windowed_fps(now_sec) < admit_fps_;
  }

  /// Frames served per second over the last window (or since observation
  /// started, whichever is shorter).
  double windowed_fps(double now_sec) {
    trim(now_sec);
    std::int64_t total = 0;
    for (const auto& s : samples_) total += s.frames;
    double span = window_sec_;
    if (observed_since_ >= 0.0) span = std::min(span, now_sec - observed_since_);
    return static_cast<double>(total) / std::max(1e-9, span);
  }

  /// Overload signal: a queue has been at/over its threshold this tick.
  void on_queue_over_threshold(double now_sec) { last_overload_ = now_sec; }

  bool overloaded(double now_sec) const {
    return last_overload_ >= 0.0 && now_sec - last_overload_ < 1.0;
  }

 private:
  struct Sample {
    double t = 0.0;
    int frames = 0;
  };
  void trim(double now_sec) {
    while (!samples_.empty() && samples_.front().t < now_sec - window_sec_) {
      samples_.pop_front();
    }
  }

  double admit_fps_;
  double window_sec_;
  // bounded-ok: sliding observation window, pruned to window_sec_ on every
  // report; owned by the control plane's single reporting thread.
  std::deque<Sample> samples_;
  double observed_since_ = -1.0;
  double last_overload_ = -1.0;
};

}  // namespace ffsva::core
