// Core raster operations used by the filters and the scene simulator.
//
// The per-filter resize costs the paper reports (40us / 150us / 400us for
// SDD / SNM / T-YOLO, Section 4.1) correspond to resize_bilinear here; the
// SDD distance metrics of Section 3.2.1 are mse / nrmse / sad.
#pragma once

#include <cstdint>
#include <vector>

#include "image/image.hpp"

namespace ffsva::image {

/// Luma conversion (BT.601 integer weights). 1-channel input is copied.
Image to_gray(const Image& src);

/// Precomputed bilinear resampling tables. The per-pixel source indices
/// (clamped) and lerp weights (Q11 fixed point) depend only on the
/// geometry, so every filter that resizes each frame to a fixed input
/// size amortizes the floor/clamp/divide work to zero: ensure() rebuilds
/// the tables only when the geometry actually changes, and
/// resize_bilinear_into() then runs integer-only per pixel.
struct ResizePlan {
  int src_w = -1, src_h = -1, out_w = -1, out_h = -1;
  std::vector<std::int32_t> x0, x1, wx;  ///< Per output column.
  std::vector<std::int32_t> y0, y1, wy;  ///< Per output row.

  static constexpr int kWeightBits = 11;  ///< Q11: weights in [0, 2048].

  /// Rebuild the tables if the geometry changed; no-op (and
  /// allocation-free) otherwise.
  void ensure(int src_width, int src_height, int out_width, int out_height);
};

/// Bilinear resize to (out_w, out_h); channel count preserved.
Image resize_bilinear(const Image& src, int out_w, int out_h);

/// Bilinear resize into a caller-owned destination using prepared tables;
/// dst is reshaped to the plan's output geometry and src must match the
/// plan's source geometry. Allocation-free once dst is warm.
void resize_bilinear_into(const Image& src, const ResizePlan& plan, Image& dst);

/// Mean squared error over all channels. Shapes must match.
double mse(const Image& a, const Image& b);

/// Normalized root mean square error: sqrt(MSE) / 255.
double nrmse(const Image& a, const Image& b);

/// Mean of absolute differences (SAD normalized by pixel count).
double sad(const Image& a, const Image& b);

/// |a - b| per pixel.
Image abs_diff(const Image& a, const Image& b);

/// Separable Gaussian blur; sigma <= 0 returns a copy.
Image gaussian_blur(const Image& src, double sigma);

/// Binary threshold: out = src > t ? 255 : 0 (per channel).
Image threshold(const Image& src, std::uint8_t t);

/// Otsu's automatic threshold for a grayscale image.
std::uint8_t otsu_threshold(const Image& gray);

/// 3x3 binary erosion / dilation (values treated as 0 / nonzero).
Image erode3x3(const Image& binary);
Image dilate3x3(const Image& binary);

/// Summed-area table; out[y][x] = sum of gray pixels in [0,x] x [0,y].
/// Gray input only.
std::vector<std::uint64_t> integral_image(const Image& gray);

/// Box sum over the half-open rect using a table from integral_image().
std::uint64_t box_sum(const std::vector<std::uint64_t>& integral, int img_w,
                      int x0, int y0, int x1, int y1);

}  // namespace ffsva::image
