file(REMOVE_RECURSE
  "libffsva_image.a"
)
