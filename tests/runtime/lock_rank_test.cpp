// Runtime lock-rank verifier (src/runtime/lock_rank.hpp, DESIGN.md §16):
// in-order acquisition passes, an inversion aborts with both lock names,
// unranked mutexes stay off the held stack entirely, and in Release builds
// (no FFSVA_LOCK_RANK_CHECKS) the checks compile out to nothing.
#include "runtime/annotations.hpp"
#include "runtime/lock_rank.hpp"

#include <gtest/gtest.h>

#include <thread>

// GCC spells TSan detection __SANITIZE_THREAD__; __has_feature is Clang's.
#if defined(__SANITIZE_THREAD__)
#define FFSVA_TEST_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define FFSVA_TEST_UNDER_TSAN 1
#endif
#endif

namespace ffsva::runtime {
namespace {

TEST(LockRank, InOrderAcquisitionPasses) {
  Mutex outer{rank::kEngineStreams, "test::outer"};
  Mutex inner{rank::kBoundedQueue, "test::inner"};
  {
    MutexLock lo(outer);
    if (lock_rank_checks_enabled()) EXPECT_EQ(lock_rank_held_depth(), 1);
    MutexLock li(inner);
    if (lock_rank_checks_enabled()) EXPECT_EQ(lock_rank_held_depth(), 2);
  }
  EXPECT_EQ(lock_rank_held_depth(), 0);
}

TEST(LockRank, UniqueLockTracksUnlockRelock) {
  Mutex mu{rank::kWatchdog, "test::uniq"};
  UniqueLock lk(mu);
  if (lock_rank_checks_enabled()) EXPECT_EQ(lock_rank_held_depth(), 1);
  lk.unlock();
  EXPECT_EQ(lock_rank_held_depth(), 0);
  lk.lock();
  if (lock_rank_checks_enabled()) EXPECT_EQ(lock_rank_held_depth(), 1);
  lk.unlock();
  EXPECT_EQ(lock_rank_held_depth(), 0);
}

TEST(LockRank, TryLockPushesOnSuccessOnly) {
  Mutex mu{rank::kTraceBuffer, "test::try"};
  ASSERT_TRUE(mu.try_lock());
  if (lock_rank_checks_enabled()) EXPECT_EQ(lock_rank_held_depth(), 1);
  // Contended try_lock from another thread fails and must leave that
  // thread's stack untouched.
  std::thread([&] {
    EXPECT_FALSE(mu.try_lock());
    EXPECT_EQ(lock_rank_held_depth(), 0);
  }).join();
  mu.unlock();
  EXPECT_EQ(lock_rank_held_depth(), 0);
}

TEST(LockRank, UnrankedMutexesStayOffTheStack) {
  // Default-constructed (rank 0) locks are never tracked — locals and test
  // fixtures pay nothing and impose no ordering constraints.
  Mutex a;
  Mutex b;
  MutexLock la(a);
  EXPECT_EQ(lock_rank_held_depth(), 0);
  MutexLock lb(b);
  EXPECT_EQ(lock_rank_held_depth(), 0);
  // An unranked lock under a ranked one is equally invisible.
  Mutex ranked{rank::kEngineOutputs, "test::ranked"};
  MutexLock lr(ranked);
  if (lock_rank_checks_enabled()) EXPECT_EQ(lock_rank_held_depth(), 1);
}

TEST(LockRank, EqualRankCountsAsInversion) {
  // Two locks at the same rank have no defined order between them: the
  // verifier demands strictly increasing ranks.
  if (!lock_rank_checks_enabled()) GTEST_SKIP() << "checks compiled out";
#if defined(FFSVA_TEST_UNDER_TSAN)
  GTEST_SKIP() << "death-test fork is unreliable under TSan";
#endif
  Mutex a{rank::kBenchDevice, "test::peer_a"};
  Mutex b{rank::kBenchDevice, "test::peer_b"};
  EXPECT_DEATH(
      {
        MutexLock la(a);
        MutexLock lb(b);
      },
      "lock-order inversion.*peer_b.*peer_a");
}

TEST(LockRank, InversionAbortsWithBothNames) {
  if (!lock_rank_checks_enabled()) GTEST_SKIP() << "checks compiled out";
#if defined(FFSVA_TEST_UNDER_TSAN)
  GTEST_SKIP() << "death-test fork is unreliable under TSan";
#endif
  Mutex inner{rank::kQueueWaiter, "test::leaf"};
  Mutex outer{rank::kNodeControl, "test::control"};
  EXPECT_DEATH(
      {
        MutexLock li(inner);
        MutexLock lo(outer);
      },
      "lock-order inversion.*test::control.*test::leaf");
}

TEST(LockRank, ReleaseChecksCompileOutInRelease) {
  // The contract the default (Release) build relies on: with checks
  // compiled out an inversion is NOT caught — the gate lives in the
  // sanitizer/debug builds and the static analyzer, not on the hot path.
  if (lock_rank_checks_enabled()) {
    GTEST_SKIP() << "checked build: covered by the death tests above";
  }
  Mutex inner{rank::kQueueWaiter, "test::leaf"};
  Mutex outer{rank::kNodeControl, "test::control"};
  {
    MutexLock li(inner);
    MutexLock lo(outer);  // inversion; must be a plain pair of locks here
  }
  EXPECT_EQ(lock_rank_held_depth(), 0);
  SUCCEED();
}

TEST(LockRank, CondVarWaitKeepsEntryAcrossWait) {
  Mutex mu{rank::kLoopJoin, "test::cvmu"};
  CondVar cv;
  bool ready = false;
  std::thread waker([&] {
    MutexLock lk(mu);
    ready = true;
    cv.notify_one();
  });
  {
    UniqueLock lk(mu);
    while (!ready) cv.wait(lk);
    if (lock_rank_checks_enabled()) EXPECT_EQ(lock_rank_held_depth(), 1);
  }
  waker.join();
  EXPECT_EQ(lock_rank_held_depth(), 0);
}

}  // namespace
}  // namespace ffsva::runtime
