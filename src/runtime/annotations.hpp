// Clang thread-safety-analysis annotations plus the annotated lock
// vocabulary the whole engine uses (DESIGN.md Section 11).
//
// The pipeline's concurrency discipline — which mutex guards which state,
// which functions demand a lock held, which must be called without it — is
// written down here as *attributes* so `-Wthread-safety` turns every
// violation into a compile error under the `lint` preset. Off Clang the
// macros expand to nothing and the wrappers below compile to exactly the
// std primitives they forward to (everything is inline, no virtuals, no
// extra state), so the annotated tree costs nothing on GCC builds.
//
// Conventions:
//  * Guarded state is declared with FFSVA_GUARDED_BY(mu_) and only touched
//    inside a MutexLock/UniqueLock scope (or from a private helper marked
//    FFSVA_REQUIRES(mu_)).
//  * Condition-variable predicates are written as explicit while-loops in
//    the locked scope, never as lambda predicates: the analysis cannot see
//    through std::condition_variable's predicate overloads, and the manual
//    loop is exactly equivalent (both re-check after every spurious wake).
//  * FFSVA_NO_TSA is a last resort for reads whose safety comes from a
//    join/quiesce edge the analysis cannot express; every use carries a
//    comment naming that edge.
#pragma once

#include <condition_variable>
#include <chrono>
#include <cstdint>
#include <mutex>

#include "runtime/lock_rank.hpp"

#if defined(__clang__) && (!defined(SWIG))
#define FFSVA_TSA(x) __attribute__((x))
#else
#define FFSVA_TSA(x)  // no-op off Clang
#endif

/// Declares a type to be a lockable capability ("mutex", "role", ...).
#define FFSVA_CAPABILITY(x) FFSVA_TSA(capability(x))
/// Declares an RAII type whose lifetime acquires/releases a capability.
#define FFSVA_SCOPED_CAPABILITY FFSVA_TSA(scoped_lockable)
/// Data member readable/writable only while holding `x`.
#define FFSVA_GUARDED_BY(x) FFSVA_TSA(guarded_by(x))
/// Pointer member whose *pointee* is guarded by `x`.
#define FFSVA_PT_GUARDED_BY(x) FFSVA_TSA(pt_guarded_by(x))
/// Function requires the listed capabilities held on entry (and exit).
#define FFSVA_REQUIRES(...) FFSVA_TSA(requires_capability(__VA_ARGS__))
/// Function acquires the listed capabilities (held on return).
#define FFSVA_ACQUIRE(...) FFSVA_TSA(acquire_capability(__VA_ARGS__))
/// Function releases the listed capabilities.
#define FFSVA_RELEASE(...) FFSVA_TSA(release_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns `b`.
#define FFSVA_TRY_ACQUIRE(b, ...) FFSVA_TSA(try_acquire_capability(b, __VA_ARGS__))
/// Function must NOT be called with the listed capabilities held
/// (deadlock-by-self-lock prevention).
#define FFSVA_EXCLUDES(...) FFSVA_TSA(locks_excluded(__VA_ARGS__))
/// Function returns a reference to the named capability.
#define FFSVA_RETURN_CAPABILITY(x) FFSVA_TSA(lock_returned(x))
/// Assert (at runtime, for the analysis) that the capability is held.
#define FFSVA_ASSERT_CAPABILITY(x) FFSVA_TSA(assert_capability(x))
/// Opt a function out of the analysis entirely. Last resort; every use
/// carries a comment naming the happens-before edge that replaces the lock.
#define FFSVA_NO_TSA FFSVA_TSA(no_thread_safety_analysis)
/// Declares static acquisition order on a Mutex member: this lock is taken
/// before the listed ones. Mirrors the numeric rank in lock_rank.hpp so
/// clang's analysis and the runtime verifier agree on one order.
#define FFSVA_ACQUIRED_BEFORE(...) FFSVA_TSA(acquired_before(__VA_ARGS__))
/// Declares static acquisition order: this lock is taken after the listed
/// ones (the dual of FFSVA_ACQUIRED_BEFORE, for when only the outer lock
/// is nameable from this header).
#define FFSVA_ACQUIRED_AFTER(...) FFSVA_TSA(acquired_after(__VA_ARGS__))

namespace ffsva::runtime {

/// std::mutex with the capability attribute the analysis needs, plus an
/// optional lock rank. Default-constructed mutexes are unranked (rank 0):
/// the verifier ignores them and in Release builds the rank hooks are empty
/// inlines, so the locking fast path is unchanged. Ranked mutexes name
/// their place in the global acquisition order (lock_rank.hpp) and, in
/// checked builds, abort with both lock names on the first out-of-order
/// acquisition any thread performs.
class FFSVA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  /// Ranked mutex: `r` from the lock_rank.hpp table, `name` a static
  /// string identifying this lock in inversion reports.
  Mutex(std::uint32_t r, const char* name) : rank_(r), name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() FFSVA_ACQUIRE() {
    lockrank_detail::acquire(rank_, name_);
    mu_.lock();
  }
  void unlock() FFSVA_RELEASE() {
    mu_.unlock();
    lockrank_detail::release(rank_, name_);
  }
  bool try_lock() FFSVA_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    // A successful try_lock still has to respect the order: a trylock
    // inversion only *sometimes* deadlocks, which is worse.
    lockrank_detail::acquire(rank_, name_);
    return true;
  }

  std::uint32_t lock_rank() const { return rank_; }
  const char* lock_name() const { return name_; }

  /// The wrapped mutex, for CondVar's wait plumbing only. Locking through
  /// this reference is invisible to the analysis — never do it directly.
  std::mutex& os_mutex() { return mu_; }

 private:
  std::mutex mu_;
  std::uint32_t rank_ = rank::kNone;
  const char* name_ = nullptr;
};

/// std::lock_guard over Mutex: acquire at construction, release at scope
/// exit. The default for critical sections with no wait and no early
/// unlock.
class FFSVA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) FFSVA_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() FFSVA_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// std::unique_lock over Mutex: relockable (unlock before a notify, relock
/// around a blocking call) and the handle CondVar waits on. The analysis
/// tracks the held/released state through the annotated members.
class FFSVA_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) FFSVA_ACQUIRE(mu)
      : mu_(&mu), lk_(mu.os_mutex(), std::defer_lock) {
    lockrank_detail::acquire(mu_->lock_rank(), mu_->lock_name());
    lk_.lock();
  }
  ~UniqueLock() FFSVA_RELEASE() {
    if (lk_.owns_lock()) {
      lk_.unlock();
      lockrank_detail::release(mu_->lock_rank(), mu_->lock_name());
    }
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() FFSVA_ACQUIRE() {
    lockrank_detail::acquire(mu_->lock_rank(), mu_->lock_name());
    lk_.lock();
  }
  void unlock() FFSVA_RELEASE() {
    lk_.unlock();
    lockrank_detail::release(mu_->lock_rank(), mu_->lock_name());
  }

  /// For CondVar only: the native handle a std cv can block on. The rank
  /// entry stays on the held stack across a cv wait — the thread is parked,
  /// so it cannot acquire out of order, and on wake it holds the lock again.
  std::unique_lock<std::mutex>& native() { return lk_; }

 private:
  Mutex* mu_;
  std::unique_lock<std::mutex> lk_;
};

/// Condition variable paired with Mutex/UniqueLock. Predicate overloads are
/// intentionally absent: callers write the wait loop in their own locked
/// scope so the analysis sees every guarded read (see file comment).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(UniqueLock& lk) { cv_.wait(lk.native()); }

  template <typename Rep, typename Period>
  std::cv_status wait_for(UniqueLock& lk,
                          std::chrono::duration<Rep, Period> timeout) {
    return cv_.wait_for(lk.native(), timeout);
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(UniqueLock& lk,
                            std::chrono::time_point<Clock, Duration> deadline) {
    return cv_.wait_until(lk.native(), deadline);
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace ffsva::runtime
