#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ffsva::sim {
namespace {

TEST(SimEngine, StartsAtZero) {
  SimEngine eng;
  EXPECT_EQ(eng.now(), 0.0);
  EXPECT_FALSE(eng.step());
}

TEST(SimEngine, EventsRunInTimeOrder) {
  SimEngine eng;
  std::vector<int> order;
  eng.at(3.0, [&] { order.push_back(3); });
  eng.at(1.0, [&] { order.push_back(1); });
  eng.at(2.0, [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), 3.0);
}

TEST(SimEngine, TiesBreakBySubmissionOrder) {
  SimEngine eng;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    eng.at(1.0, [&, i] { order.push_back(i); });
  }
  eng.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimEngine, AfterIsRelative) {
  SimEngine eng;
  double fired_at = -1;
  eng.at(5.0, [&] {
    eng.after(2.5, [&] { fired_at = eng.now(); });
  });
  eng.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(SimEngine, RunUntilStopsEarly) {
  SimEngine eng;
  int fired = 0;
  eng.at(1.0, [&] { ++fired; });
  eng.at(10.0, [&] { ++fired; });
  eng.run(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(eng.pending(), 1u);
  eng.run();
  EXPECT_EQ(fired, 2);
}

TEST(SimEngine, EventsCanScheduleRecursively) {
  SimEngine eng;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 100) eng.after(0.1, tick);
  };
  eng.after(0.1, tick);
  eng.run();
  EXPECT_EQ(count, 100);
  EXPECT_NEAR(eng.now(), 10.0, 1e-9);
  EXPECT_EQ(eng.events_executed(), 100u);
}

TEST(KServerResource, SingleServerSerializesJobs) {
  SimEngine eng;
  KServerResource server(eng, 1);
  std::vector<double> done_times;
  for (int i = 0; i < 3; ++i) {
    server.submit(1.0, [&] { done_times.push_back(eng.now()); });
  }
  eng.run();
  ASSERT_EQ(done_times.size(), 3u);
  EXPECT_DOUBLE_EQ(done_times[0], 1.0);
  EXPECT_DOUBLE_EQ(done_times[1], 2.0);
  EXPECT_DOUBLE_EQ(done_times[2], 3.0);
}

TEST(KServerResource, TwoServersRunConcurrently) {
  SimEngine eng;
  KServerResource server(eng, 2);
  std::vector<double> done_times;
  for (int i = 0; i < 4; ++i) {
    server.submit(1.0, [&] { done_times.push_back(eng.now()); });
  }
  eng.run();
  ASSERT_EQ(done_times.size(), 4u);
  EXPECT_DOUBLE_EQ(done_times[0], 1.0);
  EXPECT_DOUBLE_EQ(done_times[1], 1.0);
  EXPECT_DOUBLE_EQ(done_times[2], 2.0);
  EXPECT_DOUBLE_EQ(done_times[3], 2.0);
}

TEST(KServerResource, UtilizationAccounting) {
  SimEngine eng;
  KServerResource server(eng, 2);
  server.submit(1.0, [] {});
  server.submit(1.0, [] {});
  eng.run();
  // 2 seconds of busy time over 1 second * 2 servers = fully utilized.
  EXPECT_NEAR(server.utilization(), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(server.busy_time(), 2.0);
}

TEST(GpuDevice, ChargesSwitchOnModelChangeOnly) {
  SimEngine eng;
  GpuDevice gpu(eng, "gpu0");
  std::vector<double> done;
  gpu.submit(1, 10.0, 1000.0, [&] { done.push_back(eng.now()); });  // switch+1ms
  gpu.submit(1, 10.0, 1000.0, [&] { done.push_back(eng.now()); });  // 1ms
  gpu.submit(2, 10.0, 1000.0, [&] { done.push_back(eng.now()); });  // switch+1ms
  eng.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_NEAR(done[0], 0.011, 1e-9);
  EXPECT_NEAR(done[1], 0.012, 1e-9);
  EXPECT_NEAR(done[2], 0.023, 1e-9);
  EXPECT_EQ(gpu.switches(), 2);
  EXPECT_NEAR(gpu.switch_time(), 0.020, 1e-12);
}

TEST(GpuDevice, AlternatingModelsThrash) {
  SimEngine eng;
  GpuDevice gpu(eng);
  for (int i = 0; i < 10; ++i) {
    gpu.submit(i % 2, 5.0, 100.0, [] {});
  }
  eng.run();
  EXPECT_EQ(gpu.switches(), 10);  // every job switches
}

}  // namespace
}  // namespace ffsva::sim
