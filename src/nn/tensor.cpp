#include "nn/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "runtime/binary_io.hpp"

namespace ffsva::nn {

void Tensor::axpy(float alpha, const Tensor& other) {
  assert(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other.data_[i];
}

void Tensor::scale(float alpha) {
  for (auto& v : data_) v *= alpha;
}

double Tensor::sum() const {
  double s = 0.0;
  for (float v : data_) s += v;
  return s;
}

double Tensor::abs_max() const {
  double m = 0.0;
  for (float v : data_) m = std::max(m, static_cast<double>(std::fabs(v)));
  return m;
}

void write_tensor(std::ostream& os, const Tensor& t) {
  const auto& s = t.shape();
  runtime::write_pod(os, s.data(), s.size());
  runtime::write_pod(os, t.data(), t.size());
}

void read_tensor_values(std::istream& is, Tensor& t) {
  std::array<int, 4> s{};
  if (!runtime::read_pod(is, s.data(), s.size()) || s != t.shape()) {
    throw std::runtime_error("tensor shape mismatch on load");
  }
  if (!runtime::read_pod(is, t.data(), t.size())) {
    throw std::runtime_error("truncated tensor data on load");
  }
}

}  // namespace ffsva::nn
