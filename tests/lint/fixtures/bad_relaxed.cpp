// Seeded violation for ffsva_lint --self-test: memory_order_relaxed in a
// file whose header carries no relaxed-ok audit paragraph.
#include <atomic>

int fixture_load(const std::atomic<int>& a) {
  return a.load(std::memory_order_relaxed);
}
