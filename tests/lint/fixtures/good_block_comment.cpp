// Regression fixture: tokens inside block comments are prose, not code.
/*
 * Design notes that mention std::thread, ::connect(), .detach() and
 * sleep_for(10ms) freely — none of this is scanned.
 * Even an unbounded std::queue<int> here is just words.
 */
int answer() {
  /* inline block: std::thread worker; worker.detach(); */ return 42;
}
