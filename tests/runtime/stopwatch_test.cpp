#include "runtime/stopwatch.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace ffsva::runtime {
namespace {

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch w;
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const double ms = w.elapsed_ms();
  EXPECT_GE(ms, 25.0);
  EXPECT_LT(ms, 2000.0);  // generous: CI machines stall
}

TEST(Stopwatch, UnitsAreConsistent) {
  Stopwatch w;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double sec = w.elapsed_sec();
  const double ms = w.elapsed_ms();
  const double us = w.elapsed_us();
  EXPECT_NEAR(ms, sec * 1e3, sec * 1e3 * 0.5 + 1.0);
  EXPECT_NEAR(us, sec * 1e6, sec * 1e6 * 0.5 + 1000.0);
}

TEST(Stopwatch, ResetRestarts) {
  Stopwatch w;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  w.reset();
  EXPECT_LT(w.elapsed_ms(), 15.0);
}

TEST(Stopwatch, MonotoneNonDecreasing) {
  Stopwatch w;
  double prev = 0.0;
  for (int i = 0; i < 50; ++i) {
    const double now = w.elapsed_us();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

}  // namespace
}  // namespace ffsva::runtime
