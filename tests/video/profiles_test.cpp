#include "video/profiles.hpp"

#include <gtest/gtest.h>

namespace ffsva::video {
namespace {

TEST(Profiles, JacksonShape) {
  const SceneConfig c = jackson_profile();
  EXPECT_EQ(c.target, ObjectClass::kCar);
  EXPECT_NEAR(c.tor, 0.08, 1e-9);
  EXPECT_DOUBLE_EQ(c.fps, 30.0);
  EXPECT_GT(c.stopline_fraction, 0.0);  // the Table-2 error mechanism
  EXPECT_EQ(c.dynamic_texture, 0.0);    // street background is static
}

TEST(Profiles, CoralShape) {
  const SceneConfig c = coral_profile();
  EXPECT_EQ(c.target, ObjectClass::kPerson);
  EXPECT_NEAR(c.tor, 0.50, 1e-9);
  EXPECT_GT(c.dynamic_texture, 0.0);  // water shimmer
  EXPECT_GE(c.max_objects, 8);        // crowds
}

TEST(Profiles, WithTorOverrides) {
  const SceneConfig c = with_tor(jackson_profile(), 0.42);
  EXPECT_NEAR(c.tor, 0.42, 1e-12);
  EXPECT_EQ(c.target, ObjectClass::kCar);
}

TEST(Profiles, MeasuredTorMatchesPlanned) {
  SceneConfig c = jackson_profile();
  c.width = 128;
  c.height = 96;
  c.tor = 0.25;
  SceneSimulator sim(c, 7, 2500);
  const double measured = measure_tor(sim);
  EXPECT_NEAR(measured, 0.25, 0.05);
}

TEST(Profiles, DescribeProducesTableRow) {
  SceneConfig c = jackson_profile();
  c.width = 128;
  c.height = 96;
  const WorkloadRow row = describe("jackson-synth", c, 7, 1200);
  EXPECT_EQ(row.name, "jackson-synth");
  EXPECT_EQ(row.width, 128);
  EXPECT_EQ(row.object, std::string("car"));
  EXPECT_DOUBLE_EQ(row.fps, 30.0);
  EXPECT_GT(row.tor, 0.02);
  EXPECT_LT(row.tor, 0.25);
}

TEST(Profiles, ToStringCoversClasses) {
  EXPECT_STREQ(to_string(ObjectClass::kCar), "car");
  EXPECT_STREQ(to_string(ObjectClass::kPerson), "person");
  EXPECT_STREQ(to_string(ObjectClass::kBus), "bus");
}

TEST(GroundTruth, CountTargetGroupsVehicles) {
  GroundTruth gt;
  GtObject car;
  car.cls = ObjectClass::kCar;
  car.visible_fraction = 1.0;
  GtObject bus = car;
  bus.cls = ObjectClass::kBus;
  GtObject person = car;
  person.cls = ObjectClass::kPerson;
  gt.objects = {car, bus, person};
  EXPECT_EQ(gt.count_target(ObjectClass::kCar), 2);
  EXPECT_EQ(gt.count_target(ObjectClass::kPerson), 1);
  EXPECT_EQ(gt.count(ObjectClass::kCar), 1);
}

TEST(GroundTruth, MinVisibleFiltersSlivers) {
  GroundTruth gt;
  GtObject sliver;
  sliver.cls = ObjectClass::kCar;
  sliver.visible_fraction = 0.05;
  gt.objects = {sliver};
  EXPECT_FALSE(gt.any_target(ObjectClass::kCar, 0.15));
  EXPECT_TRUE(gt.any_target(ObjectClass::kCar, 0.01));
}

}  // namespace
}  // namespace ffsva::video
