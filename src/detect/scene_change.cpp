#include "detect/scene_change.hpp"

namespace ffsva::detect {

SceneChangeMonitor::SceneChangeMonitor(SceneChangeConfig config,
                                       double background_level)
    : config_(config), background_level_(background_level) {}

double SceneChangeMonitor::floor() const {
  return mono_min_.empty() ? 0.0 : mono_min_.front().value;
}

bool SceneChangeMonitor::observe(double sdd_distance) {
  const std::int64_t index = frame_count_++;
  // Monotonic min-queue update.
  while (!mono_min_.empty() && mono_min_.back().value >= sdd_distance) {
    mono_min_.pop_back();
  }
  mono_min_.push_back({index, sdd_distance});
  while (!mono_min_.empty() &&
         mono_min_.front().index <= index - config_.window_frames) {
    mono_min_.pop_front();
  }

  // Only meaningful once the window has filled: before that, the "floor"
  // may simply not have seen a background frame yet.
  const bool window_full = frame_count_ >= config_.window_frames;
  if (window_full && floor() > threshold()) {
    ++elevated_;
  } else {
    elevated_ = 0;
  }

  if (!triggered_ && elevated_ >= config_.confirm_frames) {
    triggered_ = true;
    return true;
  }
  return false;
}

void SceneChangeMonitor::reset(double background_level) {
  background_level_ = background_level;
  frame_count_ = 0;
  mono_min_.clear();
  elevated_ = 0;
  triggered_ = false;
}

}  // namespace ffsva::detect
