#!/usr/bin/env python3
"""Parallel clang-tidy driver over a CMake compile_commands.json.

Runs the repo's curated .clang-tidy profile (WarningsAsErrors: '*') across
every first-party translation unit and fails on any diagnostic. Third-party
and generated code (anything outside src/, tests/, bench/, examples/,
tools/) is skipped.

Usage:
  tools/run_clang_tidy.py [--build-dir BUILD] [--jobs N] [--clang-tidy BIN]

Exit codes:
  0   clean
  1   diagnostics found
  2   usage error (no compile_commands.json)
  77  clang-tidy not available — automatic-skip convention, consumed by
      ctest's SKIP_RETURN_CODE so environments without the LLVM toolchain
      (like the default build container) skip instead of fail.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import os
import shutil
import subprocess
import sys

SKIP = 77
FIRST_PARTY = ("src/", "tests/", "bench/", "examples/", "tools/")


def find_clang_tidy(explicit: str | None) -> str | None:
    if explicit:
        return explicit if shutil.which(explicit) else None
    for name in ("clang-tidy", "clang-tidy-18", "clang-tidy-17", "clang-tidy-16"):
        if shutil.which(name):
            return name
    return None


def first_party_sources(build_dir: str, root: str) -> list[str]:
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(db_path):
        print(
            f"run_clang_tidy: {db_path} not found — configure with "
            "CMAKE_EXPORT_COMPILE_COMMANDS=ON (the lint preset does)",
            file=sys.stderr,
        )
        sys.exit(2)
    with open(db_path, encoding="utf-8") as fh:
        db = json.load(fh)
    sources = []
    for entry in db:
        path = os.path.abspath(
            os.path.join(entry.get("directory", "."), entry["file"])
        )
        rel = os.path.relpath(path, root)
        if rel.startswith(FIRST_PARTY):
            sources.append(path)
    return sorted(set(sources))


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default="build-lint")
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 4)
    parser.add_argument("--clang-tidy", default=None)
    args = parser.parse_args(argv)

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    build_dir = (
        args.build_dir
        if os.path.isabs(args.build_dir)
        else os.path.join(root, args.build_dir)
    )

    tidy = find_clang_tidy(args.clang_tidy)
    if tidy is None:
        print("run_clang_tidy: clang-tidy not found on PATH — skipping (77)")
        return SKIP

    sources = first_party_sources(build_dir, root)
    if not sources:
        print("run_clang_tidy: no first-party sources in the compile database",
              file=sys.stderr)
        return 2
    print(f"run_clang_tidy: {len(sources)} translation units, -j{args.jobs}")

    def run_one(src: str) -> tuple[str, int, str]:
        proc = subprocess.run(
            [tidy, "-p", build_dir, "--quiet", src],
            capture_output=True,
            text=True,
            cwd=root,
            check=False,
        )
        return src, proc.returncode, proc.stdout + proc.stderr

    failures = 0
    with concurrent.futures.ThreadPoolExecutor(max_workers=args.jobs) as pool:
        for src, rc, output in pool.map(run_one, sources):
            rel = os.path.relpath(src, root)
            if rc != 0:
                failures += 1
                print(f"--- {rel} (exit {rc})")
                print(output.rstrip())
            else:
                print(f"ok  {rel}")
    if failures:
        print(f"run_clang_tidy: {failures} file(s) with diagnostics",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
