// Detection results shared by all detectors in the cascade.
#pragma once

#include <vector>

#include "image/geometry.hpp"
#include "video/frame.hpp"

namespace ffsva::detect {

struct Detection {
  video::ObjectClass cls = video::ObjectClass::kCar;
  image::Box box;
  double confidence = 0.0;
  /// Estimated object count inside this box. A segmentation-based detector
  /// cannot always separate touching objects (a crowd is one blob); it can
  /// still estimate how many instances the blob carries from its mass —
  /// the analogue of several YOLO grid cells firing across one wide object.
  int instances = 1;
  /// Foreground mass of the underlying blob (detector-resolution pixels).
  int pixels = 0;
};

struct DetectionResult {
  std::vector<Detection> detections;

  /// Number of objects of `cls` detected with confidence >= min_conf
  /// (T-YOLO uses min_conf = 0.2, paper Section 3.2.3).
  int count(video::ObjectClass cls, double min_conf = 0.2) const {
    int n = 0;
    for (const auto& d : detections) {
      if (d.cls == cls && d.confidence >= min_conf) n += d.instances;
    }
    return n;
  }

  bool any(video::ObjectClass cls, double min_conf = 0.2) const {
    return count(cls, min_conf) > 0;
  }

  /// Target-group count, mirroring GroundTruth::count_target: a "car"
  /// target counts the whole vehicle group (car + bus) so that car/bus
  /// boundary disagreements between detectors of different fidelity do not
  /// masquerade as missed objects.
  int count_target(video::ObjectClass target, double min_conf = 0.2) const {
    int n = count(target, min_conf);
    if (target == video::ObjectClass::kCar) {
      n += count(video::ObjectClass::kBus, min_conf);
    }
    return n;
  }

  bool any_target(video::ObjectClass target, double min_conf = 0.2) const {
    return count_target(target, min_conf) > 0;
  }

  /// Boxes of every detection (any class) with confidence >= min_conf — the
  /// candidate regions a downstream consolidation stage packs into mosaics
  /// (detect/crop_pack.hpp). All classes are included: the reference model
  /// re-vets candidates, and suppressing non-target boxes here would hide
  /// objects its full-frame output would contain.
  std::vector<image::Box> boxes(double min_conf = 0.0) const {
    std::vector<image::Box> out;
    out.reserve(detections.size());
    for (const auto& d : detections) {
      if (d.confidence >= min_conf && !d.box.empty()) out.push_back(d.box);
    }
    return out;
  }
};

}  // namespace ffsva::detect
