// Threaded four-stage pipeline: end-to-end integration tests.
//
// These run the real FfsVaInstance (threads + bounded queues + the global
// T-YOLO service + reference model) on small synthetic streams and verify
// conservation (every ingested frame terminates exactly once), agreement
// with the sequentially-applied cascade, multi-stream operation, the
// offline/online modes, and the YOLOv2 baseline harness.
#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/trace.hpp"
#include "video/profiles.hpp"

namespace ffsva::core {
namespace {

struct TestStream {
  video::SceneConfig cfg;
  std::shared_ptr<video::SceneSimulator> sim;
  detect::StreamModels models;
};

/// One specialized small stream, reused across tests (training is slow).
TestStream make_stream(std::uint64_t seed, double tor) {
  TestStream t;
  t.cfg = video::jackson_profile();
  t.cfg.width = 128;
  t.cfg.height = 96;
  t.cfg.tor = tor;
  t.sim = std::make_shared<video::SceneSimulator>(t.cfg, seed, 1400);
  std::vector<video::Frame> calib;
  for (int i = 0; i < 700; ++i) calib.push_back(t.sim->render(i));
  detect::SpecializeConfig sc;
  sc.target = t.cfg.target;
  sc.snm.epochs = 5;
  t.models = detect::specialize_stream(calib, sc, seed);
  return t;
}

TestStream& shared_stream() {
  static auto* s = new TestStream(make_stream(91, 0.35));
  return *s;
}

/// Frames [700, 1100) of the shared stream as a bounded source.
class WindowSource final : public video::FrameSource {
 public:
  WindowSource(std::shared_ptr<const video::SceneSimulator> sim, int stream_id,
               std::int64_t begin, std::int64_t end)
      : sim_(std::move(sim)), stream_id_(stream_id), next_(begin), end_(end) {}

  std::optional<video::Frame> next() override {
    if (next_ >= end_) return std::nullopt;
    return sim_->render(next_++, stream_id_);
  }
  std::int64_t total_frames() const override { return end_; }

 private:
  std::shared_ptr<const video::SceneSimulator> sim_;
  int stream_id_;
  std::int64_t next_, end_;
};

TEST(Pipeline, OfflineConservesFrames) {
  auto& s = shared_stream();
  FfsVaConfig cfg;
  FfsVaInstance instance(cfg);
  instance.add_stream(std::make_unique<WindowSource>(s.sim, 0, 700, 1000), s.models);
  const auto stats = instance.run(/*online=*/false);

  ASSERT_EQ(stats.streams.size(), 1u);
  const auto& st = stats.streams[0];
  EXPECT_EQ(st.prefetch.in, 300u);
  EXPECT_EQ(st.prefetch.passed, 300u);
  EXPECT_EQ(st.dropped_at_ingest, 0u);
  // Conservation through the cascade.
  EXPECT_EQ(st.sdd.in, 300u);
  EXPECT_EQ(st.snm.in, st.sdd.passed);
  EXPECT_EQ(st.tyolo.in, st.snm.passed);
  EXPECT_EQ(st.ref.in, st.tyolo.passed);
  EXPECT_EQ(st.ref.passed, st.ref.in);
  // Every frame terminated exactly once (latency recorded for each).
  EXPECT_EQ(st.latency_ms.count(), 300u);
  EXPECT_EQ(instance.outputs().size(), static_cast<std::size_t>(st.ref.passed));
}

TEST(Pipeline, MatchesSequentialCascade) {
  auto& s = shared_stream();
  // Sequential ground truth over the same window.
  std::set<std::int64_t> expected;
  for (std::int64_t i = 1000; i < 1200; ++i) {
    const auto f = s.sim->render(i);
    bool alive = s.models.sdd->pass(f.image);
    if (alive) alive = s.models.snm->pass(f.image);
    if (alive) alive = s.models.tyolo->pass(f.image, s.models.target, 1);
    if (alive) expected.insert(i);
  }

  FfsVaConfig cfg;
  cfg.number_of_objects = 1;
  FfsVaInstance instance(cfg);
  instance.add_stream(std::make_unique<WindowSource>(s.sim, 0, 1000, 1200), s.models);
  instance.run(false);

  std::set<std::int64_t> got;
  for (const auto& ev : instance.outputs()) got.insert(ev.frame.index);
  EXPECT_EQ(got, expected);
}

TEST(Pipeline, OutputSinkReceivesEvents) {
  auto& s = shared_stream();
  FfsVaInstance instance(FfsVaConfig{});
  instance.add_stream(std::make_unique<WindowSource>(s.sim, 0, 700, 900), s.models);
  std::atomic<int> events{0};
  instance.set_output_sink([&](const OutputEvent& ev) {
    EXPECT_GE(ev.latency_ms, 0.0);
    EXPECT_FALSE(ev.result.detections.empty());
    events.fetch_add(1);
  });
  instance.run(false);
  EXPECT_TRUE(instance.outputs().empty());
  EXPECT_GT(events.load(), 0);
}

TEST(Pipeline, MultiStreamKeepsStreamsSeparate) {
  auto& s = shared_stream();
  FfsVaConfig cfg;
  FfsVaInstance instance(cfg);
  instance.add_stream(std::make_unique<WindowSource>(s.sim, 0, 700, 850), s.models);
  instance.add_stream(std::make_unique<WindowSource>(s.sim, 1, 850, 1000), s.models);
  const auto stats = instance.run(false);
  ASSERT_EQ(stats.streams.size(), 2u);
  EXPECT_EQ(stats.streams[0].prefetch.in, 150u);
  EXPECT_EQ(stats.streams[1].prefetch.in, 150u);
  for (const auto& ev : instance.outputs()) {
    if (ev.frame.stream_id == 0) {
      EXPECT_LT(ev.frame.index, 850);
    } else {
      EXPECT_GE(ev.frame.index, 850);
    }
  }
  const auto agg = stats.aggregate();
  EXPECT_EQ(agg.prefetch.in, 300u);
  EXPECT_EQ(agg.latency_ms.count(), 300u);
}

TEST(Pipeline, BatchPoliciesProduceSameSurvivors) {
  auto& s = shared_stream();
  std::set<std::int64_t> outputs_by_policy[3];
  for (BatchPolicy p : {BatchPolicy::kStatic, BatchPolicy::kFeedback,
                        BatchPolicy::kDynamic}) {
    FfsVaConfig cfg;
    cfg.batch_policy = p;
    cfg.batch_size = 8;
    FfsVaInstance instance(cfg);
    instance.add_stream(std::make_unique<WindowSource>(s.sim, 0, 700, 950), s.models);
    instance.run(false);
    for (const auto& ev : instance.outputs()) {
      outputs_by_policy[static_cast<int>(p)].insert(ev.frame.index);
    }
  }
  EXPECT_EQ(outputs_by_policy[0], outputs_by_policy[1]);
  EXPECT_EQ(outputs_by_policy[1], outputs_by_policy[2]);
}

TEST(Pipeline, OnlineModeSustainsRealtimeOnOneStream) {
  auto& s = shared_stream();
  FfsVaConfig cfg;
  cfg.online_fps = 120.0;  // speed the wall-clock test up
  FfsVaInstance instance(cfg);
  instance.add_stream(std::make_unique<WindowSource>(s.sim, 0, 700, 940), s.models);
  const auto stats = instance.run(/*online=*/true);
  const auto& st = stats.streams[0];
  // One lightweight stream must not overload a whole host.
  EXPECT_LT(static_cast<double>(st.dropped_at_ingest) / 240.0, 0.05);
  EXPECT_GT(st.ingest_fps, 60.0);
}

TEST(Pipeline, PerStreamFifoOrderingOfOutputs) {
  auto& s = shared_stream();
  FfsVaInstance instance(FfsVaConfig{});
  instance.add_stream(std::make_unique<WindowSource>(s.sim, 0, 700, 1000), s.models);
  instance.run(false);
  std::int64_t prev = -1;
  for (const auto& ev : instance.outputs()) {
    EXPECT_GT(ev.frame.index, prev) << "outputs must preserve stream order";
    prev = ev.frame.index;
  }
}

TEST(Baseline, ProcessesEverythingOffline) {
  auto& s = shared_stream();
  std::vector<std::unique_ptr<video::FrameSource>> sources;
  sources.push_back(std::make_unique<WindowSource>(s.sim, 0, 700, 900));
  const auto stats = run_yolo_baseline(std::move(sources), {s.models}, false);
  EXPECT_EQ(stats.frames, 200u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.latency_ms.count(), 200u);
  EXPECT_GT(stats.throughput_fps, 0.0);
}

TEST(Config, CapacityDependsOnPolicy) {
  FfsVaConfig cfg;
  cfg.batch_policy = BatchPolicy::kDynamic;
  EXPECT_EQ(cfg.capacity(10), 10);
  cfg.batch_policy = BatchPolicy::kStatic;
  EXPECT_EQ(cfg.capacity(10), 4096);
}

TEST(Config, BatchPolicyNames) {
  EXPECT_STREQ(to_string(BatchPolicy::kStatic), "static");
  EXPECT_STREQ(to_string(BatchPolicy::kFeedback), "feedback");
  EXPECT_STREQ(to_string(BatchPolicy::kDynamic), "dynamic");
}

}  // namespace
}  // namespace ffsva::core
