file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/accuracy_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/accuracy_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/backpressure_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/backpressure_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/cluster_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/cluster_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/pipeline_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/pipeline_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/policies_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/policies_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/trace_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/trace_test.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
