// SDD — stream-specialized difference detector (paper Section 3.2.1).
//
// Resizes each frame to a fixed low resolution, converts to gray, and
// compares against a per-stream reference background image with one of
// MSE / NRMSE / SAD. A frame whose distance exceeds delta_diff shows "an
// obvious content change" and passes; otherwise it is a background frame
// and is filtered out.
//
// calibrate() implements the paper's threshold selection (Section 4.1):
// given labeled frames it picks the largest delta_diff whose false-negative
// rate on target frames stays within a budget, then relaxes it slightly —
// "set the real filtering threshold slightly below the target threshold"
// (Section 3.3) — so downstream filters get a second chance at borderline
// frames.
#pragma once

#include <cstdint>
#include <vector>

#include "image/image.hpp"
#include "video/frame.hpp"

namespace ffsva::detect {

enum class SddMetric : std::uint8_t { kMse = 0, kNrmse = 1, kSad = 2 };

const char* to_string(SddMetric m);

struct SddConfig {
  int width = 100;                 ///< SDD feature size (100x100, Sec. 3.2.1).
  int height = 100;
  SddMetric metric = SddMetric::kMse;
  double delta_diff = 50.0;        ///< Pass if distance > delta_diff.
  double relax_factor = 0.9;       ///< Relaxed filtering (Sec. 3.3).
  double fn_budget = 0.005;        ///< Calibration FN budget on target frames.
  /// Calibration also bounds delta by the background-distance distribution:
  /// delta <= bg_margin * quantile(non-target distances, bg_quantile). The
  /// FN-budget rule alone picks the most aggressive delta the calibration
  /// window permits, which over-filters target frames the window never
  /// showed (small distant objects); anchoring to the background statistics
  /// keeps the threshold near the noise floor instead.
  double bg_quantile = 0.90;
  double bg_margin = 1.15;
  /// Subtract the mean frame-vs-reference offset before measuring distance.
  /// Global illumination drift ("weather, light intensity, etc. can all
  /// contribute to the value of MSE", Section 3.2.1) otherwise dominates
  /// the metric and forces delta_diff so high that small single objects
  /// captured at a different lighting phase than calibration slip under it.
  bool gain_compensate = true;
};

class SddFilter {
 public:
  SddFilter(SddConfig config, const image::Image& reference_background);

  /// Distance of this frame to the reference (after resize + gray).
  double distance(const image::Image& frame) const;

  /// True if the frame passes (content changed), false if filtered out.
  bool pass(const image::Image& frame) const {
    return distance(frame) > config_.delta_diff;
  }

  /// Threshold selection from labeled examples. `distances` and
  /// `is_target` are parallel; chooses delta_diff and returns it.
  double calibrate(const std::vector<double>& distances,
                   const std::vector<bool>& is_target);

  /// Convenience: compute distances for frames, then calibrate.
  double calibrate_on(const std::vector<video::Frame>& frames,
                      video::ObjectClass target);

  const SddConfig& config() const { return config_; }
  void set_delta(double d) { config_.delta_diff = d; }

 private:
  SddConfig config_;
  image::Image reference_;  ///< Gray, at SDD feature size.
};

}  // namespace ffsva::detect
