#include "core/pipeline.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "runtime/bounded_queue.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/rate_limiter.hpp"
#include "runtime/stopwatch.hpp"

namespace ffsva::core {

namespace {
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// A frame in flight, stamped with its ingest time.
struct Item {
  video::Frame frame;
  Clock::time_point ingest;
};
}  // namespace

const char* to_string(BatchPolicy p) {
  switch (p) {
    case BatchPolicy::kStatic: return "static";
    case BatchPolicy::kFeedback: return "feedback";
    case BatchPolicy::kDynamic: return "dynamic";
  }
  return "?";
}

StreamStats InstanceStats::aggregate() const {
  StreamStats agg;
  for (const auto& s : streams) {
    agg.prefetch.in += s.prefetch.in;
    agg.prefetch.passed += s.prefetch.passed;
    agg.sdd.in += s.sdd.in;
    agg.sdd.passed += s.sdd.passed;
    agg.snm.in += s.snm.in;
    agg.snm.passed += s.snm.passed;
    agg.tyolo.in += s.tyolo.in;
    agg.tyolo.passed += s.tyolo.passed;
    agg.ref.in += s.ref.in;
    agg.ref.passed += s.ref.passed;
    agg.dropped_at_ingest += s.dropped_at_ingest;
    agg.latency_ms.merge(s.latency_ms);
    agg.ingest_fps += s.ingest_fps;
  }
  return agg;
}

struct FfsVaInstance::Stream {
  int id = 0;
  std::unique_ptr<video::FrameSource> source;
  detect::StreamModels models;

  runtime::BoundedQueue<Item> sdd_q;
  runtime::BoundedQueue<Item> snm_q;
  runtime::BoundedQueue<Item> tyolo_q;

  StreamStats stats;
  double ingest_wall_sec = 0.0;

  /// SDD worker-pool coordination: at most one worker serves this stream at
  /// a time (claim), which both preserves per-stream FIFO order into the
  /// SNM queue and serializes access to the SDD counters/histogram. The
  /// acq_rel claim handoff carries the happens-before edge between
  /// consecutive owners. `sdd_done` is set (exactly once, under the claim)
  /// when the SDD queue is closed and drained.
  std::atomic<bool> sdd_claimed{false};
  std::atomic<bool> sdd_done{false};

  /// Per-stage latency histograms. Each is written by exactly one logical
  /// owner (SDD claim holder / GPU0 executor / reference thread) and merged
  /// into stats.latency_ms after the stage threads are joined — stages on
  /// different threads must not share one histogram.
  runtime::Histogram lat_sdd;
  runtime::Histogram lat_snm;
  runtime::Histogram lat_tyolo;
  runtime::Histogram lat_ref;

  Stream(int id_, std::unique_ptr<video::FrameSource> src, detect::StreamModels m,
         const FfsVaConfig& cfg)
      : id(id_), source(std::move(src)), models(std::move(m)),
        // The live-capture ring buffer must absorb bursts without blocking
        // the camera; offline the decoder throttles on the SDD threshold.
        // Sized for the larger of the two so one queue serves both modes.
        sdd_q(static_cast<std::size_t>(std::max(cfg.ingest_buffer,
                                                cfg.capacity(cfg.sdd_queue_depth)))),
        snm_q(static_cast<std::size_t>(cfg.capacity(cfg.snm_queue_depth))),
        tyolo_q(static_cast<std::size_t>(cfg.capacity(cfg.tyolo_queue_depth))) {}
};

struct FfsVaInstance::TYoloShared {
  runtime::BoundedQueue<std::pair<int, Item>> ref_q;  ///< (stream id, item)
  AdmissionController admission;
  explicit TYoloShared(const FfsVaConfig& cfg)
      : ref_q(static_cast<std::size_t>(cfg.capacity(cfg.ref_queue_depth))),
        admission(cfg.admit_tyolo_fps, cfg.admit_window_sec) {}
};

FfsVaInstance::FfsVaInstance(FfsVaConfig config)
    : config_(config), tyolo_shared_(std::make_unique<TYoloShared>(config)) {}

FfsVaInstance::~FfsVaInstance() = default;

void FfsVaInstance::add_stream(std::unique_ptr<video::FrameSource> source,
                               detect::StreamModels models) {
  streams_.push_back(std::make_unique<Stream>(static_cast<int>(streams_.size()),
                                              std::move(source), std::move(models),
                                              config_));
}

void FfsVaInstance::set_output_sink(std::function<void(const OutputEvent&)> sink) {
  sink_ = std::move(sink);
}

int FfsVaInstance::sdd_pool_size() const {
  const int n = static_cast<int>(streams_.size());
  if (n == 0) return 0;
  const int w = config_.sdd_workers > 0 ? config_.sdd_workers
                                        : runtime::compute_parallelism();
  return std::clamp(w, 1, n);
}

void FfsVaInstance::prefetch_loop(Stream& s, bool online) {
  runtime::RateLimiter limiter(config_.online_fps, /*burst=*/2.0);
  runtime::Stopwatch watch;
  const auto frame_interval =
      std::chrono::duration<double>(1.0 / config_.online_fps);
  while (auto f = s.source->next()) {
    ++s.stats.prefetch.in;
    Item item{std::move(*f), Clock::now()};
    if (online) {
      limiter.acquire();
      // Overload behaviour: a live camera cannot block — if the pipeline
      // cannot absorb the frame within one frame time, the frame is lost
      // and counted (the admission controller re-forwards such streams).
      if (!s.sdd_q.push_for(std::move(item), frame_interval)) {
        ++s.stats.dropped_at_ingest;
        continue;
      }
    } else {
      if (!s.sdd_q.push(std::move(item))) break;  // queue closed underneath us
    }
    ++s.stats.prefetch.passed;
  }
  s.ingest_wall_sec = watch.elapsed_sec();
  s.sdd_q.close();
}

void FfsVaInstance::sdd_worker_loop(int worker) {
  const int n = static_cast<int>(streams_.size());
  if (n == 0) return;
  const int run_length = std::max(1, config_.sdd_run_length);
  int cursor = worker % n;  // stagger workers across streams
  for (;;) {
    const auto ticket = sdd_work_.prepare();
    bool all_done = true;
    bool did_work = false;
    for (int step = 0; step < n; ++step) {
      const int idx = (cursor + step) % n;
      Stream& s = *streams_[static_cast<std::size_t>(idx)];
      if (s.sdd_done.load(std::memory_order_acquire)) continue;
      all_done = false;
      if (s.sdd_claimed.exchange(true, std::memory_order_acq_rel)) {
        continue;  // another worker is serving this stream
      }
      int processed = 0;
      while (processed < run_length) {
        // Order matters: observe close *before* the failed pop, so an empty
        // pop on a closed queue really means end-of-stream (a push cannot
        // land after close).
        const bool closed = s.sdd_q.closed();
        auto item = s.sdd_q.try_pop();
        if (!item) {
          if (closed) {
            s.sdd_done.store(true, std::memory_order_release);
            s.snm_q.close();
            sdd_work_.notify();  // wake workers idling on this last stream
          }
          break;
        }
        ++processed;
        ++s.stats.sdd.in;
        if (s.models.sdd->pass(item->frame.image)) {
          ++s.stats.sdd.passed;
          // Blocking push: the SNM feedback-queue threshold throttles this
          // worker (other workers keep serving other streams meanwhile).
          if (!s.snm_q.push(std::move(*item))) break;
        } else {
          s.lat_sdd.add(ms_since(item->ingest));
        }
      }
      s.sdd_claimed.store(false, std::memory_order_release);
      if (processed > 0) {
        did_work = true;
        cursor = idx;  // keep draining near the stream we just served
      }
    }
    if (all_done) return;
    if (!did_work) sdd_work_.wait(ticket);
  }
}

void FfsVaInstance::gpu0_loop() {
  TYoloScheduler scheduler(config_.num_tyolo);
  const DynamicBatcher batcher(config_.batch_policy, config_.batch_size,
                               config_.snm_queue_depth);
  const std::size_t n = streams_.size();
  std::vector<bool> snm_done(n, false);
  std::vector<int> tyolo_depths(n, 0);
  std::vector<Item> items;
  std::vector<const image::Image*> imgs;
  items.reserve(static_cast<std::size_t>(std::max(1, config_.batch_size)));
  bool running = true;

  // One T-YOLO service pick: up to num_tyolo frames from the next non-empty
  // stream in round-robin order (Section 3.2.3). Executed directly — this
  // thread owns GPU0. Clears `running` if the reference queue was closed
  // underneath us (shutdown).
  const auto serve_tyolo = [&]() -> bool {
    for (std::size_t i = 0; i < n; ++i) {
      tyolo_depths[i] = static_cast<int>(streams_[i]->tyolo_q.depth());
    }
    const auto pick = scheduler.next(tyolo_depths);
    if (pick.stream < 0) return false;
    Stream& s = *streams_[static_cast<std::size_t>(pick.stream)];
    int served = 0;
    for (int k = 0; k < pick.take && running; ++k) {
      auto item = s.tyolo_q.try_pop();
      if (!item) break;
      ++s.stats.tyolo.in;
      const bool pass = s.models.tyolo->pass(item->frame.image, s.models.target,
                                             config_.number_of_objects);
      ++served;
      if (pass) {
        ++s.stats.tyolo.passed;
        if (!tyolo_shared_->ref_q.push({s.id, std::move(*item)})) running = false;
      } else {
        s.lat_tyolo.add(ms_since(item->ingest));
      }
    }
    if (served > 0) {
      const double now =
          std::chrono::duration<double>(Clock::now().time_since_epoch()).count();
      tyolo_shared_->admission.on_tyolo_served(now, served);
    }
    return served > 0;
  };

  while (running) {
    const auto ticket = gpu0_work_.prepare();
    bool did_work = false;
    bool all_snm_done = true;

    // SNM pass: drain every stream's queue under the batch policy into
    // cross-stream work for this cycle, one sub-batch per stream routed to
    // that stream's SNM. The executor is the only SNM-queue consumer, so a
    // observed depth can only grow before the pops below.
    for (std::size_t i = 0; i < n && running; ++i) {
      if (snm_done[i]) continue;
      Stream& s = *streams_[i];
      const bool ended = s.snm_q.closed();  // read before depth (see sdd_worker_loop)
      const int avail = static_cast<int>(s.snm_q.depth());
      if (ended && avail == 0) {
        snm_done[i] = true;
        continue;
      }
      all_snm_done = false;
      const auto d = batcher.next_batch(avail, ended);
      if (d.take <= 0) continue;
      items.clear();
      for (int k = 0; k < d.take; ++k) {
        auto item = s.snm_q.try_pop();
        if (!item) break;
        items.push_back(std::move(*item));
      }
      if (items.empty()) continue;
      did_work = true;
      imgs.clear();
      for (const auto& it : items) imgs.push_back(&it.frame.image);
      const auto scores = s.models.snm->predict_batch(imgs);
      const double t_pre = s.models.snm->t_pre();
      for (std::size_t j = 0; j < items.size() && running; ++j) {
        ++s.stats.snm.in;
        if (scores[j] >= t_pre) {
          ++s.stats.snm.passed;
          // The executor is also the T-YOLO service, so it must never block
          // on a full T-YOLO queue (it would deadlock against itself): a
          // full queue flips GPU0 over to T-YOLO work until space opens —
          // the feedback-queue throttle expressed as device interleaving.
          // The executor is the only thread touching T-YOLO queues, so the
          // depth check is exact and the push below cannot fail or block.
          while (running && s.tyolo_q.depth() >= s.tyolo_q.capacity()) {
            serve_tyolo();
          }
          if (running) s.tyolo_q.push(std::move(items[j]));
        } else {
          s.lat_snm.add(ms_since(items[j].ingest));
        }
      }
    }

    // T-YOLO pass: one micro-batch per cycle keeps detection tightly
    // interleaved with SNM batching on the device.
    if (running && serve_tyolo()) did_work = true;

    if (!running) break;
    if (all_snm_done) {
      bool drained = true;
      for (const auto& s : streams_) drained = drained && s->tyolo_q.depth() == 0;
      if (drained) break;
      continue;  // only T-YOLO work remains; keep serving micro-batches
    }
    if (!did_work) gpu0_work_.wait(ticket);
  }
  // Single exit: the reference stage always sees end-of-stream, whatever
  // path brought the executor down.
  tyolo_shared_->ref_q.close();
}

void FfsVaInstance::reference_loop() {
  while (auto entry = tyolo_shared_->ref_q.pop()) {
    auto& [stream_id, item] = *entry;
    Stream& s = *streams_[static_cast<std::size_t>(stream_id)];
    ++s.stats.ref.in;
    // GPU1 is owned by this thread — the paper's device placement, held by
    // construction rather than a lock.
    detect::DetectionResult result = s.models.reference->detect(item.frame.image);
    ++s.stats.ref.passed;
    const double latency = ms_since(item.ingest);
    s.lat_ref.add(latency);
    OutputEvent ev{std::move(item.frame), std::move(result), latency};
    if (sink_) {
      sink_(ev);
    } else {
      std::lock_guard lk(outputs_mu_);
      outputs_.push_back(std::move(ev));
    }
  }
}

InstanceStats FfsVaInstance::run(bool online) {
  runtime::Stopwatch wall;
  // Wire the stage wakeups before any thread starts (set_waiter is
  // unsynchronized by contract).
  for (auto& s : streams_) {
    s->sdd_q.set_waiter(&sdd_work_);
    s->snm_q.set_waiter(&gpu0_work_);
  }
  const int workers = sdd_pool_size();
  std::vector<std::thread> threads;
  threads.reserve(streams_.size() + static_cast<std::size_t>(workers) + 2);
  for (auto& s : streams_) {
    threads.emplace_back([this, &s, online] { prefetch_loop(*s, online); });
  }
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([this, w] { sdd_worker_loop(w); });
  }
  threads.emplace_back([this] { gpu0_loop(); });
  threads.emplace_back([this] { reference_loop(); });
  for (auto& t : threads) t.join();

  InstanceStats out;
  out.wall_sec = wall.elapsed_sec();
  std::uint64_t ingested = 0;
  for (auto& s : streams_) {
    // Merge the per-stage terminal-latency histograms now that every stage
    // thread is joined; keeping them separate during the run is what makes
    // concurrent recording race-free.
    s->stats.latency_ms.merge(s->lat_sdd);
    s->stats.latency_ms.merge(s->lat_snm);
    s->stats.latency_ms.merge(s->lat_tyolo);
    s->stats.latency_ms.merge(s->lat_ref);
    if (s->ingest_wall_sec > 0.0) {
      s->stats.ingest_fps =
          static_cast<double>(s->stats.prefetch.passed) / s->ingest_wall_sec;
    }
    ingested += s->stats.prefetch.passed;
    out.streams.push_back(s->stats);
  }
  out.total_throughput_fps =
      out.wall_sec > 0.0 ? static_cast<double>(ingested) / out.wall_sec : 0.0;
  {
    std::lock_guard lk(outputs_mu_);
    for (const auto& ev : outputs_) out.output_latency_ms.add(ev.latency_ms);
  }
  return out;
}

BaselineStats run_yolo_baseline(
    std::vector<std::unique_ptr<video::FrameSource>> sources,
    const std::vector<detect::StreamModels>& models, bool online,
    double online_fps) {
  BaselineStats stats;
  runtime::Stopwatch wall;
  // Two GPU workers pull from a shared frame queue — YOLOv2 running on both
  // GPUs, the paper's baseline deployment.
  runtime::BoundedQueue<std::pair<int, Item>> q(8);
  std::atomic<std::uint64_t> frames{0}, dropped{0};
  std::mutex hist_mu;

  std::vector<std::thread> producers;
  producers.reserve(sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    producers.emplace_back([&, i] {
      runtime::RateLimiter limiter(online_fps, 2.0);
      const auto interval = std::chrono::duration<double>(1.0 / online_fps);
      while (auto f = sources[i]->next()) {
        Item item{std::move(*f), Clock::now()};
        if (online) {
          limiter.acquire();
          if (!q.push_for(std::make_pair(static_cast<int>(i), std::move(item)),
                          interval)) {
            dropped.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
        } else {
          if (!q.push(std::make_pair(static_cast<int>(i), std::move(item)))) break;
        }
        frames.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::mutex gpu[2];
  std::vector<std::thread> workers;
  for (int g = 0; g < 2; ++g) {
    workers.emplace_back([&, g] {
      while (auto entry = q.pop()) {
        auto& [stream_id, item] = *entry;
        detect::DetectionResult r;
        {
          std::lock_guard lk(gpu[g]);
          r = models[static_cast<std::size_t>(stream_id)].reference->detect(
              item.frame.image);
        }
        std::lock_guard lk(hist_mu);
        stats.latency_ms.add(ms_since(item.ingest));
      }
    });
  }

  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : workers) t.join();

  stats.wall_sec = wall.elapsed_sec();
  stats.frames = frames.load();
  stats.dropped = dropped.load();
  stats.throughput_fps =
      stats.wall_sec > 0.0 ? static_cast<double>(stats.frames) / stats.wall_sec : 0.0;
  return stats;
}

}  // namespace ffsva::core
