#include "core/cluster.hpp"

#include <gtest/gtest.h>

namespace ffsva::core {
namespace {

FfsVaConfig cfg() {
  FfsVaConfig c;
  c.admit_tyolo_fps = 140.0;
  c.admit_window_sec = 5.0;
  return c;
}

/// Feed `fps` worth of service reports over [t0, t1] at 10 Hz.
void feed(ClusterManager& cm, int id, double t0, double t1, double fps) {
  for (double t = t0; t <= t1; t += 0.1) {
    cm.report_tyolo_service(id, t, static_cast<int>(fps * 0.1));
  }
}

TEST(ClusterManager, RejectsEmptyCluster) {
  EXPECT_THROW(ClusterManager(0, cfg()), std::invalid_argument);
}

TEST(ClusterManager, StreamMembership) {
  ClusterManager cm(2, cfg());
  cm.attach_stream(7, 0);
  cm.attach_stream(8, 1);
  cm.attach_stream(9, 1);
  EXPECT_EQ(cm.instance_of(7), 0);
  EXPECT_EQ(cm.stream_count(1), 2);
  cm.attach_stream(7, 1);  // move
  EXPECT_EQ(cm.instance_of(7), 1);
  EXPECT_EQ(cm.stream_count(0), 0);
  cm.detach_stream(7);
  EXPECT_EQ(cm.instance_of(7), -1);
  EXPECT_EQ(cm.stream_count(1), 2);
}

TEST(ClusterManager, PlacementPrefersQuietLeastLoaded) {
  ClusterManager cm(3, cfg());
  // All instances quiet over a full window.
  for (int i = 0; i < 3; ++i) feed(cm, i, 0.0, 6.0, 10.0);
  cm.attach_stream(1, 0);
  cm.attach_stream(2, 0);
  cm.attach_stream(3, 1);
  const auto placed = cm.place_new_stream(6.0);
  ASSERT_TRUE(placed.has_value());
  EXPECT_EQ(*placed, 2);  // fewest streams
}

TEST(ClusterManager, NoPlacementWithoutEvidence) {
  ClusterManager cm(2, cfg());
  feed(cm, 0, 0.0, 1.0, 10.0);  // only 1 s of history (< window)
  feed(cm, 1, 0.0, 6.0, 200.0);  // busy
  EXPECT_FALSE(cm.place_new_stream(1.0).has_value());
}

TEST(ClusterManager, BusyInstanceIsNotSpare) {
  ClusterManager cm(1, cfg());
  feed(cm, 0, 0.0, 6.0, 200.0);  // above admit_tyolo_fps
  EXPECT_FALSE(cm.instance_has_spare(0, 6.0));
  EXPECT_FALSE(cm.place_new_stream(6.0).has_value());
}

TEST(ClusterManager, ReforwardMovesFromOverloadedToSpare) {
  ClusterManager cm(2, cfg());
  cm.attach_stream(10, 0);
  cm.attach_stream(11, 0);
  feed(cm, 0, 0.0, 6.0, 200.0);
  feed(cm, 1, 0.0, 6.0, 10.0);
  cm.report_queue_over_threshold(0, 6.0);  // overload signal
  const auto d = cm.next_reforward(6.0);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->from_instance, 0);
  EXPECT_EQ(d->to_instance, 1);
  EXPECT_EQ(cm.instance_of(d->stream_id), 1);
  EXPECT_EQ(cm.stream_count(0), 1);
  EXPECT_EQ(cm.stream_count(1), 1);
}

TEST(ClusterManager, NoReforwardWithoutOverload) {
  ClusterManager cm(2, cfg());
  cm.attach_stream(1, 0);
  feed(cm, 0, 0.0, 6.0, 10.0);
  feed(cm, 1, 0.0, 6.0, 10.0);
  EXPECT_FALSE(cm.next_reforward(6.0).has_value());
}

TEST(ClusterManager, NoReforwardWithoutSpareTarget) {
  ClusterManager cm(2, cfg());
  cm.attach_stream(1, 0);
  cm.attach_stream(2, 1);
  feed(cm, 0, 0.0, 6.0, 200.0);
  feed(cm, 1, 0.0, 6.0, 200.0);
  cm.report_queue_over_threshold(0, 6.0);
  EXPECT_FALSE(cm.next_reforward(6.0).has_value());
}

TEST(ClusterManager, OverloadSignalDecaysAndReforwardStops) {
  ClusterManager cm(2, cfg());
  cm.attach_stream(1, 0);
  feed(cm, 0, 0.0, 6.0, 200.0);
  feed(cm, 1, 0.0, 12.0, 10.0);
  cm.report_queue_over_threshold(0, 6.0);
  EXPECT_TRUE(cm.instance_overloaded(0, 6.5));
  EXPECT_FALSE(cm.instance_overloaded(0, 8.0));  // decayed
  EXPECT_FALSE(cm.next_reforward(8.0).has_value());
}

TEST(ClusterManager, RepeatedReforwardDrainsOverloadedInstance) {
  ClusterManager cm(2, cfg());
  for (int s = 0; s < 4; ++s) cm.attach_stream(s, 0);
  feed(cm, 0, 0.0, 6.0, 200.0);
  feed(cm, 1, 0.0, 6.0, 10.0);
  cm.report_queue_over_threshold(0, 6.0);
  int moves = 0;
  while (cm.next_reforward(6.0 + 0.01 * moves).has_value()) {
    ++moves;
    if (moves > 10) break;
  }
  // Moves until the target no longer has fewer streams / source drains.
  EXPECT_GT(moves, 0);
  EXPECT_LE(cm.stream_count(0) - cm.stream_count(1), 1);
}

}  // namespace
}  // namespace ffsva::core
