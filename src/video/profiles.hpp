// Workload profiles standing in for the paper's evaluation videos (Table 1):
//
//   Jackson  600*400  car     30 FPS  TOR 8%   (crossroad traffic)
//   Coral    1280*720 person  30 FPS  TOR 50%  (aquarium crowd)
//
// The synthetic profiles keep the object class, frame rate, TOR, and the
// error-inducing content properties (stop-line partial vehicles; dense
// person crowds; watery dynamic background) while using smaller frames so
// the reproduction runs on CPU in reasonable time. Resolution scales only
// the constant in front of every model's cost — the pipeline and accuracy
// behaviour the paper evaluates are resolution-independent once each model's
// input is resized to its fixed feature size (Section 4.1).
#pragma once

#include <string>

#include "video/scene.hpp"

namespace ffsva::video {

/// Jackson-like: cars at a crossroad, low TOR, static background, lighting
/// drift; a share of car scenes stall partially visible at a stop line.
SceneConfig jackson_profile();

/// Coral-like: person crowds in front of a dynamic (shimmering) background,
/// high TOR.
SceneConfig coral_profile();

/// Copy of `base` with the presence timeline re-targeted to `tor`
/// (the evaluation sweeps TOR from ~0.1 to 1.0).
SceneConfig with_tor(SceneConfig base, double tor);

/// Render every frame and measure the realized TOR (Eq. 1: frames with at
/// least one sufficiently-visible target over all frames).
double measure_tor(const SceneSimulator& sim, double min_visible = 0.15);

struct WorkloadRow {
  std::string name;
  int width = 0, height = 0;
  std::string object;
  double fps = 0.0;
  double tor = 0.0;
};

/// The two Table-1 rows for our synthetic equivalents (TOR measured over
/// `frames` rendered frames of a fresh simulator with the given seed).
WorkloadRow describe(const std::string& name, const SceneConfig& config,
                     std::uint64_t seed, std::int64_t frames);

}  // namespace ffsva::video
