// Multi-instance stream placement and re-forwarding (paper Section 4.3.1):
//
//   "when the execution speed of T-YOLO is lower than a certain level for
//    a period of time, it means this FFS-VA instance has spare ability to
//    serve extra streams. Consequently, a new stream can be considered to
//    add into the instance. In contrast, when any queue of T-YOLO or SNM
//    is longer than its predefined threshold, it means that the FFS-VA
//    instance overloads. The corresponding video stream is re-forwarded to
//    another FFS-VA instance with spare capacity immediately."
//
// ClusterManager is the pure placement policy: each instance reports its
// T-YOLO service rate and queue-overflow events; the manager admits new
// streams to instances with spare capacity and moves streams away from
// overloaded ones. It holds no threads and no sockets — embedding it in a
// real control plane (or the simulator) is the caller's job.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "core/config.hpp"
#include "core/policies.hpp"

namespace ffsva::core {

struct InstanceSnapshot;  // pipeline.hpp

struct ReforwardDecision {
  int stream_id = -1;
  int from_instance = -1;
  int to_instance = -1;
};

class ClusterManager {
 public:
  ClusterManager(int num_instances, const FfsVaConfig& config);

  int num_instances() const { return static_cast<int>(instances_.size()); }

  /// Telemetry from instance `id` at time `now_sec`.
  void report_tyolo_service(int id, double now_sec, int frames);
  void report_queue_over_threshold(int id, double now_sec);

  /// Fold one live engine snapshot (FfsVaInstance::snapshot()) into the
  /// placement signals — the preferred reporting path for real instances:
  ///  * the T-YOLO served delta since the previous snapshot feeds the
  ///    admission window (a counter that went backwards re-baselines, so an
  ///    instance restart does not poison the rate);
  ///  * any stream's SNM or T-YOLO queue at/over its threshold raises the
  ///    overload signal (Section 4.3.1's re-forward trigger);
  ///  * instance health follows the snapshot: an instance with quarantined
  ///    streams stops receiving placements and becomes a re-forward source.
  void report_snapshot(int id, double now_sec, const InstanceSnapshot& snap);

  /// Health gate. Unhealthy instances never receive place_new_stream /
  /// re-forward placements and are drained by next_reforward even when
  /// their queues look fine. Set by report_snapshot; settable directly by
  /// control planes with out-of-band health signals.
  bool instance_healthy(int id) const;
  void set_instance_health(int id, bool healthy);

  /// Register / remove stream membership.
  void attach_stream(int stream_id, int instance_id);
  void detach_stream(int stream_id);
  int instance_of(int stream_id) const;
  int stream_count(int instance_id) const;

  /// Where should a NEW stream go? Prefers an instance with demonstrated
  /// spare capacity; among candidates picks the one with the fewest
  /// streams. Returns nullopt if no instance currently shows spare
  /// capacity (caller should provision another server).
  std::optional<int> place_new_stream(double now_sec);

  /// If some instance is overloaded and another has spare capacity, pick
  /// one stream to move "immediately". Returns nullopt when no move is
  /// warranted. The returned stream is re-attached to the target.
  std::optional<ReforwardDecision> next_reforward(double now_sec);

  bool instance_overloaded(int id, double now_sec) const;
  bool instance_has_spare(int id, double now_sec);

 private:
  struct Instance {
    AdmissionController admission;
    std::vector<int> streams;
    bool healthy = true;
    /// Snapshot-delta baseline for report_snapshot's served counter.
    std::uint64_t last_tyolo_served = 0;
    bool have_baseline = false;
    explicit Instance(const FfsVaConfig& cfg)
        : admission(cfg.admit_tyolo_fps, cfg.admit_window_sec) {}
  };
  std::vector<Instance> instances_;
  std::map<int, int> stream_home_;
  FfsVaConfig config_;
};

}  // namespace ffsva::core
