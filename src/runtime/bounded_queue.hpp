// Bounded multi-producer / multi-consumer queue with close semantics.
//
// This is the backbone of the FFS-VA pipeline: every pair of consecutive
// stages (prefetch -> SDD -> SNM -> T-YOLO -> reference model) is decoupled
// by one of these queues, which is what lets the stages run as an
// asynchronous pipeline instead of in lock step (paper Section 3.1.2).
//
// Design notes:
//  * Blocking push/pop with condition variables; try_/timed_ variants for
//    the feedback-queue controller, which must observe depth without
//    committing to a wait.
//  * close() wakes all waiters; a closed queue drains remaining elements,
//    then pop() returns std::nullopt. This gives pipelines a clean
//    end-of-stream path with no sentinel values.
//  * depth() is an instantaneous snapshot used by FeedbackController to
//    decide whether an upstream stage must throttle. It is intentionally
//    approximate under concurrency (the controller is a heuristic).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace ffsva::runtime {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until space is available or the queue is closed.
  /// Returns false (and drops the value) if the queue was closed.
  bool push(T value) {
    std::unique_lock lk(mu_);
    not_full_.wait(lk, [&] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(value));
    ++total_pushed_;
    lk.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push. Returns false if full or closed.
  bool try_push(T value) {
    {
      std::lock_guard lk(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(value));
      ++total_pushed_;
    }
    not_empty_.notify_one();
    return true;
  }

  /// Push waiting at most `timeout`. Returns false on timeout or close.
  template <typename Rep, typename Period>
  bool push_for(T value, std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lk(mu_);
    if (!not_full_.wait_for(lk, timeout,
                            [&] { return items_.size() < capacity_ || closed_; })) {
      return false;
    }
    if (closed_) return false;
    items_.push_back(std::move(value));
    ++total_pushed_;
    lk.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an element is available; returns nullopt once the queue
  /// is closed *and* drained.
  std::optional<T> pop() {
    std::unique_lock lk(mu_);
    not_empty_.wait(lk, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    ++total_popped_;
    lk.unlock();
    not_full_.notify_one();
    return v;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::unique_lock lk(mu_);
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    ++total_popped_;
    lk.unlock();
    not_full_.notify_one();
    return v;
  }

  /// Pop waiting at most `timeout`.
  template <typename Rep, typename Period>
  std::optional<T> pop_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lk(mu_);
    if (!not_empty_.wait_for(lk, timeout, [&] { return !items_.empty() || closed_; })) {
      return std::nullopt;
    }
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    ++total_popped_;
    lk.unlock();
    not_full_.notify_one();
    return v;
  }

  /// Pop up to `max_count` elements at once (the dynamic-batch primitive:
  /// "pop out a batch ... otherwise the frames are popped until the queue
  /// is empty", paper Section 4.3.2). Blocks for the *first* element only.
  /// Returns an empty vector once closed and drained.
  std::vector<T> pop_batch(std::size_t max_count) {
    std::unique_lock lk(mu_);
    not_empty_.wait(lk, [&] { return !items_.empty() || closed_; });
    std::vector<T> out;
    while (!items_.empty() && out.size() < max_count) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
      ++total_popped_;
    }
    lk.unlock();
    not_full_.notify_all();
    return out;
  }

  /// Blocks until at least `count` elements are present (or close), then
  /// pops exactly min(count, size) elements. This is the *static* batch
  /// primitive: wait for a full batch.
  std::vector<T> pop_exact(std::size_t count) {
    std::unique_lock lk(mu_);
    not_empty_.wait(lk, [&] { return items_.size() >= count || closed_; });
    std::vector<T> out;
    while (!items_.empty() && out.size() < count) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
      ++total_popped_;
    }
    lk.unlock();
    not_full_.notify_all();
    return out;
  }

  /// Close the queue: producers fail, consumers drain then see end-of-stream.
  void close() {
    {
      std::lock_guard lk(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard lk(mu_);
    return closed_;
  }

  /// Instantaneous queue depth (feedback-queue mechanism reads this).
  std::size_t depth() const {
    std::lock_guard lk(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

  /// Lifetime counters; used by tests to prove no element is lost.
  std::uint64_t total_pushed() const {
    std::lock_guard lk(mu_);
    return total_pushed_;
  }
  std::uint64_t total_popped() const {
    std::lock_guard lk(mu_);
    return total_popped_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
  std::uint64_t total_pushed_ = 0;
  std::uint64_t total_popped_ = 0;
};

}  // namespace ffsva::runtime
