
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_micro_filters.cpp" "bench/CMakeFiles/bench_micro_filters.dir/bench_micro_filters.cpp.o" "gcc" "bench/CMakeFiles/bench_micro_filters.dir/bench_micro_filters.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/ffsva_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ffsva_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ffsva_core.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/ffsva_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/ffsva_video.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ffsva_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/ffsva_image.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ffsva_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
