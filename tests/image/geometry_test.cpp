#include "image/geometry.hpp"

#include <gtest/gtest.h>

#include "runtime/rng.hpp"

namespace ffsva::image {
namespace {

TEST(Box, BasicAccessors) {
  const Box b{2, 3, 10, 8};
  EXPECT_EQ(b.width(), 8);
  EXPECT_EQ(b.height(), 5);
  EXPECT_EQ(b.area(), 40);
  EXPECT_FALSE(b.empty());
  EXPECT_EQ(b.cx(), 6);
  EXPECT_EQ(b.cy(), 5);
}

TEST(Box, EmptyAndNegative) {
  const Box b{5, 5, 5, 9};
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.area(), 0);
  const Box inv{8, 2, 3, 6};  // x1 < x0
  EXPECT_EQ(inv.width(), 0);
  EXPECT_TRUE(inv.empty());
}

TEST(Box, IntersectAndUnite) {
  const Box a{0, 0, 10, 10};
  const Box b{5, 5, 15, 15};
  const Box i = a.intersect(b);
  EXPECT_EQ(i, (Box{5, 5, 10, 10}));
  const Box u = a.unite(b);
  EXPECT_EQ(u, (Box{0, 0, 15, 15}));
}

TEST(Box, UniteWithEmpty) {
  const Box a{1, 1, 4, 4};
  const Box empty{};
  EXPECT_EQ(a.unite(empty), a);
  EXPECT_EQ(empty.unite(a), a);
}

TEST(Box, ClipToImage) {
  const Box b{-5, -5, 50, 8};
  const Box c = b.clip(20, 10);
  EXPECT_EQ(c, (Box{0, 0, 20, 8}));
}

TEST(Box, ContainsHalfOpen) {
  const Box b{2, 2, 5, 5};
  EXPECT_TRUE(b.contains(2, 2));
  EXPECT_TRUE(b.contains(4, 4));
  EXPECT_FALSE(b.contains(5, 5));
  EXPECT_FALSE(b.contains(1, 3));
}

TEST(Iou, IdenticalBoxesIsOne) {
  const Box b{3, 3, 9, 9};
  EXPECT_DOUBLE_EQ(iou(b, b), 1.0);
}

TEST(Iou, DisjointBoxesIsZero) {
  EXPECT_DOUBLE_EQ(iou(Box{0, 0, 5, 5}, Box{6, 6, 9, 9}), 0.0);
}

TEST(Iou, KnownOverlap) {
  // 10x10 boxes overlapping in a 5x10 strip: inter 50, union 150.
  EXPECT_NEAR(iou(Box{0, 0, 10, 10}, Box{5, 0, 15, 10}), 50.0 / 150.0, 1e-12);
}

TEST(Iou, PropertiesHoldOnRandomBoxes) {
  runtime::Xoshiro256 rng(21);
  auto random_box = [&] {
    const int x0 = static_cast<int>(rng.below(50));
    const int y0 = static_cast<int>(rng.below(50));
    return Box{x0, y0, x0 + 1 + static_cast<int>(rng.below(30)),
               y0 + 1 + static_cast<int>(rng.below(30))};
  };
  for (int i = 0; i < 200; ++i) {
    const Box a = random_box(), b = random_box();
    const double v = iou(a, b);
    ASSERT_GE(v, 0.0);
    ASSERT_LE(v, 1.0);
    ASSERT_DOUBLE_EQ(v, iou(b, a));                 // symmetry
    ASSERT_DOUBLE_EQ(iou(a, a), 1.0);               // reflexivity
    if (a.intersect(b).empty()) {
      ASSERT_EQ(v, 0.0);  // disjoint -> 0
    }
  }
}

TEST(Nms, KeepsNonOverlapping) {
  std::vector<ScoredBox> boxes{{Box{0, 0, 10, 10}, 0.9},
                               {Box{20, 20, 30, 30}, 0.8}};
  const auto kept = nms(boxes, 0.5);
  EXPECT_EQ(kept.size(), 2u);
}

TEST(Nms, SuppressesHeavyOverlapKeepingBestScore) {
  std::vector<ScoredBox> boxes{{Box{0, 0, 10, 10}, 0.7},
                               {Box{1, 1, 11, 11}, 0.9},
                               {Box{2, 0, 12, 10}, 0.5}};
  const auto kept = nms(boxes, 0.3);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_DOUBLE_EQ(kept[0].score, 0.9);
}

TEST(Nms, OutputSortedByScoreDescending) {
  std::vector<ScoredBox> boxes{{Box{0, 0, 5, 5}, 0.2},
                               {Box{10, 10, 15, 15}, 0.9},
                               {Box{20, 20, 25, 25}, 0.5}};
  const auto kept = nms(boxes, 0.5);
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_GE(kept[0].score, kept[1].score);
  EXPECT_GE(kept[1].score, kept[2].score);
}

TEST(Nms, ThresholdOneKeepsEverythingButDuplicates) {
  // iou must EXCEED the threshold to suppress; at threshold 1.0 nothing
  // can exceed it, so all boxes survive.
  std::vector<ScoredBox> boxes{{Box{0, 0, 10, 10}, 0.9},
                               {Box{0, 0, 10, 10}, 0.8}};
  EXPECT_EQ(nms(boxes, 1.0).size(), 2u);
  EXPECT_EQ(nms(boxes, 0.99).size(), 1u);
}

TEST(Nms, EmptyInput) {
  EXPECT_TRUE(nms({}, 0.5).empty());
}

}  // namespace
}  // namespace ffsva::image
