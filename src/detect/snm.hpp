// SNM — stream-specialized network model (paper Sections 2.1, 3.2.2, 4.2.1).
//
// A 3-layer CNN (CONV, CONV, FC) binary classifier over a 50x50 input that
// predicts the probability c that the stream's target object appears in a
// frame. The input is the resized gray frame differenced against the
// stream's background: a fixed-viewpoint camera means the motion silhouette
// is the discriminative signal, which is why a model this small reaches
// >95% accuracy on its own stream (Section 3.2.2).
//
// Inference-side semantics follow Section 4.2.1 exactly:
//
//     t_pre = (c_high - c_low) * FilterDegree + c_low
//     pass  <=>  c >= t_pre
//
// where [c_low, c_high] is selected on held-out data during specialization
// (Section 4.1): below c_low (almost) no positives occur, above c_high
// (almost) no negatives.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "detect/preproc.hpp"
#include "image/image.hpp"
#include "nn/layers.hpp"
#include "video/frame.hpp"

namespace ffsva::detect {

struct SnmConfig {
  int input_size = 50;         ///< SNM feature size (50x50, Section 3.2.2).
  int conv1_filters = 8;
  int conv2_filters = 16;
  double c_low = 0.3;
  double c_high = 0.7;
  double filter_degree = 0.5;  ///< User knob in [0, 1] (Section 4.2.1).
  // Threshold-selection quantiles: c_low keeps all but this share of
  // positives above it; c_high keeps all but this share of negatives below.
  double threshold_tail = 0.02;
  /// Relaxed filtering (Section 3.3): scale the selected c_low down so the
  /// operating band sits "slightly below the target threshold" — frames the
  /// calibration window never showed (weaker, smaller targets) still get a
  /// chance at the follow-up filters.
  double c_low_relax = 0.75;
  // Training hyperparameters.
  int epochs = 10;
  int batch_size = 16;
  double lr = 0.02;
  double lr_decay = 0.85;      ///< Per-epoch multiplicative decay.
  // Train-time augmentation: random shifts (pixels, on the 50x50 input),
  // horizontal flips, and scale jitter. A fixed-viewpoint camera sees the
  // same objects at many positions and apparent sizes over a day; a short
  // calibration window does not, so the augmentation supplies the variety
  // the window lacks.
  int augment_shift = 4;
  bool augment_flip = true;
  double augment_scale = 0.30;  ///< Scale factor drawn from 1 +- this.
};

struct SnmTrainReport {
  double final_loss = 0.0;
  double train_accuracy = 0.0;
  double val_accuracy = 0.0;
  double c_low = 0.0;
  double c_high = 0.0;
  int positives = 0;
  int negatives = 0;
};

class SnmFilter {
 public:
  SnmFilter(SnmConfig config, const image::Image& background, std::uint64_t seed);

  /// Predicted probability that the frame contains the target object.
  /// Not safe for concurrent calls on one instance (each stream owns its
  /// SNM and one stage thread, matching the paper's deployment).
  double predict(const image::Image& frame) const;

  /// Batched prediction — the unit the dynamic batcher feeds to the GPU.
  std::vector<double> predict_batch(const std::vector<const image::Image*>& frames) const;

  /// The cascade predicate (Section 4.2.1).
  bool pass(const image::Image& frame) const { return predict(frame) >= t_pre(); }

  double t_pre() const {
    return (config_.c_high - config_.c_low) * config_.filter_degree + config_.c_low;
  }
  void set_filter_degree(double fd);
  void set_thresholds(double c_low, double c_high);

  /// Train on labeled frames (labels from the reference model per Section
  /// 4.1), then select [c_low, c_high] on the validation split.
  /// `val_fraction` of the data is held out.
  SnmTrainReport train(const std::vector<video::Frame>& frames,
                       const std::vector<bool>& labels, double val_fraction = 0.25);

  /// Parameter + threshold (de)serialization.
  void save(std::ostream& os) const;
  void load(std::istream& is);

  const SnmConfig& config() const { return config_; }
  std::size_t num_parameters() const { return net_->num_parameters(); }

  /// Direct access to the network, e.g. for compression (nn/compress.hpp)
  /// per the paper's Section 5.5 remedy.
  nn::Sequential& network() { return *net_; }

 private:
  nn::Tensor preprocess(const image::Image& frame) const;
  nn::Tensor preprocess_batch(const std::vector<const image::Image*>& frames) const;
  /// Training-only: preprocess with a random shift/flip per sample.
  nn::Tensor preprocess_batch_augmented(const std::vector<const image::Image*>& frames,
                                        runtime::Xoshiro256& rng) const;
  void select_thresholds(const std::vector<double>& scores,
                         const std::vector<bool>& labels);

  SnmConfig config_;
  image::Image background_small_;           ///< Gray at input_size.
  mutable std::unique_ptr<nn::Sequential> net_;
  int fc_features_ = 0;
  /// Warm buffers for the allocation-free predict path. Safe as a member
  /// because one instance is never called concurrently (see predict()).
  mutable SnmScratch scratch_;
};

}  // namespace ffsva::detect
