// Reference model — the stand-in for full-feature YOLOv2 (Section 3.1.1).
//
// Detects at the frame's native resolution with fine segmentation. In the
// paper this is the expensive, high-accuracy back end whose output defines
// correctness ("all the filtered frames by FFS-VA are completely detected by
// the reference model YOLOv2", Section 5.3); we use it the same way — both
// as the last pipeline stage and as the labeling oracle when specializing
// SDD/SNM for a stream (Section 4.1).
#pragma once

#include "detect/detection.hpp"
#include "detect/segmentation.hpp"
#include "image/image.hpp"

namespace ffsva::detect {

struct ReferenceConfig {
  SegmentationParams segmentation{/*blur_sigma=*/1.0, /*diff_threshold=*/24,
                                  /*min_pixels=*/36, /*morph_open=*/true};
  ClassifierParams classifier{.car_min_area = 110.0};
  /// Detection-confidence threshold when the reference model's output is
  /// used as truth (labeling and accuracy evaluation). YOLOv2's standard
  /// operating threshold; low-confidence sliver detections below it do not
  /// count as objects.
  double confidence_threshold = 0.45;
};

class ReferenceDetector {
 public:
  ReferenceDetector(ReferenceConfig config, image::Image background)
      : config_(config), background_(std::move(background)) {}

  DetectionResult detect(const image::Image& frame) const;

  const image::Image& background() const { return background_; }
  const ReferenceConfig& config() const { return config_; }

 private:
  ReferenceConfig config_;
  image::Image background_;
};

}  // namespace ffsva::detect
