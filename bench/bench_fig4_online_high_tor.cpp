// Figure 4 — throughput and latency vs number of streams, TOR 1.000.
//
// Paper: "SDDs and SNMs filter out fewer video frames and most of the
// frames are still fed to the T-YOLO for filtering ... FFS-VA can only
// support 5-6 video streams in real time" and the offline throughput drops
// close to the YOLOv2 baseline.
//
// Workload: the coral (person) profile at TOR 1.0, with the evaluation's
// crowd-intensity threshold NumberofObjects = 4 — the event of interest in
// a crowd scene is "more people than usual", so the T-YOLO stage still
// filters frames whose detected person count stays below the threshold.
#include "common.hpp"

using namespace ffsva;

int main() {
  bench::print_header("FIGURE 4 -- online throughput & latency vs #streams (TOR = 1.000)");

  std::printf("Specializing coral stream and recording real-filter trace...\n");
  auto cfg = video::coral_profile();
  cfg.width = 256;
  cfg.height = 144;
  const int number_of_objects = 4;
  auto stream = bench::build_stream(cfg, 1.0, 77, 1000, 1500, 6);
  const auto thresholds = core::thresholds_of(stream.models, number_of_objects);
  const auto params = sim::MarkovParams::from_trace(stream.trace, thresholds);
  std::printf("Trace-calibrated model: tor=%.3f  pass(in): sdd %.2f snm %.2f tyolo %.2f\n\n",
              params.tor, params.sdd_in, params.snm_in, params.ty_in);

  core::FfsVaConfig fb_cfg;
  fb_cfg.batch_policy = core::BatchPolicy::kFeedback;
  fb_cfg.number_of_objects = number_of_objects;
  core::FfsVaConfig dyn_cfg = fb_cfg;
  dyn_cfg.batch_policy = core::BatchPolicy::kDynamic;

  std::printf("%-9s | %-28s | %-28s | %-20s\n", "", "FFS-VA (feedback queue)",
              "FFS-VA (dynamic batch)", "YOLOv2 baseline");
  std::printf("%-9s | %9s %8s %8s | %9s %8s %8s | %9s %9s\n", "#streams",
              "thr(FPS)", "drop", "p50(ms)", "thr(FPS)", "drop", "p50(ms)",
              "thr(FPS)", "drop");
  bench::print_rule();
  for (int n : {1, 2, 3, 4, 5, 6, 7, 8, 10}) {
    const auto fb = sim::simulate_ffsva(
        bench::sim_setup_from(params, fb_cfg, n, true, 100000, 90.0));
    const auto dyn = sim::simulate_ffsva(
        bench::sim_setup_from(params, dyn_cfg, n, true, 100000, 90.0));
    const auto base = sim::simulate_baseline(
        bench::sim_setup_from(params, fb_cfg, n, true, 100000, 90.0));
    std::printf("%-9d | %9.1f %7.2f%% %8.0f | %9.1f %7.2f%% %8.0f | %9.1f %8.2f%%\n",
                n, fb.throughput_fps, 100 * fb.drop_rate,
                fb.output_latency_ms.p50(), dyn.throughput_fps,
                100 * dyn.drop_rate, dyn.output_latency_ms.p50(),
                base.throughput_fps, 100 * base.drop_rate);
  }

  bench::print_rule();
  const int fb_max = sim::max_realtime_streams(
      bench::sim_setup_from(params, fb_cfg, 1, true, 100000, 90.0), 1, 16, 0.01);
  std::printf("Max real-time streams at TOR 1.0: %d (paper: 5-6)\n", fb_max);

  // Offline at TOR 1.0: close to the baseline (Figure 4 discussion).
  const auto off = sim::simulate_ffsva(
      bench::sim_setup_from(params, fb_cfg, 1, false, 5000));
  const auto off_base = sim::simulate_baseline(
      bench::sim_setup_from(params, fb_cfg, 1, false, 5000));
  std::printf("Offline single stream: FFS-VA %.0f FPS vs baseline %.0f FPS "
              "(paper: 'close to YOLOv2')\n",
              off.throughput_fps, off_base.throughput_fps);
  return 0;
}
