// Metrics registry: sharded counters, callback gauges, atomic histograms,
// and the snapshot merge — including exactness under concurrent recording
// (writers quiesce => totals exact) and snapshot-while-recording safety,
// which is the registry's whole reason to exist.
#include "telemetry/metrics.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "runtime/stats.hpp"

namespace ffsva::telemetry {
namespace {

TEST(Counter, SingleThreadTotals) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Counter, ConcurrentAddsSumExactly) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(Gauge, CallbackAndDefault) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);  // no callback yet
  double depth = 3.0;
  g.set_fn([&depth] { return depth; });
  EXPECT_EQ(g.value(), 3.0);
  depth = 7.0;
  EXPECT_EQ(g.value(), 7.0);  // instantaneous, not cached
}

TEST(AtomicHistogram, MatchesRuntimeHistogramBuckets) {
  // Identical bucketing scheme => identical quantiles for identical samples.
  AtomicHistogram ah;
  runtime::Histogram rh;
  for (int i = 1; i <= 1000; ++i) {
    const double v = 0.05 * i;
    ah.record(v);
    rh.add(v);
  }
  const auto snap = ah.snapshot();
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_DOUBLE_EQ(snap.min, 0.05);
  EXPECT_DOUBLE_EQ(snap.max, 50.0);
  EXPECT_NEAR(snap.mean(), rh.mean(), 1e-9);
  for (const double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(snap.quantile(q), rh.quantile(q)) << "q=" << q;
  }
}

TEST(AtomicHistogram, ConcurrentRecordsExactAfterQuiesce) {
  AtomicHistogram h;
  constexpr int kThreads = 6;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.record(1.0 + t);  // distinct per-thread value exercises min/max CAS
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, static_cast<double>(kThreads));
  double want_sum = 0.0;
  for (int t = 0; t < kThreads; ++t) want_sum += (1.0 + t) * kPerThread;
  EXPECT_NEAR(snap.sum, want_sum, want_sum * 1e-12);
}

TEST(HistogramSnapshot, QuantileEdgeCases) {
  AtomicHistogram h;
  // Empty: all quantiles are 0 (no samples, no min/max).
  const auto empty = h.snapshot();
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(empty.quantile(0.0), 0.0);
  EXPECT_EQ(empty.quantile(0.5), 0.0);
  EXPECT_EQ(empty.quantile(1.0), 0.0);

  // Single sample: every quantile is that sample.
  h.record(3.5);
  const auto one = h.snapshot();
  EXPECT_EQ(one.count, 1u);
  EXPECT_DOUBLE_EQ(one.quantile(0.0), 3.5);
  EXPECT_DOUBLE_EQ(one.quantile(0.5), 3.5);
  EXPECT_DOUBLE_EQ(one.quantile(1.0), 3.5);

  // Two extreme samples: q=0 lands on the low sample, q=1 on the high one
  // (bucket representative, clamped to [min, max], within one bucket ~3%).
  h.record(400.0);
  const auto two = h.snapshot();
  EXPECT_GE(two.quantile(0.0), 3.5);
  EXPECT_LE(two.quantile(0.0), 3.5 * 1.04);
  EXPECT_LE(two.quantile(1.0), 400.0);
  EXPECT_GE(two.quantile(1.0), 400.0 / 1.04);
}

TEST(Registry, HandlesAreStableAndNamed) {
  Registry reg;
  Counter& a = reg.counter("stage.in");
  Counter& b = reg.counter("stage.in");
  EXPECT_EQ(&a, &b);  // same name => same instance
  a.add(5);
  EXPECT_EQ(reg.counter("stage.in").value(), 5u);

  reg.gauge("queue.depth", [] { return 11.0; });
  AtomicHistogram& h = reg.histogram("batch");
  h.record(4.0);

  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counter_or("stage.in"), 5u);
  EXPECT_EQ(snap.counter_or("missing", 99u), 99u);
  EXPECT_EQ(snap.gauge_or("queue.depth"), 11.0);
  ASSERT_NE(snap.histogram("batch"), nullptr);
  EXPECT_EQ(snap.histogram("batch")->count, 1u);
  EXPECT_EQ(snap.histogram("missing"), nullptr);
}

TEST(Registry, SnapshotEntriesAreSorted) {
  Registry reg;
  reg.counter("zeta");
  reg.counter("alpha");
  reg.counter("mid");
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].first, "alpha");
  EXPECT_EQ(snap.counters[1].first, "mid");
  EXPECT_EQ(snap.counters[2].first, "zeta");
}

// The production pattern: stage threads hammer counters/histograms while a
// sampler thread snapshots concurrently. Mid-run snapshots must be
// monotonic and bounded by the true total; the post-join snapshot exact.
TEST(Registry, SnapshotWhileRecording) {
  Registry reg;
  Counter& events = reg.counter("events");
  AtomicHistogram& sizes = reg.histogram("sizes");
  std::atomic<bool> stop{false};

  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerThread = 50000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        events.add();
        if ((i & 1023) == 0) sizes.record(static_cast<double>(i & 63));
      }
    });
  }
  std::thread sampler([&] {
    std::uint64_t last = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const auto snap = reg.snapshot();
      const std::uint64_t n = snap.counter_or("events");
      EXPECT_GE(n, last);  // monotone while writers run
      EXPECT_LE(n, kWriters * kPerThread);
      last = n;
    }
  });
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  sampler.join();

  const auto final_snap = reg.snapshot();
  EXPECT_EQ(final_snap.counter_or("events"), kWriters * kPerThread);
  ASSERT_NE(final_snap.histogram("sizes"), nullptr);
  // One record per thread at every 1024th iteration (i = 0, 1024, ...).
  const std::uint64_t records_per_thread = (kPerThread + 1023) / 1024;
  EXPECT_EQ(final_snap.histogram("sizes")->count,
            kWriters * records_per_thread);
}

}  // namespace
}  // namespace ffsva::telemetry
