#include "core/accuracy.hpp"

namespace ffsva::core {

ErrorRunStats classify_error_runs(const std::vector<bool>& false_negative) {
  ErrorRunStats s;
  std::size_t i = 0;
  const std::size_t n = false_negative.size();
  while (i < n) {
    if (!false_negative[i]) {
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < n && false_negative[j]) ++j;
    const auto len = static_cast<std::int64_t>(j - i);
    if (len == 1) {
      s.isolated_single += len;
    } else if (len <= 3) {
      s.isolated_2_3 += len;
    } else if (len < 30) {
      s.continuous_under_30 += len;
    } else {
      s.continuous_30_plus += len;
    }
    i = j;
  }
  return s;
}

SceneAccuracy scene_level_accuracy(const std::vector<video::SceneInterval>& intervals,
                                   const std::vector<bool>& pass,
                                   std::int64_t begin) {
  SceneAccuracy acc;
  const std::int64_t end = begin + static_cast<std::int64_t>(pass.size());
  for (const auto& iv : intervals) {
    const std::int64_t lo = std::max(iv.begin, begin);
    const std::int64_t hi = std::min(iv.end, end);
    if (lo >= hi) continue;
    ++acc.scenes;
    bool hit = false;
    for (std::int64_t f = lo; f < hi && !hit; ++f) {
      hit = pass[static_cast<std::size_t>(f - begin)];
    }
    if (hit) {
      ++acc.caught;
    } else {
      ++acc.lost;
    }
  }
  if (acc.scenes > 0) {
    acc.loss_rate = static_cast<double>(acc.lost) / static_cast<double>(acc.scenes);
  }
  return acc;
}

double frame_error_rate(const std::vector<bool>& false_negative) {
  if (false_negative.empty()) return 0.0;
  std::int64_t fn = 0;
  for (bool b : false_negative) fn += b ? 1 : 0;
  return static_cast<double>(fn) / static_cast<double>(false_negative.size());
}

}  // namespace ffsva::core
