#include "nn/layers.hpp"

#include "nn/gemm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "runtime/cancel.hpp"

namespace ffsva::nn {

namespace {
/// He-normal initialization for ReLU networks.
void he_init(Tensor& t, int fan_in, runtime::Xoshiro256& rng) {
  const double std_dev = std::sqrt(2.0 / std::max(1, fan_in));
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.normal() * std_dev);
  }
}
}  // namespace

void Layer::forward_into(const Tensor& x, Tensor& y, GemmScratch&) {
  y = forward(x, /*train=*/false);
}

// ---------------------------------------------------------------- Conv2d --

Conv2d::Conv2d(int in_channels, int out_channels, int kernel, int stride, int pad,
               runtime::Xoshiro256& rng)
    : weight(out_channels, in_channels, kernel, kernel),
      bias(out_channels, 1, 1, 1),
      weight_grad(out_channels, in_channels, kernel, kernel),
      bias_grad(out_channels, 1, 1, 1),
      in_ch_(in_channels), out_ch_(out_channels), kernel_(kernel),
      stride_(stride), pad_(pad) {
  he_init(weight, in_channels * kernel * kernel, rng);
}

Tensor Conv2d::forward(const Tensor& x, bool train) {
  if (x.c() != in_ch_) throw std::invalid_argument("Conv2d: channel mismatch");
  if (use_im2col_) {
    if (train) cached_input_ = x;
    return conv2d_im2col(x, weight, bias, stride_, pad_);
  }
  const int oh = out_h(x.h()), ow = out_w(x.w());
  Tensor y(x.n(), out_ch_, oh, ow);
  // Direct convolution: for 50x50-class inputs this is within 2x of an
  // im2col+GEMM and considerably simpler to verify.
  for (int n = 0; n < x.n(); ++n) {
    for (int oc = 0; oc < out_ch_; ++oc) {
      const float b = bias.at(oc, 0, 0, 0);
      for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox) {
          float acc = b;
          for (int ic = 0; ic < in_ch_; ++ic) {
            for (int ky = 0; ky < kernel_; ++ky) {
              const int iy = oy * stride_ + ky - pad_;
              if (iy < 0 || iy >= x.h()) continue;
              for (int kx = 0; kx < kernel_; ++kx) {
                const int ix = ox * stride_ + kx - pad_;
                if (ix < 0 || ix >= x.w()) continue;
                acc += weight.at(oc, ic, ky, kx) * x.at(n, ic, iy, ix);
              }
            }
          }
          y.at(n, oc, oy, ox) = acc;
        }
      }
    }
  }
  if (train) cached_input_ = x;
  return y;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  const Tensor& x = cached_input_;
  Tensor grad_in = Tensor::zeros_like(x);
  for (int n = 0; n < x.n(); ++n) {
    for (int oc = 0; oc < out_ch_; ++oc) {
      for (int oy = 0; oy < grad_out.h(); ++oy) {
        for (int ox = 0; ox < grad_out.w(); ++ox) {
          const float g = grad_out.at(n, oc, oy, ox);
          if (g == 0.0f) continue;
          bias_grad.at(oc, 0, 0, 0) += g;
          for (int ic = 0; ic < in_ch_; ++ic) {
            for (int ky = 0; ky < kernel_; ++ky) {
              const int iy = oy * stride_ + ky - pad_;
              if (iy < 0 || iy >= x.h()) continue;
              for (int kx = 0; kx < kernel_; ++kx) {
                const int ix = ox * stride_ + kx - pad_;
                if (ix < 0 || ix >= x.w()) continue;
                weight_grad.at(oc, ic, ky, kx) += g * x.at(n, ic, iy, ix);
                grad_in.at(n, ic, iy, ix) += g * weight.at(oc, ic, ky, kx);
              }
            }
          }
        }
      }
    }
  }
  return grad_in;
}

void Conv2d::forward_into(const Tensor& x, Tensor& y, GemmScratch& ws) {
  if (x.c() != in_ch_) throw std::invalid_argument("Conv2d: channel mismatch");
  conv2d_im2col_into(x, weight, bias, stride_, pad_, y, ws);
}

std::vector<Param> Conv2d::params() {
  return {{&weight, &weight_grad}, {&bias, &bias_grad}};
}

// ------------------------------------------------------------- MaxPool2d --

MaxPool2d::MaxPool2d(int kernel, int stride) : kernel_(kernel), stride_(stride) {}

Tensor MaxPool2d::forward(const Tensor& x, bool train) {
  const int oh = (x.h() - kernel_) / stride_ + 1;
  const int ow = (x.w() - kernel_) / stride_ + 1;
  Tensor y(x.n(), x.c(), oh, ow);
  argmax_.assign(y.size(), 0);
  std::size_t oi = 0;
  for (int n = 0; n < x.n(); ++n) {
    for (int c = 0; c < x.c(); ++c) {
      for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox, ++oi) {
          float best = -std::numeric_limits<float>::infinity();
          std::uint32_t best_idx = 0;
          for (int ky = 0; ky < kernel_; ++ky) {
            for (int kx = 0; kx < kernel_; ++kx) {
              const int iy = oy * stride_ + ky;
              const int ix = ox * stride_ + kx;
              const float v = x.at(n, c, iy, ix);
              if (v > best) {
                best = v;
                best_idx = static_cast<std::uint32_t>(
                    ((static_cast<std::size_t>(n) * x.c() + c) * x.h() + iy) * x.w() + ix);
              }
            }
          }
          y.at(n, c, oy, ox) = best;
          argmax_[oi] = best_idx;
        }
      }
    }
  }
  if (train) {
    cached_input_ = x;
  }
  out_shape_ = y.shape();
  return y;
}

void MaxPool2d::forward_into(const Tensor& x, Tensor& y, GemmScratch&) {
  // Inference variant of forward(): no argmax bookkeeping, no input cache.
  const int oh = (x.h() - kernel_) / stride_ + 1;
  const int ow = (x.w() - kernel_) / stride_ + 1;
  y.resize(x.n(), x.c(), oh, ow);
  for (int n = 0; n < x.n(); ++n) {
    for (int c = 0; c < x.c(); ++c) {
      for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox) {
          float best = -std::numeric_limits<float>::infinity();
          for (int ky = 0; ky < kernel_; ++ky) {
            for (int kx = 0; kx < kernel_; ++kx) {
              best = std::max(best, x.at(n, c, oy * stride_ + ky, ox * stride_ + kx));
            }
          }
          y.at(n, c, oy, ox) = best;
        }
      }
    }
  }
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  Tensor grad_in = Tensor::zeros_like(cached_input_);
  for (std::size_t i = 0; i < grad_out.size(); ++i) {
    grad_in[argmax_[i]] += grad_out[i];
  }
  return grad_in;
}

// ---------------------------------------------------------------- Linear --

Linear::Linear(int in_features, int out_features, runtime::Xoshiro256& rng)
    : weight(out_features, in_features, 1, 1),
      bias(out_features, 1, 1, 1),
      weight_grad(out_features, in_features, 1, 1),
      bias_grad(out_features, 1, 1, 1),
      in_features_(in_features), out_features_(out_features) {
  he_init(weight, in_features, rng);
}

Tensor Linear::forward(const Tensor& x, bool train) {
  const int feat = x.c() * x.h() * x.w();
  if (feat != in_features_) throw std::invalid_argument("Linear: feature mismatch");
  Tensor y(x.n(), out_features_, 1, 1);
  const float* xd = x.data();
  for (int n = 0; n < x.n(); ++n) {
    const float* xin = xd + static_cast<std::size_t>(n) * feat;
    for (int o = 0; o < out_features_; ++o) {
      const float* wrow = weight.data() + static_cast<std::size_t>(o) * in_features_;
      float acc = bias.at(o, 0, 0, 0);
      for (int i = 0; i < in_features_; ++i) acc += wrow[i] * xin[i];
      y.at(n, o, 0, 0) = acc;
    }
  }
  if (train) cached_input_ = x;
  return y;
}

Tensor Linear::backward(const Tensor& grad_out) {
  const Tensor& x = cached_input_;
  const int feat = in_features_;
  Tensor grad_in = Tensor::zeros_like(x);
  for (int n = 0; n < x.n(); ++n) {
    const float* xin = x.data() + static_cast<std::size_t>(n) * feat;
    float* gin = grad_in.data() + static_cast<std::size_t>(n) * feat;
    for (int o = 0; o < out_features_; ++o) {
      const float g = grad_out.at(n, o, 0, 0);
      if (g == 0.0f) continue;
      bias_grad.at(o, 0, 0, 0) += g;
      float* wg = weight_grad.data() + static_cast<std::size_t>(o) * feat;
      const float* wrow = weight.data() + static_cast<std::size_t>(o) * feat;
      for (int i = 0; i < feat; ++i) {
        wg[i] += g * xin[i];
        gin[i] += g * wrow[i];
      }
    }
  }
  return grad_in;
}

void Linear::forward_into(const Tensor& x, Tensor& y, GemmScratch&) {
  const int feat = x.c() * x.h() * x.w();
  if (feat != in_features_) throw std::invalid_argument("Linear: feature mismatch");
  y.resize(x.n(), out_features_, 1, 1);
  const float* xd = x.data();
  for (int n = 0; n < x.n(); ++n) {
    const float* xin = xd + static_cast<std::size_t>(n) * feat;
    for (int o = 0; o < out_features_; ++o) {
      const float* wrow = weight.data() + static_cast<std::size_t>(o) * in_features_;
      // Eight explicit partial sums: a single-accumulator FP reduction
      // cannot be vectorized without reassociation, which -O3 alone does
      // not grant. (Inference-only; forward() keeps the serial order the
      // gradient checks expect.)
      float part[8] = {};
      const int tail = in_features_ & ~7;
      for (int i = 0; i < tail; i += 8) {
        for (int u = 0; u < 8; ++u) part[u] += wrow[i + u] * xin[i + u];
      }
      float acc = bias.at(o, 0, 0, 0);
      for (int i = tail; i < in_features_; ++i) acc += wrow[i] * xin[i];
      acc += ((part[0] + part[1]) + (part[2] + part[3])) +
             ((part[4] + part[5]) + (part[6] + part[7]));
      y.at(n, o, 0, 0) = acc;
    }
  }
}

std::vector<Param> Linear::params() {
  return {{&weight, &weight_grad}, {&bias, &bias_grad}};
}

// ------------------------------------------------------------ activations --

Tensor ReLU::forward(const Tensor& x, bool train) {
  Tensor y = x;
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = std::max(0.0f, y[i]);
  if (train) cached_input_ = x;
  return y;
}

void ReLU::forward_into(const Tensor& x, Tensor& y, GemmScratch&) {
  y.resize(x.n(), x.c(), x.h(), x.w());
  const float* in = x.data();
  float* out = y.data();
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = std::max(0.0f, in[i]);
}

Tensor ReLU::backward(const Tensor& grad_out) {
  Tensor grad_in = grad_out;
  for (std::size_t i = 0; i < grad_in.size(); ++i) {
    if (cached_input_[i] <= 0.0f) grad_in[i] = 0.0f;
  }
  return grad_in;
}

Tensor Sigmoid::forward(const Tensor& x, bool train) {
  Tensor y = x;
  for (std::size_t i = 0; i < y.size(); ++i) {
    y[i] = 1.0f / (1.0f + std::exp(-y[i]));
  }
  if (train) cached_output_ = y;
  return y;
}

void Sigmoid::forward_into(const Tensor& x, Tensor& y, GemmScratch&) {
  y.resize(x.n(), x.c(), x.h(), x.w());
  const float* in = x.data();
  float* out = y.data();
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = 1.0f / (1.0f + std::exp(-in[i]));
  }
}

Tensor Sigmoid::backward(const Tensor& grad_out) {
  Tensor grad_in = grad_out;
  for (std::size_t i = 0; i < grad_in.size(); ++i) {
    const float s = cached_output_[i];
    grad_in[i] *= s * (1.0f - s);
  }
  return grad_in;
}

// ------------------------------------------------------------- Sequential --

Tensor Sequential::forward(const Tensor& x, bool train) {
  Tensor cur = x;
  for (auto& l : layers_) cur = l->forward(cur, train);
  return cur;
}

const Tensor& Sequential::forward_inference(const Tensor& x, InferenceScratch& ws) {
  if (layers_.empty()) {
    ws.acts[0] = x;
    return ws.acts[0];
  }
  const Tensor* cur = &x;
  int slot = 0;
  for (auto& l : layers_) {
    // Cancellation boundary between layers: layers whose kernels have no
    // internal check (activations, pooling) still unwind within one layer.
    runtime::check_cancel();
    Tensor& out = ws.acts[slot];
    l->forward_into(*cur, out, ws.gemm);
    cur = &out;
    slot ^= 1;
  }
  return *cur;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor cur = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    cur = (*it)->backward(cur);
  }
  return cur;
}

std::vector<Param> Sequential::params() {
  std::vector<Param> out;
  for (auto& l : layers_) {
    auto p = l->params();
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

void Sequential::zero_grad() {
  for (auto p : params()) p.grad->fill(0.0f);
}

std::size_t Sequential::num_parameters() {
  std::size_t n = 0;
  for (auto p : params()) n += p.value->size();
  return n;
}

void Sequential::save(std::ostream& os) {
  for (auto p : params()) write_tensor(os, *p.value);
}

void Sequential::load(std::istream& is) {
  for (auto p : params()) read_tensor_values(is, *p.value);
}

}  // namespace ffsva::nn
