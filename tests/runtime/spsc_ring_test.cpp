#include "runtime/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace ffsva::runtime {
namespace {

TEST(SpscRing, CapacityRoundsToPowerOfTwo) {
  SpscRing<int> a(3);
  EXPECT_EQ(a.capacity(), 4u);
  SpscRing<int> b(8);
  EXPECT_EQ(b.capacity(), 8u);
  SpscRing<int> c(1);
  EXPECT_EQ(c.capacity(), 2u);
}

TEST(SpscRing, PushPopBasics) {
  SpscRing<int> q(4);
  EXPECT_FALSE(q.try_pop().has_value());
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_EQ(q.size_approx(), 2u);
  EXPECT_EQ(q.try_pop().value(), 1);
  EXPECT_EQ(q.try_pop().value(), 2);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(SpscRing, FullRejectsPush) {
  SpscRing<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  q.try_pop();
  EXPECT_TRUE(q.try_push(3));
}

TEST(SpscRing, WrapsAroundManyTimes) {
  SpscRing<int> q(4);
  for (int round = 0; round < 1000; ++round) {
    ASSERT_TRUE(q.try_push(round));
    ASSERT_EQ(q.try_pop().value(), round);
  }
}

// Property: cross-thread stream arrives complete and in order.
class SpscRingStressTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SpscRingStressTest, OrderedDeliveryUnderConcurrency) {
  SpscRing<int> q(GetParam());
  // Yield on contention: on a single-core host a pure spin would starve the
  // other endpoint for a whole scheduler quantum per handoff.
  constexpr int kCount = 20000;
  std::vector<int> got;
  got.reserve(kCount);
  std::thread consumer([&] {
    int expect = 0;
    while (expect < kCount) {
      if (auto v = q.try_pop()) {
        got.push_back(*v);
        ++expect;
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (int i = 0; i < kCount;) {
    if (q.try_push(i)) {
      ++i;
    } else {
      std::this_thread::yield();
    }
  }
  consumer.join();
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kCount));
  for (int i = 0; i < kCount; ++i) ASSERT_EQ(got[static_cast<std::size_t>(i)], i);
}

INSTANTIATE_TEST_SUITE_P(Capacities, SpscRingStressTest,
                         ::testing::Values(std::size_t{2}, std::size_t{16},
                                           std::size_t{256}));

TEST(SpscRing, MoveOnlyPayload) {
  SpscRing<std::unique_ptr<int>> q(4);
  EXPECT_TRUE(q.try_push(std::make_unique<int>(5)));
  auto v = q.try_pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 5);
}

}  // namespace
}  // namespace ffsva::runtime
