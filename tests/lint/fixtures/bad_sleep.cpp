// Seeded violation for ffsva_lint --self-test: a worker loop that sleeps
// blind — no cancellation check within the marker window and no cancel-ok
// marker, so stop() and the watchdog cannot wind it down.
#include <chrono>
#include <thread>

void fixture_blind_sleep() {
  for (;;) {
    // A comment mentioning a poll does not count; the check must be code.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}
