#include "nn/gemm.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "nn/layers.hpp"
#include "runtime/parallel_for.hpp"

namespace ffsva::nn {
namespace {

Tensor random_tensor(int n, int c, int h, int w, std::uint64_t seed) {
  runtime::Xoshiro256 rng(seed);
  Tensor t(n, c, h, w);
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return t;
}

TEST(Gemm, MatchesManualMultiply) {
  // A: 2x3, B: 3x2.
  const float a[] = {1, 2, 3, 4, 5, 6};
  const float b[] = {7, 8, 9, 10, 11, 12};
  float c[4];
  gemm(a, b, c, 2, 3, 2);
  EXPECT_FLOAT_EQ(c[0], 58.0f);   // 1*7+2*9+3*11
  EXPECT_FLOAT_EQ(c[1], 64.0f);   // 1*8+2*10+3*12
  EXPECT_FLOAT_EQ(c[2], 139.0f);  // 4*7+5*9+6*11
  EXPECT_FLOAT_EQ(c[3], 154.0f);
}

TEST(Gemm, IdentityLeavesMatrixUnchanged) {
  const float eye[] = {1, 0, 0, 1};
  const float b[] = {3, 4, 5, 6};
  float c[4];
  gemm(eye, b, c, 2, 2, 2);
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(c[i], b[i]);
}

TEST(Im2Col, UnfoldsKnownPattern) {
  // 1x1x2x2 input, kernel 2, stride 1, pad 0 -> single column of 4.
  Tensor x(1, 1, 2, 2);
  x.at(0, 0, 0, 0) = 1;
  x.at(0, 0, 0, 1) = 2;
  x.at(0, 0, 1, 0) = 3;
  x.at(0, 0, 1, 1) = 4;
  std::vector<float> cols;
  im2col(x, 0, 2, 1, 0, 1, 1, cols);
  ASSERT_EQ(cols.size(), 4u);
  EXPECT_FLOAT_EQ(cols[0], 1);
  EXPECT_FLOAT_EQ(cols[1], 2);
  EXPECT_FLOAT_EQ(cols[2], 3);
  EXPECT_FLOAT_EQ(cols[3], 4);
}

TEST(Im2Col, ZeroPaddingFillsBorders) {
  Tensor x(1, 1, 1, 1);
  x.at(0, 0, 0, 0) = 5;
  // kernel 3, pad 1 -> 1x1 output, 9 rows; only the center is nonzero.
  std::vector<float> cols;
  im2col(x, 0, 3, 1, 1, 1, 1, cols);
  ASSERT_EQ(cols.size(), 9u);
  for (int i = 0; i < 9; ++i) {
    EXPECT_FLOAT_EQ(cols[static_cast<std::size_t>(i)], i == 4 ? 5.0f : 0.0f);
  }
}

/// The central property: both convolution paths agree on random inputs
/// across shapes, strides and paddings.
class ConvEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, int, int, int, int>> {};

TEST_P(ConvEquivalenceTest, DirectMatchesIm2Col) {
  const auto [batch, in_ch, out_ch, size, kernel, stride, pad] = GetParam();
  runtime::Xoshiro256 rng(99);
  Conv2d conv(in_ch, out_ch, kernel, stride, pad, rng);
  const Tensor x = random_tensor(batch, in_ch, size, size, 7);

  conv.set_use_im2col(false);
  const Tensor direct = conv.forward(x, false);
  conv.set_use_im2col(true);
  const Tensor lowered = conv.forward(x, false);

  ASSERT_TRUE(direct.same_shape(lowered));
  for (std::size_t i = 0; i < direct.size(); ++i) {
    ASSERT_NEAR(direct[i], lowered[i], 1e-4f) << "element " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvEquivalenceTest,
    ::testing::Values(std::make_tuple(1, 1, 1, 5, 3, 1, 1),
                      std::make_tuple(2, 3, 4, 8, 3, 1, 1),
                      std::make_tuple(1, 1, 8, 50, 3, 2, 1),
                      std::make_tuple(3, 8, 16, 25, 3, 2, 1),
                      std::make_tuple(1, 2, 2, 7, 5, 1, 2),
                      std::make_tuple(2, 4, 4, 9, 3, 3, 0),
                      std::make_tuple(1, 1, 1, 4, 1, 1, 0)));

TEST(ConvIm2Col, TrainingCachesInputForBackward) {
  // With im2col forward, backward must still see the cached input.
  runtime::Xoshiro256 rng(4);
  Conv2d conv(1, 2, 3, 1, 1, rng);
  const Tensor x = random_tensor(1, 1, 6, 6, 5);
  const Tensor y = conv.forward(x, /*train=*/true);
  Tensor g = Tensor::zeros_like(y);
  g.fill(1.0f);
  const Tensor gin = conv.backward(g);
  EXPECT_TRUE(gin.same_shape(x));
  EXPECT_GT(conv.weight_grad.abs_max(), 0.0);
}

TEST(ConvIm2Col, ChannelMismatchThrows) {
  Tensor x(1, 2, 4, 4);
  Tensor w(1, 3, 3, 3);
  Tensor b(1, 1, 1, 1);
  EXPECT_THROW(conv2d_im2col(x, w, b, 1, 1), std::invalid_argument);
}

/// Restores the compute parallelism a test overrides, so thread-count
/// experiments don't leak into the rest of the binary.
class ParallelismGuard {
 public:
  ParallelismGuard() : saved_(runtime::compute_parallelism()) {}
  ~ParallelismGuard() { runtime::set_compute_parallelism(saved_); }

 private:
  int saved_;
};

std::vector<float> random_matrix(int rows, int cols, std::uint64_t seed) {
  runtime::Xoshiro256 rng(seed);
  std::vector<float> m(static_cast<std::size_t>(rows) * cols);
  for (auto& v : m) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return m;
}

/// The blocked kernel must agree with the seed kernel at awkward shapes:
/// degenerate dims, non-multiples of the register tile, and sizes that
/// cross the KC/NC cache-block boundaries.
TEST(GemmBlocked, MatchesNaiveAcrossShapes) {
  const struct { int m, k, n; } shapes[] = {
      {1, 1, 1},    {1, 300, 1},   {300, 1, 5},   {5, 3, 300},
      {4, 16, 16},  {5, 17, 33},   {3, 40, 97},   {64, 64, 64},
      {16, 72, 169}, {8, 9, 625},  {7, 300, 41},  {130, 260, 37},
      {33, 257, 1030}};
  GemmScratch ws;  // Shared across shapes: exercises buffer re-sizing too.
  std::uint64_t seed = 1;
  for (const auto& s : shapes) {
    const auto a = random_matrix(s.m, s.k, seed++);
    const auto b = random_matrix(s.k, s.n, seed++);
    std::vector<float> want(static_cast<std::size_t>(s.m) * s.n);
    std::vector<float> got(want.size());
    gemm_naive(a.data(), b.data(), want.data(), s.m, s.k, s.n);
    gemm(a.data(), b.data(), got.data(), s.m, s.k, s.n, ws);
    const float tol = 1e-4f * static_cast<float>(s.k);
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_NEAR(want[i], got[i], tol)
          << "m=" << s.m << " k=" << s.k << " n=" << s.n << " element " << i;
    }
  }
}

TEST(GemmBlocked, CompactsPrunedKSteps) {
  // Zero whole k-columns of A (all rows), the shape magnitude pruning
  // produces: the packer compacts those steps and the indexed micro-kernel
  // must still produce the dense answer.
  const int m = 19, k = 83, n = 201;
  auto a = random_matrix(m, k, 11);
  const auto b = random_matrix(k, n, 12);
  runtime::Xoshiro256 rng(13);
  for (int kk = 0; kk < k; ++kk) {
    if (rng.uniform(0.0, 1.0) >= 0.5) continue;
    for (int i = 0; i < m; ++i) a[static_cast<std::size_t>(i) * k + kk] = 0.0f;
  }
  std::vector<float> want(static_cast<std::size_t>(m) * n), got(want.size());
  gemm_naive(a.data(), b.data(), want.data(), m, k, n);
  GemmScratch ws;
  gemm(a.data(), b.data(), got.data(), m, k, n, ws);
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_NEAR(want[i], got[i], 1e-3f) << "element " << i;
  }
}

TEST(GemmBlocked, BitwiseDeterministicAcrossThreadCounts) {
  // Each output row is accumulated in one fixed k-order by exactly one
  // worker, so the result must be bitwise identical for any parallelism —
  // large enough here to clear the parallel-dispatch threshold.
  const int m = 96, k = 128, n = 160;
  const auto a = random_matrix(m, k, 21);
  const auto b = random_matrix(k, n, 22);
  std::vector<float> c1(static_cast<std::size_t>(m) * n), c4(c1.size());

  ParallelismGuard guard;
  GemmScratch ws;
  runtime::set_compute_parallelism(1);
  gemm(a.data(), b.data(), c1.data(), m, k, n, ws);
  runtime::set_compute_parallelism(4);
  gemm(a.data(), b.data(), c4.data(), m, k, n, ws);
  EXPECT_EQ(0, std::memcmp(c1.data(), c4.data(), c1.size() * sizeof(float)));
}

TEST(ConvIm2Col, IntoReusesScratchAcrossShapes) {
  // Shrinking then growing shapes through one scratch: buffers are
  // grow-only, so results must not be contaminated by stale contents.
  runtime::Xoshiro256 rng(31);
  GemmScratch ws;
  Tensor y;
  const struct { int batch, in_ch, out_ch, size, stride, pad; } shapes[] = {
      {2, 4, 8, 16, 2, 1}, {1, 1, 2, 5, 1, 1}, {4, 8, 16, 25, 2, 1}};
  for (const auto& s : shapes) {
    Conv2d conv(s.in_ch, s.out_ch, 3, s.stride, s.pad, rng);
    const Tensor x = random_tensor(s.batch, s.in_ch, s.size, s.size,
                                   static_cast<std::uint64_t>(s.size));
    conv.set_use_im2col(false);
    const Tensor want = conv.forward(x, false);
    conv2d_im2col_into(x, conv.weight, conv.bias, s.stride, s.pad, y, ws);
    ASSERT_TRUE(want.same_shape(y));
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_NEAR(want[i], y[i], 1e-4f) << "element " << i;
    }
  }
}

TEST(ConvIm2Col, BatchFanOutDeterministicAcrossThreadCounts) {
  // The batched conv path fans samples across the pool; per-sample work is
  // independent, so outputs must be bitwise identical at any parallelism.
  runtime::Xoshiro256 rng(41);
  Conv2d conv(8, 16, 3, 2, 1, rng);
  const Tensor x = random_tensor(6, 8, 25, 25, 43);

  ParallelismGuard guard;
  GemmScratch ws;
  Tensor y1, y4;
  runtime::set_compute_parallelism(1);
  conv2d_im2col_into(x, conv.weight, conv.bias, 2, 1, y1, ws);
  runtime::set_compute_parallelism(4);
  conv2d_im2col_into(x, conv.weight, conv.bias, 2, 1, y4, ws);
  ASSERT_TRUE(y1.same_shape(y4));
  EXPECT_EQ(0, std::memcmp(y1.data(), y4.data(), y1.size() * sizeof(float)));
}

TEST(Gemm, SkipsZeroWeights) {
  // Behavioural check of the pruning fast path: result identical with
  // zeros present.
  const float a[] = {0, 2, 0, 4};
  const float b[] = {1, 2, 3, 4};
  float c[4];
  gemm(a, b, c, 2, 2, 2);
  EXPECT_FLOAT_EQ(c[0], 6.0f);
  EXPECT_FLOAT_EQ(c[1], 8.0f);
  EXPECT_FLOAT_EQ(c[2], 12.0f);
  EXPECT_FLOAT_EQ(c[3], 16.0f);
}

}  // namespace
}  // namespace ffsva::nn
