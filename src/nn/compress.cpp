#include "nn/compress.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace ffsva::nn {

namespace {
/// A parameter is a "weight tensor" (prunable/quantizable) if it has more
/// than one scalar per output unit — bias vectors are [out,1,1,1].
bool is_weight_tensor(const Tensor& t) {
  return t.c() * t.h() * t.w() > 1;
}
}  // namespace

PruneReport prune_by_magnitude(Sequential& net, double sparsity) {
  if (sparsity < 0.0 || sparsity > 1.0) {
    throw std::invalid_argument("prune_by_magnitude: sparsity must be in [0,1]");
  }
  PruneReport report;
  for (auto p : net.params()) {
    Tensor& t = *p.value;
    if (!is_weight_tensor(t)) continue;
    report.total_weights += t.size();
    if (sparsity == 0.0) continue;
    // Per-tensor threshold at the requested magnitude quantile.
    std::vector<float> mags(t.size());
    for (std::size_t i = 0; i < t.size(); ++i) mags[i] = std::fabs(t[i]);
    const auto k = static_cast<std::size_t>(sparsity * static_cast<double>(t.size()));
    if (k == 0) continue;
    auto nth = mags.begin() + static_cast<std::ptrdiff_t>(std::min(k, mags.size() - 1));
    std::nth_element(mags.begin(), nth, mags.end());
    const float threshold = *nth;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (std::fabs(t[i]) < threshold || (threshold == 0.0f && t[i] == 0.0f)) {
        if (t[i] != 0.0f) ++report.zeroed;
        t[i] = 0.0f;
      }
    }
  }
  return report;
}

QuantReport quantize_weights(Sequential& net, int bits) {
  if (bits < 2 || bits > 16) {
    throw std::invalid_argument("quantize_weights: bits must be in [2,16]");
  }
  QuantReport report;
  report.bits = bits;
  const double levels = static_cast<double>((1 << (bits - 1)) - 1);
  for (auto p : net.params()) {
    Tensor& t = *p.value;
    if (!is_weight_tensor(t)) continue;
    report.total_weights += t.size();
    const double max_abs = t.abs_max();
    if (max_abs == 0.0) continue;
    const double scale = max_abs / levels;
    for (std::size_t i = 0; i < t.size(); ++i) {
      const double q = std::round(static_cast<double>(t[i]) / scale);
      const float deq = static_cast<float>(std::clamp(q, -levels, levels) * scale);
      report.max_abs_error =
          std::max(report.max_abs_error, std::abs(static_cast<double>(t[i]) - deq));
      t[i] = deq;
    }
    report.model_bytes_quant += sizeof(float);  // the per-tensor scale
  }
  report.model_bytes_fp32 = static_cast<double>(report.total_weights) * sizeof(float);
  report.model_bytes_quant +=
      static_cast<double>(report.total_weights) * bits / 8.0;
  return report;
}

double sparsity_of(Sequential& net) {
  std::size_t total = 0, zeros = 0;
  for (auto p : net.params()) {
    Tensor& t = *p.value;
    if (!is_weight_tensor(t)) continue;
    total += t.size();
    for (std::size_t i = 0; i < t.size(); ++i) zeros += t[i] == 0.0f;
  }
  return total ? static_cast<double>(zeros) / static_cast<double>(total) : 0.0;
}

}  // namespace ffsva::nn
