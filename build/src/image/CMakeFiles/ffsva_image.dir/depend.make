# Empty dependencies file for ffsva_image.
# This may be replaced when dependencies are built.
