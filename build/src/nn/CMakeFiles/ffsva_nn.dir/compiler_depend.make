# Empty compiler generated dependencies file for ffsva_nn.
# This may be replaced when dependencies are built.
