#include "runtime/cancel.hpp"

#include <chrono>

namespace ffsva::runtime {

namespace {

thread_local const CancelToken* t_current_token = nullptr;

}  // namespace

std::int64_t CancelToken::now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

const CancelToken* current_cancel_token() { return t_current_token; }

void check_cancel() {
  const CancelToken* t = t_current_token;
  if (t != nullptr && t->cancelled()) throw CancelledError();
}

ScopedCancelToken::ScopedCancelToken(const CancelToken& token)
    : prev_(t_current_token) {
  t_current_token = &token;
}

ScopedCancelToken::~ScopedCancelToken() { t_current_token = prev_; }

}  // namespace ffsva::runtime
