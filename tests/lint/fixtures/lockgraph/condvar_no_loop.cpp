// Fixture: a CondVar wait outside a predicate loop must be flagged; the
// while-looped waits (brace and single-line forms) must not.
#include "runtime/annotations.hpp"

using ffsva::runtime::CondVar;
using ffsva::runtime::Mutex;
using ffsva::runtime::UniqueLock;

struct Gate {
  Mutex mu_;
  CondVar cv_;
  bool ready_ = false;

  void bad_wait() {
    UniqueLock lk(mu_);
    if (!ready_) cv_.wait(lk);  // spurious wakeup falls through: flagged
  }

  void good_wait() {
    UniqueLock lk(mu_);
    while (!ready_) cv_.wait(lk);
  }

  void good_wait_braced() {
    UniqueLock lk(mu_);
    while (!ready_) {
      cv_.wait(lk);
    }
  }
};
