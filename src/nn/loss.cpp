#include "nn/loss.hpp"

#include <cmath>
#include <stdexcept>

namespace ffsva::nn {

double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

double bce_with_logits(const Tensor& logits, const std::vector<float>& targets,
                       Tensor& grad) {
  const int n = logits.n();
  if (static_cast<int>(targets.size()) != n || logits.c() != 1) {
    throw std::invalid_argument("bce_with_logits: shape mismatch");
  }
  grad = Tensor::zeros_like(logits);
  double loss = 0.0;
  for (int i = 0; i < n; ++i) {
    const double z = logits.at(i, 0, 0, 0);
    const double y = targets[static_cast<std::size_t>(i)];
    // log(1 + e^z) computed stably.
    const double log1pez = z > 0 ? z + std::log1p(std::exp(-z)) : std::log1p(std::exp(z));
    loss += log1pez - y * z;
    grad.at(i, 0, 0, 0) = static_cast<float>((sigmoid(z) - y) / n);
  }
  return loss / n;
}

double softmax_cross_entropy(const Tensor& logits, const std::vector<int>& labels,
                             Tensor& grad) {
  const int n = logits.n(), c = logits.c();
  if (static_cast<int>(labels.size()) != n) {
    throw std::invalid_argument("softmax_cross_entropy: label count mismatch");
  }
  grad = Tensor::zeros_like(logits);
  double loss = 0.0;
  for (int i = 0; i < n; ++i) {
    double mx = -1e30;
    for (int k = 0; k < c; ++k) mx = std::max(mx, static_cast<double>(logits.at(i, k, 0, 0)));
    double denom = 0.0;
    for (int k = 0; k < c; ++k) denom += std::exp(logits.at(i, k, 0, 0) - mx);
    const int label = labels[static_cast<std::size_t>(i)];
    if (label < 0 || label >= c) throw std::invalid_argument("label out of range");
    const double logp =
        logits.at(i, label, 0, 0) - mx - std::log(denom);
    loss -= logp;
    for (int k = 0; k < c; ++k) {
      const double p = std::exp(logits.at(i, k, 0, 0) - mx) / denom;
      grad.at(i, k, 0, 0) = static_cast<float>((p - (k == label ? 1.0 : 0.0)) / n);
    }
  }
  return loss / n;
}

}  // namespace ffsva::nn
