file(REMOVE_RECURSE
  "CMakeFiles/sim_tests.dir/sim/baseline_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/baseline_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/conservation_sweep_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/conservation_sweep_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/engine_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/engine_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/ffsva_sim_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/ffsva_sim_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/outcome_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/outcome_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/sim_queue_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/sim_queue_test.cpp.o.d"
  "sim_tests"
  "sim_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
