// Foreground segmentation and blob classification — the shared machinery
// behind the two object detectors in the reproduction.
//
// Both our "T-YOLO" and our "YOLOv2" stand-ins detect by background
// differencing + connected components + size/aspect classification; what
// separates them is *fidelity*: the reference model works on the full
// frame, T-YOLO on a coarse 13x13-grid-aligned downscale. The fidelity gap
// (not any hand-coded error injection) is what produces the paper's false
// negatives: small, dense or partially-visible objects shrink below the
// coarse detector's resolving power while the full-resolution reference
// still sees them (Section 5.3).
#pragma once

#include <cstdint>
#include <vector>

#include "detect/detection.hpp"
#include "image/components.hpp"
#include "image/image.hpp"

namespace ffsva::detect {

struct SegmentationParams {
  double blur_sigma = 1.0;
  std::uint8_t diff_threshold = 26;  ///< On the max-channel |frame-bg| map.
  int min_pixels = 40;               ///< Blobs below this are noise.
  bool morph_open = true;            ///< Erode+dilate to kill speckle.
};

/// Per-pixel max-channel absolute difference: a 1-channel motion map.
image::Image motion_map(const image::Image& frame, const image::Image& background);

/// Segment the foreground of `frame` against `background`.
std::vector<image::Component> foreground_components(const image::Image& frame,
                                                    const image::Image& background,
                                                    const SegmentationParams& params);

struct ClassifierParams {
  /// Aspect (w/h) at or below which a blob is a person.
  double person_max_aspect = 0.95;
  /// Blob width above this fraction of frame width is a bus.
  double bus_min_width_frac = 0.22;
  /// If > 0, a person-class blob is credited round(pixels / this) instances
  /// (mass-based crowd counting). Stream specialization measures the
  /// singleton person area and fills this in; 0 disables splitting.
  double person_split_area = 0.0;
  /// Cap on instances credited to one blob.
  int max_instances_per_blob = 8;
  /// A blob with aspect in (0.95, person_max_aspect] is only a person
  /// (a merged crowd) if it carries at least this mass; below it, a wide
  /// light blob is some other small moving thing. 0 = no mass requirement.
  double person_wide_min_area = 0.0;
  /// Plausible minimum mass of a vehicle blob. Car/bus detections below it
  /// have their confidence quadratically suppressed, so a low-contrast
  /// speck (a half-camouflaged pedestrian's head, sensor noise) cannot
  /// register as a vehicle. 0 disables the penalty.
  double car_min_area = 0.0;
};

/// Classify a blob by its geometry; confidence grows with blob mass.
Detection classify_component(const image::Component& comp, int frame_w, int frame_h,
                             int min_pixels, const ClassifierParams& params);

}  // namespace ffsva::detect
