// relaxed-ok: per-stream frame/fault counters — including the codec-aware
// ingest counters of the hinted fast path (decode_full/decode_skipped/
// hint_passes/hint_fallbacks) — are single-logical-writer cells snapshotted
// mid-run (approximate by contract) and frozen after the stage joins; the
// claim/quarantine edges that need ordering use acq_rel — see the Stream
// struct comments below.
#include "core/pipeline.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <thread>

#include "detect/crop_pack.hpp"
#include "detect/sdd.hpp"
#include "runtime/bounded_queue.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/rate_limiter.hpp"
#include "runtime/stopwatch.hpp"
#include "runtime/thread_pool.hpp"
#include "telemetry/spans.hpp"

namespace ffsva::core {

namespace {
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// A frame in flight, stamped with its ingest time.
struct Item {
  video::Frame frame;
  Clock::time_point ingest;
  /// Stages this frame wedged (its model call was cancelled by the
  /// watchdog). A frame that wedges two stages is poisoned: it is dropped
  /// regardless of the degrade policy, so one pathological input cannot
  /// keep restarting stage after stage (DESIGN.md Section 14).
  int wedges = 0;
};

telemetry::TraceBuffer& trace() { return telemetry::TraceBuffer::global(); }
}  // namespace

/// A survivor bound for the reference stage: the frame plus the candidate
/// boxes T-YOLO detected in it (frame coordinates). The candidates are what
/// RefMode::kCropPack consolidates; an empty list (e.g. a kBypass-degraded
/// frame that was never actually detected) routes the frame to the
/// full-frame fallback, so it is still fully vetted.
struct FfsVaInstance::RefEntry {
  int stream = 0;
  Item item;
  std::vector<image::Box> candidates;
};

const char* to_string(BatchPolicy p) {
  switch (p) {
    case BatchPolicy::kStatic: return "static";
    case BatchPolicy::kFeedback: return "feedback";
    case BatchPolicy::kDynamic: return "dynamic";
  }
  return "?";
}

const char* to_string(DegradePolicy p) {
  switch (p) {
    case DegradePolicy::kDrop: return "drop";
    case DegradePolicy::kBypass: return "bypass";
  }
  return "?";
}

const char* to_string(RefMode m) {
  switch (m) {
    case RefMode::kSingle: return "single";
    case RefMode::kBatch: return "batch";
    case RefMode::kCropPack: return "crop_pack";
  }
  return "?";
}

const char* to_string(DecodePolicy p) {
  switch (p) {
    case DecodePolicy::kFull: return "full";
    case DecodePolicy::kHinted: return "hinted";
  }
  return "?";
}

StreamStats InstanceStats::aggregate() const {
  StreamStats agg;
  for (const auto& s : streams) {
    agg.prefetch.in += s.prefetch.in;
    agg.prefetch.passed += s.prefetch.passed;
    agg.sdd.in += s.sdd.in;
    agg.sdd.passed += s.sdd.passed;
    agg.snm.in += s.snm.in;
    agg.snm.passed += s.snm.passed;
    agg.tyolo.in += s.tyolo.in;
    agg.tyolo.passed += s.tyolo.passed;
    agg.ref.in += s.ref.in;
    agg.ref.passed += s.ref.passed;
    agg.dropped_at_ingest += s.dropped_at_ingest;
    agg.latency_ms.merge(s.latency_ms);
    agg.ingest_fps += s.ingest_fps;
    agg.ingest.decode_full += s.ingest.decode_full;
    agg.ingest.decode_skipped += s.ingest.decode_skipped;
    agg.ingest.hint_passes += s.ingest.hint_passes;
    agg.ingest.hint_fallbacks += s.ingest.hint_fallbacks;
    agg.ingest.compression_ratio =
        std::max(agg.ingest.compression_ratio, s.ingest.compression_ratio);
    agg.ingest.decode_ms.merge(s.ingest.decode_ms);
    agg.fault.decode_errors += s.fault.decode_errors;
    agg.fault.retries += s.fault.retries;
    agg.fault.restarts += s.fault.restarts;
    agg.fault.degraded_frames += s.fault.degraded_frames;
    agg.fault.discarded_frames += s.fault.discarded_frames;
    agg.fault.cancelled_calls += s.fault.cancelled_calls;
    agg.fault.poisoned_frames += s.fault.poisoned_frames;
    agg.fault.quarantined = agg.fault.quarantined || s.fault.quarantined;
  }
  return agg;
}

struct FfsVaInstance::Stream {
  int id = 0;
  std::unique_ptr<video::FrameSource> source;
  detect::StreamModels models;
  FfsVaConfig cfg;  ///< Copy: the prefetch loop reads config without touching `this`.

  runtime::BoundedQueue<Item> sdd_q;
  runtime::BoundedQueue<Item> snm_q;
  runtime::BoundedQueue<Item> tyolo_q;

  StreamStats stats;

  /// Everything the prefetch thread writes lives here as relaxed atomics:
  /// snapshot() reads them mid-run (approximate by contract) and run()
  /// freezes them into `stats` once the thread is joined.
  std::atomic<std::uint64_t> prefetch_in{0};
  std::atomic<std::uint64_t> prefetch_passed{0};
  std::atomic<std::uint64_t> dropped_ingest{0};
  std::atomic<std::uint64_t> decode_errors{0};
  std::atomic<std::uint64_t> retries{0};
  std::atomic<std::uint64_t> restarts{0};
  std::atomic<double> ingest_wall_sec{0.0};

  /// Codec-aware ingest (DecodePolicy::kHinted, DESIGN.md §13). When
  /// `fused_ingest` is set — decided in run() before any thread starts,
  /// read-only afterwards — this stream's prefetch thread owns the whole
  /// SDD stage: it consults the source's residual hints, decodes only the
  /// frames the hint could not decide, runs pixel SDD on the fallbacks,
  /// and feeds snm_q directly (closing it on exit). The SDD worker pool
  /// never serves a fused stream (sdd_done is pre-set), so the done/close
  /// handshake keeps exactly one closer. The counters below follow the
  /// prefetch-thread contract above: relaxed Stream atomics surfaced as
  /// gauges, keeping the loop free of instance coupling.
  /// decode_full/decode_ms also move on the kFull path, so the decode
  /// schema reads consistently across policies.
  bool fused_ingest = false;
  std::atomic<std::uint64_t> decode_full{0};
  std::atomic<std::uint64_t> decode_skipped{0};
  std::atomic<std::uint64_t> hint_passes{0};
  std::atomic<std::uint64_t> hint_fallbacks{0};
  /// Decode-stage latency. AtomicHistogram (not runtime::Histogram):
  /// snapshot gauges read it live while the prefetch thread records, so
  /// recording must be lock-free and thread-safe.
  telemetry::AtomicHistogram decode_ms;

  /// Degrade / quarantine accounting, written by whichever stage thread
  /// observes the event (SDD worker, GPU0 executor, reference thread).
  std::atomic<std::uint64_t> degraded{0};
  std::atomic<std::uint64_t> discarded{0};
  std::atomic<bool> quarantined{false};

  /// Hand-off support (DESIGN.md §15). `ingest_end` is the end_stream()
  /// cut: the prefetch loop treats it as end-of-source at its next
  /// iteration. `ingest_done` is set (once) when the prefetch loop exits.
  /// `terminated` ticks exactly once per ingested frame, at the site where
  /// the frame's outcome becomes durable (emitted / dropped / discarded /
  /// poisoned / lost at ingest) — `ingest_done && terminated == prefetch_in`
  /// is the quiescence predicate stream_quiesced() answers.
  std::atomic<bool> ingest_end{false};
  std::atomic<bool> ingest_done{false};
  std::atomic<std::uint64_t> terminated{0};

  /// Escalation accounting (DESIGN.md Section 14): model calls serving this
  /// stream that the watchdog cancelled (written by the watchdog thread)
  /// and frames of this stream dropped as poisoned after wedging two
  /// stages (written by the stage thread that observed the second wedge).
  std::atomic<std::uint64_t> cancels{0};
  std::atomic<std::uint64_t> poisoned{0};

  /// The decode call currently in flight on this stream's prefetch thread.
  /// The watchdog cancels it when it overruns model_call_timeout_ms, and
  /// quarantine cancels it unconditionally — that cancel is what makes the
  /// prefetch join bounded (the thread is joined, never detached).
  runtime::InflightCall prefetch_call;

  /// Per-stage frame counters as relaxed atomics so snapshot() can read
  /// them while the stage threads run. Each is still written by one logical
  /// owner at a time (SDD claim holder / GPU0 executor / reference thread);
  /// the atomics buy mid-run readability, not write coordination. run()
  /// freezes them into `stats` once the stage threads are joined.
  std::atomic<std::uint64_t> sdd_in{0}, sdd_passed{0};
  std::atomic<std::uint64_t> snm_in{0}, snm_passed{0};
  std::atomic<std::uint64_t> tyolo_in{0}, tyolo_passed{0};
  std::atomic<std::uint64_t> ref_in{0}, ref_passed{0};

  /// Liveness of the source: busy only across source->next() — blocking on
  /// the SDD feedback queue is healthy backpressure and reads as idle.
  runtime::Heartbeat hb;
  runtime::StopToken stop;  ///< Copy of the instance token.

  /// SDD worker-pool coordination: at most one worker serves this stream at
  /// a time (claim), which both preserves per-stream FIFO order into the
  /// SNM queue and serializes access to the SDD counters/histogram. The
  /// acq_rel claim handoff carries the happens-before edge between
  /// consecutive owners. `sdd_done` is set (exactly once, under the claim)
  /// when the SDD queue is closed and drained.
  std::atomic<bool> sdd_claimed{false};
  std::atomic<bool> sdd_done{false};

  /// Per-stage latency histograms. Each is written by exactly one logical
  /// owner (SDD claim holder / GPU0 executor / reference thread) and merged
  /// into stats.latency_ms after the stage threads are joined — stages on
  /// different threads must not share one histogram.
  runtime::Histogram lat_sdd;
  runtime::Histogram lat_snm;
  runtime::Histogram lat_tyolo;
  runtime::Histogram lat_ref;
  /// Ingest-to-drop latency of frames the reference stage dropped on error.
  /// Separate from lat_ref so the reference-stage latency distribution
  /// describes only frames the model actually evaluated and emitted; still
  /// merged into stats.latency_ms (every ingested frame terminates exactly
  /// once). Written by the reference thread only.
  runtime::Histogram lat_drop;

  Stream(int id_, std::unique_ptr<video::FrameSource> src, detect::StreamModels m,
         const FfsVaConfig& cfg_)
      : id(id_), source(std::move(src)), models(std::move(m)), cfg(cfg_),
        // The live-capture ring buffer must absorb bursts without blocking
        // the camera; offline the decoder throttles on the SDD threshold.
        // Sized for the larger of the two so one queue serves both modes.
        sdd_q(static_cast<std::size_t>(std::max(cfg_.ingest_buffer,
                                                cfg_.capacity(cfg_.sdd_queue_depth)))),
        snm_q(static_cast<std::size_t>(cfg_.capacity(cfg_.snm_queue_depth))),
        tyolo_q(static_cast<std::size_t>(cfg_.capacity(cfg_.tyolo_queue_depth))) {}
};

struct FfsVaInstance::TYoloShared {
  runtime::BoundedQueue<RefEntry> ref_q;
  AdmissionController admission;
  explicit TYoloShared(const FfsVaConfig& cfg)
      : ref_q(static_cast<std::size_t>(cfg.capacity(cfg.ref_queue_depth))),
        admission(cfg.admit_tyolo_fps, cfg.admit_window_sec) {}
};

FfsVaInstance::FfsVaInstance(FfsVaConfig config)
    : config_(config), tyolo_shared_(std::make_unique<TYoloShared>(config)) {}

FfsVaInstance::~FfsVaInstance() = default;

int FfsVaInstance::add_stream(std::unique_ptr<video::FrameSource> source,
                              detect::StreamModels models) {
  runtime::MutexLock lk(streams_mu_);
  const int id = nstreams_.load(std::memory_order_relaxed);
  auto s = std::make_shared<Stream>(id, std::move(source), std::move(models),
                                    config_);
  s->stop = stop_;
  if (!run_called_.load(std::memory_order_acquire)) {
    // Classic pre-run registration: single caller, no stage threads yet.
    streams_.push_back(std::move(s));
    nstreams_.store(id + 1, std::memory_order_release);
    return id;
  }
  // Dynamic attach to a live engine (DESIGN.md §15).
  if (!engine_live_ || stop_.stop_requested()) {
    throw std::logic_error(
        "FfsVaInstance::add_stream: engine is not accepting streams "
        "(run finished or stopping)");
  }
  if (!config_.serve_until_stopped) {
    throw std::logic_error(
        "FfsVaInstance::add_stream: mid-run add requires "
        "config.serve_until_stopped");
  }
  if (static_cast<std::size_t>(id) >= streams_.capacity()) {
    throw std::logic_error(
        "FfsVaInstance::add_stream: config.max_streams slots exhausted");
  }
  // Same pre-thread setup run() performs for the initial streams: wire the
  // stage wakeups and resolve the fused hinted-ingest path before the
  // stream is visible to any stage worker.
  s->sdd_q.set_waiter(&sdd_work_);
  s->snm_q.set_waiter(&gpu0_work_);
  s->fused_ingest = run_hinted_ && s->source->has_hints();
  if (s->fused_ingest) s->sdd_done.store(true, std::memory_order_release);
  std::shared_ptr<Stream> sp = s;
  // Publish: capacity is reserved, so push_back cannot reallocate; the
  // release store pairs with num_streams()' acquire load, making the new
  // slot visible to stage scans only once fully constructed.
  streams_.push_back(std::move(s));
  nstreams_.store(id + 1, std::memory_order_release);
  late_prefetch_.emplace_back(&FfsVaInstance::prefetch_loop, std::move(sp),
                              run_online_, run_affinity_);
  // Wake stage workers parked on "every stream done" in serve mode.
  sdd_work_.notify();
  gpu0_work_.notify();
  return id;
}

void FfsVaInstance::end_stream(int stream_id) {
  runtime::MutexLock lk(streams_mu_);
  if (stream_id < 0 || stream_id >= nstreams_.load(std::memory_order_acquire)) {
    throw std::out_of_range("FfsVaInstance::end_stream: unknown stream id");
  }
  Stream& s = *streams_[static_cast<std::size_t>(stream_id)];
  s.ingest_end.store(true, std::memory_order_release);
}

bool FfsVaInstance::stream_quiesced(int stream_id) const {
  if (stream_id < 0 || stream_id >= num_streams()) {
    throw std::out_of_range("FfsVaInstance::stream_quiesced: unknown stream id");
  }
  const Stream& s = *streams_[static_cast<std::size_t>(stream_id)];
  if (!s.ingest_done.load(std::memory_order_acquire)) return false;
  // ingest_done is set after the prefetch loop's last counter write, and
  // every terminal tick happens after the outcome it records — so once the
  // two counters agree the stream's results are complete and stable.
  return s.terminated.load(std::memory_order_acquire) >=
         s.prefetch_in.load(std::memory_order_acquire);
}

void FfsVaInstance::set_output_sink(std::function<void(const OutputEvent&)> sink) {
  sink_ = std::move(sink);
}

int FfsVaInstance::sdd_pool_size(int eligible_streams) const {
  if (eligible_streams <= 0) return 0;
  const int w = config_.sdd_workers > 0 ? config_.sdd_workers
                                        : runtime::compute_parallelism();
  return std::clamp(w, 1, eligible_streams);
}

bool FfsVaInstance::enable_metrics_export(const std::string& path,
                                          std::string label) {
  // Validate the sink now (enable is the caller's error boundary); the
  // exporter reopens in append mode when run() starts.
  std::ofstream probe(path, std::ios::app);
  if (!probe) return false;
  probe.close();
  metrics_path_ = path;
  metrics_sink_ = nullptr;
  metrics_label_ = std::move(label);
  return true;
}

void FfsVaInstance::enable_metrics_export(std::ostream* sink,
                                          std::string label) {
  metrics_sink_ = sink;
  metrics_path_.clear();
  metrics_label_ = std::move(label);
}

bool FfsVaInstance::export_trace(const std::string& path) const {
  return trace().write_chrome_trace(path);
}

void FfsVaInstance::wire_metrics() {
  hot_.sdd_in = &metrics_.counter("sdd.in");
  hot_.sdd_passed = &metrics_.counter("sdd.passed");
  hot_.snm_in = &metrics_.counter("snm.in");
  hot_.snm_passed = &metrics_.counter("snm.passed");
  hot_.tyolo_in = &metrics_.counter("tyolo.in");
  hot_.tyolo_passed = &metrics_.counter("tyolo.passed");
  hot_.ref_in = &metrics_.counter("ref.in");
  hot_.ref_passed = &metrics_.counter("ref.passed");
  hot_.drop_sdd = &metrics_.counter("drop.sdd");
  hot_.drop_snm = &metrics_.counter("drop.snm");
  hot_.drop_tyolo = &metrics_.counter("drop.tyolo");
  hot_.drop_ref = &metrics_.counter("drop.ref");
  hot_.snm_batches = &metrics_.counter("executor.snm_batches");
  hot_.tyolo_picks = &metrics_.counter("executor.tyolo_picks");
  hot_.batch_size = &metrics_.histogram("executor.batch_size");
  hot_.tyolo_take = &metrics_.histogram("executor.tyolo_take");
  hot_.output_latency_ms = &metrics_.histogram("latency.output_ms");
  hot_.ref_batches = &metrics_.counter("executor.ref_batches");
  hot_.ref_batch_size = &metrics_.histogram("executor.ref_batch_size");
  hot_.crops_per_mosaic = &metrics_.histogram("ref.crops_per_mosaic");
  hot_.mosaic_fill = &metrics_.histogram("ref.mosaic_fill");
  hot_.ref_full_frame = &metrics_.counter("ref.full_frame_fallbacks");
  hot_.ref_seam_suppressed = &metrics_.counter("ref.seam_suppressed");
  hot_.drop_latency_ms = &metrics_.histogram("latency.drop_ms");
  hot_.recovery_ms = &metrics_.histogram("latency.recovery_ms");

  // Prefetch/fault/supervision state lives in Stream and instance atomics
  // (single-writer cells the prefetch loop and watchdog tick without
  // touching the registry), surfaced as gauges polled at snapshot time.
  // Every gauge below scans the stream slots bounded by num_streams(), not
  // the vector's size: the count is the release/acquire publication point
  // for dynamically added streams (see the streams_ member comment).
  const auto sum = [this](auto member) {
    return [this, member]() {
      std::uint64_t total = 0;
      const int n = num_streams();
      for (int i = 0; i < n; ++i) {
        total += ((*streams_[static_cast<std::size_t>(i)]).*member)
                     .load(std::memory_order_relaxed);
      }
      return static_cast<double>(total);
    };
  };
  metrics_.gauge("prefetch.in", sum(&Stream::prefetch_in));
  metrics_.gauge("prefetch.passed", sum(&Stream::prefetch_passed));
  metrics_.gauge("drop.ingest", sum(&Stream::dropped_ingest));
  // Codec-aware ingest (same schema, same registry; gauges so the prefetch
  // loop stays registry-free and its facts live in stream atomics — see
  // above).
  metrics_.gauge("decode.full", sum(&Stream::decode_full));
  metrics_.gauge("decode.skipped", sum(&Stream::decode_skipped));
  metrics_.gauge("sdd.hint_pass", sum(&Stream::hint_passes));
  metrics_.gauge("sdd.hint_fallback", sum(&Stream::hint_fallbacks));
  const auto decode_quantile = [this](double q) {
    return [this, q]() {
      telemetry::HistogramSnapshot merged;
      const int n = num_streams();
      for (int i = 0; i < n; ++i) {
        merged.merge(streams_[static_cast<std::size_t>(i)]->decode_ms.snapshot());
      }
      return merged.count ? merged.quantile(q) : 0.0;
    };
  };
  metrics_.gauge("latency.decode_p50_ms", decode_quantile(0.5));
  metrics_.gauge("latency.decode_p99_ms", decode_quantile(0.99));
  metrics_.gauge("fault.decode_errors", sum(&Stream::decode_errors));
  metrics_.gauge("fault.retries", sum(&Stream::retries));
  metrics_.gauge("fault.restarts", sum(&Stream::restarts));
  metrics_.gauge("fault.degraded_frames", sum(&Stream::degraded));
  metrics_.gauge("fault.discarded_frames", sum(&Stream::discarded));
  metrics_.gauge("fault.cancelled_calls", sum(&Stream::cancels));
  metrics_.gauge("fault.poisoned_frames", sum(&Stream::poisoned));
  metrics_.gauge("streams.quarantined", [this] {
    double q = 0;
    const int n = num_streams();
    for (int i = 0; i < n; ++i) {
      if (streams_[static_cast<std::size_t>(i)]->quarantined.load(
              std::memory_order_relaxed)) {
        ++q;
      }
    }
    return q;
  });
  metrics_.gauge("supervise.stall_ticks", [this] {
    return static_cast<double>(
        stage_stall_ticks_.load(std::memory_order_relaxed));
  });
  // Escalation rollups (DESIGN.md Section 14) — same schema, same registry.
  metrics_.gauge("supervision.cancels", [this] {
    return static_cast<double>(cancels_.load(std::memory_order_relaxed));
  });
  metrics_.gauge("supervision.stage_restarts", [this] {
    return static_cast<double>(stage_restarts_.load(std::memory_order_relaxed));
  });
  metrics_.gauge("supervision.poisoned_frames", [this] {
    return static_cast<double>(poisoned_frames_.load(std::memory_order_relaxed));
  });
  const auto depth_sum = [this](runtime::BoundedQueue<Item> Stream::* q) {
    return [this, q]() {
      std::size_t total = 0;
      const int n = num_streams();
      for (int i = 0; i < n; ++i) {
        total += ((*streams_[static_cast<std::size_t>(i)]).*q).depth();
      }
      return static_cast<double>(total);
    };
  };
  metrics_.gauge("queue.sdd", depth_sum(&Stream::sdd_q));
  metrics_.gauge("queue.snm", depth_sum(&Stream::snm_q));
  metrics_.gauge("queue.tyolo", depth_sum(&Stream::tyolo_q));
  metrics_.gauge("queue.ref",
                 [this] { return static_cast<double>(tyolo_shared_->ref_q.depth()); });
}

InstanceSnapshot FfsVaInstance::snapshot() const {
  InstanceSnapshot snap;
  snap.running = running_.load(std::memory_order_acquire);
  const std::int64_t t0 = run_t0_ns_.load(std::memory_order_relaxed);
  if (t0 > 0) {
    const auto now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                         Clock::now().time_since_epoch())
                         .count();
    snap.t_sec = static_cast<double>(now - t0) * 1e-9;
  }
  const int n = num_streams();
  snap.streams.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const Stream& s = *streams_[static_cast<std::size_t>(i)];
    StreamSnapshot ss;
    ss.id = s.id;
    ss.terminated = s.terminated.load(std::memory_order_relaxed);
    ss.ingest_done = s.ingest_done.load(std::memory_order_acquire);
    ss.prefetch_in = s.prefetch_in.load(std::memory_order_relaxed);
    ss.prefetch_passed = s.prefetch_passed.load(std::memory_order_relaxed);
    ss.dropped_at_ingest = s.dropped_ingest.load(std::memory_order_relaxed);
    ss.sdd_in = s.sdd_in.load(std::memory_order_relaxed);
    ss.sdd_passed = s.sdd_passed.load(std::memory_order_relaxed);
    ss.snm_in = s.snm_in.load(std::memory_order_relaxed);
    ss.snm_passed = s.snm_passed.load(std::memory_order_relaxed);
    ss.tyolo_in = s.tyolo_in.load(std::memory_order_relaxed);
    ss.tyolo_passed = s.tyolo_passed.load(std::memory_order_relaxed);
    ss.ref_in = s.ref_in.load(std::memory_order_relaxed);
    ss.ref_passed = s.ref_passed.load(std::memory_order_relaxed);
    ss.sdd_queue_depth = s.sdd_q.depth();
    ss.snm_queue_depth = s.snm_q.depth();
    ss.tyolo_queue_depth = s.tyolo_q.depth();
    ss.decode_full = s.decode_full.load(std::memory_order_relaxed);
    ss.decode_skipped = s.decode_skipped.load(std::memory_order_relaxed);
    ss.hint_passes = s.hint_passes.load(std::memory_order_relaxed);
    ss.hint_fallbacks = s.hint_fallbacks.load(std::memory_order_relaxed);
    if (const auto cs = s.source->codec_stats()) {
      ss.compression_ratio = cs->compression_ratio();
    }
    ss.fault.decode_errors = s.decode_errors.load(std::memory_order_relaxed);
    ss.fault.retries = s.retries.load(std::memory_order_relaxed);
    ss.fault.restarts = s.restarts.load(std::memory_order_relaxed);
    ss.fault.degraded_frames = s.degraded.load(std::memory_order_relaxed);
    ss.fault.discarded_frames = s.discarded.load(std::memory_order_relaxed);
    ss.fault.cancelled_calls = s.cancels.load(std::memory_order_relaxed);
    ss.fault.poisoned_frames = s.poisoned.load(std::memory_order_relaxed);
    ss.fault.quarantined = s.quarantined.load(std::memory_order_acquire);

    if (ss.fault.quarantined) {
      ++snap.health.quarantined_streams;
    } else if (ss.fault.any()) {
      ++snap.health.degraded_streams;
    } else {
      ++snap.health.healthy_streams;
    }
    snap.health.decode_errors += ss.fault.decode_errors;
    snap.health.retries += ss.fault.retries;
    snap.health.restarts += ss.fault.restarts;
    snap.health.degraded_frames += ss.fault.degraded_frames;
    snap.health.discarded_frames += ss.fault.discarded_frames;
    snap.streams.push_back(std::move(ss));
  }
  snap.ref_queue_depth = tyolo_shared_->ref_q.depth();
  snap.outputs = outputs_count_.load(std::memory_order_relaxed);
  snap.health.cancels = cancels_.load(std::memory_order_relaxed);
  snap.health.stage_restarts = stage_restarts_.load(std::memory_order_relaxed);
  snap.health.poisoned_frames = poisoned_frames_.load(std::memory_order_relaxed);
  snap.health.stage_stall_ticks =
      stage_stall_ticks_.load(std::memory_order_relaxed);
  snap.health.stopped = stop_.stop_requested();
  snap.health.deadline_hit = deadline_hit_.load(std::memory_order_relaxed);
  return snap;
}

void FfsVaInstance::stop() {
  stop_.request_stop();
  // Closing the ingest queues unblocks every prefetch thread (a blocked
  // push fails fast on a closed queue); the close cascades down the stages
  // as each drains, so in-flight frames still complete. A fused stream's
  // prefetch thread pushes into snm_q instead, so that is the queue whose
  // close unblocks it (its sdd_q is unused but closed for uniformity).
  // Serialized on streams_mu_ against add_stream: a stream either publishes
  // before this close sweep (and is closed here) or its add observes
  // stop_requested and is rejected — no stream can miss the close.
  {
    runtime::MutexLock lk(streams_mu_);
    const int n = nstreams_.load(std::memory_order_acquire);
    for (int i = 0; i < n; ++i) {
      Stream& s = *streams_[static_cast<std::size_t>(i)];
      s.sdd_q.close();
      if (s.fused_ingest) s.snm_q.close();
    }
  }
  // Wake stage workers parked on "every stream done" (serve mode) so they
  // observe the stop and wind down.
  sdd_work_.notify();
  gpu0_work_.notify();
}

void FfsVaInstance::prefetch_loop(std::shared_ptr<Stream> s, bool online,
                                  int affinity_base) {
  const FfsVaConfig& cfg = s->cfg;
  if (affinity_base >= 0) {
    // Pin ingest to its own core so decode stops migrating across — and
    // fighting with — the compute pool. Best effort: on failure the thread
    // simply stays unpinned.
    runtime::pin_current_thread(affinity_base + s->id);
  }
  runtime::RateLimiter limiter(cfg.online_fps, /*burst=*/2.0);
  runtime::Stopwatch watch;
  const auto frame_interval =
      std::chrono::duration<double>(1.0 / cfg.online_fps);

  // Compressed-domain fast path (fused ingest only): every piece of hint
  // state lives on this thread; pixel-SDD fallbacks re-anchor the chain.
  std::optional<detect::CompressedSdd> csdd;
  if (s->fused_ingest) {
    csdd.emplace(s->models.sdd->config().metric,
                 s->models.sdd->config().delta_diff, cfg.sdd_hint_relax);
  }

  const auto aborted = [&s] {
    // An end_stream() cut reads as end-of-source: the loop winds down
    // normally and the stream's in-flight frames drain through the cascade.
    return s->stop.stop_requested() ||
           s->quarantined.load(std::memory_order_acquire) ||
           s->ingest_end.load(std::memory_order_acquire);
  };
  // Exponential backoff, sliced so stop/quarantine aborts it promptly.
  const auto backoff = [&](int attempt) {
    std::int64_t ms = static_cast<std::int64_t>(std::max(0, cfg.source_backoff_ms))
                      << std::min(attempt, 20);
    ms = std::min<std::int64_t>(ms, 100);
    const auto until = Clock::now() + std::chrono::milliseconds(ms);
    while (Clock::now() < until && !aborted()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };

  int consecutive_retries = 0;
  int restarts_used = 0;
  while (!aborted()) {
    // Consult the hint *before* paying any decode: a frame the hint proves
    // SDD would drop is skipped outright — the reader only moves its
    // cursor; reconstruction re-syncs lazily at the next materialized
    // frame (video/codec.hpp). The skipped frame still terminates exactly
    // once, with the same conservation accounting as a pixel-SDD drop.
    auto hint_decision = detect::HintDecision::kFallback;
    if (csdd) {
      if (const video::FrameHint* hint = s->source->peek_hint()) {
        hint_decision = csdd->decide(*hint);
      }
      if (hint_decision == detect::HintDecision::kSkip) {
        const auto t0 = Clock::now();
        if (!s->source->skip_next()) break;  // end of stream
        s->decode_skipped.fetch_add(1, std::memory_order_relaxed);
        s->prefetch_in.fetch_add(1, std::memory_order_relaxed);
        s->prefetch_passed.fetch_add(1, std::memory_order_relaxed);
        s->sdd_in.fetch_add(1, std::memory_order_relaxed);
        const double ms = ms_since(t0);
        s->decode_ms.record(ms);
        s->lat_sdd.add(ms);
        s->terminated.fetch_add(1, std::memory_order_release);
        continue;
      }
    }
    std::optional<video::Frame> f;
    const auto decode_t0 = Clock::now();
    try {
      s->hb.busy();  // a hung decode is what the watchdog must see
      {
        // Spans go to the process-global buffer, never the instance: the
        // prefetch loop touches only its Stream (see prefetch_loop's decl).
        telemetry::ScopedSpan sp(
            trace(), "decode", telemetry::Stage::kPrefetch, s->id,
            static_cast<std::int64_t>(
                s->prefetch_in.load(std::memory_order_relaxed)));
        // Register the decode as this stream's in-flight call so the
        // watchdog can cancel it if it wedges (model_call_timeout_ms, or
        // unconditionally at quarantine to keep the join bounded).
        runtime::ModelCallGuard guard(
            s->prefetch_call, s->id,
            static_cast<std::int64_t>(
                s->prefetch_in.load(std::memory_order_relaxed)));
        f = s->source->next();
      }
      s->hb.idle();
    } catch (const runtime::CancelledError&) {
      // The watchdog cancelled a wedged decode. Quarantine means the stream
      // is already being torn down — just exit. Otherwise escalate like a
      // non-transient decode fault: restart the source under the restart
      // budget, and past it end the stream. (The cancel itself was counted
      // by the watchdog that issued it.)
      s->hb.idle();
      if (aborted()) break;
      s->decode_errors.fetch_add(1, std::memory_order_relaxed);
      if (restarts_used < cfg.source_max_restarts && s->source->restart()) {
        s->restarts.fetch_add(1, std::memory_order_relaxed);
        backoff(restarts_used++);
        consecutive_retries = 0;
        continue;
      }
      break;
    } catch (const video::SourceError& e) {
      s->hb.idle();
      s->decode_errors.fetch_add(1, std::memory_order_relaxed);
      if (e.transient() && consecutive_retries < cfg.source_max_retries) {
        // Transient contract (video/source.hpp): the source position is
        // unchanged, so retrying resumes with zero frame loss.
        s->retries.fetch_add(1, std::memory_order_relaxed);
        backoff(consecutive_retries++);
        continue;
      }
      if (restarts_used < cfg.source_max_restarts && s->source->restart()) {
        s->restarts.fetch_add(1, std::memory_order_relaxed);
        backoff(restarts_used++);
        consecutive_retries = 0;
        continue;
      }
      break;  // unrecoverable: end this stream; downstream drains normally
    } catch (...) {
      s->hb.idle();
      s->decode_errors.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    if (!f) break;  // normal end of stream
    consecutive_retries = 0;
    s->decode_full.fetch_add(1, std::memory_order_relaxed);
    s->decode_ms.record(ms_since(decode_t0));
    s->prefetch_in.fetch_add(1, std::memory_order_relaxed);
    Item item{std::move(*f), Clock::now()};
    if (csdd) {
      // Fused SDD stage: the hint either decided kPass outright or fell
      // back to the pixel SDD, whose distance re-anchors the chain. The
      // frame was ingested either way; survivors go straight to snm_q.
      s->sdd_in.fetch_add(1, std::memory_order_relaxed);
      bool pass = true;
      if (hint_decision == detect::HintDecision::kPass) {
        s->hint_passes.fetch_add(1, std::memory_order_relaxed);
      } else {
        s->hint_fallbacks.fetch_add(1, std::memory_order_relaxed);
        try {
          telemetry::ScopedSpan sp(trace(), "sdd.filter", telemetry::Stage::kSdd,
                                   s->id, item.frame.index);
          runtime::ModelCallGuard guard(s->prefetch_call, s->id,
                                        item.frame.index);
          const double dist = s->models.sdd->distance(item.frame.image);
          csdd->anchor(dist);
          pass = dist > s->models.sdd->config().delta_diff;
        } catch (const runtime::CancelledError&) {
          // A wedged fused pixel-SDD the watchdog cancelled: same per-frame
          // degrade contract as a throwing SDD, plus the wedge mark — the
          // frame is poisoned if it wedges a second stage downstream.
          csdd->invalidate();
          ++item.wedges;
          s->degraded.fetch_add(1, std::memory_order_relaxed);
          pass = cfg.degrade_policy == DegradePolicy::kBypass;
        } catch (...) {
          // Same per-frame degrade contract as the SDD worker pool; an
          // unmeasured frame leaves the chain unanchored.
          csdd->invalidate();
          s->degraded.fetch_add(1, std::memory_order_relaxed);
          pass = cfg.degrade_policy == DegradePolicy::kBypass;
        }
      }
      if (pass) {
        s->sdd_passed.fetch_add(1, std::memory_order_relaxed);
        // Blocking push: the SNM feedback-queue threshold throttles ingest
        // directly — with SDD fused into prefetch, this IS the feedback
        // edge the paper's bounded queues implement.
        if (!s->snm_q.push(std::move(item))) {
          // Closed under us (stop/quarantine) — same accounting as the
          // SDD worker's failed handoff.
          s->discarded.fetch_add(1, std::memory_order_relaxed);
          s->terminated.fetch_add(1, std::memory_order_release);
          break;
        }
      } else {
        s->lat_sdd.add(ms_since(item.ingest));
        s->terminated.fetch_add(1, std::memory_order_release);
      }
      s->prefetch_passed.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (online) {
      limiter.acquire();
      // Overload behaviour: a live camera cannot block — if the pipeline
      // cannot absorb the frame within one frame time, the frame is lost
      // and counted (the admission controller re-forwards such streams).
      if (!s->sdd_q.push_for(std::move(item), frame_interval)) {
        if (s->sdd_q.closed()) {
          // stop()/quarantine closed it under us; the ingested frame is lost.
          s->discarded.fetch_add(1, std::memory_order_relaxed);
          s->terminated.fetch_add(1, std::memory_order_release);
          break;
        }
        s->dropped_ingest.fetch_add(1, std::memory_order_relaxed);
        s->terminated.fetch_add(1, std::memory_order_release);
        continue;
      }
    } else {
      if (!s->sdd_q.push(std::move(item))) {
        // Queue closed underneath us (stop/quarantine): the frame was
        // already counted into prefetch_in, so it must terminate here.
        s->discarded.fetch_add(1, std::memory_order_relaxed);
        s->terminated.fetch_add(1, std::memory_order_release);
        break;
      }
    }
    s->prefetch_passed.fetch_add(1, std::memory_order_relaxed);
  }
  s->ingest_wall_sec.store(watch.elapsed_sec(), std::memory_order_relaxed);
  s->sdd_q.close();
  // A fused stream's SDD stage ends with its prefetch thread, so the
  // end-of-stream edge the executor waits for is snm_q's close — exactly
  // what the SDD pool would have published for a non-fused stream.
  if (s->fused_ingest) s->snm_q.close();
  // Ordered after the loop's last counter write: once a reader observes
  // ingest_done, prefetch_in is final (half of the quiescence predicate).
  s->ingest_done.store(true, std::memory_order_release);
}

void FfsVaInstance::sdd_worker_entry(int worker) {
  int restarts = 0;
  for (;;) {
    if (sdd_worker_loop(worker, restarts < config_.stage_max_restarts)) return;
    // A watchdog cancel unwound this worker mid-call. Re-enter after a
    // bounded backoff; the time from the cancel to serving again is the
    // recovery latency.
    ++restarts;
    stage_restarts_.fetch_add(1, std::memory_order_relaxed);
    stage_backoff(restarts);
    const std::int64_t cancelled_at =
        sdd_call_[static_cast<std::size_t>(worker)].cancelled_at_ms();
    if (cancelled_at >= 0) {
      hot_.recovery_ms->record(
          static_cast<double>(runtime::steady_now_ms() - cancelled_at));
    }
  }
}

bool FfsVaInstance::sdd_worker_loop(int worker, bool allow_restart) {
  const int run_length = std::max(1, config_.sdd_run_length);
  runtime::Heartbeat& hb = sdd_hb_[static_cast<std::size_t>(worker)];
  runtime::InflightCall& call = sdd_call_[static_cast<std::size_t>(worker)];
  int cursor = worker;  // stagger workers across streams
  for (;;) {
    const auto ticket = sdd_work_.prepare();
    // Re-read the published stream count every cycle: add_stream() may have
    // appended slots since the last scan (serve mode), and the eventcount
    // notify it issues lands after the count's release store — so a worker
    // that misses the new stream here wakes and rescans.
    const int n = num_streams();
    bool all_done = true;
    bool did_work = false;
    for (int step = 0; step < n; ++step) {
      const int idx = (cursor + step) % n;
      Stream& s = *streams_[static_cast<std::size_t>(idx)];
      if (s.sdd_done.load(std::memory_order_acquire)) continue;
      all_done = false;
      if (s.sdd_claimed.exchange(true, std::memory_order_acq_rel)) {
        continue;  // another worker is serving this stream
      }
      int processed = 0;
      bool restart_requested = false;
      while (processed < run_length) {
        // Order matters: observe close *before* the failed pop, so an empty
        // pop on a closed queue really means end-of-stream (a push cannot
        // land after close).
        const bool closed = s.sdd_q.closed();
        auto item = s.sdd_q.try_pop();
        if (!item) {
          if (closed) {
            s.sdd_done.store(true, std::memory_order_release);
            s.snm_q.close();
            sdd_work_.notify();  // wake workers idling on this last stream
          }
          break;
        }
        ++processed;
        if (s.quarantined.load(std::memory_order_acquire)) {
          // Drain-and-discard: the watchdog closed this stream's queues;
          // its in-flight frames are dumped, not processed.
          s.discarded.fetch_add(1, std::memory_order_relaxed);
          s.terminated.fetch_add(1, std::memory_order_release);
          continue;
        }
        s.sdd_in.fetch_add(1, std::memory_order_relaxed);
        hot_.sdd_in->add();
        bool pass;
        bool cancelled = false;
        try {
          hb.busy();
          telemetry::ScopedSpan sp(trace(), "sdd.filter", telemetry::Stage::kSdd,
                                   s.id, item->frame.index);
          runtime::ModelCallGuard guard(call, s.id, item->frame.index);
          pass = s.models.sdd->pass(item->frame.image);
          hb.idle();
        } catch (const runtime::CancelledError&) {
          // The watchdog cancelled this call (it overran
          // model_call_timeout_ms). First wedge: the frame follows the
          // degrade policy like any per-frame model fault. Second wedge:
          // the frame is poisoned and dropped regardless of policy.
          hb.idle();
          cancelled = true;
          ++item->wedges;
          if (item->wedges >= 2) {
            s.poisoned.fetch_add(1, std::memory_order_relaxed);
            poisoned_frames_.fetch_add(1, std::memory_order_relaxed);
            pass = false;
          } else {
            s.degraded.fetch_add(1, std::memory_order_relaxed);
            pass = config_.degrade_policy == DegradePolicy::kBypass;
          }
        } catch (...) {
          hb.idle();
          // Degrade per frame, never per stream: drop terminates the frame
          // here (latency still recorded below); bypass rides it to SNM.
          s.degraded.fetch_add(1, std::memory_order_relaxed);
          pass = config_.degrade_policy == DegradePolicy::kBypass;
        }
        if (pass) {
          s.sdd_passed.fetch_add(1, std::memory_order_relaxed);
          hot_.sdd_passed->add();
          // Blocking push: the SNM feedback-queue threshold throttles this
          // worker (other workers keep serving other streams meanwhile).
          if (!s.snm_q.push(std::move(*item))) {
            s.discarded.fetch_add(1, std::memory_order_relaxed);
            s.terminated.fetch_add(1, std::memory_order_release);
            break;  // closed by quarantine
          }
        } else {
          hot_.drop_sdd->add();
          s.lat_sdd.add(ms_since(item->ingest));
          s.terminated.fetch_add(1, std::memory_order_release);
        }
        if (cancelled && allow_restart) {
          // The frame is fully accounted (routed or dropped above); now
          // restart this worker under the stage budget.
          restart_requested = true;
          break;
        }
      }
      s.sdd_claimed.store(false, std::memory_order_release);
      if (restart_requested) return false;
      if (processed > 0) {
        did_work = true;
        cursor = idx;  // keep draining near the stream we just served
      }
    }
    if (all_done) {
      // Every registered stream's SDD stage has ended. In serve mode the
      // pool parks here waiting for the next add_stream() (whose notify
      // races safely against this wait via the prepared ticket); otherwise
      // — or once stop is requested — the run is over.
      if (!config_.serve_until_stopped || stop_.stop_requested()) return true;
      sdd_work_.wait(ticket);
      continue;
    }
    if (!did_work) sdd_work_.wait(ticket);
  }
}

void FfsVaInstance::gpu0_entry() {
  int restarts = 0;
  for (;;) {
    if (gpu0_loop(restarts < config_.stage_max_restarts)) break;
    // A watchdog cancel unwound the executor. Every popped frame was
    // accounted before the loop returned, so re-entry resumes cleanly from
    // the queues.
    ++restarts;
    stage_restarts_.fetch_add(1, std::memory_order_relaxed);
    stage_backoff(restarts);
    const std::int64_t cancelled_at = gpu0_call_.cancelled_at_ms();
    if (cancelled_at >= 0) {
      hot_.recovery_ms->record(
          static_cast<double>(runtime::steady_now_ms() - cancelled_at));
    }
  }
  // Single exit: the reference stage always sees end-of-stream, whatever
  // path brought the executor down — and never before its final restart.
  tyolo_shared_->ref_q.close();
}

bool FfsVaInstance::gpu0_loop(bool allow_restart) {
  TYoloScheduler scheduler(config_.num_tyolo);
  const DynamicBatcher batcher(config_.batch_policy, config_.batch_size,
                               config_.snm_queue_depth);
  // The stream set can grow mid-run (serve mode): both per-stream scratch
  // vectors are re-sized to the published count at each use, so a stream
  // added between cycles simply appears as a fresh not-done slot.
  std::vector<char> snm_done;
  std::vector<int> tyolo_depths;
  std::vector<Item> items;
  std::vector<const image::Image*> imgs;
  items.reserve(static_cast<std::size_t>(std::max(1, config_.batch_size)));
  bool running = true;
  bool restart_requested = false;

  // Per-frame wedge bookkeeping shared by the T-YOLO and SNM catch sites:
  // first wedge follows the degrade policy, second wedge poisons the frame
  // (dropped regardless of policy). Returns the frame's pass verdict.
  const auto wedge_verdict = [&](Stream& s, Item& item) {
    ++item.wedges;
    if (item.wedges >= 2) {
      s.poisoned.fetch_add(1, std::memory_order_relaxed);
      poisoned_frames_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    s.degraded.fetch_add(1, std::memory_order_relaxed);
    return config_.degrade_policy == DegradePolicy::kBypass;
  };

  // One T-YOLO service pick: up to num_tyolo frames from the next non-empty
  // stream in round-robin order (Section 3.2.3). Executed directly — this
  // thread owns GPU0. Clears `running` if the reference queue was closed
  // underneath us (shutdown).
  const auto serve_tyolo = [&]() -> bool {
    const auto n = static_cast<std::size_t>(num_streams());
    tyolo_depths.resize(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      tyolo_depths[i] = static_cast<int>(streams_[i]->tyolo_q.depth());
    }
    const auto pick = scheduler.next(tyolo_depths);
    if (pick.stream < 0) return false;
    Stream& s = *streams_[static_cast<std::size_t>(pick.stream)];
    int served = 0;
    bool progressed = false;
    telemetry::ScopedSpan span(trace(), "tyolo.batch", telemetry::Stage::kTyolo,
                               s.id);
    for (int k = 0; k < pick.take && running; ++k) {
      auto item = s.tyolo_q.try_pop();
      if (!item) break;
      progressed = true;
      if (s.quarantined.load(std::memory_order_acquire)) {
        s.discarded.fetch_add(1, std::memory_order_relaxed);
        s.terminated.fetch_add(1, std::memory_order_release);
        continue;  // drain, but don't run the model or feed admission
      }
      s.tyolo_in.fetch_add(1, std::memory_order_relaxed);
      hot_.tyolo_in->add();
      // Keep the detections, not just the verdict: the boxes are the
      // candidate regions the reference stage consolidates under
      // RefMode::kCropPack. pass() is detect() + this count, so the
      // predicate is unchanged.
      bool pass;
      detect::DetectionResult det;
      bool have_det = false;
      bool cancelled = false;
      try {
        gpu0_hb_.busy();
        runtime::ModelCallGuard guard(gpu0_call_, s.id, item->frame.index);
        det = s.models.tyolo->detect(item->frame.image);
        gpu0_hb_.idle();
        pass = det.count_target(s.models.target,
                                s.models.tyolo->config().confidence_threshold) >=
               config_.number_of_objects;
        have_det = true;
      } catch (const runtime::CancelledError&) {
        gpu0_hb_.idle();
        cancelled = true;
        pass = wedge_verdict(s, *item);
      } catch (...) {
        gpu0_hb_.idle();
        s.degraded.fetch_add(1, std::memory_order_relaxed);
        pass = config_.degrade_policy == DegradePolicy::kBypass;
      }
      ++served;
      if (pass) {
        s.tyolo_passed.fetch_add(1, std::memory_order_relaxed);
        hot_.tyolo_passed->add();
        auto candidates =
            have_det ? det.boxes() : std::vector<image::Box>{};
        if (!tyolo_shared_->ref_q.push(
                {s.id, std::move(*item), std::move(candidates)})) {
          // ref_q closed underneath us (shutdown): the popped frame cannot
          // reach the reference stage, so it terminates here.
          s.discarded.fetch_add(1, std::memory_order_relaxed);
          s.terminated.fetch_add(1, std::memory_order_release);
          running = false;
        }
      } else {
        hot_.drop_tyolo->add();
        s.lat_tyolo.add(ms_since(item->ingest));
        s.terminated.fetch_add(1, std::memory_order_release);
      }
      if (cancelled && allow_restart) {
        // The frame is accounted; stop picking and let the cycle end so the
        // executor restarts with no frame in hand.
        restart_requested = true;
        break;
      }
    }
    span.set_batch(served);
    if (served > 0) {
      hot_.tyolo_picks->add();
      hot_.tyolo_take->record(static_cast<double>(served));
      const double now =
          std::chrono::duration<double>(Clock::now().time_since_epoch()).count();
      tyolo_shared_->admission.on_tyolo_served(now, served);
    }
    return progressed;
  };

  while (running) {
    const auto ticket = gpu0_work_.prepare();
    const auto n = static_cast<std::size_t>(num_streams());
    snm_done.resize(n, 0);  // new slots start not-done
    bool did_work = false;
    bool all_snm_done = true;

    // SNM pass: drain every stream's queue under the batch policy into
    // cross-stream work for this cycle, one sub-batch per stream routed to
    // that stream's SNM. The executor is the only SNM-queue consumer, so an
    // observed depth can only grow before the pops below.
    for (std::size_t i = 0; i < n && running; ++i) {
      if (snm_done[i]) continue;
      Stream& s = *streams_[i];
      if (s.quarantined.load(std::memory_order_acquire)) {
        // Drain-and-discard both device queues of a quarantined stream.
        // The watchdog closed them, so once empty they stay empty.
        std::uint64_t dumped = 0;
        while (s.snm_q.try_pop()) ++dumped;
        while (s.tyolo_q.try_pop()) ++dumped;
        if (dumped > 0) {
          s.discarded.fetch_add(dumped, std::memory_order_relaxed);
          s.terminated.fetch_add(dumped, std::memory_order_release);
          did_work = true;
        }
        if (s.snm_q.closed() && s.snm_q.depth() == 0) {
          snm_done[i] = 1;
        } else {
          all_snm_done = false;
        }
        continue;
      }
      const bool ended = s.snm_q.closed();  // read before depth (see sdd_worker_loop)
      const int avail = static_cast<int>(s.snm_q.depth());
      if (ended && avail == 0) {
        snm_done[i] = 1;
        continue;
      }
      all_snm_done = false;
      const auto d = batcher.next_batch(avail, ended);
      if (d.take <= 0) continue;
      items.clear();
      for (int k = 0; k < d.take; ++k) {
        auto item = s.snm_q.try_pop();
        if (!item) break;
        items.push_back(std::move(*item));
      }
      if (items.empty()) continue;
      did_work = true;
      imgs.clear();
      for (const auto& it : items) imgs.push_back(&it.frame.image);
      hot_.snm_batches->add();
      hot_.batch_size->record(static_cast<double>(items.size()));
      std::vector<double> scores;
      bool batch_degraded = false;
      bool batch_cancelled = false;
      try {
        gpu0_hb_.busy();
        telemetry::ScopedSpan sp(trace(), "snm.batch", telemetry::Stage::kSnm,
                                 s.id, -1, static_cast<int>(items.size()));
        runtime::ModelCallGuard guard(gpu0_call_, s.id,
                                      items.front().frame.index);
        scores = s.models.snm->predict_batch(imgs);
        gpu0_hb_.idle();
      } catch (const runtime::CancelledError&) {
        // A wedged batch the watchdog cancelled: every popped frame still
        // gets a per-frame wedge verdict below (conservation holds), then
        // the executor restarts under the stage budget.
        gpu0_hb_.idle();
        batch_cancelled = true;
        if (allow_restart) restart_requested = true;
      } catch (...) {
        gpu0_hb_.idle();
        // The device call is batched, so one unevaluable frame degrades the
        // whole sub-batch: every frame in it follows the degrade policy.
        batch_degraded = true;
        s.degraded.fetch_add(items.size(), std::memory_order_relaxed);
      }
      const double t_pre = s.models.snm->t_pre();
      // Every popped frame is accounted, even when `running` flips false
      // mid-batch (ref_q closed at shutdown): a frame that can no longer be
      // routed terminates as discarded rather than vanishing.
      for (std::size_t j = 0; j < items.size(); ++j) {
        s.snm_in.fetch_add(1, std::memory_order_relaxed);
        hot_.snm_in->add();
        const bool pass =
            batch_cancelled
                ? wedge_verdict(s, items[j])
                : (batch_degraded
                       ? config_.degrade_policy == DegradePolicy::kBypass
                       : scores[j] >= t_pre);
        if (pass) {
          s.snm_passed.fetch_add(1, std::memory_order_relaxed);
          hot_.snm_passed->add();
          // The executor is also the T-YOLO service, so it must never block
          // on a full T-YOLO queue (it would deadlock against itself): a
          // full queue flips GPU0 over to T-YOLO work until space opens —
          // the feedback-queue throttle expressed as device interleaving.
          // The executor is the only thread touching T-YOLO queues, so the
          // depth check is exact and the push below fails only when
          // quarantine closed the queue mid-batch.
          while (running && s.tyolo_q.depth() >= s.tyolo_q.capacity() &&
                 !s.tyolo_q.closed()) {
            serve_tyolo();
          }
          if (!running || !s.tyolo_q.push(std::move(items[j]))) {
            s.discarded.fetch_add(1, std::memory_order_relaxed);
            s.terminated.fetch_add(1, std::memory_order_release);
          }
        } else {
          hot_.drop_snm->add();
          s.lat_snm.add(ms_since(items[j].ingest));
          s.terminated.fetch_add(1, std::memory_order_release);
        }
      }
    }

    // T-YOLO pass: one micro-batch per cycle keeps detection tightly
    // interleaved with SNM batching on the device.
    if (running && serve_tyolo()) did_work = true;

    if (!running) break;
    // Restart at the end of the cycle: every frame popped this cycle has
    // been routed or dropped, so the re-entered loop resumes cleanly from
    // the queues.
    if (restart_requested) return false;
    if (all_snm_done) {
      bool drained = true;
      for (std::size_t i = 0; i < n; ++i) {
        drained = drained && streams_[i]->tyolo_q.depth() == 0;
      }
      if (drained) {
        // Nothing left anywhere. In serve mode the executor parks here
        // waiting for the next add_stream() (its notify pairs with the
        // prepared ticket); otherwise — or once stop is requested — the
        // run is over.
        if (!config_.serve_until_stopped || stop_.stop_requested()) break;
        if (!did_work) gpu0_work_.wait(ticket);
        continue;
      }
      continue;  // only T-YOLO work remains; keep serving micro-batches
    }
    if (!did_work) gpu0_work_.wait(ticket);
  }
  return true;
}

void FfsVaInstance::reference_entry() {
  int restarts = 0;
  // Entries already popped from ref_q live here so they survive a stage
  // restart: the re-entered loop keeps serving them in pop order (per-stream
  // FIFO and frame conservation hold through the unwind).
  std::vector<RefEntry> pending;
  for (;;) {
    if (reference_loop(restarts < config_.stage_max_restarts, pending)) return;
    ++restarts;
    stage_restarts_.fetch_add(1, std::memory_order_relaxed);
    stage_backoff(restarts);
    const std::int64_t cancelled_at = ref_call_.cancelled_at_ms();
    if (cancelled_at >= 0) {
      hot_.recovery_ms->record(
          static_cast<double>(runtime::steady_now_ms() - cancelled_at));
    }
  }
}

bool FfsVaInstance::reference_loop(bool allow_restart,
                                   std::vector<RefEntry>& pending) {
  auto& ref_q = tyolo_shared_->ref_q;

  // The three ways a frame leaves the reference stage. Emission order is
  // pop order in every mode, so per-stream FIFO holds batched or not.
  const auto discard = [&](Stream& s, const Item& item) {
    // Quarantine drain-and-discard. These frames used to vanish with no
    // latency record at all; they now feed the drop-latency histogram
    // (telemetry only — per-stream stats freeze at quarantine, as before).
    s.discarded.fetch_add(1, std::memory_order_relaxed);
    s.terminated.fetch_add(1, std::memory_order_release);
    hot_.drop_latency_ms->record(ms_since(item.ingest));
  };
  const auto drop = [&](Stream& s, const Item& item) {
    // The reference model is the last vetting stage: a frame it cannot
    // evaluate is always dropped (never emitted unvetted), whatever the
    // degrade policy says about the cheap filters. Dropped frames feed
    // lat_drop, NOT lat_ref — the reference-stage latency distribution
    // describes emitted frames only; lat_drop still merges into
    // stats.latency_ms, so every ingested frame terminates exactly once.
    s.degraded.fetch_add(1, std::memory_order_relaxed);
    s.terminated.fetch_add(1, std::memory_order_release);
    hot_.drop_ref->add();
    const double ms = ms_since(item.ingest);
    s.lat_drop.add(ms);
    hot_.drop_latency_ms->record(ms);
  };
  const auto poison = [&](Stream& s, const Item& item) {
    // Second wedge: the frame is poisoned — same terminal accounting as a
    // reference-stage drop, but counted as poisoned instead of degraded.
    s.poisoned.fetch_add(1, std::memory_order_relaxed);
    s.terminated.fetch_add(1, std::memory_order_release);
    poisoned_frames_.fetch_add(1, std::memory_order_relaxed);
    hot_.drop_ref->add();
    const double ms = ms_since(item.ingest);
    s.lat_drop.add(ms);
    hot_.drop_latency_ms->record(ms);
  };
  const auto emit = [&](Stream& s, Item&& item,
                        detect::DetectionResult&& result) {
    s.ref_passed.fetch_add(1, std::memory_order_relaxed);
    hot_.ref_passed->add();
    outputs_count_.fetch_add(1, std::memory_order_relaxed);
    const double latency = ms_since(item.ingest);
    s.lat_ref.add(latency);
    hot_.output_latency_ms->record(latency);
    OutputEvent ev{std::move(item.frame), std::move(result), latency};
    if (sink_) {
      sink_(ev);
    } else {
      runtime::MutexLock lk(outputs_mu_);
      outputs_.push_back(std::move(ev));
    }
    // Ticked after the sink call: stream_quiesced() implying "all outputs
    // delivered" is what lets a hand-off serialize a complete result set.
    s.terminated.fetch_add(1, std::memory_order_release);
  };

  if (config_.ref_mode == RefMode::kSingle) {
    // One frame per detect() call — the paper's deployment. GPU1 is owned
    // by this thread — device placement held by construction, not a lock.
    while (auto entry = ref_q.pop()) {
      Stream& s = *streams_[static_cast<std::size_t>(entry->stream)];
      if (s.quarantined.load(std::memory_order_acquire)) {
        discard(s, entry->item);
        continue;
      }
      s.ref_in.fetch_add(1, std::memory_order_relaxed);
      hot_.ref_in->add();
      detect::DetectionResult result;
      try {
        ref_hb_.busy();
        telemetry::ScopedSpan sp(trace(), "ref.detect", telemetry::Stage::kRef,
                                 s.id, entry->item.frame.index);
        runtime::ModelCallGuard guard(ref_call_, s.id, entry->item.frame.index);
        result = s.models.reference->detect(entry->item.frame.image);
        ref_hb_.idle();
      } catch (const runtime::CancelledError&) {
        // A wedged reference call the watchdog cancelled. The reference
        // model is the last vetting stage, so the frame is always dropped
        // (poisoned on its second wedge); then the stage restarts under
        // the budget.
        ref_hb_.idle();
        ++entry->item.wedges;
        if (entry->item.wedges >= 2) {
          poison(s, entry->item);
        } else {
          drop(s, entry->item);
        }
        if (allow_restart) return false;
        continue;
      } catch (...) {
        ref_hb_.idle();
        drop(s, entry->item);
        continue;
      }
      emit(s, std::move(entry->item), std::move(result));
    }
    return true;
  }

  // Micro-batched modes: drain ref_q under a second DynamicBatcher (via
  // BatchDrain, reusing the run's BatchPolicy) into cross-stream batches,
  // then evaluate each batch in one go — detect_batch under kBatch,
  // crop-consolidated mosaics under kCropPack. Per-frame outcomes are
  // applied in batch order = pop order (per-stream FIFO preserved), and a
  // frame whose evaluation throws is dropped alone (RefBatchItem::ok) —
  // batch-mates are unaffected.
  const BatchDrain drain(config_.batch_policy, config_.ref_batch_size,
                         config_.ref_queue_threshold);
  const detect::CropPackConfig pack_cfg{config_.crop_pad, config_.crop_gutter,
                                        config_.crop_canvas_edge,
                                        config_.crop_coverage_threshold};
  // bounded-ok: pending never exceeds ref_batch_size entries — the top-up
  // loop stops at the batch cap and the blocking pop adds one only when the
  // policy is still waiting below the cap. (The vector itself lives in
  // reference_entry so popped entries survive a stage restart.)
  pending.reserve(static_cast<std::size_t>(drain.batch_size()));
  std::vector<RefEntry*> batch;  // eligible entries, in batch order
  std::vector<const detect::ReferenceDetector*> detectors;
  std::vector<const image::Image*> imgs;
  std::vector<detect::CropRequest> requests;
  bool ended = false;

  for (;;) {
    // Non-blocking top-up to the batch cap. Observe close *before* the
    // failed pop so an empty pop on a closed queue means end-of-stream.
    while (static_cast<int>(pending.size()) < drain.batch_size() && !ended) {
      const bool closed = ref_q.closed();
      auto e = ref_q.try_pop();
      if (!e) {
        if (closed) ended = true;
        break;
      }
      pending.push_back(std::move(*e));
    }
    const auto step = drain.next(static_cast<int>(pending.size()), ended);
    if (step.block) {
      // The policy wants a fuller batch: sleep on the queue, never poll.
      auto e = ref_q.pop();
      if (!e) {
        ended = true;
        continue;
      }
      pending.push_back(std::move(*e));
      continue;
    }
    if (step.take <= 0) break;  // closed, drained, nothing pending: done

    // Quarantine drain-and-discard per entry; the rest form the batch.
    batch.clear();
    for (int i = 0; i < step.take; ++i) {
      RefEntry& e = pending[static_cast<std::size_t>(i)];
      Stream& s = *streams_[static_cast<std::size_t>(e.stream)];
      if (s.quarantined.load(std::memory_order_acquire)) {
        discard(s, e.item);
        continue;
      }
      s.ref_in.fetch_add(1, std::memory_order_relaxed);
      hot_.ref_in->add();
      batch.push_back(&e);
    }

    if (!batch.empty()) {
      hot_.ref_batches->add();
      hot_.ref_batch_size->record(static_cast<double>(batch.size()));
      std::vector<detect::RefBatchItem> results;
      bool whole_batch_failed = false;
      bool batch_cancelled = false;
      try {
        ref_hb_.busy();
        telemetry::ScopedSpan sp(trace(), "ref.batch", telemetry::Stage::kRef,
                                 /*stream=*/-1, /*index=*/-1,
                                 static_cast<int>(batch.size()));
        // The batch spans streams; attribute the in-flight call to the
        // first entry (the watchdog only needs *a* stream to charge the
        // cancel to).
        runtime::ModelCallGuard guard(ref_call_, batch.front()->stream,
                                      batch.front()->item.frame.index);
        if (config_.ref_mode == RefMode::kCropPack) {
          requests.clear();
          requests.reserve(batch.size());
          for (const RefEntry* e : batch) {
            const auto& ref =
                *streams_[static_cast<std::size_t>(e->stream)]->models.reference;
            requests.push_back(detect::CropRequest{
                &e->item.frame.image, &ref.background(), e->candidates});
          }
          // Reference-model parameters are deployment-wide; the per-stream
          // state (the background) travels inside each request.
          auto consolidated = detect::consolidate_detect(
              requests,
              streams_[static_cast<std::size_t>(batch.front()->stream)]
                  ->models.reference->config(),
              pack_cfg);
          results = std::move(consolidated.items);
          const auto& cs = consolidated.stats;
          for (const double f : cs.fill_ratio) hot_.mosaic_fill->record(f);
          for (const int c : cs.crops_per_mosaic) {
            hot_.crops_per_mosaic->record(static_cast<double>(c));
          }
          hot_.ref_full_frame->add(
              static_cast<std::uint64_t>(cs.full_frame_fallbacks));
          hot_.ref_seam_suppressed->add(
              static_cast<std::uint64_t>(cs.seam_suppressed));
        } else {  // RefMode::kBatch
          detectors.clear();
          imgs.clear();
          detectors.reserve(batch.size());
          imgs.reserve(batch.size());
          for (const RefEntry* e : batch) {
            detectors.push_back(
                streams_[static_cast<std::size_t>(e->stream)]->models.reference.get());
            imgs.push_back(&e->item.frame.image);
          }
          results = detect::detect_batch(detectors, imgs);
        }
        ref_hb_.idle();
      } catch (const runtime::CancelledError&) {
        // detect_batch re-raises a cancel after all its chunks join, so the
        // batched device call mirrors the SNM contract: a wedged batch the
        // watchdog cancelled wedges every frame in it (first wedge drops at
        // this last vetting stage, second wedge poisons), then the stage
        // restarts under the budget.
        ref_hb_.idle();
        batch_cancelled = true;
      } catch (...) {
        // detect_batch / consolidate_detect isolate per-frame errors
        // internally; only a batch-setup failure (e.g. allocation) lands
        // here, and it fails just this batch, not the stage.
        ref_hb_.idle();
        whole_batch_failed = true;
      }

      for (std::size_t i = 0; i < batch.size(); ++i) {
        RefEntry& e = *batch[i];
        Stream& s = *streams_[static_cast<std::size_t>(e.stream)];
        if (batch_cancelled) {
          ++e.item.wedges;
          if (e.item.wedges >= 2) {
            poison(s, e.item);
          } else {
            drop(s, e.item);
          }
        } else if (whole_batch_failed || !results[i].ok) {
          drop(s, e.item);
        } else {
          emit(s, std::move(e.item), std::move(results[i].result));
        }
      }
      if (batch_cancelled) {
        // Remove the processed entries first: the restarted loop must not
        // serve them again.
        pending.erase(pending.begin(),
                      pending.begin() + static_cast<std::ptrdiff_t>(step.take));
        if (allow_restart) return false;
        continue;
      }
    }
    pending.erase(pending.begin(),
                  pending.begin() + static_cast<std::ptrdiff_t>(step.take));
  }
  return true;
}

void FfsVaInstance::quarantine(Stream& s) {
  if (s.quarantined.exchange(true, std::memory_order_acq_rel)) return;
  // Close the stream's queues: its producers fail fast, its consumers
  // drain-and-discard. Every other stream keeps running untouched.
  s.sdd_q.close();
  s.snm_q.close();
  s.tyolo_q.close();
  gpu0_work_.notify();  // run the executor's drain branch promptly
  // The prefetch thread is joined, never detached — so a decode wedged
  // inside source->next() must be made to return. Cancel the in-flight
  // call: the source unwinds via CancelledError at its next cancellation
  // check, the loop observes the quarantine and exits, and run()'s join is
  // bounded. (timeout -1: cancel whatever is in flight, however young.)
  if (s.prefetch_call.try_cancel(runtime::steady_now_ms(), -1)) {
    cancels_.fetch_add(1, std::memory_order_relaxed);
    s.cancels.fetch_add(1, std::memory_order_relaxed);
  }
}

void FfsVaInstance::supervise(Clock::time_point t0) {
  telemetry::ScopedSpan sp(trace(), "supervise.tick",
                           telemetry::Stage::kSupervise);
  if (config_.run_deadline_ms > 0 && !deadline_hit_.load(std::memory_order_relaxed) &&
      ms_since(t0) > static_cast<double>(config_.run_deadline_ms)) {
    deadline_hit_.store(true, std::memory_order_relaxed);
    stop();
  }
  const std::int64_t now = runtime::steady_now_ms();
  // Escalation step one (DESIGN.md Section 14): a model call in flight past
  // model_call_timeout_ms is cancelled. The call unwinds via CancelledError
  // at its next tile boundary, the owning stage degrades (or poisons) the
  // frame and restarts under the stage budget.
  if (config_.model_call_timeout_ms > 0) {
    const auto call_timeout =
        static_cast<std::int64_t>(config_.model_call_timeout_ms);
    const auto escalate = [&](runtime::InflightCall& call) {
      if (!call.try_cancel(now, call_timeout)) return;
      cancels_.fetch_add(1, std::memory_order_relaxed);
      const int st = call.stream();
      if (st >= 0 && st < num_streams()) {
        streams_[static_cast<std::size_t>(st)]->cancels.fetch_add(
            1, std::memory_order_relaxed);
      }
    };
    for (auto& c : sdd_call_) escalate(c);
    escalate(gpu0_call_);
    escalate(ref_call_);
    const int np = num_streams();
    for (int i = 0; i < np; ++i) {
      escalate(streams_[static_cast<std::size_t>(i)]->prefetch_call);
    }
  }
  if (config_.stall_timeout_ms <= 0) return;
  const auto timeout = static_cast<std::int64_t>(config_.stall_timeout_ms);
  const int nq = num_streams();
  for (int i = 0; i < nq; ++i) {
    auto& s = streams_[static_cast<std::size_t>(i)];
    if (!s->quarantined.load(std::memory_order_acquire)) {
      if (s->hb.busy_age_ms() > timeout) quarantine(*s);
    } else if (s->prefetch_call.try_cancel(now, timeout)) {
      // A quarantined stream's prefetch thread is joined, not detached:
      // keep cancelling any decode still wedged (e.g. a fresh call that
      // raced the quarantine cancel) so the join stays bounded.
      cancels_.fetch_add(1, std::memory_order_relaxed);
      s->cancels.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // Shared stages (SDD pool, GPU0 executor, reference thread) serve every
  // stream, so they cannot be quarantined per stream — a stall there is
  // surfaced in the health summary (and, with model_call_timeout_ms armed,
  // already being acted on by the cancellation scan above).
  bool stalled = gpu0_hb_.busy_age_ms() > timeout || ref_hb_.busy_age_ms() > timeout;
  for (const auto& hb : sdd_hb_) stalled = stalled || hb.busy_age_ms() > timeout;
  if (stalled) stage_stall_ticks_.fetch_add(1, std::memory_order_relaxed);
}

void FfsVaInstance::stage_backoff(int attempt) {
  std::int64_t ms = static_cast<std::int64_t>(
                        std::max(0, config_.stage_restart_backoff_ms))
                    << std::min(attempt, 20);
  ms = std::min<std::int64_t>(ms, 100);
  const auto until = Clock::now() + std::chrono::milliseconds(ms);
  // Sliced so stop() aborts the wait promptly.
  while (Clock::now() < until && !stop_.stop_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

InstanceStats FfsVaInstance::run(bool online) {
  const bool serve = config_.serve_until_stopped;
  if (streams_.empty() && !serve) {
    throw std::invalid_argument("FfsVaInstance::run: no streams registered");
  }
  if (run_called_.exchange(true)) {
    throw std::logic_error(
        "FfsVaInstance::run: run() already invoked on this instance");
  }
  runtime::Stopwatch wall;
  const auto t0 = Clock::now();
  run_t0_ns_.store(std::chrono::duration_cast<std::chrono::nanoseconds>(
                       t0.time_since_epoch())
                       .count(),
                   std::memory_order_relaxed);
  // All registry handles and gauges exist before any stage thread starts —
  // from here the hot path never touches the registry map.
  wire_metrics();
  if (tracing_requested_) trace().enable();
  if (!metrics_path_.empty()) {
    exporter_.start_file(metrics_path_, config_.metrics_interval_ms,
                         metrics_label_);
  } else if (metrics_sink_ != nullptr) {
    exporter_.start_stream(metrics_sink_, config_.metrics_interval_ms,
                           metrics_label_);
  }
  // Resolve the run-wide ingest parameters once; add_stream() replays them
  // for dynamically attached streams (DESIGN.md §15).
  const bool hinted = config_.decode_policy == DecodePolicy::kHinted && !online;
  const int affinity = runtime::resolve_ingest_affinity(config_.ingest_affinity);
  int n0 = 0;
  int unfused = 0;
  {
    runtime::MutexLock lk(streams_mu_);
    n0 = nstreams_.load(std::memory_order_relaxed);
    // Reserve every slot a mid-run add_stream() may fill: a push_back
    // within this capacity never reallocates, so the raw Stream pointers
    // stage threads hold across their scans stay valid for the whole run.
    streams_.reserve(std::max(
        streams_.size(),
        static_cast<std::size_t>(std::max(0, config_.max_streams))));
    // Wire the stage wakeups before any thread starts (set_waiter is
    // unsynchronized by contract), and resolve which streams take the fused
    // hinted-ingest path (DESIGN.md §13): the flag and its sdd_done pre-set
    // are read by the SDD pool, the prefetch loop, and stop(), all
    // unsynchronized after this point. A fused stream's prefetch thread
    // owns the whole SDD stage, so the worker pool only needs to cover the
    // remaining streams.
    for (int i = 0; i < n0; ++i) {
      auto& s = streams_[static_cast<std::size_t>(i)];
      s->sdd_q.set_waiter(&sdd_work_);
      s->snm_q.set_waiter(&gpu0_work_);
      s->fused_ingest = hinted && s->source->has_hints();
      if (s->fused_ingest) {
        // Pre-retire the stream from the pool's perspective: workers scan
        // sdd_done and never claim it, making the fused prefetch loop the
        // single closer of snm_q.
        s->sdd_done.store(true, std::memory_order_release);
      } else {
        ++unfused;
      }
    }
    run_online_ = online;
    run_hinted_ = hinted;
    run_affinity_ = affinity;
    engine_live_ = true;
  }
  running_.store(true, std::memory_order_release);
  // A serving engine cannot size its pool by the (changing, possibly zero)
  // stream count — it keeps a full pool parked on the eventcount instead.
  const int workers = serve ? (config_.sdd_workers > 0
                                   ? config_.sdd_workers
                                   : runtime::compute_parallelism())
                            : sdd_pool_size(unfused);
  sdd_hb_ = std::vector<runtime::Heartbeat>(static_cast<std::size_t>(workers));
  sdd_call_ = std::vector<runtime::InflightCall>(static_cast<std::size_t>(workers));

  // thread-ok: per-stream prefetch threads — a camera/decoder is inherently
  // per-stream; all joined below (quarantine cancels a wedged decode, so
  // the join is bounded).
  std::vector<std::thread> prefetch_threads;
  prefetch_threads.reserve(static_cast<std::size_t>(n0));
  for (int i = 0; i < n0; ++i) {
    prefetch_threads.emplace_back(&FfsVaInstance::prefetch_loop,
                                  streams_[static_cast<std::size_t>(i)], online,
                                  affinity);
  }
  // thread-ok: the fixed stage set (SDD pool, GPU0 executor, reference
  // thread) — O(workers), not O(streams); all joined below.
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(workers) + 2);
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([this, w] { sdd_worker_entry(w); });
  }
  threads.emplace_back([this] { gpu0_entry(); });
  threads.emplace_back([this] { reference_entry(); });

  runtime::Watchdog watchdog;
  if (config_.stall_timeout_ms > 0 || config_.run_deadline_ms > 0 ||
      config_.model_call_timeout_ms > 0) {
    int tick = 50;
    if (config_.stall_timeout_ms > 0) {
      tick = std::min(tick, std::max(1, config_.stall_timeout_ms / 4));
    }
    if (config_.run_deadline_ms > 0) {
      tick = std::min(tick, std::max(1, config_.run_deadline_ms / 4));
    }
    if (config_.model_call_timeout_ms > 0) {
      tick = std::min(tick, std::max(1, config_.model_call_timeout_ms / 4));
    }
    watchdog.start(std::chrono::milliseconds(tick), [this, t0] { supervise(t0); });
  }

  // Joined, never detached: a prefetch thread wedged inside its source is
  // un-wedged by cancellation — quarantine cancels its in-flight decode,
  // and supervise() keeps re-cancelling a call that stays wedged — so each
  // join completes in bounded time. The watchdog stays alive until these
  // joins are done (it stops below).
  for (auto& t : prefetch_threads) t.join();
  for (auto& t : threads) t.join();
  {
    // The stage threads are gone, so no new stream can be served: close the
    // engine to further adds, then join the prefetch threads add_stream()
    // spawned mid-run (stop()'s close sweep unblocked them; a wedged decode
    // is still cancellable — the watchdog stops only after these joins).
    runtime::MutexLock lk(streams_mu_);
    engine_live_ = false;
    // blocking-ok: joins under streams_mu_ are bounded — the ingest queues
    // are closed, so each prefetch thread is on its way out, and holding
    // the lock here is what makes add_stream's attach/engine-down check
    // atomic against this teardown.
    for (auto& t : late_prefetch_) t.join();
    late_prefetch_.clear();
  }
  watchdog.stop();
  // Every stage thread has quiesced: the exporter's final row and the trace
  // rings now hold the run's exact closing state.
  exporter_.stop();
  if (tracing_requested_) trace().disable();
  running_.store(false, std::memory_order_release);

  InstanceStats out;
  out.wall_sec = wall.elapsed_sec();
  std::uint64_t ingested = 0;
  for (auto& sp : streams_) {
    Stream& s = *sp;
    // Snapshot the prefetch-thread atomics into the plain report. For a
    // quarantined stream the thread may still be alive — the snapshot is
    // the freeze point of its counters.
    s.stats.prefetch.in = s.prefetch_in.load(std::memory_order_relaxed);
    s.stats.prefetch.passed = s.prefetch_passed.load(std::memory_order_relaxed);
    s.stats.dropped_at_ingest = s.dropped_ingest.load(std::memory_order_relaxed);
    // Freeze the per-stage counters now that the stage threads are joined;
    // the atomics exist so snapshot() can read them mid-run.
    s.stats.sdd.in = s.sdd_in.load(std::memory_order_relaxed);
    s.stats.sdd.passed = s.sdd_passed.load(std::memory_order_relaxed);
    s.stats.snm.in = s.snm_in.load(std::memory_order_relaxed);
    s.stats.snm.passed = s.snm_passed.load(std::memory_order_relaxed);
    s.stats.tyolo.in = s.tyolo_in.load(std::memory_order_relaxed);
    s.stats.tyolo.passed = s.tyolo_passed.load(std::memory_order_relaxed);
    s.stats.ref.in = s.ref_in.load(std::memory_order_relaxed);
    s.stats.ref.passed = s.ref_passed.load(std::memory_order_relaxed);
    s.stats.fault.decode_errors = s.decode_errors.load(std::memory_order_relaxed);
    s.stats.fault.retries = s.retries.load(std::memory_order_relaxed);
    s.stats.fault.restarts = s.restarts.load(std::memory_order_relaxed);
    s.stats.fault.degraded_frames = s.degraded.load(std::memory_order_relaxed);
    s.stats.fault.discarded_frames = s.discarded.load(std::memory_order_relaxed);
    s.stats.fault.cancelled_calls = s.cancels.load(std::memory_order_relaxed);
    s.stats.fault.poisoned_frames = s.poisoned.load(std::memory_order_relaxed);
    s.stats.fault.quarantined = s.quarantined.load(std::memory_order_acquire);
    // Ingest accounting: decode work actually performed vs skipped via the
    // compressed-domain hint, plus the decode-stage latency distribution.
    s.stats.ingest.decode_full = s.decode_full.load(std::memory_order_relaxed);
    s.stats.ingest.decode_skipped =
        s.decode_skipped.load(std::memory_order_relaxed);
    s.stats.ingest.hint_passes = s.hint_passes.load(std::memory_order_relaxed);
    s.stats.ingest.hint_fallbacks =
        s.hint_fallbacks.load(std::memory_order_relaxed);
    s.stats.ingest.decode_ms = s.decode_ms.snapshot();
    if (const auto cs = s.source->codec_stats()) {
      s.stats.ingest.compression_ratio = cs->compression_ratio();
    }
    // Merge the per-stage terminal-latency histograms now that every stage
    // thread is joined; keeping them separate during the run is what makes
    // concurrent recording race-free.
    s.stats.latency_ms.merge(s.lat_sdd);
    s.stats.latency_ms.merge(s.lat_snm);
    s.stats.latency_ms.merge(s.lat_tyolo);
    s.stats.latency_ms.merge(s.lat_ref);
    s.stats.latency_ms.merge(s.lat_drop);
    const double iw = s.ingest_wall_sec.load(std::memory_order_relaxed);
    if (iw > 0.0) {
      s.stats.ingest_fps = static_cast<double>(s.stats.prefetch.passed) / iw;
    }
    ingested += s.stats.prefetch.passed;

    if (s.stats.fault.quarantined) {
      ++out.health.quarantined_streams;
    } else if (s.stats.fault.any()) {
      ++out.health.degraded_streams;
    } else {
      ++out.health.healthy_streams;
    }
    out.health.decode_errors += s.stats.fault.decode_errors;
    out.health.retries += s.stats.fault.retries;
    out.health.restarts += s.stats.fault.restarts;
    out.health.degraded_frames += s.stats.fault.degraded_frames;
    out.health.discarded_frames += s.stats.fault.discarded_frames;

    out.streams.push_back(s.stats);
  }
  out.health.cancels = cancels_.load(std::memory_order_relaxed);
  out.health.stage_restarts = stage_restarts_.load(std::memory_order_relaxed);
  out.health.poisoned_frames = poisoned_frames_.load(std::memory_order_relaxed);
  out.health.stage_stall_ticks = stage_stall_ticks_.load(std::memory_order_relaxed);
  out.health.stopped = stop_.stop_requested();
  out.health.deadline_hit = deadline_hit_.load(std::memory_order_relaxed);
  out.total_throughput_fps =
      out.wall_sec > 0.0 ? static_cast<double>(ingested) / out.wall_sec : 0.0;
  {
    runtime::MutexLock lk(outputs_mu_);
    for (const auto& ev : outputs_) out.output_latency_ms.add(ev.latency_ms);
  }
  return out;
}

BaselineStats run_yolo_baseline(
    std::vector<std::unique_ptr<video::FrameSource>> sources,
    const std::vector<detect::StreamModels>& models, bool online,
    double online_fps) {
  BaselineStats stats;
  runtime::Stopwatch wall;
  // Two GPU workers pull from a shared frame queue — YOLOv2 running on both
  // GPUs, the paper's baseline deployment.
  runtime::BoundedQueue<std::pair<int, Item>> q(8);
  std::atomic<std::uint64_t> frames{0}, dropped{0};
  runtime::Mutex hist_mu{runtime::rank::kBenchStats, "baseline::hist_mu"};

  // thread-ok: the baseline harness spawns its own producers/GPU workers —
  // it deliberately bypasses the engine (that is what it measures against);
  // all joined below.
  std::vector<std::thread> producers;
  producers.reserve(sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    producers.emplace_back([&, i] {
      runtime::RateLimiter limiter(online_fps, 2.0);
      const auto interval = std::chrono::duration<double>(1.0 / online_fps);
      while (auto f = sources[i]->next()) {
        Item item{std::move(*f), Clock::now()};
        if (online) {
          limiter.acquire();
          if (!q.push_for(std::make_pair(static_cast<int>(i), std::move(item)),
                          interval)) {
            dropped.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
        } else {
          if (!q.push(std::make_pair(static_cast<int>(i), std::move(item)))) break;
        }
        frames.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Each device lock is held across detect(), which fans out through the
  // compute pool — hence kBenchDevice orders before the kComputePool group.
  runtime::Mutex gpu[2]{{runtime::rank::kBenchDevice, "baseline::gpu[0]"},
                        {runtime::rank::kBenchDevice, "baseline::gpu[1]"}};
  // thread-ok: the baseline's two GPU workers, joined below.
  std::vector<std::thread> workers;
  for (int g = 0; g < 2; ++g) {
    workers.emplace_back([&, g] {
      while (auto entry = q.pop()) {
        auto& [stream_id, item] = *entry;
        detect::DetectionResult r;
        {
          runtime::MutexLock lk(gpu[g]);
          // blocking-ok: the device lock exists precisely to serialize the
          // model call — the baseline being measured runs one inference per
          // GPU at a time; nothing else ever waits on gpu[g].
          r = models[static_cast<std::size_t>(stream_id)].reference->detect(
              item.frame.image);
        }
        runtime::MutexLock lk(hist_mu);
        stats.latency_ms.add(ms_since(item.ingest));
      }
    });
  }

  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : workers) t.join();

  stats.wall_sec = wall.elapsed_sec();
  stats.frames = frames.load();
  stats.dropped = dropped.load();
  stats.throughput_fps =
      stats.wall_sec > 0.0 ? static_cast<double>(stats.frames) / stats.wall_sec : 0.0;
  return stats;
}

}  // namespace ffsva::core
