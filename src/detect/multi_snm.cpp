#include "detect/multi_snm.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "image/ops.hpp"
#include "nn/loss.hpp"
#include "nn/optim.hpp"

namespace ffsva::detect {

namespace {
int conv_out(int in, int kernel, int stride, int pad) {
  return (in + 2 * pad - kernel) / stride + 1;
}

/// Multi-label BCE-with-logits over [N, C] logits; grad scaled by 1/(N*C).
double multilabel_bce(const nn::Tensor& logits,
                      const std::vector<std::vector<float>>& targets,
                      nn::Tensor& grad) {
  const int n = logits.n(), c = logits.c();
  grad = nn::Tensor::zeros_like(logits);
  double loss = 0.0;
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < c; ++k) {
      const double z = logits.at(i, k, 0, 0);
      const double y = targets[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)];
      const double log1pez =
          z > 0 ? z + std::log1p(std::exp(-z)) : std::log1p(std::exp(z));
      loss += log1pez - y * z;
      grad.at(i, k, 0, 0) = static_cast<float>((nn::sigmoid(z) - y) / (n * c));
    }
  }
  return loss / (n * c);
}
}  // namespace

MultiSnmFilter::MultiSnmFilter(MultiSnmConfig config,
                               std::vector<video::ObjectClass> targets,
                               const image::Image& background, std::uint64_t seed)
    : config_(config), targets_(std::move(targets)),
      background_small_(image::resize_bilinear(background, config.input_size,
                                               config.input_size)) {
  if (targets_.empty()) {
    throw std::invalid_argument("MultiSnmFilter: need at least one target class");
  }
  runtime::Xoshiro256 rng(seed);
  const int s1 = conv_out(config_.input_size, 3, 2, 1);
  const int s2 = conv_out(s1, 3, 2, 1);
  const int fc_in = config_.conv2_filters * s2 * s2;
  net_ = std::make_unique<nn::Sequential>();
  net_->add(std::make_unique<nn::Conv2d>(1, config_.conv1_filters, 3, 2, 1, rng))
      .add(std::make_unique<nn::ReLU>())
      .add(std::make_unique<nn::Conv2d>(config_.conv1_filters, config_.conv2_filters,
                                        3, 2, 1, rng))
      .add(std::make_unique<nn::ReLU>())
      .add(std::make_unique<nn::Linear>(fc_in, num_targets(), rng));
  c_low_.assign(targets_.size(), 0.3);
  c_high_.assign(targets_.size(), 0.7);
}

nn::Tensor MultiSnmFilter::preprocess_batch(
    const std::vector<const image::Image*>& frames) const {
  nn::Tensor x;
  diff_preprocess_batch(frames, background_small_, config_.input_size,
                        scratch_.pre_batch, x);
  return x;
}

nn::Tensor MultiSnmFilter::augment(const nn::Tensor& base,
                                   runtime::Xoshiro256& rng) const {
  const int s = config_.input_size;
  nn::Tensor out(base.n(), 1, s, s);
  const double c = (s - 1) * 0.5;
  for (int n = 0; n < base.n(); ++n) {
    const int dx = static_cast<int>(rng.range(-config_.augment_shift,
                                              config_.augment_shift));
    const int dy = static_cast<int>(rng.range(-config_.augment_shift,
                                              config_.augment_shift));
    const bool flip = config_.augment_flip && rng.chance(0.5);
    const double scale =
        1.0 + rng.uniform(-config_.augment_scale, config_.augment_scale);
    for (int y = 0; y < s; ++y) {
      const int sy = static_cast<int>(std::lround((y - dy - c) / scale + c));
      for (int x = 0; x < s; ++x) {
        int sx = static_cast<int>(std::lround((x - dx - c) / scale + c));
        if (flip) sx = s - 1 - sx;
        out.at(n, 0, y, x) = (sx >= 0 && sx < s && sy >= 0 && sy < s)
                                 ? base.at(n, 0, sy, sx)
                                 : 0.0f;
      }
    }
  }
  return out;
}

std::vector<double> MultiSnmFilter::predict(const image::Image& frame) const {
  const int s = config_.input_size;
  scratch_.input.resize(1, 1, s, s);
  diff_preprocess(frame, background_small_, s, scratch_.pre, scratch_.input, 0);
  const nn::Tensor& logits = net_->forward_inference(scratch_.input, scratch_.net);
  std::vector<double> out(targets_.size());
  for (int k = 0; k < num_targets(); ++k) out[static_cast<std::size_t>(k)] =
      nn::sigmoid(logits.at(0, k, 0, 0));
  return out;
}

double MultiSnmFilter::t_pre(int k) const {
  const auto i = static_cast<std::size_t>(k);
  return (c_high_[i] - c_low_[i]) * config_.filter_degree + c_low_[i];
}

bool MultiSnmFilter::pass(const image::Image& frame) const {
  const auto scores = predict(frame);
  for (int k = 0; k < num_targets(); ++k) {
    if (scores[static_cast<std::size_t>(k)] >= t_pre(k)) return true;
  }
  return false;
}

void MultiSnmFilter::set_filter_degree(double fd) {
  config_.filter_degree = std::clamp(fd, 0.0, 1.0);
}

MultiSnmReport MultiSnmFilter::train(const std::vector<video::Frame>& frames,
                                     const std::vector<std::vector<bool>>& labels,
                                     double val_fraction) {
  if (frames.size() != labels.size() || frames.empty()) {
    throw std::invalid_argument("MultiSnmFilter::train: bad inputs");
  }
  for (const auto& l : labels) {
    if (static_cast<int>(l.size()) != num_targets()) {
      throw std::invalid_argument("MultiSnmFilter::train: label arity mismatch");
    }
  }
  MultiSnmReport report;

  runtime::Xoshiro256 rng(0x5151u + frames.size());
  std::vector<std::size_t> order(frames.size());
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }
  const auto val_count = static_cast<std::size_t>(val_fraction *
                                                  static_cast<double>(order.size()));
  const std::size_t train_count = order.size() - val_count;

  nn::Sgd optimizer(net_->params(), {config_.lr, 0.9, 1e-4});
  double lr = config_.lr;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    for (std::size_t i = train_count; i > 1; --i) {
      std::swap(order[i - 1], order[rng.below(i)]);
    }
    double epoch_loss = 0.0;
    int batches = 0;
    for (std::size_t start = 0; start < train_count;
         start += static_cast<std::size_t>(config_.batch_size)) {
      const std::size_t end =
          std::min(train_count, start + static_cast<std::size_t>(config_.batch_size));
      std::vector<const image::Image*> imgs;
      std::vector<std::vector<float>> ys;
      for (std::size_t i = start; i < end; ++i) {
        imgs.push_back(&frames[order[i]].image);
        std::vector<float> y(static_cast<std::size_t>(num_targets()));
        for (int k = 0; k < num_targets(); ++k) {
          y[static_cast<std::size_t>(k)] =
              labels[order[i]][static_cast<std::size_t>(k)] ? 1.0f : 0.0f;
        }
        ys.push_back(std::move(y));
      }
      const nn::Tensor x = augment(preprocess_batch(imgs), rng);
      const nn::Tensor logits = net_->forward(x, true);
      nn::Tensor grad;
      epoch_loss += multilabel_bce(logits, ys, grad);
      ++batches;
      net_->backward(grad);
      optimizer.step();
    }
    report.final_loss = batches ? epoch_loss / batches : 0.0;
    lr *= config_.lr_decay;
    optimizer.set_lr(lr);
  }

  // Per-class validation accuracy + threshold selection.
  report.val_accuracy.assign(targets_.size(), 0.0);
  std::vector<std::vector<double>> pos(targets_.size()), neg(targets_.size());
  std::vector<int> correct(targets_.size(), 0);
  int total = 0;
  for (std::size_t i = train_count; i < order.size(); ++i) {
    const auto scores = predict(frames[order[i]].image);
    ++total;
    for (int k = 0; k < num_targets(); ++k) {
      const auto ks = static_cast<std::size_t>(k);
      const bool truth = labels[order[i]][ks];
      (truth ? pos[ks] : neg[ks]).push_back(scores[ks]);
      if ((scores[ks] >= 0.5) == truth) ++correct[ks];
    }
  }
  for (int k = 0; k < num_targets(); ++k) {
    const auto ks = static_cast<std::size_t>(k);
    report.val_accuracy[ks] = total ? static_cast<double>(correct[ks]) / total : 0.0;
    if (!pos[ks].empty() && !neg[ks].empty()) {
      std::sort(pos[ks].begin(), pos[ks].end());
      std::sort(neg[ks].begin(), neg[ks].end());
      const auto lo = static_cast<std::size_t>(config_.threshold_tail *
                                               static_cast<double>(pos[ks].size()));
      double c_low = pos[ks][std::min(lo, pos[ks].size() - 1)] * config_.c_low_relax;
      const auto hi = static_cast<std::size_t>((1.0 - config_.threshold_tail) *
                                               static_cast<double>(neg[ks].size()));
      double c_high = neg[ks][std::min(hi, neg[ks].size() - 1)];
      if (c_low > c_high) {
        const double mid = 0.5 * (c_low + c_high);
        c_low = std::max(0.02, mid - 0.1);
        c_high = std::min(0.98, mid + 0.1);
      }
      c_low_[ks] = c_low;
      c_high_[ks] = c_high;
    }
  }
  report.c_low = c_low_;
  report.c_high = c_high_;
  return report;
}

}  // namespace ffsva::detect
