#include "sim/engine.hpp"

#include <algorithm>
#include <cassert>

namespace ffsva::sim {

void SimEngine::at(double t, Event fn) {
  assert(t >= now_ - 1e-12);
  if (t < now_) t = now_;
  queue_.push_back(Entry{t, seq_++, std::move(fn)});
  std::push_heap(queue_.begin(), queue_.end(), std::greater<>{});
}

bool SimEngine::step() {
  if (queue_.empty()) return false;
  std::pop_heap(queue_.begin(), queue_.end(), std::greater<>{});
  Entry e = std::move(queue_.back());
  queue_.pop_back();
  now_ = e.t;
  ++executed_;
  e.fn();
  return true;
}

void SimEngine::run(double until) {
  while (!queue_.empty() && queue_.front().t <= until) {
    step();
  }
}

void KServerResource::submit(double duration_sec, std::function<void()> done) {
  Job job{duration_sec, std::move(done)};
  if (busy_ < servers_) {
    start(std::move(job));
  } else {
    pending_.push_back(std::move(job));
  }
}

void KServerResource::start(Job job) {
  ++busy_;
  busy_time_ += job.duration;
  engine_.after(job.duration, [this, done = std::move(job.done)]() mutable {
    --busy_;
    if (!pending_.empty()) {
      Job next = std::move(pending_.front());
      pending_.pop_front();
      start(std::move(next));
    }
    done();
  });
}

void GpuDevice::submit(std::int64_t model_id, double switch_ms, double exec_us,
                       std::function<void()> done) {
  double total_sec = exec_us * 1e-6;
  if (model_id != loaded_model_) {
    total_sec += switch_ms * 1e-3;
    switch_time_ += switch_ms * 1e-3;
    ++switches_;
    loaded_model_ = model_id;
  }
  server_.submit(total_sec, std::move(done));
}

}  // namespace ffsva::sim
