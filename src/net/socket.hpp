// RAII sockets for the cluster control plane (DESIGN.md §15).
//
// This file (and socket.cpp) is the tree's ONLY home for raw socket
// syscalls — ::socket/::bind/::connect/::send/::recv live here and nowhere
// else (enforced by the `raw-socket` lint rule). Everything above it speaks
// length-prefixed frames through net::Channel.
//
// Scope is deliberately lean: the control plane moves small frames (stream
// specs, telemetry snapshots, heartbeats) between processes on one box or a
// trusted LAN — TCP over localhost or a Unix-domain socket. Reads and
// writes are poll-gated with millisecond deadlines, so a peer that stops
// draining cannot wedge a caller; there are no worker threads here.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace ffsva::net {

/// Where a peer listens. TCP when `port` > 0 (host defaults to loopback);
/// a Unix-domain socket when `uds_path` is non-empty (takes precedence).
struct Endpoint {
  std::string host = "127.0.0.1";
  int port = 0;
  std::string uds_path;

  static Endpoint tcp(std::string host, int port) {
    Endpoint e;
    e.host = std::move(host);
    e.port = port;
    return e;
  }
  static Endpoint uds(std::string path) {
    Endpoint e;
    e.uds_path = std::move(path);
    return e;
  }
  std::string to_string() const;
};

/// A connected stream socket. Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

  /// Block (via poll) until readable, up to timeout_ms (-1 = forever).
  /// False on timeout or error.
  bool wait_readable(int timeout_ms) const;

  /// Write the whole buffer, poll-gating each chunk by deadline_ms of
  /// cumulative stall. False on error/deadline (connection unusable).
  bool send_all(const void* data, std::size_t len, int deadline_ms = 5000);

  /// One poll-gated read of up to `cap` bytes. Returns bytes read, 0 on
  /// orderly peer close, -1 on timeout, -2 on error.
  long recv_some(void* buf, std::size_t cap, int timeout_ms);

 private:
  int fd_ = -1;
};

/// Connect to an endpoint. Returns an invalid Socket on failure.
Socket connect_endpoint(const Endpoint& ep, int timeout_ms = 2000);

/// A listening socket accepting Socket connections.
class Listener {
 public:
  Listener() = default;
  ~Listener();
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Bind + listen. For TCP with port 0 the OS assigns one — read it back
  /// from bound_port(). False on failure.
  bool listen(const Endpoint& ep);

  /// Accept one connection, waiting up to timeout_ms. nullopt on timeout.
  std::optional<Socket> accept(int timeout_ms);

  bool valid() const { return fd_ >= 0; }
  int bound_port() const { return bound_port_; }
  void close();

 private:
  int fd_ = -1;
  int bound_port_ = 0;
  std::string uds_path_;  ///< Unlinked on close so re-binding works.
};

}  // namespace ffsva::net
