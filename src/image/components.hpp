// Connected-component labelling and blob extraction.
//
// Both detectors in the reproduction are segmentation-based: the reference
// ("YOLOv2") detector segments the foreground at full resolution, T-YOLO at
// a coarse, downscaled resolution — which is what makes T-YOLO genuinely
// undercount small / dense / partially-visible objects, the failure mode the
// paper analyses in Section 5.3.
#pragma once

#include <vector>

#include "image/geometry.hpp"
#include "image/image.hpp"

namespace ffsva::image {

struct Component {
  Box box;
  int pixel_count = 0;
  int label = 0;
};

/// 4-connected component labelling of a binary (0 / nonzero) gray image.
/// Components smaller than `min_pixels` are discarded.
/// Returned components are ordered by descending pixel count.
std::vector<Component> connected_components(const Image& binary, int min_pixels = 1);

/// Label map variant: fills `labels` (same size as the image, 0 = background,
/// 1..N = component id) and returns the components. Used by tests.
std::vector<Component> connected_components_labeled(const Image& binary,
                                                    std::vector<int>& labels,
                                                    int min_pixels = 1);

}  // namespace ffsva::image
