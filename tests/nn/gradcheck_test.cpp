// Numerical gradient verification: every layer's backward pass is compared
// against central differences of the forward pass, both for input gradients
// and for parameter gradients. This is the ground truth for the whole
// training stack the SNM filter relies on.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/layers.hpp"
#include "nn/loss.hpp"

namespace ffsva::nn {
namespace {

/// Scalar loss used by the checks: weighted sum of the outputs, with fixed
/// pseudo-random weights so every output contributes a distinct gradient.
double weighted_sum(const Tensor& y) {
  double acc = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    acc += (0.3 + 0.1 * static_cast<double>(i % 7)) * y[i];
  }
  return acc;
}

Tensor weighted_sum_grad(const Tensor& y) {
  Tensor g = Tensor::zeros_like(y);
  for (std::size_t i = 0; i < g.size(); ++i) {
    g[i] = static_cast<float>(0.3 + 0.1 * static_cast<double>(i % 7));
  }
  return g;
}

Tensor random_input(int n, int c, int h, int w, std::uint64_t seed) {
  runtime::Xoshiro256 rng(seed);
  Tensor x(n, c, h, w);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return x;
}

/// Check dLoss/dInput against central differences.
void check_input_gradient(Layer& layer, Tensor x, double tol = 2e-2) {
  const Tensor y = layer.forward(x, /*train=*/true);
  const Tensor gin = layer.backward(weighted_sum_grad(y));
  const float eps = 1e-2f;
  double worst = 0.0;
  for (std::size_t i = 0; i < x.size(); i += std::max<std::size_t>(1, x.size() / 64)) {
    Tensor xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    const double fp = weighted_sum(layer.forward(xp, false));
    const double fm = weighted_sum(layer.forward(xm, false));
    const double numeric = (fp - fm) / (2.0 * eps);
    const double analytic = gin[i];
    worst = std::max(worst, std::abs(numeric - analytic));
  }
  EXPECT_LT(worst, tol);
}

/// Check parameter gradients against central differences.
void check_param_gradients(Layer& layer, Tensor x, double tol = 2e-2) {
  layer.forward(x, true);
  // Zero parameter grads before accumulating.
  for (auto p : layer.params()) p.grad->fill(0.0f);
  const Tensor y = layer.forward(x, true);
  layer.backward(weighted_sum_grad(y));
  for (auto p : layer.params()) {
    Tensor& theta = *p.value;
    Tensor& grad = *p.grad;
    const float eps = 1e-2f;
    double worst = 0.0;
    for (std::size_t i = 0; i < theta.size();
         i += std::max<std::size_t>(1, theta.size() / 48)) {
      const float saved = theta[i];
      theta[i] = saved + eps;
      const double fp = weighted_sum(layer.forward(x, false));
      theta[i] = saved - eps;
      const double fm = weighted_sum(layer.forward(x, false));
      theta[i] = saved;
      const double numeric = (fp - fm) / (2.0 * eps);
      worst = std::max(worst, std::abs(numeric - grad[i]));
    }
    EXPECT_LT(worst, tol);
  }
}

TEST(GradCheck, Conv2dInput) {
  runtime::Xoshiro256 rng(1);
  Conv2d conv(2, 3, 3, 1, 1, rng);
  check_input_gradient(conv, random_input(2, 2, 6, 6, 10));
}

TEST(GradCheck, Conv2dStridedInput) {
  runtime::Xoshiro256 rng(2);
  Conv2d conv(1, 4, 3, 2, 1, rng);
  check_input_gradient(conv, random_input(1, 1, 9, 9, 11));
}

TEST(GradCheck, Conv2dParams) {
  runtime::Xoshiro256 rng(3);
  Conv2d conv(2, 2, 3, 1, 1, rng);
  check_param_gradients(conv, random_input(2, 2, 5, 5, 12));
}

TEST(GradCheck, Conv2dStridedParams) {
  runtime::Xoshiro256 rng(4);
  Conv2d conv(1, 3, 3, 2, 1, rng);
  check_param_gradients(conv, random_input(2, 1, 8, 8, 13));
}

TEST(GradCheck, LinearInput) {
  runtime::Xoshiro256 rng(5);
  Linear fc(12, 5, rng);
  check_input_gradient(fc, random_input(3, 12, 1, 1, 14));
}

TEST(GradCheck, LinearParams) {
  runtime::Xoshiro256 rng(6);
  Linear fc(8, 3, rng);
  check_param_gradients(fc, random_input(2, 8, 1, 1, 15));
}

TEST(GradCheck, ReLUInput) {
  ReLU relu;
  // Keep inputs away from the kink at 0 where the numeric derivative lies.
  Tensor x = random_input(2, 3, 4, 4, 16);
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (std::abs(x[i]) < 0.05f) x[i] = 0.2f;
  }
  check_input_gradient(relu, x);
}

TEST(GradCheck, SigmoidInput) {
  Sigmoid s;
  check_input_gradient(s, random_input(2, 2, 3, 3, 17), 1e-3);
}

TEST(GradCheck, MaxPoolInput) {
  MaxPool2d pool(2, 2);
  // Spread values so the argmax is stable under the epsilon perturbation.
  Tensor x(1, 2, 4, 4);
  runtime::Xoshiro256 rng(18);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(i) * 0.37f + static_cast<float>(rng.uniform(0, 0.01));
  }
  check_input_gradient(pool, x);
}

TEST(GradCheck, FullSnmShapedNetwork) {
  // The SNM architecture end to end: CONV-ReLU-CONV-ReLU-FC with a BCE
  // head, parameter gradients checked through the whole chain.
  runtime::Xoshiro256 rng(19);
  Sequential net;
  net.add(std::make_unique<Conv2d>(1, 2, 3, 2, 1, rng))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<Conv2d>(2, 3, 3, 2, 1, rng))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<Linear>(3 * 3 * 3, 1, rng));
  Tensor x = random_input(4, 1, 10, 10, 20);
  const std::vector<float> targets{1.0f, 0.0f, 1.0f, 0.0f};

  auto loss_of = [&] {
    Tensor grad;
    return bce_with_logits(net.forward(x, false), targets, grad);
  };

  net.zero_grad();
  Tensor grad;
  bce_with_logits(net.forward(x, true), targets, grad);
  net.backward(grad);

  const float eps = 1e-2f;
  for (auto p : net.params()) {
    Tensor& theta = *p.value;
    double worst = 0.0;
    for (std::size_t i = 0; i < theta.size();
         i += std::max<std::size_t>(1, theta.size() / 16)) {
      const float saved = theta[i];
      theta[i] = saved + eps;
      const double fp = loss_of();
      theta[i] = saved - eps;
      const double fm = loss_of();
      theta[i] = saved;
      worst = std::max(worst, std::abs((fp - fm) / (2.0 * eps) -
                                       static_cast<double>((*p.grad)[i])));
    }
    EXPECT_LT(worst, 5e-3);
  }
}

}  // namespace
}  // namespace ffsva::nn
