file(REMOVE_RECURSE
  "CMakeFiles/image_tests.dir/image/components_test.cpp.o"
  "CMakeFiles/image_tests.dir/image/components_test.cpp.o.d"
  "CMakeFiles/image_tests.dir/image/draw_test.cpp.o"
  "CMakeFiles/image_tests.dir/image/draw_test.cpp.o.d"
  "CMakeFiles/image_tests.dir/image/geometry_test.cpp.o"
  "CMakeFiles/image_tests.dir/image/geometry_test.cpp.o.d"
  "CMakeFiles/image_tests.dir/image/image_test.cpp.o"
  "CMakeFiles/image_tests.dir/image/image_test.cpp.o.d"
  "CMakeFiles/image_tests.dir/image/ops_test.cpp.o"
  "CMakeFiles/image_tests.dir/image/ops_test.cpp.o.d"
  "image_tests"
  "image_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
