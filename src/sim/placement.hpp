// Thousand-stream placement validation (DESIGN.md §15).
//
// The cluster scheduler and this simulator share one policy object —
// core::ClusterManager — so the placement behaviour the 2-node smoke run
// exercises at small scale is validated here at the scale the paper's
// Section 4.3.1 targets: hundreds of instances' worth of streams arriving,
// being admitted to instances with demonstrated spare T-YOLO capacity, and
// being re-forwarded away from instances that overload.
//
// The model is deliberately coarser than sim/engine.cpp: each instance is a
// T-YOLO service with a fixed capacity (FPS); each stream is a demand (FPS).
// Per virtual tick the simulator synthesizes exactly the InstanceSnapshot a
// live node would report — a cumulative served counter advancing at
// min(demand, capacity), and a filter queue pinned at its threshold while
// demand exceeds capacity — and folds it through report_snapshot, the same
// entry point the socket scheduler uses. Placement and re-forward decisions
// then come from the very code under test.
#pragma once

#include <cstdint>
#include <vector>

#include "core/config.hpp"

namespace ffsva::sim {

struct PlacementSetup {
  core::FfsVaConfig config;   ///< Supplies admit_tyolo_fps / admit_window_sec.
  int instances = 8;
  int streams = 1000;
  double duration_sec = 300.0;
  double dt_sec = 0.25;       ///< Snapshot cadence (virtual).
  /// Stream arrivals per virtual second (they stop once `streams` arrived).
  double arrival_per_sec = 20.0;
  /// Per-instance T-YOLO service ceiling (FPS).
  double capacity_fps = 160.0;
  /// Per-stream demand, uniform in [demand_min_fps, demand_max_fps].
  double demand_min_fps = 0.5;
  double demand_max_fps = 1.5;
  /// Hot-spot injection: at `hot_spot_at_sec` (negative = never) instance 0's
  /// capacity is multiplied by `hot_spot_factor` — a degraded server the
  /// re-forward policy must drain back under its ceiling.
  double hot_spot_at_sec = -1.0;
  double hot_spot_factor = 0.4;
  /// Re-forward decisions taken per tick, at most (a real control plane
  /// moves streams one hand-off at a time, not in bulk).
  int max_reforwards_per_tick = 4;
  std::uint64_t seed = 1;
};

struct PlacementResult {
  int placed = 0;             ///< Streams attached (== setup.streams on success).
  int policy_placed = 0;      ///< Via place_new_stream (demonstrated spare).
  int fallback_placed = 0;    ///< Round-robin while no instance showed spare.
  int reforwards = 0;         ///< Total re-forward decisions applied.
  int overloaded_final = 0;   ///< Instances with demand > capacity at the end.
  bool converged = false;     ///< No instance overloaded at the end.
  int max_stream_spread = 0;  ///< max - min per-instance stream count at end.
  std::vector<int> final_streams;      ///< Per-instance stream counts.
  std::vector<double> final_load_fps;  ///< Per-instance demand sums.
  /// Hot-spot recovery: virtual seconds from the capacity cut until the hot
  /// instance's demand fits its reduced capacity again (-1 = never / no
  /// hot spot configured), and streams moved off it after the cut.
  double hot_spot_drain_sec = -1.0;
  int hot_spot_moves = 0;
  double sim_time_sec = 0.0;
};

/// Drive core::ClusterManager under virtual time. Deterministic in `seed`.
PlacementResult simulate_placement(const PlacementSetup& setup);

}  // namespace ffsva::sim
