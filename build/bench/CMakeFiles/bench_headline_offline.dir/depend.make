# Empty dependencies file for bench_headline_offline.
# This may be replaced when dependencies are built.
