#include "detect/sdd.hpp"

#include <gtest/gtest.h>

#include "image/draw.hpp"
#include "video/profiles.hpp"

namespace ffsva::detect {
namespace {

image::Image flat(std::uint8_t v) { return image::Image(64, 64, 3, v); }

TEST(SddFilter, EmptyReferenceThrows) {
  EXPECT_THROW(SddFilter(SddConfig{}, image::Image{}), std::invalid_argument);
}

TEST(SddFilter, IdenticalFrameHasZeroDistance) {
  const auto bg = flat(90);
  SddFilter sdd(SddConfig{}, bg);
  EXPECT_NEAR(sdd.distance(bg), 0.0, 1e-9);
  EXPECT_FALSE(sdd.pass(bg));
}

TEST(SddFilter, ObjectRaisesDistance) {
  const auto bg = flat(90);
  auto frame = bg;
  image::fill_rect(frame, image::Box{10, 10, 40, 30}, image::Rgb{230, 40, 40});
  SddConfig cfg;
  cfg.delta_diff = 5.0;
  SddFilter sdd(cfg, bg);
  EXPECT_GT(sdd.distance(frame), 5.0);
  EXPECT_TRUE(sdd.pass(frame));
}

TEST(SddFilter, MetricsAgreeOnOrdering) {
  const auto bg = flat(90);
  auto small_change = bg;
  image::fill_rect(small_change, image::Box{0, 0, 8, 8}, image::Rgb{140, 140, 140});
  auto big_change = bg;
  image::fill_rect(big_change, image::Box{0, 0, 40, 40}, image::Rgb{230, 230, 230});
  for (SddMetric m : {SddMetric::kMse, SddMetric::kNrmse, SddMetric::kSad}) {
    SddConfig cfg;
    cfg.metric = m;
    SddFilter sdd(cfg, bg);
    EXPECT_LT(sdd.distance(small_change), sdd.distance(big_change))
        << to_string(m);
  }
}

TEST(SddFilter, NrmseIsNormalized) {
  const auto bg = flat(0);
  const auto white = flat(255);
  SddConfig cfg;
  cfg.metric = SddMetric::kNrmse;
  cfg.gain_compensate = false;  // measure the raw global change
  SddFilter sdd(cfg, bg);
  EXPECT_NEAR(sdd.distance(white), 1.0, 1e-6);
}

TEST(SddFilter, GainCompensationIgnoresGlobalLighting) {
  const auto bg = flat(100);
  // A globally brightened frame is "the same scene under other light".
  auto brighter = bg;
  image::apply_gain(brighter, 1.2);
  // The same brightening plus a real object.
  auto with_object = brighter;
  image::fill_rect(with_object, image::Box{10, 10, 34, 26}, image::Rgb{230, 40, 40});

  SddConfig comp;  // gain_compensate = true by default
  SddFilter sdd(comp, bg);
  EXPECT_LT(sdd.distance(brighter), 2.0);
  EXPECT_GT(sdd.distance(with_object), 20.0);

  SddConfig raw;
  raw.gain_compensate = false;
  SddFilter sdd_raw(raw, bg);
  // Without compensation the lighting alone already looks like change.
  EXPECT_GT(sdd_raw.distance(brighter), 100.0);
}

TEST(SddFilter, ResizesInputToFeatureSize) {
  // A frame of a different resolution than the reference still works: both
  // are resized to the SDD feature size (100x100 by default).
  const image::Image bg(64, 64, 3, 90);
  const image::Image frame(128, 128, 3, 90);
  SddFilter sdd(SddConfig{}, bg);
  EXPECT_LT(sdd.distance(frame), 2.0);
}

TEST(SddCalibrate, SeparatesCleanDistances) {
  SddFilter sdd(SddConfig{}, flat(90));
  // Background distances ~5, target distances ~100.
  std::vector<double> d;
  std::vector<bool> label;
  for (int i = 0; i < 100; ++i) {
    d.push_back(5.0 + i * 0.01);
    label.push_back(false);
  }
  for (int i = 0; i < 50; ++i) {
    d.push_back(100.0 + i);
    label.push_back(true);
  }
  const double delta = sdd.calibrate(d, label);
  EXPECT_GT(delta, 6.0);
  EXPECT_LT(delta, 100.0);
  // All targets pass, all backgrounds are filtered, at the chosen delta.
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(d[i] > delta, label[i]);
  }
}

TEST(SddCalibrate, RelaxFactorSitsBelowQuantile) {
  SddConfig cfg;
  cfg.fn_budget = 0.0;   // quantile = min target distance
  cfg.relax_factor = 0.5;
  cfg.bg_margin = 100.0;  // disable the background anchor for this check
  SddFilter sdd(cfg, flat(90));
  std::vector<double> d{1.0, 2.0, 50.0, 60.0, 70.0};
  std::vector<bool> label{false, false, true, true, true};
  const double delta = sdd.calibrate(d, label);
  EXPECT_NEAR(delta, 25.0, 1e-9);  // 0.5 * min(50)
}

TEST(SddCalibrate, BackgroundAnchorBoundsDelta) {
  // Targets so strong that the FN rule alone would pick a huge delta; the
  // background anchor keeps it near the background-distance ceiling.
  SddConfig cfg;
  cfg.bg_quantile = 0.90;
  cfg.bg_margin = 1.15;
  SddFilter sdd(cfg, flat(90));
  std::vector<double> d;
  std::vector<bool> label;
  for (int i = 0; i < 100; ++i) {
    d.push_back(4.0 + 0.02 * i);  // background: 4.0 .. 6.0
    label.push_back(false);
  }
  for (int i = 0; i < 50; ++i) {
    d.push_back(200.0 + i);
    label.push_back(true);
  }
  const double delta = sdd.calibrate(d, label);
  EXPECT_LT(delta, 10.0);
  EXPECT_GT(delta, 4.0);
}

TEST(SddCalibrate, NoTargetsFallsBackConservatively) {
  SddFilter sdd(SddConfig{}, flat(90));
  std::vector<double> d{1.0, 2.0, 3.0, 4.0};
  std::vector<bool> label{false, false, false, false};
  const double delta = sdd.calibrate(d, label);
  EXPECT_GT(delta, 0.0);
  EXPECT_LT(delta, 10.0);
}

TEST(SddCalibrate, BadInputsThrow) {
  SddFilter sdd(SddConfig{}, flat(90));
  EXPECT_THROW(sdd.calibrate({}, {}), std::invalid_argument);
  EXPECT_THROW(sdd.calibrate({1.0}, {true, false}), std::invalid_argument);
}

TEST(SddCalibrateOn, RealSceneKeepsTargetFramesPassing) {
  video::SceneConfig cfg = video::jackson_profile();
  cfg.width = 96;
  cfg.height = 72;
  cfg.tor = 0.4;
  video::SceneSimulator sim(cfg, 21, 800);
  std::vector<video::Frame> frames;
  for (int i = 0; i < 800; ++i) frames.push_back(sim.render(i));

  SddFilter sdd(SddConfig{}, sim.background());
  const double delta = sdd.calibrate_on(frames, cfg.target);
  EXPECT_GT(delta, 0.0);

  // On the calibration window itself the FN rate must respect the budget
  // (with slack for the relax factor this should be ~0).
  int fn = 0, targets = 0;
  for (const auto& f : frames) {
    if (!f.gt.any_target(cfg.target)) continue;
    ++targets;
    if (!sdd.pass(f.image)) ++fn;
  }
  ASSERT_GT(targets, 0);
  EXPECT_LT(static_cast<double>(fn) / targets, 0.02);
}

TEST(SddFilter, ToStringCoversMetrics) {
  EXPECT_STREQ(to_string(SddMetric::kMse), "MSE");
  EXPECT_STREQ(to_string(SddMetric::kNrmse), "NRMSE");
  EXPECT_STREQ(to_string(SddMetric::kSad), "SAD");
}

}  // namespace
}  // namespace ffsva::detect
