
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/runtime/bounded_queue_test.cpp" "tests/CMakeFiles/runtime_tests.dir/runtime/bounded_queue_test.cpp.o" "gcc" "tests/CMakeFiles/runtime_tests.dir/runtime/bounded_queue_test.cpp.o.d"
  "/root/repo/tests/runtime/rate_limiter_test.cpp" "tests/CMakeFiles/runtime_tests.dir/runtime/rate_limiter_test.cpp.o" "gcc" "tests/CMakeFiles/runtime_tests.dir/runtime/rate_limiter_test.cpp.o.d"
  "/root/repo/tests/runtime/rng_test.cpp" "tests/CMakeFiles/runtime_tests.dir/runtime/rng_test.cpp.o" "gcc" "tests/CMakeFiles/runtime_tests.dir/runtime/rng_test.cpp.o.d"
  "/root/repo/tests/runtime/spsc_ring_test.cpp" "tests/CMakeFiles/runtime_tests.dir/runtime/spsc_ring_test.cpp.o" "gcc" "tests/CMakeFiles/runtime_tests.dir/runtime/spsc_ring_test.cpp.o.d"
  "/root/repo/tests/runtime/stats_test.cpp" "tests/CMakeFiles/runtime_tests.dir/runtime/stats_test.cpp.o" "gcc" "tests/CMakeFiles/runtime_tests.dir/runtime/stats_test.cpp.o.d"
  "/root/repo/tests/runtime/stopwatch_test.cpp" "tests/CMakeFiles/runtime_tests.dir/runtime/stopwatch_test.cpp.o" "gcc" "tests/CMakeFiles/runtime_tests.dir/runtime/stopwatch_test.cpp.o.d"
  "/root/repo/tests/runtime/thread_pool_test.cpp" "tests/CMakeFiles/runtime_tests.dir/runtime/thread_pool_test.cpp.o" "gcc" "tests/CMakeFiles/runtime_tests.dir/runtime/thread_pool_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ffsva_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ffsva_core.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/ffsva_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/ffsva_video.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ffsva_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/ffsva_image.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ffsva_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
