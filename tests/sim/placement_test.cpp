// The cluster placement policy at thousand-stream scale (DESIGN.md §15):
// the same core::ClusterManager the socket scheduler drives, validated
// under virtual time — admission keeps every instance under its ceiling,
// the stream spread stays balanced, and an injected hot spot is drained by
// re-forwarding.
#include "sim/placement.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace ffsva::sim {
namespace {

PlacementSetup thousand_streams() {
  PlacementSetup s;
  s.instances = 8;
  s.streams = 1000;
  s.duration_sec = 300.0;
  s.dt_sec = 0.25;
  s.arrival_per_sec = 20.0;      // all 1000 arrive within ~50 virtual sec
  s.capacity_fps = 160.0;
  s.demand_min_fps = 0.5;        // mean demand 1 FPS → ~1000 FPS total
  s.demand_max_fps = 1.5;        //   vs 8 × 160 = 1280 FPS capacity
  s.config.admit_tyolo_fps = 140.0;
  s.config.admit_window_sec = 2.0;
  s.seed = 7;
  return s;
}

TEST(Placement, ThousandStreamsAllPlacedAndConverged) {
  const PlacementResult r = simulate_placement(thousand_streams());
  EXPECT_EQ(r.placed, 1000);
  // Once the admission windows warm up the policy does the placing; the
  // round-robin fallback may cover the cold start but must not dominate.
  EXPECT_GT(r.policy_placed, r.fallback_placed);
  // Demand (~1000 FPS) fits capacity (1280 FPS): no instance may end over
  // its ceiling, and the load must be spread rather than piled up.
  EXPECT_TRUE(r.converged) << r.overloaded_final << " instances overloaded";
  EXPECT_EQ(std::accumulate(r.final_streams.begin(), r.final_streams.end(), 0),
            1000);
  for (double load : r.final_load_fps) EXPECT_LE(load, 160.0);
  EXPECT_LT(r.max_stream_spread, 500) << "placement piled streams up";
}

TEST(Placement, DeterministicInSeed) {
  const PlacementResult a = simulate_placement(thousand_streams());
  const PlacementResult b = simulate_placement(thousand_streams());
  EXPECT_EQ(a.placed, b.placed);
  EXPECT_EQ(a.policy_placed, b.policy_placed);
  EXPECT_EQ(a.reforwards, b.reforwards);
  EXPECT_EQ(a.final_streams, b.final_streams);
}

TEST(Placement, HotSpotIsDrainedByReforwarding) {
  PlacementSetup s = thousand_streams();
  s.hot_spot_at_sec = 120.0;  // well after all arrivals settle
  s.hot_spot_factor = 0.4;    // 160 → 64 FPS: instance 0 must shed ~half
  const PlacementResult r = simulate_placement(s);
  EXPECT_EQ(r.placed, 1000);
  EXPECT_GT(r.hot_spot_moves, 0) << "no streams moved off the hot instance";
  ASSERT_GE(r.hot_spot_drain_sec, 0.0) << "hot instance never recovered";
  EXPECT_LT(r.hot_spot_drain_sec, 150.0);
  // The drained instance ends under its reduced ceiling.
  EXPECT_LE(r.final_load_fps[0], 64.0 + 1e-9);
  EXPECT_TRUE(r.converged);
}

TEST(Placement, OverProvisionedDemandReportsOverload) {
  PlacementSetup s = thousand_streams();
  s.streams = 1000;
  s.capacity_fps = 40.0;  // 8 × 40 = 320 FPS cannot host ~1000 FPS demand
  s.duration_sec = 120.0;
  const PlacementResult r = simulate_placement(s);
  EXPECT_EQ(r.placed, 1000);  // a control plane still places everything...
  EXPECT_FALSE(r.converged);  // ...but the result honestly reports overload
  EXPECT_GT(r.overloaded_final, 0);
}

}  // namespace
}  // namespace ffsva::sim
