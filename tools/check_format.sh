#!/usr/bin/env bash
# Format gate: clang-format --dry-run --Werror over every tracked C++ file.
#
# Exit codes: 0 clean, 1 violations, 77 clang-format unavailable (ctest's
# SKIP_RETURN_CODE — containers without the LLVM toolchain skip, not fail).
set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"

clang_format=""
for cand in "${CLANG_FORMAT:-}" clang-format clang-format-18 clang-format-17 \
            clang-format-16; do
  if [ -n "$cand" ] && command -v "$cand" >/dev/null 2>&1; then
    clang_format="$cand"
    break
  fi
done
if [ -z "$clang_format" ]; then
  echo "check_format: clang-format not found on PATH — skipping (77)"
  exit 77
fi

# Tracked C++ sources only; fall back to find when not in a git checkout.
if git rev-parse --is-inside-work-tree >/dev/null 2>&1; then
  files=$(git ls-files -- 'src/**/*.[ch]pp' 'tests/**/*.[ch]pp' \
          'bench/**/*.[ch]pp' 'examples/**/*.[ch]pp')
else
  files=$(find src tests bench examples -name '*.cpp' -o -name '*.hpp' 2>/dev/null)
fi
if [ -z "$files" ]; then
  echo "check_format: no C++ sources found" >&2
  exit 1
fi

# shellcheck disable=SC2086
if "$clang_format" --dry-run --Werror $files; then
  echo "check_format: $(echo "$files" | wc -l) files clean"
  exit 0
else
  echo "check_format: formatting violations (run: $clang_format -i <files>)" >&2
  exit 1
fi
