// relaxed-ok: the NetCounters atomics are monotonic telemetry tallies read
// by metric-gauge callbacks; no consumer orders other memory against them.
#include "net/channel.hpp"

#include <chrono>
#include <sstream>
#include <thread>

#include "runtime/binary_io.hpp"
#include "runtime/supervision.hpp"

namespace ffsva::net {

namespace {
constexpr int kMaxBackoffMs = 1000;
constexpr std::size_t kRecvChunk = 64 * 1024;
}  // namespace

std::string HelloInfo::serialize() const {
  std::ostringstream os;
  runtime::write_pod(os, &wire_version);
  runtime::write_pod(os, &node_id);
  return std::move(os).str();
}

std::optional<HelloInfo> HelloInfo::parse(std::string_view payload) {
  std::istringstream is{std::string(payload)};
  HelloInfo h;
  if (!runtime::read_pod(is, &h.wire_version) ||
      !runtime::read_pod(is, &h.node_id)) {
    return std::nullopt;
  }
  return h;
}

bool Channel::send(MsgType type, std::string_view payload) {
  if (!sock_.valid()) return false;
  const std::string frame = encode_frame(type, payload);
  if (!sock_.send_all(frame.data(), frame.size())) {
    sock_.close();
    return false;
  }
  if (counters_) {
    counters_->bytes_tx.fetch_add(frame.size(), std::memory_order_relaxed);
  }
  return true;
}

std::optional<WireFrame> Channel::recv(int timeout_ms) {
  using Clock = std::chrono::steady_clock;
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    if (!queued_.empty()) {
      WireFrame f = std::move(queued_.front());
      queued_.erase(queued_.begin());
      last_rx_ms_ = runtime::steady_now_ms();
      return f;
    }
    if (!sock_.valid()) return std::nullopt;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          deadline - Clock::now())
                          .count();
    if (left < 0) return std::nullopt;
    char buf[kRecvChunk];
    const long got = sock_.recv_some(buf, sizeof(buf), static_cast<int>(left));
    if (got == -1) return std::nullopt;  // timeout
    if (got <= 0) {                      // orderly close or hard error
      sock_.close();
      return std::nullopt;
    }
    if (!decoder_.feed(buf, static_cast<std::size_t>(got), queued_)) {
      // Byte-desynchronized (garbage / foreign version / hostile length):
      // the connection is dead by contract — no resync scan.
      sock_.close();
      return std::nullopt;
    }
    if (counters_) {
      counters_->bytes_rx.fetch_add(static_cast<std::uint64_t>(got),
                                    std::memory_order_relaxed);
    }
  }
}

bool Channel::handshake_client(std::uint32_t node_id, int timeout_ms) {
  HelloInfo hello;
  hello.node_id = node_id;
  if (!send(MsgType::kHello, hello.serialize())) return false;
  const auto reply = recv(timeout_ms);
  if (!reply || reply->type != MsgType::kHelloAck) {
    sock_.close();
    return false;
  }
  return true;
}

std::optional<HelloInfo> Channel::handshake_server(int timeout_ms) {
  const auto frame = recv(timeout_ms);
  if (!frame || frame->type != MsgType::kHello) {
    sock_.close();
    return std::nullopt;
  }
  const auto hello = HelloInfo::parse(frame->payload);
  // The frame decoder already rejects a foreign wire version at the framing
  // layer; this re-check guards the application-level field (a future-proof
  // peer could frame correctly yet speak a protocol we don't).
  if (!hello || hello->wire_version != kWireVersion) {
    send(MsgType::kHelloReject);
    sock_.close();
    return std::nullopt;
  }
  if (!send(MsgType::kHelloAck, HelloInfo{}.serialize())) return std::nullopt;
  return hello;
}

std::int64_t Channel::last_rx_age_ms() const {
  if (last_rx_ms_ < 0) return -1;
  return runtime::steady_now_ms() - last_rx_ms_;
}

Channel* ReconnectingClient::get(int timeout_ms) {
  if (chan_.connected()) return &chan_;
  const std::int64_t now = runtime::steady_now_ms();
  if (now < next_dial_ms_) {
    // cancel-ok: backoff remainder, bounded by kMaxBackoffMs (1 s); the
    // caller loop re-checks its own stop condition between get() calls.
    std::this_thread::sleep_for(std::chrono::milliseconds(
        std::min<std::int64_t>(next_dial_ms_ - now, kMaxBackoffMs)));
  }
  Socket s = connect_endpoint(ep_, timeout_ms);
  if (s.valid()) {
    Channel fresh(std::move(s), counters_);
    if (fresh.handshake_client(node_id_, timeout_ms)) {
      chan_ = std::move(fresh);
      backoff_ms_ = 0;
      next_dial_ms_ = 0;
      if (ever_connected_ && counters_) {
        counters_->reconnects.fetch_add(1, std::memory_order_relaxed);
      }
      ever_connected_ = true;
      return &chan_;
    }
  }
  backoff_ms_ = backoff_ms_ == 0 ? 10 : std::min(backoff_ms_ * 2, kMaxBackoffMs);
  next_dial_ms_ = runtime::steady_now_ms() + backoff_ms_;
  return nullptr;
}

void ReconnectingClient::reset() { chan_.close(); }

}  // namespace ffsva::net
