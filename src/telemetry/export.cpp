// relaxed-ok: see telemetry/export.hpp — samples_ is a monotonic progress
// counter; everything else is ordered by the sampler thread's join.
#include "telemetry/export.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

namespace ffsva::telemetry {

namespace {
/// Doubles formatted compactly; JSON forbids nan/inf, map them to 0.
void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "0";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}
}  // namespace

std::string metrics_jsonl_row(const MetricsSnapshot& cur,
                              const MetricsSnapshot* prev, double t_sec,
                              double dt_sec, const std::string& label,
                              int node_id) {
  std::string out;
  out.reserve(512);
  out += "{\"t_sec\":";
  append_number(out, t_sec);
  if (node_id >= 0) {
    out += ",\"node_id\":";
    out += std::to_string(node_id);
  }
  if (!label.empty()) {
    out += ",\"label\":\"";
    out += label;  // labels are caller-controlled identifiers, not user text
    out += '"';
  }

  out += ",\"counters\":{";
  for (std::size_t i = 0; i < cur.counters.size(); ++i) {
    if (i) out += ',';
    out += '"';
    out += cur.counters[i].first;
    out += "\":";
    out += std::to_string(cur.counters[i].second);
  }
  out += '}';

  // Rates: per-counter delta over the sampling interval. With a null prev
  // the whole run so far is the interval (first row).
  out += ",\"rates\":{";
  bool first = true;
  for (const auto& [name, value] : cur.counters) {
    const std::uint64_t before = prev ? prev->counter_or(name) : 0;
    if (dt_sec <= 0.0) break;
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":";
    append_number(out, static_cast<double>(value - std::min(before, value)) / dt_sec);
  }
  out += '}';

  out += ",\"gauges\":{";
  for (std::size_t i = 0; i < cur.gauges.size(); ++i) {
    if (i) out += ',';
    out += '"';
    out += cur.gauges[i].first;
    out += "\":";
    append_number(out, cur.gauges[i].second);
  }
  out += '}';

  out += ",\"hist\":{";
  for (std::size_t i = 0; i < cur.histograms.size(); ++i) {
    const auto& [name, h] = cur.histograms[i];
    if (i) out += ',';
    out += '"';
    out += name;
    out += "\":{\"count\":";
    out += std::to_string(h.count);
    out += ",\"mean\":";
    append_number(out, h.mean());
    out += ",\"p50\":";
    append_number(out, h.quantile(0.50));
    out += ",\"p99\":";
    append_number(out, h.quantile(0.99));
    out += ",\"max\":";
    append_number(out, h.max);
    out += '}';
  }
  out += "}}";
  return out;
}

bool MetricsExporter::start_file(const std::string& path, int interval_ms,
                                 std::string label) {
  stop();
  file_.open(path, std::ios::app);
  if (!file_) return false;
  sink_ = &file_;
  start(interval_ms, std::move(label));
  return true;
}

void MetricsExporter::start_stream(std::ostream* sink, int interval_ms,
                                   std::string label) {
  stop();
  sink_ = sink;
  start(interval_ms, std::move(label));
}

void MetricsExporter::start(int interval_ms, std::string label) {
  label_ = std::move(label);
  {
    runtime::MutexLock lk(mu_);
    stopping_ = false;
  }
  samples_ = 0;
  have_prev_ = false;
  prev_t_sec_ = 0.0;
  t0_ = std::chrono::steady_clock::now();
  // thread-ok: the sampler thread; stop() joins it before the sink closes.
  thread_ = std::thread([this, interval_ms] { loop(std::max(1, interval_ms)); });
}

void MetricsExporter::loop(int interval_ms) {
  runtime::UniqueLock lk(mu_);
  for (;;) {
    // One sampling interval: sleep until the deadline or a stop request
    // (explicit wait loop; see runtime/annotations.hpp).
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(interval_ms);
    while (!stopping_) {
      if (cv_.wait_until(lk, deadline) == std::cv_status::timeout) break;
    }
    if (stopping_) return;  // final sample is taken by stop() after the join
    lk.unlock();
    sample_once();
    lk.lock();
  }
}

void MetricsExporter::sample_once() {
  if (!sink_) return;
  const double t_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
          .count();
  MetricsSnapshot cur = registry_.snapshot();
  const double dt = t_sec - (have_prev_ ? prev_t_sec_ : 0.0);
  *sink_ << metrics_jsonl_row(cur, have_prev_ ? &prev_ : nullptr, t_sec, dt,
                              label_, node_id_)
         << '\n';
  prev_ = std::move(cur);
  prev_t_sec_ = t_sec;
  have_prev_ = true;
  samples_.fetch_add(1, std::memory_order_relaxed);
}

void MetricsExporter::stop() {
  if (thread_.joinable()) {
    {
      runtime::MutexLock lk(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    thread_.join();
    sample_once();  // the run's closing state always lands in the sink
    sink_->flush();
  }
  if (file_.is_open()) file_.close();
  sink_ = nullptr;
}

}  // namespace ffsva::telemetry
