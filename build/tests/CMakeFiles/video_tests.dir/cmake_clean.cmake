file(REMOVE_RECURSE
  "CMakeFiles/video_tests.dir/video/clips_test.cpp.o"
  "CMakeFiles/video_tests.dir/video/clips_test.cpp.o.d"
  "CMakeFiles/video_tests.dir/video/codec_test.cpp.o"
  "CMakeFiles/video_tests.dir/video/codec_test.cpp.o.d"
  "CMakeFiles/video_tests.dir/video/profiles_test.cpp.o"
  "CMakeFiles/video_tests.dir/video/profiles_test.cpp.o.d"
  "CMakeFiles/video_tests.dir/video/scene_property_test.cpp.o"
  "CMakeFiles/video_tests.dir/video/scene_property_test.cpp.o.d"
  "CMakeFiles/video_tests.dir/video/scene_test.cpp.o"
  "CMakeFiles/video_tests.dir/video/scene_test.cpp.o.d"
  "CMakeFiles/video_tests.dir/video/source_test.cpp.o"
  "CMakeFiles/video_tests.dir/video/source_test.cpp.o.d"
  "CMakeFiles/video_tests.dir/video/tor_schedule_test.cpp.o"
  "CMakeFiles/video_tests.dir/video/tor_schedule_test.cpp.o.d"
  "video_tests"
  "video_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
