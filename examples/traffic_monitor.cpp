// Traffic monitor: online multi-camera congestion detection.
//
// The paper's motivating scenario (Section 2.3): "at a crossroad, more cars
// detected than usual means a traffic jam". This example runs several live
// traffic cameras through one FFS-VA instance with NumberofObjects = 2 —
// frames with fewer than two vehicles are filtered out before the
// full-feature model — and raises a congestion alert whenever the reference
// model confirms a scene with 3+ vehicles.
//
// Build & run:  ./build/examples/traffic_monitor
#include <atomic>
#include <cstdio>
#include <memory>

#include "core/pipeline.hpp"
#include "video/profiles.hpp"
#include "video/source.hpp"

using namespace ffsva;

int main() {
  constexpr int kCameras = 3;
  constexpr std::int64_t kCalib = 800;
  constexpr std::int64_t kLive = 500;

  core::FfsVaConfig config;
  config.number_of_objects = 2;  // "more cars than usual"
  config.online_fps = 120.0;     // compressed wall-clock for the demo
  core::FfsVaInstance instance(config);

  std::printf("Specializing %d traffic cameras...\n", kCameras);
  std::vector<std::shared_ptr<video::SceneSimulator>> sims;
  for (int cam = 0; cam < kCameras; ++cam) {
    video::SceneConfig cfg = video::jackson_profile();
    cfg.tor = 0.15 + 0.1 * cam;  // each intersection is differently busy
    cfg.multi_object_bias = 0.55;
    auto sim = std::make_shared<video::SceneSimulator>(cfg, 100 + cam,
                                                       kCalib + kLive);
    std::vector<video::Frame> calib;
    for (std::int64_t i = 0; i < kCalib; ++i) calib.push_back(sim->render(i));
    detect::SpecializeConfig sc;
    sc.target = cfg.target;
    sc.snm.epochs = 6;
    auto models = detect::specialize_stream(calib, sc, 100 + cam);
    std::printf("  cam%d: TOR %.2f, SNM accuracy %.1f%%\n", cam, sim->planned_tor(),
                100 * models.snm_report.val_accuracy);

    class LiveClip final : public video::FrameSource {
     public:
      LiveClip(std::shared_ptr<const video::SceneSimulator> s, int id,
               std::int64_t begin, std::int64_t end)
          : sim_(std::move(s)), id_(id), next_(begin), end_(end) {}
      std::optional<video::Frame> next() override {
        if (next_ >= end_) return std::nullopt;
        return sim_->render(next_++, id_);
      }
      std::int64_t total_frames() const override { return end_; }

     private:
      std::shared_ptr<const video::SceneSimulator> sim_;
      int id_;
      std::int64_t next_, end_;
    };
    instance.add_stream(
        std::make_unique<LiveClip>(sim, cam, kCalib, kCalib + kLive),
        std::move(models));
    sims.push_back(std::move(sim));
  }

  // Congestion alerts from the reference model's confirmed counts.
  std::atomic<int> alerts{0};
  std::vector<std::int64_t> last_alert(kCameras, -1000);
  std::mutex alert_mu;
  instance.set_output_sink([&](const core::OutputEvent& ev) {
    const int vehicles = ev.result.count_target(video::ObjectClass::kCar);
    if (vehicles < 3) return;
    std::lock_guard lk(alert_mu);
    auto& last = last_alert[static_cast<std::size_t>(ev.frame.stream_id)];
    if (ev.frame.index - last < 60) return;  // debounce: one alert per scene
    last = ev.frame.index;
    ++alerts;
    std::printf("  [ALERT] cam%d t=%.1fs: congestion, %d vehicles "
                "(pipeline latency %.0f ms)\n",
                ev.frame.stream_id, ev.frame.pts_sec, vehicles, ev.latency_ms);
  });

  std::printf("\nMonitoring %d live streams...\n", kCameras);
  const auto stats = instance.run(/*online=*/true);

  const auto agg = stats.aggregate();
  std::printf("\nProcessed %llu frames across %d cameras in %.1f s wall time\n",
              (unsigned long long)agg.prefetch.passed, kCameras, stats.wall_sec);
  std::printf("Filtered before the full-feature model: %.1f%%  "
              "(dropped at ingest: %llu)\n",
              100.0 * (1.0 - static_cast<double>(agg.ref.in) /
                                 static_cast<double>(agg.prefetch.passed)),
              (unsigned long long)agg.dropped_at_ingest);
  std::printf("Congestion alerts raised: %d\n", alerts.load());
  return 0;
}
