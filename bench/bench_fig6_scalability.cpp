// Figure 6 — (a) maximum scalability as a function of TOR and (b) load
// balance across streams.
//
// Paper: the maximum number of supported streams grows as TOR falls; with
// TORs distributed evenly in [0, 40%] the per-stream (offline) execution
// times are nearly equal except at very low TOR — the global feedback queue
// and the per-cycle T-YOLO extraction cap keep streams balanced.
//
// Also includes the num_tyolo ablation (the per-cycle extraction cap) that
// DESIGN.md calls out.
#include "common.hpp"

using namespace ffsva;

int main() {
  bench::print_header("FIGURE 6a -- maximum real-time streams vs TOR");
  core::FfsVaConfig cfg;
  cfg.batch_policy = core::BatchPolicy::kFeedback;

  std::printf("%-8s %12s\n", "TOR", "max streams");
  bench::print_rule();
  for (double tor : {0.05, 0.103, 0.2, 0.3, 0.4, 0.6, 0.8, 1.0}) {
    const auto params = sim::MarkovParams::for_tor(tor);
    const int mx = sim::max_realtime_streams(
        bench::sim_setup_from(params, cfg, 1, true, 100000, 90.0), 1, 64, 0.01);
    std::printf("%-8.3f %12d\n", tor, mx);
  }
  std::printf("(paper: ~30 at TOR~0.1 falling to 5-6 at TOR 1.0)\n");

  bench::print_header("FIGURE 6b -- load balance (normalized execution time per stream)");
  // Ten offline streams with TORs evenly spread over [0, 0.4].
  {
    const int n = 10;
    sim::SimSetup setup;
    setup.config = cfg;
    setup.num_streams = n;
    setup.online = false;
    setup.frames_per_stream = 4000;
    setup.make_outcomes = [&](int i) {
      const double tor = 0.4 * static_cast<double>(i) / (n - 1);
      return std::make_unique<sim::MarkovOutcomes>(sim::MarkovParams::for_tor(tor),
                                                   700u + static_cast<unsigned>(i));
    };
    const auto r = sim::simulate_ffsva(setup);
    double max_finish = 0;
    for (const auto& s : r.streams) max_finish = std::max(max_finish, s.finish_time_sec);
    std::printf("%-8s %-8s %16s\n", "stream", "TOR", "normalized time");
    bench::print_rule();
    for (int i = 0; i < n; ++i) {
      std::printf("%-8d %-8.2f %16.3f\n", i, 0.4 * i / (n - 1),
                  r.streams[static_cast<std::size_t>(i)].finish_time_sec / max_finish);
    }
    std::printf("(paper: near-equal except the very low-TOR streams)\n");
  }

  bench::print_header("ABLATION -- num_tyolo (per-stream extraction cap per T-YOLO cycle)");
  std::printf("%-10s %12s %14s\n", "num_tyolo", "max streams", "p50 lat @20 (ms)");
  bench::print_rule();
  const auto params = sim::MarkovParams::for_tor(0.103);
  for (int cap : {1, 2, 4, 8, 16}) {
    core::FfsVaConfig c = cfg;
    c.num_tyolo = cap;
    const int mx = sim::max_realtime_streams(
        bench::sim_setup_from(params, c, 1, true, 100000, 90.0), 1, 48, 0.01);
    const auto at20 =
        sim::simulate_ffsva(bench::sim_setup_from(params, c, 20, true, 100000, 90.0));
    std::printf("%-10d %12d %14.0f\n", cap, mx, at20.output_latency_ms.p50());
  }
  return 0;
}
