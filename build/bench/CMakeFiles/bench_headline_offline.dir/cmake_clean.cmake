file(REMOVE_RECURSE
  "CMakeFiles/bench_headline_offline.dir/bench_headline_offline.cpp.o"
  "CMakeFiles/bench_headline_offline.dir/bench_headline_offline.cpp.o.d"
  "bench_headline_offline"
  "bench_headline_offline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_headline_offline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
