file(REMOVE_RECURSE
  "CMakeFiles/ffsva_image.dir/components.cpp.o"
  "CMakeFiles/ffsva_image.dir/components.cpp.o.d"
  "CMakeFiles/ffsva_image.dir/draw.cpp.o"
  "CMakeFiles/ffsva_image.dir/draw.cpp.o.d"
  "CMakeFiles/ffsva_image.dir/image.cpp.o"
  "CMakeFiles/ffsva_image.dir/image.cpp.o.d"
  "CMakeFiles/ffsva_image.dir/ops.cpp.o"
  "CMakeFiles/ffsva_image.dir/ops.cpp.o.d"
  "libffsva_image.a"
  "libffsva_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ffsva_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
