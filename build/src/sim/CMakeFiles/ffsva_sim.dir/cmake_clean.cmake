file(REMOVE_RECURSE
  "CMakeFiles/ffsva_sim.dir/engine.cpp.o"
  "CMakeFiles/ffsva_sim.dir/engine.cpp.o.d"
  "CMakeFiles/ffsva_sim.dir/ffsva_sim.cpp.o"
  "CMakeFiles/ffsva_sim.dir/ffsva_sim.cpp.o.d"
  "CMakeFiles/ffsva_sim.dir/outcome.cpp.o"
  "CMakeFiles/ffsva_sim.dir/outcome.cpp.o.d"
  "libffsva_sim.a"
  "libffsva_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ffsva_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
