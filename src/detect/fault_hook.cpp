// relaxed-ok: per-stage call counters and trigger slots are injection
// bookkeeping read after the workload joins; the hook pointer swing is the
// only real edge and uses acquire/release.
#include "detect/fault_hook.hpp"

#include <chrono>
#include <stdexcept>
#include <thread>

#include "runtime/cancel.hpp"

namespace ffsva::detect {

namespace {

std::atomic<FaultHook*> g_hook{nullptr};

}  // namespace

const char* to_string(FaultStage stage) {
  switch (stage) {
    case FaultStage::kSdd: return "sdd";
    case FaultStage::kSnm: return "snm";
    case FaultStage::kTyolo: return "tyolo";
    case FaultStage::kRef: return "ref";
  }
  return "?";
}

FaultHook::FaultHook(std::vector<ModelFaultSpec> specs)
    : specs_(std::move(specs)), matched_(specs_.size()) {}

FaultHook::~FaultHook() {
  FaultHook* self = this;
  g_hook.compare_exchange_strong(self, nullptr, std::memory_order_acq_rel);
}

void FaultHook::install() { g_hook.store(this, std::memory_order_release); }

void FaultHook::uninstall() { g_hook.store(nullptr, std::memory_order_release); }

void FaultHook::on_call(FaultStage stage) {
  FaultHook* h = g_hook.load(std::memory_order_acquire);
  if (h != nullptr) h->fire(stage);
}

std::int64_t FaultHook::calls(FaultStage stage) const {
  return calls_[static_cast<std::size_t>(static_cast<int>(stage))].load(
      std::memory_order_relaxed);
}

int FaultHook::triggered(std::size_t spec) const {
  const int raw = matched_[spec].load(std::memory_order_relaxed);
  return raw < specs_[spec].max_triggers ? raw : specs_[spec].max_triggers;
}

void FaultHook::fire(FaultStage stage) {
  const std::int64_t idx =
      calls_[static_cast<std::size_t>(static_cast<int>(stage))].fetch_add(
          1, std::memory_order_relaxed);
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const ModelFaultSpec& spec = specs_[i];
    if (spec.stage != stage || idx < spec.offset) continue;
    const std::int64_t rel = idx - spec.offset;
    if (spec.period > 0 ? rel % spec.period != 0 : rel != 0) continue;
    // Claim one of the spec's max_triggers slots; overshoot just means the
    // trigger budget is spent (triggered() clamps on read).
    if (matched_[i].fetch_add(1, std::memory_order_relaxed) >= spec.max_triggers) {
      continue;
    }
    switch (spec.kind) {
      case ModelFaultSpec::Kind::kThrow:
        throw std::runtime_error("injected model fault");
      case ModelFaultSpec::Kind::kSleep:
        // cancel-ok: a deliberate latency spike, bounded by duration_ms by
        // definition — the stall kind below is the cancellable one.
        std::this_thread::sleep_for(std::chrono::milliseconds(spec.duration_ms));
        break;
      case ModelFaultSpec::Kind::kStall: {
        // Cooperative wedge: hold the call busy until the watchdog cancels
        // it (the real recovery path) or the cap expires (the bounded
        // fallback for runs without escalation armed).
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::milliseconds(spec.duration_ms);
        while (std::chrono::steady_clock::now() < deadline) {
          if (runtime::cancel_requested()) {
            cancelled_stalls_.fetch_add(1, std::memory_order_relaxed);
            throw runtime::CancelledError("injected stall cancelled");
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        break;
      }
    }
  }
}

}  // namespace ffsva::detect
