// The FFS-VA threaded pipeline engine (paper Sections 3.1.2 and 4.3).
//
// Stages are decoupled by bounded queues whose capacities are the paper's
// feedback-queue thresholds ({2, 10, 2}); a blocking push *is* the feedback
// throttle. The thread model scales with the host, not the stream count:
//
//  * one prefetch thread per stream (a camera / decoder is inherently
//    per-stream),
//  * a fixed-size SDD worker pool (config.sdd_workers, default the
//    FFSVA_THREADS compute parallelism) multiplexing every stream's SDD
//    queue on the CPU — per-stream FIFO order is preserved by a per-stream
//    claim token, so at most one worker serves a given stream at a time,
//  * ONE GPU0 executor thread that owns the device outright: it drains all
//    streams' SNM queues into cross-stream batches under the BatchPolicy
//    (the shared DynamicBatcher), routes each sub-batch to its stream's
//    SNM, and interleaves T-YOLO micro-batches under the round-robin
//    TYoloScheduler with the per-stream `num_tyolo` cap. Device
//    exclusivity holds by construction — no GPU0 mutex, no contention,
//  * one reference-model thread (GPU1) draining the survivors. Under
//    RefMode::kBatch it consumes ref_q in cross-stream micro-batches
//    (BatchDrain + detect_batch, work spread over the compute pool); under
//    RefMode::kCropPack it consolidates T-YOLO's candidate boxes from many
//    streams into mosaic canvases first (detect/crop_pack.hpp). Both keep
//    GPU1 single-owner and preserve per-stream FIFO order and the per-frame
//    drop-on-error contract.
//
// Stage workers sleep on QueueWaiter eventcounts wired to their input
// queues (runtime/bounded_queue.hpp) and are woken by queue activity — the
// engine has no polling loops.
//
// This engine is the *correctness* vehicle (end-to-end behaviour, ordering,
// no-loss, backpressure, accuracy); calibrated performance numbers come
// from the discrete-event simulator in src/sim, which runs the same policy
// objects (src/core/policies.hpp) under virtual time.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "core/config.hpp"
#include "core/policies.hpp"
#include "detect/specialize.hpp"
#include "runtime/annotations.hpp"
#include "runtime/bounded_queue.hpp"
#include "runtime/stats.hpp"
#include "runtime/supervision.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "video/source.hpp"

namespace ffsva::core {

/// A frame that survived the whole cascade, plus its reference-model result.
struct OutputEvent {
  video::Frame frame;
  detect::DetectionResult result;
  double latency_ms = 0.0;  ///< Ingest-to-output time.
};

/// Per-stream fault accounting (DESIGN.md Section 9). Faults are bounded,
/// observable events: every retry, restart, degraded frame, and quarantine
/// lands in exactly one of these counters.
struct FaultStats {
  std::uint64_t decode_errors = 0;    ///< SourceErrors raised by next().
  std::uint64_t retries = 0;          ///< Transient-error retries attempted.
  std::uint64_t restarts = 0;         ///< Source restarts attempted.
  std::uint64_t degraded_frames = 0;  ///< Frames a throwing model degraded.
  std::uint64_t discarded_frames = 0; ///< In-flight frames dumped by quarantine.
  std::uint64_t cancelled_calls = 0;  ///< Wedged calls the watchdog cancelled.
  std::uint64_t poisoned_frames = 0;  ///< Frames dropped after wedging two stages.
  bool quarantined = false;           ///< Stream was quarantined by the watchdog.

  bool any() const {
    return decode_errors || retries || restarts || degraded_frames ||
           discarded_frames || cancelled_calls || poisoned_frames || quarantined;
  }
};

/// Codec-aware ingest accounting (DecodePolicy, DESIGN.md §13). decode_full
/// ticks on every policy (it is simply "frames reconstructed"); the other
/// counters move only on the hinted fast path.
struct IngestStats {
  std::uint64_t decode_full = 0;     ///< Frames fully reconstructed.
  std::uint64_t decode_skipped = 0;  ///< Hint-dropped frames never decoded.
  std::uint64_t hint_passes = 0;     ///< Hint-decided SDD passes (no pixel SDD).
  std::uint64_t hint_fallbacks = 0;  ///< Borderline frames: pixel SDD ran.
  double compression_ratio = 0.0;    ///< Source bitstream raw/encoded (0 = n/a).
  telemetry::HistogramSnapshot decode_ms;  ///< Decode-stage latency (per frame).
};

struct StreamStats {
  runtime::StageCounters prefetch;  ///< in = source frames, passed = ingested.
  runtime::StageCounters sdd;
  runtime::StageCounters snm;
  runtime::StageCounters tyolo;
  runtime::StageCounters ref;       ///< in = frames reaching reference model.
  std::uint64_t dropped_at_ingest = 0;
  runtime::Histogram latency_ms;    ///< Terminal latency of every ingested frame.
  double ingest_fps = 0.0;          ///< Realized ingest rate.
  IngestStats ingest;
  FaultStats fault;
};

/// Instance-level health rollup: how many streams finished clean, how many
/// saw (survivable) faults, how many the watchdog had to quarantine.
struct HealthSummary {
  int healthy_streams = 0;      ///< No fault counter ticked.
  int degraded_streams = 0;     ///< Faults observed, stream completed.
  int quarantined_streams = 0;  ///< Quarantined by the watchdog.
  std::uint64_t decode_errors = 0;
  std::uint64_t retries = 0;
  std::uint64_t restarts = 0;
  std::uint64_t degraded_frames = 0;
  std::uint64_t discarded_frames = 0;
  /// Escalation counters (DESIGN.md Section 14): model calls the watchdog
  /// cancelled, stage restarts taken after a cancel, and frames dropped as
  /// poisoned after wedging two stages.
  std::uint64_t cancels = 0;
  std::uint64_t stage_restarts = 0;
  std::uint64_t poisoned_frames = 0;
  /// Watchdog ticks on which a *shared* stage (an SDD worker, the GPU0
  /// executor, the reference thread) was busy past the stall timeout.
  /// Shared stages cannot be quarantined per stream; with
  /// model_call_timeout_ms armed the wedged call is cancelled and the stage
  /// restarted, otherwise the stall is only surfaced here.
  std::uint64_t stage_stall_ticks = 0;
  bool stopped = false;       ///< stop() was requested (by a caller or the deadline).
  bool deadline_hit = false;  ///< run_deadline_ms expired.
};

struct InstanceStats {
  std::vector<StreamStats> streams;
  double wall_sec = 0.0;
  double total_throughput_fps = 0.0;  ///< Ingested frames / wall seconds.
  runtime::Histogram output_latency_ms;
  HealthSummary health;

  StreamStats aggregate() const;
};

/// Point-in-time view of one stream, safe to take while the run is live.
/// Every field is read from a relaxed atomic (or a mutex-guarded queue
/// depth), so a mid-run snapshot is internally *approximate* — counters may
/// be skewed by in-flight frames — and exact once run() has returned.
struct StreamSnapshot {
  int id = 0;
  std::uint64_t prefetch_in = 0;
  std::uint64_t prefetch_passed = 0;
  std::uint64_t dropped_at_ingest = 0;
  std::uint64_t sdd_in = 0, sdd_passed = 0;
  std::uint64_t snm_in = 0, snm_passed = 0;
  std::uint64_t tyolo_in = 0, tyolo_passed = 0;
  std::uint64_t ref_in = 0, ref_passed = 0;
  /// Frames that reached a terminal outcome (emitted, dropped by a filter,
  /// dropped at ingest, discarded, or poisoned). Every ingested frame
  /// terminates exactly once, so `ingest_done && terminated == prefetch_in`
  /// is the stream-quiescent predicate a hand-off waits on (DESIGN.md §15).
  std::uint64_t terminated = 0;
  /// The stream's prefetch thread has exited (source ended, end_stream()
  /// cut, or fault escalation) — no further frames will be ingested.
  bool ingest_done = false;
  std::size_t sdd_queue_depth = 0;
  std::size_t snm_queue_depth = 0;
  std::size_t tyolo_queue_depth = 0;
  /// Codec-aware ingest counters (see IngestStats for field semantics).
  std::uint64_t decode_full = 0;
  std::uint64_t decode_skipped = 0;
  std::uint64_t hint_passes = 0;
  std::uint64_t hint_fallbacks = 0;
  double compression_ratio = 0.0;  ///< Source bitstream raw/encoded (0 = n/a).
  FaultStats fault;
};

/// Instance-wide live snapshot: the observable state a control plane (the
/// metrics exporter, ClusterManager re-forwarding) polls during a run.
struct InstanceSnapshot {
  bool running = false;  ///< A run() is currently in flight.
  double t_sec = 0.0;    ///< Seconds since run() started (0 before).
  std::vector<StreamSnapshot> streams;
  std::size_t ref_queue_depth = 0;
  std::uint64_t outputs = 0;          ///< Frames emitted by the reference stage.
  HealthSummary health;               ///< Mid-run rollup (same caveats as above).

  /// Total frames served by the T-YOLO stage across streams (the cluster
  /// admission signal: its rate of change is the T-YOLO service speed).
  std::uint64_t tyolo_served() const {
    std::uint64_t n = 0;
    for (const auto& s : streams) n += s.tyolo_in;
    return n;
  }
  /// Largest filter-queue depth across streams (overload indicator).
  std::size_t max_queue_depth() const {
    std::size_t d = 0;
    for (const auto& s : streams) {
      d = std::max({d, s.sdd_queue_depth, s.snm_queue_depth, s.tyolo_queue_depth});
    }
    return d;
  }
};

class FfsVaInstance {
 public:
  explicit FfsVaInstance(FfsVaConfig config);
  ~FfsVaInstance();

  FfsVaInstance(const FfsVaInstance&) = delete;
  FfsVaInstance& operator=(const FfsVaInstance&) = delete;

  /// Register a stream. Before run() this is always legal (the classic
  /// contract). DURING run() it requires config.serve_until_stopped and a
  /// config.max_streams reservation with a free slot: the stream is attached
  /// to the live engine — its prefetch thread starts immediately and the
  /// stage workers pick it up — which is how a node accepts a hand-off
  /// (DESIGN.md §15). Throws std::logic_error when the engine cannot accept
  /// the stream (run finished, stopping, or slots exhausted).
  /// Returns the engine-local stream id.
  int add_stream(std::unique_ptr<video::FrameSource> source,
                 detect::StreamModels models);

  /// Cut one stream's ingest: its prefetch loop winds down as if the source
  /// had ended, in-flight frames drain through the cascade normally, and the
  /// stream quiesces without disturbing any other stream or the run. The
  /// first half of a hand-off — poll stream_quiesced() for the second.
  /// Idempotent; safe on an ended stream. Throws std::out_of_range on an
  /// unknown id.
  void end_stream(int stream_id);

  /// True once the stream has fully quiesced: its prefetch thread exited
  /// and every ingested frame reached a terminal outcome (emitted or
  /// dropped — nothing in flight). Exact, not approximate: the terminal
  /// counter is ticked after the frame's outcome is durable, so a true
  /// return means the stream's results are complete and stable.
  bool stream_quiesced(int stream_id) const;

  /// Optional sink invoked (from the reference-model thread) for every
  /// surviving frame. When unset, outputs are collected in outputs().
  void set_output_sink(std::function<void(const OutputEvent&)> sink);

  /// Process every stream to completion.
  /// online=true paces each stream's ingest at config.online_fps and drops
  /// frames when the SDD queue stays full (overload); online=false runs
  /// flat out (offline analysis of stored video).
  ///
  /// Single-shot: a second invocation throws std::logic_error (the engine's
  /// queues and counters are consumed by a run). An instance with no
  /// registered streams throws std::invalid_argument — unless
  /// config.serve_until_stopped is set, in which case an empty engine
  /// starts, waits for add_stream(), and serves until stop().
  InstanceStats run(bool online);

  /// Request a graceful shutdown of an in-flight run() from any thread:
  /// ingest stops, in-flight frames drain, run() returns with the stats
  /// accumulated so far. Idempotent; safe before, during, or after run().
  /// With supervision armed, run() returns in bounded time even when a
  /// source or model call is hung: a wedged call is cancelled by the
  /// watchdog (config.model_call_timeout_ms) or its stream quarantined
  /// (config.stall_timeout_ms) — quarantine cancels the in-flight decode,
  /// so every prefetch thread is joined, never detached.
  void stop();

  /// Collected outputs (when no sink is set). Valid after run() returns —
  /// the reference thread appending to the vector is joined by then, which
  /// is the edge the analysis cannot see (hence the opt-out).
  const std::vector<OutputEvent>& outputs() const FFSVA_NO_TSA {
    return outputs_;
  }

  const FfsVaConfig& config() const { return config_; }
  /// Streams registered so far (monotonic; grows under dynamic add). The
  /// acquire load pairs with add_stream's release publish, so any index
  /// below the returned count reads a fully constructed stream.
  int num_streams() const {
    return nstreams_.load(std::memory_order_acquire);
  }

  // --- live telemetry ------------------------------------------------------

  /// Thread-safe live snapshot: callable from any thread before, during, or
  /// after run(). Mid-run values are relaxed-atomic reads (see
  /// StreamSnapshot); after run() returns they match the InstanceStats.
  InstanceSnapshot snapshot() const;

  /// The instance's metrics registry (counters/gauges/histograms the stage
  /// threads record into). Snapshot it directly, or let the exporter below
  /// sample it.
  telemetry::Registry& metrics() { return metrics_; }

  /// Sample the registry every config.metrics_interval_ms during run() and
  /// append JSONL rows to `path` (append mode). Call before run(); false if
  /// the file cannot be opened (export then stays off).
  bool enable_metrics_export(const std::string& path, std::string label = {});
  /// Same, into a caller-owned stream that must outlive run().
  void enable_metrics_export(std::ostream* sink, std::string label = {});

  /// Stamp exported metrics rows with a cluster node id (DESIGN.md §15).
  /// Call before run(); negative (the default) omits the field.
  void set_metrics_node_id(int id) { exporter_.set_node_id(id); }

  /// Arm per-stage trace spans for the next run() (recorded into
  /// telemetry::TraceBuffer::global(); enabling resets that buffer). Export
  /// with export_trace() after run() returns.
  void enable_tracing(bool on = true) { tracing_requested_ = on; }

  /// Write the spans recorded by the last traced run() as chrome://tracing
  /// JSON. Call after run() returns (spans are exact once stages quiesce).
  bool export_trace(const std::string& path) const;

 private:
  struct Stream;
  struct RefEntry;

  /// Static + shared_ptr: the prefetch loop touches only the Stream it
  /// co-owns, never `this`, so the instance registry stays single-schema
  /// (prefetch state surfaces as gauges over Stream atomics). The thread is
  /// always joined before run() returns — a wedged decode is un-wedged by
  /// cancellation (quarantine cancels the stream's in-flight call).
  /// `affinity_base` >= 0 pins the thread to CPU (base + stream id) mod
  /// cpu_count before the first decode (runtime::pin_current_thread).
  static void prefetch_loop(std::shared_ptr<Stream> s, bool online,
                            int affinity_base);

  /// Stage entry points: each wraps its loop in the restart policy of
  /// DESIGN.md Section 14 — a loop returning false was unwound by a
  /// watchdog cancel and re-enters after stage_backoff(), up to
  /// config.stage_max_restarts times; past the budget the loop handles
  /// further cancels inline (degrade the frame, keep serving) and never
  /// requests a restart. The loops return true when their work is finished.
  void sdd_worker_entry(int worker);
  void gpu0_entry();
  void reference_entry();
  bool sdd_worker_loop(int worker, bool allow_restart);
  bool gpu0_loop(bool allow_restart);
  /// `pending` lives in reference_entry so entries already popped from
  /// ref_q survive a stage restart (per-stream FIFO and conservation hold
  /// through the unwind).
  bool reference_loop(bool allow_restart, std::vector<RefEntry>& pending);
  /// Sliced sleep before a stage re-enters its loop: stage_restart_backoff_ms
  /// doubled per attempt, capped at 100 ms, aborted early by stop().
  void stage_backoff(int attempt);

  /// The watchdog tick: run deadline, wedged-call cancellation
  /// (model_call_timeout_ms), per-stream stall quarantine, shared-stage
  /// stall observation. Runs on the watchdog thread.
  void supervise(std::chrono::steady_clock::time_point t0);
  void quarantine(Stream& s);

  /// Resolved SDD pool size: config.sdd_workers, or the FFSVA_THREADS
  /// compute parallelism, capped by `eligible_streams` (the streams the
  /// pool actually serves — fused hinted-ingest streams run their SDD on
  /// their own prefetch thread and never touch the pool).
  int sdd_pool_size(int eligible_streams) const;

  /// Register the run's gauges (queue depths, fault counters, supervision
  /// state) and cache the hot-path counter/histogram handles.
  void wire_metrics();

  FfsVaConfig config_;
  /// Stream slots. Append-only; capacity is reserved up front in run() when
  /// dynamic add is configured (config.max_streams), so a mid-run push_back
  /// never reallocates and never invalidates the pointers stage threads
  /// hold. Readers never consult the vector's size — they bound every scan
  /// by num_streams() (the release/acquire-published count), which is what
  /// makes a concurrent append invisible until fully constructed. Writes
  /// are serialized on streams_mu_.
  std::vector<std::shared_ptr<Stream>> streams_;
  std::atomic<int> nstreams_{0};
  /// Serializes add_stream/end_stream/stop against each other and guards
  /// the dynamic-add state below. Ordered before outputs_mu_ and the queue
  /// leaves: stop()'s close sweep and add_stream's waiter notifies run
  /// under it.
  mutable runtime::Mutex streams_mu_ FFSVA_ACQUIRED_BEFORE(outputs_mu_){
      runtime::rank::kEngineStreams, "core::Engine::streams_mu_"};
  /// True from just before the stage threads start until they are joined:
  /// the window in which add_stream attaches to the live engine.
  bool engine_live_ FFSVA_GUARDED_BY(streams_mu_) = false;
  bool run_online_ FFSVA_GUARDED_BY(streams_mu_) = false;
  bool run_hinted_ FFSVA_GUARDED_BY(streams_mu_) = false;
  int run_affinity_ FFSVA_GUARDED_BY(streams_mu_) = -1;
  /// Prefetch threads of streams added during run(); joined by run() after
  /// the stage threads exit (every one has wound down by then — stop()
  /// closed the ingest queues).
  // thread-ok: per-stream prefetch threads attached mid-run; always joined
  // by run() before it returns (see above).
  std::vector<std::thread> late_prefetch_ FFSVA_GUARDED_BY(streams_mu_);
  std::function<void(const OutputEvent&)> sink_;
  runtime::Mutex outputs_mu_{runtime::rank::kEngineOutputs,
                             "core::Engine::outputs_mu_"};
  std::vector<OutputEvent> outputs_ FFSVA_GUARDED_BY(outputs_mu_);

  // Multi-queue wakeups: SDD workers sleep here when every SDD queue is
  // empty or claimed; the GPU0 executor sleeps here when no SNM batch is
  // ready and no T-YOLO work is queued. GPU0 needs no mutex — the executor
  // thread owns it; the reference model (GPU1) is owned by its one thread.
  // Plain members: every thread that notifies them (including each
  // prefetch thread) is joined before the instance is destroyed.
  runtime::QueueWaiter sdd_work_;
  runtime::QueueWaiter gpu0_work_;

  // Supervision state.
  runtime::StopToken stop_;
  std::atomic<bool> run_called_{false};
  std::atomic<bool> deadline_hit_{false};
  std::atomic<std::uint64_t> stage_stall_ticks_{0};
  /// Escalation totals (DESIGN.md Section 14); per-stream attribution lives
  /// in the Stream atomics, these are the instance rollups the health
  /// summary and the supervision.* gauges read.
  std::atomic<std::uint64_t> cancels_{0};
  std::atomic<std::uint64_t> stage_restarts_{0};
  std::atomic<std::uint64_t> poisoned_frames_{0};
  std::vector<runtime::Heartbeat> sdd_hb_;  ///< One per SDD worker.
  runtime::Heartbeat gpu0_hb_;
  runtime::Heartbeat ref_hb_;
  /// In-flight model-call registration slots, one per worker thread that
  /// runs model calls (SDD pool workers, the GPU0 executor, the reference
  /// thread; each Stream holds its prefetch slot). The watchdog scans these
  /// to attribute a stall to a specific {worker, stream, frame} and cancel
  /// exactly that call.
  std::vector<runtime::InflightCall> sdd_call_;
  runtime::InflightCall gpu0_call_;
  runtime::InflightCall ref_call_;

  struct TYoloShared;
  std::unique_ptr<TYoloShared> tyolo_shared_;

  // Telemetry. The registry lives in the instance; every stage thread —
  // prefetch included — joins before run() returns, so instance lifetime
  // covers every recorder. Prefetch state still reports through its
  // Stream's atomics (surfaced here as gauges) to keep the loop free of
  // instance coupling.
  telemetry::Registry metrics_;
  telemetry::MetricsExporter exporter_{metrics_};
  std::ostream* metrics_sink_ = nullptr;
  std::string metrics_path_;
  std::string metrics_label_;
  bool tracing_requested_ = false;
  std::atomic<bool> running_{false};
  std::atomic<std::int64_t> run_t0_ns_{0};
  std::atomic<std::uint64_t> outputs_count_{0};

  /// Hot-path handles, resolved once in wire_metrics() so stage loops never
  /// touch the registry map.
  struct Hot {
    telemetry::Counter* sdd_in = nullptr;
    telemetry::Counter* sdd_passed = nullptr;
    telemetry::Counter* snm_in = nullptr;
    telemetry::Counter* snm_passed = nullptr;
    telemetry::Counter* tyolo_in = nullptr;
    telemetry::Counter* tyolo_passed = nullptr;
    telemetry::Counter* ref_in = nullptr;
    telemetry::Counter* ref_passed = nullptr;
    telemetry::Counter* drop_sdd = nullptr;
    telemetry::Counter* drop_snm = nullptr;
    telemetry::Counter* drop_tyolo = nullptr;
    telemetry::Counter* drop_ref = nullptr;
    telemetry::Counter* snm_batches = nullptr;
    telemetry::Counter* tyolo_picks = nullptr;
    telemetry::AtomicHistogram* batch_size = nullptr;
    telemetry::AtomicHistogram* tyolo_take = nullptr;
    telemetry::AtomicHistogram* output_latency_ms = nullptr;
    // GPU1 reference-stage batching/consolidation (one schema, same
    // registry: these are just more handles resolved in wire_metrics()).
    telemetry::Counter* ref_batches = nullptr;
    telemetry::AtomicHistogram* ref_batch_size = nullptr;  ///< Occupancy.
    telemetry::AtomicHistogram* crops_per_mosaic = nullptr;
    telemetry::AtomicHistogram* mosaic_fill = nullptr;
    telemetry::Counter* ref_full_frame = nullptr;
    telemetry::Counter* ref_seam_suppressed = nullptr;
    /// Ingest-to-drop latency of frames the reference stage dropped or
    /// quarantine-discarded — kept OUT of latency.output_ms so the output
    /// distribution describes only emitted frames.
    telemetry::AtomicHistogram* drop_latency_ms = nullptr;
    /// Time from a watchdog cancel to the affected stage serving again
    /// (after its restart backoff) — the time-to-recovery distribution of
    /// the escalation path (DESIGN.md Section 14).
    telemetry::AtomicHistogram* recovery_ms = nullptr;
  };
  Hot hot_;
};

/// The paper's baseline: every frame of every stream goes straight to the
/// full-feature reference model (YOLOv2), using both GPU tokens.
struct BaselineStats {
  double wall_sec = 0.0;
  double throughput_fps = 0.0;
  std::uint64_t frames = 0;
  std::uint64_t dropped = 0;
  runtime::Histogram latency_ms;
};

BaselineStats run_yolo_baseline(
    std::vector<std::unique_ptr<video::FrameSource>> sources,
    const std::vector<detect::StreamModels>& models, bool online,
    double online_fps = 30.0);

}  // namespace ffsva::core
