#include "image/ops.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace ffsva::image {

Image to_gray(const Image& src) {
  if (src.channels() == 1) return src;
  Image out(src.width(), src.height(), 1);
  const std::uint8_t* in = src.data();
  std::uint8_t* o = out.data();
  const std::size_t n = static_cast<std::size_t>(src.width()) * src.height();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t* p = in + i * 3;
    // BT.601: 0.299 R + 0.587 G + 0.114 B, in 8.8 fixed point.
    o[i] = static_cast<std::uint8_t>((77 * p[0] + 150 * p[1] + 29 * p[2]) >> 8);
  }
  return out;
}

Image resize_bilinear(const Image& src, int out_w, int out_h) {
  if (src.empty() || out_w <= 0 || out_h <= 0) return {};
  if (out_w == src.width() && out_h == src.height()) return src;
  Image out(out_w, out_h, src.channels());
  const double sx = static_cast<double>(src.width()) / out_w;
  const double sy = static_cast<double>(src.height()) / out_h;
  const int c = src.channels();
  for (int y = 0; y < out_h; ++y) {
    const double fy = (y + 0.5) * sy - 0.5;
    const int y0 = std::clamp(static_cast<int>(std::floor(fy)), 0, src.height() - 1);
    const int y1 = std::min(y0 + 1, src.height() - 1);
    const double wy = std::clamp(fy - y0, 0.0, 1.0);
    for (int x = 0; x < out_w; ++x) {
      const double fx = (x + 0.5) * sx - 0.5;
      const int x0 = std::clamp(static_cast<int>(std::floor(fx)), 0, src.width() - 1);
      const int x1 = std::min(x0 + 1, src.width() - 1);
      const double wx = std::clamp(fx - x0, 0.0, 1.0);
      for (int ch = 0; ch < c; ++ch) {
        const double top = src.at(x0, y0, ch) * (1 - wx) + src.at(x1, y0, ch) * wx;
        const double bot = src.at(x0, y1, ch) * (1 - wx) + src.at(x1, y1, ch) * wx;
        out.at(x, y, ch) =
            static_cast<std::uint8_t>(std::clamp(top * (1 - wy) + bot * wy + 0.5, 0.0, 255.0));
      }
    }
  }
  return out;
}

namespace {
void require_same_shape(const Image& a, const Image& b) {
  if (!a.same_shape(b)) {
    throw std::invalid_argument("image shape mismatch in distance metric");
  }
}
}  // namespace

double mse(const Image& a, const Image& b) {
  require_same_shape(a, b);
  if (a.empty()) return 0.0;
  const std::uint8_t* pa = a.data();
  const std::uint8_t* pb = b.data();
  const std::size_t n = a.size_bytes();
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const int d = static_cast<int>(pa[i]) - static_cast<int>(pb[i]);
    acc += static_cast<std::uint64_t>(d * d);
  }
  return static_cast<double>(acc) / static_cast<double>(n);
}

double nrmse(const Image& a, const Image& b) { return std::sqrt(mse(a, b)) / 255.0; }

double sad(const Image& a, const Image& b) {
  require_same_shape(a, b);
  if (a.empty()) return 0.0;
  const std::uint8_t* pa = a.data();
  const std::uint8_t* pb = b.data();
  const std::size_t n = a.size_bytes();
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += static_cast<std::uint64_t>(std::abs(static_cast<int>(pa[i]) - static_cast<int>(pb[i])));
  }
  return static_cast<double>(acc) / static_cast<double>(n);
}

Image abs_diff(const Image& a, const Image& b) {
  require_same_shape(a, b);
  Image out(a.width(), a.height(), a.channels());
  const std::uint8_t* pa = a.data();
  const std::uint8_t* pb = b.data();
  std::uint8_t* po = out.data();
  const std::size_t n = a.size_bytes();
  for (std::size_t i = 0; i < n; ++i) {
    po[i] = static_cast<std::uint8_t>(std::abs(static_cast<int>(pa[i]) - static_cast<int>(pb[i])));
  }
  return out;
}

Image gaussian_blur(const Image& src, double sigma) {
  if (sigma <= 0.0 || src.empty()) return src;
  const int radius = std::max(1, static_cast<int>(std::ceil(3.0 * sigma)));
  std::vector<double> kernel(2 * radius + 1);
  double sum = 0.0;
  for (int i = -radius; i <= radius; ++i) {
    kernel[i + radius] = std::exp(-(i * i) / (2.0 * sigma * sigma));
    sum += kernel[i + radius];
  }
  for (auto& k : kernel) k /= sum;

  const int w = src.width(), h = src.height(), c = src.channels();
  // Horizontal pass into a float buffer, then vertical pass.
  std::vector<double> tmp(static_cast<std::size_t>(w) * h * c, 0.0);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      for (int ch = 0; ch < c; ++ch) {
        double acc = 0.0;
        for (int k = -radius; k <= radius; ++k) {
          const int xx = std::clamp(x + k, 0, w - 1);
          acc += kernel[k + radius] * src.at(xx, y, ch);
        }
        tmp[(static_cast<std::size_t>(y) * w + x) * c + ch] = acc;
      }
    }
  }
  Image out(w, h, c);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      for (int ch = 0; ch < c; ++ch) {
        double acc = 0.0;
        for (int k = -radius; k <= radius; ++k) {
          const int yy = std::clamp(y + k, 0, h - 1);
          acc += kernel[k + radius] * tmp[(static_cast<std::size_t>(yy) * w + x) * c + ch];
        }
        out.at(x, y, ch) = static_cast<std::uint8_t>(std::clamp(acc + 0.5, 0.0, 255.0));
      }
    }
  }
  return out;
}

Image threshold(const Image& src, std::uint8_t t) {
  Image out(src.width(), src.height(), src.channels());
  const std::uint8_t* pi = src.data();
  std::uint8_t* po = out.data();
  const std::size_t n = src.size_bytes();
  for (std::size_t i = 0; i < n; ++i) po[i] = pi[i] > t ? 255 : 0;
  return out;
}

std::uint8_t otsu_threshold(const Image& gray) {
  if (gray.channels() != 1 || gray.empty()) return 128;
  std::uint64_t hist[256] = {};
  const std::uint8_t* p = gray.data();
  const std::size_t n = gray.size_bytes();
  for (std::size_t i = 0; i < n; ++i) ++hist[p[i]];

  double total_sum = 0.0;
  for (int i = 0; i < 256; ++i) total_sum += static_cast<double>(i) * hist[i];

  double best_var = -1.0;
  int best_t = 128;
  double w0 = 0.0, sum0 = 0.0;
  for (int t = 0; t < 256; ++t) {
    w0 += static_cast<double>(hist[t]);
    if (w0 == 0.0) continue;
    const double w1 = static_cast<double>(n) - w0;
    if (w1 == 0.0) break;
    sum0 += static_cast<double>(t) * hist[t];
    const double mu0 = sum0 / w0;
    const double mu1 = (total_sum - sum0) / w1;
    const double between = w0 * w1 * (mu0 - mu1) * (mu0 - mu1);
    if (between > best_var) {
      best_var = between;
      best_t = t;
    }
  }
  return static_cast<std::uint8_t>(best_t);
}

namespace {
Image morph3x3(const Image& binary, bool erode) {
  Image out(binary.width(), binary.height(), binary.channels());
  const int w = binary.width(), h = binary.height();
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      bool all = true, any = false;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          const int xx = std::clamp(x + dx, 0, w - 1);
          const int yy = std::clamp(y + dy, 0, h - 1);
          const bool v = binary.at(xx, yy) != 0;
          all = all && v;
          any = any || v;
        }
      }
      out.at(x, y) = (erode ? all : any) ? 255 : 0;
    }
  }
  return out;
}
}  // namespace

Image erode3x3(const Image& binary) { return morph3x3(binary, /*erode=*/true); }
Image dilate3x3(const Image& binary) { return morph3x3(binary, /*erode=*/false); }

std::vector<std::uint64_t> integral_image(const Image& gray) {
  const int w = gray.width(), h = gray.height();
  std::vector<std::uint64_t> out(static_cast<std::size_t>(w) * h, 0);
  for (int y = 0; y < h; ++y) {
    std::uint64_t row = 0;
    for (int x = 0; x < w; ++x) {
      row += gray.at(x, y);
      out[static_cast<std::size_t>(y) * w + x] =
          row + (y > 0 ? out[static_cast<std::size_t>(y - 1) * w + x] : 0);
    }
  }
  return out;
}

std::uint64_t box_sum(const std::vector<std::uint64_t>& integral, int img_w,
                      int x0, int y0, int x1, int y1) {
  if (x1 <= x0 || y1 <= y0) return 0;
  auto at = [&](int x, int y) -> std::uint64_t {
    if (x < 0 || y < 0) return 0;
    return integral[static_cast<std::size_t>(y) * img_w + x];
  };
  return at(x1 - 1, y1 - 1) - at(x0 - 1, y1 - 1) - at(x1 - 1, y0 - 1) + at(x0 - 1, y0 - 1);
}

}  // namespace ffsva::image
