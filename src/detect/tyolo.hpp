// T-YOLO — the small, globally shared detector (paper Section 3.2.3).
//
// Tiny-YOLO-Voc "divides the input image into a 13*13 grid ... each grid
// cell predicts 5 bounding boxes and confidence scores; if the confidence
// score exceeds the threshold (e.g. 0.2), one target object is considered
// to appear". Our stand-in keeps that structure:
//
//  * the frame is downscaled to a fixed detector input (default 104x104 —
//    a 13x13 grid of 8-pixel cells),
//  * foreground blobs are segmented at that coarse resolution,
//  * each blob is assigned to the grid cell of its center; a cell reports at
//    most `boxes_per_cell` detections (surplus blobs in one cell merge),
//  * detections below `confidence_threshold` are dropped.
//
// Because detection happens after a ~3-4x downscale, small / dense / partly
// visible objects fall below the resolving power — which is precisely the
// T-YOLO-vs-YOLOv2 gap the paper's accuracy analysis attributes its false
// negatives to. The filter's job in the cascade is counting: a frame passes
// only if count(target) >= NumberofObjects (Section 4.2.2).
#pragma once

#include "detect/detection.hpp"
#include "detect/segmentation.hpp"
#include "image/image.hpp"

namespace ffsva::detect {

struct TYoloConfig {
  int input_size = 104;     ///< Detector input edge (13 cells x 8 px).
  int grid = 13;
  int boxes_per_cell = 5;
  double confidence_threshold = 0.2;
  SegmentationParams segmentation{/*blur_sigma=*/0.7, /*diff_threshold=*/28,
                                  /*min_pixels=*/10, /*morph_open=*/false};
  ClassifierParams classifier{.car_min_area = 20.0};
};

class TYoloDetector {
 public:
  /// `background`: the stream's full-resolution background; held per stream,
  /// downscaled once. (In the paper T-YOLO is one shared *model*; what is
  /// per-stream here is scene state, what stays shared is the executable —
  /// and the execution engine models exactly that sharing.)
  TYoloDetector(TYoloConfig config, const image::Image& background);

  DetectionResult detect(const image::Image& frame) const;

  /// The cascade predicate: does the frame carry at least
  /// `number_of_objects` detected targets?
  bool pass(const image::Image& frame, video::ObjectClass target,
            int number_of_objects) const {
    return detect(frame).count_target(target, config_.confidence_threshold) >=
           number_of_objects;
  }

  const TYoloConfig& config() const { return config_; }

 private:
  TYoloConfig config_;
  image::Image background_small_;
  double scale_x_ = 1.0, scale_y_ = 1.0;  ///< Detector -> frame coordinates.
};

}  // namespace ffsva::detect
