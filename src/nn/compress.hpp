// Model compression: magnitude pruning and uniform weight quantization.
//
// The paper's "Limitations and Remedies" (Section 5.5) proposes replacing
// T-YOLO with a deeply-compressed high-precision model: "Deep compression
// (e.g., pruning, sparsity constraint) can transform a larger but more
// accurate NN model to a tiny model without compromising the accuracy of
// the prediction, resulting in a 3x throughput improvement". This module
// implements the two standard ingredients on our Sequential networks:
//
//  * prune_by_magnitude(): zero the smallest-|w| fraction of each
//    parameter tensor (biases exempt) — the sparsity constraint;
//  * quantize_weights(): k-bit symmetric uniform quantization per tensor
//    (simulated: quantize + dequantize in place), which is what shrinks
//    the SNM's ~200 KB upload that dynamic batching amortizes.
//
// bench_ablation_compression sweeps both against the trained SNM.
#pragma once

#include <cstdint>

#include "nn/layers.hpp"

namespace ffsva::nn {

struct PruneReport {
  std::size_t total_weights = 0;
  std::size_t zeroed = 0;
  double sparsity() const {
    return total_weights ? static_cast<double>(zeroed) / total_weights : 0.0;
  }
};

/// Zero the `sparsity` fraction of smallest-magnitude weights in each
/// weight tensor (rank-1+ tensors; per-output bias vectors are left alone —
/// they are tiny and pruning them moves decision thresholds).
PruneReport prune_by_magnitude(Sequential& net, double sparsity);

struct QuantReport {
  int bits = 0;
  std::size_t total_weights = 0;
  double max_abs_error = 0.0;    ///< Largest |w - q(w)| across all tensors.
  double model_bytes_fp32 = 0;   ///< Dense float32 footprint.
  double model_bytes_quant = 0;  ///< bits-per-weight footprint (+ scales).
};

/// Symmetric uniform quantization of all weight tensors to `bits` bits
/// (2..16), in place (quantize-dequantize). Returns the error/footprint
/// accounting.
QuantReport quantize_weights(Sequential& net, int bits);

/// Fraction of exactly-zero scalars among the network's weights.
double sparsity_of(Sequential& net);

}  // namespace ffsva::nn
