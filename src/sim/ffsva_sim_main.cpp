// ffsva_sim: command-line front end for the discrete-event FFS-VA
// simulator, with live-telemetry export.
//
//   ffsva_sim --streams 16 --frames 2000 --offline
//             --metrics-out metrics.jsonl --metrics-interval-ms 100
//             --trace-out trace.json
//
// --metrics-out appends one JSONL row per (virtual) interval — the same
// schema the threaded engine's exporter writes. --trace-out writes a
// chrome://tracing / Perfetto-loadable JSON timeline of the simulated
// stages (lanes: GPU0, GPU1, CPU pool). A one-line result summary goes to
// stdout as JSON.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "sim/ffsva_sim.hpp"
#include "sim/placement.hpp"
#include "telemetry/spans.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [options]\n"
               "  --streams N             concurrent streams (default 8)\n"
               "  --frames N              frames per stream (default 2000)\n"
               "  --online | --offline    pacing mode (default online)\n"
               "  --fps F                 online ingest rate (default 30)\n"
               "  --duration S            online stream seconds (default 120)\n"
               "  --tor R                 target-occurrence ratio (default 0.1)\n"
               "  --baseline              YOLOv2-only baseline, no filtering\n"
               "  --label S               label stamped into metrics rows\n"
               "  --metrics-out PATH      append metrics JSONL rows\n"
               "  --metrics-interval-ms N sampling period, virtual ms (default 100)\n"
               "  --trace-out PATH        write chrome://tracing JSON\n"
               "placement mode (cluster policy at scale, DESIGN.md §15):\n"
               "  --placement             run the placement simulation instead\n"
               "  --instances N           FFS-VA instances (default 8)\n"
               "  --capacity-fps F        per-instance T-YOLO ceiling (160)\n"
               "  --arrival-per-sec F     stream arrival rate (default 20)\n"
               "  --hot-spot-at S         cut instance 0's capacity at S sec\n"
               "  --seed N                demand/arrival seed (default 1)\n",
               argv0);
}

int run_placement(const ffsva::sim::PlacementSetup& setup) {
  const auto r = ffsva::sim::simulate_placement(setup);
  std::printf(
      "{\"instances\":%d,\"streams\":%d,\"placed\":%d,\"policy_placed\":%d,"
      "\"fallback_placed\":%d,\"reforwards\":%d,\"converged\":%s,"
      "\"overloaded_final\":%d,\"max_stream_spread\":%d,"
      "\"hot_spot_drain_sec\":%.2f,\"hot_spot_moves\":%d,"
      "\"sim_time_sec\":%.1f}\n",
      setup.instances, setup.streams, r.placed, r.policy_placed,
      r.fallback_placed, r.reforwards, r.converged ? "true" : "false",
      r.overloaded_final, r.max_stream_spread, r.hot_spot_drain_sec,
      r.hot_spot_moves, r.sim_time_sec);
  return r.placed == setup.streams && r.converged ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ffsva;

  sim::SimSetup setup;
  setup.num_streams = 8;
  setup.frames_per_stream = 2000;
  setup.online = true;
  double tor = 0.1;
  bool baseline = false;
  bool placement = false;
  sim::PlacementSetup pl;
  std::string metrics_out, trace_out;

  const auto need_value = [&](int i) {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s: missing value for %s\n", argv[0], argv[i]);
      std::exit(2);
    }
    return argv[i + 1];
  };
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (!std::strcmp(a, "--streams")) {
      setup.num_streams = std::atoi(need_value(i++));
    } else if (!std::strcmp(a, "--frames")) {
      setup.frames_per_stream = std::atoll(need_value(i++));
    } else if (!std::strcmp(a, "--online")) {
      setup.online = true;
    } else if (!std::strcmp(a, "--offline")) {
      setup.online = false;
    } else if (!std::strcmp(a, "--fps")) {
      setup.config.online_fps = std::atof(need_value(i++));
    } else if (!std::strcmp(a, "--duration")) {
      setup.duration_sec = std::atof(need_value(i++));
    } else if (!std::strcmp(a, "--tor")) {
      tor = std::atof(need_value(i++));
    } else if (!std::strcmp(a, "--baseline")) {
      baseline = true;
    } else if (!std::strcmp(a, "--placement")) {
      placement = true;
    } else if (!std::strcmp(a, "--instances")) {
      pl.instances = std::atoi(need_value(i++));
    } else if (!std::strcmp(a, "--capacity-fps")) {
      pl.capacity_fps = std::atof(need_value(i++));
    } else if (!std::strcmp(a, "--arrival-per-sec")) {
      pl.arrival_per_sec = std::atof(need_value(i++));
    } else if (!std::strcmp(a, "--hot-spot-at")) {
      pl.hot_spot_at_sec = std::atof(need_value(i++));
    } else if (!std::strcmp(a, "--seed")) {
      pl.seed = static_cast<std::uint64_t>(std::atoll(need_value(i++)));
    } else if (!std::strcmp(a, "--label")) {
      setup.metrics_label = need_value(i++);
    } else if (!std::strcmp(a, "--metrics-out")) {
      metrics_out = need_value(i++);
    } else if (!std::strcmp(a, "--metrics-interval-ms")) {
      setup.metrics_interval_ms = std::atoi(need_value(i++));
    } else if (!std::strcmp(a, "--trace-out")) {
      trace_out = need_value(i++);
    } else if (!std::strcmp(a, "--help") || !std::strcmp(a, "-h")) {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "%s: unknown option %s\n", argv[0], a);
      usage(argv[0]);
      return 2;
    }
  }
  if (setup.num_streams < 1 || setup.frames_per_stream < 1) {
    std::fprintf(stderr, "%s: --streams and --frames must be >= 1\n", argv[0]);
    return 2;
  }
  if (placement) {
    pl.streams = setup.num_streams;
    pl.duration_sec = setup.duration_sec;
    return run_placement(pl);
  }
  setup.make_outcomes = [tor](int stream) {
    return std::make_unique<sim::MarkovOutcomes>(
        sim::MarkovParams::for_tor(tor), 17u + static_cast<unsigned>(stream));
  };

  std::ofstream metrics_file;
  if (!metrics_out.empty()) {
    metrics_file.open(metrics_out, std::ios::app);
    if (!metrics_file) {
      std::fprintf(stderr, "%s: cannot open %s\n", argv[0], metrics_out.c_str());
      return 1;
    }
    setup.metrics_sink = &metrics_file;
  }
  telemetry::TraceBuffer trace_buf;
  if (!trace_out.empty()) {
    trace_buf.enable();
    setup.trace = &trace_buf;
  }

  const sim::SimResult r =
      baseline ? sim::simulate_baseline(setup) : sim::simulate_ffsva(setup);

  if (!trace_out.empty()) {
    trace_buf.disable();
    if (!trace_buf.write_chrome_trace(trace_out)) {
      std::fprintf(stderr, "%s: cannot write %s\n", argv[0], trace_out.c_str());
      return 1;
    }
  }

  std::printf(
      "{\"streams\":%d,\"online\":%s,\"sim_time_sec\":%.3f,"
      "\"ingested\":%lld,\"dropped\":%lld,\"outputs\":%lld,"
      "\"throughput_fps\":%.2f,\"drop_rate\":%.5f,\"realtime\":%s,"
      "\"tyolo_service_fps\":%.2f,\"mean_snm_batch\":%.2f,"
      "\"gpu0_util\":%.3f,\"gpu1_util\":%.3f,\"cpu_util\":%.3f,"
      "\"output_latency_p50_ms\":%.2f,\"output_latency_p99_ms\":%.2f}\n",
      setup.num_streams, setup.online ? "true" : "false", r.sim_time_sec,
      static_cast<long long>(r.total_ingested),
      static_cast<long long>(r.total_dropped),
      static_cast<long long>(r.total_outputs), r.throughput_fps, r.drop_rate,
      r.realtime ? "true" : "false", r.tyolo_service_fps, r.mean_snm_batch,
      r.gpu0_utilization, r.gpu1_utilization, r.cpu_utilization,
      r.output_latency_ms.p50(), r.output_latency_ms.p99());
  return 0;
}
