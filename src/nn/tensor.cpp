#include "nn/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace ffsva::nn {

void Tensor::axpy(float alpha, const Tensor& other) {
  assert(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other.data_[i];
}

void Tensor::scale(float alpha) {
  for (auto& v : data_) v *= alpha;
}

double Tensor::sum() const {
  double s = 0.0;
  for (float v : data_) s += v;
  return s;
}

double Tensor::abs_max() const {
  double m = 0.0;
  for (float v : data_) m = std::max(m, static_cast<double>(std::fabs(v)));
  return m;
}

void write_tensor(std::ostream& os, const Tensor& t) {
  const auto& s = t.shape();
  os.write(reinterpret_cast<const char*>(s.data()), sizeof(int) * 4);
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(t.size() * sizeof(float)));
}

void read_tensor_values(std::istream& is, Tensor& t) {
  std::array<int, 4> s{};
  is.read(reinterpret_cast<char*>(s.data()), sizeof(int) * 4);
  if (!is || s != t.shape()) {
    throw std::runtime_error("tensor shape mismatch on load");
  }
  is.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.size() * sizeof(float)));
  if (!is) throw std::runtime_error("truncated tensor data on load");
}

}  // namespace ffsva::nn
