// The FFS-VA threaded pipeline engine (paper Sections 3.1.2 and 4.3).
//
// Stages are decoupled by bounded queues whose capacities are the paper's
// feedback-queue thresholds ({2, 10, 2}); a blocking push *is* the feedback
// throttle. The thread model scales with the host, not the stream count:
//
//  * one prefetch thread per stream (a camera / decoder is inherently
//    per-stream),
//  * a fixed-size SDD worker pool (config.sdd_workers, default the
//    FFSVA_THREADS compute parallelism) multiplexing every stream's SDD
//    queue on the CPU — per-stream FIFO order is preserved by a per-stream
//    claim token, so at most one worker serves a given stream at a time,
//  * ONE GPU0 executor thread that owns the device outright: it drains all
//    streams' SNM queues into cross-stream batches under the BatchPolicy
//    (the shared DynamicBatcher), routes each sub-batch to its stream's
//    SNM, and interleaves T-YOLO micro-batches under the round-robin
//    TYoloScheduler with the per-stream `num_tyolo` cap. Device
//    exclusivity holds by construction — no GPU0 mutex, no contention,
//  * one reference-model thread (GPU1) draining the survivors.
//
// Stage workers sleep on QueueWaiter eventcounts wired to their input
// queues (runtime/bounded_queue.hpp) and are woken by queue activity — the
// engine has no polling loops.
//
// This engine is the *correctness* vehicle (end-to-end behaviour, ordering,
// no-loss, backpressure, accuracy); calibrated performance numbers come
// from the discrete-event simulator in src/sim, which runs the same policy
// objects (src/core/policies.hpp) under virtual time.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "core/config.hpp"
#include "core/policies.hpp"
#include "detect/specialize.hpp"
#include "runtime/bounded_queue.hpp"
#include "runtime/stats.hpp"
#include "video/source.hpp"

namespace ffsva::core {

/// A frame that survived the whole cascade, plus its reference-model result.
struct OutputEvent {
  video::Frame frame;
  detect::DetectionResult result;
  double latency_ms = 0.0;  ///< Ingest-to-output time.
};

struct StreamStats {
  runtime::StageCounters prefetch;  ///< in = source frames, passed = ingested.
  runtime::StageCounters sdd;
  runtime::StageCounters snm;
  runtime::StageCounters tyolo;
  runtime::StageCounters ref;       ///< in = frames reaching reference model.
  std::uint64_t dropped_at_ingest = 0;
  runtime::Histogram latency_ms;    ///< Terminal latency of every ingested frame.
  double ingest_fps = 0.0;          ///< Realized ingest rate.
};

struct InstanceStats {
  std::vector<StreamStats> streams;
  double wall_sec = 0.0;
  double total_throughput_fps = 0.0;  ///< Ingested frames / wall seconds.
  runtime::Histogram output_latency_ms;

  StreamStats aggregate() const;
};

class FfsVaInstance {
 public:
  explicit FfsVaInstance(FfsVaConfig config);
  ~FfsVaInstance();

  FfsVaInstance(const FfsVaInstance&) = delete;
  FfsVaInstance& operator=(const FfsVaInstance&) = delete;

  /// Register a stream before run(). The models must target the same class
  /// the stream's events are defined over.
  void add_stream(std::unique_ptr<video::FrameSource> source,
                  detect::StreamModels models);

  /// Optional sink invoked (from the reference-model thread) for every
  /// surviving frame. When unset, outputs are collected in outputs().
  void set_output_sink(std::function<void(const OutputEvent&)> sink);

  /// Process every stream to completion.
  /// online=true paces each stream's ingest at config.online_fps and drops
  /// frames when the SDD queue stays full (overload); online=false runs
  /// flat out (offline analysis of stored video).
  InstanceStats run(bool online);

  /// Collected outputs (when no sink is set).
  const std::vector<OutputEvent>& outputs() const { return outputs_; }

  const FfsVaConfig& config() const { return config_; }
  int num_streams() const { return static_cast<int>(streams_.size()); }

 private:
  struct Stream;

  void prefetch_loop(Stream& s, bool online);
  void sdd_worker_loop(int worker);
  void gpu0_loop();
  void reference_loop();

  /// Resolved SDD pool size: config.sdd_workers, or the FFSVA_THREADS
  /// compute parallelism, capped by the stream count.
  int sdd_pool_size() const;

  FfsVaConfig config_;
  std::vector<std::unique_ptr<Stream>> streams_;
  std::function<void(const OutputEvent&)> sink_;
  std::vector<OutputEvent> outputs_;
  std::mutex outputs_mu_;

  // Multi-queue wakeups: SDD workers sleep here when every SDD queue is
  // empty or claimed; the GPU0 executor sleeps here when no SNM batch is
  // ready and no T-YOLO work is queued. GPU0 needs no mutex — the executor
  // thread owns it; the reference model (GPU1) is owned by its one thread.
  runtime::QueueWaiter sdd_work_;
  runtime::QueueWaiter gpu0_work_;

  struct TYoloShared;
  std::unique_ptr<TYoloShared> tyolo_shared_;
};

/// The paper's baseline: every frame of every stream goes straight to the
/// full-feature reference model (YOLOv2), using both GPU tokens.
struct BaselineStats {
  double wall_sec = 0.0;
  double throughput_fps = 0.0;
  std::uint64_t frames = 0;
  std::uint64_t dropped = 0;
  runtime::Histogram latency_ms;
};

BaselineStats run_yolo_baseline(
    std::vector<std::unique_ptr<video::FrameSource>> sources,
    const std::vector<detect::StreamModels>& models, bool online,
    double online_fps = 30.0);

}  // namespace ffsva::core
