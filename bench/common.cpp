#include "common.hpp"

#include <cstring>
#include <fstream>

#include "runtime/parallel_for.hpp"

namespace ffsva::bench {

JsonReport::JsonReport(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) path_ = argv[i + 1];
  }
}

void JsonReport::add(const std::string& name, double fps, double p50_ms,
                     double p99_ms, Extras extras) {
  if (active()) rows_.push_back({name, fps, p50_ms, p99_ms, std::move(extras)});
}

namespace {
void put_number(std::ofstream& out, const char* key, double v) {
  out << '"' << key << "\": ";
  if (v > 0.0) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    out << buf;
  } else {
    out << "null";
  }
}
}  // namespace

JsonReport::~JsonReport() {
  if (!active()) return;
  std::ofstream out(path_);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path_.c_str());
    return;
  }
  const int threads = runtime::compute_parallelism();
  out << "[\n";
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const Row& r = rows_[i];
    out << "  {\"name\": \"" << r.name << "\", ";
    put_number(out, "fps", r.fps);
    out << ", ";
    put_number(out, "p50_ms", r.p50_ms);
    out << ", ";
    put_number(out, "p99_ms", r.p99_ms);
    for (const auto& [key, value] : r.extras) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.6g", value);
      out << ", \"" << key << "\": " << buf;
    }
    out << ", \"threads\": " << threads << "}" << (i + 1 < rows_.size() ? "," : "")
        << "\n";
  }
  out << "]\n";
  std::printf("wrote %zu series to %s\n", rows_.size(), path_.c_str());
}

CalibratedStream build_stream(video::SceneConfig base, double tor, std::uint64_t seed,
                              std::int64_t calib_frames, std::int64_t eval_frames,
                              int snm_epochs) {
  CalibratedStream s;
  s.cfg = base;
  s.cfg.tor = tor;
  s.sim = std::make_shared<video::SceneSimulator>(s.cfg, seed,
                                                  calib_frames + eval_frames);
  std::vector<video::Frame> calib;
  calib.reserve(static_cast<std::size_t>(calib_frames));
  for (std::int64_t i = 0; i < calib_frames; ++i) calib.push_back(s.sim->render(i));

  detect::SpecializeConfig sc;
  sc.target = s.cfg.target;
  sc.snm.epochs = snm_epochs;
  s.models = detect::specialize_stream(calib, sc, seed);

  s.eval_begin = calib_frames;
  s.trace = core::record_trace(*s.sim, s.models, calib_frames,
                               calib_frames + eval_frames);
  return s;
}

void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

void print_rule() {
  std::printf("----------------------------------------------------------------\n");
}

sim::SimSetup sim_setup_from(const sim::MarkovParams& params,
                             const core::FfsVaConfig& config, int streams,
                             bool online, std::int64_t frames_per_stream,
                             double duration_sec) {
  sim::SimSetup s;
  s.config = config;
  s.num_streams = streams;
  s.online = online;
  s.duration_sec = duration_sec;
  s.frames_per_stream = frames_per_stream;
  s.make_outcomes = [params](int i) {
    return std::make_unique<sim::MarkovOutcomes>(params,
                                                 0xbe5c40u + static_cast<unsigned>(i));
  };
  return s;
}

}  // namespace ffsva::bench
