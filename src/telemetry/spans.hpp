// Per-stage trace spans: a per-thread ring-buffer recorder with a runtime
// on/off toggle and a chrome://tracing / Perfetto-loadable JSON exporter.
//
// Every pipeline stage wraps its unit of work (a decode, a filter call, an
// executor batch) in a ScopedSpan; when tracing is disabled the whole
// mechanism costs one relaxed load per span. When enabled, finishing a span
// writes one fixed-size record into the calling thread's ring — no locks,
// no allocation after the thread's first span (ring registration) — so the
// recorder is safe on the zero-alloc inference hot path. Rings overwrite
// their oldest records, bounding memory to O(threads * ring capacity): a
// trace holds the *tail* of a run, which is what a timeline viewer needs.
//
// Contract: enable() must not race with recorders (the engine arms tracing
// before its stage threads start); collect()/write_chrome_trace() are exact
// after recorders quiesce (the engine exports after joining its stages) and
// otherwise may miss or skip in-flight records, never crash. Timestamps are
// microseconds since enable(); the simulator records spans with *virtual*
// timestamps through the same record() call.
//
// relaxed-ok: the enabled flag and ring heads are single-writer cells whose
// exactness contract is quiesce-then-read (enable() before recorders start,
// collect() after they join); release/acquire pairs order the slot writes.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "runtime/annotations.hpp"

namespace ffsva::telemetry {

/// Which pipeline stage a span belongs to (the chrome-trace category).
enum class Stage : std::uint8_t {
  kPrefetch = 0,
  kSdd,
  kSnm,
  kTyolo,
  kRef,
  kExecutor,
  kSupervise,
  kSim,
};

const char* to_string(Stage s);

struct Span {
  const char* name = "";      ///< Static string (never owned).
  Stage stage = Stage::kSim;
  int stream = -1;            ///< Stream id, -1 when not stream-scoped.
  std::int64_t frame = -1;    ///< Frame index, -1 when batch-scoped.
  int batch = 0;              ///< Batch size, 0 when frame-scoped.
  std::int64_t t_start_us = 0;
  std::int64_t t_end_us = 0;
  std::uint32_t tid = 0;      ///< telemetry::thread_slot() of the recorder.
};

class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t ring_capacity = 1 << 14);
  ~TraceBuffer();

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  /// Arm recording: resets every ring and the timestamp epoch. Must not
  /// race with recorders.
  void enable() FFSVA_EXCLUDES(mu_);
  /// Disarm recording; subsequent record() calls return immediately.
  void disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Microseconds since the last enable() (steady clock).
  std::int64_t now_us() const;

  /// Append one span to the calling thread's ring. Lock-free and alloc-free
  /// after the thread's first call; a no-op while disabled.
  void record(const Span& span);

  /// All recorded spans, oldest first. Exact after recorders quiesce.
  std::vector<Span> collect() const FFSVA_EXCLUDES(mu_);

  /// Write the spans as a chrome://tracing "traceEvents" JSON document
  /// (load in chrome://tracing or https://ui.perfetto.dev).
  void write_chrome_trace(std::ostream& os) const;
  /// Same, to a file; false if the file cannot be opened.
  bool write_chrome_trace(const std::string& path) const;

  /// Process-wide buffer used by the threaded engine. A Meyers singleton:
  /// every recording thread (including each prefetch thread, quarantined
  /// or not) is joined before run() returns, so nothing races static
  /// destruction.
  static TraceBuffer& global();

  /// One thread's span ring; public only so the thread-local ring cache in
  /// the implementation file can name it.
  struct Ring;

 private:
  Ring* ring_for_this_thread() FFSVA_EXCLUDES(mu_);

  const std::size_t ring_capacity_;
  std::uint64_t id_ = 0;  ///< Process-unique identity for thread ring caches.
  std::atomic<bool> enabled_{false};
  std::atomic<std::int64_t> epoch_ns_{0};
  mutable runtime::Mutex mu_{runtime::rank::kTraceBuffer,
                             "telemetry::TraceBuffer::mu_"};
  /// Ring registration is guarded; the rings' *contents* are the recorder
  /// threads' own atomics (see Ring::head), read by collect() via acquire.
  std::vector<std::unique_ptr<Ring>> rings_ FFSVA_GUARDED_BY(mu_);
};

/// RAII span: stamps start at construction, records at destruction. All
/// decisions are taken against the buffer's enabled() at construction, so a
/// disabled trace costs one relaxed load.
class ScopedSpan {
 public:
  ScopedSpan(TraceBuffer& buf, const char* name, Stage stage, int stream = -1,
             std::int64_t frame = -1, int batch = 0)
      : buf_(buf.enabled() ? &buf : nullptr) {
    if (buf_) {
      span_.name = name;
      span_.stage = stage;
      span_.stream = stream;
      span_.frame = frame;
      span_.batch = batch;
      span_.t_start_us = buf_->now_us();
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Batch size is often known only after the work (e.g. frames actually
  /// popped); settable until destruction.
  void set_batch(int batch) {
    if (buf_) span_.batch = batch;
  }

  ~ScopedSpan() {
    if (buf_) {
      span_.t_end_us = buf_->now_us();
      buf_->record(span_);
    }
  }

 private:
  TraceBuffer* buf_;
  Span span_;
};

}  // namespace ffsva::telemetry
