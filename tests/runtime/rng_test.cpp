#include "runtime/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace ffsva::runtime {
namespace {

TEST(SplitMix64, DeterministicAndDistinct) {
  SplitMix64 a(1), b(1), c(2);
  const auto a1 = a.next();
  EXPECT_EQ(a1, b.next());
  EXPECT_NE(a1, c.next());
}

TEST(Xoshiro256, DeterministicFromSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro256, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000, 0.5, 0.01);
}

TEST(Xoshiro256, UniformRangeRespectsBounds) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    ASSERT_GE(v, -3.0);
    ASSERT_LT(v, 5.0);
  }
}

TEST(Xoshiro256, BelowIsUnbiased) {
  Xoshiro256 rng(11);
  int counts[7] = {};
  const int n = 70000;
  for (int i = 0; i < n; ++i) ++counts[rng.below(7)];
  for (int k = 0; k < 7; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, 1.0 / 7, 0.01);
  }
}

TEST(Xoshiro256, RangeIsInclusive) {
  Xoshiro256 rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Xoshiro256, NormalMomentsRoughlyStandard) {
  Xoshiro256 rng(17);
  double sum = 0.0, sumsq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double z = rng.normal();
    sum += z;
    sumsq += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.03);
}

TEST(Xoshiro256, ChanceExtremes) {
  Xoshiro256 rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Xoshiro256, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Xoshiro256>);
  SUCCEED();
}

}  // namespace
}  // namespace ffsva::runtime
