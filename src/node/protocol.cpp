#include "node/protocol.hpp"

#include <sstream>

#include "runtime/binary_io.hpp"

namespace ffsva::node {

namespace {

/// Frame payloads already live under the wire layer's 16 MiB cap; this is
/// merely the sanity bound on element counts inside one payload.
constexpr std::uint64_t kMaxVector = 1u << 20;

template <typename T>
void w(std::ostream& os, const T& v) {
  runtime::write_pod(os, &v);
}

template <typename T>
bool r(std::istream& is, T* v) {
  return runtime::read_pod(is, v);
}

void w_bool(std::ostream& os, bool b) {
  const std::uint8_t v = b ? 1 : 0;
  w(os, v);
}

bool r_bool(std::istream& is, bool* b) {
  std::uint8_t v = 0;
  if (!r(is, &v)) return false;
  *b = v != 0;
  return true;
}

void write_fault(std::ostream& os, const core::FaultStats& f) {
  w(os, f.decode_errors);
  w(os, f.retries);
  w(os, f.restarts);
  w(os, f.degraded_frames);
  w(os, f.discarded_frames);
  w(os, f.cancelled_calls);
  w(os, f.poisoned_frames);
  w_bool(os, f.quarantined);
}

bool read_fault(std::istream& is, core::FaultStats* f) {
  return r(is, &f->decode_errors) && r(is, &f->retries) &&
         r(is, &f->restarts) && r(is, &f->degraded_frames) &&
         r(is, &f->discarded_frames) && r(is, &f->cancelled_calls) &&
         r(is, &f->poisoned_frames) && r_bool(is, &f->quarantined);
}

void write_stream(std::ostream& os, const core::StreamSnapshot& s) {
  const auto id = static_cast<std::int32_t>(s.id);
  w(os, id);
  w(os, s.prefetch_in);
  w(os, s.prefetch_passed);
  w(os, s.dropped_at_ingest);
  w(os, s.sdd_in);
  w(os, s.sdd_passed);
  w(os, s.snm_in);
  w(os, s.snm_passed);
  w(os, s.tyolo_in);
  w(os, s.tyolo_passed);
  w(os, s.ref_in);
  w(os, s.ref_passed);
  w(os, s.terminated);
  w_bool(os, s.ingest_done);
  w(os, static_cast<std::uint64_t>(s.sdd_queue_depth));
  w(os, static_cast<std::uint64_t>(s.snm_queue_depth));
  w(os, static_cast<std::uint64_t>(s.tyolo_queue_depth));
  w(os, s.decode_full);
  w(os, s.decode_skipped);
  w(os, s.hint_passes);
  w(os, s.hint_fallbacks);
  w(os, s.compression_ratio);
  write_fault(os, s.fault);
}

bool read_stream(std::istream& is, core::StreamSnapshot* s) {
  std::int32_t id = 0;
  std::uint64_t sddq = 0, snmq = 0, tyq = 0;
  if (!(r(is, &id) && r(is, &s->prefetch_in) && r(is, &s->prefetch_passed) &&
        r(is, &s->dropped_at_ingest) && r(is, &s->sdd_in) &&
        r(is, &s->sdd_passed) && r(is, &s->snm_in) && r(is, &s->snm_passed) &&
        r(is, &s->tyolo_in) && r(is, &s->tyolo_passed) && r(is, &s->ref_in) &&
        r(is, &s->ref_passed) && r(is, &s->terminated) &&
        r_bool(is, &s->ingest_done) && r(is, &sddq) && r(is, &snmq) &&
        r(is, &tyq) && r(is, &s->decode_full) && r(is, &s->decode_skipped) &&
        r(is, &s->hint_passes) && r(is, &s->hint_fallbacks) &&
        r(is, &s->compression_ratio) && read_fault(is, &s->fault))) {
    return false;
  }
  s->id = id;
  s->sdd_queue_depth = static_cast<std::size_t>(sddq);
  s->snm_queue_depth = static_cast<std::size_t>(snmq);
  s->tyolo_queue_depth = static_cast<std::size_t>(tyq);
  return true;
}

void write_health(std::ostream& os, const core::HealthSummary& h) {
  w(os, static_cast<std::int32_t>(h.healthy_streams));
  w(os, static_cast<std::int32_t>(h.degraded_streams));
  w(os, static_cast<std::int32_t>(h.quarantined_streams));
  w(os, h.decode_errors);
  w(os, h.retries);
  w(os, h.restarts);
  w(os, h.degraded_frames);
  w(os, h.discarded_frames);
  w(os, h.cancels);
  w(os, h.stage_restarts);
  w(os, h.poisoned_frames);
  w(os, h.stage_stall_ticks);
  w_bool(os, h.stopped);
  w_bool(os, h.deadline_hit);
}

bool read_health(std::istream& is, core::HealthSummary* h) {
  std::int32_t healthy = 0, degraded = 0, quarantined = 0;
  if (!(r(is, &healthy) && r(is, &degraded) && r(is, &quarantined) &&
        r(is, &h->decode_errors) && r(is, &h->retries) && r(is, &h->restarts) &&
        r(is, &h->degraded_frames) && r(is, &h->discarded_frames) &&
        r(is, &h->cancels) && r(is, &h->stage_restarts) &&
        r(is, &h->poisoned_frames) && r(is, &h->stage_stall_ticks) &&
        r_bool(is, &h->stopped) && r_bool(is, &h->deadline_hit))) {
    return false;
  }
  h->healthy_streams = healthy;
  h->degraded_streams = degraded;
  h->quarantined_streams = quarantined;
  return true;
}

}  // namespace

std::string AssignStream::serialize() const {
  std::ostringstream os;
  const std::string sp = spec.serialize();
  w(os, static_cast<std::uint32_t>(sp.size()));
  os.write(sp.data(), static_cast<std::streamsize>(sp.size()));
  w_bool(os, resume);
  return std::move(os).str();
}

std::optional<AssignStream> AssignStream::parse(std::string_view payload) {
  std::istringstream is{std::string(payload)};
  std::uint32_t len = 0;
  if (!r(is, &len) || len > payload.size()) return std::nullopt;
  std::string sp(len, '\0');
  if (!is.read(sp.data(), static_cast<std::streamsize>(len))) return std::nullopt;
  AssignStream a;
  const auto spec = StreamSpec::parse(sp);
  if (!spec || !r_bool(is, &a.resume)) return std::nullopt;
  a.spec = *spec;
  return a;
}

std::string AssignAck::serialize() const {
  std::ostringstream os;
  w(os, stream_id);
  w_bool(os, ok);
  w(os, local_id);
  return std::move(os).str();
}

std::optional<AssignAck> AssignAck::parse(std::string_view payload) {
  std::istringstream is{std::string(payload)};
  AssignAck a;
  if (!r(is, &a.stream_id) || !r_bool(is, &a.ok) || !r(is, &a.local_id)) {
    return std::nullopt;
  }
  return a;
}

std::string EndStream::serialize() const {
  std::ostringstream os;
  w(os, stream_id);
  return std::move(os).str();
}

std::optional<EndStream> EndStream::parse(std::string_view payload) {
  std::istringstream is{std::string(payload)};
  EndStream e;
  if (!r(is, &e.stream_id)) return std::nullopt;
  return e;
}

std::string StreamEnded::serialize() const {
  std::ostringstream os;
  w(os, stream_id);
  w(os, cursor);
  w(os, ingested);
  w(os, emitted);
  return std::move(os).str();
}

std::optional<StreamEnded> StreamEnded::parse(std::string_view payload) {
  std::istringstream is{std::string(payload)};
  StreamEnded e;
  if (!r(is, &e.stream_id) || !r(is, &e.cursor) || !r(is, &e.ingested) ||
      !r(is, &e.emitted)) {
    return std::nullopt;
  }
  return e;
}

std::string StreamResults::serialize() const {
  std::ostringstream os;
  w(os, stream_id);
  w(os, static_cast<std::uint64_t>(emitted_frames.size()));
  for (const std::uint64_t f : emitted_frames) w(os, f);
  return std::move(os).str();
}

std::optional<StreamResults> StreamResults::parse(std::string_view payload) {
  std::istringstream is{std::string(payload)};
  StreamResults res;
  std::uint64_t n = 0;
  if (!r(is, &res.stream_id) || !r(is, &n) || n > kMaxVector) {
    return std::nullopt;
  }
  res.emitted_frames.resize(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    if (!r(is, &res.emitted_frames[i])) return std::nullopt;
  }
  return res;
}

std::string serialize_snapshot(const core::InstanceSnapshot& snap) {
  std::ostringstream os;
  w_bool(os, snap.running);
  w(os, snap.t_sec);
  w(os, static_cast<std::uint64_t>(snap.ref_queue_depth));
  w(os, snap.outputs);
  write_health(os, snap.health);
  w(os, static_cast<std::uint32_t>(snap.streams.size()));
  for (const auto& s : snap.streams) write_stream(os, s);
  return std::move(os).str();
}

std::optional<core::InstanceSnapshot> parse_snapshot(std::string_view payload) {
  std::istringstream is{std::string(payload)};
  core::InstanceSnapshot snap;
  std::uint64_t refq = 0;
  std::uint32_t n = 0;
  if (!r_bool(is, &snap.running) || !r(is, &snap.t_sec) || !r(is, &refq) ||
      !r(is, &snap.outputs) || !read_health(is, &snap.health) || !r(is, &n) ||
      n > kMaxVector) {
    return std::nullopt;
  }
  snap.ref_queue_depth = static_cast<std::size_t>(refq);
  snap.streams.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (!read_stream(is, &snap.streams[i])) return std::nullopt;
  }
  return snap;
}

}  // namespace ffsva::node
