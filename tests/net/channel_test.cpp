// Channel handshake, framed exchange, and reconnect policy over real
// sockets (loopback TCP and UDS). The version-mismatch cases cover both
// layers: a foreign wire version dies in the frame decoder, and a
// correctly-framed hello carrying a foreign application version draws an
// explicit kHelloReject.
#include "net/channel.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <thread>

#include "net/socket.hpp"
#include "net/wire.hpp"

namespace ffsva::net {
namespace {

TEST(Channel, HandshakeAndEchoOverTcp) {
  Listener lis;
  ASSERT_TRUE(lis.listen(Endpoint::tcp("127.0.0.1", 0)));
  const int port = lis.bound_port();
  ASSERT_GT(port, 0);

  NetCounters server_counters;
  std::optional<HelloInfo> seen_hello;
  std::thread server([&] {
    auto sock = lis.accept(5000);
    ASSERT_TRUE(sock.has_value());
    Channel ch(std::move(*sock), &server_counters);
    seen_hello = ch.handshake_server();
    ASSERT_TRUE(seen_hello.has_value());
    const auto frame = ch.recv(5000);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->type, MsgType::kHeartbeat);
    ch.send(MsgType::kHeartbeat, frame->payload);
  });

  NetCounters client_counters;
  Socket s = connect_endpoint(Endpoint::tcp("127.0.0.1", port));
  ASSERT_TRUE(s.valid());
  Channel ch(std::move(s), &client_counters);
  ASSERT_TRUE(ch.handshake_client(/*node_id=*/42));
  ASSERT_TRUE(ch.send(MsgType::kHeartbeat, "ping"));
  const auto echo = ch.recv(5000);
  ASSERT_TRUE(echo.has_value());
  EXPECT_EQ(echo->payload, "ping");
  server.join();

  EXPECT_EQ(seen_hello->node_id, 42u);
  EXPECT_GT(client_counters.bytes_tx.load(), 0u);
  EXPECT_GT(client_counters.bytes_rx.load(), 0u);
  EXPECT_GT(server_counters.bytes_rx.load(), 0u);
}

TEST(Channel, HandshakeOverUnixSocket) {
  const std::string path = std::string(::testing::TempDir()) + "ffsva_ch.sock";
  std::remove(path.c_str());
  Listener lis;
  ASSERT_TRUE(lis.listen(Endpoint::uds(path)));

  std::thread server([&] {
    auto sock = lis.accept(5000);
    ASSERT_TRUE(sock.has_value());
    Channel ch(std::move(*sock), nullptr);
    EXPECT_TRUE(ch.handshake_server().has_value());
  });
  Socket s = connect_endpoint(Endpoint::uds(path));
  ASSERT_TRUE(s.valid());
  Channel ch(std::move(s), nullptr);
  EXPECT_TRUE(ch.handshake_client(7));
  server.join();
  lis.close();
}

TEST(Channel, ForeignWireVersionDiesAtFraming) {
  Listener lis;
  ASSERT_TRUE(lis.listen(Endpoint::tcp("127.0.0.1", 0)));
  const int port = lis.bound_port();

  std::optional<HelloInfo> hello;
  std::thread server([&] {
    auto sock = lis.accept(5000);
    ASSERT_TRUE(sock.has_value());
    Channel ch(std::move(*sock), nullptr);
    hello = ch.handshake_server(2000);
  });

  // A hello framed with a future wire version: the server's decoder must
  // refuse it before any payload parsing happens.
  Socket s = connect_endpoint(Endpoint::tcp("127.0.0.1", port));
  ASSERT_TRUE(s.valid());
  std::string bytes = encode_frame(MsgType::kHello, HelloInfo{}.serialize());
  const std::uint16_t v2 = kWireVersion + 1;
  std::memcpy(bytes.data() + 4, &v2, sizeof(v2));
  ASSERT_TRUE(s.send_all(bytes.data(), bytes.size()));
  server.join();
  EXPECT_FALSE(hello.has_value());
}

TEST(Channel, ForeignAppVersionDrawsHelloReject) {
  Listener lis;
  ASSERT_TRUE(lis.listen(Endpoint::tcp("127.0.0.1", 0)));
  const int port = lis.bound_port();

  std::optional<HelloInfo> hello;
  std::thread server([&] {
    auto sock = lis.accept(5000);
    ASSERT_TRUE(sock.has_value());
    Channel ch(std::move(*sock), nullptr);
    hello = ch.handshake_server(2000);
  });

  // Correct framing, but the hello payload announces a protocol version the
  // server does not speak: it must answer kHelloReject explicitly.
  Socket s = connect_endpoint(Endpoint::tcp("127.0.0.1", port));
  ASSERT_TRUE(s.valid());
  HelloInfo future;
  future.wire_version = kWireVersion + 1;
  Channel ch(std::move(s), nullptr);
  ASSERT_TRUE(ch.send(MsgType::kHello, future.serialize()));
  const auto reply = ch.recv(5000);
  server.join();
  EXPECT_FALSE(hello.has_value());
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, MsgType::kHelloReject);
}

TEST(Channel, ReconnectingClientBacksOffThenConnects) {
  // Reserve a port by binding, then close — nothing listens there yet.
  int port = 0;
  {
    Listener probe;
    ASSERT_TRUE(probe.listen(Endpoint::tcp("127.0.0.1", 0)));
    port = probe.bound_port();
    probe.close();
  }
  NetCounters counters;
  ReconnectingClient rc(Endpoint::tcp("127.0.0.1", port), 3, &counters);
  // Unreachable: get() fails fast and tracks backoff across calls.
  EXPECT_EQ(rc.get(200), nullptr);
  EXPECT_EQ(rc.get(200), nullptr);
  EXPECT_FALSE(rc.connected());
  EXPECT_EQ(counters.reconnects.load(), 0u);  // never connected yet

  Listener lis;
  ASSERT_TRUE(lis.listen(Endpoint::tcp("127.0.0.1", port)));
  std::thread server([&] {
    for (int conn = 0; conn < 2; ++conn) {
      auto sock = lis.accept(10'000);
      if (!sock) return;
      Channel ch(std::move(*sock), nullptr);
      if (!ch.handshake_server().has_value()) return;
      // First connection: hang up immediately after the handshake to force
      // the client through the reconnect path.
      if (conn == 0) ch.close();
    }
  });

  Channel* ch = nullptr;
  for (int i = 0; i < 100 && ch == nullptr; ++i) ch = rc.get(500);
  ASSERT_NE(ch, nullptr);
  EXPECT_EQ(counters.reconnects.load(), 0u);

  // Server hangs up; the next recv observes the close and the client
  // re-establishes — which is what the reconnects counter counts.
  EXPECT_EQ(ch->recv(2000), std::nullopt);
  EXPECT_FALSE(rc.connected());
  ch = nullptr;
  for (int i = 0; i < 100 && ch == nullptr; ++i) ch = rc.get(500);
  ASSERT_NE(ch, nullptr);
  EXPECT_EQ(counters.reconnects.load(), 1u);
  server.join();
}

}  // namespace
}  // namespace ffsva::net
