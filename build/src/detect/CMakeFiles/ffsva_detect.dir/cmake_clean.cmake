file(REMOVE_RECURSE
  "CMakeFiles/ffsva_detect.dir/background.cpp.o"
  "CMakeFiles/ffsva_detect.dir/background.cpp.o.d"
  "CMakeFiles/ffsva_detect.dir/multi_snm.cpp.o"
  "CMakeFiles/ffsva_detect.dir/multi_snm.cpp.o.d"
  "CMakeFiles/ffsva_detect.dir/reference.cpp.o"
  "CMakeFiles/ffsva_detect.dir/reference.cpp.o.d"
  "CMakeFiles/ffsva_detect.dir/scene_change.cpp.o"
  "CMakeFiles/ffsva_detect.dir/scene_change.cpp.o.d"
  "CMakeFiles/ffsva_detect.dir/sdd.cpp.o"
  "CMakeFiles/ffsva_detect.dir/sdd.cpp.o.d"
  "CMakeFiles/ffsva_detect.dir/segmentation.cpp.o"
  "CMakeFiles/ffsva_detect.dir/segmentation.cpp.o.d"
  "CMakeFiles/ffsva_detect.dir/snm.cpp.o"
  "CMakeFiles/ffsva_detect.dir/snm.cpp.o.d"
  "CMakeFiles/ffsva_detect.dir/specialize.cpp.o"
  "CMakeFiles/ffsva_detect.dir/specialize.cpp.o.d"
  "CMakeFiles/ffsva_detect.dir/tyolo.cpp.o"
  "CMakeFiles/ffsva_detect.dir/tyolo.cpp.o.d"
  "libffsva_detect.a"
  "libffsva_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ffsva_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
