// End-to-end stream specialization (paper Section 4.1) on both workload
// profiles, plus cascade-level accuracy checks against the reference model.
#include "detect/specialize.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "video/profiles.hpp"

namespace ffsva::detect {
namespace {

struct Specialized {
  video::SceneConfig cfg;
  std::unique_ptr<video::SceneSimulator> sim;
  StreamModels models;

  Specialized(video::SceneConfig base, double tor, std::uint64_t seed) {
    cfg = base;
    cfg.width = 160;
    cfg.height = 120;
    cfg.tor = tor;
    sim = std::make_unique<video::SceneSimulator>(cfg, seed, 1800);
    std::vector<video::Frame> calib;
    for (int i = 0; i < 900; ++i) calib.push_back(sim->render(i));
    SpecializeConfig sc;
    sc.target = cfg.target;
    sc.snm.epochs = 6;
    models = specialize_stream(calib, sc, seed);
  }
};

Specialized& car_stream() {
  static auto* s = new Specialized(video::jackson_profile(), 0.30, 5);
  return *s;
}

Specialized& person_stream() {
  static auto* s = new Specialized(video::coral_profile(), 0.60, 6);
  return *s;
}

TEST(Specialize, NeedsCalibrationWindow) {
  EXPECT_THROW(specialize_stream({}, SpecializeConfig{}, 1), std::invalid_argument);
}

TEST(Specialize, ProducesAllModels) {
  auto& s = car_stream();
  EXPECT_FALSE(s.models.background.empty());
  EXPECT_NE(s.models.reference, nullptr);
  EXPECT_NE(s.models.sdd, nullptr);
  EXPECT_NE(s.models.snm, nullptr);
  EXPECT_NE(s.models.tyolo, nullptr);
  EXPECT_GT(s.models.sdd_delta, 0.0);
}

TEST(Specialize, LabelRateTracksTor) {
  auto& s = car_stream();
  EXPECT_NEAR(s.models.label_positive_rate, 0.30, 0.15);
}

TEST(Specialize, SnmLearnsTheStream) {
  auto& s = car_stream();
  EXPECT_GT(s.models.snm_report.val_accuracy, 0.9);
}

TEST(Specialize, CascadeAgreesWithReferenceOnFreshFrames) {
  auto& s = car_stream();
  int fn = 0, ref_pos = 0, n = 0;
  for (int i = 900; i < 1800; i += 3) {
    const auto f = s.sim->render(i);
    ++n;
    const bool ref = s.models.reference->detect(f.image).any_target(s.cfg.target);
    bool alive = s.models.sdd->pass(f.image);
    if (alive) alive = s.models.snm->pass(f.image);
    if (alive) alive = s.models.tyolo->pass(f.image, s.cfg.target, 1);
    ref_pos += ref;
    if (ref && !alive) ++fn;
  }
  ASSERT_GT(ref_pos, 10);
  // Frame-level error rate within the band the paper reports (< a few %).
  EXPECT_LT(static_cast<double>(fn) / n, 0.08);
}

TEST(Specialize, PersonStreamUsesCrowdCounting) {
  auto& s = person_stream();
  // The specialized T-YOLO classifier must have mass-based splitting on.
  EXPECT_GT(s.models.tyolo->config().classifier.person_split_area, 0.0);
  EXPECT_GT(s.models.tyolo->config().classifier.person_max_aspect, 1.0);
}

TEST(Specialize, PersonCascadeCatchesCrowdScenes) {
  auto& s = person_stream();
  // Scene-level: with relaxed filtering (Section 3.3: "the cascaded
  // structure and relaxed filtering conditions can also prevent excessive
  // filtering errors"), every interval overlapping the fresh window should
  // have at least one surviving frame. At FilterDegree 1.0 borderline
  // lone-person scenes may score between c_low and c_high and be lost —
  // that is the Figure-7 trade-off, exercised in FilterDegreeTradeoff.
  s.models.snm->set_filter_degree(0.1);
  int scenes = 0, caught = 0;
  for (const auto& iv : s.sim->intervals()) {
    if (iv.begin < 900 || iv.end > 1800) continue;
    ++scenes;
    bool hit = false;
    for (std::int64_t f = iv.begin; f < iv.end && !hit; f += 2) {
      const auto frame = s.sim->render(f);
      bool alive = s.models.sdd->pass(frame.image);
      if (alive) alive = s.models.snm->pass(frame.image);
      if (alive) alive = s.models.tyolo->pass(frame.image, s.cfg.target, 1);
      hit = alive;
    }
    caught += hit ? 1 : 0;
  }
  ASSERT_GT(scenes, 0);
  EXPECT_EQ(caught, scenes) << "no crowd scene may be lost at N=1";
  s.models.snm->set_filter_degree(0.5);  // restore the default for other tests
}

TEST(Specialize, FilterDegreeTradeoff) {
  // Figure 7's mechanism at filter level: raising FilterDegree can only
  // reduce the number of frames passing SNM.
  auto& s = person_stream();
  std::int64_t prev_pass = std::numeric_limits<std::int64_t>::max();
  for (double fd : {0.0, 0.5, 1.0}) {
    s.models.snm->set_filter_degree(fd);
    std::int64_t pass = 0;
    for (int i = 900; i < 1100; i += 4) {
      if (s.models.snm->pass(s.sim->render(i).image)) ++pass;
    }
    EXPECT_LE(pass, prev_pass) << "FilterDegree " << fd;
    prev_pass = pass;
  }
  s.models.snm->set_filter_degree(0.5);
}

TEST(Specialize, CarStreamClassifierRejectsNarrowBlobs) {
  auto& s = car_stream();
  EXPECT_LE(s.models.tyolo->config().classifier.person_max_aspect, 1.0);
}

TEST(Specialize, TyoloCountsRiseWithNumberOfObjectsInScene) {
  auto& s = car_stream();
  // Find a multi-object interval and a single-object interval; T-YOLO's
  // count should (weakly) reflect the difference mid-scene.
  int multi_count = -1, single_count = -1;
  for (const auto& iv : s.sim->intervals()) {
    const auto mid = (iv.begin + iv.end) / 2;
    const auto f = s.sim->render(mid);
    const int c = s.models.tyolo->detect(f.image).count_target(s.cfg.target);
    if (iv.num_objects >= 3 && multi_count < 0) multi_count = c;
    if (iv.num_objects == 1 && single_count < 0) single_count = c;
  }
  if (multi_count >= 0 && single_count >= 0) {
    EXPECT_GE(multi_count, single_count);
  }
}

}  // namespace
}  // namespace ffsva::detect
