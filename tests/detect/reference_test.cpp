#include "detect/reference.hpp"

#include <gtest/gtest.h>

#include "image/draw.hpp"
#include "video/profiles.hpp"

namespace ffsva::detect {
namespace {

image::Image street_bg() { return image::Image(320, 240, 3, 70); }

TEST(Reference, EmptySceneYieldsNothing) {
  const auto bg = street_bg();
  ReferenceDetector ref(ReferenceConfig{}, bg);
  EXPECT_TRUE(ref.detect(bg).detections.empty());
}

TEST(Reference, DetectsAndClassifiesCar) {
  const auto bg = street_bg();
  auto frame = bg;
  image::fill_rect(frame, image::Box{80, 100, 130, 122}, image::Rgb{220, 50, 50});
  ReferenceDetector ref(ReferenceConfig{}, bg);
  const auto r = ref.detect(frame);
  ASSERT_EQ(r.detections.size(), 1u);
  EXPECT_EQ(r.detections[0].cls, video::ObjectClass::kCar);
  EXPECT_GE(r.detections[0].confidence, 0.45);
  // Box covers the object's core.
  EXPECT_LE(r.detections[0].box.x0, 85);
  EXPECT_GE(r.detections[0].box.x1, 125);
}

TEST(Reference, DetectsAndClassifiesPerson) {
  const auto bg = street_bg();
  auto frame = bg;
  image::fill_rect(frame, image::Box{200, 100, 214, 136}, image::Rgb{40, 180, 220});
  ReferenceDetector ref(ReferenceConfig{}, bg);
  const auto r = ref.detect(frame);
  ASSERT_EQ(r.detections.size(), 1u);
  EXPECT_EQ(r.detections[0].cls, video::ObjectClass::kPerson);
}

TEST(Reference, VeryWideVehicleIsBus) {
  const auto bg = street_bg();
  auto frame = bg;
  image::fill_rect(frame, image::Box{50, 100, 150, 134}, image::Rgb{230, 200, 40});
  ReferenceDetector ref(ReferenceConfig{}, bg);
  const auto r = ref.detect(frame);
  ASSERT_EQ(r.detections.size(), 1u);
  EXPECT_EQ(r.detections[0].cls, video::ObjectClass::kBus);
  // The vehicle group still counts it for a car-target stream.
  EXPECT_EQ(r.count_target(video::ObjectClass::kCar), 1);
}

TEST(Reference, LowContrastSpeckStaysBelowOperatingThreshold) {
  const auto bg = street_bg();
  auto frame = bg;
  // A 7x7 blob of moderate contrast: detectable foreground, but not a
  // credible vehicle at the 0.45 operating threshold.
  image::fill_rect(frame, image::Box{60, 200, 67, 207}, image::Rgb{160, 150, 140});
  ReferenceConfig cfg;
  ReferenceDetector ref(cfg, bg);
  const auto r = ref.detect(frame);
  EXPECT_FALSE(r.any_target(video::ObjectClass::kCar, cfg.confidence_threshold));
}

TEST(Reference, CountsMatchGroundTruthOnRealScenes) {
  video::SceneConfig cfg = video::jackson_profile();
  cfg.width = 160;
  cfg.height = 120;
  cfg.tor = 0.4;
  cfg.distractor_rate = 0.0;
  video::SceneSimulator sim(cfg, 13, 800);
  ReferenceConfig rc;
  ReferenceDetector ref(rc, sim.background());
  int checked = 0, agree = 0;
  for (int i = 0; i < 800; i += 19) {
    const auto f = sim.render(i);
    // Only score frames with fully-visible targets (partials are the known
    // hard case analysed elsewhere).
    bool all_full = true;
    for (const auto& o : f.gt.objects) all_full = all_full && o.visible_fraction > 0.95;
    if (!all_full) continue;
    ++checked;
    const int truth = f.gt.count_target(cfg.target, 0.95);
    const int found = ref.detect(f.image).count_target(cfg.target, rc.confidence_threshold);
    if (found == truth) ++agree;
  }
  ASSERT_GT(checked, 10);
  EXPECT_GT(static_cast<double>(agree) / checked, 0.85)
      << "the reference model must be a credible oracle on clean frames";
}

TEST(Reference, ConfidenceThresholdIsConfigurable) {
  ReferenceConfig cfg;
  EXPECT_NEAR(cfg.confidence_threshold, 0.45, 1e-9);
  cfg.confidence_threshold = 0.2;
  const auto bg = street_bg();
  ReferenceDetector ref(cfg, bg);
  EXPECT_NEAR(ref.config().confidence_threshold, 0.2, 1e-9);
}

}  // namespace
}  // namespace ffsva::detect
