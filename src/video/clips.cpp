#include "video/clips.hpp"

#include <algorithm>
#include <cmath>

namespace ffsva::video {

std::vector<std::uint8_t> presence_mask(const SceneSimulator& sim) {
  std::vector<std::uint8_t> mask(static_cast<std::size_t>(sim.total_frames()), 0);
  for (const auto& iv : sim.intervals()) {
    for (std::int64_t f = iv.begin; f < iv.end; ++f) {
      mask[static_cast<std::size_t>(f)] = 1;
    }
  }
  return mask;
}

double window_tor(const std::vector<std::uint8_t>& presence, std::int64_t begin,
                  std::int64_t end) {
  if (end <= begin) return 0.0;
  std::int64_t hits = 0;
  for (std::int64_t f = begin; f < end; ++f) {
    hits += presence[static_cast<std::size_t>(f)];
  }
  return static_cast<double>(hits) / static_cast<double>(end - begin);
}

std::vector<Clip> find_clips(const SceneSimulator& sim,
                             const std::vector<double>& requested_tors,
                             std::int64_t clip_len, double tolerance) {
  std::vector<Clip> out;
  const std::int64_t total = sim.total_frames();
  if (clip_len <= 0 || clip_len > total) return out;
  const auto presence = presence_mask(sim);

  // Prefix sums for O(1) window TOR.
  std::vector<std::int64_t> prefix(static_cast<std::size_t>(total) + 1, 0);
  for (std::int64_t f = 0; f < total; ++f) {
    prefix[static_cast<std::size_t>(f) + 1] =
        prefix[static_cast<std::size_t>(f)] + presence[static_cast<std::size_t>(f)];
  }
  auto tor_of = [&](std::int64_t b) {
    return static_cast<double>(prefix[static_cast<std::size_t>(b + clip_len)] -
                               prefix[static_cast<std::size_t>(b)]) /
           static_cast<double>(clip_len);
  };

  std::vector<std::uint8_t> taken(static_cast<std::size_t>(total), 0);
  auto overlaps_taken = [&](std::int64_t b) {
    return taken[static_cast<std::size_t>(b)] ||
           taken[static_cast<std::size_t>(b + clip_len - 1)];
  };

  for (double want : requested_tors) {
    std::int64_t best = -1;
    double best_err = tolerance + 1e-12;
    // Stride by a fraction of the clip length: exhaustive enough, cheap.
    const std::int64_t stride = std::max<std::int64_t>(1, clip_len / 16);
    for (std::int64_t b = 0; b + clip_len <= total; b += stride) {
      if (overlaps_taken(b)) continue;
      const double err = std::abs(tor_of(b) - want);
      if (err < best_err) {
        best_err = err;
        best = b;
      }
    }
    if (best < 0) continue;
    Clip c;
    c.begin = best;
    c.end = best + clip_len;
    c.tor = tor_of(best);
    out.push_back(c);
    for (std::int64_t f = c.begin; f < c.end; ++f) {
      taken[static_cast<std::size_t>(f)] = 1;
    }
  }
  return out;
}

}  // namespace ffsva::video
