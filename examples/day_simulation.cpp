// A day in the life of an FFS-VA deployment.
//
// Ties together the long-horizon machinery: a diurnal TOR schedule drives
// per-hour workload intensity across a fleet of cameras; the calibrated
// simulator evaluates each hour's load on a two-server cluster; the
// ClusterManager admits and re-forwards streams between instances as the
// day heats up (paper Section 4.3.1's control loop); and a
// SceneChangeMonitor demo shows the Section 5.5 "scene switch" detector
// firing when a camera is bumped mid-day.
//
// Build & run:  ./build/examples/day_simulation
#include <cstdio>

#include "core/cluster.hpp"
#include "detect/scene_change.hpp"
#include "runtime/rng.hpp"
#include "sim/ffsva_sim.hpp"
#include "video/tor_schedule.hpp"

using namespace ffsva;

int main() {
  constexpr int kCameras = 36;
  constexpr int kInstances = 2;

  // --- The day -------------------------------------------------------------
  video::TorScheduleConfig tor_cfg;
  tor_cfg.pattern = video::TorPattern::kDiurnal;
  tor_cfg.base_tor = 0.10;
  tor_cfg.amplitude = 0.9;
  video::TorSchedule schedule(tor_cfg, 7);

  core::FfsVaConfig config;
  config.batch_policy = core::BatchPolicy::kFeedback;
  core::ClusterManager cluster(kInstances, config);
  // Deliberately unbalanced initial placement (as deployments grow
  // organically): instance 0 carries two thirds of the cameras.
  for (int cam = 0; cam < kCameras; ++cam) {
    cluster.attach_stream(cam, (cam % 3) < 2 ? 0 : 1);
  }

  std::printf("%d cameras, %d FFS-VA instances, diurnal TOR %.2f +/- %.0f%%\n\n",
              kCameras, kInstances, tor_cfg.base_tor, 100 * tor_cfg.amplitude);
  std::printf("%-6s %-6s | %-22s | %-10s %-10s\n", "hour", "TOR",
              "per-instance capacity", "placement", "action");
  std::printf("--------------------------------------------------------------\n");

  runtime::Xoshiro256 rng(99);
  for (int hour = 0; hour < 24; hour += 2) {
    const double tor = schedule.tor_at(hour * 3600.0);

    // Capacity of one instance at this hour's TOR.
    const auto params = sim::MarkovParams::for_tor(tor);
    sim::SimSetup probe;
    probe.config = config;
    probe.online = true;
    probe.duration_sec = 45.0;
    probe.frames_per_stream = 1000000;
    probe.make_outcomes = [&params](int i) {
      return std::make_unique<sim::MarkovOutcomes>(params, 500u + static_cast<unsigned>(i));
    };
    const int capacity = sim::max_realtime_streams(probe, 1, 48, 0.01);

    // Feed the cluster telemetry consistent with this hour and rebalance.
    const double now = hour * 3600.0;
    const char* action = "steady";
    for (int inst = 0; inst < kInstances; ++inst) {
      const int load = cluster.stream_count(inst);
      // T-YOLO service rate per stream: frames surviving SDD+SNM
      // (in-scene frames pass almost fully; background only via the
      // distractor-motion residue).
      const double tyolo_fps =
          30.0 * load * (tor * 0.95 + (1.0 - tor) * 0.35 * 0.12);
      for (double t = now - 6.0; t <= now; t += 0.5) {
        cluster.report_tyolo_service(inst, t, static_cast<int>(tyolo_fps / 2));
      }
      if (load > capacity) {
        cluster.report_queue_over_threshold(inst, now);
        action = "overload reported";
      }
    }
    int moved = 0;
    while (auto d = cluster.next_reforward(now + 0.001 * moved)) {
      ++moved;
      if (moved >= 8) break;
    }
    if (moved > 0) action = "re-forwarded";

    std::printf("%02d:00  %-6.3f | %2d streams/instance     | %2d / %-2d    %s%s\n",
                hour, tor, capacity, cluster.stream_count(0), cluster.stream_count(1),
                action, moved ? "" : "");
  }

  // --- Scene switch (Section 5.5) -------------------------------------------
  std::printf("\nScene-switch monitor (camera 7 gets bumped at frame 5000):\n");
  detect::SceneChangeConfig scc;
  scc.window_frames = 900;
  scc.confirm_frames = 450;
  detect::SceneChangeMonitor monitor(scc, /*background_level=*/6.0);
  int fired_at = -1;
  for (int frame = 0; frame < 12000; ++frame) {
    double distance;
    if (frame < 5000) {
      const bool scene = (frame % 300) < 60;  // normal traffic
      distance = scene ? rng.uniform(150.0, 400.0) : rng.uniform(3.0, 9.0);
    } else {
      distance = rng.uniform(90.0, 200.0);  // new viewpoint: floor shifted
    }
    if (monitor.observe(distance) && fired_at < 0) fired_at = frame;
  }
  if (fired_at >= 0) {
    std::printf("  detected at frame %d (%.0f s after the bump) -> re-specialize\n",
                fired_at, (fired_at - 5000) / 30.0);
  } else {
    std::printf("  not detected (unexpected)\n");
  }
  std::printf("\nDone. See bench_fig6_scalability for the TOR-capacity curve this\n"
              "planner samples, and detect/scene_change.hpp for the monitor.\n");
  return 0;
}
