// Metrics export: JSONL row serialization (values, rates, gauges, histogram
// summaries, counter-regression handling) and the sampler thread (periodic
// rows, final sample on stop, file append mode).
#include "telemetry/export.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>

#include "telemetry/metrics.hpp"

namespace ffsva::telemetry {
namespace {

MetricsSnapshot snap_with(std::uint64_t in, std::uint64_t passed,
                          double queue_depth) {
  MetricsSnapshot s;
  s.counters = {{"stage.in", in}, {"stage.passed", passed}};
  s.gauges = {{"queue.depth", queue_depth}};
  return s;
}

int count_lines(const std::string& text) {
  int n = 0;
  for (char c : text) n += (c == '\n');
  return n;
}

TEST(JsonlRow, CarriesCountersRatesGaugesAndLabel) {
  const MetricsSnapshot prev = snap_with(100, 80, 2.0);
  const MetricsSnapshot cur = snap_with(400, 230, 5.0);
  const std::string row = metrics_jsonl_row(cur, &prev, 10.0, 2.0, "run1");

  EXPECT_EQ(row.find('\n'), std::string::npos);  // single line
  EXPECT_NE(row.find("\"t_sec\":10"), std::string::npos);
  EXPECT_NE(row.find("\"label\":\"run1\""), std::string::npos);
  EXPECT_NE(row.find("\"stage.in\":400"), std::string::npos);
  // rate = (400 - 100) / 2 s = 150/s, (230 - 80) / 2 = 75/s.
  EXPECT_NE(row.find("\"rates\":{\"stage.in\":150,\"stage.passed\":75}"),
            std::string::npos)
      << row;
  EXPECT_NE(row.find("\"queue.depth\":5"), std::string::npos);
}

TEST(JsonlRow, FirstRowRatesSpanTheWholeRun) {
  const MetricsSnapshot cur = snap_with(300, 150, 0.0);
  const std::string row = metrics_jsonl_row(cur, nullptr, 3.0, 3.0, "");
  EXPECT_NE(row.find("\"stage.in\":100"), std::string::npos) << row;  // 300/3s
  EXPECT_EQ(row.find("\"label\""), std::string::npos);  // empty label omitted
}

TEST(JsonlRow, CounterRegressionYieldsZeroRateNotGarbage) {
  // An instance restart resets counters; the rate must clamp to 0, not wrap
  // to a huge unsigned delta.
  const MetricsSnapshot prev = snap_with(1000, 900, 0.0);
  const MetricsSnapshot cur = snap_with(10, 5, 0.0);
  const std::string row = metrics_jsonl_row(cur, &prev, 1.0, 1.0, "");
  EXPECT_NE(row.find("\"rates\":{\"stage.in\":0,\"stage.passed\":0}"),
            std::string::npos)
      << row;
}

TEST(JsonlRow, HistogramSummaryAndNonFiniteGauges) {
  MetricsSnapshot cur;
  AtomicHistogram h;
  for (int i = 1; i <= 100; ++i) h.record(static_cast<double>(i));
  cur.histograms.emplace_back("lat", h.snapshot());
  cur.gauges = {{"bad", std::numeric_limits<double>::quiet_NaN()}};

  const std::string row = metrics_jsonl_row(cur, nullptr, 1.0, 1.0, "");
  EXPECT_NE(row.find("\"lat\":{\"count\":100,\"mean\":50.5"), std::string::npos)
      << row;
  EXPECT_NE(row.find("\"p50\":"), std::string::npos);
  EXPECT_NE(row.find("\"p99\":"), std::string::npos);
  EXPECT_NE(row.find("\"max\":100"), std::string::npos);
  // JSON forbids nan/inf: mapped to 0.
  EXPECT_NE(row.find("\"bad\":0"), std::string::npos) << row;
}

TEST(Exporter, PeriodicSamplingIntoStream) {
  Registry reg;
  Counter& c = reg.counter("events");
  std::ostringstream sink;
  MetricsExporter exporter(reg);
  exporter.start_stream(&sink, /*interval_ms=*/5, "exp");
  EXPECT_TRUE(exporter.running());
  for (int i = 0; i < 50; ++i) {
    c.add(10);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  exporter.stop();
  EXPECT_FALSE(exporter.running());

  const std::string text = sink.str();
  EXPECT_GE(exporter.samples(), 2u);
  EXPECT_EQ(count_lines(text), static_cast<int>(exporter.samples()));
  // The final (stop) sample sees the quiesced total.
  EXPECT_NE(text.rfind("\"events\":500"), std::string::npos) << text;
  EXPECT_NE(text.find("\"label\":\"exp\""), std::string::npos);
}

TEST(Exporter, StopAlwaysTakesAFinalSample) {
  Registry reg;
  reg.counter("events").add(7);
  std::ostringstream sink;
  MetricsExporter exporter(reg);
  // Interval far longer than the run: the periodic loop never fires.
  exporter.start_stream(&sink, /*interval_ms=*/60000);
  exporter.stop();
  EXPECT_EQ(exporter.samples(), 1u);
  EXPECT_NE(sink.str().find("\"events\":7"), std::string::npos);
}

TEST(Exporter, FileSinkAppendsAcrossRuns) {
  const std::string path =
      ::testing::TempDir() + "/ffsva_export_test_metrics.jsonl";
  std::remove(path.c_str());

  Registry reg;
  reg.counter("events").add(1);
  {
    MetricsExporter exporter(reg);
    ASSERT_TRUE(exporter.start_file(path, 60000, "first"));
    exporter.stop();
  }
  {
    MetricsExporter exporter(reg);
    ASSERT_TRUE(exporter.start_file(path, 60000, "second"));
    exporter.stop();
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(count_lines(text), 2);  // append mode: both runs survive
  EXPECT_NE(text.find("\"label\":\"first\""), std::string::npos);
  EXPECT_NE(text.find("\"label\":\"second\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(Exporter, StartFileFailsOnBadPath) {
  Registry reg;
  MetricsExporter exporter(reg);
  EXPECT_FALSE(exporter.start_file("/nonexistent-dir/x/metrics.jsonl", 100));
  EXPECT_FALSE(exporter.running());
}

}  // namespace
}  // namespace ffsva::telemetry
