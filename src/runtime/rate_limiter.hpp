// Token-bucket rate limiter.
//
// The online-mode prefetch stage must emit frames at the camera rate
// (30 FPS per stream, paper Section 5.1); the threaded engine paces ingest
// with this limiter. A small burst allowance models the decoder handing
// over a GOP at a time.
#pragma once

#include <chrono>
#include <cstddef>

namespace ffsva::runtime {

class RateLimiter {
 public:
  using Clock = std::chrono::steady_clock;

  /// rate_per_sec: sustained token refill rate; burst: bucket capacity.
  RateLimiter(double rate_per_sec, double burst = 1.0);

  /// Blocks (sleeps) until a token is available, then consumes it.
  void acquire();

  /// Consumes a token if available right now; returns false otherwise.
  bool try_acquire();

 private:
  void refill(Clock::time_point now);

  const double rate_;
  const double burst_;
  double tokens_;
  Clock::time_point last_;
};

}  // namespace ffsva::runtime
