file(REMOVE_RECURSE
  "libffsva_core.a"
)
