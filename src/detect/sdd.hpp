// SDD — stream-specialized difference detector (paper Section 3.2.1).
//
// Resizes each frame to a fixed low resolution, converts to gray, and
// compares against a per-stream reference background image with one of
// MSE / NRMSE / SAD. A frame whose distance exceeds delta_diff shows "an
// obvious content change" and passes; otherwise it is a background frame
// and is filtered out.
//
// calibrate() implements the paper's threshold selection (Section 4.1):
// given labeled frames it picks the largest delta_diff whose false-negative
// rate on target frames stays within a budget, then relaxes it slightly —
// "set the real filtering threshold slightly below the target threshold"
// (Section 3.3) — so downstream filters get a second chance at borderline
// frames.
//
// CompressedSdd is the compressed-domain variant (DESIGN.md §13): it maps
// the codec's per-frame block-energy hints (video::FrameHint) onto the same
// pass/fail decision *before* any pixel is decoded, with a conservative
// band that falls back to full decode + pixel SDD for borderline frames.
#pragma once

#include <cstdint>
#include <vector>

#include "image/image.hpp"
#include "video/codec.hpp"
#include "video/frame.hpp"

namespace ffsva::detect {

enum class SddMetric : std::uint8_t { kMse = 0, kNrmse = 1, kSad = 2 };

const char* to_string(SddMetric m);

struct SddConfig {
  int width = 100;                 ///< SDD feature size (100x100, Sec. 3.2.1).
  int height = 100;
  SddMetric metric = SddMetric::kMse;
  double delta_diff = 50.0;        ///< Pass if distance > delta_diff.
  double relax_factor = 0.9;       ///< Relaxed filtering (Sec. 3.3).
  double fn_budget = 0.005;        ///< Calibration FN budget on target frames.
  /// Calibration also bounds delta by the background-distance distribution:
  /// delta <= bg_margin * quantile(non-target distances, bg_quantile). The
  /// FN-budget rule alone picks the most aggressive delta the calibration
  /// window permits, which over-filters target frames the window never
  /// showed (small distant objects); anchoring to the background statistics
  /// keeps the threshold near the noise floor instead.
  double bg_quantile = 0.90;
  double bg_margin = 1.15;
  /// Subtract the mean frame-vs-reference offset before measuring distance.
  /// Global illumination drift ("weather, light intensity, etc. can all
  /// contribute to the value of MSE", Section 3.2.1) otherwise dominates
  /// the metric and forces delta_diff so high that small single objects
  /// captured at a different lighting phase than calibration slip under it.
  bool gain_compensate = true;
};

class SddFilter {
 public:
  SddFilter(SddConfig config, const image::Image& reference_background);

  /// Distance of this frame to the reference (after resize + gray).
  double distance(const image::Image& frame) const;

  /// True if the frame passes (content changed), false if filtered out.
  bool pass(const image::Image& frame) const {
    return distance(frame) > config_.delta_diff;
  }

  /// Threshold selection from labeled examples. `distances` and
  /// `is_target` are parallel; chooses delta_diff and returns it.
  double calibrate(const std::vector<double>& distances,
                   const std::vector<bool>& is_target);

  /// Convenience: compute distances for frames, then calibrate.
  double calibrate_on(const std::vector<video::Frame>& frames,
                      video::ObjectClass target);

  const SddConfig& config() const { return config_; }
  void set_delta(double d) { config_.delta_diff = d; }

 private:
  SddConfig config_;
  image::Image reference_;  ///< Gray, at SDD feature size.
};

/// What the compressed-domain SDD concluded about a not-yet-decoded frame.
///  * kSkip     — the frame cannot pass pixel SDD: skip decoding entirely.
///  * kPass     — the frame cannot fail pixel SDD: decode it (downstream
///                filters need pixels) but skip the pixel SDD distance.
///  * kFallback — borderline: decode and run pixel SDD, then anchor().
enum class HintDecision : std::uint8_t { kSkip = 0, kPass = 1, kFallback = 2 };

const char* to_string(HintDecision d);

/// Per-stream decision machine mapping codec residual hints onto the pixel
/// SDD's threshold without decoding.
///
/// Reasoning, in "norm space" (a metric-dependent space where the triangle
/// inequality holds: sqrt(distance) for MSE, the distance itself for NRMSE
/// and SAD): the SDD distance of frame f can differ from that of the last
/// pixel-measured frame (the *anchor*) by at most the accumulated residual
/// norms between them. decide() brackets the unseen frame's distance in
/// [anchor - drift - r, anchor + drift + r] and decides only when the whole
/// bracket clears the threshold by the conservative band `hint_relax`
/// (skip only below delta_diff * hint_relax, pass only above
/// delta_diff / hint_relax). Everything else falls back to pixel SDD, which
/// re-anchors the chain and resets the drift. The resize/gray/gain steps of
/// the pixel SDD make the bound heuristic rather than exact — a change
/// confined to one hint block can alias through the 100x100 resize at up to
/// its local amplitude, so the forward estimate takes the worse of the
/// global residual norm and half the peak-block norm — hence the band, and
/// the >= 0.99 empirical agreement gate (compressed_sdd_agreement).
class CompressedSdd {
 public:
  CompressedSdd(SddMetric metric, double delta_diff, double hint_relax);

  /// Decide the upcoming frame from its residual summary. On kSkip/kPass
  /// the drift widens by the frame's residual norm; on kFallback the caller
  /// must decode, measure pixel SDD, and call anchor() (or invalidate()).
  HintDecision decide(const video::FrameHint& hint);

  /// Record the pixel SDD distance of the frame decide() fell back on.
  void anchor(double pixel_distance);

  /// Drop the anchor (pixel SDD threw, or the chain is otherwise broken);
  /// every decision is kFallback until the next anchor().
  void invalidate() { anchor_norm_ = -1.0; }

 private:
  double residual_norm(const video::FrameHint& hint) const;

  SddMetric metric_;
  double thr_skip_ = 0.0;      ///< Norm of delta_diff * hint_relax.
  double thr_pass_ = 0.0;      ///< Norm of delta_diff / hint_relax.
  double anchor_norm_ = -1.0;  ///< Last pixel distance, in norm space (<0: none).
  double drift_ = 0.0;         ///< Accumulated residual norms since anchor.
};

/// Replay of the CompressedSdd state machine against per-frame pixel SDD
/// over a whole stored video (decisions are deterministic, so this is
/// exactly what the engine's hinted ingest path would decide). Shared by
/// tests and the bench to report the pass/fail agreement.
struct CompressedSddReport {
  std::uint64_t frames = 0;
  std::uint64_t skipped = 0;        ///< kSkip: decode avoided entirely.
  std::uint64_t hint_passes = 0;    ///< kPass: pixel SDD distance avoided.
  std::uint64_t fallbacks = 0;      ///< kFallback: decoded + pixel SDD.
  std::uint64_t disagreements = 0;  ///< Hint verdict != pixel verdict.
  double agreement() const {
    return frames ? 1.0 - static_cast<double>(disagreements) /
                              static_cast<double>(frames)
                  : 1.0;
  }
};

CompressedSddReport compressed_sdd_agreement(const video::StoredVideo& video,
                                             const SddFilter& sdd,
                                             double hint_relax);

}  // namespace ffsva::detect
