file(REMOVE_RECURSE
  "libffsva_bench_common.a"
)
