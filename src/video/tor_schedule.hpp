// TOR schedules: how the target-object ratio evolves over a long capture.
//
// The paper's workloads span a whole day ("each video contains about 10
// million video frames in the time span of one day") and its analysis
// repeatedly leans on TOR varying with time of day, weather and traffic
// ("the average blocked time in a day is less than 5%", "SDD filters out
// few frames ... in the daytime", Section 5.2). A TorSchedule turns those
// diurnal/bursty patterns into per-segment TOR values from which a long
// simulated stream is assembled segment by segment.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/rng.hpp"

namespace ffsva::video {

enum class TorPattern : std::uint8_t {
  kConstant = 0,  ///< Flat TOR (the per-figure evaluation clips).
  kDiurnal = 1,   ///< Sinusoidal day/night cycle (traffic cameras).
  kBursty = 2,    ///< Quiet baseline with occasional surge segments.
};

struct TorScheduleConfig {
  TorPattern pattern = TorPattern::kDiurnal;
  double base_tor = 0.10;       ///< Mean TOR across the day.
  double amplitude = 0.8;       ///< Relative swing of the diurnal cycle.
  double period_sec = 86400.0;  ///< One day.
  double phase_sec = 0.0;       ///< 0 = trough at t=0 (night).
  // Bursty pattern: surge segments of `surge_tor` arriving at `surge_rate`
  // per hour, each lasting `surge_len_sec`.
  double surge_tor = 0.8;
  double surge_rate_per_hour = 2.0;
  double surge_len_sec = 300.0;
};

/// A contiguous span of stream time with one TOR value.
struct TorSegment {
  double begin_sec = 0.0;
  double end_sec = 0.0;
  double tor = 0.0;
};

class TorSchedule {
 public:
  TorSchedule(TorScheduleConfig config, std::uint64_t seed);

  /// Instantaneous TOR at stream time t (clamped to [0, 1]).
  double tor_at(double t_sec) const;

  /// Slice [0, duration) into segments of at most `segment_sec`, each
  /// carrying the mean TOR of its span — the unit a SceneSimulator is
  /// instantiated per (segments keep simulator planning tractable).
  std::vector<TorSegment> segments(double duration_sec, double segment_sec) const;

  /// Average TOR over [0, duration).
  double mean_tor(double duration_sec) const;

  const TorScheduleConfig& config() const { return config_; }

 private:
  TorScheduleConfig config_;
  std::vector<double> surge_starts_;  ///< Sorted surge onset times (bursty).
};

}  // namespace ffsva::video
