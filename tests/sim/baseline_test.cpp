// Baseline (YOLOv2-only) simulator: capacity arithmetic and conservation.
#include <gtest/gtest.h>

#include "sim/ffsva_sim.hpp"

namespace ffsva::sim {
namespace {

SimSetup setup(int streams, bool online, std::int64_t frames = 2000) {
  SimSetup s;
  s.num_streams = streams;
  s.online = online;
  s.duration_sec = 40.0;
  s.frames_per_stream = online ? 100000 : frames;
  s.make_outcomes = [](int i) {
    return std::make_unique<MarkovOutcomes>(MarkovParams::for_tor(0.2),
                                            900u + static_cast<unsigned>(i));
  };
  return s;
}

TEST(BaselineSim, OfflineProcessesEveryFrame) {
  const auto r = simulate_baseline(setup(3, false, 1000));
  EXPECT_EQ(r.total_ingested, 3000);
  EXPECT_EQ(r.total_outputs, 3000);
  EXPECT_EQ(r.total_dropped, 0);
  EXPECT_EQ(static_cast<std::int64_t>(r.output_latency_ms.count()), 3000);
}

TEST(BaselineSim, ThroughputIndependentOfTor) {
  // The baseline runs every frame through YOLOv2: filtering-irrelevant.
  auto low = setup(1, false);
  auto high = setup(1, false);
  high.make_outcomes = [](int i) {
    return std::make_unique<MarkovOutcomes>(MarkovParams::for_tor(1.0),
                                            700u + static_cast<unsigned>(i));
  };
  const auto rl = simulate_baseline(low);
  const auto rh = simulate_baseline(high);
  EXPECT_NEAR(rl.throughput_fps, rh.throughput_fps, 2.0);
}

TEST(BaselineSim, TwoGpusDoubleOneGpuThroughput) {
  auto one = setup(4, false);
  // Halve capacity by doubling the per-frame cost instead of changing the
  // topology (the GPU count is fixed at two in the baseline model).
  auto slow = setup(4, false);
  slow.costs.ref.per_frame_us *= 2.0;
  const auto fast_r = simulate_baseline(one);
  const auto slow_r = simulate_baseline(slow);
  EXPECT_NEAR(fast_r.throughput_fps / slow_r.throughput_fps, 2.0, 0.15);
}

TEST(BaselineSim, OnlineDropsScaleWithOversubscription) {
  const auto r4 = simulate_baseline(setup(4, true));
  const auto r8 = simulate_baseline(setup(8, true));
  const auto r16 = simulate_baseline(setup(16, true));
  EXPECT_LE(r4.drop_rate, 0.01);
  EXPECT_GT(r8.drop_rate, 0.3);
  EXPECT_GT(r16.drop_rate, r8.drop_rate);
  // Served throughput saturates at the 2-GPU service rate (~122 FPS).
  EXPECT_NEAR(r8.throughput_fps, r16.throughput_fps, 5.0);
}

TEST(BaselineSim, LatencyBoundedByQueueWhenOverloaded) {
  const auto r = simulate_baseline(setup(12, true));
  // The shared queue holds 8 frames; waiting time is bounded by
  // queue / service-rate, so p99 stays near 8 * 16.4ms + service.
  EXPECT_LT(r.output_latency_ms.p99(), 400.0);
}

}  // namespace
}  // namespace ffsva::sim
