#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace ffsva::net {

namespace {

using Clock = std::chrono::steady_clock;

int ms_left(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - Clock::now())
                        .count();
  return left > 0 ? static_cast<int>(left) : 0;
}

bool poll_one(int fd, short events, int timeout_ms) {
  pollfd p{};
  p.fd = fd;
  p.events = events;
  for (;;) {
    const int r = ::poll(&p, 1, timeout_ms);
    if (r > 0) return (p.revents & (events | POLLERR | POLLHUP)) != 0;
    if (r == 0) return false;  // timeout
    if (errno != EINTR) return false;
  }
}

void set_cloexec(int fd) { ::fcntl(fd, F_SETFD, FD_CLOEXEC); }

}  // namespace

std::string Endpoint::to_string() const {
  if (!uds_path.empty()) return "unix:" + uds_path;
  return host + ":" + std::to_string(port);
}

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Socket::wait_readable(int timeout_ms) const {
  if (fd_ < 0) return false;
  return poll_one(fd_, POLLIN, timeout_ms);
}

bool Socket::send_all(const void* data, std::size_t len, int deadline_ms) {
  if (fd_ < 0) return false;
  const char* p = static_cast<const char*>(data);
  const auto deadline = Clock::now() + std::chrono::milliseconds(deadline_ms);
  while (len > 0) {
    const auto sent = ::send(fd_, p, len, MSG_NOSIGNAL);
    if (sent > 0) {
      p += sent;
      len -= static_cast<std::size_t>(sent);
      continue;
    }
    if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      const int left = ms_left(deadline);
      if (left <= 0 || !poll_one(fd_, POLLOUT, left)) return false;
      continue;
    }
    return false;  // peer gone or hard error
  }
  return true;
}

long Socket::recv_some(void* buf, std::size_t cap, int timeout_ms) {
  if (fd_ < 0) return -2;
  if (!poll_one(fd_, POLLIN, timeout_ms)) return -1;
  for (;;) {
    const auto got = ::recv(fd_, buf, cap, 0);
    if (got >= 0) return got;  // 0 = orderly close
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    return -2;
  }
}

namespace {

Socket connect_tcp(const std::string& host, int port, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) return Socket{};
  set_cloexec(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Socket{};
  }
  // NOLINTNEXTLINE(cppcoreguidelines-pro-type-reinterpret-cast)
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 &&
      errno != EINPROGRESS) {
    ::close(fd);
    return Socket{};
  }
  if (!poll_one(fd, POLLOUT, timeout_ms)) {
    ::close(fd);
    return Socket{};
  }
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
    ::close(fd);
    return Socket{};
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Socket{fd};
}

Socket connect_uds(const std::string& path, int timeout_ms) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) return Socket{};
  set_cloexec(fd);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return Socket{};
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  // NOLINTNEXTLINE(cppcoreguidelines-pro-type-reinterpret-cast)
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (errno != EINPROGRESS && errno != EAGAIN) {
      ::close(fd);
      return Socket{};
    }
    if (!poll_one(fd, POLLOUT, timeout_ms)) {
      ::close(fd);
      return Socket{};
    }
  }
  return Socket{fd};
}

}  // namespace

Socket connect_endpoint(const Endpoint& ep, int timeout_ms) {
  if (!ep.uds_path.empty()) return connect_uds(ep.uds_path, timeout_ms);
  return connect_tcp(ep.host, ep.port, timeout_ms);
}

Listener::~Listener() { close(); }

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_), bound_port_(other.bound_port_),
      uds_path_(std::move(other.uds_path_)) {
  other.fd_ = -1;
  other.bound_port_ = 0;
  other.uds_path_.clear();
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    bound_port_ = other.bound_port_;
    uds_path_ = std::move(other.uds_path_);
    other.fd_ = -1;
    other.bound_port_ = 0;
    other.uds_path_.clear();
  }
  return *this;
}

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!uds_path_.empty()) {
    ::unlink(uds_path_.c_str());
    uds_path_.clear();
  }
  bound_port_ = 0;
}

bool Listener::listen(const Endpoint& ep) {
  close();
  if (!ep.uds_path.empty()) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return false;
    set_cloexec(fd);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (ep.uds_path.size() >= sizeof(addr.sun_path)) {
      ::close(fd);
      return false;
    }
    std::memcpy(addr.sun_path, ep.uds_path.c_str(), ep.uds_path.size() + 1);
    ::unlink(ep.uds_path.c_str());  // stale socket file from a dead process
    // NOLINTNEXTLINE(cppcoreguidelines-pro-type-reinterpret-cast)
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
        ::listen(fd, 16) < 0) {
      ::close(fd);
      return false;
    }
    fd_ = fd;
    uds_path_ = ep.uds_path;
    return true;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  set_cloexec(fd);
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(ep.port));
  if (::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return false;
  }
  // NOLINTNEXTLINE(cppcoreguidelines-pro-type-reinterpret-cast)
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 16) < 0) {
    ::close(fd);
    return false;
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  // NOLINTNEXTLINE(cppcoreguidelines-pro-type-reinterpret-cast)
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &blen) == 0) {
    bound_port_ = static_cast<int>(ntohs(bound.sin_port));
  }
  fd_ = fd;
  return true;
}

std::optional<Socket> Listener::accept(int timeout_ms) {
  if (fd_ < 0) return std::nullopt;
  if (!poll_one(fd_, POLLIN, timeout_ms)) return std::nullopt;
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      set_cloexec(fd);
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket{fd};
    }
    if (errno == EINTR) continue;
    return std::nullopt;
  }
}

}  // namespace ffsva::net
