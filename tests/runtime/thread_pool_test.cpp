#include "runtime/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

namespace ffsva::runtime {
namespace {

TEST(ThreadPool, ExecutesAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.submit([&] { count.fetch_add(1); }));
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<bool> ran{false};
  pool.submit([&] { ran = true; });
  pool.wait_idle();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
}

TEST(ThreadPool, ShutdownDrainsQueuedWork) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        count.fetch_add(1);
      });
    }
    pool.shutdown();
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, SubmitAfterShutdownFails) {
  ThreadPool pool(1);
  pool.shutdown();
  EXPECT_FALSE(pool.submit([] {}));
}

TEST(ThreadPool, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.shutdown();
  pool.shutdown();  // must not crash or hang
}

TEST(ThreadPool, TasksRunConcurrentlyAcrossWorkers) {
  // With 4 workers, 4 tasks that wait on a shared barrier can only finish
  // if they run concurrently.
  ThreadPool pool(4);
  std::atomic<int> arrived{0};
  for (int i = 0; i < 4; ++i) {
    pool.submit([&] {
      arrived.fetch_add(1);
      while (arrived.load() < 4) std::this_thread::yield();
    });
  }
  pool.wait_idle();
  EXPECT_EQ(arrived.load(), 4);
}

TEST(ThreadPool, WaitIdleThenMoreWork) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&] { count.fetch_add(1); });
  pool.wait_idle();
  pool.submit([&] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 2);
}

}  // namespace
}  // namespace ffsva::runtime
