#include "runtime/supervision.hpp"

#include <utility>

namespace ffsva::runtime {

void Watchdog::start(std::chrono::milliseconds tick, std::function<void()> check) {
  stop();
  {
    MutexLock lk(mu_);
    stopping_ = false;
  }
  thread_ = std::thread([this, tick, check = std::move(check)] {
    UniqueLock lk(mu_);
    for (;;) {
      // One tick: sleep until the deadline or a stop request, whichever
      // comes first (explicit loop; see runtime/annotations.hpp).
      const auto deadline = std::chrono::steady_clock::now() + tick;
      while (!stopping_) {
        if (cv_.wait_until(lk, deadline) == std::cv_status::timeout) break;
      }
      if (stopping_) return;
      lk.unlock();
      check();
      lk.lock();
    }
  });
}

void Watchdog::stop() {
  {
    MutexLock lk(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

}  // namespace ffsva::runtime
