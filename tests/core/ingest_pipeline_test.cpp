// Codec-aware ingest against the live engine (DESIGN.md §13).
//
// Runs the real FfsVaInstance over StoredSource streams and verifies the
// DecodePolicy contract: kFull leaves the hint machinery untouched and
// decodes everything; kHinted conserves frames through the fused
// prefetch+SDD stage, actually skips decode work on filtered frames, and
// produces (near-)identical survivor sets. Also units for the ingest
// affinity helpers.
#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <iterator>
#include <memory>
#include <set>

#include "runtime/thread_pool.hpp"
#include "video/profiles.hpp"
#include "video/source.hpp"

namespace ffsva::core {
namespace {

struct TestStream {
  video::SceneConfig cfg;
  std::shared_ptr<video::SceneSimulator> sim;
  detect::StreamModels models;
  std::shared_ptr<const video::StoredVideo> video;  ///< frames [500, 800)
};

/// One specialized stream plus a stored recording of its tail window,
/// shared across tests (training and encoding are slow).
TestStream& shared_stream() {
  static auto* t = [] {
    auto* s = new TestStream;
    s->cfg = video::jackson_profile();
    s->cfg.width = 128;
    s->cfg.height = 96;
    s->cfg.tor = 0.35;
    s->sim = std::make_shared<video::SceneSimulator>(s->cfg, 91, 1000);
    std::vector<video::Frame> calib;
    for (int i = 0; i < 500; ++i) calib.push_back(s->sim->render(i));
    detect::SpecializeConfig sc;
    sc.target = s->cfg.target;
    sc.snm.epochs = 5;
    s->models = detect::specialize_stream(calib, sc, 91);
    std::vector<video::Frame> window;
    for (int i = 500; i < 800; ++i) window.push_back(s->sim->render(i));
    s->video = std::make_shared<const video::StoredVideo>(
        video::StoredVideo::encode(window, /*keyframe_interval=*/32,
                                   /*deadzone=*/4));
    return s;
  }();
  return *t;
}

std::set<std::int64_t> run_once(DecodePolicy policy,
                                InstanceStats* stats_out = nullptr,
                                double delta_override = -1.0) {
  auto& s = shared_stream();
  const double saved_delta = s.models.sdd->config().delta_diff;
  if (delta_override >= 0.0) s.models.sdd->set_delta(delta_override);
  FfsVaConfig cfg;
  cfg.decode_policy = policy;
  FfsVaInstance instance(cfg);
  instance.add_stream(std::make_unique<video::StoredSource>(s.video, 0),
                      s.models);
  const auto stats = instance.run(/*online=*/false);
  if (delta_override >= 0.0) s.models.sdd->set_delta(saved_delta);
  if (stats_out != nullptr) *stats_out = stats;
  std::set<std::int64_t> out;
  for (const auto& ev : instance.outputs()) out.insert(ev.frame.index);
  return out;
}

TEST(HintedIngest, FullPolicyLeavesHintCountersZero) {
  InstanceStats stats;
  run_once(DecodePolicy::kFull, &stats);
  ASSERT_EQ(stats.streams.size(), 1u);
  const auto& in = stats.streams[0].ingest;
  EXPECT_EQ(in.decode_full, 300u);
  EXPECT_EQ(in.decode_skipped, 0u);
  EXPECT_EQ(in.hint_passes, 0u);
  EXPECT_EQ(in.hint_fallbacks, 0u);
  EXPECT_EQ(in.decode_ms.count, 300u);
  // Satellite: the codec's compression ratio finally surfaces per stream.
  EXPECT_GT(in.compression_ratio, 1.0);
}

TEST(HintedIngest, ConservesFramesThroughFusedStage) {
  InstanceStats stats;
  run_once(DecodePolicy::kHinted, &stats);
  ASSERT_EQ(stats.streams.size(), 1u);
  const auto& st = stats.streams[0];
  // Every stored frame enters and is accounted exactly once.
  EXPECT_EQ(st.prefetch.in, 300u);
  EXPECT_EQ(st.prefetch.passed, 300u);
  EXPECT_EQ(st.sdd.in, 300u);
  EXPECT_EQ(st.snm.in, st.sdd.passed);
  EXPECT_EQ(st.latency_ms.count(), 300u);
  // Decode accounting: a frame is either reconstructed or hint-skipped,
  // and every reconstructed frame was a hint pass or a fallback.
  EXPECT_EQ(st.ingest.decode_full + st.ingest.decode_skipped, 300u);
  EXPECT_EQ(st.ingest.hint_passes + st.ingest.hint_fallbacks,
            st.ingest.decode_full);
  EXPECT_EQ(st.ingest.decode_ms.count, 300u);
}

TEST(HintedIngest, MatchesFullPolicySurvivors) {
  const auto full = run_once(DecodePolicy::kFull);
  const auto hinted = run_once(DecodePolicy::kHinted);
  // The conservative band allows <= 1% SDD verdict drift; everything the
  // two runs disagree on must fit inside that band.
  std::set<std::int64_t> diff;
  std::set_symmetric_difference(full.begin(), full.end(), hinted.begin(),
                                hinted.end(),
                                std::inserter(diff, diff.begin()));
  EXPECT_LE(diff.size(), 3u) << "hinted survivors drifted too far from full";
}

TEST(HintedIngest, StaticThresholdSkipsMostDecodes) {
  // With the SDD threshold far above the scene's dynamic range every frame
  // is droppable, and the hint chain should prove that without decoding.
  InstanceStats stats;
  const auto outputs =
      run_once(DecodePolicy::kHinted, &stats, /*delta_override=*/1e6);
  EXPECT_TRUE(outputs.empty());
  const auto& in = stats.streams[0].ingest;
  EXPECT_GT(in.decode_skipped, 150u)
      << "hint chain failed to skip decode on droppable frames";
  EXPECT_EQ(in.decode_full + in.decode_skipped, 300u);
}

TEST(HintedIngest, OnlineModeDisablesFusion) {
  auto& s = shared_stream();
  FfsVaConfig cfg;
  cfg.decode_policy = DecodePolicy::kHinted;
  cfg.online_fps = 240.0;  // speed the wall-clock run up
  FfsVaInstance instance(cfg);
  instance.add_stream(std::make_unique<video::StoredSource>(s.video, 0),
                      s.models);
  const auto stats = instance.run(/*online=*/true);
  const auto& in = stats.streams[0].ingest;
  // A live stream must never trust recorded hints: everything decodes.
  EXPECT_EQ(in.decode_skipped, 0u);
  EXPECT_EQ(in.hint_passes, 0u);
  EXPECT_EQ(in.hint_fallbacks, 0u);
  EXPECT_GT(in.decode_full, 0u);
}

TEST(HintedIngest, MixedPolicyStreamsCoexist) {
  // One fused stream + one live (hint-less) stream under kHinted: the SDD
  // pool serves the live stream while the fused stream closes its own SNM
  // queue — both conserve frames.
  auto& s = shared_stream();
  FfsVaConfig cfg;
  cfg.decode_policy = DecodePolicy::kHinted;
  FfsVaInstance instance(cfg);
  instance.add_stream(std::make_unique<video::StoredSource>(s.video, 0),
                      s.models);
  instance.add_stream(
      std::make_unique<video::LiveSource>(s.sim, 1), s.models);
  const auto stats = instance.run(/*online=*/false);
  ASSERT_EQ(stats.streams.size(), 2u);
  EXPECT_EQ(stats.streams[0].sdd.in, 300u);
  EXPECT_EQ(stats.streams[0].latency_ms.count(), 300u);
  EXPECT_EQ(stats.streams[1].ingest.decode_skipped, 0u);
  EXPECT_EQ(stats.streams[1].latency_ms.count(), 1000u);
  const auto agg = stats.aggregate();
  EXPECT_EQ(agg.ingest.decode_full + agg.ingest.decode_skipped, 1300u);
}

TEST(IngestAffinity, ResolveHonorsEnvOverConfig) {
  unsetenv("FFSVA_AFFINITY");
  EXPECT_EQ(runtime::resolve_ingest_affinity(-1), -1);
  EXPECT_EQ(runtime::resolve_ingest_affinity(2), 2);
  setenv("FFSVA_AFFINITY", "3", 1);
  EXPECT_EQ(runtime::resolve_ingest_affinity(-1), 3);
  setenv("FFSVA_AFFINITY", "off", 1);
  EXPECT_EQ(runtime::resolve_ingest_affinity(5), -1);
  setenv("FFSVA_AFFINITY", "not-a-number", 1);
  EXPECT_EQ(runtime::resolve_ingest_affinity(5), -1);
  setenv("FFSVA_AFFINITY", "", 1);
  EXPECT_EQ(runtime::resolve_ingest_affinity(5), -1);
  unsetenv("FFSVA_AFFINITY");
}

TEST(IngestAffinity, PinningIsBestEffort) {
  EXPECT_GE(runtime::cpu_count(), 1);
  EXPECT_FALSE(runtime::pin_current_thread(-1));
#ifdef __linux__
  // Any non-negative cpu resolves to a set bit of the process mask.
  EXPECT_TRUE(runtime::pin_current_thread(0));
  EXPECT_TRUE(runtime::pin_current_thread(runtime::cpu_count() + 7));
#endif
}

TEST(Config, DecodePolicyNames) {
  EXPECT_STREQ(to_string(DecodePolicy::kFull), "full");
  EXPECT_STREQ(to_string(DecodePolicy::kHinted), "hinted");
}

}  // namespace
}  // namespace ffsva::core
