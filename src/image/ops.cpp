#include "image/ops.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "runtime/parallel_for.hpp"

namespace ffsva::image {

Image to_gray(const Image& src) {
  if (src.channels() == 1) return src;
  Image out(src.width(), src.height(), 1);
  const std::uint8_t* in = src.data();
  std::uint8_t* o = out.data();
  const std::size_t n = static_cast<std::size_t>(src.width()) * src.height();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t* p = in + i * 3;
    // BT.601: 0.299 R + 0.587 G + 0.114 B, in 8.8 fixed point.
    o[i] = static_cast<std::uint8_t>((77 * p[0] + 150 * p[1] + 29 * p[2]) >> 8);
  }
  return out;
}

namespace {
/// One axis of the plan: center-aligned sample positions, clamped taps.
void build_axis(int src, int out, std::vector<std::int32_t>& i0,
                std::vector<std::int32_t>& i1, std::vector<std::int32_t>& w) {
  i0.resize(static_cast<std::size_t>(out));
  i1.resize(static_cast<std::size_t>(out));
  w.resize(static_cast<std::size_t>(out));
  const double scale = static_cast<double>(src) / out;
  constexpr double kOne = 1 << ResizePlan::kWeightBits;
  for (int i = 0; i < out; ++i) {
    const double f = (i + 0.5) * scale - 0.5;
    const int a = std::clamp(static_cast<int>(std::floor(f)), 0, src - 1);
    i0[static_cast<std::size_t>(i)] = a;
    i1[static_cast<std::size_t>(i)] = std::min(a + 1, src - 1);
    w[static_cast<std::size_t>(i)] =
        static_cast<std::int32_t>(std::lround(std::clamp(f - a, 0.0, 1.0) * kOne));
  }
}
}  // namespace

void ResizePlan::ensure(int src_width, int src_height, int out_width,
                        int out_height) {
  if (src_width <= 0 || src_height <= 0 || out_width <= 0 || out_height <= 0) {
    // A truncated decode can hand the detectors a zero-size frame; without
    // this check build_axis clamps with lo > hi (UB) and the resize reads
    // an empty pixel buffer. Throwing turns garbage input into a clean
    // per-frame failure the engine's degrade policy can absorb.
    throw std::invalid_argument("ResizePlan: empty source or output image");
  }
  if (src_w == src_width && src_h == src_height && out_w == out_width &&
      out_h == out_height) {
    return;
  }
  src_w = src_width;
  src_h = src_height;
  out_w = out_width;
  out_h = out_height;
  build_axis(src_w, out_w, x0, x1, wx);
  build_axis(src_h, out_h, y0, y1, wy);
}

void resize_bilinear_into(const Image& src, const ResizePlan& plan, Image& dst) {
  dst.reset(plan.out_w, plan.out_h, src.channels());
  const int c = src.channels();
  constexpr int kOne = 1 << ResizePlan::kWeightBits;
  // Rounding applied once after both lerps: Q22 intermediate fits int32
  // (255 * 2048 * 2048 < 2^31).
  constexpr int kHalf = 1 << (2 * ResizePlan::kWeightBits - 1);
  const std::size_t row_stride = static_cast<std::size_t>(plan.src_w) * c;
  auto rows = [&](std::int64_t y_begin, std::int64_t y_end) {
    for (std::int64_t y = y_begin; y < y_end; ++y) {
      const std::uint8_t* r0 = src.data() + plan.y0[static_cast<std::size_t>(y)] * row_stride;
      const std::uint8_t* r1 = src.data() + plan.y1[static_cast<std::size_t>(y)] * row_stride;
      const int vy = plan.wy[static_cast<std::size_t>(y)];
      const int uy = kOne - vy;
      std::uint8_t* out = dst.data() + static_cast<std::size_t>(y) * plan.out_w * c;
      for (int x = 0; x < plan.out_w; ++x) {
        const int xa = plan.x0[static_cast<std::size_t>(x)] * c;
        const int xb = plan.x1[static_cast<std::size_t>(x)] * c;
        const int vx = plan.wx[static_cast<std::size_t>(x)];
        const int ux = kOne - vx;
        for (int ch = 0; ch < c; ++ch) {
          const int top = r0[xa + ch] * ux + r0[xb + ch] * vx;
          const int bot = r1[xa + ch] * ux + r1[xb + ch] * vx;
          out[x * c + ch] =
              static_cast<std::uint8_t>((top * uy + bot * vy + kHalf) >> (2 * ResizePlan::kWeightBits));
        }
      }
    }
  };
  // Rows are independent and the math is integer, so fanning them out is
  // bitwise-identical to the serial loop. Only worth it for real images.
  const std::int64_t pixels =
      static_cast<std::int64_t>(plan.out_w) * plan.out_h * c;
  if (pixels >= 2048 && plan.out_h >= 8) {
    const std::int64_t grain =
        std::max<std::int64_t>(1, plan.out_h / (4 * runtime::compute_parallelism()));
    runtime::parallel_for(0, plan.out_h, grain, rows);
  } else {
    rows(0, plan.out_h);
  }
}

Image resize_bilinear(const Image& src, int out_w, int out_h) {
  if (src.empty() || out_w <= 0 || out_h <= 0) return {};
  if (out_w == src.width() && out_h == src.height()) return src;
  static thread_local ResizePlan plan;
  plan.ensure(src.width(), src.height(), out_w, out_h);
  Image out;
  resize_bilinear_into(src, plan, out);
  return out;
}

namespace {
void require_same_shape(const Image& a, const Image& b) {
  if (!a.same_shape(b)) {
    throw std::invalid_argument("image shape mismatch in distance metric");
  }
}
}  // namespace

double mse(const Image& a, const Image& b) {
  require_same_shape(a, b);
  if (a.empty()) return 0.0;
  const std::uint8_t* pa = a.data();
  const std::uint8_t* pb = b.data();
  const std::size_t n = a.size_bytes();
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const int d = static_cast<int>(pa[i]) - static_cast<int>(pb[i]);
    acc += static_cast<std::uint64_t>(d * d);
  }
  return static_cast<double>(acc) / static_cast<double>(n);
}

double nrmse(const Image& a, const Image& b) { return std::sqrt(mse(a, b)) / 255.0; }

double sad(const Image& a, const Image& b) {
  require_same_shape(a, b);
  if (a.empty()) return 0.0;
  const std::uint8_t* pa = a.data();
  const std::uint8_t* pb = b.data();
  const std::size_t n = a.size_bytes();
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += static_cast<std::uint64_t>(std::abs(static_cast<int>(pa[i]) - static_cast<int>(pb[i])));
  }
  return static_cast<double>(acc) / static_cast<double>(n);
}

Image abs_diff(const Image& a, const Image& b) {
  require_same_shape(a, b);
  Image out(a.width(), a.height(), a.channels());
  const std::uint8_t* pa = a.data();
  const std::uint8_t* pb = b.data();
  std::uint8_t* po = out.data();
  const std::size_t n = a.size_bytes();
  for (std::size_t i = 0; i < n; ++i) {
    po[i] = static_cast<std::uint8_t>(std::abs(static_cast<int>(pa[i]) - static_cast<int>(pb[i])));
  }
  return out;
}

Image gaussian_blur(const Image& src, double sigma) {
  if (sigma <= 0.0 || src.empty()) return src;
  const int radius = std::max(1, static_cast<int>(std::ceil(3.0 * sigma)));
  std::vector<double> kernel(2 * radius + 1);
  double sum = 0.0;
  for (int i = -radius; i <= radius; ++i) {
    kernel[i + radius] = std::exp(-(i * i) / (2.0 * sigma * sigma));
    sum += kernel[i + radius];
  }
  for (auto& k : kernel) k /= sum;

  const int w = src.width(), h = src.height(), c = src.channels();
  // Horizontal pass into a float buffer, then vertical pass.
  std::vector<double> tmp(static_cast<std::size_t>(w) * h * c, 0.0);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      for (int ch = 0; ch < c; ++ch) {
        double acc = 0.0;
        for (int k = -radius; k <= radius; ++k) {
          const int xx = std::clamp(x + k, 0, w - 1);
          acc += kernel[k + radius] * src.at(xx, y, ch);
        }
        tmp[(static_cast<std::size_t>(y) * w + x) * c + ch] = acc;
      }
    }
  }
  Image out(w, h, c);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      for (int ch = 0; ch < c; ++ch) {
        double acc = 0.0;
        for (int k = -radius; k <= radius; ++k) {
          const int yy = std::clamp(y + k, 0, h - 1);
          acc += kernel[k + radius] * tmp[(static_cast<std::size_t>(yy) * w + x) * c + ch];
        }
        out.at(x, y, ch) = static_cast<std::uint8_t>(std::clamp(acc + 0.5, 0.0, 255.0));
      }
    }
  }
  return out;
}

Image threshold(const Image& src, std::uint8_t t) {
  Image out(src.width(), src.height(), src.channels());
  const std::uint8_t* pi = src.data();
  std::uint8_t* po = out.data();
  const std::size_t n = src.size_bytes();
  for (std::size_t i = 0; i < n; ++i) po[i] = pi[i] > t ? 255 : 0;
  return out;
}

std::uint8_t otsu_threshold(const Image& gray) {
  if (gray.channels() != 1 || gray.empty()) return 128;
  std::uint64_t hist[256] = {};
  const std::uint8_t* p = gray.data();
  const std::size_t n = gray.size_bytes();
  for (std::size_t i = 0; i < n; ++i) ++hist[p[i]];

  double total_sum = 0.0;
  for (int i = 0; i < 256; ++i) total_sum += static_cast<double>(i) * hist[i];

  double best_var = -1.0;
  int best_t = 128;
  double w0 = 0.0, sum0 = 0.0;
  for (int t = 0; t < 256; ++t) {
    w0 += static_cast<double>(hist[t]);
    if (w0 == 0.0) continue;
    const double w1 = static_cast<double>(n) - w0;
    if (w1 == 0.0) break;
    sum0 += static_cast<double>(t) * hist[t];
    const double mu0 = sum0 / w0;
    const double mu1 = (total_sum - sum0) / w1;
    const double between = w0 * w1 * (mu0 - mu1) * (mu0 - mu1);
    if (between > best_var) {
      best_var = between;
      best_t = t;
    }
  }
  return static_cast<std::uint8_t>(best_t);
}

namespace {
Image morph3x3(const Image& binary, bool erode) {
  Image out(binary.width(), binary.height(), binary.channels());
  const int w = binary.width(), h = binary.height();
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      bool all = true, any = false;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          const int xx = std::clamp(x + dx, 0, w - 1);
          const int yy = std::clamp(y + dy, 0, h - 1);
          const bool v = binary.at(xx, yy) != 0;
          all = all && v;
          any = any || v;
        }
      }
      out.at(x, y) = (erode ? all : any) ? 255 : 0;
    }
  }
  return out;
}
}  // namespace

Image erode3x3(const Image& binary) { return morph3x3(binary, /*erode=*/true); }
Image dilate3x3(const Image& binary) { return morph3x3(binary, /*erode=*/false); }

std::vector<std::uint64_t> integral_image(const Image& gray) {
  const int w = gray.width(), h = gray.height();
  std::vector<std::uint64_t> out(static_cast<std::size_t>(w) * h, 0);
  for (int y = 0; y < h; ++y) {
    std::uint64_t row = 0;
    for (int x = 0; x < w; ++x) {
      row += gray.at(x, y);
      out[static_cast<std::size_t>(y) * w + x] =
          row + (y > 0 ? out[static_cast<std::size_t>(y - 1) * w + x] : 0);
    }
  }
  return out;
}

std::uint64_t box_sum(const std::vector<std::uint64_t>& integral, int img_w,
                      int x0, int y0, int x1, int y1) {
  if (x1 <= x0 || y1 <= y0) return 0;
  auto at = [&](int x, int y) -> std::uint64_t {
    if (x < 0 || y < 0) return 0;
    return integral[static_cast<std::size_t>(y) * img_w + x];
  };
  return at(x1 - 1, y1 - 1) - at(x0 - 1, y1 - 1) - at(x1 - 1, y0 - 1) + at(x0 - 1, y0 - 1);
}

}  // namespace ffsva::image
