#include "detect/sdd.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "image/ops.hpp"

namespace ffsva::detect {

const char* to_string(SddMetric m) {
  switch (m) {
    case SddMetric::kMse: return "MSE";
    case SddMetric::kNrmse: return "NRMSE";
    case SddMetric::kSad: return "SAD";
  }
  return "?";
}

SddFilter::SddFilter(SddConfig config, const image::Image& reference_background)
    : config_(config),
      // Keep color: a chromatic object (a red car on gray asphalt) can be
      // luma-neutral and invisible to a grayscale difference.
      reference_(
          image::resize_bilinear(reference_background, config.width, config.height)) {
  if (reference_.empty()) {
    throw std::invalid_argument("SddFilter: empty reference background");
  }
}

double SddFilter::distance(const image::Image& frame) const {
  image::Image small = image::resize_bilinear(frame, config_.width, config_.height);
  if (small.channels() != reference_.channels()) {
    // Mixed gray/color inputs: fall back to luma on both sides.
    small = image::to_gray(small);
    const image::Image ref_gray = image::to_gray(reference_);
    switch (config_.metric) {
      case SddMetric::kMse: return image::mse(small, ref_gray);
      case SddMetric::kNrmse: return image::nrmse(small, ref_gray);
      case SddMetric::kSad: return image::sad(small, ref_gray);
    }
  }
  if (!config_.gain_compensate) {
    switch (config_.metric) {
      case SddMetric::kMse: return image::mse(small, reference_);
      case SddMetric::kNrmse: return image::nrmse(small, reference_);
      case SddMetric::kSad: return image::sad(small, reference_);
    }
    return 0.0;
  }
  // Gain-compensated distance: remove the per-channel mean frame-vs-
  // reference offset (global illumination / white balance) and measure
  // what is left (local content change).
  const std::uint8_t* a = small.data();
  const std::uint8_t* b = reference_.data();
  const std::size_t n = small.size_bytes();
  const int channels = small.channels();
  double mean[3] = {0.0, 0.0, 0.0};
  for (std::size_t i = 0; i < n; ++i) {
    mean[i % static_cast<std::size_t>(channels)] +=
        static_cast<double>(a[i]) - static_cast<double>(b[i]);
  }
  const double per_channel = static_cast<double>(n) / channels;
  for (int c = 0; c < channels; ++c) mean[c] /= per_channel;
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]) -
                     mean[i % static_cast<std::size_t>(channels)];
    acc += config_.metric == SddMetric::kSad ? std::abs(d) : d * d;
  }
  acc /= static_cast<double>(n);
  switch (config_.metric) {
    case SddMetric::kMse: return acc;
    case SddMetric::kNrmse: return std::sqrt(acc) / 255.0;
    case SddMetric::kSad: return acc;
  }
  return 0.0;
}

double SddFilter::calibrate(const std::vector<double>& distances,
                            const std::vector<bool>& is_target) {
  if (distances.size() != is_target.size() || distances.empty()) {
    throw std::invalid_argument("SddFilter::calibrate: bad inputs");
  }
  std::vector<double> target_d;
  std::vector<double> bg_d;
  for (std::size_t i = 0; i < distances.size(); ++i) {
    (is_target[i] ? target_d : bg_d).push_back(distances[i]);
  }
  if (target_d.empty()) {
    // No targets in the calibration window: be conservative, pass almost
    // everything above the noise floor of the observed distances.
    std::vector<double> all = distances;
    std::sort(all.begin(), all.end());
    config_.delta_diff = all[all.size() / 2] * 1.5;
    return config_.delta_diff;
  }
  std::sort(target_d.begin(), target_d.end());
  // Largest threshold keeping FN rate within budget: the fn_budget-quantile
  // of target distances (frames below the threshold would be missed).
  const auto idx = static_cast<std::size_t>(config_.fn_budget *
                                            static_cast<double>(target_d.size()));
  const double quantile = target_d[std::min(idx, target_d.size() - 1)];
  // Relaxed filtering: sit slightly below the selected threshold.
  double delta = quantile * config_.relax_factor;
  // ...and never above the background-anchored bound: beyond it we would be
  // betting that no future target frame is weaker than the weakest one the
  // calibration window happened to contain.
  if (!bg_d.empty()) {
    std::sort(bg_d.begin(), bg_d.end());
    const auto bg_idx = static_cast<std::size_t>(config_.bg_quantile *
                                                 static_cast<double>(bg_d.size() - 1));
    const double bg_bound = bg_d[bg_idx] * config_.bg_margin;
    delta = std::min(delta, std::max(bg_bound, 1e-9));
  }
  config_.delta_diff = delta;
  return config_.delta_diff;
}

double SddFilter::calibrate_on(const std::vector<video::Frame>& frames,
                               video::ObjectClass target) {
  std::vector<double> d;
  std::vector<bool> label;
  d.reserve(frames.size());
  label.reserve(frames.size());
  for (const auto& f : frames) {
    d.push_back(distance(f.image));
    label.push_back(f.gt.any_target(target));
  }
  return calibrate(d, label);
}

}  // namespace ffsva::detect
