// FFS-VA system configuration (paper Sections 3-4).
#pragma once

#include <cstdint>

namespace ffsva::core {

/// SNM batching policy (Section 4.3.2 / Figures 9-10):
///  * kStatic   — always wait for a full BatchSize of frames (queues are
///                effectively unbounded; no feedback).
///  * kFeedback — feedback-queue mechanism alone: bounded queues throttle
///                upstream stages; SNM waits for min(BatchSize, queue
///                threshold) frames.
///  * kDynamic  — feedback plus dynamic batch: SNM takes whatever is
///                waiting, up to BatchSize, and never waits for more.
enum class BatchPolicy : std::uint8_t { kStatic = 0, kFeedback = 1, kDynamic = 2 };

const char* to_string(BatchPolicy p);

/// What the engine does with a frame whose model call threw (a corrupt
/// frame a filter cannot evaluate, a failing model):
///  * kDrop   — the frame terminates at the throwing stage, counted in the
///              stream's degraded_frames (conservative: never emit an
///              unvetted frame).
///  * kBypass — the frame skips the throwing filter and rides to the next
///              stage, counted as degraded (recall-preserving: a broken
///              cheap filter must not silence a stream; the later stages —
///              ultimately the reference model — still vet the frame).
enum class DegradePolicy : std::uint8_t { kDrop = 0, kBypass = 1 };

const char* to_string(DegradePolicy p);

struct FfsVaConfig {
  // --- user-facing event definition (Section 4.2) -------------------------
  double filter_degree = 0.5;   ///< Aggressiveness of SNM filtering in [0,1].
  int number_of_objects = 1;    ///< Minimum target count a frame must carry.

  // --- batching (Section 4.3.2) -------------------------------------------
  BatchPolicy batch_policy = BatchPolicy::kDynamic;
  int batch_size = 16;

  // --- feedback-queue thresholds (Section 4.3.1: "2, 10, and 2 as the
  // queue depth thresholds of the SDD queues, SNM queues, and T-YOLO
  // queues respectively") ---------------------------------------------------
  int sdd_queue_depth = 2;
  int snm_queue_depth = 10;
  int tyolo_queue_depth = 2;
  /// The reference model's input queue. The paper fixes only the three
  /// filter-queue thresholds above; this queue must be deep enough that a
  /// scene burst saturating the reference GPU does not block the single
  /// shared T-YOLO service (which would stall every stream at once).
  /// Depth 64 ≈ 1 s of reference-model work — the backlog that shows up
  /// as the multi-second latencies of Figure 3 near the stream limit.
  int ref_queue_depth = 64;

  /// Max frames T-YOLO extracts from one stream's queue per service cycle
  /// (inter-stream load balancing, Section 3.2.3 / 4.3.1).
  int num_tyolo = 4;

  // --- engine sizing --------------------------------------------------------
  /// SDD worker-pool size. The engine runs a fixed pool of CPU workers over
  /// all streams' SDD queues (total thread count O(workers), not
  /// O(streams)); 0 = auto, which resolves to the FFSVA_THREADS compute
  /// parallelism capped by the stream count.
  int sdd_workers = 0;
  /// Frames one SDD worker processes from a claimed stream before
  /// rescanning: bounds how long a busy stream can monopolize a worker when
  /// streams outnumber workers.
  int sdd_run_length = 32;

  // --- online mode ----------------------------------------------------------
  double online_fps = 30.0;
  /// Capacity of the live-capture ring buffer in front of SDD. A camera
  /// cannot block, so bursts ride out here (~4 s at 30 FPS, enough to ride out one scene-length burst); a frame is
  /// lost only once this buffer overflows. Offline mode ignores it (the
  /// decoder simply stalls on the SDD feedback threshold instead).
  int ingest_buffer = 128;

  // --- supervision (fault tolerance; DESIGN.md Section 9) ------------------
  /// A stage heartbeat continuously busy for longer than this quarantines
  /// its stream: the stream's queues are closed and drained, its counters
  /// freeze, and the other streams keep running. 0 disables stall
  /// detection (a hung source then blocks its stream forever — the
  /// pre-supervision behavior).
  int stall_timeout_ms = 0;
  /// Wall-clock budget for run(); past it the watchdog invokes stop() and
  /// the run winds down gracefully. 0 = no deadline.
  int run_deadline_ms = 0;
  /// Per-frame behavior when a model call throws.
  DegradePolicy degrade_policy = DegradePolicy::kDrop;
  /// Consecutive transient SourceErrors retried (with exponential backoff)
  /// before the prefetch loop escalates to a source restart.
  int source_max_retries = 3;
  /// Source restarts attempted per stream before the stream is ended.
  int source_max_restarts = 2;
  /// Base backoff between retries/restarts; doubles per consecutive
  /// attempt, capped at 100 ms, and aborts early on stop or quarantine.
  int source_backoff_ms = 1;

  // --- telemetry -----------------------------------------------------------
  /// Sampling period of the live metrics exporter (JSONL rows): queue
  /// depths, per-stage FPS, drop rates, supervision counters. Used when
  /// metrics export is enabled via FfsVaInstance::enable_metrics_export.
  int metrics_interval_ms = 100;

  // --- admission / re-forwarding (Section 4.3.1) ---------------------------
  /// Sustained T-YOLO service speed below this (FPS) for admit_window_sec
  /// means the instance has spare capacity for another stream.
  double admit_tyolo_fps = 140.0;
  double admit_window_sec = 5.0;

  /// Effective queue capacity for a stage given the policy: static batching
  /// runs without feedback, so its queues are effectively unbounded.
  int capacity(int threshold) const {
    return batch_policy == BatchPolicy::kStatic ? 4096 : threshold;
  }
};

}  // namespace ffsva::core
