// Deterministic synthetic surveillance-scene simulator.
//
// This substitutes for the paper's Jackson (crossroad, cars, TOR ~8%) and
// Coral (aquarium, persons, TOR ~50%) videos, which are not available
// offline. The simulator renders a fixed-viewpoint scene — exactly the
// setting FFS-VA assumes ("most cameras in surveillance are of fixed
// viewpoint", Section 3.2.1) — with:
//
//  * a static background (sky gradient + road band + per-seed texture),
//    optional dynamic texture (water shimmer for the aquarium) and slow
//    lighting drift, both of which stress the SDD threshold exactly as the
//    paper describes ("a background with changing light ... results in a
//    larger delta_diff");
//  * target objects (cars / persons / buses) that enter, cross, stall and
//    exit; cars can stall at a stop line while only partially inside the
//    frame — the paper's dominant false-negative mechanism ("a single
//    partially appeared vehicle is waiting for traffic lights", Sec. 5.3.3);
//  * person *crowds*: clusters of small overlapping figures that a coarse
//    detector undercounts — the paper's second error mechanism ("for the
//    detection of small and dense targets ... T-YOLO generally identifies
//    fewer target objects than YOLOv2");
//  * a presence timeline constructed to hit a requested TOR (target object
//    ratio, Eq. 1) exactly in expectation, since every evaluation sweep in
//    the paper is parameterized by TOR.
//
// Everything is a pure function of (config, seed, frame index): streams can
// be re-rendered, decoded, and compared bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

#include "image/draw.hpp"
#include "runtime/rng.hpp"
#include "video/frame.hpp"

namespace ffsva::video {

struct SceneConfig {
  int width = 320;
  int height = 240;
  double fps = 30.0;
  ObjectClass target = ObjectClass::kCar;

  // --- presence / TOR control -------------------------------------------
  double tor = 0.10;                   ///< Fraction of frames with >=1 target.
  double mean_scene_len_frames = 90;   ///< Mean length of one object scene.
  int max_objects = 3;                 ///< Max simultaneous targets per scene.
  double multi_object_bias = 0.35;     ///< P(adding one more object), geometric.

  // --- background --------------------------------------------------------
  double lighting_amp = 0.04;          ///< Amplitude of slow gain drift.
  double lighting_period_sec = 45.0;
  double noise_amp = 2.0;              ///< Uniform per-pixel sensor noise.
  double dynamic_texture = 0.0;        ///< Fraction of pixels shimmering.

  // --- car-specific -------------------------------------------------------
  double stopline_fraction = 0.15;     ///< Car scenes that stall partly visible.
  int stall_frames = 80;
  int car_w = 46, car_h = 20;          ///< Nominal car size (pixels).

  // --- person-specific ----------------------------------------------------
  double crowd_sigma = 16.0;           ///< Cluster spread; smaller = denser.
  int person_h = 18;                   ///< Nominal person height (pixels).

  // --- distractors ---------------------------------------------------------
  /// Rate of non-target objects (e.g. persons in a car stream) per scene.
  double distractor_rate = 0.10;
};

/// One moving object's lifetime and kinematics (internal, exposed for tests).
struct ObjectTrack {
  int object_id = 0;
  ObjectClass cls = ObjectClass::kCar;
  std::int64_t enter = 0;   ///< First frame the object is (partly) visible.
  std::int64_t exit = 0;    ///< One past the last visible frame.
  // Kinematics: linear crossing with an optional stall window.
  double x_start = 0.0, x_end = 0.0;  ///< Center-x path endpoints.
  double y = 0.0;                      ///< Lane / anchor center-y.
  std::int64_t stall_start = -1;
  std::int64_t stall_len = 0;
  double stall_x = 0.0;
  int w = 0, h = 0;
  image::Rgb color;
  // Person wander (sinusoidal jitter around the anchor).
  double wander_phase = 0.0, wander_amp = 0.0;

  /// Center position at frame t (caller guarantees enter <= t < exit).
  void position(std::int64_t t, double& cx, double& cy) const;
};

/// A contiguous run of frames containing targets (used to build the TOR
/// timeline and by the accuracy evaluator to reason about scenes).
struct SceneInterval {
  std::int64_t begin = 0;
  std::int64_t end = 0;  ///< half-open
  int num_objects = 1;
};

class SceneSimulator {
 public:
  /// Plans tracks for `total_frames` frames of the configured scene.
  SceneSimulator(const SceneConfig& config, std::uint64_t seed,
                 std::int64_t total_frames);

  /// Renders frame `index` (0 <= index < total_frames) with ground truth.
  Frame render(std::int64_t index, int stream_id = 0) const;

  std::int64_t total_frames() const { return total_frames_; }
  const SceneConfig& config() const { return config_; }

  /// The static background (before lighting drift / noise); the SDD
  /// calibration uses frames rendered from empty intervals instead, but
  /// tests compare against this.
  const image::Image& background() const { return background_; }

  /// Planned target-scene intervals (ground truth for scene-level accuracy).
  const std::vector<SceneInterval>& intervals() const { return intervals_; }

  /// Measured TOR of the plan: fraction of frames inside target intervals.
  double planned_tor() const;

 private:
  void build_background(std::uint64_t seed);
  void plan_timeline(std::uint64_t seed);
  void plan_tracks(std::uint64_t seed);
  void render_object(image::Image& img, const ObjectTrack& track,
                     std::int64_t t, GroundTruth& gt) const;

  SceneConfig config_;
  std::int64_t total_frames_;
  image::Image background_;
  std::vector<SceneInterval> intervals_;
  std::vector<ObjectTrack> tracks_;
  std::uint64_t seed_;
};

}  // namespace ffsva::video
