// Reference model — the stand-in for full-feature YOLOv2 (Section 3.1.1).
//
// Detects at the frame's native resolution with fine segmentation. In the
// paper this is the expensive, high-accuracy back end whose output defines
// correctness ("all the filtered frames by FFS-VA are completely detected by
// the reference model YOLOv2", Section 5.3); we use it the same way — both
// as the last pipeline stage and as the labeling oracle when specializing
// SDD/SNM for a stream (Section 4.1).
//
// detect_batch() is the GPU1 micro-batch entry point: one call evaluates a
// whole cross-stream batch, amortizing per-invocation setup and running the
// per-image segmentation/classification through the shared compute pool
// (runtime/parallel_for). Each frame is still evaluated by its own stream's
// detector against its own background, so detect_batch(frames)[i].result is
// bit-for-bit what detect(frames[i]) returns — batching changes the
// schedule, never the output. Per-frame error isolation: a frame whose
// evaluation throws is reported with ok = false instead of poisoning its
// batch-mates (the engine's drop-on-error contract is per frame).
#pragma once

#include <span>
#include <vector>

#include "detect/detection.hpp"
#include "detect/segmentation.hpp"
#include "image/image.hpp"

namespace ffsva::detect {

struct ReferenceConfig {
  SegmentationParams segmentation{/*blur_sigma=*/1.0, /*diff_threshold=*/24,
                                  /*min_pixels=*/36, /*morph_open=*/true};
  ClassifierParams classifier{.car_min_area = 110.0};
  /// Detection-confidence threshold when the reference model's output is
  /// used as truth (labeling and accuracy evaluation). YOLOv2's standard
  /// operating threshold; low-confidence sliver detections below it do not
  /// count as objects.
  double confidence_threshold = 0.45;
};

/// One frame's outcome inside a batched reference invocation. ok == false
/// means this frame's evaluation threw; its result is empty and the caller
/// must apply its drop-on-error policy to this frame alone.
struct RefBatchItem {
  DetectionResult result;
  bool ok = true;
};

class ReferenceDetector {
 public:
  ReferenceDetector(ReferenceConfig config, image::Image background)
      : config_(config), background_(std::move(background)) {}

  DetectionResult detect(const image::Image& frame) const;

  /// Micro-batch over this stream's detector: equivalent to calling
  /// detect() per frame, with per-image work spread across the compute
  /// pool and per-frame exception capture (see RefBatchItem).
  std::vector<RefBatchItem> detect_batch(
      std::span<const image::Image* const> frames) const;

  const image::Image& background() const { return background_; }
  const ReferenceConfig& config() const { return config_; }

 private:
  ReferenceConfig config_;
  image::Image background_;
};

/// Cross-stream micro-batch: frames[i] is evaluated by detectors[i] (its
/// own stream's reference model). The spans must have equal length. This is
/// the entry point the GPU1 reference loop batches through; the member
/// detect_batch forwards here with a uniform detector list.
std::vector<RefBatchItem> detect_batch(
    std::span<const ReferenceDetector* const> detectors,
    std::span<const image::Image* const> frames);

}  // namespace ffsva::detect
