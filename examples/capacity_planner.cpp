// Capacity planner: size an FFS-VA deployment before buying hardware.
//
// Given the expected target-object ratio of your cameras, this example uses
// the calibrated discrete-event simulator to answer the operator questions
// the paper's evaluation answers for its own testbed: how many live streams
// one dual-GPU server sustains, which batch policy to run, and what
// latency to expect at the chosen operating point.
//
// Build & run:  ./build/examples/capacity_planner [tor]
#include <cstdio>
#include <cstdlib>

#include "sim/ffsva_sim.hpp"

using namespace ffsva;

namespace {

sim::SimSetup make_setup(double tor, core::BatchPolicy policy, int streams) {
  sim::SimSetup s;
  s.config.batch_policy = policy;
  s.num_streams = streams;
  s.online = true;
  s.duration_sec = 90.0;
  s.frames_per_stream = 1000000;
  s.make_outcomes = [tor](int i) {
    return std::make_unique<sim::MarkovOutcomes>(sim::MarkovParams::for_tor(tor),
                                                 77u + static_cast<unsigned>(i));
  };
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const double tor = argc > 1 ? std::atof(argv[1]) : 0.10;
  std::printf("Capacity plan for cameras with TOR ~= %.2f on one server\n"
              "(dual Xeon + 2 GPUs, models calibrated per detect/cost_model.hpp)\n\n",
              tor);

  std::printf("%-18s %12s %14s %14s\n", "policy", "max streams", "p50 lat (ms)",
              "p99 lat (ms)");
  printf("---------------------------------------------------------------\n");
  int best_streams = 0;
  for (const auto policy : {core::BatchPolicy::kFeedback, core::BatchPolicy::kDynamic}) {
    const int mx = sim::max_realtime_streams(make_setup(tor, policy, 1), 1, 64, 0.01);
    const auto at_max = sim::simulate_ffsva(make_setup(tor, policy, std::max(1, mx)));
    std::printf("%-18s %12d %14.0f %14.0f\n", to_string(policy), mx,
                at_max.output_latency_ms.p50(), at_max.output_latency_ms.p99());
    best_streams = std::max(best_streams, mx);
  }
  {
    const int mx = sim::max_realtime_streams(make_setup(tor, core::BatchPolicy::kFeedback, 1),
                                             1, 12, 0.01, /*baseline=*/true);
    std::printf("%-18s %12d %14s %14s\n", "YOLOv2 only", mx, "-", "-");
  }

  std::printf("\nServers needed per 100 cameras: %d (vs %d without filtering)\n",
              (100 + best_streams - 1) / std::max(1, best_streams),
              (100 + 3) / 4);

  // Derating curve: how head-room shrinks as the streets get busier.
  std::printf("\nDerating with TOR (feedback policy):\n  TOR     streams\n");
  for (double t : {tor, tor * 1.5, tor * 2.0, tor * 3.0}) {
    if (t > 1.0) break;
    const int mx = sim::max_realtime_streams(
        make_setup(t, core::BatchPolicy::kFeedback, 1), 1, 64, 0.01);
    std::printf("  %-7.2f %d\n", t, mx);
  }
  std::printf("\nRule of thumb from the paper: provision extra GPUs for\n"
              "latency-sensitive scenes and peak-TOR periods (Section 5.5).\n");
  return 0;
}
