// Clean fixture for ffsva_lint --self-test: the sanctioned shapes around
// the raw-socket rule — a marked syscall site, and qualified member names
// (Channel::send) that must not be mistaken for global-scope syscalls.
#include <cstddef>

struct Channel {
  bool send(const void* data, std::size_t len);
  bool recv(void* buf, std::size_t cap);
};

bool Channel::send(const void*, std::size_t) { return true; }
bool Channel::recv(void*, std::size_t) { return true; }

int fixture_marked_syscall(int fd) {
  char byte = 0;
  // socket-ok: fixture probe on an fd the net layer already owns.
  return static_cast<int>(::recv(fd, &byte, 1, 0));
}

extern "C" long recv(int, void*, unsigned long, int);
