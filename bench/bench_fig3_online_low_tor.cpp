// Figure 3 — throughput and latency vs number of video streams, TOR 0.103.
//
// Paper: FFS-VA supports up to 30 concurrent 30-FPS streams (7x the
// YOLOv2 baseline's 4); the dynamic batch variant supports ~20% fewer but
// halves latency; latencies reach seconds near the limit.
//
// Method: specialize real filters on a jackson-profile stream at TOR 0.103,
// record a real-filter trace, calibrate the Markov outcome model from it,
// then sweep stream counts in the discrete-event simulator (calibrated to
// the paper's device speeds; see DESIGN.md).
#include "common.hpp"

using namespace ffsva;

int main() {
  bench::print_header("FIGURE 3 -- online throughput & latency vs #streams (TOR ~= 0.103)");

  std::printf("Specializing stream and recording real-filter trace...\n");
  auto stream = bench::build_stream(video::jackson_profile(), 0.103, 42, 1000, 2000, 6);
  const auto thresholds = core::thresholds_of(stream.models, 1);
  const auto params = sim::MarkovParams::from_trace(stream.trace, thresholds);
  std::printf("Trace-calibrated model: tor=%.3f scene_len=%.0f  "
              "pass(in/out): sdd %.2f/%.2f snm %.2f/%.2f tyolo %.2f/%.2f\n\n",
              params.tor, params.mean_scene_len, params.sdd_in, params.sdd_out,
              params.snm_in, params.snm_out, params.ty_in, params.ty_out);

  core::FfsVaConfig fb_cfg;
  fb_cfg.batch_policy = core::BatchPolicy::kFeedback;
  core::FfsVaConfig dyn_cfg;
  dyn_cfg.batch_policy = core::BatchPolicy::kDynamic;

  std::printf("%-9s | %-28s | %-28s | %-20s\n", "", "FFS-VA (feedback queue)",
              "FFS-VA (dynamic batch)", "YOLOv2 baseline");
  std::printf("%-9s | %9s %8s %8s | %9s %8s %8s | %9s %9s\n", "#streams",
              "thr(FPS)", "drop", "p50(ms)", "thr(FPS)", "drop", "p50(ms)",
              "thr(FPS)", "drop");
  bench::print_rule();
  for (int n : {1, 2, 4, 8, 12, 16, 20, 24, 26, 28, 30, 32}) {
    const auto fb = sim::simulate_ffsva(
        bench::sim_setup_from(params, fb_cfg, n, true, 100000, 90.0));
    const auto dyn = sim::simulate_ffsva(
        bench::sim_setup_from(params, dyn_cfg, n, true, 100000, 90.0));
    const auto base = sim::simulate_baseline(
        bench::sim_setup_from(params, fb_cfg, n, true, 100000, 90.0));
    std::printf("%-9d | %9.1f %7.2f%% %8.0f | %9.1f %7.2f%% %8.0f | %9.1f %8.2f%%\n",
                n, fb.throughput_fps, 100 * fb.drop_rate,
                fb.output_latency_ms.p50(), dyn.throughput_fps,
                100 * dyn.drop_rate, dyn.output_latency_ms.p50(),
                base.throughput_fps, 100 * base.drop_rate);
  }

  bench::print_rule();
  const auto probe = bench::sim_setup_from(params, fb_cfg, 1, true, 100000, 90.0);
  const int base_max = sim::max_realtime_streams(probe, 1, 12, 0.01, true);
  const int fb_max = sim::max_realtime_streams(
      bench::sim_setup_from(params, fb_cfg, 1, true, 100000, 90.0), 1, 48, 0.01);
  const int dyn_max = sim::max_realtime_streams(
      bench::sim_setup_from(params, dyn_cfg, 1, true, 100000, 90.0), 1, 48, 0.01);
  std::printf("Max real-time streams: baseline=%d  feedback=%d  dynamic=%d\n",
              base_max, fb_max, dyn_max);
  std::printf("Paper:                 baseline=4  FFS-VA~=30 (dynamic ~20%% fewer)\n");
  std::printf("Speedup over baseline: %.1fx (paper: ~7x)\n",
              static_cast<double>(fb_max) / std::max(1, base_max));
  return 0;
}
