file(REMOVE_RECURSE
  "CMakeFiles/ffsva_nn.dir/compress.cpp.o"
  "CMakeFiles/ffsva_nn.dir/compress.cpp.o.d"
  "CMakeFiles/ffsva_nn.dir/gemm.cpp.o"
  "CMakeFiles/ffsva_nn.dir/gemm.cpp.o.d"
  "CMakeFiles/ffsva_nn.dir/layers.cpp.o"
  "CMakeFiles/ffsva_nn.dir/layers.cpp.o.d"
  "CMakeFiles/ffsva_nn.dir/loss.cpp.o"
  "CMakeFiles/ffsva_nn.dir/loss.cpp.o.d"
  "CMakeFiles/ffsva_nn.dir/optim.cpp.o"
  "CMakeFiles/ffsva_nn.dir/optim.cpp.o.d"
  "CMakeFiles/ffsva_nn.dir/tensor.cpp.o"
  "CMakeFiles/ffsva_nn.dir/tensor.cpp.o.d"
  "libffsva_nn.a"
  "libffsva_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ffsva_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
