// Clip extraction: find spans of a stream with a desired TOR.
//
// The evaluation methodology repeatedly needs "a set of video clips with
// different TOR values" extracted from a long recording ("we extract
// typical non-overlapping video clips from each video file to simulate
// multiple video streams", Section 5.1; "we extract a set of video clips
// with different TOR values", Section 5.2). find_clips() scans a planned
// scene timeline with a sliding window and returns non-overlapping clips
// whose realized TOR is closest to each requested value.
#pragma once

#include <cstdint>
#include <vector>

#include "video/scene.hpp"

namespace ffsva::video {

struct Clip {
  std::int64_t begin = 0;
  std::int64_t end = 0;  ///< half-open
  double tor = 0.0;      ///< realized TOR of the span (from the plan)
};

/// Per-frame presence mask from the simulator's planned intervals
/// (1 = at least one target on screen).
std::vector<std::uint8_t> presence_mask(const SceneSimulator& sim);

/// TOR of [begin, end) under a presence mask.
double window_tor(const std::vector<std::uint8_t>& presence, std::int64_t begin,
                  std::int64_t end);

/// For each requested TOR (in order), find the length-`clip_len` window
/// closest to it, skipping windows overlapping already-chosen clips.
/// Windows whose |TOR - requested| exceeds `tolerance` are not returned.
std::vector<Clip> find_clips(const SceneSimulator& sim,
                             const std::vector<double>& requested_tors,
                             std::int64_t clip_len, double tolerance = 0.05);

}  // namespace ffsva::video
