file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_filters.dir/bench_micro_filters.cpp.o"
  "CMakeFiles/bench_micro_filters.dir/bench_micro_filters.cpp.o.d"
  "bench_micro_filters"
  "bench_micro_filters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_filters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
