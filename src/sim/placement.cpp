#include "sim/placement.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "core/cluster.hpp"
#include "core/pipeline.hpp"

namespace ffsva::sim {
namespace {

// SplitMix64: deterministic per-stream demand draws without dragging a
// <random> engine's implementation-defined distributions into the result.
std::uint64_t splitmix(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double uniform(std::uint64_t& state, double lo, double hi) {
  const double u =
      static_cast<double>(splitmix(state) >> 11) * 0x1.0p-53;  // [0, 1)
  return lo + u * (hi - lo);
}

}  // namespace

PlacementResult simulate_placement(const PlacementSetup& setup) {
  core::ClusterManager manager(setup.instances, setup.config);
  PlacementResult r;

  std::uint64_t rng = setup.seed;
  std::vector<double> capacity(static_cast<std::size_t>(setup.instances),
                               setup.capacity_fps);
  // Per-instance cumulative served counter (what a live tyolo_served() shows)
  // and per-stream demand, keyed by the manager's stream ids.
  std::vector<double> served(static_cast<std::size_t>(setup.instances), 0.0);
  std::map<int, double> demand;
  std::vector<double> load(static_cast<std::size_t>(setup.instances), 0.0);

  const auto tyolo_cap = static_cast<std::size_t>(
      setup.config.capacity(setup.config.tyolo_queue_depth));

  int next_stream = 0;
  int rr = 0;  // round-robin cursor for the no-spare fallback
  double pending_arrivals = 0.0;
  bool hot_applied = false;

  const int ticks =
      static_cast<int>(std::ceil(setup.duration_sec / setup.dt_sec));
  for (int tick = 0; tick < ticks; ++tick) {
    const double now = tick * setup.dt_sec;

    if (!hot_applied && setup.hot_spot_at_sec >= 0.0 &&
        now >= setup.hot_spot_at_sec) {
      capacity[0] *= setup.hot_spot_factor;
      hot_applied = true;
    }

    // Recompute per-instance demand from the manager's own membership (the
    // manager re-attaches streams inside next_reforward, so it is the one
    // source of truth for who lives where).
    std::fill(load.begin(), load.end(), 0.0);
    for (const auto& [id, fps] : demand) {
      const int inst = manager.instance_of(id);
      if (inst >= 0) load[static_cast<std::size_t>(inst)] += fps;
    }

    // Advance the service counters and report exactly what a node would:
    // cumulative T-YOLO served, and a queue pinned at threshold while the
    // instance cannot keep up.
    for (int i = 0; i < setup.instances; ++i) {
      const auto ui = static_cast<std::size_t>(i);
      served[ui] += std::min(load[ui], capacity[ui]) * setup.dt_sec;
      core::InstanceSnapshot snap;
      snap.running = true;
      snap.t_sec = now;
      core::StreamSnapshot s;
      s.id = 0;
      s.tyolo_in = static_cast<std::uint64_t>(served[ui]);
      s.tyolo_queue_depth = load[ui] > capacity[ui] ? tyolo_cap : 0;
      snap.streams.push_back(s);
      manager.report_snapshot(i, now, snap);
    }

    // Arrivals: place through the policy when any instance has demonstrated
    // spare capacity; otherwise fall back to round-robin (a control plane
    // must put the stream somewhere — nullopt means "provision a server").
    pending_arrivals += setup.arrival_per_sec * setup.dt_sec;
    while (pending_arrivals >= 1.0 && next_stream < setup.streams) {
      pending_arrivals -= 1.0;
      const int id = next_stream++;
      const auto placed = manager.place_new_stream(now);
      const int inst = placed ? *placed : (rr++ % setup.instances);
      if (placed) {
        ++r.policy_placed;
      } else {
        ++r.fallback_placed;
      }
      manager.attach_stream(id, inst);
      demand[id] = uniform(rng, setup.demand_min_fps, setup.demand_max_fps);
      ++r.placed;
    }

    // Re-forwarding: the manager both decides and re-attaches; the simulator
    // only observes the decision (and tracks hot-spot recovery).
    for (int n = 0; n < setup.max_reforwards_per_tick; ++n) {
      const auto dec = manager.next_reforward(now);
      if (!dec) break;
      ++r.reforwards;
      if (hot_applied && dec->from_instance == 0) ++r.hot_spot_moves;
    }

    if (hot_applied && r.hot_spot_drain_sec < 0.0) {
      double hot_load = 0.0;
      for (const auto& [id, fps] : demand) {
        if (manager.instance_of(id) == 0) hot_load += fps;
      }
      if (hot_load <= capacity[0]) {
        r.hot_spot_drain_sec = now - setup.hot_spot_at_sec;
      }
    }
    r.sim_time_sec = now + setup.dt_sec;
  }

  r.final_streams.resize(static_cast<std::size_t>(setup.instances));
  r.final_load_fps.assign(static_cast<std::size_t>(setup.instances), 0.0);
  for (int i = 0; i < setup.instances; ++i) {
    r.final_streams[static_cast<std::size_t>(i)] = manager.stream_count(i);
  }
  for (const auto& [id, fps] : demand) {
    const int inst = manager.instance_of(id);
    if (inst >= 0) r.final_load_fps[static_cast<std::size_t>(inst)] += fps;
  }
  for (int i = 0; i < setup.instances; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    if (r.final_load_fps[ui] > capacity[ui]) ++r.overloaded_final;
  }
  r.converged = r.overloaded_final == 0;
  const auto [mn, mx] =
      std::minmax_element(r.final_streams.begin(), r.final_streams.end());
  r.max_stream_spread = *mx - *mn;
  return r;
}

}  // namespace ffsva::sim
