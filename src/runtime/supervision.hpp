// Supervision primitives for the threaded pipeline engine: cooperative
// cancellation, stage heartbeats, and a watchdog thread.
//
// The engine's availability contract (DESIGN.md Section 9) is that a fault
// in one stream — a hung decoder, a throwing model — must stay a bounded,
// observable event instead of wedging the shared feedback queues. These
// three small pieces carry that contract:
//
//  * StopToken — a copyable handle on a shared stop flag. Copies alias the
//    same state, so a token handed to a detached thread outlives the object
//    that issued it (std::stop_token is not used because the engine needs
//    to pair the flag with queue closes, not with std::jthread).
//  * Heartbeat — a stage publishes busy()/idle() transitions around calls
//    that may hang (a source decode, a model forward). Blocking on a
//    bounded queue is *healthy* backpressure and is reported as idle; only
//    time spent busy counts toward a stall.
//  * Watchdog — one thread running a supplied check on a fixed tick. The
//    engine's check compares heartbeat busy-ages against the configured
//    stall timeout and quarantines the offending stream.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>

#include "runtime/annotations.hpp"

namespace ffsva::runtime {

/// Milliseconds on the steady clock (monotonic; heartbeat timebase).
inline std::int64_t steady_now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Copyable handle on a shared cancellation flag. All copies observe the
/// same request; request_stop() is idempotent and thread-safe.
class StopToken {
 public:
  StopToken() : state_(std::make_shared<std::atomic<bool>>(false)) {}

  void request_stop() const { state_->store(true, std::memory_order_release); }
  bool stop_requested() const { return state_->load(std::memory_order_acquire); }

 private:
  std::shared_ptr<std::atomic<bool>> state_;
};

/// One stage's liveness signal. The stage marks busy() immediately before a
/// call that may hang and idle() when it returns; the watchdog reads
/// busy_age_ms() to detect a stall. Single-writer (the stage thread),
/// any-reader (the watchdog).
class Heartbeat {
 public:
  void busy() { busy_since_ms_.store(steady_now_ms(), std::memory_order_release); }
  void idle() { busy_since_ms_.store(-1, std::memory_order_release); }

  /// Milliseconds the stage has been inside its current busy section, or -1
  /// when the stage is idle (parked, blocked on backpressure, or finished).
  std::int64_t busy_age_ms() const {
    const std::int64_t t = busy_since_ms_.load(std::memory_order_acquire);
    return t < 0 ? -1 : steady_now_ms() - t;
  }

 private:
  std::atomic<std::int64_t> busy_since_ms_{-1};
};

/// A periodic check on its own thread. start() is restartable; stop() is
/// idempotent and joins. The check runs outside the watchdog's lock, so it
/// may itself call stop-adjacent machinery (close queues, notify waiters)
/// without deadlocking the watchdog.
class Watchdog {
 public:
  Watchdog() = default;
  ~Watchdog() { stop(); }

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  void start(std::chrono::milliseconds tick, std::function<void()> check)
      FFSVA_EXCLUDES(mu_);
  void stop() FFSVA_EXCLUDES(mu_);

  bool running() const { return thread_.joinable(); }

 private:
  std::thread thread_;  ///< Managed by start()/stop() on the owner's thread.
  Mutex mu_;
  CondVar cv_;
  bool stopping_ FFSVA_GUARDED_BY(mu_) = false;
};

}  // namespace ffsva::runtime
