// Feedback-queue behaviour of the threaded engine: bounded queues must keep
// the number of frames in flight bounded (the paper's memory claim) and the
// pipeline must stay correct when a downstream stage is made artificially
// slow (backpressure engages instead of frames piling up or vanishing).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/pipeline.hpp"
#include "video/profiles.hpp"
#include "video/source.hpp"

namespace ffsva::core {
namespace {

struct SlowStream {
  video::SceneConfig cfg;
  std::shared_ptr<video::SceneSimulator> sim;
  detect::StreamModels models;

  SlowStream() {
    cfg = video::jackson_profile();
    cfg.width = 96;
    cfg.height = 72;
    cfg.tor = 0.5;  // busy: most frames reach the deep stages
    sim = std::make_shared<video::SceneSimulator>(cfg, 17, 900);
    std::vector<video::Frame> calib;
    for (int i = 0; i < 500; ++i) calib.push_back(sim->render(i));
    detect::SpecializeConfig sc;
    sc.target = cfg.target;
    sc.snm.epochs = 3;
    models = detect::specialize_stream(calib, sc, 17);
  }
};

SlowStream& slow_stream() {
  static auto* s = new SlowStream();
  return *s;
}

/// Counts how many frames it has handed out and how many came back via the
/// sink — the difference is the in-flight population.
class CountingSource final : public video::FrameSource {
 public:
  CountingSource(std::shared_ptr<const video::SceneSimulator> sim, std::int64_t begin,
                 std::int64_t end, std::atomic<std::int64_t>& out_counter)
      : sim_(std::move(sim)), next_(begin), end_(end), emitted_(out_counter) {}

  std::optional<video::Frame> next() override {
    if (next_ >= end_) return std::nullopt;
    emitted_.fetch_add(1, std::memory_order_relaxed);
    return sim_->render(next_++);
  }
  std::int64_t total_frames() const override { return end_; }

 private:
  std::shared_ptr<const video::SceneSimulator> sim_;
  std::int64_t next_, end_;
  std::atomic<std::int64_t>& emitted_;
};

TEST(Backpressure, InFlightPopulationIsBoundedByQueueBudget) {
  auto& s = slow_stream();
  FfsVaConfig cfg;
  cfg.batch_policy = BatchPolicy::kDynamic;

  std::atomic<std::int64_t> emitted{0};
  std::atomic<std::int64_t> terminated{0};
  std::atomic<std::int64_t> max_in_flight{0};

  FfsVaInstance instance(cfg);
  instance.add_stream(
      std::make_unique<CountingSource>(s.sim, 500, 900, emitted), s.models);
  instance.set_output_sink([&](const OutputEvent&) {
    terminated.fetch_add(1, std::memory_order_relaxed);
  });

  // Watch the in-flight population from a sampler thread while running.
  std::atomic<bool> done{false};
  std::thread sampler([&] {
    while (!done.load(std::memory_order_acquire)) {
      const auto in_flight = emitted.load() - terminated.load();
      std::int64_t prev = max_in_flight.load();
      while (in_flight > prev && !max_in_flight.compare_exchange_weak(prev, in_flight)) {
      }
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
  });
  const auto stats = instance.run(/*online=*/false);
  done.store(true, std::memory_order_release);
  sampler.join();

  // The budget: every queue's capacity plus one frame per stage thread plus
  // one SNM batch. The sink only counts outputs, so add the filtered count.
  const auto& st = stats.streams[0];
  const std::int64_t filtered = static_cast<std::int64_t>(
      st.prefetch.passed - st.ref.passed);
  const std::int64_t budget = cfg.ingest_buffer + cfg.snm_queue_depth +
                              cfg.tyolo_queue_depth + cfg.ref_queue_depth +
                              cfg.batch_size + 8 + filtered;
  EXPECT_LE(max_in_flight.load(), budget);
  EXPECT_EQ(st.prefetch.passed, 400u);
  EXPECT_EQ(st.latency_ms.count(), 400u);
}

TEST(Backpressure, TinyQueuesStillProcessEverything) {
  auto& s = slow_stream();
  FfsVaConfig cfg;
  cfg.batch_policy = BatchPolicy::kFeedback;
  cfg.ingest_buffer = 1;
  cfg.sdd_queue_depth = 1;
  cfg.snm_queue_depth = 2;
  cfg.tyolo_queue_depth = 1;
  cfg.ref_queue_depth = 1;
  cfg.batch_size = 4;  // larger than the SNM queue: the feedback cap binds
  FfsVaInstance instance(cfg);
  instance.add_stream(std::make_unique<CountingSource>(
                          s.sim, 500, 700, *new std::atomic<std::int64_t>{0}),
                      s.models);
  const auto stats = instance.run(false);
  const auto& st = stats.streams[0];
  EXPECT_EQ(st.prefetch.passed, 200u);
  EXPECT_EQ(st.latency_ms.count(), 200u);  // nothing lost, nothing stuck
}

TEST(Backpressure, StaticPolicyDrainsPartialFinalBatch) {
  auto& s = slow_stream();
  FfsVaConfig cfg;
  cfg.batch_policy = BatchPolicy::kStatic;
  cfg.batch_size = 64;  // stream length is not a multiple of this
  FfsVaInstance instance(cfg);
  instance.add_stream(std::make_unique<CountingSource>(
                          s.sim, 500, 650, *new std::atomic<std::int64_t>{0}),
                      s.models);
  const auto stats = instance.run(false);
  EXPECT_EQ(stats.streams[0].latency_ms.count(), 150u)
      << "the final partial batch must flush on close";
}

}  // namespace
}  // namespace ffsva::core
