#include "video/codec.hpp"

#include <gtest/gtest.h>

#include "video/profiles.hpp"
#include "video/scene.hpp"

namespace ffsva::video {
namespace {

std::vector<Frame> make_frames(int count, double tor = 0.4) {
  SceneConfig cfg = jackson_profile();
  cfg.width = 96;
  cfg.height = 72;
  cfg.tor = tor;
  SceneSimulator sim(cfg, 5, count);
  std::vector<Frame> frames;
  for (int i = 0; i < count; ++i) frames.push_back(sim.render(i));
  return frames;
}

TEST(Codec, RoundTripIsLossless) {
  const auto frames = make_frames(40);
  const StoredVideo video = StoredVideo::encode(frames, /*keyframe_interval=*/8);
  VideoReader reader(video);
  for (const auto& expected : frames) {
    const auto got = reader.next();
    ASSERT_TRUE(got.has_value());
    ASSERT_EQ(got->image, expected.image) << "frame " << expected.index;
  }
  EXPECT_FALSE(reader.next().has_value());
}

TEST(Codec, EmptyInput) {
  const StoredVideo video = StoredVideo::encode({});
  EXPECT_EQ(video.frame_count(), 0);
  VideoReader reader(video);
  EXPECT_FALSE(reader.next().has_value());
}

TEST(Codec, SingleFrame) {
  const auto frames = make_frames(1);
  const StoredVideo video = StoredVideo::encode(frames);
  VideoReader reader(video);
  EXPECT_EQ(reader.next()->image, frames[0].image);
}

TEST(Codec, GroundTruthTravelsWithFrames) {
  const auto frames = make_frames(30, 1.0);
  const StoredVideo video = StoredVideo::encode(frames);
  VideoReader reader(video);
  for (const auto& expected : frames) {
    const auto got = reader.next();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->gt.objects.size(), expected.gt.objects.size());
    EXPECT_NEAR(got->pts_sec, expected.pts_sec, 1e-12);
    EXPECT_EQ(got->index, expected.index);
  }
}

TEST(Codec, CompressionBeatsRawOnStaticScenes) {
  // Low activity + a small deadzone to absorb sensor noise -> long zero
  // runs -> strong compression.
  const auto frames = make_frames(30, 0.0);
  const StoredVideo video = StoredVideo::encode(frames, 32, /*deadzone=*/6);
  const auto stats = video.stats();
  EXPECT_GT(stats.compression_ratio(), 2.0);
  EXPECT_EQ(stats.raw_bytes, static_cast<std::size_t>(96) * 72 * 3 * 30);
}

TEST(Codec, DeadzoneErrorIsBounded) {
  const auto frames = make_frames(24, 0.5);
  const int deadzone = 5;
  const StoredVideo video = StoredVideo::encode(frames, 8, deadzone);
  VideoReader reader(video);
  for (const auto& expected : frames) {
    const auto got = reader.next();
    ASSERT_TRUE(got.has_value());
    int worst = 0;
    for (std::size_t i = 0; i < expected.image.size_bytes(); ++i) {
      worst = std::max(worst, std::abs(static_cast<int>(expected.image.data()[i]) -
                                       static_cast<int>(got->image.data()[i])));
    }
    EXPECT_LE(worst, deadzone) << "frame " << expected.index;
  }
}

TEST(Codec, DeadzoneImprovesCompressionMonotonically) {
  const auto frames = make_frames(20, 0.3);
  double prev_ratio = 0.0;
  for (int dz : {0, 3, 8}) {
    const double ratio = StoredVideo::encode(frames, 16, dz).stats().compression_ratio();
    EXPECT_GE(ratio, prev_ratio);
    prev_ratio = ratio;
  }
  EXPECT_GT(prev_ratio, 1.5);
}

TEST(Codec, BusyScenesCompressWorseThanStatic) {
  const auto still = StoredVideo::encode(make_frames(20, 0.0)).stats();
  const auto busy = StoredVideo::encode(make_frames(20, 1.0)).stats();
  EXPECT_GT(still.compression_ratio(), busy.compression_ratio());
}

TEST(Codec, SeekToKeyframe) {
  const auto frames = make_frames(40);
  const StoredVideo video = StoredVideo::encode(frames, 8);
  VideoReader reader(video);
  reader.seek(16);  // a keyframe
  EXPECT_EQ(reader.next()->image, frames[16].image);
}

TEST(Codec, SeekMidGop) {
  const auto frames = make_frames(40);
  const StoredVideo video = StoredVideo::encode(frames, 8);
  VideoReader reader(video);
  reader.seek(13);  // inside GOP [8, 16)
  EXPECT_EQ(reader.next()->image, frames[13].image);
  EXPECT_EQ(reader.next()->image, frames[14].image);
}

TEST(Codec, SeekBackwards) {
  const auto frames = make_frames(30);
  const StoredVideo video = StoredVideo::encode(frames, 8);
  VideoReader reader(video);
  for (int i = 0; i < 20; ++i) reader.next();
  reader.seek(3);
  EXPECT_EQ(reader.next()->image, frames[3].image);
}

TEST(Codec, SeekOutOfRangeThrows) {
  const auto frames = make_frames(10);
  const StoredVideo video = StoredVideo::encode(frames);
  VideoReader reader(video);
  EXPECT_THROW(reader.seek(10), std::out_of_range);
  EXPECT_THROW(reader.seek(-1), std::out_of_range);
}

TEST(Codec, KeyframeIntervalOneIsAllKeyframes) {
  const auto frames = make_frames(12);
  const StoredVideo video = StoredVideo::encode(frames, 1);
  VideoReader reader(video);
  reader.seek(7);
  EXPECT_EQ(reader.next()->image, frames[7].image);
}

TEST(Codec, MixedShapesRejected) {
  auto frames = make_frames(3);
  frames.push_back(Frame{image::Image(10, 10, 3), 0, 3, 0.1, {}});
  EXPECT_THROW(StoredVideo::encode(frames), std::invalid_argument);
}

TEST(Codec, TwoReadersAreIndependent) {
  const auto frames = make_frames(20);
  const StoredVideo video = StoredVideo::encode(frames, 4);
  VideoReader r1(video, 1), r2(video, 2);
  r1.next();
  r1.next();
  const auto f2 = r2.next();
  ASSERT_TRUE(f2.has_value());
  EXPECT_EQ(f2->image, frames[0].image);
  EXPECT_EQ(f2->stream_id, 2);
  EXPECT_EQ(r1.next()->image, frames[2].image);
}

}  // namespace
}  // namespace ffsva::video
