// The FFS-VA threaded pipeline engine (paper Sections 3.1.2 and 4.3).
//
// Per stream: prefetch -> SDD -> SNM, each a thread, decoupled by bounded
// queues whose capacities are the paper's feedback-queue thresholds
// ({2, 10, 2}); a blocking push *is* the feedback throttle. Globally: one
// T-YOLO service thread round-robins over all streams' T-YOLO queues with
// the per-stream `num_tyolo` extraction cap, and one reference-model thread
// drains the survivors. SDDs run on CPU threads; SNM batches and T-YOLO
// executions serialize on the GPU0 token, the reference model on GPU1 —
// the paper's device placement, expressed as mutual exclusion.
//
// This engine is the *correctness* vehicle (end-to-end behaviour, ordering,
// no-loss, backpressure, accuracy); calibrated performance numbers come
// from the discrete-event simulator in src/sim, which runs the same policy
// objects (src/core/policies.hpp) under virtual time.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "core/config.hpp"
#include "core/policies.hpp"
#include "detect/specialize.hpp"
#include "runtime/stats.hpp"
#include "video/source.hpp"

namespace ffsva::core {

/// A frame that survived the whole cascade, plus its reference-model result.
struct OutputEvent {
  video::Frame frame;
  detect::DetectionResult result;
  double latency_ms = 0.0;  ///< Ingest-to-output time.
};

struct StreamStats {
  runtime::StageCounters prefetch;  ///< in = source frames, passed = ingested.
  runtime::StageCounters sdd;
  runtime::StageCounters snm;
  runtime::StageCounters tyolo;
  runtime::StageCounters ref;       ///< in = frames reaching reference model.
  std::uint64_t dropped_at_ingest = 0;
  runtime::Histogram latency_ms;    ///< Terminal latency of every ingested frame.
  double ingest_fps = 0.0;          ///< Realized ingest rate.
};

struct InstanceStats {
  std::vector<StreamStats> streams;
  double wall_sec = 0.0;
  double total_throughput_fps = 0.0;  ///< Ingested frames / wall seconds.
  runtime::Histogram output_latency_ms;

  StreamStats aggregate() const;
};

class FfsVaInstance {
 public:
  explicit FfsVaInstance(FfsVaConfig config);
  ~FfsVaInstance();

  FfsVaInstance(const FfsVaInstance&) = delete;
  FfsVaInstance& operator=(const FfsVaInstance&) = delete;

  /// Register a stream before run(). The models must target the same class
  /// the stream's events are defined over.
  void add_stream(std::unique_ptr<video::FrameSource> source,
                  detect::StreamModels models);

  /// Optional sink invoked (from the reference-model thread) for every
  /// surviving frame. When unset, outputs are collected in outputs().
  void set_output_sink(std::function<void(const OutputEvent&)> sink);

  /// Process every stream to completion.
  /// online=true paces each stream's ingest at config.online_fps and drops
  /// frames when the SDD queue stays full (overload); online=false runs
  /// flat out (offline analysis of stored video).
  InstanceStats run(bool online);

  /// Collected outputs (when no sink is set).
  const std::vector<OutputEvent>& outputs() const { return outputs_; }

  const FfsVaConfig& config() const { return config_; }
  int num_streams() const { return static_cast<int>(streams_.size()); }

 private:
  struct Stream;

  void prefetch_loop(Stream& s, bool online);
  void sdd_loop(Stream& s);
  void snm_loop(Stream& s);
  void tyolo_loop();
  void reference_loop();

  FfsVaConfig config_;
  std::vector<std::unique_ptr<Stream>> streams_;
  std::function<void(const OutputEvent&)> sink_;
  std::vector<OutputEvent> outputs_;
  std::mutex outputs_mu_;

  // Device tokens: models mapped to one GPU exclude each other in time.
  std::mutex gpu0_;  ///< SNMs + T-YOLO (Section 3.1.2).
  std::mutex gpu1_;  ///< Reference model.

  struct TYoloShared;
  std::unique_ptr<TYoloShared> tyolo_shared_;
};

/// The paper's baseline: every frame of every stream goes straight to the
/// full-feature reference model (YOLOv2), using both GPU tokens.
struct BaselineStats {
  double wall_sec = 0.0;
  double throughput_fps = 0.0;
  std::uint64_t frames = 0;
  std::uint64_t dropped = 0;
  runtime::Histogram latency_ms;
};

BaselineStats run_yolo_baseline(
    std::vector<std::unique_ptr<video::FrameSource>> sources,
    const std::vector<detect::StreamModels>& models, bool online,
    double online_fps = 30.0);

}  // namespace ffsva::core
