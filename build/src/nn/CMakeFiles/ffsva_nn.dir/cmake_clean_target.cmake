file(REMOVE_RECURSE
  "libffsva_nn.a"
)
