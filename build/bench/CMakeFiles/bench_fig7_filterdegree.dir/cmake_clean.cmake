file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_filterdegree.dir/bench_fig7_filterdegree.cpp.o"
  "CMakeFiles/bench_fig7_filterdegree.dir/bench_fig7_filterdegree.cpp.o.d"
  "bench_fig7_filterdegree"
  "bench_fig7_filterdegree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_filterdegree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
