
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/engine.cpp" "src/sim/CMakeFiles/ffsva_sim.dir/engine.cpp.o" "gcc" "src/sim/CMakeFiles/ffsva_sim.dir/engine.cpp.o.d"
  "/root/repo/src/sim/ffsva_sim.cpp" "src/sim/CMakeFiles/ffsva_sim.dir/ffsva_sim.cpp.o" "gcc" "src/sim/CMakeFiles/ffsva_sim.dir/ffsva_sim.cpp.o.d"
  "/root/repo/src/sim/outcome.cpp" "src/sim/CMakeFiles/ffsva_sim.dir/outcome.cpp.o" "gcc" "src/sim/CMakeFiles/ffsva_sim.dir/outcome.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ffsva_core.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/ffsva_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ffsva_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ffsva_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/ffsva_video.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/ffsva_image.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
