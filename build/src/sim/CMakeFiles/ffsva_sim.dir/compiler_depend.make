# Empty compiler generated dependencies file for ffsva_sim.
# This may be replaced when dependencies are built.
