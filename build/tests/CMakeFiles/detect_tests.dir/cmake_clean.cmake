file(REMOVE_RECURSE
  "CMakeFiles/detect_tests.dir/detect/background_test.cpp.o"
  "CMakeFiles/detect_tests.dir/detect/background_test.cpp.o.d"
  "CMakeFiles/detect_tests.dir/detect/multi_snm_test.cpp.o"
  "CMakeFiles/detect_tests.dir/detect/multi_snm_test.cpp.o.d"
  "CMakeFiles/detect_tests.dir/detect/reference_test.cpp.o"
  "CMakeFiles/detect_tests.dir/detect/reference_test.cpp.o.d"
  "CMakeFiles/detect_tests.dir/detect/scene_change_test.cpp.o"
  "CMakeFiles/detect_tests.dir/detect/scene_change_test.cpp.o.d"
  "CMakeFiles/detect_tests.dir/detect/sdd_metric_sweep_test.cpp.o"
  "CMakeFiles/detect_tests.dir/detect/sdd_metric_sweep_test.cpp.o.d"
  "CMakeFiles/detect_tests.dir/detect/sdd_test.cpp.o"
  "CMakeFiles/detect_tests.dir/detect/sdd_test.cpp.o.d"
  "CMakeFiles/detect_tests.dir/detect/segmentation_test.cpp.o"
  "CMakeFiles/detect_tests.dir/detect/segmentation_test.cpp.o.d"
  "CMakeFiles/detect_tests.dir/detect/snm_test.cpp.o"
  "CMakeFiles/detect_tests.dir/detect/snm_test.cpp.o.d"
  "CMakeFiles/detect_tests.dir/detect/specialize_test.cpp.o"
  "CMakeFiles/detect_tests.dir/detect/specialize_test.cpp.o.d"
  "CMakeFiles/detect_tests.dir/detect/tyolo_test.cpp.o"
  "CMakeFiles/detect_tests.dir/detect/tyolo_test.cpp.o.d"
  "detect_tests"
  "detect_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detect_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
