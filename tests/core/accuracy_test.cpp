#include "core/accuracy.hpp"

#include <gtest/gtest.h>

namespace ffsva::core {
namespace {

std::vector<bool> mask_from(const char* s) {
  std::vector<bool> m;
  for (const char* p = s; *p; ++p) m.push_back(*p == 'X');
  return m;
}

TEST(ErrorRuns, EmptyAndClean) {
  EXPECT_EQ(classify_error_runs({}).total(), 0);
  EXPECT_EQ(classify_error_runs(mask_from("........")).total(), 0);
}

TEST(ErrorRuns, IsolatedSingles) {
  const auto s = classify_error_runs(mask_from(".X..X...X."));
  EXPECT_EQ(s.isolated_single, 3);
  EXPECT_EQ(s.isolated_2_3, 0);
  EXPECT_EQ(s.total(), 3);
}

TEST(ErrorRuns, ShortRuns) {
  const auto s = classify_error_runs(mask_from("XX...XXX.."));
  EXPECT_EQ(s.isolated_2_3, 5);  // 2 + 3 frames
  EXPECT_EQ(s.isolated_single, 0);
}

TEST(ErrorRuns, MediumRuns) {
  std::vector<bool> m(50, false);
  for (int i = 10; i < 25; ++i) m[static_cast<std::size_t>(i)] = true;  // 15-run
  const auto s = classify_error_runs(m);
  EXPECT_EQ(s.continuous_under_30, 15);
  EXPECT_EQ(s.continuous_30_plus, 0);
}

TEST(ErrorRuns, LongRunsAtThreshold) {
  std::vector<bool> m(100, false);
  for (int i = 0; i < 29; ++i) m[static_cast<std::size_t>(i)] = true;
  for (int i = 50; i < 80; ++i) m[static_cast<std::size_t>(i)] = true;  // exactly 30
  const auto s = classify_error_runs(m);
  EXPECT_EQ(s.continuous_under_30, 29);
  EXPECT_EQ(s.continuous_30_plus, 30);
}

TEST(ErrorRuns, RunTouchingBothEnds) {
  const auto s = classify_error_runs(mask_from("XX......XX"));
  EXPECT_EQ(s.isolated_2_3, 4);
}

TEST(ErrorRuns, TotalEqualsSetBits) {
  const auto m = mask_from("X.XX..XXXXX....X");
  const auto s = classify_error_runs(m);
  int bits = 0;
  for (bool b : m) bits += b;
  EXPECT_EQ(s.total(), bits);
}

TEST(SceneAccuracy, AllCaught) {
  std::vector<video::SceneInterval> ivs{{0, 10, 1}, {20, 30, 2}};
  std::vector<bool> pass(40, false);
  pass[5] = true;
  pass[25] = true;
  const auto acc = scene_level_accuracy(ivs, pass, 0);
  EXPECT_EQ(acc.scenes, 2);
  EXPECT_EQ(acc.caught, 2);
  EXPECT_EQ(acc.lost, 0);
  EXPECT_DOUBLE_EQ(acc.loss_rate, 0.0);
}

TEST(SceneAccuracy, LostScene) {
  std::vector<video::SceneInterval> ivs{{0, 10, 1}, {20, 30, 1}};
  std::vector<bool> pass(40, false);
  pass[5] = true;  // only the first scene has a surviving frame
  const auto acc = scene_level_accuracy(ivs, pass, 0);
  EXPECT_EQ(acc.lost, 1);
  EXPECT_DOUBLE_EQ(acc.loss_rate, 0.5);
}

TEST(SceneAccuracy, WindowClipping) {
  std::vector<video::SceneInterval> ivs{{0, 10, 1}, {95, 120, 1}, {300, 310, 1}};
  std::vector<bool> pass(100, false);  // window [50, 150)
  pass[50] = true;                     // frame 100, inside the second scene
  const auto acc = scene_level_accuracy(ivs, pass, 50);
  EXPECT_EQ(acc.scenes, 1) << "only the overlapping scene counts";
  EXPECT_EQ(acc.caught, 1);
}

TEST(SceneAccuracy, PassOutsideSceneDoesNotCount) {
  std::vector<video::SceneInterval> ivs{{10, 20, 1}};
  std::vector<bool> pass(40, false);
  pass[5] = true;  // outside the interval
  const auto acc = scene_level_accuracy(ivs, pass, 0);
  EXPECT_EQ(acc.lost, 1);
}

TEST(FrameErrorRate, Basics) {
  EXPECT_DOUBLE_EQ(frame_error_rate({}), 0.0);
  EXPECT_DOUBLE_EQ(frame_error_rate(mask_from("X.X.")), 0.5);
  EXPECT_DOUBLE_EQ(frame_error_rate(mask_from("....")), 0.0);
}

}  // namespace
}  // namespace ffsva::core
