// Microbenchmarks (google-benchmark) of the real CPU implementations:
// per-filter inference kernels, preprococessing, codec, and the pipeline
// primitives. These are *our* CPU costs; the calibrated GPU-era costs the
// performance simulator charges live in detect/cost_model.hpp and are
// printed by bench_fig5_filter_ratios for comparison against the paper.
#include <benchmark/benchmark.h>

#include "core/policies.hpp"
#include "nn/layers.hpp"
#include "detect/specialize.hpp"
#include "image/ops.hpp"
#include "runtime/bounded_queue.hpp"
#include "video/codec.hpp"
#include "video/profiles.hpp"

namespace {

using namespace ffsva;

/// Shared fixture state, built once.
struct Fixture {
  video::SceneConfig cfg;
  std::unique_ptr<video::SceneSimulator> sim;
  detect::StreamModels models;
  std::vector<video::Frame> frames;
  video::StoredVideo stored;

  Fixture() {
    cfg = video::jackson_profile();
    cfg.tor = 0.3;
    sim = std::make_unique<video::SceneSimulator>(cfg, 42, 700);
    std::vector<video::Frame> calib;
    for (int i = 0; i < 500; ++i) calib.push_back(sim->render(i));
    detect::SpecializeConfig sc;
    sc.target = cfg.target;
    sc.snm.epochs = 3;
    models = detect::specialize_stream(calib, sc, 42);
    for (int i = 500; i < 700; ++i) frames.push_back(sim->render(i));
    stored = video::StoredVideo::encode(frames, 32, 4);
  }
};

Fixture& fx() {
  static auto* f = new Fixture();
  return *f;
}

void BM_SceneRender(benchmark::State& state) {
  auto& f = fx();
  std::int64_t i = 500;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.sim->render(i));
    if (++i >= 700) i = 500;
  }
}
BENCHMARK(BM_SceneRender);

void BM_SddDistance(benchmark::State& state) {
  auto& f = fx();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.models.sdd->distance(f.frames[i].image));
    i = (i + 1) % f.frames.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SddDistance);

void BM_SnmPredict(benchmark::State& state) {
  auto& f = fx();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.models.snm->predict(f.frames[i].image));
    i = (i + 1) % f.frames.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SnmPredict);

void BM_SnmPredictBatch(benchmark::State& state) {
  auto& f = fx();
  const int batch = static_cast<int>(state.range(0));
  std::vector<const image::Image*> imgs;
  for (int k = 0; k < batch; ++k) {
    imgs.push_back(&f.frames[static_cast<std::size_t>(k) % f.frames.size()].image);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.models.snm->predict_batch(imgs));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_SnmPredictBatch)->Arg(1)->Arg(8)->Arg(16);

void BM_TYoloDetect(benchmark::State& state) {
  auto& f = fx();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.models.tyolo->detect(f.frames[i].image));
    i = (i + 1) % f.frames.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TYoloDetect);

void BM_ReferenceDetect(benchmark::State& state) {
  auto& f = fx();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.models.reference->detect(f.frames[i].image));
    i = (i + 1) % f.frames.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReferenceDetect);

void BM_ResizeToSddInput(benchmark::State& state) {
  auto& f = fx();
  for (auto _ : state) {
    benchmark::DoNotOptimize(image::resize_bilinear(f.frames[0].image, 100, 100));
  }
}
BENCHMARK(BM_ResizeToSddInput);

void BM_DecodeFrame(benchmark::State& state) {
  auto& f = fx();
  video::VideoReader reader(f.stored);
  for (auto _ : state) {
    auto frame = reader.next();
    if (!frame) {
      state.PauseTiming();
      reader.seek(0);
      state.ResumeTiming();
      frame = reader.next();
    }
    benchmark::DoNotOptimize(frame);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DecodeFrame);

void BM_Conv2dDirect(benchmark::State& state) {
  runtime::Xoshiro256 rng(5);
  nn::Conv2d conv(8, 16, 3, 2, 1, rng);
  conv.set_use_im2col(false);
  nn::Tensor x(1, 8, 25, 25);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<float>(i % 13) * 0.1f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.forward(x, false));
  }
}
BENCHMARK(BM_Conv2dDirect);

void BM_Conv2dIm2Col(benchmark::State& state) {
  runtime::Xoshiro256 rng(5);
  nn::Conv2d conv(8, 16, 3, 2, 1, rng);
  conv.set_use_im2col(true);
  nn::Tensor x(1, 8, 25, 25);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<float>(i % 13) * 0.1f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.forward(x, false));
  }
}
BENCHMARK(BM_Conv2dIm2Col);

void BM_Conv2dIm2ColPruned(benchmark::State& state) {
  // The pruning fast path in gemm(): zero weights are skipped per row.
  runtime::Xoshiro256 rng(5);
  nn::Conv2d conv(8, 16, 3, 2, 1, rng);
  // Hand-prune half the weights; gemm() skips exact zeros.
  for (std::size_t i = 0; i < conv.weight.size(); i += 2) conv.weight[i] = 0.0f;
  nn::Tensor x(1, 8, 25, 25);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<float>(i % 13) * 0.1f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.forward(x, false));
  }
}
BENCHMARK(BM_Conv2dIm2ColPruned);

void BM_BoundedQueuePushPop(benchmark::State& state) {
  runtime::BoundedQueue<int> q(64);
  for (auto _ : state) {
    q.push(1);
    benchmark::DoNotOptimize(q.pop());
  }
}
BENCHMARK(BM_BoundedQueuePushPop);

void BM_TYoloSchedulerCycle(benchmark::State& state) {
  core::TYoloScheduler sched(4);
  std::vector<int> depths(30, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.next(depths));
  }
}
BENCHMARK(BM_TYoloSchedulerCycle);

}  // namespace

BENCHMARK_MAIN();
