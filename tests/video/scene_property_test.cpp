// Parameterized ground-truth invariants of the scene simulator across
// profiles, TORs and seeds — the contract every downstream experiment
// relies on.
#include <gtest/gtest.h>

#include "video/clips.hpp"
#include "video/codec.hpp"
#include "video/profiles.hpp"

namespace ffsva::video {
namespace {

struct SceneCase {
  bool coral;
  double tor;
  std::uint64_t seed;
};

class SceneInvariants : public ::testing::TestWithParam<SceneCase> {};

TEST_P(SceneInvariants, HoldAcrossTheStream) {
  const SceneCase c = GetParam();
  SceneConfig cfg = c.coral ? coral_profile() : jackson_profile();
  cfg.width = 112;
  cfg.height = 84;
  cfg.tor = c.tor;
  const std::int64_t frames = 2400;
  SceneSimulator sim(cfg, c.seed, frames);

  // Planned TOR tracks the request.
  EXPECT_NEAR(sim.planned_tor(), c.tor, 0.04);

  // Intervals tile without overlap and stay in range.
  std::int64_t prev_end = 0;
  for (const auto& iv : sim.intervals()) {
    ASSERT_GE(iv.begin, prev_end);
    ASSERT_LT(iv.begin, iv.end);
    ASSERT_LE(iv.end, frames);
    ASSERT_GE(iv.num_objects, 1);
    prev_end = iv.end;
  }

  // Sampled frames: ground truth boxes clipped and sane; targets appear
  // inside intervals (probing interval middles) and the presence mask
  // agrees with planned TOR.
  const auto mask = presence_mask(sim);
  std::int64_t covered = 0;
  for (auto m : mask) covered += m;
  EXPECT_NEAR(static_cast<double>(covered) / static_cast<double>(frames),
              sim.planned_tor(), 1e-9);

  for (std::int64_t i = 0; i < frames; i += 97) {
    const Frame f = sim.render(i);
    ASSERT_EQ(f.index, i);
    for (const auto& o : f.gt.objects) {
      ASSERT_GT(o.visible_fraction, 0.0);
      ASSERT_LE(o.visible_fraction, 1.0 + 1e-9);
      ASSERT_GE(o.visible_box.x0, 0);
      ASSERT_LE(o.visible_box.x1, cfg.width);
      ASSERT_GE(o.visible_box.y0, 0);
      ASSERT_LE(o.visible_box.y1, cfg.height);
      ASSERT_FALSE(o.visible_box.empty());
    }
  }

  for (const auto& iv : sim.intervals()) {
    const auto mid = (iv.begin + iv.end) / 2;
    EXPECT_TRUE(sim.render(mid).gt.any_target(cfg.target))
        << "interval [" << iv.begin << "," << iv.end << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    ProfilesAndTors, SceneInvariants,
    ::testing::Values(SceneCase{false, 0.05, 1}, SceneCase{false, 0.25, 2},
                      SceneCase{false, 0.60, 3}, SceneCase{false, 1.00, 4},
                      SceneCase{true, 0.10, 5}, SceneCase{true, 0.50, 6},
                      SceneCase{true, 1.00, 7}));

class CodecRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(CodecRoundTrip, LosslessAcrossGopAndSize) {
  const auto [keyframe_interval, size, tor] = GetParam();
  SceneConfig cfg = jackson_profile();
  cfg.width = size;
  cfg.height = size * 3 / 4;
  cfg.tor = tor;
  SceneSimulator sim(cfg, 9, 60);
  std::vector<Frame> frames;
  for (int i = 0; i < 60; ++i) frames.push_back(sim.render(i));
  const StoredVideo video = StoredVideo::encode(frames, keyframe_interval);
  VideoReader reader(video);
  for (const auto& expected : frames) {
    const auto got = reader.next();
    ASSERT_TRUE(got.has_value());
    ASSERT_EQ(got->image, expected.image);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CodecRoundTrip,
    ::testing::Combine(::testing::Values(1, 7, 32),
                       ::testing::Values(64, 96),
                       ::testing::Values(0.0, 0.6)));

}  // namespace
}  // namespace ffsva::video
