// SDD distance-metric ablation (DESIGN.md §5): MSE, NRMSE and SAD must all
// calibrate to a usable operating point on a real scene — high recall on
// target frames, substantial filtering of background frames.
#include <gtest/gtest.h>

#include "detect/sdd.hpp"
#include "video/profiles.hpp"

namespace ffsva::detect {
namespace {

struct SweepStream {
  video::SceneConfig cfg;
  std::unique_ptr<video::SceneSimulator> sim;
  std::vector<video::Frame> calib;

  SweepStream() {
    cfg = video::jackson_profile();
    cfg.width = 128;
    cfg.height = 96;
    cfg.tor = 0.3;
    sim = std::make_unique<video::SceneSimulator>(cfg, 23, 1600);
    for (int i = 0; i < 800; ++i) calib.push_back(sim->render(i));
  }
};

SweepStream& stream() {
  static auto* s = new SweepStream();
  return *s;
}

class SddMetricSweep : public ::testing::TestWithParam<SddMetric> {};

TEST_P(SddMetricSweep, CalibratesToUsableOperatingPoint) {
  auto& s = stream();
  SddConfig cfg;
  cfg.metric = GetParam();
  SddFilter sdd(cfg, s.sim->background());
  const double delta = sdd.calibrate_on(s.calib, s.cfg.target);
  EXPECT_GT(delta, 0.0);

  // Evaluate on fresh frames.
  int targets = 0, fn = 0, background = 0, bg_passed = 0;
  for (int i = 800; i < 1600; i += 2) {
    const auto f = s.sim->render(i);
    const bool pass = sdd.pass(f.image);
    if (f.gt.any_target(s.cfg.target)) {
      ++targets;
      fn += !pass;
    } else if (f.gt.objects.empty()) {  // pure background (no distractors)
      ++background;
      bg_passed += pass;
    }
  }
  ASSERT_GT(targets, 20);
  ASSERT_GT(background, 20);
  EXPECT_LT(static_cast<double>(fn) / targets, 0.05)
      << to_string(GetParam()) << ": target recall too low";
  EXPECT_LT(static_cast<double>(bg_passed) / background, 0.5)
      << to_string(GetParam()) << ": filters too little background";
}

INSTANTIATE_TEST_SUITE_P(Metrics, SddMetricSweep,
                         ::testing::Values(SddMetric::kMse, SddMetric::kNrmse,
                                           SddMetric::kSad),
                         [](const auto& info) { return to_string(info.param); });

TEST(SddMetricSweep, MseSeparatesBestOnQuadraticContrast) {
  // MSE weights large deviations quadratically: a compact high-contrast
  // object stands out more against diffuse noise than under SAD.
  auto& s = stream();
  SddConfig mse_cfg;
  mse_cfg.metric = SddMetric::kMse;
  SddConfig sad_cfg;
  sad_cfg.metric = SddMetric::kSad;
  SddFilter mse(mse_cfg, s.sim->background());
  SddFilter sad(sad_cfg, s.sim->background());

  double mse_ratio = 0, sad_ratio = 0;
  int n = 0;
  for (const auto& iv : s.sim->intervals()) {
    if (iv.begin >= 800) break;
    const auto target = s.sim->render((iv.begin + iv.end) / 2);
    const auto bg_frame = s.sim->render(std::max<std::int64_t>(0, iv.begin - 20));
    if (bg_frame.gt.objects.empty()) {
      mse_ratio += mse.distance(target.image) / std::max(1e-9, mse.distance(bg_frame.image));
      sad_ratio += sad.distance(target.image) / std::max(1e-9, sad.distance(bg_frame.image));
      ++n;
    }
  }
  if (n > 0) {
    EXPECT_GT(mse_ratio / n, sad_ratio / n);
  }
}

}  // namespace
}  // namespace ffsva::detect
