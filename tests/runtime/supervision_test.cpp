// Supervision primitives: StopToken aliasing, Heartbeat busy-age readings,
// and the Watchdog tick/stop protocol (runtime/supervision.hpp).
#include "runtime/supervision.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace ffsva::runtime {
namespace {

TEST(StopToken, CopiesAliasTheSameState) {
  StopToken a;
  StopToken b = a;  // copy before the request
  EXPECT_FALSE(a.stop_requested());
  EXPECT_FALSE(b.stop_requested());
  b.request_stop();
  EXPECT_TRUE(a.stop_requested());
  EXPECT_TRUE(b.stop_requested());
  StopToken c = a;  // copy after the request still observes it
  EXPECT_TRUE(c.stop_requested());
}

TEST(StopToken, RequestStopIsIdempotent) {
  StopToken t;
  t.request_stop();
  t.request_stop();
  EXPECT_TRUE(t.stop_requested());
}

TEST(StopToken, FreshTokensAreIndependent) {
  StopToken a;
  StopToken b;
  a.request_stop();
  EXPECT_FALSE(b.stop_requested());
}

TEST(Heartbeat, IdleReadsMinusOne) {
  Heartbeat hb;
  EXPECT_EQ(hb.busy_age_ms(), -1);  // never marked busy
  hb.busy();
  hb.idle();
  EXPECT_EQ(hb.busy_age_ms(), -1);  // idle again after a busy section
}

TEST(Heartbeat, BusyAgeGrowsWhileBusy) {
  Heartbeat hb;
  hb.busy();
  EXPECT_GE(hb.busy_age_ms(), 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_GE(hb.busy_age_ms(), 25);  // slack for timer coarseness
  hb.idle();
  EXPECT_EQ(hb.busy_age_ms(), -1);
}

TEST(Heartbeat, ReBusyResetsTheAge) {
  Heartbeat hb;
  hb.busy();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  hb.busy();  // a new busy section: the stall clock restarts
  EXPECT_LT(hb.busy_age_ms(), 25);
}

TEST(Watchdog, RunsTheCheckRepeatedly) {
  Watchdog dog;
  std::atomic<int> ticks{0};
  dog.start(std::chrono::milliseconds(5), [&] { ++ticks; });
  EXPECT_TRUE(dog.running());
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (ticks.load() < 3 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  dog.stop();
  EXPECT_GE(ticks.load(), 3);
  EXPECT_FALSE(dog.running());
}

TEST(Watchdog, StopIsIdempotentAndStopsTicking) {
  Watchdog dog;
  std::atomic<int> ticks{0};
  dog.start(std::chrono::milliseconds(1), [&] { ++ticks; });
  dog.stop();
  dog.stop();  // second stop is a no-op
  const int after_stop = ticks.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(ticks.load(), after_stop);  // no ticks after stop returned
}

TEST(Watchdog, IsRestartable) {
  Watchdog dog;
  std::atomic<int> first{0}, second{0};
  dog.start(std::chrono::milliseconds(1), [&] { ++first; });
  dog.stop();
  dog.start(std::chrono::milliseconds(1), [&] { ++second; });
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (second.load() < 1 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  dog.stop();
  EXPECT_GE(second.load(), 1);
}

// The check may itself take locks and notify condition variables (the
// engine's quarantine path does); destroying a running watchdog must join
// cleanly rather than leak the thread.
TEST(Watchdog, DestructorStopsARunningDog) {
  std::atomic<int> ticks{0};
  {
    Watchdog dog;
    dog.start(std::chrono::milliseconds(1), [&] { ++ticks; });
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }  // ~Watchdog joins; `ticks` outlives it, so no use-after-free
  const int at_destroy = ticks.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(ticks.load(), at_destroy);
}

}  // namespace
}  // namespace ffsva::runtime
