#include "sim/outcome.hpp"

#include <algorithm>
#include <cmath>

namespace ffsva::sim {

std::vector<core::FilteredAt> outcomes_from_trace(
    const std::vector<core::FrameRecord>& records,
    const core::CascadeThresholds& thresholds) {
  std::vector<core::FilteredAt> out;
  out.reserve(records.size());
  for (const auto& r : records) out.push_back(core::apply_cascade(r, thresholds));
  return out;
}

MarkovParams MarkovParams::for_tor(double tor, int number_of_objects) {
  MarkovParams p;
  p.tor = std::clamp(tor, 0.0, 1.0);
  // Scene lengths in the evaluation workloads average ~100-160 frames.
  p.mean_scene_len = 110.0;
  // Conditional pass rates calibrated from recorded traces of the
  // jackson (car) profile at several TORs (see EXPERIMENTS.md): background
  // frames still pass SDD when distractor motion is present; SNM removes
  // most of those; T-YOLO passes in-scene frames whose target count clears
  // NumberofObjects and a residue of SNM false positives.
  p.sdd_in = 0.99;
  p.sdd_out = 0.35;
  p.snm_in = 0.95;
  p.snm_out = 0.12;
  // T-YOLO passes ~72% of in-scene frames at N=1 (measured over real-filter
  // traces of the jackson profile: partial and entering/leaving vehicles
  // fall below its coarse resolving power). Raising NumberofObjects thins
  // the pass rate roughly geometrically (Figure 8a: ~80% fewer output
  // frames by N=3).
  p.ty_in = 0.72 * std::pow(0.45, std::max(0, number_of_objects - 1));
  p.ty_out = 0.10;
  return p;
}

MarkovParams MarkovParams::from_trace(const std::vector<core::FrameRecord>& records,
                                      const core::CascadeThresholds& thresholds) {
  MarkovParams p;
  if (records.empty()) return p;

  // State and run statistics from ground truth.
  std::int64_t in_frames = 0, runs = 0;
  bool prev_in = false;
  for (const auto& r : records) {
    if (r.gt_target) {
      ++in_frames;
      if (!prev_in) ++runs;
    }
    prev_in = r.gt_target;
  }
  p.tor = static_cast<double>(in_frames) / static_cast<double>(records.size());
  p.mean_scene_len =
      runs > 0 ? static_cast<double>(in_frames) / static_cast<double>(runs) : 100.0;

  // Conditional stage pass rates by state.
  struct Cond {
    std::int64_t sdd_n = 0, sdd_p = 0;
    std::int64_t snm_n = 0, snm_p = 0;
    std::int64_t ty_n = 0, ty_p = 0;
  } in, out;
  for (const auto& r : records) {
    Cond& c = r.gt_target ? in : out;
    ++c.sdd_n;
    const bool sdd = r.sdd_distance > thresholds.sdd_delta;
    c.sdd_p += sdd;
    if (!sdd) continue;
    ++c.snm_n;
    const bool snm = r.snm_score >= thresholds.t_pre;
    c.snm_p += snm;
    if (!snm) continue;
    ++c.ty_n;
    c.ty_p += r.tyolo_count >= thresholds.number_of_objects;
  }
  auto rate = [](std::int64_t pass, std::int64_t n, double fallback) {
    return n > 0 ? static_cast<double>(pass) / static_cast<double>(n) : fallback;
  };
  p.sdd_in = rate(in.sdd_p, in.sdd_n, p.sdd_in);
  p.sdd_out = rate(out.sdd_p, out.sdd_n, p.sdd_out);
  p.snm_in = rate(in.snm_p, in.snm_n, p.snm_in);
  p.snm_out = rate(out.snm_p, out.snm_n, p.snm_out);
  p.ty_in = rate(in.ty_p, in.ty_n, p.ty_in);
  p.ty_out = rate(out.ty_p, out.ty_n, p.ty_out);
  return p;
}

MarkovOutcomes::MarkovOutcomes(const MarkovParams& params, std::uint64_t seed)
    : p_(params), rng_(seed) {
  // Stationary in-scene probability tor with mean run length L:
  //   leave = 1/L,  enter = leave * tor / (1 - tor).
  const double L = std::max(1.0, p_.mean_scene_len);
  p_leave_ = 1.0 / L;
  if (p_.tor >= 1.0) {
    p_enter_ = 1.0;
    p_leave_ = 0.0;
    in_scene_ = true;
  } else if (p_.tor <= 0.0) {
    p_enter_ = 0.0;
    in_scene_ = false;
  } else {
    p_enter_ = p_leave_ * p_.tor / (1.0 - p_.tor);
    // Start in the stationary distribution so short simulations are unbiased.
    in_scene_ = rng_.chance(p_.tor);
  }
}

core::FilteredAt MarkovOutcomes::next() {
  // State transition first, then emission from the new state.
  if (in_scene_) {
    if (rng_.chance(p_leave_)) in_scene_ = false;
  } else {
    if (rng_.chance(p_enter_)) in_scene_ = true;
  }
  const double sdd = in_scene_ ? p_.sdd_in : p_.sdd_out;
  const double snm = in_scene_ ? p_.snm_in : p_.snm_out;
  const double ty = in_scene_ ? p_.ty_in : p_.ty_out;
  if (!rng_.chance(sdd)) return core::FilteredAt::kSdd;
  if (!rng_.chance(snm)) return core::FilteredAt::kSnm;
  if (!rng_.chance(ty)) return core::FilteredAt::kTyolo;
  return core::FilteredAt::kNone;
}

}  // namespace ffsva::sim
