#include "nn/optim.hpp"

namespace ffsva::nn {

Sgd::Sgd(std::vector<Param> params, Options opts)
    : params_(std::move(params)), opts_(opts) {
  velocity_.reserve(params_.size());
  for (const auto& p : params_) velocity_.push_back(Tensor::zeros_like(*p.value));
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Tensor& v = velocity_[i];
    Tensor& val = *params_[i].value;
    Tensor& g = *params_[i].grad;
    for (std::size_t j = 0; j < val.size(); ++j) {
      const float grad = g[j] + static_cast<float>(opts_.weight_decay) * val[j];
      v[j] = static_cast<float>(opts_.momentum) * v[j] - static_cast<float>(opts_.lr) * grad;
      val[j] += v[j];
    }
    g.fill(0.0f);
  }
}

}  // namespace ffsva::nn
