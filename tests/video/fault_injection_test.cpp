// FaultInjectingSource: deterministic replay of camera-fleet failure modes
// (video/fault_injection.hpp). The contract under test is the one the
// engine's prefetch loop depends on: transient errors leave the stream
// position untouched, fatal errors latch until restart(), premature EOS is
// permanent, and a (plan, seed) pair replays the identical fault sequence.
#include "video/fault_injection.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace ffsva::video {
namespace {

/// Yields `count` tiny frames with sequential indices and a pixel pattern
/// derived from the index, so tests can detect skipped or corrupt frames.
class CountingSource final : public FrameSource {
 public:
  explicit CountingSource(std::int64_t count) : count_(count) {}

  std::optional<Frame> next() override {
    if (next_ >= count_) return std::nullopt;
    Frame f;
    f.index = next_;
    f.image = image::Image(4, 4, 1, static_cast<std::uint8_t>(next_ & 0x7f));
    ++next_;
    return f;
  }
  std::int64_t total_frames() const override { return count_; }

 private:
  std::int64_t count_;
  std::int64_t next_ = 0;
};

/// Drains the wrapper, retrying transient errors and restarting after fatal
/// ones (a miniature of the engine's prefetch loop), and returns the frame
/// indices actually delivered.
std::vector<std::int64_t> drain(FrameSource& src) {
  std::vector<std::int64_t> got;
  for (;;) {
    try {
      auto f = src.next();
      if (!f) break;
      got.push_back(f->index);
    } catch (const SourceError& e) {
      if (!e.transient() && !src.restart()) break;
    }
  }
  return got;
}

TEST(FaultInjection, CleanPlanIsTransparent) {
  FaultInjectingSource src(std::make_unique<CountingSource>(10), FaultPlan{}, 1);
  const auto got = drain(src);
  ASSERT_EQ(got.size(), 10u);
  for (std::int64_t i = 0; i < 10; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(src.log().transient_errors, 0u);
  EXPECT_EQ(src.log().corrupted_frames, 0u);
}

TEST(FaultInjection, TransientErrorLeavesPositionUnchanged) {
  FaultPlan plan;
  plan.transient_at = 3;
  FaultInjectingSource src(std::make_unique<CountingSource>(6), plan, 1);
  std::vector<std::int64_t> got;
  int thrown = 0;
  for (int call = 0; call < 16 && got.size() < 6; ++call) {
    try {
      auto f = src.next();
      if (!f) break;
      got.push_back(f->index);
    } catch (const SourceError& e) {
      EXPECT_TRUE(e.transient());
      ++thrown;
    }
  }
  EXPECT_EQ(thrown, 1);
  // Retrying after the throw resumes exactly where the stream was: every
  // frame delivered once, none skipped.
  ASSERT_EQ(got.size(), 6u);
  for (std::int64_t i = 0; i < 6; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(src.log().transient_errors, 1u);
}

TEST(FaultInjection, FatalLatchesUntilRestart) {
  FaultPlan plan;
  plan.fatal_at = 2;
  FaultInjectingSource src(std::make_unique<CountingSource>(5), plan, 1);
  EXPECT_EQ(src.next()->index, 0);
  EXPECT_EQ(src.next()->index, 1);
  EXPECT_THROW(src.next(), SourceError);
  EXPECT_THROW(src.next(), SourceError);  // latched: still dead
  ASSERT_TRUE(src.restart());
  // Revived at the pre-fault position — the fatal call consumed no frame.
  const auto got = drain(src);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got.front(), 2);
  EXPECT_EQ(got.back(), 4);
  EXPECT_EQ(src.log().fatal_errors, 1u);
}

TEST(FaultInjection, NonRestartablePlanStaysDead) {
  FaultPlan plan;
  plan.fatal_at = 0;
  plan.restartable = false;
  FaultInjectingSource src(std::make_unique<CountingSource>(5), plan, 1);
  EXPECT_THROW(src.next(), SourceError);
  EXPECT_FALSE(src.restart());
  EXPECT_THROW(src.next(), SourceError);
}

TEST(FaultInjection, PrematureEosIsPermanent) {
  FaultPlan plan;
  plan.premature_eos_at = 3;
  FaultInjectingSource src(std::make_unique<CountingSource>(10), plan, 1);
  const auto got = drain(src);
  ASSERT_EQ(got.size(), 3u);  // frames 0..2, then the stream ends early
  EXPECT_FALSE(src.next().has_value());  // and stays ended
  EXPECT_EQ(src.log().premature_eos, 1u);
}

TEST(FaultInjection, TruncatedFramesAreEmptyButKeepProvenance) {
  FaultPlan plan;
  plan.p_truncated = 1.0;  // every frame
  FaultInjectingSource src(std::make_unique<CountingSource>(3), plan, 1);
  auto f = src.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_TRUE(f->image.empty());
  EXPECT_EQ(f->index, 0);  // provenance survives the truncation
  EXPECT_EQ(src.log().truncated_frames, 1u);
}

TEST(FaultInjection, CorruptFramesKeepTheirShape) {
  FaultPlan plan;
  plan.p_corrupt = 1.0;
  FaultInjectingSource src(std::make_unique<CountingSource>(3), plan, 1);
  auto f = src.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->image.width(), 4);
  EXPECT_EQ(f->image.height(), 4);
  EXPECT_EQ(src.log().corrupted_frames, 1u);
}

TEST(FaultInjection, StallSetsTheCompletionLatch) {
  FaultPlan plan;
  plan.stall_at = 1;
  plan.stall_ms = 10;
  plan.stall_done = std::make_shared<std::atomic<bool>>(false);
  FaultInjectingSource src(std::make_unique<CountingSource>(4), plan, 1);
  EXPECT_EQ(src.next()->index, 0);
  EXPECT_FALSE(plan.stall_done->load());
  EXPECT_EQ(src.next()->index, 1);  // the stalled call still yields its frame
  EXPECT_TRUE(plan.stall_done->load());
  EXPECT_EQ(src.log().stalls, 1u);
}

// Same (plan, seed) → identical fault sequence and identical delivery;
// a different seed draws a different stochastic sequence.
TEST(FaultInjection, SeededRunsAreDeterministic) {
  FaultPlan plan;
  plan.p_transient = 0.2;
  plan.p_truncated = 0.15;
  plan.p_corrupt = 0.1;

  const auto run = [&](std::uint64_t seed) {
    FaultInjectingSource src(std::make_unique<CountingSource>(64), plan, seed);
    const auto got = drain(src);
    return std::make_tuple(got, src.log().transient_errors,
                           src.log().truncated_frames, src.log().corrupted_frames);
  };

  const auto a = run(99);
  const auto b = run(99);
  EXPECT_EQ(a, b);

  // Retried transients lose nothing: all 64 frames always arrive in order.
  const auto& [frames, transients, truncated, corrupted] = a;
  ASSERT_EQ(frames.size(), 64u);
  for (std::int64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(frames[static_cast<std::size_t>(i)], i);
  }
  EXPECT_GT(transients + truncated + corrupted, 0u) << "plan injected nothing";

  const auto c = run(7);
  EXPECT_NE(a, c) << "different seeds should draw different fault sequences";
}

}  // namespace
}  // namespace ffsva::video
