#include "video/scene.hpp"

#include <gtest/gtest.h>

#include "video/profiles.hpp"

namespace ffsva::video {
namespace {

SceneConfig small_car_config() {
  SceneConfig c = jackson_profile();
  c.width = 160;
  c.height = 120;
  return c;
}

TEST(SceneSimulator, DeterministicRendering) {
  const SceneConfig cfg = small_car_config();
  SceneSimulator a(cfg, 42, 500);
  SceneSimulator b(cfg, 42, 500);
  for (std::int64_t i : {0, 100, 250, 499}) {
    EXPECT_EQ(a.render(i).image, b.render(i).image) << "frame " << i;
  }
}

TEST(SceneSimulator, DifferentSeedsDiffer) {
  const SceneConfig cfg = small_car_config();
  SceneSimulator a(cfg, 1, 100);
  SceneSimulator b(cfg, 2, 100);
  EXPECT_FALSE(a.render(0).image == b.render(0).image);
}

TEST(SceneSimulator, RenderIsPureFunctionOfIndex) {
  const SceneConfig cfg = small_car_config();
  SceneSimulator sim(cfg, 7, 300);
  const Frame f1 = sim.render(123);
  sim.render(5);
  sim.render(299);
  const Frame f2 = sim.render(123);
  EXPECT_EQ(f1.image, f2.image);
  EXPECT_EQ(f1.gt.objects.size(), f2.gt.objects.size());
}

TEST(SceneSimulator, FrameMetadata) {
  const SceneConfig cfg = small_car_config();
  SceneSimulator sim(cfg, 7, 100);
  const Frame f = sim.render(60, /*stream_id=*/9);
  EXPECT_EQ(f.index, 60);
  EXPECT_EQ(f.stream_id, 9);
  EXPECT_NEAR(f.pts_sec, 2.0, 1e-9);
  EXPECT_EQ(f.image.width(), cfg.width);
  EXPECT_EQ(f.image.height(), cfg.height);
  EXPECT_EQ(f.image.channels(), 3);
}

TEST(SceneSimulator, PlannedTorTracksRequested) {
  for (double tor : {0.1, 0.3, 0.6}) {
    SceneConfig cfg = small_car_config();
    cfg.tor = tor;
    SceneSimulator sim(cfg, 11, 6000);
    EXPECT_NEAR(sim.planned_tor(), tor, 0.02) << "tor " << tor;
  }
}

TEST(SceneSimulator, TorZeroHasNoIntervals) {
  SceneConfig cfg = small_car_config();
  cfg.tor = 0.0;
  SceneSimulator sim(cfg, 3, 1000);
  EXPECT_TRUE(sim.intervals().empty());
  EXPECT_EQ(sim.planned_tor(), 0.0);
}

TEST(SceneSimulator, TorOneCoversEverything) {
  SceneConfig cfg = small_car_config();
  cfg.tor = 1.0;
  SceneSimulator sim(cfg, 3, 1000);
  EXPECT_NEAR(sim.planned_tor(), 1.0, 0.01);
}

TEST(SceneSimulator, IntervalsAreDisjointAndOrdered) {
  SceneConfig cfg = small_car_config();
  cfg.tor = 0.4;
  SceneSimulator sim(cfg, 13, 5000);
  std::int64_t prev_end = 0;
  for (const auto& iv : sim.intervals()) {
    EXPECT_GE(iv.begin, prev_end);
    EXPECT_GT(iv.end, iv.begin);
    EXPECT_LE(iv.end, 5000);
    EXPECT_GE(iv.num_objects, 1);
    EXPECT_LE(iv.num_objects, cfg.max_objects);
    prev_end = iv.end;
  }
}

TEST(SceneSimulator, TargetsPresentInsideIntervals) {
  SceneConfig cfg = small_car_config();
  cfg.tor = 0.3;
  cfg.distractor_rate = 0.0;
  SceneSimulator sim(cfg, 17, 2000);
  ASSERT_FALSE(sim.intervals().empty());
  int checked = 0;
  for (const auto& iv : sim.intervals()) {
    // Probe the middle of each interval: the spanning car must be visible.
    const auto mid = (iv.begin + iv.end) / 2;
    const Frame f = sim.render(mid);
    EXPECT_TRUE(f.gt.any_target(ObjectClass::kCar))
        << "interval [" << iv.begin << "," << iv.end << ") mid " << mid;
    ++checked;
  }
  EXPECT_GT(checked, 2);
}

TEST(SceneSimulator, GapsMostlyFreeOfTargets) {
  SceneConfig cfg = small_car_config();
  cfg.tor = 0.2;
  cfg.distractor_rate = 0.0;
  SceneSimulator sim(cfg, 19, 2000);
  // Probe a frame well inside a gap.
  std::int64_t prev_end = 0;
  int gap_checks = 0;
  for (const auto& iv : sim.intervals()) {
    if (iv.begin - prev_end > 40) {
      const Frame f = sim.render((prev_end + iv.begin) / 2);
      EXPECT_FALSE(f.gt.any_target(ObjectClass::kCar));
      ++gap_checks;
    }
    prev_end = iv.end;
  }
  EXPECT_GT(gap_checks, 0);
}

TEST(SceneSimulator, ObjectsMoveBetweenFrames) {
  SceneConfig cfg = small_car_config();
  cfg.tor = 1.0;
  cfg.stopline_fraction = 0.0;
  cfg.noise_amp = 0.0;
  cfg.lighting_amp = 0.0;
  SceneSimulator sim(cfg, 23, 600);
  const Frame a = sim.render(200);
  const Frame b = sim.render(230);
  ASSERT_FALSE(a.gt.objects.empty());
  ASSERT_FALSE(b.gt.objects.empty());
  // The spanning object should have advanced.
  bool moved = false;
  for (const auto& oa : a.gt.objects) {
    for (const auto& ob : b.gt.objects) {
      if (oa.object_id == ob.object_id &&
          oa.visible_box.cx() != ob.visible_box.cx()) {
        moved = true;
      }
    }
  }
  EXPECT_TRUE(moved);
}

TEST(SceneSimulator, VisibleFractionIsSane) {
  SceneConfig cfg = small_car_config();
  cfg.tor = 0.5;
  SceneSimulator sim(cfg, 29, 1500);
  for (std::int64_t i = 0; i < 1500; i += 37) {
    for (const auto& o : sim.render(i).gt.objects) {
      EXPECT_GT(o.visible_fraction, 0.0);
      EXPECT_LE(o.visible_fraction, 1.0 + 1e-9);
      EXPECT_FALSE(o.visible_box.empty());
      EXPECT_GE(o.visible_box.x0, 0);
      EXPECT_LE(o.visible_box.x1, cfg.width);
    }
  }
}

TEST(SceneSimulator, PersonSceneRendersCrowds) {
  SceneConfig cfg = coral_profile();
  cfg.width = 192;
  cfg.height = 108;
  cfg.tor = 1.0;
  SceneSimulator sim(cfg, 31, 400);
  int max_persons = 0;
  for (std::int64_t i = 0; i < 400; i += 25) {
    max_persons = std::max(max_persons, sim.render(i).gt.count(ObjectClass::kPerson));
  }
  EXPECT_GE(max_persons, 2) << "crowds should form at TOR 1.0";
}

TEST(SceneSimulator, StopLineStallKeepsCarPartiallyVisible) {
  SceneConfig cfg = small_car_config();
  cfg.tor = 0.6;
  cfg.stopline_fraction = 1.0;  // force stalls
  cfg.stall_frames = 50;
  cfg.mean_scene_len_frames = 150;
  SceneSimulator sim(cfg, 37, 2000);
  bool saw_partial_stall = false;
  for (const auto& iv : sim.intervals()) {
    if (iv.end - iv.begin < 90) continue;
    // During the stall window (starts ~4 frames in), the spanning car is
    // only partially visible, and stationary.
    const Frame f1 = sim.render(iv.begin + 10);
    const Frame f2 = sim.render(iv.begin + 30);
    for (const auto& o1 : f1.gt.objects) {
      if (o1.visible_fraction < 0.6) {
        for (const auto& o2 : f2.gt.objects) {
          if (o2.object_id == o1.object_id &&
              o2.visible_box.cx() == o1.visible_box.cx()) {
            saw_partial_stall = true;
          }
        }
      }
    }
  }
  EXPECT_TRUE(saw_partial_stall);
}

TEST(SceneSimulator, BackgroundIsStaticWithoutDynamics) {
  SceneConfig cfg = small_car_config();
  cfg.tor = 0.0;
  cfg.noise_amp = 0.0;
  cfg.lighting_amp = 0.0;
  cfg.dynamic_texture = 0.0;
  cfg.distractor_rate = 0.0;
  SceneSimulator sim(cfg, 41, 100);
  EXPECT_EQ(sim.render(3).image, sim.render(77).image);
  EXPECT_EQ(sim.render(3).image, sim.background());
}

TEST(SceneSimulator, NoiseChangesEveryFrame) {
  SceneConfig cfg = small_car_config();
  cfg.tor = 0.0;
  cfg.noise_amp = 3.0;
  cfg.distractor_rate = 0.0;
  SceneSimulator sim(cfg, 43, 100);
  EXPECT_FALSE(sim.render(1).image == sim.render(2).image);
}

TEST(ObjectTrack, LinearPositionInterpolates) {
  ObjectTrack t;
  t.enter = 0;
  t.exit = 100;
  t.x_start = 0.0;
  t.x_end = 100.0;
  t.y = 50.0;
  double cx, cy;
  t.position(0, cx, cy);
  EXPECT_NEAR(cx, 0.0, 1e-9);
  t.position(50, cx, cy);
  EXPECT_NEAR(cx, 50.0, 1e-9);
  EXPECT_NEAR(cy, 50.0, 1e-9);
}

TEST(ObjectTrack, StallHoldsPosition) {
  ObjectTrack t;
  t.enter = 0;
  t.exit = 100;
  t.x_start = 0.0;
  t.x_end = 100.0;
  t.y = 10.0;
  t.stall_start = 20;
  t.stall_len = 30;
  t.stall_x = 15.0;
  double cx, cy;
  t.position(25, cx, cy);
  EXPECT_NEAR(cx, 15.0, 1e-9);
  t.position(49, cx, cy);
  EXPECT_NEAR(cx, 15.0, 1e-9);
  t.position(99, cx, cy);
  EXPECT_GT(cx, 90.0);
}

}  // namespace
}  // namespace ffsva::video
