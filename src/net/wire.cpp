#include "net/wire.hpp"

#include <cstring>
#include <sstream>

#include "runtime/binary_io.hpp"

namespace ffsva::net {

namespace {

constexpr std::size_t kHeaderLen = 4 + 2 + 2 + 4;

/// Header fields in wire order. Serialized field-by-field (never as one
/// struct) so padding can't leak onto the wire; byte order is the host's —
/// the control plane spans one box or a homogeneous LAN by design.
struct Header {
  std::uint32_t magic = 0;
  std::uint16_t version = 0;
  std::uint16_t type = 0;
  std::uint32_t len = 0;
};

Header parse_header(const char* p) {
  Header h;
  std::memcpy(&h.magic, p, 4);
  std::memcpy(&h.version, p + 4, 2);
  std::memcpy(&h.type, p + 6, 2);
  std::memcpy(&h.len, p + 8, 4);
  return h;
}

}  // namespace

std::string encode_frame(MsgType type, std::string_view payload) {
  std::ostringstream os;
  const std::uint32_t magic = kWireMagic;
  const std::uint16_t version = kWireVersion;
  const auto t = static_cast<std::uint16_t>(type);
  const auto len = static_cast<std::uint32_t>(payload.size());
  runtime::write_pod(os, &magic);
  runtime::write_pod(os, &version);
  runtime::write_pod(os, &t);
  runtime::write_pod(os, &len);
  os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  return std::move(os).str();
}

bool FrameDecoder::feed(const char* data, std::size_t len,
                        std::vector<WireFrame>& out) {
  if (error_ != Error::kNone) return false;
  buf_.append(data, len);
  std::size_t off = 0;
  while (buf_.size() - off >= kHeaderLen) {
    const Header h = parse_header(buf_.data() + off);
    if (h.magic != kWireMagic) {
      error_ = Error::kBadMagic;
      break;
    }
    if (h.version != kWireVersion) {
      error_ = Error::kBadVersion;
      break;
    }
    if (h.len > kMaxFramePayload) {
      error_ = Error::kOversized;
      break;
    }
    if (buf_.size() - off - kHeaderLen < h.len) break;  // partial frame
    WireFrame f;
    f.type = static_cast<MsgType>(h.type);
    f.payload.assign(buf_, off + kHeaderLen, h.len);
    out.push_back(std::move(f));
    off += kHeaderLen + h.len;
  }
  buf_.erase(0, off);
  return error_ == Error::kNone;
}

const char* to_string(FrameDecoder::Error e) {
  switch (e) {
    case FrameDecoder::Error::kNone: return "none";
    case FrameDecoder::Error::kBadMagic: return "bad-magic";
    case FrameDecoder::Error::kBadVersion: return "bad-version";
    case FrameDecoder::Error::kOversized: return "oversized";
  }
  return "?";
}

}  // namespace ffsva::net
