// Dense float tensor in NCHW layout.
//
// This is the numeric substrate for the stream-specialized network model
// (SNM): a 3-layer CNN (CONV, CONV, FC — paper Section 3.2.2) trained per
// stream with SGD (Section 2.1 / 4.1). The implementation favours clarity
// and testability (every layer is verified against numerical gradients)
// over raw speed; SNM inputs are 50x50, so naive im2col+GEMM is microseconds
// per frame.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <iosfwd>
#include <vector>

namespace ffsva::nn {

class Tensor {
 public:
  Tensor() = default;
  Tensor(int n, int c, int h, int w)
      : shape_{n, c, h, w},
        data_(static_cast<std::size_t>(n) * c * h * w, 0.0f) {
    assert(n >= 0 && c >= 0 && h >= 0 && w >= 0);
  }

  static Tensor zeros_like(const Tensor& t) {
    return Tensor(t.n(), t.c(), t.h(), t.w());
  }

  int n() const { return shape_[0]; }
  int c() const { return shape_[1]; }
  int h() const { return shape_[2]; }
  int w() const { return shape_[3]; }
  const std::array<int, 4>& shape() const { return shape_; }
  bool same_shape(const Tensor& o) const { return shape_ == o.shape_; }

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& at(int n, int c, int h, int w) {
    return data_[index(n, c, h, w)];
  }
  float at(int n, int c, int h, int w) const {
    return data_[index(n, c, h, w)];
  }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  void fill(float v) { std::fill(data_.begin(), data_.end(), v); }

  /// Reshape in place, reusing the existing allocation when capacity
  /// allows — repeated resizes to previously seen sizes are free, which is
  /// what the zero-allocation inference path relies on. Element contents
  /// are unspecified after a size change.
  void resize(int n, int c, int h, int w) {
    assert(n >= 0 && c >= 0 && h >= 0 && w >= 0);
    shape_ = {n, c, h, w};
    data_.resize(static_cast<std::size_t>(n) * c * h * w);
  }

  /// In-place axpy: this += alpha * other. Shapes must match.
  void axpy(float alpha, const Tensor& other);

  /// Scale all elements.
  void scale(float alpha);

  double sum() const;
  double abs_max() const;

 private:
  std::size_t index(int n, int c, int h, int w) const {
    assert(n >= 0 && n < shape_[0] && c >= 0 && c < shape_[1] && h >= 0 &&
           h < shape_[2] && w >= 0 && w < shape_[3]);
    return ((static_cast<std::size_t>(n) * shape_[1] + c) * shape_[2] + h) * shape_[3] + w;
  }

  std::array<int, 4> shape_{0, 0, 0, 0};
  std::vector<float> data_;
};

/// Binary (de)serialization of raw values; shape must already match on load.
void write_tensor(std::ostream& os, const Tensor& t);
void read_tensor_values(std::istream& is, Tensor& t);

}  // namespace ffsva::nn
