// Seeded violation for ffsva_lint --self-test: a raw std::thread outside
// src/runtime/ with no thread-ok marker. The self-test also scans this file
// under a pretend src/runtime/ path, where it must pass.
#include <thread>

void fixture_spawn() {
  std::thread t([] {});
  t.join();
}
