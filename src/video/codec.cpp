#include "video/codec.hpp"

#include <cassert>
#include <stdexcept>

namespace ffsva::video {

namespace {

void put_varint(std::vector<std::uint8_t>& out, std::size_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::size_t get_varint(const std::uint8_t* data, std::size_t size, std::size_t& pos) {
  std::size_t v = 0;
  int shift = 0;
  for (;;) {
    if (pos >= size) throw std::runtime_error("truncated varint in bitstream");
    const std::uint8_t b = data[pos++];
    v |= static_cast<std::size_t>(b & 0x7f) << shift;
    if (!(b & 0x80)) return v;
    shift += 7;
  }
}

// Token stream: 0x00 <varint n>            -> n zero residuals
//               0x01 <varint n> <n bytes>  -> n literal residuals
void rle_encode(std::vector<std::uint8_t>& out, const std::uint8_t* residual,
                std::size_t n) {
  std::size_t i = 0;
  while (i < n) {
    if (residual[i] == 0) {
      std::size_t j = i;
      while (j < n && residual[j] == 0) ++j;
      out.push_back(0x00);
      put_varint(out, j - i);
      i = j;
    } else {
      std::size_t j = i;
      // A literal run ends at a "long enough" zero run; short zero gaps are
      // cheaper to carry as literals than to break the run for.
      while (j < n && !(residual[j] == 0 && j + 3 < n && residual[j + 1] == 0 &&
                        residual[j + 2] == 0 && residual[j + 3] == 0)) {
        ++j;
      }
      out.push_back(0x01);
      put_varint(out, j - i);
      out.insert(out.end(), residual + i, residual + j);
      i = j;
    }
  }
}

void rle_decode_apply(const std::uint8_t* packet, std::size_t packet_size,
                      std::uint8_t* pixels, std::size_t n) {
  std::size_t pos = 0;
  std::size_t i = 0;
  while (pos < packet_size) {
    const std::uint8_t tag = packet[pos++];
    const std::size_t run = get_varint(packet, packet_size, pos);
    if (i + run > n) throw std::runtime_error("residual overruns frame");
    if (tag == 0x00) {
      i += run;  // residual 0: pixels unchanged
    } else if (tag == 0x01) {
      if (pos + run > packet_size) throw std::runtime_error("truncated literal run");
      for (std::size_t k = 0; k < run; ++k) {
        pixels[i + k] = static_cast<std::uint8_t>(pixels[i + k] + packet[pos + k]);
      }
      pos += run;
      i += run;
    } else {
      throw std::runtime_error("bad token tag in bitstream");
    }
  }
  if (i != n) throw std::runtime_error("packet does not cover the frame");
}

}  // namespace

StoredVideo StoredVideo::encode(const std::vector<Frame>& frames, int keyframe_interval,
                                int deadzone) {
  StoredVideo v;
  if (frames.empty()) return v;
  v.width_ = frames[0].image.width();
  v.height_ = frames[0].image.height();
  v.channels_ = frames[0].image.channels();
  v.keyframe_interval_ = keyframe_interval < 1 ? 1 : keyframe_interval;

  const std::size_t n = frames[0].image.size_bytes();
  std::vector<std::uint8_t> residual(n);
  // Predict from the *reconstruction*, exactly as the decoder will, so the
  // deadzone never accumulates drift.
  image::Image recon(v.width_, v.height_, v.channels_);  // zero frame

  for (std::size_t f = 0; f < frames.size(); ++f) {
    const auto& img = frames[f].image;
    if (!img.same_shape(frames[0].image)) {
      throw std::invalid_argument("all frames in a stored video must share one shape");
    }
    const bool key = (f % static_cast<std::size_t>(v.keyframe_interval_)) == 0;
    if (key) recon.fill(0);
    const std::uint8_t* cur = img.data();
    std::uint8_t* rec = recon.data();
    for (std::size_t i = 0; i < n; ++i) {
      const int d = static_cast<int>(cur[i]) - static_cast<int>(rec[i]);
      // Keyframes stay exact so seeks reset any deadzone error.
      if (!key && d != 0 && d >= -deadzone && d <= deadzone) {
        residual[i] = 0;
      } else {
        residual[i] = static_cast<std::uint8_t>(d);
        rec[i] = cur[i];
      }
    }
    v.offsets_.push_back(v.bitstream_.size());
    rle_encode(v.bitstream_, residual.data(), n);
    v.sizes_.push_back(v.bitstream_.size() - v.offsets_.back());
    v.gt_.push_back(frames[f].gt);
    v.pts_.push_back(frames[f].pts_sec);
  }
  return v;
}

CodecStats StoredVideo::stats() const {
  CodecStats s;
  s.raw_bytes = static_cast<std::size_t>(width_) * height_ * channels_ * offsets_.size();
  s.encoded_bytes = bitstream_.size();
  return s;
}

VideoReader::VideoReader(const StoredVideo& video, int stream_id)
    : video_(video), stream_id_(stream_id),
      previous_(video.width(), video.height(), video.channels()) {}

void VideoReader::decode_into(std::int64_t index) {
  const bool key = (index % video_.keyframe_interval_) == 0;
  if (key) previous_.fill(0);
  rle_decode_apply(video_.bitstream_.data() + video_.offsets_[static_cast<std::size_t>(index)],
                   video_.sizes_[static_cast<std::size_t>(index)], previous_.data(),
                   previous_.size_bytes());
}

std::optional<Frame> VideoReader::next() {
  if (next_index_ >= video_.frame_count()) return std::nullopt;
  decode_into(next_index_);
  Frame f;
  f.image = previous_;
  f.stream_id = stream_id_;
  f.index = next_index_;
  f.pts_sec = video_.pts_[static_cast<std::size_t>(next_index_)];
  f.gt = video_.gt_[static_cast<std::size_t>(next_index_)];
  ++next_index_;
  return f;
}

void VideoReader::seek(std::int64_t index) {
  if (index < 0 || index >= video_.frame_count()) {
    throw std::out_of_range("seek beyond stored video");
  }
  const std::int64_t key = index - (index % video_.keyframe_interval_);
  for (std::int64_t i = key; i < index; ++i) decode_into(i);
  next_index_ = index;
}

}  // namespace ffsva::video
