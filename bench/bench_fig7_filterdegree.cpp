// Figure 7 — throughput (surviving frames) and error rate as a function of
// FilterDegree.
//
// Paper: (a) car detection, TOR 0.197 — raising FilterDegree filters more
// frames whose SNM score lies between c_low and c_high, trading output
// volume against false negatives; (b) person detection, TOR 1.000 — the
// aquarium is at tourist peak, every frame contains persons, so
// FilterDegree has almost no effect.
//
// Method: real filters, one recorded trace per workload, FilterDegree swept
// as a pure threshold over the trace (t_pre = (c_high-c_low)*FD + c_low).
#include "common.hpp"

using namespace ffsva;

static void sweep(const char* title, bench::CalibratedStream& s) {
  const double c_low = s.models.snm_report.c_low;
  const double c_high = s.models.snm_report.c_high;
  std::printf("\n%s   (c_low=%.2f c_high=%.2f, %zu frames)\n", title, c_low, c_high,
              s.trace.size());
  std::printf("%-13s %14s %12s %12s\n", "FilterDegree", "output frames",
              "output rate", "error rate");
  bench::print_rule();
  for (double fd : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    core::CascadeThresholds t = core::thresholds_of(s.models, 1);
    t.t_pre = (c_high - c_low) * fd + c_low;
    const auto stats = core::evaluate_trace(s.trace, t);
    std::printf("%-13.1f %14lld %12.3f %12.4f\n", fd,
                static_cast<long long>(stats.output), stats.output_rate,
                stats.error_rate);
  }
}

int main() {
  bench::print_header("FIGURE 7 -- output frames & error rate vs FilterDegree");

  {
    // The FilterDegree trade-off only exists while SNM scores populate the
    // (c_low, c_high) band — i.e. while frames are genuinely ambiguous to
    // the model. A clean synthetic stream separates almost perfectly
    // (every score at ~0 or ~1), which flattens the sweep; a noisy,
    // lighting-unstable camera with a short calibration window reproduces
    // the paper's operating regime.
    auto cfg = video::jackson_profile();
    cfg.noise_amp = 5.0;        // elevated sensor noise (evening gain)
    cfg.lighting_amp = 0.06;    // noticeable illumination swings
    cfg.dynamic_texture = 0.12; // moving shadows on the roadway
    auto s = bench::build_stream(cfg, 0.197, 61, 1000, 5000, 4);
    sweep("(a) car detection, TOR ~= 0.197 (noisy low-light camera)", s);
    std::printf("(paper: output falls and error rises as FilterDegree -> 1)\n");
  }
  {
    auto cfg = video::coral_profile();
    cfg.width = 256;
    cfg.height = 144;
    auto s = bench::build_stream(cfg, 1.0, 62, 1200, 5000, 8);
    sweep("(b) person detection, TOR = 1.000", s);
    std::printf("(paper: FilterDegree has little effect -- every frame has persons,\n"
                " so SNM scores sit above c_high and t_pre cannot filter them)\n");
  }
  return 0;
}
