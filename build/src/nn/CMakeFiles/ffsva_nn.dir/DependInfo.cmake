
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/compress.cpp" "src/nn/CMakeFiles/ffsva_nn.dir/compress.cpp.o" "gcc" "src/nn/CMakeFiles/ffsva_nn.dir/compress.cpp.o.d"
  "/root/repo/src/nn/gemm.cpp" "src/nn/CMakeFiles/ffsva_nn.dir/gemm.cpp.o" "gcc" "src/nn/CMakeFiles/ffsva_nn.dir/gemm.cpp.o.d"
  "/root/repo/src/nn/layers.cpp" "src/nn/CMakeFiles/ffsva_nn.dir/layers.cpp.o" "gcc" "src/nn/CMakeFiles/ffsva_nn.dir/layers.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/ffsva_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/ffsva_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/optim.cpp" "src/nn/CMakeFiles/ffsva_nn.dir/optim.cpp.o" "gcc" "src/nn/CMakeFiles/ffsva_nn.dir/optim.cpp.o.d"
  "/root/repo/src/nn/tensor.cpp" "src/nn/CMakeFiles/ffsva_nn.dir/tensor.cpp.o" "gcc" "src/nn/CMakeFiles/ffsva_nn.dir/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/ffsva_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
