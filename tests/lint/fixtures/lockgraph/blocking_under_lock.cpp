// Fixture: blocking calls under a held lock. The unmarked sites must be
// flagged; the blocking-ok-marked one must not.
#include <chrono>
#include <thread>

#include "runtime/annotations.hpp"

using ffsva::runtime::Mutex;
using ffsva::runtime::MutexLock;

struct Peer {
  bool send(int);
};

struct Relay {
  Mutex mu_;
  Peer peer_;

  void forward_bad(int v) {
    MutexLock lk(mu_);
    peer_.send(v);  // socket send while holding mu_: flagged
  }

  void nap_bad() {
    MutexLock lk(mu_);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  void forward_ok(int v) {
    MutexLock lk(mu_);
    // blocking-ok: loopback control socket, bounded 5 ms send buffer
    peer_.send(v);
  }
};
