# Empty dependencies file for bench_micro_filters.
# This may be replaced when dependencies are built.
