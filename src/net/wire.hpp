// Length-prefixed binary framing for the cluster control plane
// (DESIGN.md §15).
//
// Every frame on the wire is
//
//     u32 magic 'FFSV' | u16 version | u16 type | u32 payload_len | payload
//
// (little-endian, via runtime/binary_io.hpp — the one audited
// reinterpret_cast site in the tree). The decoder is incremental: feed it
// whatever bytes arrived and it yields zero or more complete frames,
// holding the remainder. Garbage (bad magic), a version the peer does not
// speak, and frames past the 16 MiB cap are hard errors — the connection is
// byte-synchronized or it is dead; there is no resync scan.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ffsva::net {

inline constexpr std::uint32_t kWireMagic = 0x46465356u;  // "FFSV"
inline constexpr std::uint16_t kWireVersion = 1;
/// Payload cap. Snapshots are ~100 B/stream, specs are smaller; anything
/// near this bound is a corrupt or hostile length field, not a real frame.
inline constexpr std::uint32_t kMaxFramePayload = 16u << 20;

/// Control-plane message types (the payload schemas live in
/// node/protocol.hpp; the wire layer only routes them).
enum class MsgType : std::uint16_t {
  kHello = 1,        ///< Client handshake: wire version + node identity.
  kHelloAck = 2,     ///< Server accepts the handshake.
  kHelloReject = 3,  ///< Server refuses (version mismatch); connection ends.
  kHeartbeat = 4,    ///< Liveness probe; echoed by the peer.
  kSnapshot = 5,     ///< Serialized core::InstanceSnapshot (telemetry).
  kAssignStream = 6, ///< Stream hand-off: spec + config + resume cursor.
  kAssignAck = 7,    ///< Node accepted the stream (engine id inside).
  kEndStream = 8,    ///< Scheduler cuts a stream's ingest on the node.
  kStreamEnded = 9,  ///< Node: stream quiesced; terminal counters inside.
  kDrain = 10,       ///< Stop accepting, finish what is running.
  kStop = 11,        ///< Graceful shutdown.
  kStopAck = 12,     ///< Node is about to exit.
  kResults = 13,     ///< Per-frame pass verdicts for a quiesced stream.
};

struct WireFrame {
  MsgType type = MsgType::kHeartbeat;
  std::string payload;
};

/// Encode one frame ready for Socket::send_all.
std::string encode_frame(MsgType type, std::string_view payload);

/// Incremental frame decoder (one per connection).
class FrameDecoder {
 public:
  enum class Error {
    kNone = 0,
    kBadMagic,    ///< Stream is not FFSV-framed (garbage).
    kBadVersion,  ///< Peer speaks a different wire version.
    kOversized,   ///< Length field exceeds kMaxFramePayload.
  };

  /// Consume `len` bytes; append every completed frame to `out`. Returns
  /// false once the decoder is in an error state (which is sticky — the
  /// connection must be dropped).
  bool feed(const char* data, std::size_t len, std::vector<WireFrame>& out);

  Error error() const { return error_; }

 private:
  std::string buf_;
  Error error_ = Error::kNone;
};

const char* to_string(FrameDecoder::Error e);

}  // namespace ffsva::net
