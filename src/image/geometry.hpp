// Axis-aligned boxes and the detection-geometry helpers (IoU, NMS) shared by
// the T-YOLO filter, the reference detector, and the accuracy evaluator.
#pragma once

#include <algorithm>
#include <vector>

namespace ffsva::image {

/// Axis-aligned box, half-open: [x0, x1) x [y0, y1).
struct Box {
  int x0 = 0, y0 = 0, x1 = 0, y1 = 0;

  int width() const { return std::max(0, x1 - x0); }
  int height() const { return std::max(0, y1 - y0); }
  long long area() const {
    return static_cast<long long>(width()) * height();
  }
  bool empty() const { return width() == 0 || height() == 0; }

  int cx() const { return (x0 + x1) / 2; }
  int cy() const { return (y0 + y1) / 2; }

  Box intersect(const Box& o) const {
    return Box{std::max(x0, o.x0), std::max(y0, o.y0), std::min(x1, o.x1),
               std::min(y1, o.y1)};
  }

  Box unite(const Box& o) const {
    if (empty()) return o;
    if (o.empty()) return *this;
    return Box{std::min(x0, o.x0), std::min(y0, o.y0), std::max(x1, o.x1),
               std::max(y1, o.y1)};
  }

  /// Clip to an image of the given size.
  Box clip(int w, int h) const {
    return Box{std::clamp(x0, 0, w), std::clamp(y0, 0, h), std::clamp(x1, 0, w),
               std::clamp(y1, 0, h)};
  }

  bool contains(int x, int y) const {
    return x >= x0 && x < x1 && y >= y0 && y < y1;
  }

  bool operator==(const Box&) const = default;
};

/// Intersection-over-union in [0, 1]. Empty boxes give 0.
double iou(const Box& a, const Box& b);

/// A box with a detection confidence (class handled by the caller).
struct ScoredBox {
  Box box;
  double score = 0.0;
};

/// Greedy non-maximum suppression: keep highest-scoring boxes, drop any box
/// whose IoU with an already-kept box exceeds `iou_threshold`.
/// Result is sorted by descending score. Stable for equal scores.
std::vector<ScoredBox> nms(std::vector<ScoredBox> boxes, double iou_threshold);

}  // namespace ffsva::image
