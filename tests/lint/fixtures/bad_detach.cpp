// Seeded violation for ffsva_lint --self-test: a naked .detach() outside
// supervision. thread-ok: the fixture needs a thread object to detach.
#include <thread>

void fixture_detach() {
  std::thread t([] {});
  t.detach();
}
