// FFS-VA system configuration (paper Sections 3-4).
#pragma once

#include <cstdint>

namespace ffsva::core {

/// SNM batching policy (Section 4.3.2 / Figures 9-10):
///  * kStatic   — always wait for a full BatchSize of frames (queues are
///                effectively unbounded; no feedback).
///  * kFeedback — feedback-queue mechanism alone: bounded queues throttle
///                upstream stages; SNM waits for min(BatchSize, queue
///                threshold) frames.
///  * kDynamic  — feedback plus dynamic batch: SNM takes whatever is
///                waiting, up to BatchSize, and never waits for more.
enum class BatchPolicy : std::uint8_t { kStatic = 0, kFeedback = 1, kDynamic = 2 };

const char* to_string(BatchPolicy p);

/// What the engine does with a frame whose model call threw (a corrupt
/// frame a filter cannot evaluate, a failing model):
///  * kDrop   — the frame terminates at the throwing stage, counted in the
///              stream's degraded_frames (conservative: never emit an
///              unvetted frame).
///  * kBypass — the frame skips the throwing filter and rides to the next
///              stage, counted as degraded (recall-preserving: a broken
///              cheap filter must not silence a stream; the later stages —
///              ultimately the reference model — still vet the frame).
enum class DegradePolicy : std::uint8_t { kDrop = 0, kBypass = 1 };

const char* to_string(DegradePolicy p);

/// How the GPU1 reference stage consumes its queue:
///  * kSingle   — one frame per detect() call (the paper's deployment; the
///                pre-batching engine behaviour).
///  * kBatch    — drain ref_q in cross-stream micro-batches of up to
///                ref_batch_size frames under the shared BatchPolicy and
///                evaluate them together (detect_batch), amortizing setup
///                and exploiting the device's internal parallelism.
///  * kCropPack — object-level consolidation (Rivas et al.): pack padded
///                candidate crops (T-YOLO's boxes) from many streams into
///                mosaic canvases and run the reference model once per
///                mosaic, falling back to full-frame detection for frames
///                whose candidate area exceeds crop_coverage_threshold.
enum class RefMode : std::uint8_t { kSingle = 0, kBatch = 1, kCropPack = 2 };

const char* to_string(RefMode m);

/// How the prefetch stage reconstructs frames from a stored bitstream:
///  * kFull   — decode every frame before SDD (default; bit-for-bit the
///              pre-hint engine behaviour).
///  * kHinted — consult the codec's per-frame residual summary first
///              (detect::CompressedSdd) and skip reconstruction entirely
///              for frames the hint proves SDD would drop, falling back to
///              full decode + pixel SDD for borderline frames
///              (DESIGN.md §13). Applies to offline streams whose source
///              carries hints; everything else decodes as kFull.
enum class DecodePolicy : std::uint8_t { kFull = 0, kHinted = 1 };

const char* to_string(DecodePolicy p);

struct FfsVaConfig {
  // --- user-facing event definition (Section 4.2) -------------------------
  double filter_degree = 0.5;   ///< Aggressiveness of SNM filtering in [0,1].
  int number_of_objects = 1;    ///< Minimum target count a frame must carry.

  // --- batching (Section 4.3.2) -------------------------------------------
  BatchPolicy batch_policy = BatchPolicy::kDynamic;
  int batch_size = 16;

  // --- feedback-queue thresholds (Section 4.3.1: "2, 10, and 2 as the
  // queue depth thresholds of the SDD queues, SNM queues, and T-YOLO
  // queues respectively") ---------------------------------------------------
  int sdd_queue_depth = 2;
  int snm_queue_depth = 10;
  int tyolo_queue_depth = 2;
  /// The reference model's input queue. The paper fixes only the three
  /// filter-queue thresholds above; this queue must be deep enough that a
  /// scene burst saturating the reference GPU does not block the single
  /// shared T-YOLO service (which would stall every stream at once).
  /// Depth 64 ≈ 1 s of reference-model work — the backlog that shows up
  /// as the multi-second latencies of Figure 3 near the stream limit.
  int ref_queue_depth = 64;

  /// Max frames T-YOLO extracts from one stream's queue per service cycle
  /// (inter-stream load balancing, Section 3.2.3 / 4.3.1).
  int num_tyolo = 4;

  // --- GPU1 reference stage: micro-batching + crop consolidation -----------
  /// How the reference loop consumes ref_q (see RefMode). kBatch preserves
  /// the single-frame path's outputs bit-for-bit (same per-frame model, same
  /// per-stream FIFO order, same drop-on-error contract); kCropPack trades a
  /// bounded detection delta for running the expensive model on candidate
  /// pixels only.
  RefMode ref_mode = RefMode::kBatch;
  /// Micro-batch cap for the reference stage (mirrors batch_size for SNM).
  int ref_batch_size = 8;
  /// Queue threshold handed to the reference DynamicBatcher (the analogue
  /// of snm_queue_depth under BatchPolicy::kFeedback). Bounded above by
  /// ref_queue_depth, which stays the physical queue capacity.
  int ref_queue_threshold = 16;
  /// Context padding (frame pixels) around each candidate box before crop
  /// extraction — gives the full-resolution segmentation the local
  /// neighbourhood the blur/morphology kernels need.
  int crop_pad = 6;
  /// Blank separation between packed crops (and to the canvas border) in
  /// mosaic pixels. Must exceed twice the blur radius so blur spill from two
  /// facing crops can never bridge a seam (detect/crop_pack.hpp).
  int crop_gutter = 7;
  /// Mosaic canvas edge (square canvases of crop_canvas_edge^2 pixels).
  int crop_canvas_edge = 256;
  /// Candidate-area fraction of a frame above which crop packing stops
  /// paying and the frame falls back to one full-frame detect call.
  double crop_coverage_threshold = 0.45;

  // --- engine sizing --------------------------------------------------------
  /// SDD worker-pool size. The engine runs a fixed pool of CPU workers over
  /// all streams' SDD queues (total thread count O(workers), not
  /// O(streams)); 0 = auto, which resolves to the FFSVA_THREADS compute
  /// parallelism capped by the stream count.
  int sdd_workers = 0;
  /// Frames one SDD worker processes from a claimed stream before
  /// rescanning: bounds how long a busy stream can monopolize a worker when
  /// streams outnumber workers.
  int sdd_run_length = 32;

  // --- ingest: codec-aware decode + worker pinning (DESIGN.md §13) ---------
  /// Compressed-domain fast path through prefetch (see DecodePolicy).
  DecodePolicy decode_policy = DecodePolicy::kFull;
  /// Conservative band of the hint decision, in (0, 1]: a hint may skip a
  /// frame only when its distance bracket stays below
  /// delta_diff * sdd_hint_relax, and pass one only above
  /// delta_diff / sdd_hint_relax; everything between falls back to pixel
  /// SDD. 1.0 = no band (trust the bound exactly); lower = safer + slower.
  double sdd_hint_relax = 0.9;
  /// Base CPU for pinning ingest (prefetch/decode) threads: stream i pins
  /// to CPU (ingest_affinity + i) mod cpu_count. Negative = no pinning
  /// (default). The FFSVA_AFFINITY environment variable overrides this
  /// knob (integer base, or "off"); see runtime::resolve_ingest_affinity.
  int ingest_affinity = -1;

  // --- online mode ----------------------------------------------------------
  double online_fps = 30.0;
  /// Capacity of the live-capture ring buffer in front of SDD. A camera
  /// cannot block, so bursts ride out here (~4 s at 30 FPS, enough to ride out one scene-length burst); a frame is
  /// lost only once this buffer overflows. Offline mode ignores it (the
  /// decoder simply stalls on the SDD feedback threshold instead).
  int ingest_buffer = 128;

  // --- supervision (fault tolerance; DESIGN.md Section 9) ------------------
  /// A stage heartbeat continuously busy for longer than this quarantines
  /// its stream: the stream's queues are closed and drained, its counters
  /// freeze, and the other streams keep running. 0 disables stall
  /// detection (a hung source then blocks its stream forever — the
  /// pre-supervision behavior).
  int stall_timeout_ms = 0;
  /// Wall-clock budget for run(); past it the watchdog invokes stop() and
  /// the run winds down gracefully. 0 = no deadline.
  int run_deadline_ms = 0;
  /// Per-frame behavior when a model call throws.
  DegradePolicy degrade_policy = DegradePolicy::kDrop;
  /// Consecutive transient SourceErrors retried (with exponential backoff)
  /// before the prefetch loop escalates to a source restart.
  int source_max_retries = 3;
  /// Source restarts attempted per stream before the stream is ended.
  int source_max_restarts = 2;
  /// Base backoff between retries/restarts; doubles per consecutive
  /// attempt, capped at 100 ms, and aborts early on stop or quarantine.
  int source_backoff_ms = 1;
  /// A model call (SDD distance, SNM/T-YOLO forward, reference
  /// segmentation, source decode) in flight for longer than this is
  /// cancelled by the watchdog: the call unwinds via CancelledError at its
  /// next tile boundary, the frame follows degrade_policy, and the stage
  /// restarts under the budgets below (DESIGN.md Section 14). 0 disables
  /// cancellation — a wedged call is then only observed via
  /// health.stage_stall_ticks, the pre-escalation behavior.
  int model_call_timeout_ms = 0;
  /// Stage restarts (SDD worker, GPU0 executor, reference stage) after
  /// cancelled calls before the stage stops restarting and handles further
  /// cancels inline (degrade the frame, keep serving).
  int stage_max_restarts = 3;
  /// Backoff before a stage re-enters its loop after a cancelled call;
  /// doubles per consecutive restart, capped at 100 ms, aborts on stop.
  int stage_restart_backoff_ms = 1;

  // --- dynamic streams / cluster serving (DESIGN.md §15) -------------------
  /// Stream-slot capacity for add_stream() DURING run(). 0 (default) keeps
  /// the classic contract — every stream is registered before run() and the
  /// set is fixed. > 0 reserves that many slots up front so a control plane
  /// (an ffsva_node serving hand-offs) can attach streams to a live engine;
  /// add_stream() then fails once the reservation is exhausted.
  int max_streams = 0;
  /// Keep the stage workers alive when every registered stream has ended,
  /// waiting for more streams, until stop() is called. Off (default), run()
  /// returns once the last stream drains — the single-shot batch contract.
  /// A node process serving a scheduler turns this on: its engine starts
  /// empty and serves whatever streams are assigned over its lifetime.
  bool serve_until_stopped = false;

  // --- telemetry -----------------------------------------------------------
  /// Sampling period of the live metrics exporter (JSONL rows): queue
  /// depths, per-stage FPS, drop rates, supervision counters. Used when
  /// metrics export is enabled via FfsVaInstance::enable_metrics_export.
  int metrics_interval_ms = 100;

  // --- admission / re-forwarding (Section 4.3.1) ---------------------------
  /// Sustained T-YOLO service speed below this (FPS) for admit_window_sec
  /// means the instance has spare capacity for another stream.
  double admit_tyolo_fps = 140.0;
  double admit_window_sec = 5.0;

  /// Effective queue capacity for a stage given the policy: static batching
  /// runs without feedback, so its queues are effectively unbounded.
  int capacity(int threshold) const {
    return batch_policy == BatchPolicy::kStatic ? 4096 : threshold;
  }
};

}  // namespace ffsva::core
