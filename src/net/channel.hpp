// A framed control-plane conversation over one Socket (DESIGN.md §15):
// versioned handshake, poll-gated frame send/recv, liveness bookkeeping,
// and — for the client side — deadline-driven reconnect with capped
// exponential backoff.
//
// Threading: a Channel belongs to one thread at a time (the scheduler's
// per-node thread, the node's control loop). The NetCounters it ticks are
// atomics shared with the telemetry registry.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/socket.hpp"
#include "net/wire.hpp"

namespace ffsva::net {

/// Cluster wire telemetry, surfaced as `net.*` gauges in the registry.
/// One instance per process side; every channel ticks the same counters.
struct NetCounters {
  std::atomic<std::uint64_t> bytes_tx{0};
  std::atomic<std::uint64_t> bytes_rx{0};
  std::atomic<std::uint64_t> reconnects{0};
};

/// Handshake payload (fixed-width fields, serialized field-by-field).
struct HelloInfo {
  std::uint16_t wire_version = kWireVersion;
  std::uint32_t node_id = 0;

  std::string serialize() const;
  static std::optional<HelloInfo> parse(std::string_view payload);
};

class Channel {
 public:
  Channel() = default;
  /// Wrap an accepted/connected socket. Counters may be null (not ticked).
  Channel(Socket sock, NetCounters* counters)
      : sock_(std::move(sock)), counters_(counters) {}

  bool connected() const { return sock_.valid(); }
  void close() { sock_.close(); }

  /// Send one frame. False ⇒ the connection is unusable (caller drops it).
  bool send(MsgType type, std::string_view payload = {});

  /// Receive the next frame, waiting up to timeout_ms. nullopt on timeout;
  /// a decode error or peer close also closes the channel (check
  /// connected() to distinguish timeout from death).
  std::optional<WireFrame> recv(int timeout_ms);

  /// Client half of the handshake: send kHello, wait for kHelloAck.
  /// kHelloReject / version mismatch / timeout ⇒ false and the channel is
  /// closed.
  bool handshake_client(std::uint32_t node_id, int timeout_ms = 2000);

  /// Server half: wait for kHello, verify the version, reply kHelloAck (or
  /// kHelloReject + close on mismatch). On success returns the client's
  /// HelloInfo.
  std::optional<HelloInfo> handshake_server(int timeout_ms = 2000);

  /// Milliseconds since a frame was last received (liveness signal for the
  /// caller's heartbeat/reconnect policy). -1 before any frame.
  std::int64_t last_rx_age_ms() const;

 private:
  Socket sock_;
  FrameDecoder decoder_;
  std::vector<WireFrame> queued_;  ///< Decoded but not yet returned.
  NetCounters* counters_ = nullptr;
  std::int64_t last_rx_ms_ = -1;
};

/// Client-side connection maintenance: dial, handshake, and — when the
/// connection dies or the peer goes silent past the deadline — reconnect
/// with exponential backoff capped at `max_backoff_ms`.
class ReconnectingClient {
 public:
  ReconnectingClient(Endpoint ep, std::uint32_t node_id, NetCounters* counters)
      : ep_(std::move(ep)), node_id_(node_id), counters_(counters) {}

  /// The live channel, (re)establishing it if needed. Blocks at most one
  /// backoff slice + connect/handshake timeout per call; returns nullptr
  /// while the peer stays unreachable (call again — backoff is tracked
  /// across calls and resets on success).
  Channel* get(int timeout_ms = 2000);

  /// Drop the connection (next get() redials immediately).
  void reset();

  bool connected() const { return chan_.connected(); }
  Channel* channel() { return chan_.connected() ? &chan_ : nullptr; }

 private:
  Endpoint ep_;
  std::uint32_t node_id_;
  NetCounters* counters_;
  Channel chan_;
  int backoff_ms_ = 0;
  std::int64_t next_dial_ms_ = 0;  ///< steady_now_ms gate for the next dial.
  bool ever_connected_ = false;
};

}  // namespace ffsva::net
