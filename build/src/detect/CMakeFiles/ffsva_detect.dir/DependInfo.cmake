
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detect/background.cpp" "src/detect/CMakeFiles/ffsva_detect.dir/background.cpp.o" "gcc" "src/detect/CMakeFiles/ffsva_detect.dir/background.cpp.o.d"
  "/root/repo/src/detect/multi_snm.cpp" "src/detect/CMakeFiles/ffsva_detect.dir/multi_snm.cpp.o" "gcc" "src/detect/CMakeFiles/ffsva_detect.dir/multi_snm.cpp.o.d"
  "/root/repo/src/detect/reference.cpp" "src/detect/CMakeFiles/ffsva_detect.dir/reference.cpp.o" "gcc" "src/detect/CMakeFiles/ffsva_detect.dir/reference.cpp.o.d"
  "/root/repo/src/detect/scene_change.cpp" "src/detect/CMakeFiles/ffsva_detect.dir/scene_change.cpp.o" "gcc" "src/detect/CMakeFiles/ffsva_detect.dir/scene_change.cpp.o.d"
  "/root/repo/src/detect/sdd.cpp" "src/detect/CMakeFiles/ffsva_detect.dir/sdd.cpp.o" "gcc" "src/detect/CMakeFiles/ffsva_detect.dir/sdd.cpp.o.d"
  "/root/repo/src/detect/segmentation.cpp" "src/detect/CMakeFiles/ffsva_detect.dir/segmentation.cpp.o" "gcc" "src/detect/CMakeFiles/ffsva_detect.dir/segmentation.cpp.o.d"
  "/root/repo/src/detect/snm.cpp" "src/detect/CMakeFiles/ffsva_detect.dir/snm.cpp.o" "gcc" "src/detect/CMakeFiles/ffsva_detect.dir/snm.cpp.o.d"
  "/root/repo/src/detect/specialize.cpp" "src/detect/CMakeFiles/ffsva_detect.dir/specialize.cpp.o" "gcc" "src/detect/CMakeFiles/ffsva_detect.dir/specialize.cpp.o.d"
  "/root/repo/src/detect/tyolo.cpp" "src/detect/CMakeFiles/ffsva_detect.dir/tyolo.cpp.o" "gcc" "src/detect/CMakeFiles/ffsva_detect.dir/tyolo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/image/CMakeFiles/ffsva_image.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/ffsva_video.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ffsva_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ffsva_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
