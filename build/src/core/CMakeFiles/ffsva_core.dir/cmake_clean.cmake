file(REMOVE_RECURSE
  "CMakeFiles/ffsva_core.dir/accuracy.cpp.o"
  "CMakeFiles/ffsva_core.dir/accuracy.cpp.o.d"
  "CMakeFiles/ffsva_core.dir/cluster.cpp.o"
  "CMakeFiles/ffsva_core.dir/cluster.cpp.o.d"
  "CMakeFiles/ffsva_core.dir/pipeline.cpp.o"
  "CMakeFiles/ffsva_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/ffsva_core.dir/trace.cpp.o"
  "CMakeFiles/ffsva_core.dir/trace.cpp.o.d"
  "libffsva_core.a"
  "libffsva_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ffsva_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
