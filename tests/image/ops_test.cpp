#include "image/ops.hpp"

#include <gtest/gtest.h>

#include "runtime/parallel_for.hpp"
#include "runtime/rng.hpp"

namespace ffsva::image {
namespace {

Image random_image(int w, int h, int c, std::uint64_t seed) {
  Image img(w, h, c);
  runtime::Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < img.size_bytes(); ++i) {
    img.data()[i] = static_cast<std::uint8_t>(rng.below(256));
  }
  return img;
}

TEST(ToGray, GrayPassThrough) {
  const Image g = random_image(8, 8, 1, 1);
  EXPECT_EQ(to_gray(g), g);
}

TEST(ToGray, KnownWeights) {
  Image img(1, 1, 3);
  img.at(0, 0, 0) = 255;  // pure red
  EXPECT_NEAR(to_gray(img).at(0, 0), 76, 1);  // 0.299 * 255
  img.at(0, 0, 0) = 0;
  img.at(0, 0, 1) = 255;  // pure green
  EXPECT_NEAR(to_gray(img).at(0, 0), 149, 1);
}

TEST(ToGray, WhiteStaysWhite) {
  const Image w(4, 4, 3, 255);
  const Image g = to_gray(w);
  // Fixed-point weights sum to 256/256; pure white loses at most 1 LSB.
  EXPECT_GE(g.at(2, 2), 254);
}

TEST(Resize, IdentityWhenSameSize) {
  const Image img = random_image(10, 7, 3, 2);
  EXPECT_EQ(resize_bilinear(img, 10, 7), img);
}

TEST(Resize, ConstantImageStaysConstant) {
  const Image img(16, 16, 1, 99);
  const Image small = resize_bilinear(img, 5, 5);
  for (int y = 0; y < 5; ++y) {
    for (int x = 0; x < 5; ++x) EXPECT_EQ(small.at(x, y), 99);
  }
}

TEST(Resize, DownThenDimensions) {
  const Image img = random_image(100, 50, 3, 3);
  const Image out = resize_bilinear(img, 25, 10);
  EXPECT_EQ(out.width(), 25);
  EXPECT_EQ(out.height(), 10);
  EXPECT_EQ(out.channels(), 3);
}

TEST(Resize, UpscalePreservesMeanApproximately) {
  const Image img = random_image(8, 8, 1, 4);
  const Image big = resize_bilinear(img, 32, 32);
  double mean_in = 0, mean_out = 0;
  for (std::size_t i = 0; i < img.size_bytes(); ++i) mean_in += img.data()[i];
  for (std::size_t i = 0; i < big.size_bytes(); ++i) mean_out += big.data()[i];
  mean_in /= static_cast<double>(img.size_bytes());
  mean_out /= static_cast<double>(big.size_bytes());
  EXPECT_NEAR(mean_in, mean_out, 4.0);
}

TEST(ResizePlan, IntoMatchesAllocatingResize) {
  const Image img = random_image(123, 77, 3, 6);
  const Image want = resize_bilinear(img, 50, 50);
  ResizePlan plan;
  plan.ensure(img.width(), img.height(), 50, 50);
  Image got;
  resize_bilinear_into(img, plan, got);
  EXPECT_EQ(want, got);
}

TEST(ResizePlan, EnsureRebuildsOnGeometryChange) {
  ResizePlan plan;
  plan.ensure(100, 50, 25, 10);
  const auto first_x0 = plan.x0;
  plan.ensure(100, 50, 25, 10);  // Same geometry: tables unchanged.
  EXPECT_EQ(first_x0, plan.x0);
  plan.ensure(64, 64, 16, 16);  // New geometry: tables rebuilt.
  EXPECT_EQ(16u, plan.x0.size());
  EXPECT_EQ(16u, plan.y0.size());

  // The rebuilt plan still resizes correctly (no stale-table reuse).
  const Image img = random_image(64, 64, 1, 7);
  Image got;
  resize_bilinear_into(img, plan, got);
  EXPECT_EQ(resize_bilinear(img, 16, 16), got);
}

TEST(ResizePlan, IntoDeterministicAcrossThreadCounts) {
  // Rows are fanned out across the compute pool in integer math: results
  // must be bitwise identical at any parallelism.
  const Image img = random_image(320, 240, 1, 8);
  ResizePlan plan;
  plan.ensure(img.width(), img.height(), 50, 50);

  const int saved = runtime::compute_parallelism();
  runtime::set_compute_parallelism(1);
  Image serial;
  resize_bilinear_into(img, plan, serial);
  runtime::set_compute_parallelism(4);
  Image parallel;
  resize_bilinear_into(img, plan, parallel);
  runtime::set_compute_parallelism(saved);
  EXPECT_EQ(serial, parallel);
}

TEST(Distance, IdenticalImagesAreZero) {
  const Image img = random_image(20, 20, 1, 5);
  EXPECT_EQ(mse(img, img), 0.0);
  EXPECT_EQ(sad(img, img), 0.0);
  EXPECT_EQ(nrmse(img, img), 0.0);
}

TEST(Distance, KnownValues) {
  Image a(2, 1, 1), b(2, 1, 1);
  a.at(0, 0) = 10;
  a.at(1, 0) = 20;
  b.at(0, 0) = 13;
  b.at(1, 0) = 16;
  EXPECT_DOUBLE_EQ(mse(a, b), (9.0 + 16.0) / 2);
  EXPECT_DOUBLE_EQ(sad(a, b), (3.0 + 4.0) / 2);
  EXPECT_DOUBLE_EQ(nrmse(a, b), std::sqrt(12.5) / 255.0);
}

TEST(Distance, SymmetricInArguments) {
  const Image a = random_image(16, 16, 3, 6);
  const Image b = random_image(16, 16, 3, 7);
  EXPECT_DOUBLE_EQ(mse(a, b), mse(b, a));
  EXPECT_DOUBLE_EQ(sad(a, b), sad(b, a));
}

TEST(Distance, ShapeMismatchThrows) {
  const Image a(4, 4, 1);
  const Image b(4, 5, 1);
  EXPECT_THROW(mse(a, b), std::invalid_argument);
  EXPECT_THROW(sad(a, b), std::invalid_argument);
  EXPECT_THROW(abs_diff(a, b), std::invalid_argument);
}

TEST(AbsDiff, MatchesManualComputation) {
  Image a(1, 1, 1), b(1, 1, 1);
  a.at(0, 0) = 5;
  b.at(0, 0) = 12;
  EXPECT_EQ(abs_diff(a, b).at(0, 0), 7);
  EXPECT_EQ(abs_diff(b, a).at(0, 0), 7);
}

TEST(GaussianBlur, NonPositiveSigmaIsCopy) {
  const Image img = random_image(10, 10, 1, 8);
  EXPECT_EQ(gaussian_blur(img, 0.0), img);
  EXPECT_EQ(gaussian_blur(img, -1.0), img);
}

TEST(GaussianBlur, PreservesConstantImage) {
  const Image img(12, 12, 1, 77);
  const Image out = gaussian_blur(img, 1.5);
  for (int y = 0; y < 12; ++y) {
    for (int x = 0; x < 12; ++x) EXPECT_NEAR(out.at(x, y), 77, 1);
  }
}

TEST(GaussianBlur, SmoothsAnImpulse) {
  Image img(11, 11, 1, 0);
  img.at(5, 5) = 255;
  const Image out = gaussian_blur(img, 1.0);
  EXPECT_LT(out.at(5, 5), 255);
  EXPECT_GT(out.at(4, 5), 0);
  EXPECT_GT(out.at(5, 4), 0);
  // Energy decays with distance from the impulse.
  EXPECT_GT(out.at(5, 5), out.at(3, 5));
  EXPECT_GT(out.at(4, 5), out.at(2, 5));
}

TEST(Threshold, BinaryOutput) {
  Image img(3, 1, 1);
  img.at(0, 0) = 10;
  img.at(1, 0) = 100;
  img.at(2, 0) = 200;
  const Image out = threshold(img, 100);
  EXPECT_EQ(out.at(0, 0), 0);
  EXPECT_EQ(out.at(1, 0), 0);  // strictly greater-than
  EXPECT_EQ(out.at(2, 0), 255);
}

TEST(Otsu, SeparatesBimodalHistogram) {
  Image img(20, 20, 1);
  for (int y = 0; y < 20; ++y) {
    for (int x = 0; x < 20; ++x) img.at(x, y) = (x < 10) ? 40 : 200;
  }
  const std::uint8_t t = otsu_threshold(img);
  EXPECT_GE(t, 40);
  EXPECT_LT(t, 200);
}

TEST(Morphology, ErodeRemovesIsolatedPixel) {
  Image img(9, 9, 1, 0);
  img.at(4, 4) = 255;
  const Image out = erode3x3(img);
  EXPECT_EQ(out.at(4, 4), 0);
}

TEST(Morphology, DilateGrowsRegion) {
  Image img(9, 9, 1, 0);
  img.at(4, 4) = 255;
  const Image out = dilate3x3(img);
  EXPECT_EQ(out.at(4, 4), 255);
  EXPECT_EQ(out.at(3, 4), 255);
  EXPECT_EQ(out.at(5, 5), 255);
  EXPECT_EQ(out.at(2, 4), 0);
}

TEST(Morphology, OpeningPreservesLargeBlob) {
  Image img(20, 20, 1, 0);
  for (int y = 5; y < 15; ++y) {
    for (int x = 5; x < 15; ++x) img.at(x, y) = 255;
  }
  const Image opened = dilate3x3(erode3x3(img));
  EXPECT_EQ(opened.at(10, 10), 255);
  EXPECT_EQ(opened.at(0, 0), 0);
}

TEST(IntegralImage, BoxSumsMatchBruteForce) {
  const Image img = random_image(17, 13, 1, 9);
  const auto integral = integral_image(img);
  runtime::Xoshiro256 rng(10);
  for (int trial = 0; trial < 50; ++trial) {
    const int x0 = static_cast<int>(rng.below(17));
    const int y0 = static_cast<int>(rng.below(13));
    const int x1 = x0 + static_cast<int>(rng.below(static_cast<std::uint64_t>(17 - x0 + 1)));
    const int y1 = y0 + static_cast<int>(rng.below(static_cast<std::uint64_t>(13 - y0 + 1)));
    std::uint64_t brute = 0;
    for (int y = y0; y < y1; ++y) {
      for (int x = x0; x < x1; ++x) brute += img.at(x, y);
    }
    EXPECT_EQ(box_sum(integral, 17, x0, y0, x1, y1), brute);
  }
}

TEST(IntegralImage, EmptyRectIsZero) {
  const Image img = random_image(5, 5, 1, 11);
  const auto integral = integral_image(img);
  EXPECT_EQ(box_sum(integral, 5, 2, 2, 2, 4), 0u);
  EXPECT_EQ(box_sum(integral, 5, 3, 3, 2, 2), 0u);
}

}  // namespace
}  // namespace ffsva::image
