file(REMOVE_RECURSE
  "libffsva_detect.a"
)
