#include "sim/outcome.hpp"

#include <gtest/gtest.h>

namespace ffsva::sim {
namespace {

TEST(TraceOutcomes, ReplaysAndLoops) {
  auto data = std::make_shared<std::vector<core::FilteredAt>>(
      std::vector<core::FilteredAt>{core::FilteredAt::kNone, core::FilteredAt::kSdd,
                                    core::FilteredAt::kSnm});
  TraceOutcomes src(data, 0);
  EXPECT_EQ(src.next(), core::FilteredAt::kNone);
  EXPECT_EQ(src.next(), core::FilteredAt::kSdd);
  EXPECT_EQ(src.next(), core::FilteredAt::kSnm);
  EXPECT_EQ(src.next(), core::FilteredAt::kNone);  // wrapped
}

TEST(TraceOutcomes, OffsetShiftsPhase) {
  auto data = std::make_shared<std::vector<core::FilteredAt>>(
      std::vector<core::FilteredAt>{core::FilteredAt::kNone, core::FilteredAt::kSdd});
  TraceOutcomes src(data, 1);
  EXPECT_EQ(src.next(), core::FilteredAt::kSdd);
  EXPECT_EQ(src.next(), core::FilteredAt::kNone);
}

TEST(TraceOutcomes, EmptyTraceIsAllFiltered) {
  auto data = std::make_shared<std::vector<core::FilteredAt>>();
  TraceOutcomes src(data, 5);
  EXPECT_EQ(src.next(), core::FilteredAt::kSdd);
}

TEST(OutcomesFromTrace, AppliesThresholds) {
  std::vector<core::FrameRecord> records(2);
  records[0].sdd_distance = 100;
  records[0].snm_score = 0.9;
  records[0].tyolo_count = 1;
  records[1].sdd_distance = 1;
  const core::CascadeThresholds t{10.0, 0.5, 1};
  const auto out = outcomes_from_trace(records, t);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], core::FilteredAt::kNone);
  EXPECT_EQ(out[1], core::FilteredAt::kSdd);
}

TEST(MarkovOutcomes, DeterministicPerSeed) {
  const auto p = MarkovParams::for_tor(0.3);
  MarkovOutcomes a(p, 9), b(p, 9), c(p, 10);
  int same = 0, diff = 0;
  for (int i = 0; i < 200; ++i) {
    const auto va = a.next();
    if (va == b.next()) ++same;
    if (va != c.next()) ++diff;
  }
  EXPECT_EQ(same, 200);
  EXPECT_GT(diff, 0);
}

TEST(MarkovOutcomes, StationaryTorIsRespected) {
  for (double tor : {0.1, 0.5, 0.9}) {
    MarkovOutcomes src(MarkovParams::for_tor(tor), 123);
    int in_scene = 0;
    const int n = 60000;
    for (int i = 0; i < n; ++i) {
      src.next();
      in_scene += src.in_scene() ? 1 : 0;
    }
    EXPECT_NEAR(static_cast<double>(in_scene) / n, tor, 0.05) << "tor " << tor;
  }
}

TEST(MarkovOutcomes, SceneRunsHaveConfiguredMeanLength) {
  MarkovParams p = MarkovParams::for_tor(0.3);
  p.mean_scene_len = 50.0;
  MarkovOutcomes src(p, 77);
  std::vector<int> runs;
  int cur = 0;
  for (int i = 0; i < 200000; ++i) {
    src.next();
    if (src.in_scene()) {
      ++cur;
    } else if (cur > 0) {
      runs.push_back(cur);
      cur = 0;
    }
  }
  ASSERT_GT(runs.size(), 100u);
  double mean = 0;
  for (int r : runs) mean += r;
  mean /= static_cast<double>(runs.size());
  EXPECT_NEAR(mean, 50.0, 8.0);
}

TEST(MarkovOutcomes, TorExtremesAreAbsorbing) {
  MarkovOutcomes always(MarkovParams::for_tor(1.0), 5);
  MarkovOutcomes never(MarkovParams::for_tor(0.0), 5);
  for (int i = 0; i < 100; ++i) {
    always.next();
    EXPECT_TRUE(always.in_scene());
    never.next();
    EXPECT_FALSE(never.in_scene());
  }
}

TEST(MarkovOutcomes, PassRatesFollowState) {
  MarkovParams p = MarkovParams::for_tor(0.5);
  p.sdd_in = 1.0;
  p.sdd_out = 0.0;
  p.snm_in = 1.0;
  p.ty_in = 1.0;
  MarkovOutcomes src(p, 31);
  for (int i = 0; i < 2000; ++i) {
    const auto o = src.next();
    if (src.in_scene()) {
      EXPECT_EQ(o, core::FilteredAt::kNone);
    } else {
      EXPECT_EQ(o, core::FilteredAt::kSdd);
    }
  }
}

TEST(MarkovParams, NumberOfObjectsThinsTyPass) {
  const auto p1 = MarkovParams::for_tor(0.3, 1);
  const auto p3 = MarkovParams::for_tor(0.3, 3);
  EXPECT_GT(p1.ty_in, p3.ty_in);
}

}  // namespace
}  // namespace ffsva::sim
