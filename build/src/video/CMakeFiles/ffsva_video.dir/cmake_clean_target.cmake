file(REMOVE_RECURSE
  "libffsva_video.a"
)
