#!/usr/bin/env python3
"""Whole-program lock-order analysis for the FFS-VA tree (DESIGN.md §16).

Walks every function, extracts the acquired-capability graph from the
thread-safety vocabulary (`MutexLock`/`UniqueLock` construction,
`FFSVA_REQUIRES`, ranked `Mutex` declarations), and reports:

  lock-cycle           A cycle in the acquisition-order graph: some thread
                       can hold A wanting B while another holds B wanting A.
                       Any cycle is a potential deadlock, whether or not the
                       schedules that close it have been observed.

  rank-order           An acquisition edge A -> B where both locks carry a
                       rank from src/runtime/lock_rank.hpp and
                       rank(A) >= rank(B). The runtime verifier would abort
                       on this path in a sanitizer build; the analyzer finds
                       it without needing the schedule to happen.

  blocking-under-lock  A blocking call made while a lock is held — socket
                       send/recv/poll/accept/connect, `CondVar` waits with a
                       *second* lock held, model-call entry points (detect/
                       forward/segment/...), thread joins, unbounded queue
                       push/pop, sleep_for/sleep_until. Each site needs a
                       `// blocking-ok: <reason>` marker within
                       MARKER_WINDOW lines saying why holding the lock
                       across the block is safe (bounded, leaf lock, ...).

  condvar-no-loop      A `CondVar::wait`/`wait_for`/`wait_until` site not
                       inside a predicate loop. Spurious wakeups make a
                       non-looped wait a logic bug, and the tree's house
                       style (annotations.hpp) demands the explicit loop.

Two frontends share the findings engine:

  text   (default) A lexical frontend: comment/string-stripped scope
         tracking over src/. Self-contained, runs everywhere, and is the
         authoritative gate for this tree.
  clang  A libclang (clang.cindex) frontend driven by compile_commands.json
         for AST-exact extraction. Exits 77 (ctest skip) when the python
         clang bindings or libclang are unavailable, per house convention.

Usage:
  tools/ffsva_lockgraph.py [--root DIR] [paths...]     # scan DIR/src
  tools/ffsva_lockgraph.py --self-test                 # fixture checks
  tools/ffsva_lockgraph.py --dump-graph                # print edges + exit
  tools/ffsva_lockgraph.py --frontend=clang [...]      # AST frontend

Exit codes: 0 clean, 1 findings, 2 usage/internal error, 77 frontend
unavailable.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from dataclasses import dataclass, field

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from ffsva_lint import strip_code  # noqa: E402  (shared C++ lexer)

MARKER_WINDOW = 6  # lines above a site in which a blocking-ok still applies

CPP_EXTENSIONS = (".cpp", ".cc", ".cxx", ".hpp", ".hh", ".h", ".inl")

BLOCKING_OK_RE = re.compile(r"//.*\bblocking-ok:\s*(\S.*)?")

# --- What counts as blocking -------------------------------------------------
# Unbounded (or unboundedly retried) operations only: the timed/try variants
# are bounded by construction and stay out of the gate to keep triage signal
# high.
SLEEP_RE = re.compile(r"\bsleep_(?:for|until)\s*\(")
SOCKET_RE = re.compile(
    r"(?:\.|->)(?:send|send_all|recv|recv_some|accept|connect|"
    r"handshake_client|handshake_server)\s*\(|(?<![\w>])::poll\s*\("
)
MODEL_RE = re.compile(
    r"(?:\.|->)(?:detect|detect_batch|forward|segment|specialize|"
    r"run_batch)\s*\("
)
JOIN_RE = re.compile(r"(?:\.|->)join\s*\(\s*\)")
QUEUE_RE = re.compile(r"(?:\.|->)(?:pop|pop_batch|pop_exact|wait_idle)\s*\(")
QUEUE_PUSH_RE = re.compile(r"(?:\.|->)push\s*\(")  # blocking push (not try_)

BLOCKING_KINDS = [
    ("sleep", SLEEP_RE),
    ("socket", SOCKET_RE),
    ("model-call", MODEL_RE),
    ("join", JOIN_RE),
    ("queue-pop", QUEUE_RE),
    ("queue-push", QUEUE_PUSH_RE),
]

CV_WAIT_RE = re.compile(r"(\w+)(?:\.|->)wait(?:_for|_until)?\s*\(\s*(\w+)")

ACQ_SCOPED_RE = re.compile(
    r"\b(?:runtime::)?(MutexLock|UniqueLock)\s+(\w+)\s*[({]\s*([^;)}]+?)\s*[,)}]"
)
REQUIRES_RE = re.compile(r"\bFFSVA_REQUIRES\s*\(\s*([^)]*?)\s*\)")
MUTEX_DECL_RE = re.compile(
    r"(?:^|[\s(])(?:mutable\s+)?(?:ffsva::)?(?:runtime::)?Mutex\s+(\w+)\s*"
    r"((?:\[[^\]]*\])?)\s*((?:FFSVA_ACQUIRED_\w+\s*\([^)]*\)\s*)*)(\{|;|=)",
    re.M,
)
RANK_CONST_RE = re.compile(r"\bk(\w+)\s*=\s*(\d+)\s*;")
RANK_USE_RE = re.compile(r"\brank::k(\w+)\b")
NAME_IN_INIT_RE = re.compile(r'"([^"]+)"')

CLASS_RE = re.compile(
    r"\b(class|struct)\s+(?:FFSVA_\w+\s*(?:\([^)]*\))?\s+)*(\w+)[^;{]*$"
)
NAMESPACE_RE = re.compile(r"\bnamespace\s+([\w:]+)\s*$")
LAMBDA_RE = re.compile(
    r"\[[^\[\]]*\]\s*(?:\([^()]*\))?\s*(?:mutable\b\s*)?(?:noexcept\b\s*)?"
    r"(?:->\s*[\w:<>&*\s]+)?\s*$"
)
LOOP_RE = re.compile(r"\b(?:while|for|do)\b")
FUNC_RE = re.compile(
    r"(?:^|\s)~?([A-Za-z_]\w*(?:::~?[A-Za-z_]\w*)*)\s*\([^;{]*\)\s*"
    r"(?:const\b\s*|noexcept\b\s*|override\b\s*|final\b\s*|"
    r"FFSVA_\w+\s*(?:\([^)]*\))?\s*|->\s*[\w:<>&*,\s]+?\s*)*$"
)
CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\(")
NOT_CALLS = frozenset(
    """if while for switch return sizeof static_cast dynamic_cast
    reinterpret_cast const_cast alignof decltype new delete catch assert
    defined noexcept static_assert""".split()
)


@dataclass
class Finding:
    rule: str
    path: str
    line: int  # 1-based; 0 = whole-graph finding
    message: str

    def __str__(self) -> str:
        loc = f"{self.path}:{self.line}" if self.line else self.path
        return f"{loc}: [{self.rule}] {self.message}"


@dataclass
class LockDecl:
    node: str  # graph-node identity, e.g. "core::Engine::streams_mu_"
    member: str  # declared member/variable name
    owner: str  # enclosing class ("" for function locals / globals)
    rank_name: str  # "kEngineStreams" or ""
    path: str
    line: int


@dataclass
class CallSite:
    callee: str  # simple name
    held: tuple  # lock nodes held at the call, outermost first
    path: str
    line: int


@dataclass
class FunctionFacts:
    qual: str  # qualified name, best effort
    path: str
    acquires: list = field(default_factory=list)  # (node, line, held_before)
    calls: list = field(default_factory=list)  # CallSite


@dataclass
class Analysis:
    decls: dict = field(default_factory=dict)  # member name -> [LockDecl]
    functions: list = field(default_factory=list)  # FunctionFacts
    # Direct findings discovered during extraction (blocking / condvar).
    findings: list = field(default_factory=list)
    # Acquisition edges: (from_node, to_node, path, line)
    edges: list = field(default_factory=list)
    ranks: dict = field(default_factory=dict)  # "kName" -> int


# ---------------------------------------------------------------------------
# Rank table


def parse_rank_table(root: str) -> dict:
    path = os.path.join(root, "src", "runtime", "lock_rank.hpp")
    ranks: dict = {}
    if not os.path.isfile(path):
        return ranks
    with open(path, encoding="utf-8") as fh:
        for m in RANK_CONST_RE.finditer(fh.read()):
            ranks["k" + m.group(1)] = int(m.group(2))
    return ranks


# ---------------------------------------------------------------------------
# Text frontend


@dataclass
class Scope:
    kind: str  # namespace | class | function | lambda | loop | block
    name: str = ""
    locks: list = field(default_factory=list)  # nodes acquired RAII here
    uniq: dict = field(default_factory=dict)  # UniqueLock var -> node


class FileScanner:
    """Lexical scope tracker for one file: classifies `{` scopes from the
    header text that precedes them, tracks RAII acquisitions per scope, and
    emits FunctionFacts + direct findings."""

    def __init__(self, an: Analysis, relpath: str, raw_lines: list,
                 code_lines: list):
        self.an = an
        self.relpath = relpath
        self.raw = raw_lines
        self.scopes: list[Scope] = []
        self.pending = ""  # header text since the last {, } or top-level ;
        self.func: FunctionFacts | None = None
        self.code_lines = code_lines

    # -- held-lock bookkeeping ------------------------------------------------

    def held(self) -> list:
        """Locks held at this point, outermost first. A lambda boundary
        suspends the enclosing function's locks: the body runs on another
        thread (or later), not under them."""
        out: list = []
        start = 0
        for i in range(len(self.scopes) - 1, -1, -1):
            if self.scopes[i].kind == "lambda":
                start = i
                break
        for sc in self.scopes[start:]:
            out.extend(sc.locks)
        return out

    def lookup_uniq(self, var: str) -> str | None:
        for sc in reversed(self.scopes):
            if var in sc.uniq:
                return sc.uniq[var]
            if sc.kind == "lambda":
                break
        return None

    def current_class(self) -> str:
        names = [s.name for s in self.scopes if s.kind == "class" and s.name]
        return "::".join(names)

    def in_loop(self) -> bool:
        for sc in reversed(self.scopes):
            if sc.kind == "loop":
                return True
            if sc.kind in ("function", "lambda"):
                break
        return False

    # -- lock-node resolution -------------------------------------------------

    def resolve_lock(self, expr: str, line: int, owner_hint: str = "") -> str:
        """Map a MutexLock/UniqueLock constructor argument to a graph node."""
        expr = expr.strip()
        expr = re.sub(r"^\*?\s*(this\s*->)?", "", expr)
        base = re.match(r"([A-Za-z_]\w*)", expr.split(".")[-1].split("->")[-1])
        name = base.group(1) if base else expr
        # Prefer a declaration in the enclosing class (lexical, or the class
        # named by an out-of-line `X::f` definition), then a unique match
        # anywhere, then a synthetic local node.
        cands = self.an.decls.get(name, [])
        contexts = [owner_hint, self.current_class()]
        if self.func and "::" in self.func.qual:
            contexts.append(self.func.qual.rsplit("::", 1)[0])
        for cls in contexts:
            for d in cands:
                if d.owner and cls and (d.owner == cls or cls.endswith(d.owner)
                                        or d.owner.endswith(cls)):
                    return d.node
        if len(cands) == 1:
            return cands[0].node
        if cands:
            # Ambiguous member name with no class context: drop to a
            # name-only node so unrelated classes' locks are never merged
            # into false cycles, but note the ambiguity in the node id.
            qual = self.func.qual if self.func else self.relpath
            return f"{qual}::{name}"
        qual = self.func.qual if self.func else self.relpath
        return f"{qual}::{name}"

    # -- per-segment analysis -------------------------------------------------

    def note_acquire(self, node: str, line: int) -> None:
        held = self.held()
        for h in held:
            if h != node:
                self.an.edges.append((h, node, self.relpath, line))
        if self.func:
            self.func.acquires.append((node, line, tuple(held)))

    def has_blocking_ok(self, idx: int) -> bool:
        lo = max(0, idx - MARKER_WINDOW)
        for probe in self.raw[lo : idx + 1]:
            m = BLOCKING_OK_RE.search(probe)
            if m and m.group(1):
                return True
        return False

    def segment(self, text: str, lineno: int) -> None:
        idx = lineno - 1

        # Scoped acquisitions: MutexLock lk(mu_); / UniqueLock lk(mu_);
        for m in ACQ_SCOPED_RE.finditer(text):
            kind, var, arg = m.group(1), m.group(2), m.group(3)
            node = self.resolve_lock(arg, lineno)
            self.note_acquire(node, lineno)
            if self.scopes:
                self.scopes[-1].locks.append(node)
                if kind == "UniqueLock":
                    self.scopes[-1].uniq[var] = node

        # UniqueLock unlock/relock toggles.
        for m in re.finditer(r"(\w+)\.(unlock|lock)\s*\(\s*\)", text):
            var, op = m.group(1), m.group(2)
            node = self.lookup_uniq(var)
            if node is None:
                continue
            for sc in reversed(self.scopes):
                if var in sc.uniq:
                    if op == "unlock":
                        if node in sc.locks:
                            sc.locks.remove(node)
                    else:
                        self.note_acquire(node, lineno)
                        sc.locks.append(node)
                    break

        held = self.held()

        # CondVar waits: the wait's own lock is exempt (that is what a wait
        # is); any *other* held lock is blocking-under-lock, and every wait
        # must sit in a predicate loop.
        cv = CV_WAIT_RE.search(text)
        cv_lock = None
        if cv and self.lookup_uniq(cv.group(2)) is not None:
            cv_lock = self.lookup_uniq(cv.group(2))
            in_loop = self.in_loop() or LOOP_RE.search(text[: cv.start()])
            if not in_loop:
                self.an.findings.append(
                    Finding(
                        "condvar-no-loop",
                        self.relpath,
                        lineno,
                        f"CondVar wait on '{cv.group(2)}' outside a predicate "
                        "loop — spurious wakeups make this a logic bug",
                    )
                )
            others = [h for h in held if h != cv_lock]
            if others and not self.has_blocking_ok(idx):
                self.an.findings.append(
                    Finding(
                        "blocking-under-lock",
                        self.relpath,
                        lineno,
                        f"CondVar wait while also holding {others} — needs "
                        "'// blocking-ok: <reason>'",
                    )
                )

        # Other blocking calls under a held lock.
        if held and cv is None:
            for kind, pat in BLOCKING_KINDS:
                m = pat.search(text)
                if m and not self.has_blocking_ok(idx):
                    self.an.findings.append(
                        Finding(
                            "blocking-under-lock",
                            self.relpath,
                            lineno,
                            f"{kind} call `{m.group(0).strip()}` while "
                            f"holding {held} — needs "
                            "'// blocking-ok: <reason>'",
                        )
                    )
                    break  # one finding per line is enough

        # Record calls for the interprocedural summary.
        if self.func is not None:
            for m in CALL_RE.finditer(text):
                name = m.group(1)
                if name in NOT_CALLS or name in ("MutexLock", "UniqueLock"):
                    continue
                self.func.calls.append(
                    CallSite(name, tuple(held), self.relpath, lineno)
                )

    # -- scope machinery ------------------------------------------------------

    def classify_brace(self) -> Scope:
        header = self.pending.strip()
        tail = header[-160:]
        m = NAMESPACE_RE.search(tail)
        if m:
            return Scope("namespace", m.group(1))
        m = CLASS_RE.search(tail)
        if m:
            return Scope("class", m.group(2))
        if LAMBDA_RE.search(tail):
            return Scope("lambda")
        # enum/array/initializer braces and control flow:
        if re.search(r"\b(?:enum|=)\s*$|=\s*\{?\s*$", tail):
            return Scope("block")
        if LOOP_RE.search(tail):
            return Scope("loop")
        if re.search(r"\b(?:if|else|switch|try|catch)\b", tail):
            return Scope("block")
        m = FUNC_RE.search(header)
        if m and m.group(1) not in NOT_CALLS:
            name = m.group(1)
            cls = self.current_class()
            qual = name if "::" in name or not cls else f"{cls}::{name}"
            sc = Scope("function", qual)
            # REQUIRES capabilities are held for the whole body.
            owner = qual.rsplit("::", 1)[0] if "::" in qual else ""
            for rm in REQUIRES_RE.finditer(header):
                for cap in rm.group(1).split(","):
                    cap = cap.strip().lstrip("!")
                    if cap:
                        sc.locks.append(self.resolve_lock(cap, 0, owner))
            return sc
        return Scope("block")

    def run(self) -> None:
        paren = 0
        for i, line in enumerate(self.code_lines):
            lineno = i + 1
            for piece in re.split(r"([{}])", line):
                if piece == "{":
                    sc = self.classify_brace()
                    if sc.kind == "function" and self.func is None:
                        self.func = FunctionFacts(sc.name, self.relpath)
                    self.scopes.append(sc)
                    self.pending = ""
                    paren = 0
                elif piece == "}":
                    if self.scopes:
                        closed = self.scopes.pop()
                        if closed.kind == "function" and not any(
                            s.kind == "function" for s in self.scopes
                        ):
                            if self.func is not None:
                                self.an.functions.append(self.func)
                            self.func = None
                    self.pending = ""
                    paren = 0
                else:
                    self.segment(piece, lineno)
                    paren += piece.count("(") - piece.count(")")
                    self.pending += piece + "\n"
                    if paren <= 0 and piece.rstrip().endswith(";"):
                        self.pending = ""
                        paren = 0


def collect_decls(an: Analysis, relpath: str, raw: str, code_lines: list) -> None:
    """Pass 1: map Mutex member/local names to graph nodes (+ranks)."""
    code_text = "\n".join(code_lines)
    # Light class attribution: record, for each decl offset, the innermost
    # class open at that offset via a mini brace scan.
    class_at: list[tuple[int, str]] = []  # (offset, class path)
    stack: list[tuple[str, str]] = []  # (kind, name)
    pending = ""
    for off, ch in enumerate(code_text):
        if ch == "{":
            tail = pending.strip()[-160:]
            m = CLASS_RE.search(tail)
            if m:
                stack.append(("class", m.group(2)))
            else:
                mn = NAMESPACE_RE.search(tail)
                stack.append(("ns", mn.group(1)) if mn else ("block", ""))
            pending = ""
        elif ch == "}":
            if stack:
                stack.pop()
            pending = ""
        else:
            pending += ch
            if ch == ";":
                pending = ""
        if ch in "{}":
            cls = "::".join(n for k, n in stack if k == "class" and n)
            class_at.append((off, cls))

    def class_for(offset: int) -> str:
        cls = ""
        for off, c in class_at:
            if off > offset:
                break
            cls = c
        return cls

    for m in MUTEX_DECL_RE.finditer(code_text):
        name = m.group(1)
        owner = class_for(m.start())
        line = code_text.count("\n", 0, m.start()) + 1
        rank_name = ""
        node = f"{owner}::{name}" if owner else name
        if m.group(4) == "{":
            init = code_text[m.end() - 1 : m.end() + 240]
            rm = RANK_USE_RE.search(init)
            if rm:
                rank_name = "k" + rm.group(1)
            # Prefer the declared display name from the *raw* text (strings
            # are blanked in the code view).
            raw_init = raw[m.end() - 1 : m.end() + 240]
            nm = NAME_IN_INIT_RE.search(raw_init)
            if nm:
                node = nm.group(1)
        d = LockDecl(node, name, owner, rank_name, relpath, line)
        an.decls.setdefault(name, []).append(d)


def text_frontend(root: str, files: list[str]) -> Analysis:
    an = Analysis()
    an.ranks = parse_rank_table(root)
    sources = []
    for path in files:
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        with open(path, encoding="utf-8", errors="replace") as fh:
            raw = fh.read()
        code_lines = strip_code(raw)
        sources.append((rel, raw, code_lines))
        collect_decls(an, rel, raw, code_lines)
    for rel, raw, code_lines in sources:
        FileScanner(an, rel, raw.splitlines(), code_lines).run()
    propagate_calls(an)
    return an


# ---------------------------------------------------------------------------
# Interprocedural propagation: if f() acquires L (transitively) and g calls
# f while holding A, that is an A -> L edge even though g never names L.


def propagate_calls(an: Analysis) -> None:
    by_simple: dict[str, list[FunctionFacts]] = {}
    for fn in an.functions:
        by_simple.setdefault(fn.qual.split("::")[-1], []).append(fn)

    direct: dict[str, set] = {
        fn.qual: {node for node, _, _ in fn.acquires} for fn in an.functions
    }
    # Fixed-point transitive closure. A uniquely-named callee contributes
    # its full transitive acquisition set; an ambiguous simple name (up to
    # a small candidate cap) contributes only the union of the candidates'
    # *direct* acquisitions — an over-approximation that still finds
    # `q.close()`-style edges without letting utility names cascade the
    # whole tree into one blob.
    MAX_CANDIDATES = 4

    def contribution(fn: FunctionFacts, callee: str, table: dict) -> set:
        cands = [t for t in by_simple.get(callee, []) if t.qual != fn.qual]
        if not cands:
            return set()
        if len(cands) == 1:
            return table[cands[0].qual]
        if len(cands) > MAX_CANDIDATES:
            return set()
        out: set = set()
        for t in cands:
            out |= direct[t.qual]
        return out

    trans = {q: set(s) for q, s in direct.items()}
    for _ in range(len(an.functions)):
        changed = False
        for fn in an.functions:
            acc = trans[fn.qual]
            before = len(acc)
            for call in fn.calls:
                acc |= contribution(fn, call.callee, trans)
            if len(acc) != before:
                changed = True
        if not changed:
            break

    for fn in an.functions:
        for call in fn.calls:
            if not call.held:
                continue
            for node in contribution(fn, call.callee, trans):
                for h in call.held:
                    if h != node:
                        an.edges.append((h, node, call.path, call.line))


# ---------------------------------------------------------------------------
# clang.cindex frontend (AST-exact). Exits 77 upstream when unavailable.


def clang_available() -> bool:
    try:
        import clang.cindex  # noqa: F401
        clang.cindex.Index.create()
        return True
    except Exception:
        return False


def clang_frontend(root: str, compile_commands: str) -> Analysis:
    import clang.cindex as ci

    an = Analysis()
    an.ranks = parse_rank_table(root)
    db = ci.CompilationDatabase.fromDirectory(compile_commands)
    index = ci.Index.create()
    seen = set()

    def lock_node(cursor) -> str:
        # First constructor argument's spelling, qualified by its record.
        for child in cursor.walk_preorder():
            if child.kind == ci.CursorKind.MEMBER_REF_EXPR:
                parent = child.semantic_parent
                owner = parent.spelling if parent else ""
                return f"{owner}::{child.spelling}" if owner else child.spelling
            if child.kind == ci.CursorKind.DECL_REF_EXPR:
                return child.spelling
        return cursor.spelling or "<unknown>"

    def visit_function(fn) -> None:
        facts = FunctionFacts(fn.spelling, str(fn.location.file))
        held: list = []

        def walk(cursor, held_now):
            for child in cursor.get_children():
                if child.kind == ci.CursorKind.VAR_DECL and child.type.spelling.split(
                    "::"
                )[-1] in ("MutexLock", "UniqueLock"):
                    node = lock_node(child)
                    for h in held_now:
                        an.edges.append(
                            (h, node, str(child.location.file), child.location.line)
                        )
                    facts.acquires.append((node, child.location.line, tuple(held_now)))
                    held_now = held_now + [node]
                elif child.kind == ci.CursorKind.CALL_EXPR:
                    facts.calls.append(
                        CallSite(
                            child.spelling,
                            tuple(held_now),
                            str(child.location.file),
                            child.location.line,
                        )
                    )
                walk(child, held_now)

        walk(fn, held)
        an.functions.append(facts)

    for cmd in db.getAllCompileCommands():
        path = cmd.filename
        if path in seen:
            continue
        seen.add(path)
        args = [a for a in cmd.arguments][1:]
        args = [a for a in args if a not in ("-c", path, "-o")]
        try:
            tu = index.parse(path, args=args)
        except ci.TranslationUnitLoadError:
            continue
        for cursor in tu.cursor.walk_preorder():
            if cursor.kind in (
                ci.CursorKind.CXX_METHOD,
                ci.CursorKind.FUNCTION_DECL,
            ) and cursor.is_definition():
                visit_function(cursor)
    propagate_calls(an)
    return an


# ---------------------------------------------------------------------------
# Graph checks


def node_rank(an: Analysis, node: str) -> int | None:
    for decls in an.decls.values():
        for d in decls:
            if d.node == node and d.rank_name:
                return an.ranks.get(d.rank_name)
    return None


def graph_findings(an: Analysis) -> list[Finding]:
    out: list[Finding] = []

    adj: dict[str, dict[str, tuple]] = {}
    for a, b, path, line in an.edges:
        adj.setdefault(a, {}).setdefault(b, (path, line))
        adj.setdefault(b, {})

    # Tarjan SCC: any SCC with >1 node (or a self-edge) is a cycle.
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on: set = set()
    stack: list[str] = []
    counter = [0]
    sccs: list[list[str]] = []

    def strongconnect(v: str) -> None:
        work = [(v, iter(adj[v]))]
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on.add(v)
        while work:
            node, it = work[-1]
            advanced = False
            for w in it:
                if w not in index:
                    index[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on.add(w)
                    work.append((w, iter(adj[w])))
                    advanced = True
                    break
                if w in on:
                    low[node] = min(low[node], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                low[work[-1][0]] = min(low[work[-1][0]], low[node])
            if low[node] == index[node]:
                scc = []
                while True:
                    w = stack.pop()
                    on.discard(w)
                    scc.append(w)
                    if w == node:
                        break
                sccs.append(scc)

    for v in list(adj):
        if v not in index:
            strongconnect(v)

    for scc in sccs:
        cyclic = len(scc) > 1 or (scc[0] in adj.get(scc[0], {}))
        if not cyclic:
            continue
        members = sorted(scc)
        sites = []
        for a in members:
            for b, (path, line) in adj.get(a, {}).items():
                if b in scc:
                    sites.append(f"{a} -> {b} ({path}:{line})")
        out.append(
            Finding(
                "lock-cycle",
                sites and sites[0].split("(")[-1].rstrip(")").split(":")[0] or "",
                0,
                "acquisition-order cycle between {"
                + ", ".join(members)
                + "}: "
                + "; ".join(sorted(sites)),
            )
        )

    # Rank-order: every edge must strictly increase rank when both ends carry
    # one — the exact invariant the runtime verifier enforces per thread.
    reported = set()
    for a, b, path, line in an.edges:
        ra, rb = node_rank(an, a), node_rank(an, b)
        if ra is None or rb is None or ra < rb:
            continue
        key = (a, b)
        if key in reported:
            continue
        reported.add(key)
        out.append(
            Finding(
                "rank-order",
                path,
                line,
                f"'{b}' (rank {rb}) acquired while holding '{a}' (rank {ra}) "
                "— violates the lock_rank.hpp order; a sanitizer build "
                "aborts here",
            )
        )
    return out


# ---------------------------------------------------------------------------
# Drivers


def collect_files(root: str, paths: list[str]) -> list[str]:
    found: list[str] = []
    for p in paths:
        full = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isfile(full):
            found.append(full)
        elif os.path.isdir(full):
            for dirpath, dirnames, filenames in os.walk(full):
                dirnames.sort()
                for name in sorted(filenames):
                    if name.endswith(CPP_EXTENSIONS):
                        found.append(os.path.join(dirpath, name))
        else:
            raise FileNotFoundError(p)
    return found


def run_analysis(root: str, paths: list[str], frontend: str,
                 compile_commands: str, dump: bool) -> int:
    if frontend == "auto":
        frontend = "clang" if clang_available() else "text"
    if frontend == "clang":
        if not clang_available():
            print(
                "ffsva_lockgraph: python clang bindings / libclang "
                "unavailable; skipping (77)",
                file=sys.stderr,
            )
            return 77
        cc_dir = compile_commands or os.path.join(root, "build")
        if not os.path.isfile(os.path.join(cc_dir, "compile_commands.json")):
            print(
                f"ffsva_lockgraph: no compile_commands.json under {cc_dir}; "
                "skipping (77)",
                file=sys.stderr,
            )
            return 77
        an = clang_frontend(root, cc_dir)
    else:
        files = collect_files(root, paths or ["src"])
        an = text_frontend(root, files)

    if dump:
        uniq = sorted({(a, b) for a, b, _, _ in an.edges})
        for a, b in uniq:
            print(f"{a} -> {b}")
        print(f"# {len(uniq)} edges, {len(an.functions)} functions")
        return 0

    findings = an.findings + graph_findings(an)
    for f in findings:
        print(f)
    if findings:
        print(f"ffsva_lockgraph: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(
        f"ffsva_lockgraph: clean ({len({(a, b) for a, b, _, _ in an.edges})} "
        f"edges, {len(an.functions)} functions, frontend={frontend})"
    )
    return 0


# ---------------------------------------------------------------------------
# Self-test fixtures: each must produce exactly the expected rule set.


def self_test(root: str) -> int:
    fixtures = os.path.join(root, "tests", "lint", "fixtures", "lockgraph")
    cases = {
        "cycle_ab.cpp": {"lock-cycle"},
        "blocking_under_lock.cpp": {"blocking-under-lock"},
        "condvar_no_loop.cpp": {"condvar-no-loop"},
        "rank_order.cpp": {"rank-order"},
        "clean.cpp": set(),
    }
    failures = 0
    for fname, expected in cases.items():
        path = os.path.join(fixtures, fname)
        an = text_frontend(root, [path])
        got = {f.rule for f in an.findings + graph_findings(an)}
        if got != expected:
            print(
                f"self-test FAILED: {fname}: expected {sorted(expected)}, "
                f"got {sorted(got)}",
                file=sys.stderr,
            )
            for f in an.findings + graph_findings(an):
                print(f"  {f}", file=sys.stderr)
            failures += 1
    if failures:
        return 1
    print(f"ffsva_lockgraph self-test: {len(cases)} fixture cases ok")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of tools/)")
    parser.add_argument("--frontend", choices=("auto", "text", "clang"),
                        default="text",
                        help="extraction frontend (default: text)")
    parser.add_argument("--compile-commands", default=None,
                        help="dir holding compile_commands.json (clang "
                        "frontend; default: ROOT/build)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the checks on fixtures")
    parser.add_argument("--dump-graph", action="store_true",
                        help="print the acquisition edges and exit")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to scan (default: src)")
    args = parser.parse_args(argv)

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if args.self_test:
        return self_test(root)
    try:
        return run_analysis(root, args.paths, args.frontend,
                            args.compile_commands, args.dump_graph)
    except FileNotFoundError as exc:
        print(f"ffsva_lockgraph: no such path: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
