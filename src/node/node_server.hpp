// relaxed-ok: the handoffs_in_/out_ tallies are monotonic telemetry counters;
// no consumer orders other memory against their loads.
// NodeServer: one cluster node — a serve-mode FfsVaInstance wrapped in the
// control-plane socket protocol (DESIGN.md §15). The node listens for a
// scheduler connection and speaks three RPCs:
//
//   * stream hand-off   kAssignStream (spec + resume cursor) → kAssignAck;
//                       materializes the spec and attaches it to the live
//                       engine. kEndStream cuts one stream's ingest; when
//                       it quiesces the node pushes kResults (the stream's
//                       per-frame verdicts) then kStreamEnded (the resume
//                       cursor) — naturally finished streams report the
//                       same way, with cursor == spec.end.
//   * snapshot exchange kSnapshot → kSnapshot carrying the engine's own
//                       InstanceSnapshot (ids translated to cluster-global),
//                       which the scheduler feeds to ClusterManager.
//   * drain/stop        kDrain ends every stream; kStop stops the engine,
//                       answers kStopAck, and serve() returns.
//
// Threading: the engine runs on its own thread (FfsVaInstance::run); the
// control loop owns the listener and the single scheduler channel. A lost
// scheduler connection sends the loop back to accept() — streams keep
// serving across scheduler restarts.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "net/channel.hpp"
#include "net/socket.hpp"
#include "node/protocol.hpp"
#include "node/stream_spec.hpp"
#include "runtime/annotations.hpp"

namespace ffsva::node {

struct NodeOptions {
  std::uint32_t node_id = 0;
  net::Endpoint listen = net::Endpoint::tcp("127.0.0.1", 0);
  int max_streams = 32;
  bool online = false;           ///< Engine pacing mode (run(online)).
  core::FfsVaConfig config;      ///< Base engine config (queues, workers...).
  std::string metrics_path;      ///< Optional JSONL export (node_id-stamped).
  std::string metrics_label;
};

class NodeServer {
 public:
  explicit NodeServer(NodeOptions opts);
  ~NodeServer();

  NodeServer(const NodeServer&) = delete;
  NodeServer& operator=(const NodeServer&) = delete;

  /// Bind the listener and start the engine thread. False if the endpoint
  /// cannot be bound. After start(), port() is the resolved TCP port.
  bool start();

  /// Control loop; blocks until kStop arrives or stop() is called.
  void serve();

  /// Async abort (any thread): the control loop winds down, the engine is
  /// stopped and joined.
  void stop();

  int port() const { return listener_.bound_port(); }
  net::NetCounters& counters() { return counters_; }
  /// Engine stats; valid once serve() has returned.
  const core::InstanceStats& stats() const { return stats_; }
  std::uint64_t handoffs_in() const {
    return handoffs_in_.load(std::memory_order_relaxed);
  }
  std::uint64_t handoffs_out() const {
    return handoffs_out_.load(std::memory_order_relaxed);
  }

 private:
  struct Owned {
    StreamSpec spec;
    int local_id = -1;
    bool handoff = false;  ///< kEndStream received (vs natural completion).
  };

  void handle_frame(net::Channel& ch, const net::WireFrame& frame);
  void handle_assign(net::Channel& ch, const net::WireFrame& frame);
  /// Detect quiesced streams and push their kResults + kStreamEnded.
  void poll_quiesced(net::Channel* ch);
  /// Engine snapshot with stream ids translated local → global; streams
  /// already reported (handed off / finished) are dropped from the view.
  core::InstanceSnapshot global_snapshot();
  void wire_node_metrics();

  NodeOptions opts_;
  core::FfsVaInstance inst_;
  net::Listener listener_;
  net::NetCounters counters_;
  std::thread engine_;  // thread-ok: joined in serve()'s epilogue / stop()
  std::atomic<bool> stopping_{false};
  std::atomic<bool> engine_joined_{false};
  core::InstanceStats stats_;

  // Outermost rank in the tree: RPC handlers scope this closed before any
  // engine call or socket send, but the engine's output sink takes it from
  // the reference thread, so it must order before every engine lock.
  mutable runtime::Mutex mu_{runtime::rank::kNodeControl,
                             "node::NodeServer::mu_"};
  std::map<std::uint32_t, Owned> owned_ FFSVA_GUARDED_BY(mu_);
  std::map<int, std::uint32_t> local_to_global_ FFSVA_GUARDED_BY(mu_);
  /// Per-stream survivor indices, appended by the engine's output sink
  /// (reference thread) and harvested when the stream quiesces.
  std::map<std::uint32_t, std::vector<std::uint64_t>> emitted_
      FFSVA_GUARDED_BY(mu_);

  std::atomic<std::int64_t> streams_owned_{0};
  std::atomic<std::uint64_t> handoffs_in_{0};
  std::atomic<std::uint64_t> handoffs_out_{0};
};

}  // namespace ffsva::node
