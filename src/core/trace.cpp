#include "core/trace.hpp"

namespace ffsva::core {

CascadeThresholds thresholds_of(const detect::StreamModels& models,
                                int number_of_objects) {
  CascadeThresholds t;
  t.sdd_delta = models.sdd->config().delta_diff;
  t.t_pre = models.snm->t_pre();
  t.number_of_objects = number_of_objects;
  return t;
}

namespace {
FrameRecord record_one(const video::Frame& f, const detect::StreamModels& models) {
  FrameRecord r;
  r.index = f.index;
  r.gt_target = f.gt.any_target(models.target);
  r.gt_count = f.gt.count_target(models.target);
  r.sdd_distance = models.sdd->distance(f.image);
  r.snm_score = models.snm->predict(f.image);
  r.tyolo_count = models.tyolo->detect(f.image).count_target(
      models.target, models.tyolo->config().confidence_threshold);
  r.ref_count = models.reference->detect(f.image).count_target(
      models.target, models.reference->config().confidence_threshold);
  r.ref_positive = r.ref_count >= 1;
  return r;
}
}  // namespace

std::vector<FrameRecord> record_trace(const video::SceneSimulator& sim,
                                      const detect::StreamModels& models,
                                      std::int64_t begin, std::int64_t end) {
  std::vector<FrameRecord> out;
  out.reserve(static_cast<std::size_t>(end - begin));
  for (std::int64_t i = begin; i < end; ++i) {
    out.push_back(record_one(sim.render(i), models));
  }
  return out;
}

std::vector<FrameRecord> record_trace(const std::vector<video::Frame>& frames,
                                      const detect::StreamModels& models) {
  std::vector<FrameRecord> out;
  out.reserve(frames.size());
  for (const auto& f : frames) out.push_back(record_one(f, models));
  return out;
}

TraceStats evaluate_trace(const std::vector<FrameRecord>& records,
                          const CascadeThresholds& thresholds) {
  TraceStats s;
  s.total = static_cast<std::int64_t>(records.size());
  for (const auto& r : records) {
    const FilteredAt at = apply_cascade(r, thresholds);
    if (at != FilteredAt::kSdd) ++s.sdd_pass;
    if (at != FilteredAt::kSdd && at != FilteredAt::kSnm) ++s.snm_pass;
    if (at == FilteredAt::kNone) ++s.output;
    if (r.ref_positive) {
      ++s.ref_positive;
      if (at != FilteredAt::kNone) ++s.false_negative;
    }
  }
  if (s.total > 0) {
    s.error_rate = static_cast<double>(s.false_negative) / static_cast<double>(s.total);
    s.output_rate = static_cast<double>(s.output) / static_cast<double>(s.total);
  }
  return s;
}

std::vector<bool> false_negative_mask(const std::vector<FrameRecord>& records,
                                      const CascadeThresholds& thresholds) {
  std::vector<bool> mask;
  mask.reserve(records.size());
  for (const auto& r : records) {
    mask.push_back(r.ref_positive && apply_cascade(r, thresholds) != FilteredAt::kNone);
  }
  return mask;
}

std::vector<bool> pass_mask(const std::vector<FrameRecord>& records,
                            const CascadeThresholds& thresholds) {
  std::vector<bool> mask;
  mask.reserve(records.size());
  for (const auto& r : records) {
    mask.push_back(apply_cascade(r, thresholds) == FilteredAt::kNone);
  }
  return mask;
}

}  // namespace ffsva::core
