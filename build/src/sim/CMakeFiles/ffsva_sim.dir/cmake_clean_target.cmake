file(REMOVE_RECURSE
  "libffsva_sim.a"
)
