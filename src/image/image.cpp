#include "image/image.hpp"

#include <algorithm>
#include <cmath>

namespace ffsva::image {

void Accumulator::add(const Image& img) {
  if (n_ == 0) {
    w_ = img.width();
    h_ = img.height();
    c_ = img.channels();
    sum_.assign(img.size_bytes(), 0.0);
  }
  assert(img.width() == w_ && img.height() == h_ && img.channels() == c_);
  const std::uint8_t* p = img.data();
  for (std::size_t i = 0; i < sum_.size(); ++i) sum_[i] += p[i];
  ++n_;
}

Image Accumulator::mean() const {
  if (n_ == 0) return {};
  Image out(w_, h_, c_);
  std::uint8_t* p = out.data();
  const double inv = 1.0 / n_;
  for (std::size_t i = 0; i < sum_.size(); ++i) {
    p[i] = static_cast<std::uint8_t>(std::clamp(sum_[i] * inv + 0.5, 0.0, 255.0));
  }
  return out;
}

}  // namespace ffsva::image
