
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/video/clips_test.cpp" "tests/CMakeFiles/video_tests.dir/video/clips_test.cpp.o" "gcc" "tests/CMakeFiles/video_tests.dir/video/clips_test.cpp.o.d"
  "/root/repo/tests/video/codec_test.cpp" "tests/CMakeFiles/video_tests.dir/video/codec_test.cpp.o" "gcc" "tests/CMakeFiles/video_tests.dir/video/codec_test.cpp.o.d"
  "/root/repo/tests/video/profiles_test.cpp" "tests/CMakeFiles/video_tests.dir/video/profiles_test.cpp.o" "gcc" "tests/CMakeFiles/video_tests.dir/video/profiles_test.cpp.o.d"
  "/root/repo/tests/video/scene_property_test.cpp" "tests/CMakeFiles/video_tests.dir/video/scene_property_test.cpp.o" "gcc" "tests/CMakeFiles/video_tests.dir/video/scene_property_test.cpp.o.d"
  "/root/repo/tests/video/scene_test.cpp" "tests/CMakeFiles/video_tests.dir/video/scene_test.cpp.o" "gcc" "tests/CMakeFiles/video_tests.dir/video/scene_test.cpp.o.d"
  "/root/repo/tests/video/source_test.cpp" "tests/CMakeFiles/video_tests.dir/video/source_test.cpp.o" "gcc" "tests/CMakeFiles/video_tests.dir/video/source_test.cpp.o.d"
  "/root/repo/tests/video/tor_schedule_test.cpp" "tests/CMakeFiles/video_tests.dir/video/tor_schedule_test.cpp.o" "gcc" "tests/CMakeFiles/video_tests.dir/video/tor_schedule_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ffsva_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ffsva_core.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/ffsva_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/ffsva_video.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ffsva_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/ffsva_image.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ffsva_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
