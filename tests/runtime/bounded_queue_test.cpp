// BoundedQueue: the decoupling primitive between pipeline stages.
#include "runtime/bounded_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace ffsva::runtime {
namespace {

TEST(BoundedQueue, PushPopSingleThread) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_EQ(q.depth(), 2u);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_EQ(q.depth(), 0u);
}

TEST(BoundedQueue, TryPushRespectsCapacity) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  EXPECT_EQ(q.depth(), 2u);
}

TEST(BoundedQueue, TryPopEmptyReturnsNullopt) {
  BoundedQueue<int> q(2);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BoundedQueue, ZeroCapacityClampedToOne) {
  BoundedQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_TRUE(q.try_push(7));
  EXPECT_FALSE(q.try_push(8));
}

TEST(BoundedQueue, CloseWakesConsumersAndDrains) {
  BoundedQueue<int> q(4);
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_FALSE(q.push(3));  // producers fail after close
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value());  // end of stream
}

TEST(BoundedQueue, CloseUnblocksWaitingConsumer) {
  BoundedQueue<int> q(2);
  std::thread consumer([&] { EXPECT_FALSE(q.pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  consumer.join();
}

TEST(BoundedQueue, CloseUnblocksWaitingProducer) {
  BoundedQueue<int> q(1);
  q.push(1);
  std::thread producer([&] { EXPECT_FALSE(q.push(2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  producer.join();
}

// Close must be idempotent — quarantine and a racing producer exit can both
// close the same queue, in any order, without upsetting drain semantics.
TEST(BoundedQueue, CloseIsIdempotent) {
  BoundedQueue<int> q(4);
  q.push(1);
  q.close();
  q.close();
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_EQ(q.pop().value(), 1);  // drain still works after repeated close
  EXPECT_FALSE(q.pop().has_value());
  q.close();  // and close after drain is still a no-op
  EXPECT_FALSE(q.push(2));
}

// The timed variants must observe close the same way the blocking ones do:
// push_for fails fast (no timeout wait) on a closed queue …
TEST(BoundedQueue, PushForAfterCloseFailsFast) {
  BoundedQueue<int> q(1);
  q.close();
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(q.push_for(1, std::chrono::milliseconds(500)));
  const auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(waited, std::chrono::milliseconds(100));  // no full-timeout sleep
  EXPECT_EQ(q.depth(), 0u);
}

// … and pop_for drains the remaining elements, then reports end of stream
// without waiting out its timeout.
TEST(BoundedQueue, PopForAfterCloseDrainsThenEndsFast) {
  BoundedQueue<int> q(4);
  q.push(7);
  q.push(8);
  q.close();
  EXPECT_EQ(q.pop_for(std::chrono::milliseconds(500)).value(), 7);
  EXPECT_EQ(q.pop_for(std::chrono::milliseconds(500)).value(), 8);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(q.pop_for(std::chrono::milliseconds(500)).has_value());
  const auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(waited, std::chrono::milliseconds(100));
}

TEST(BoundedQueue, PopForTimesOut) {
  BoundedQueue<int> q(1);
  const auto got = q.pop_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got.has_value());
}

TEST(BoundedQueue, PushForTimesOutWhenFull) {
  BoundedQueue<int> q(1);
  q.push(1);
  EXPECT_FALSE(q.push_for(2, std::chrono::milliseconds(20)));
  EXPECT_EQ(q.depth(), 1u);
}

TEST(BoundedQueue, PopBatchTakesUpToMax) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) q.push(i);
  const auto batch = q.pop_batch(3);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0], 0);
  EXPECT_EQ(batch[2], 2);
  EXPECT_EQ(q.depth(), 2u);
}

TEST(BoundedQueue, PopBatchDrainsWhenFewerAvailable) {
  BoundedQueue<int> q(8);
  q.push(42);
  const auto batch = q.pop_batch(10);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0], 42);
}

TEST(BoundedQueue, PopExactWaitsForFullCount) {
  BoundedQueue<int> q(8);
  std::vector<int> got;
  std::thread consumer([&] { got = q.pop_exact(4); });
  for (int i = 0; i < 4; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    q.push(i);
  }
  consumer.join();
  ASSERT_EQ(got.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
}

TEST(BoundedQueue, PopExactDrainsShortOnClose) {
  BoundedQueue<int> q(8);
  q.push(1);
  q.push(2);
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.close();
  });
  const auto got = q.pop_exact(5);
  closer.join();
  EXPECT_EQ(got.size(), 2u);
}

TEST(BoundedQueue, FifoOrderPreserved) {
  BoundedQueue<int> q(128);
  for (int i = 0; i < 100; ++i) q.push(i);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(q.pop().value(), i);
}

TEST(BoundedQueue, CountersTrackTraffic) {
  BoundedQueue<int> q(4);
  q.push(1);
  q.push(2);
  q.pop();
  EXPECT_EQ(q.total_pushed(), 2u);
  EXPECT_EQ(q.total_popped(), 1u);
}

// Property: under concurrent producers and consumers, every pushed element
// is popped exactly once (no loss, no duplication) — the invariant the
// pipeline depends on for its "no frame lost" guarantee.
class BoundedQueueConcurrencyTest
    : public ::testing::TestWithParam<std::tuple<int, int, std::size_t>> {};

TEST_P(BoundedQueueConcurrencyTest, NoLossNoDuplication) {
  const auto [producers, consumers, capacity] = GetParam();
  const int per_producer = 500;
  BoundedQueue<int> q(capacity);
  std::vector<std::thread> threads;
  std::mutex seen_mu;
  std::vector<int> seen;

  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < per_producer; ++i) {
        ASSERT_TRUE(q.push(p * per_producer + i));
      }
    });
  }
  for (int c = 0; c < consumers; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.pop()) {
        std::lock_guard lk(seen_mu);
        seen.push_back(*v);
      }
    });
  }
  for (int p = 0; p < producers; ++p) threads[static_cast<std::size_t>(p)].join();
  q.close();
  for (std::size_t t = static_cast<std::size_t>(producers); t < threads.size(); ++t) {
    threads[t].join();
  }

  ASSERT_EQ(seen.size(), static_cast<std::size_t>(producers) * per_producer);
  std::sort(seen.begin(), seen.end());
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], static_cast<int>(i));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BoundedQueueConcurrencyTest,
    ::testing::Values(std::make_tuple(1, 1, std::size_t{2}),
                      std::make_tuple(1, 1, std::size_t{64}),
                      std::make_tuple(2, 2, std::size_t{4}),
                      std::make_tuple(4, 1, std::size_t{8}),
                      std::make_tuple(1, 4, std::size_t{8}),
                      std::make_tuple(4, 4, std::size_t{1})));

// Eventcount protocol: activity between prepare() and wait() must make the
// wait return immediately (no missed wakeup).
TEST(QueueWaiter, ActivityAfterPrepareIsNotMissed) {
  QueueWaiter w;
  const auto ticket = w.prepare();
  w.notify();
  w.wait(ticket);  // must not block
  // A fresh ticket with no activity times out.
  const auto t2 = w.prepare();
  EXPECT_FALSE(w.wait_for(t2, std::chrono::milliseconds(10)));
}

// A consumer multiplexing several queues through one waiter is woken by a
// push on any of them, and by close.
TEST(QueueWaiter, WakesMultiQueueConsumerOnPushAndClose) {
  QueueWaiter waiter;
  BoundedQueue<int> a(4), b(4);
  a.set_waiter(&waiter);
  b.set_waiter(&waiter);

  std::vector<int> got;
  std::thread consumer([&] {
    for (;;) {
      const auto ticket = waiter.prepare();
      bool work = false;
      for (BoundedQueue<int>* q : {&a, &b}) {
        while (auto v = q->try_pop()) {
          got.push_back(*v);
          work = true;
        }
      }
      if (a.closed() && b.closed() && a.depth() == 0 && b.depth() == 0) return;
      if (!work) waiter.wait(ticket);
    }
  });

  for (int i = 0; i < 50; ++i) {
    ((i % 2) ? a : b).push(i);
    if (i % 16 == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  a.close();
  b.close();
  consumer.join();
  EXPECT_EQ(got.size(), 50u);
}

// Per-consumer FIFO: a single consumer observes producer order.
TEST(BoundedQueue, SingleProducerSingleConsumerOrder) {
  BoundedQueue<int> q(3);
  std::vector<int> got;
  std::thread consumer([&] {
    while (auto v = q.pop()) got.push_back(*v);
  });
  for (int i = 0; i < 200; ++i) q.push(i);
  q.close();
  consumer.join();
  ASSERT_EQ(got.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
}

}  // namespace
}  // namespace ffsva::runtime
