// Wall-clock stopwatch for the threaded engine's measurements.
#pragma once

#include <chrono>

namespace ffsva::runtime {

class Stopwatch {
 public:
  using Clock = std::chrono::steady_clock;

  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsed_sec() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double elapsed_ms() const { return elapsed_sec() * 1e3; }
  double elapsed_us() const { return elapsed_sec() * 1e6; }

 private:
  Clock::time_point start_;
};

}  // namespace ffsva::runtime
