#include "video/clips.hpp"

#include <gtest/gtest.h>

#include "video/profiles.hpp"

namespace ffsva::video {
namespace {

SceneSimulator make_sim(double tor, std::int64_t frames = 6000) {
  SceneConfig cfg = jackson_profile();
  cfg.width = 96;
  cfg.height = 72;
  cfg.tor = tor;
  return SceneSimulator(cfg, 33, frames);
}

TEST(Clips, PresenceMaskMatchesIntervals) {
  const auto sim = make_sim(0.3);
  const auto mask = presence_mask(sim);
  ASSERT_EQ(mask.size(), static_cast<std::size_t>(sim.total_frames()));
  std::int64_t covered = 0;
  for (auto m : mask) covered += m;
  EXPECT_NEAR(static_cast<double>(covered) / static_cast<double>(mask.size()),
              sim.planned_tor(), 1e-9);
}

TEST(Clips, WindowTorBasics) {
  std::vector<std::uint8_t> presence{0, 0, 1, 1, 1, 0, 0, 0};
  EXPECT_DOUBLE_EQ(window_tor(presence, 0, 8), 3.0 / 8);
  EXPECT_DOUBLE_EQ(window_tor(presence, 2, 5), 1.0);
  EXPECT_DOUBLE_EQ(window_tor(presence, 5, 8), 0.0);
  EXPECT_DOUBLE_EQ(window_tor(presence, 4, 4), 0.0);
}

TEST(Clips, FindsRequestedTors) {
  const auto sim = make_sim(0.3);
  const auto clips = find_clips(sim, {0.1, 0.3, 0.5}, 600, /*tolerance=*/0.08);
  EXPECT_GE(clips.size(), 2u);
  for (const auto& c : clips) {
    EXPECT_EQ(c.end - c.begin, 600);
    // Realized TOR matches what find_clips claims.
    const auto mask = presence_mask(sim);
    EXPECT_NEAR(window_tor(mask, c.begin, c.end), c.tor, 1e-9);
  }
}

TEST(Clips, ClipsDoNotOverlap) {
  const auto sim = make_sim(0.4);
  const auto clips = find_clips(sim, {0.2, 0.3, 0.4, 0.5}, 500, 0.15);
  for (std::size_t i = 0; i < clips.size(); ++i) {
    for (std::size_t j = i + 1; j < clips.size(); ++j) {
      const bool disjoint =
          clips[i].end <= clips[j].begin || clips[j].end <= clips[i].begin;
      EXPECT_TRUE(disjoint) << "clips " << i << " and " << j << " overlap";
    }
  }
}

TEST(Clips, UnreachableTorSkipped) {
  const auto sim = make_sim(0.1);
  // A 0.95-TOR window cannot exist in a 0.1-TOR stream.
  const auto clips = find_clips(sim, {0.95}, 600, 0.05);
  EXPECT_TRUE(clips.empty());
}

TEST(Clips, DegenerateLengths) {
  const auto sim = make_sim(0.3, 1000);
  EXPECT_TRUE(find_clips(sim, {0.3}, 0).empty());
  EXPECT_TRUE(find_clips(sim, {0.3}, 2000).empty());  // longer than stream
  const auto whole = find_clips(sim, {sim.planned_tor()}, 1000, 0.05);
  ASSERT_EQ(whole.size(), 1u);
  EXPECT_EQ(whole[0].begin, 0);
}

TEST(Clips, BestMatchIsChosenAmongCandidates) {
  const auto sim = make_sim(0.35);
  const auto clips = find_clips(sim, {0.2}, 400, 0.2);
  ASSERT_EQ(clips.size(), 1u);
  // No other window (on the search stride) should be strictly closer.
  const auto mask = presence_mask(sim);
  const double err = std::abs(clips[0].tor - 0.2);
  for (std::int64_t b = 0; b + 400 <= sim.total_frames(); b += 25) {
    EXPECT_GE(std::abs(window_tor(mask, b, b + 400) - 0.2) + 1e-12, err);
  }
}

}  // namespace
}  // namespace ffsva::video
