#!/usr/bin/env bash
# cluster_smoke.sh — end-to-end multi-process smoke test (DESIGN.md §15).
#
# Boots two real ffsva_node server processes on kernel-picked ports, runs the
# socket scheduler against them with one forced live migration, and requires:
#
#   * sched exits 0 with ok:true and verified:true — the merged cluster
#     verdicts are bit-identical to the single-process reference run,
#     including across the hand-off;
#   * at least one hand-off actually happened (handoffs >= 1);
#   * both node processes shut down cleanly (exit 0) after the scheduler's
#     kStop, within the grace window — no leaked processes, no SIGKILL.
#
# usage: tools/cluster_smoke.sh [BUILD_DIR]   (default: build)
set -u

BUILD_DIR="${1:-build}"
NODE_BIN="$BUILD_DIR/src/node/ffsva_node"
if [[ ! -x "$NODE_BIN" ]]; then
  echo "cluster_smoke: $NODE_BIN not found or not executable" >&2
  exit 1
fi

WORK="$(mktemp -d)"
NODE0_PID="" NODE1_PID=""

cleanup() {
  for pid in $NODE0_PID $NODE1_PID; do
    kill "$pid" 2>/dev/null || true
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "cluster_smoke: FAIL: $*" >&2
  echo "--- node0 stderr ---" >&2; cat "$WORK/node0.err" >&2 || true
  echo "--- node1 stderr ---" >&2; cat "$WORK/node1.err" >&2 || true
  exit 1
}

# Boot a node with --port 0 and read the kernel-resolved port from the JSON
# line it prints on stdout. Sets REPLY_PORT and REPLY_PID (no subshell — both
# must survive into the caller).
boot_node() {
  local id="$1"
  "$NODE_BIN" serve --port 0 --node-id "$id" --sdd-workers 2 \
    >"$WORK/node$id.out" 2>"$WORK/node$id.err" &
  REPLY_PID=$!
  REPLY_PORT=""
  for _ in $(seq 1 100); do
    REPLY_PORT=$(sed -n 's/.*"port":\([0-9]*\).*/\1/p' "$WORK/node$id.out" | head -1)
    [[ -n "$REPLY_PORT" ]] && break
    kill -0 "$REPLY_PID" 2>/dev/null || fail "node$id died during startup"
    sleep 0.1
  done
  [[ -n "$REPLY_PORT" ]] || fail "node$id never printed its port"
}

boot_node 0; PORT0=$REPLY_PORT; NODE0_PID=$REPLY_PID
boot_node 1; PORT1=$REPLY_PORT; NODE1_PID=$REPLY_PID
echo "cluster_smoke: node0 pid=$NODE0_PID port=$PORT0, node1 pid=$NODE1_PID port=$PORT1"

# Scheduler: 4 streams x 1200 frames, force one migration 1 s in, and verify
# the merged verdicts against the single-process reference.
SCHED_OUT="$WORK/sched.json"
"$NODE_BIN" sched \
  --node "127.0.0.1:$PORT0" --node "127.0.0.1:$PORT1" \
  --streams 4 --frames 1200 --calib 12 --width 96 --height 72 \
  --snapshot-interval-ms 50 --force-migration-at 1.0 --deadline 300 \
  --verify-local | tee "$SCHED_OUT"
SCHED_RC=${PIPESTATUS[0]}
[[ "$SCHED_RC" -eq 0 ]] || fail "sched exited $SCHED_RC"

grep -q '"ok":true' "$SCHED_OUT" || fail "sched report not ok"
grep -q '"verified":true' "$SCHED_OUT" || fail "cluster verdicts diverge from single-process reference"
HANDOFFS=$(sed -n 's/.*"handoffs":\([0-9]*\).*/\1/p' "$SCHED_OUT")
[[ -n "$HANDOFFS" && "$HANDOFFS" -ge 1 ]] || fail "expected >=1 live hand-off, got '${HANDOFFS:-}'"

# The scheduler's kStop must bring both nodes down cleanly on their own.
wait_node() {
  local name="$1" pid="$2" rc
  for _ in $(seq 1 150); do
    kill -0 "$pid" 2>/dev/null || { wait "$pid"; return $?; }
    sleep 0.1
  done
  fail "$name still running 15 s after scheduler stop"
}
wait_node node0 "$NODE0_PID"; RC0=$?
NODE0_PID=""
wait_node node1 "$NODE1_PID"; RC1=$?
NODE1_PID=""
[[ "$RC0" -eq 0 ]] || fail "node0 exited $RC0"
[[ "$RC1" -eq 0 ]] || fail "node1 exited $RC1"

echo "cluster_smoke: PASS (handoffs=$HANDOFFS, nodes exited cleanly)"
