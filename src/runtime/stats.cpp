#include "runtime/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ffsva::runtime {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram() : buckets_(64 * kSubBuckets, 0) {}

std::size_t Histogram::bucket_index(double value) {
  if (!(value > 1.0)) return 0;  // [0,1] and NaN land in bucket 0
  int exp = 0;
  const double frac = std::frexp(value, &exp);  // value = frac * 2^exp, frac in [0.5,1)
  // Octave = exp-1; position within octave from the fraction.
  const int octave = std::clamp(exp - 1, 0, 62);
  const int sub = std::clamp(
      static_cast<int>((frac - 0.5) * 2.0 * kSubBuckets), 0, kSubBuckets - 1);
  return static_cast<std::size_t>(octave * kSubBuckets + sub) + 1;
}

double Histogram::bucket_value(std::size_t index) {
  if (index == 0) return 0.5;
  const std::size_t i = index - 1;
  const auto octave = static_cast<int>(i / kSubBuckets);
  const auto sub = static_cast<int>(i % kSubBuckets);
  const double frac = 0.5 + (static_cast<double>(sub) + 0.5) / (2.0 * kSubBuckets);
  return std::ldexp(frac, octave + 1);
}

void Histogram::add(double value) {
  stats_.add(value);
  const std::size_t idx = std::min(bucket_index(value), buckets_.size() - 1);
  ++buckets_[idx];
}

void Histogram::merge(const Histogram& other) {
  stats_.merge(other.stats_);
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
}

double Histogram::quantile(double q) const {
  const std::uint64_t n = stats_.count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(n - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen > target) {
      // Clamp the bucket's representative value into the observed range so
      // bucketing error never reports beyond min/max.
      return std::clamp(bucket_value(i), stats_.min(), stats_.max());
    }
  }
  return stats_.max();
}

std::string Histogram::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f",
                static_cast<unsigned long long>(count()), mean(), p50(), p90(),
                p99(), max());
  return buf;
}

}  // namespace ffsva::runtime
