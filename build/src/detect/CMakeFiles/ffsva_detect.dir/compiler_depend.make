# Empty compiler generated dependencies file for ffsva_detect.
# This may be replaced when dependencies are built.
