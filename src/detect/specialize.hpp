// Stream specialization — the paper's Section 4.1 procedure:
//
//   "For each video stream, we first label its video frames by using
//    YOLOv2. These labeled data are divided into two subsets as a training
//    dataset and a test dataset. The former is used to train the SDD and
//    the SNM for each video stream and the latter is used to select a set
//    of suitable thresholds for delta_diff, c_low, and c_high."
//
// specialize_stream() takes a calibration window of frames from one camera
// and produces the full per-stream model bundle: estimated background,
// reference detector, calibrated SDD, trained SNM, and the (architecturally
// shared) T-YOLO view of the stream.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "detect/background.hpp"
#include "detect/reference.hpp"
#include "detect/sdd.hpp"
#include "detect/snm.hpp"
#include "detect/tyolo.hpp"
#include "video/frame.hpp"

namespace ffsva::detect {

struct SpecializeConfig {
  video::ObjectClass target = video::ObjectClass::kCar;
  int background_samples = 25;
  SddConfig sdd{};
  SnmConfig snm{};
  TYoloConfig tyolo{};
  ReferenceConfig reference{};
};

/// Everything one stream's pipeline needs. Filters are shared_ptr because
/// the threaded engine hands them to per-stage threads and the benchmark
/// harnesses reuse them across sweep points.
struct StreamModels {
  video::ObjectClass target = video::ObjectClass::kCar;
  image::Image background;
  std::shared_ptr<const ReferenceDetector> reference;
  std::shared_ptr<SddFilter> sdd;
  std::shared_ptr<SnmFilter> snm;
  std::shared_ptr<const TYoloDetector> tyolo;
  SnmTrainReport snm_report;
  double sdd_delta = 0.0;
  double label_positive_rate = 0.0;  ///< Share of calibration frames labeled positive.
};

/// Build the per-stream models from a calibration window. Labels come from
/// the reference model (not ground truth), exactly as in the paper.
StreamModels specialize_stream(const std::vector<video::Frame>& calibration_frames,
                               const SpecializeConfig& config, std::uint64_t seed);

}  // namespace ffsva::detect
