#include "detect/preproc.hpp"

#include <algorithm>
#include <cstdlib>

#include "runtime/parallel_for.hpp"

namespace ffsva::detect {

void diff_preprocess(const image::Image& frame, const image::Image& bg_small,
                     int input_size, PreprocScratch& ws, nn::Tensor& out, int n) {
  const int s = input_size;
  ws.plan.ensure(frame.width(), frame.height(), s, s);
  resize_bilinear_into(frame, ws.plan, ws.resized);

  // Max-over-channels |frame - background|, matching the detectors' motion
  // map so chromatic-only objects (a luma-neutral red car) stay visible.
  const int channels = bg_small.channels();
  const int rc = ws.resized.channels();
  const std::uint8_t* a = ws.resized.data();
  const std::uint8_t* b = bg_small.data();
  float* dst = out.data() + static_cast<std::size_t>(n) * s * s;
  const std::size_t pixels = static_cast<std::size_t>(s) * s;
  constexpr float kInv255 = 1.0f / 255.0f;
  if (channels == 1 && rc == 1) {
    for (std::size_t i = 0; i < pixels; ++i) {
      dst[i] = static_cast<float>(std::abs(static_cast<int>(a[i]) -
                                           static_cast<int>(b[i]))) * kInv255;
    }
  } else {
    for (std::size_t i = 0; i < pixels; ++i) {
      int d = 0;
      for (int c = 0; c < channels; ++c) {
        d = std::max(d, std::abs(static_cast<int>(a[i * rc + c]) -
                                 static_cast<int>(b[i * channels + c])));
      }
      dst[i] = static_cast<float>(d) * kInv255;
    }
  }
}

void diff_preprocess_batch(const std::vector<const image::Image*>& frames,
                           const image::Image& bg_small, int input_size,
                           std::vector<PreprocScratch>& slots, nn::Tensor& out) {
  const int batch = static_cast<int>(frames.size());
  out.resize(batch, 1, input_size, input_size);
  if (slots.size() < frames.size()) slots.resize(frames.size());
  runtime::parallel_for(0, batch, /*grain=*/4, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      diff_preprocess(*frames[static_cast<std::size_t>(i)], bg_small, input_size,
                      slots[static_cast<std::size_t>(i)], out, static_cast<int>(i));
    }
  });
}

}  // namespace ffsva::detect
