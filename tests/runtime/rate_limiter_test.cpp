#include "runtime/rate_limiter.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "runtime/stopwatch.hpp"

namespace ffsva::runtime {
namespace {

TEST(RateLimiter, BurstAllowsImmediateAcquires) {
  RateLimiter limiter(10.0, /*burst=*/5.0);
  Stopwatch w;
  for (int i = 0; i < 5; ++i) limiter.acquire();
  EXPECT_LT(w.elapsed_ms(), 50.0);  // burst tokens, no sleeping
}

TEST(RateLimiter, SustainedRateIsEnforced) {
  // 200 tokens/s, take 21 after the single burst token: needs >= ~0.1 s.
  RateLimiter limiter(200.0, 1.0);
  Stopwatch w;
  for (int i = 0; i < 21; ++i) limiter.acquire();
  const double elapsed = w.elapsed_sec();
  EXPECT_GE(elapsed, 0.08);
  EXPECT_LT(elapsed, 0.5);
}

TEST(RateLimiter, TryAcquireFailsWhenEmpty) {
  RateLimiter limiter(1.0, 1.0);
  EXPECT_TRUE(limiter.try_acquire());
  EXPECT_FALSE(limiter.try_acquire());  // bucket drained, refill is ~1/s
}

TEST(RateLimiter, TryAcquireRecoversAfterWait) {
  RateLimiter limiter(1000.0, 1.0);
  EXPECT_TRUE(limiter.try_acquire());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(limiter.try_acquire());
}

TEST(RateLimiter, DegenerateRateClamped) {
  RateLimiter limiter(0.0, 0.0);  // clamps to 1 token/s, burst 1
  EXPECT_TRUE(limiter.try_acquire());
}

}  // namespace
}  // namespace ffsva::runtime
