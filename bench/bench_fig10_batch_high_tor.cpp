// Figure 10 — throughput and latency under different batch mechanisms,
// TOR 0.980.
//
// Paper: at high TOR most frames reach T-YOLO regardless of BatchSize, so
// BatchSize barely moves throughput; the dynamic batch mechanism still has
// the lower, flat average latency and "should be considered first".
#include "common.hpp"

using namespace ffsva;

int main() {
  bench::print_header("FIGURE 10 -- batch mechanisms at TOR ~= 0.980 (10 streams, offline)");
  auto params = sim::MarkovParams::for_tor(0.98);

  std::printf("%-10s | %-21s | %-21s | %-21s\n", "", "static batch",
              "feedback queue", "dynamic batch");
  std::printf("%-10s | %9s %9s | %9s %9s | %9s %9s\n", "BatchSize", "thr(FPS)",
              "lat(ms)", "thr(FPS)", "lat(ms)", "thr(FPS)", "lat(ms)");
  bench::print_rule();
  for (int bs : {1, 2, 4, 8, 12, 16, 20, 24, 30}) {
    double thr[3], lat[3];
    for (const auto policy : {core::BatchPolicy::kStatic, core::BatchPolicy::kFeedback,
                              core::BatchPolicy::kDynamic}) {
      core::FfsVaConfig cfg;
      cfg.batch_policy = policy;
      cfg.batch_size = bs;
      const auto r = sim::simulate_ffsva(
          bench::sim_setup_from(params, cfg, 10, false, 2500));
      thr[static_cast<int>(policy)] = r.throughput_fps;
      lat[static_cast<int>(policy)] = r.output_latency_ms.mean();
    }
    std::printf("%-10d | %9.0f %9.0f | %9.0f %9.0f | %9.0f %9.0f\n", bs, thr[0],
                lat[0], thr[1], lat[1], thr[2], lat[2]);
  }
  std::printf("(paper: BatchSize has little effect on throughput at high TOR;\n"
              " dynamic batching keeps the average latency low and flat)\n");
  return 0;
}
