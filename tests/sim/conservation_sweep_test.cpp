// Property sweep: frame conservation holds in the simulator for every
// combination of batch policy, stream count, TOR and mode. Every ingested
// frame must terminate exactly once (filtered or output), and the stage
// counters must chain (the queueing network neither loses nor duplicates).
#include <gtest/gtest.h>

#include "sim/ffsva_sim.hpp"

namespace ffsva::sim {
namespace {

struct Case {
  core::BatchPolicy policy;
  int streams;
  double tor;
  bool online;
};

class ConservationSweep : public ::testing::TestWithParam<Case> {};

TEST_P(ConservationSweep, EveryFrameTerminatesExactlyOnce) {
  const Case c = GetParam();
  SimSetup s;
  s.config.batch_policy = c.policy;
  s.num_streams = c.streams;
  s.online = c.online;
  s.duration_sec = 30.0;
  s.frames_per_stream = c.online ? 100000 : 1200;
  s.make_outcomes = [&](int i) {
    return std::make_unique<MarkovOutcomes>(MarkovParams::for_tor(c.tor),
                                            3000u + static_cast<unsigned>(i));
  };
  const SimResult r = simulate_ffsva(s);

  std::int64_t ingested = 0;
  for (const auto& st : r.streams) {
    EXPECT_EQ(st.sdd_in, st.ingested);
    EXPECT_EQ(st.snm_in, st.sdd_pass);
    EXPECT_EQ(st.tyolo_in, st.snm_pass);
    EXPECT_EQ(st.outputs, st.tyolo_pass);
    ingested += st.ingested;
  }
  EXPECT_EQ(static_cast<std::int64_t>(r.terminal_latency_ms.count()), ingested);
  EXPECT_EQ(static_cast<std::int64_t>(r.output_latency_ms.count()), r.total_outputs);
  if (!c.online) {
    EXPECT_EQ(r.total_dropped, 0) << "offline mode must never drop";
    EXPECT_EQ(ingested, static_cast<std::int64_t>(c.streams) * 1200);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PolicyStreamsTorMode, ConservationSweep,
    ::testing::Values(
        Case{core::BatchPolicy::kStatic, 1, 0.1, false},
        Case{core::BatchPolicy::kStatic, 4, 0.5, false},
        Case{core::BatchPolicy::kStatic, 2, 0.9, true},
        Case{core::BatchPolicy::kFeedback, 1, 0.1, false},
        Case{core::BatchPolicy::kFeedback, 6, 0.3, true},
        Case{core::BatchPolicy::kFeedback, 20, 0.103, true},
        Case{core::BatchPolicy::kFeedback, 3, 1.0, false},
        Case{core::BatchPolicy::kDynamic, 1, 0.1, false},
        Case{core::BatchPolicy::kDynamic, 8, 0.2, true},
        Case{core::BatchPolicy::kDynamic, 30, 0.103, true},
        Case{core::BatchPolicy::kDynamic, 2, 0.0, false},
        Case{core::BatchPolicy::kDynamic, 5, 1.0, true}));

}  // namespace
}  // namespace ffsva::sim
