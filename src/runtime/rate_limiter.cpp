#include "runtime/rate_limiter.hpp"

#include <algorithm>
#include <thread>

namespace ffsva::runtime {

RateLimiter::RateLimiter(double rate_per_sec, double burst)
    : rate_(rate_per_sec > 0 ? rate_per_sec : 1.0),
      burst_(std::max(burst, 1.0)),
      tokens_(burst_),
      last_(Clock::now()) {}

void RateLimiter::refill(Clock::time_point now) {
  const std::chrono::duration<double> dt = now - last_;
  last_ = now;
  tokens_ = std::min(burst_, tokens_ + dt.count() * rate_);
}

void RateLimiter::acquire() {
  refill(Clock::now());
  if (tokens_ < 1.0) {
    const double deficit = 1.0 - tokens_;
    const auto wait = std::chrono::duration<double>(deficit / rate_);
    // cancel-ok: bounded by one token's refill interval (1/rate, sub-second
    // at any configured FPS) — pacing, not an open-ended block.
    std::this_thread::sleep_for(wait);
    refill(Clock::now());
  }
  tokens_ -= 1.0;
}

bool RateLimiter::try_acquire() {
  refill(Clock::now());
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

}  // namespace ffsva::runtime
