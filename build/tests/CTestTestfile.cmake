# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(runtime_tests "/root/repo/build/tests/runtime_tests")
set_tests_properties(runtime_tests PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;10;ffsva_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(image_tests "/root/repo/build/tests/image_tests")
set_tests_properties(image_tests PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;19;ffsva_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(video_tests "/root/repo/build/tests/video_tests")
set_tests_properties(video_tests PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;27;ffsva_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(nn_tests "/root/repo/build/tests/nn_tests")
set_tests_properties(nn_tests PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;36;ffsva_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(detect_tests "/root/repo/build/tests/detect_tests")
set_tests_properties(detect_tests PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;46;ffsva_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_tests "/root/repo/build/tests/core_tests")
set_tests_properties(core_tests PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;59;ffsva_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sim_tests "/root/repo/build/tests/sim_tests")
set_tests_properties(sim_tests PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;68;ffsva_add_test;/root/repo/tests/CMakeLists.txt;0;")
