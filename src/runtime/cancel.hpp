// relaxed-ok: the cancel flag and deadline are advisory single-bit signals
// polled on the kernel hot path; the unwind synchronizes via exception
// propagation and queue edges, never via this flag's ordering.
//
// Cooperative cancellation for the inference hot path.
//
// A wedged model call (a stuck forward, a pathological frame) used to be
// merely *observable* via heartbeat stall ticks; the thread itself stayed
// stuck for the rest of the run. CancelToken makes such calls unwindable:
// the watchdog flips a shared flag, and the call notices at the next tile
// boundary — a GEMM row panel, a conv sample, a segmentation pass — and
// unwinds via CancelledError. The check is designed to be cheap enough for
// kernel inner loops: one thread-local load plus one relaxed atomic load
// when no deadline is armed.
//
// Propagation model: a stage thread installs its token with
// ScopedCancelToken for the duration of one model call; parallel_for
// captures the caller's current token and re-installs it on every pool
// worker running that loop's chunks, so `check_cancel()` observes the same
// request from every lane. Tokens are copyable handles on shared state
// (same idiom as StopToken) and a cancelled token stays cancelled until
// reset() — one token is reused across calls by resetting it between them.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>

namespace ffsva::runtime {

/// Thrown by check_cancel() when the installed token is cancelled. Derives
/// from std::runtime_error so generic catch sites still account the frame;
/// cancellation-aware sites catch this type first to trigger escalation.
class CancelledError : public std::runtime_error {
 public:
  CancelledError() : std::runtime_error("model call cancelled") {}
  explicit CancelledError(const std::string& what) : std::runtime_error(what) {}
};

/// Copyable handle on a shared cancellation flag plus an optional absolute
/// deadline on the steady clock. All copies observe the same request.
/// cancel() / set_deadline() may race with cancelled() from any thread; the
/// flag is a relaxed load on the hot path (the unwind itself synchronizes
/// via the exception propagation and queue edges, not via this flag).
class CancelToken {
 public:
  CancelToken() : state_(std::make_shared<State>()) {}

  /// Request cancellation. Idempotent, thread-safe.
  void cancel() const { state_->flag.store(true, std::memory_order_relaxed); }

  /// Clear the flag and deadline so the token can guard the next call.
  /// Only the owning stage thread calls this, between calls.
  void reset() const {
    state_->flag.store(false, std::memory_order_relaxed);
    state_->deadline_ms.store(0, std::memory_order_relaxed);
  }

  /// Arm an absolute deadline (steady_now_ms() timebase). 0 disarms.
  void set_deadline_ms(std::int64_t deadline_ms) const {
    state_->deadline_ms.store(deadline_ms, std::memory_order_relaxed);
  }

  /// True once cancel() was called or the armed deadline passed.
  bool cancelled() const {
    if (state_->flag.load(std::memory_order_relaxed)) return true;
    const std::int64_t d = state_->deadline_ms.load(std::memory_order_relaxed);
    return d > 0 && now_ms() >= d;
  }

 private:
  struct State {
    std::atomic<bool> flag{false};
    std::atomic<std::int64_t> deadline_ms{0};  // 0 = no deadline armed
  };

  static std::int64_t now_ms();

  std::shared_ptr<State> state_;
};

/// The token installed on the current thread, or nullptr. Kernel-level
/// checks go through check_cancel() instead; this accessor exists for
/// blocking work (a fault-injected stall, a sliced sleep) that must poll
/// without the exception cost.
const CancelToken* current_cancel_token();

/// True when a token is installed on this thread and it is cancelled.
inline bool cancel_requested() {
  const CancelToken* t = current_cancel_token();
  return t != nullptr && t->cancelled();
}

/// Throw CancelledError when the current thread's token is cancelled.
/// No-op (one thread-local load) when no token is installed.
void check_cancel();

/// RAII installer: makes `token` the current thread's cancel token for the
/// enclosing scope and restores the previous one on exit. Nests — an inner
/// scope (e.g. a pool worker running a chunk of an outer loop) shadows and
/// then restores the outer token.
class ScopedCancelToken {
 public:
  explicit ScopedCancelToken(const CancelToken& token);
  ~ScopedCancelToken();

  ScopedCancelToken(const ScopedCancelToken&) = delete;
  ScopedCancelToken& operator=(const ScopedCancelToken&) = delete;

 private:
  const CancelToken* prev_;
};

}  // namespace ffsva::runtime
