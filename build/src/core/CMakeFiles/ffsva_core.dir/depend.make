# Empty dependencies file for ffsva_core.
# This may be replaced when dependencies are built.
