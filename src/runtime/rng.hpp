// Deterministic pseudo-random number generation.
//
// Everything stochastic in the reproduction (scene simulation, workload
// arrival, training shuffles, service-time jitter) draws from these
// generators so that every test, example, and benchmark is bit-reproducible
// from a seed. std::mt19937 is avoided because its state is large and its
// seeding is easy to get subtly wrong; xoshiro256** is the standard small
// fast generator and SplitMix64 is its recommended seeder.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace ffsva::runtime {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna), UniformRandomBitGenerator-compatible.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x5eed5eed5eed5eedULL) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) {
    // Lemire's nearly-divisionless method would be overkill here; simple
    // rejection keeps the distribution exact.
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Box-Muller (no cached second value; cheap enough).
  double normal() {
    // u in (0,1] so log(u) is finite.
    const double u = 1.0 - uniform();
    const double v = uniform();
    return std::sqrt(-2.0 * std::log(u)) * std::cos(2.0 * kPi * v);
  }

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

 private:
  static constexpr double kPi = 3.14159265358979323846;
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace ffsva::runtime
