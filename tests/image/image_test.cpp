#include "image/image.hpp"

#include <gtest/gtest.h>

namespace ffsva::image {
namespace {

TEST(Image, DefaultIsEmpty) {
  Image img;
  EXPECT_TRUE(img.empty());
  EXPECT_EQ(img.width(), 0);
  EXPECT_EQ(img.size_bytes(), 0u);
}

TEST(Image, ConstructionAndFillValue) {
  Image img(4, 3, 3, 7);
  EXPECT_EQ(img.width(), 4);
  EXPECT_EQ(img.height(), 3);
  EXPECT_EQ(img.channels(), 3);
  EXPECT_EQ(img.size_bytes(), 36u);
  EXPECT_EQ(img.at(0, 0, 0), 7);
  EXPECT_EQ(img.at(3, 2, 2), 7);
}

TEST(Image, PixelReadWrite) {
  Image img(5, 5, 1);
  img.at(2, 3) = 200;
  EXPECT_EQ(img.at(2, 3), 200);
  EXPECT_EQ(img.at(3, 2), 0);
}

TEST(Image, InterleavedLayout) {
  Image img(2, 1, 3);
  img.at(0, 0, 0) = 1;
  img.at(0, 0, 1) = 2;
  img.at(0, 0, 2) = 3;
  img.at(1, 0, 0) = 4;
  EXPECT_EQ(img.data()[0], 1);
  EXPECT_EQ(img.data()[1], 2);
  EXPECT_EQ(img.data()[2], 3);
  EXPECT_EQ(img.data()[3], 4);
}

TEST(Image, InBounds) {
  Image img(3, 2, 1);
  EXPECT_TRUE(img.in_bounds(0, 0));
  EXPECT_TRUE(img.in_bounds(2, 1));
  EXPECT_FALSE(img.in_bounds(3, 0));
  EXPECT_FALSE(img.in_bounds(0, 2));
  EXPECT_FALSE(img.in_bounds(-1, 0));
}

TEST(Image, EqualityAndShape) {
  Image a(2, 2, 1), b(2, 2, 1), c(2, 2, 3);
  EXPECT_TRUE(a.same_shape(b));
  EXPECT_FALSE(a.same_shape(c));
  EXPECT_EQ(a, b);
  b.at(1, 1) = 9;
  EXPECT_FALSE(a == b);
}

TEST(Accumulator, MeanOfConstantImages) {
  Accumulator acc;
  acc.add(Image(3, 3, 1, 10));
  acc.add(Image(3, 3, 1, 20));
  const Image mean = acc.mean();
  EXPECT_EQ(mean.at(1, 1), 15);
  EXPECT_EQ(acc.count(), 2);
}

TEST(Accumulator, EmptyMeanIsEmpty) {
  Accumulator acc;
  EXPECT_TRUE(acc.mean().empty());
}

TEST(Accumulator, RoundsToNearest) {
  Accumulator acc;
  acc.add(Image(1, 1, 1, 1));
  acc.add(Image(1, 1, 1, 2));
  // (1+2)/2 = 1.5 -> rounds to 2
  EXPECT_EQ(acc.mean().at(0, 0), 2);
}

}  // namespace
}  // namespace ffsva::image
