# Empty dependencies file for ffsva_video.
# This may be replaced when dependencies are built.
