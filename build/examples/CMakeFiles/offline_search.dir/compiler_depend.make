# Empty compiler generated dependencies file for offline_search.
# This may be replaced when dependencies are built.
