# Empty dependencies file for bench_fig9_batch_low_tor.
# This may be replaced when dependencies are built.
