// Multi-stream stress of the threaded engine: 32+ streams through the SDD
// worker pool and the single GPU0 executor. Asserts per-stage frame
// conservation (in == passed + filtered, stage-to-stage handoff counts
// match), per-stream FIFO output ordering, and clean shutdown (run()
// returns with every queue drained). This test carries the `tsan` ctest
// label and is the primary ThreadSanitizer workout for the engine.
#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <vector>

#include "core/pipeline.hpp"
#include "video/profiles.hpp"

namespace ffsva::core {
namespace {

struct StressWorld {
  video::SceneConfig cfg;
  detect::StreamModels models;
  std::vector<video::Frame> window;  ///< Pre-rendered eval frames.

  StressWorld() {
    cfg = video::jackson_profile();
    cfg.width = 96;
    cfg.height = 72;
    cfg.tor = 0.4;  // busy: a healthy share of frames reaches the deep stages
    video::SceneSimulator sim(cfg, 23, 460);
    std::vector<video::Frame> calib;
    for (int i = 0; i < 400; ++i) calib.push_back(sim.render(i));
    detect::SpecializeConfig sc;
    sc.target = cfg.target;
    sc.snm.epochs = 3;
    models = detect::specialize_stream(calib, sc, 23);
    for (int i = 400; i < 460; ++i) window.push_back(sim.render(i));
  }
};

StressWorld& world() {
  static auto* w = new StressWorld();
  return *w;
}

/// Replays the shared pre-rendered window as one stream.
class ReplaySource final : public video::FrameSource {
 public:
  ReplaySource(const std::vector<video::Frame>* window, int stream_id)
      : window_(window), stream_id_(stream_id) {}

  std::optional<video::Frame> next() override {
    if (next_ >= window_->size()) return std::nullopt;
    video::Frame f = (*window_)[next_++];
    f.stream_id = stream_id_;
    return f;
  }
  std::int64_t total_frames() const override {
    return static_cast<std::int64_t>(window_->size());
  }

 private:
  const std::vector<video::Frame>* window_;
  int stream_id_;
  std::size_t next_ = 0;
};

TEST(PipelineStress, ManyStreamsConserveOrderAndShutDownCleanly) {
  auto& w = world();
  constexpr int kStreams = 32;
  const auto frames = static_cast<std::uint64_t>(w.window.size());

  FfsVaConfig cfg;
  cfg.batch_policy = BatchPolicy::kDynamic;
  FfsVaInstance instance(cfg);
  for (int s = 0; s < kStreams; ++s) {
    instance.add_stream(std::make_unique<ReplaySource>(&w.window, s), w.models);
  }

  std::mutex mu;
  std::map<int, std::vector<std::int64_t>> outputs_by_stream;
  instance.set_output_sink([&](const OutputEvent& ev) {
    std::lock_guard lk(mu);
    outputs_by_stream[ev.frame.stream_id].push_back(ev.frame.index);
  });

  const auto stats = instance.run(/*online=*/false);

  ASSERT_EQ(stats.streams.size(), static_cast<std::size_t>(kStreams));
  for (int s = 0; s < kStreams; ++s) {
    const auto& st = stats.streams[static_cast<std::size_t>(s)];
    // Per-stage conservation: every frame a stage admits either passes to
    // the next stage or terminates (is filtered) — nothing is lost or
    // double-counted anywhere in the cascade.
    EXPECT_EQ(st.prefetch.in, frames) << "stream " << s;
    EXPECT_EQ(st.prefetch.passed, frames) << "stream " << s;
    EXPECT_EQ(st.dropped_at_ingest, 0u) << "stream " << s;
    EXPECT_EQ(st.sdd.in, st.prefetch.passed) << "stream " << s;
    EXPECT_EQ(st.snm.in, st.sdd.passed) << "stream " << s;
    EXPECT_EQ(st.tyolo.in, st.snm.passed) << "stream " << s;
    EXPECT_EQ(st.ref.in, st.tyolo.passed) << "stream " << s;
    EXPECT_EQ(st.ref.passed, st.ref.in) << "stream " << s;
    // Terminal accounting: in == passed + filtered at every stage implies
    // exactly one latency sample per ingested frame.
    EXPECT_EQ(st.latency_ms.count(), frames) << "stream " << s;
  }
  const auto agg = stats.aggregate();
  EXPECT_EQ(agg.prefetch.passed, frames * kStreams);
  EXPECT_EQ(agg.latency_ms.count(), frames * kStreams);

  // Per-stream FIFO: each stream's survivors arrive in frame order.
  std::lock_guard lk(mu);
  std::uint64_t survivors = 0;
  for (const auto& [stream_id, indices] : outputs_by_stream) {
    survivors += indices.size();
    for (std::size_t i = 1; i < indices.size(); ++i) {
      EXPECT_LT(indices[i - 1], indices[i]) << "stream " << stream_id;
    }
  }
  EXPECT_EQ(survivors, agg.ref.passed);
  // Identical streams must produce identical survivor sets.
  if (!outputs_by_stream.empty()) {
    const auto& first = outputs_by_stream.begin()->second;
    for (const auto& [stream_id, indices] : outputs_by_stream) {
      EXPECT_EQ(indices, first) << "stream " << stream_id;
    }
  }
}

// The worker pool must stay fixed-size: a run with a single SDD worker and
// many streams still conserves every frame (no starvation, no deadlock).
TEST(PipelineStress, SingleWorkerServesManyStreams) {
  auto& w = world();
  constexpr int kStreams = 12;
  const auto frames = static_cast<std::uint64_t>(w.window.size());

  FfsVaConfig cfg;
  cfg.sdd_workers = 1;
  cfg.sdd_run_length = 4;  // force frequent rescans across streams
  FfsVaInstance instance(cfg);
  for (int s = 0; s < kStreams; ++s) {
    instance.add_stream(std::make_unique<ReplaySource>(&w.window, s), w.models);
  }
  instance.set_output_sink([](const OutputEvent&) {});
  const auto stats = instance.run(false);
  const auto agg = stats.aggregate();
  EXPECT_EQ(agg.prefetch.passed, frames * kStreams);
  EXPECT_EQ(agg.latency_ms.count(), frames * kStreams);
}

// Every batch policy survives the multi-stream executor with full
// conservation (static must drain partial final batches per stream).
TEST(PipelineStress, AllBatchPoliciesConserveAcrossStreams) {
  auto& w = world();
  constexpr int kStreams = 8;
  const auto frames = static_cast<std::uint64_t>(w.window.size());
  for (BatchPolicy p : {BatchPolicy::kStatic, BatchPolicy::kFeedback,
                        BatchPolicy::kDynamic}) {
    FfsVaConfig cfg;
    cfg.batch_policy = p;
    cfg.batch_size = 16;  // does not divide 60: final partial batch matters
    FfsVaInstance instance(cfg);
    for (int s = 0; s < kStreams; ++s) {
      instance.add_stream(std::make_unique<ReplaySource>(&w.window, s), w.models);
    }
    instance.set_output_sink([](const OutputEvent&) {});
    const auto stats = instance.run(false);
    const auto agg = stats.aggregate();
    EXPECT_EQ(agg.prefetch.passed, frames * kStreams) << to_string(p);
    EXPECT_EQ(agg.latency_ms.count(), frames * kStreams) << to_string(p);
  }
}

}  // namespace
}  // namespace ffsva::core
