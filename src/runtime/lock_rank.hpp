// Runtime lock-rank verification (DESIGN.md Section 16).
//
// The static layer — tools/ffsva_lockgraph.py over the thread-safety
// annotations — proves the *program text* acquires locks in one global
// order. This header is the dynamic witness of the same order: every
// long-lived Mutex in the tree carries a rank from the table below, and in
// sanitizer/debug builds a thread-local stack of held ranks aborts the
// process (printing both lock names) the first time any thread acquires a
// lock whose rank is not strictly greater than the one on top of its
// stack. TSan runs, the ASan fault matrix, and the cluster smoke test
// therefore execute the statically proven order on real schedules.
//
// Cost model:
//  * Release builds (NDEBUG, no FFSVA_LOCK_RANK_CHECKS): the check hooks
//    are empty inlines — the locking fast path compiles to exactly the
//    pre-rank code. Only the two POD members on Mutex remain.
//  * Checked builds: unranked mutexes (rank 0 — locals, fixtures, tests)
//    pay one predictable branch and touch no thread-local state.
//
// The rank table is the acquisition order, coarse-to-fine: control-plane
// locks first, engine state next, runtime leaf primitives last. A new
// mutex slots in wherever its acquisition edges demand; leave gaps. The
// same order is written into the annotations via FFSVA_ACQUIRED_BEFORE /
// _AFTER where the related locks are nameable, and cross-checked against
// the measured edge set by `tools/ffsva_lockgraph.py` (rule rank-order).
#pragma once

#include <cstdint>

// Checks are on whenever asserts are (Debug) or when the build opts in
// (the CMake presets define FFSVA_LOCK_RANK_CHECKS for every sanitizer
// build; -DFFSVA_LOCK_RANKS=ON forces it for any build type).
#if !defined(NDEBUG) || defined(FFSVA_LOCK_RANK_CHECKS)
#define FFSVA_LOCK_RANK_CHECKS_ENABLED 1
#else
#define FFSVA_LOCK_RANK_CHECKS_ENABLED 0
#endif

namespace ffsva::runtime {

namespace rank {

/// Rank 0 = unranked: never pushed on the held stack, never checked.
inline constexpr std::uint32_t kNone = 0;

// --- Control plane (outermost) ---------------------------------------------
/// node::NodeServer::mu_ — stream-ownership maps around one engine.
inline constexpr std::uint32_t kNodeControl = 100;
/// core::FfsVaInstance::streams_mu_ — add/end/stop serialization; held
/// across the stop() close sweep and the dynamic-attach publication.
inline constexpr std::uint32_t kEngineStreams = 200;
/// core::ClusterManager::mu_ — placement/admission state.
inline constexpr std::uint32_t kClusterManager = 250;
/// core::FfsVaInstance::outputs_mu_ — sink-less output collection.
inline constexpr std::uint32_t kEngineOutputs = 300;

// --- Telemetry / supervision ------------------------------------------------
/// telemetry::Registry::mu_ — metric maps; gauge callbacks run under it,
/// so anything a callback locks must rank higher.
inline constexpr std::uint32_t kTelemetryRegistry = 400;
/// telemetry::MetricsExporter::mu_ — sampler stop handshake.
inline constexpr std::uint32_t kTelemetryExporter = 410;
/// telemetry::TraceBuffer::mu_ — span-ring registration.
inline constexpr std::uint32_t kTraceBuffer = 420;
/// runtime::Watchdog::mu_ — tick/stop handshake (check() runs unlocked).
inline constexpr std::uint32_t kWatchdog = 450;

// --- Benchmark harnesses ----------------------------------------------------
/// Baseline-harness per-device serialization (pipeline.cpp): held across a
/// model call, which fans out through the compute pool below.
inline constexpr std::uint32_t kBenchDevice = 500;
/// Baseline-harness shared stats/histogram lock.
inline constexpr std::uint32_t kBenchStats = 510;

// --- Compute runtime --------------------------------------------------------
/// parallel_for's ComputePool::mu — held across ThreadPool construction
/// and shutdown (which takes the pool's own lock and joins workers).
inline constexpr std::uint32_t kComputePool = 600;
/// runtime::ThreadPool::mu_ — task queue + idle tracking.
inline constexpr std::uint32_t kThreadPool = 610;
/// parallel_for LoopState::mu — per-loop join/error handshake.
inline constexpr std::uint32_t kLoopJoin = 620;

// --- Queue leaves (innermost) -----------------------------------------------
/// runtime::BoundedQueue::mu_ — per-queue state; closed under
/// kEngineStreams by the stop sweep.
inline constexpr std::uint32_t kBoundedQueue = 700;
/// runtime::QueueWaiter::mu_ — eventcount park/notify handshake; notified
/// while kEngineStreams (and conceptually any queue) is held.
inline constexpr std::uint32_t kQueueWaiter = 800;

}  // namespace rank

/// True when this build validates lock ranks at runtime.
constexpr bool lock_rank_checks_enabled() {
  return FFSVA_LOCK_RANK_CHECKS_ENABLED != 0;
}

namespace lockrank_detail {

#if FFSVA_LOCK_RANK_CHECKS_ENABLED
/// Validate `r` against the calling thread's held-rank stack (abort with
/// both lock names on inversion), then push. rank 0 is a no-op.
void acquire(std::uint32_t r, const char* name);
/// Pop `r` from the held stack (tolerates out-of-LIFO release — a
/// UniqueLock::unlock under a later MutexLock). rank 0 is a no-op.
void release(std::uint32_t r, const char* name) noexcept;
/// Ranked locks currently held by the calling thread (test hook).
int held_depth() noexcept;
#else
inline void acquire(std::uint32_t, const char*) {}
inline void release(std::uint32_t, const char*) noexcept {}
inline int held_depth() noexcept { return 0; }
#endif

}  // namespace lockrank_detail

/// Ranked locks currently held by the calling thread. Always 0 when checks
/// are compiled out.
inline int lock_rank_held_depth() { return lockrank_detail::held_depth(); }

}  // namespace ffsva::runtime
