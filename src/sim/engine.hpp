// Discrete-event simulation engine.
//
// The performance evaluation of FFS-VA (Figures 3, 4, 6, 9, 10 and the
// offline headline) is a queueing phenomenon: throughput and latency follow
// from service rates, batching, queue thresholds and scheduling policy. This
// engine executes the production policy objects (core/policies.hpp) under
// virtual time against devices whose service costs are calibrated to the
// paper's measured filter speeds (detect/cost_model.hpp) — the substitution
// for the 2-GPU testbed this reproduction does not have.
//
// Determinism: events at equal times run in schedule order (a sequence
// number breaks ties), so simulations are bit-reproducible.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <optional>
#include <string>
#include <vector>

namespace ffsva::sim {

class SimEngine {
 public:
  using Event = std::function<void()>;

  /// Schedule `fn` at absolute virtual time `t` (seconds). t >= now().
  void at(double t, Event fn);
  /// Schedule `fn` after `dt` seconds of virtual time.
  void after(double dt, Event fn) { at(now_ + dt, std::move(fn)); }

  double now() const { return now_; }

  /// Run one event; false if none pending.
  bool step();

  /// Run until the queue is empty or virtual time exceeds `until`.
  void run(double until = std::numeric_limits<double>::infinity());

  std::uint64_t events_executed() const { return executed_; }
  std::size_t pending() const { return queue_.size(); }

 private:
  struct Entry {
    double t;
    std::uint64_t seq;
    Event fn;
    bool operator>(const Entry& o) const {
      return t > o.t || (t == o.t && seq > o.seq);
    }
  };
  /// Min-heap on (t, seq) kept with std::push_heap/pop_heap rather than
  /// std::priority_queue: pop_heap hands back a mutable element, so the
  /// move-only Event payload moves out without the const_cast-of-top idiom.
  std::vector<Entry> queue_;
  double now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
};

/// FIFO resource with k identical servers (e.g. a pool of CPU cores).
/// submit() enqueues a job of the given duration; `done` runs when the job
/// completes. Jobs start in submission order.
class KServerResource {
 public:
  KServerResource(SimEngine& engine, int servers, std::string name = {})
      : engine_(engine), servers_(servers < 1 ? 1 : servers), name_(std::move(name)) {}

  void submit(double duration_sec, std::function<void()> done);

  int busy() const { return busy_; }
  double busy_time() const { return busy_time_; }
  /// Utilization over [0, now] given the server count.
  double utilization() const {
    const double t = engine_.now();
    return t > 0 ? busy_time_ / (t * servers_) : 0.0;
  }
  const std::string& name() const { return name_; }

 private:
  struct Job {
    double duration;
    std::function<void()> done;
  };
  void start(Job job);

  SimEngine& engine_;
  int servers_;
  std::string name_;
  int busy_ = 0;
  double busy_time_ = 0.0;
  // bounded-ok: virtual-time simulation state driven by one engine thread;
  // backlog growth here is the congestion being modeled, not a leak.
  std::deque<Job> pending_;
};

/// A GPU: a single FIFO server that additionally charges a model-switch
/// cost whenever the job's model id differs from the last one executed —
/// the effect dynamic batching amortizes (Section 4.3.2) and one of the two
/// reasons T-YOLO is shared (Section 3.2.3).
class GpuDevice {
 public:
  GpuDevice(SimEngine& engine, std::string name = {})
      : server_(engine, 1, std::move(name)) {}

  /// `model_id`: identity of the weights this job needs loaded;
  /// `switch_ms`: upload cost charged if the device must switch to it.
  void submit(std::int64_t model_id, double switch_ms, double exec_us,
              std::function<void()> done);

  double switch_time() const { return switch_time_; }
  std::int64_t switches() const { return switches_; }
  double utilization() const { return server_.utilization(); }
  double busy_time() const { return server_.busy_time(); }

 private:
  KServerResource server_;
  std::int64_t loaded_model_ = -1;
  std::int64_t switches_ = 0;
  double switch_time_ = 0.0;
};

/// Bounded FIFO queue living in virtual time, with asynchronous push/pop.
/// This mirrors runtime::BoundedQueue's blocking semantics: a push_wait on
/// a full queue parks the producer (feedback-queue throttling), a pop_wait
/// on an empty queue parks the consumer, wait_depth parks a batch consumer
/// until enough frames accumulated (static / feedback batching).
template <typename T>
class SimQueue {
 public:
  explicit SimQueue(std::size_t capacity) : capacity_(capacity ? capacity : 1) {}

  std::size_t depth() const { return items_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool closed() const { return closed_; }

  bool try_push(T v) {
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(v));
    on_push();
    return true;
  }

  /// Parks the producer until space is available, then pushes and runs
  /// `resume`. FIFO among parked producers.
  void push_wait(T v, std::function<void()> resume) {
    if (!closed_ && items_.size() < capacity_) {
      items_.push_back(std::move(v));
      on_push();
      resume();
      return;
    }
    producers_.push_back({std::move(v), std::move(resume)});
  }

  /// Parks the consumer until an item is available. `got(std::nullopt)`
  /// when the queue is closed and drained.
  void pop_wait(std::function<void(std::optional<T>)> got) {
    if (!items_.empty()) {
      T v = std::move(items_.front());
      items_.pop_front();
      admit_parked_producer();
      got(std::move(v));
      return;
    }
    if (closed_) {
      got(std::nullopt);
      return;
    }
    consumers_.push_back(std::move(got));
  }

  /// Parks until depth() >= n or the queue is closed, then runs `ready`
  /// (with the actual available count). Used by batch consumers.
  void wait_depth(std::size_t n, std::function<void(std::size_t)> ready) {
    if (items_.size() >= n || closed_) {
      ready(items_.size());
      return;
    }
    depth_waiters_.push_back({n, std::move(ready)});
  }

  /// Pop up to n items immediately (no waiting).
  std::vector<T> pop_some(std::size_t n) {
    std::vector<T> out;
    while (!items_.empty() && out.size() < n) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    for (std::size_t i = 0; i < out.size(); ++i) admit_parked_producer();
    return out;
  }

  void close() {
    closed_ = true;
    // Wake everyone; parked producers' items are dropped (stream teardown).
    auto consumers = std::move(consumers_);
    consumers_.clear();
    for (auto& c : consumers) {
      if (!items_.empty()) {
        T v = std::move(items_.front());
        items_.pop_front();
        c(std::move(v));
      } else {
        c(std::nullopt);
      }
    }
    auto waiters = std::move(depth_waiters_);
    depth_waiters_.clear();
    for (auto& w : waiters) w.ready(items_.size());
  }

  /// Hook invoked after every successful push (e.g. to wake a scheduler).
  void set_push_hook(std::function<void()> hook) { push_hook_ = std::move(hook); }

 private:
  void on_push() {
    // Serve a parked consumer first (an item never waits while a consumer
    // is parked).
    if (!consumers_.empty()) {
      auto c = std::move(consumers_.front());
      consumers_.pop_front();
      T v = std::move(items_.front());
      items_.pop_front();
      admit_parked_producer();
      c(std::move(v));
    }
    auto it = depth_waiters_.begin();
    while (it != depth_waiters_.end()) {
      if (items_.size() >= it->n) {
        auto ready = std::move(it->ready);
        const std::size_t avail = items_.size();
        it = depth_waiters_.erase(it);
        ready(avail);
      } else {
        ++it;
      }
    }
    if (push_hook_) push_hook_();
  }

  void admit_parked_producer() {
    if (!producers_.empty() && items_.size() < capacity_ && !closed_) {
      auto p = std::move(producers_.front());
      producers_.pop_front();
      items_.push_back(std::move(p.value));
      auto resume = std::move(p.resume);
      on_push();
      resume();
    }
  }

  struct ParkedProducer {
    T value;
    std::function<void()> resume;
  };
  struct DepthWaiter {
    std::size_t n;
    std::function<void(std::size_t)> ready;
  };

  std::size_t capacity_;
  bool closed_ = false;
  // bounded-ok: single-threaded virtual-time queue — items_ is capped by
  // capacity_ above, and the parked producer/consumer lists are bounded by
  // the simulation's stream count, not a live inter-thread channel.
  std::deque<T> items_;
  std::deque<ParkedProducer> producers_;
  std::deque<std::function<void(std::optional<T>)>> consumers_;
  std::vector<DepthWaiter> depth_waiters_;
  std::function<void()> push_hook_;
};

}  // namespace ffsva::sim
