#include "detect/multi_snm.hpp"

#include <gtest/gtest.h>

#include "detect/reference.hpp"
#include "detect/background.hpp"
#include "video/profiles.hpp"

namespace ffsva::detect {
namespace {

/// One trained two-class filter on a mixed car+pedestrian street, shared
/// across the tests in this file.
struct TrainedMulti {
  video::SceneConfig cfg;
  std::unique_ptr<video::SceneSimulator> sim;
  image::Image background;
  std::unique_ptr<MultiSnmFilter> filter;
  MultiSnmReport report;

  TrainedMulti() {
    cfg = video::jackson_profile();
    cfg.width = 128;
    cfg.height = 96;
    cfg.tor = 0.35;
    cfg.distractor_rate = 0.6;  // plenty of pedestrians too
    sim = std::make_unique<video::SceneSimulator>(cfg, 71, 1400);

    std::vector<video::Frame> calib;
    for (int i = 0; i < 900; ++i) calib.push_back(sim->render(i));
    BackgroundEstimator bg(25);
    for (std::size_t i = 0; i < calib.size(); i += 36) bg.add(calib[i].image);
    background = bg.estimate();

    // Labels from ground truth (the reference model plays this role in
    // production; GT keeps this unit test independent of its tuning).
    std::vector<std::vector<bool>> labels;
    for (const auto& f : calib) {
      labels.push_back({f.gt.any_target(video::ObjectClass::kCar),
                        f.gt.any(video::ObjectClass::kPerson)});
    }
    MultiSnmConfig mc;
    mc.epochs = 10;
    filter = std::make_unique<MultiSnmFilter>(
        mc,
        std::vector<video::ObjectClass>{video::ObjectClass::kCar,
                                        video::ObjectClass::kPerson},
        background, 71);
    report = filter->train(calib, labels);
  }
};

TrainedMulti& trained() {
  static auto* t = new TrainedMulti();
  return *t;
}

TEST(MultiSnm, RejectsEmptyTargets) {
  EXPECT_THROW(MultiSnmFilter(MultiSnmConfig{}, {}, image::Image(8, 8, 3, 0), 1),
               std::invalid_argument);
}

TEST(MultiSnm, PredictsOneProbabilityPerTarget) {
  auto& t = trained();
  const auto scores = t.filter->predict(t.sim->render(950).image);
  ASSERT_EQ(scores.size(), 2u);
  for (double s : scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(MultiSnm, BothHeadsLearn) {
  auto& t = trained();
  ASSERT_EQ(t.report.val_accuracy.size(), 2u);
  EXPECT_GT(t.report.val_accuracy[0], 0.85) << "car head";
  // The pedestrian head sees a much weaker signal (small distractor
  // figures); it must still beat chance clearly.
  EXPECT_GT(t.report.val_accuracy[1], 0.70) << "person head";
}

TEST(MultiSnm, HeadsSeparateClassesOnFreshFrames) {
  auto& t = trained();
  double car_pos = 0, car_neg = 0;
  int np = 0, nn = 0;
  for (int i = 900; i < 1400; i += 3) {
    const auto f = t.sim->render(i);
    const auto s = t.filter->predict(f.image);
    if (f.gt.any_target(video::ObjectClass::kCar)) {
      car_pos += s[0];
      ++np;
    } else {
      car_neg += s[0];
      ++nn;
    }
  }
  ASSERT_GT(np, 5);
  ASSERT_GT(nn, 5);
  EXPECT_GT(car_pos / np, car_neg / nn + 0.2);
}

TEST(MultiSnm, PassIsUnionOfHeads) {
  auto& t = trained();
  int pass_any = 0, pass_car_frames = 0;
  for (int i = 900; i < 1200; i += 5) {
    const auto f = t.sim->render(i);
    const bool p = t.filter->pass(f.image);
    pass_any += p;
    const auto s = t.filter->predict(f.image);
    const bool car_clears = s[0] >= t.filter->t_pre(0);
    if (car_clears) {
      EXPECT_TRUE(p) << "any head clearing its threshold must pass the frame";
      ++pass_car_frames;
    }
  }
  EXPECT_GE(pass_any, pass_car_frames);
}

TEST(MultiSnm, ThresholdsOrderedPerClass) {
  auto& t = trained();
  for (std::size_t k = 0; k < 2; ++k) {
    EXPECT_GE(t.report.c_high[k], t.report.c_low[k]);
  }
}

TEST(MultiSnm, FilterDegreeMonotonePerHead) {
  auto& t = trained();
  const auto frame = t.sim->render(1000).image;
  t.filter->set_filter_degree(0.0);
  const double t0 = t.filter->t_pre(0);
  t.filter->set_filter_degree(1.0);
  const double t1 = t.filter->t_pre(0);
  EXPECT_GE(t1, t0);
  t.filter->set_filter_degree(0.5);
  (void)frame;
}

TEST(MultiSnm, LabelArityMismatchThrows) {
  MultiSnmFilter f(MultiSnmConfig{}, {video::ObjectClass::kCar},
                   image::Image(32, 32, 3, 80), 3);
  std::vector<video::Frame> frames(12);
  for (auto& fr : frames) fr.image = image::Image(32, 32, 3, 80);
  std::vector<std::vector<bool>> bad(12, std::vector<bool>{true, false});
  EXPECT_THROW(f.train(frames, bad), std::invalid_argument);
}

}  // namespace
}  // namespace ffsva::detect
