#include "video/fault_injection.hpp"

#include <chrono>
#include <thread>
#include <utility>

#include "runtime/cancel.hpp"

namespace ffsva::video {

FaultInjectingSource::FaultInjectingSource(std::unique_ptr<FrameSource> inner,
                                           FaultPlan plan, std::uint64_t seed)
    : inner_(std::move(inner)), plan_(std::move(plan)), rng_(seed) {}

std::optional<Frame> FaultInjectingSource::next() {
  if (eos_latched_) return std::nullopt;
  if (fatal_latched_) {
    throw SourceError(SourceError::Kind::kFatal, "fault injection: source dead");
  }
  const std::int64_t i = calls_++;

  if (plan_.premature_eos_at >= 0 && i >= plan_.premature_eos_at) {
    eos_latched_ = true;
    ++log_.premature_eos;
    return std::nullopt;
  }
  if (plan_.fatal_at >= 0 && i == plan_.fatal_at) {
    fatal_latched_ = true;
    ++log_.fatal_errors;
    throw SourceError(SourceError::Kind::kFatal, "fault injection: session drop");
  }
  if (plan_.stall_at >= 0 && i == plan_.stall_at && plan_.stall_ms > 0) {
    // A hung decode: next() does not return until the sleep elapses or the
    // watchdog cancels the call. Sliced so the stall observes a cancel
    // within ~1 ms — this is what the escalation path (cancel, then
    // quarantine) exists for.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(plan_.stall_ms);
    bool cancelled = false;
    while (std::chrono::steady_clock::now() < deadline) {
      if (runtime::cancel_requested()) {
        cancelled = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ++log_.stalls;
    if (plan_.stall_done) plan_.stall_done->store(true, std::memory_order_release);
    if (cancelled) throw runtime::CancelledError("injected decode stall cancelled");
  }
  if (plan_.p_latency_spike > 0.0 && rng_.chance(plan_.p_latency_spike)) {
    // cancel-ok: a deliberate latency spike, bounded by latency_spike_ms by
    // definition — the stall path above is the cancellable wedge.
    std::this_thread::sleep_for(std::chrono::milliseconds(plan_.latency_spike_ms));
    ++log_.latency_spikes;
  }
  const bool transient = (plan_.transient_at >= 0 && i == plan_.transient_at) ||
                         (plan_.p_transient > 0.0 && rng_.chance(plan_.p_transient));
  if (transient) {
    // Thrown before the inner read: the stream position is untouched, so a
    // retry resumes with no frame lost (the FrameSource contract).
    ++log_.transient_errors;
    throw SourceError(SourceError::Kind::kTransient, "fault injection: decode error");
  }

  auto frame = inner_->next();
  if (!frame) return frame;

  if (plan_.p_truncated > 0.0 && rng_.chance(plan_.p_truncated)) {
    // A truncated decode: provenance survives, pixels do not. Downstream
    // models must reject this cleanly (degrade policy), never crash.
    frame->image = image::Image{};
    ++log_.truncated_frames;
    return frame;
  }
  if (plan_.p_corrupt > 0.0 && rng_.chance(plan_.p_corrupt)) {
    // Bitstream corruption that still decodes: full-size noise.
    std::uint8_t* p = frame->image.data();
    const std::size_t n = static_cast<std::size_t>(frame->image.width()) *
                          frame->image.height() * frame->image.channels();
    for (std::size_t k = 0; k < n; ++k) {
      p[k] = static_cast<std::uint8_t>(rng_.next());
    }
    ++log_.corrupted_frames;
  }
  return frame;
}

bool FaultInjectingSource::restart() {
  if (!plan_.restartable) return false;
  fatal_latched_ = false;
  return true;
}

}  // namespace ffsva::video
