file(REMOVE_RECURSE
  "CMakeFiles/ffsva_runtime.dir/rate_limiter.cpp.o"
  "CMakeFiles/ffsva_runtime.dir/rate_limiter.cpp.o.d"
  "CMakeFiles/ffsva_runtime.dir/stats.cpp.o"
  "CMakeFiles/ffsva_runtime.dir/stats.cpp.o.d"
  "CMakeFiles/ffsva_runtime.dir/thread_pool.cpp.o"
  "CMakeFiles/ffsva_runtime.dir/thread_pool.cpp.o.d"
  "libffsva_runtime.a"
  "libffsva_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ffsva_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
