// Ablation — deep compression of the stream-specialized models
// (paper Section 5.5, "Error Rate" remedy: "Deep compression (e.g.,
// pruning, sparsity constraint) can transform a larger but more accurate
// NN model to a tiny model without compromising the accuracy of the
// prediction, resulting in a 3x throughput improvement").
//
// We compress the trained SNM (the model the GPU re-uploads on every
// stream switch) and measure: (1) how far it can be pruned/quantized
// before its filtering decisions drift, and (2) what the smaller upload
// does to end-to-end pipeline capacity via the calibrated simulator
// (switch cost scales with model bytes).
#include "common.hpp"
#include "nn/compress.hpp"

#include <sstream>

using namespace ffsva;

int main() {
  bench::print_header("ABLATION -- deep compression of the specialized SNM (Sec. 5.5)");

  std::printf("Training the SNM on a jackson stream (TOR ~= 0.25)...\n");
  auto s = bench::build_stream(video::jackson_profile(), 0.25, 91, 1200, 1500, 8);
  const double t_pre = s.models.snm->t_pre();

  // Baseline decisions over the eval trace.
  std::vector<bool> base_decision;
  base_decision.reserve(s.trace.size());
  for (const auto& r : s.trace) base_decision.push_back(r.snm_score >= t_pre);

  // Snapshot the trained weights so each sweep point starts clean.
  std::stringstream snapshot;
  s.models.snm->save(snapshot);

  std::printf("\n%-22s %10s %12s %14s\n", "compression", "agree", "FN drift",
              "model KB");
  bench::print_rule();
  struct Point {
    const char* name;
    double sparsity;
    int bits;  // 0 = keep fp32
  };
  for (const Point pt : {Point{"none (fp32)", 0.0, 0}, Point{"prune 30%", 0.3, 0},
                         Point{"prune 50%", 0.5, 0}, Point{"prune 70%", 0.7, 0},
                         Point{"prune 90%", 0.9, 0}, Point{"8-bit", 0.0, 8},
                         Point{"prune 50% + 8-bit", 0.5, 8},
                         Point{"prune 70% + 8-bit", 0.7, 8}}) {
    snapshot.clear();
    snapshot.seekg(0);
    s.models.snm->load(snapshot);
    auto& net = s.models.snm->network();
    double bytes = static_cast<double>(net.num_parameters()) * sizeof(float);
    if (pt.sparsity > 0) {
      prune_by_magnitude(net, pt.sparsity);
      bytes *= (1.0 - pt.sparsity);  // CSR-style storage of survivors
    }
    if (pt.bits > 0) {
      const auto q = nn::quantize_weights(net, pt.bits);
      bytes = bytes * pt.bits / 32.0 + (q.model_bytes_quant - q.total_weights * pt.bits / 8.0);
    }

    // Re-score the eval frames with the compressed model.
    std::int64_t agree = 0, new_fn = 0;
    for (std::size_t i = 0; i < s.trace.size(); ++i) {
      const std::int64_t frame = s.eval_begin + static_cast<std::int64_t>(i);
      const double c = s.models.snm->predict(s.sim->render(frame).image);
      const bool pass = c >= t_pre;
      agree += pass == base_decision[i];
      if (!pass && base_decision[i] && s.trace[i].ref_positive) ++new_fn;
    }
    std::printf("%-22s %9.1f%% %12lld %14.1f\n", pt.name,
                100.0 * static_cast<double>(agree) / static_cast<double>(s.trace.size()),
                static_cast<long long>(new_fn), bytes / 1024.0);
  }

  // System effect: smaller SNM upload -> smaller GPU0 switch cost ->
  // cheaper small (dynamic) batches. Evaluated in the GPU0-bound regime
  // (many low-TOR streams under dynamic batching, where per-batch model
  // switching is the dominant overhead).
  bench::print_header("System effect of a compressed SNM (simulator, TOR ~= 0.1)");
  const auto params = sim::MarkovParams::for_tor(0.103);
  std::printf("%-28s %12s %14s %10s\n", "SNM switch cost", "max streams",
              "p50 lat @16 (ms)", "gpu0 @16");
  bench::print_rule();
  for (const double scale : {1.0, 0.5, 0.25, 0.125}) {
    core::FfsVaConfig cfg;
    cfg.batch_policy = core::BatchPolicy::kDynamic;
    cfg.batch_size = 8;
    sim::SimSetup setup = bench::sim_setup_from(params, cfg, 1, true, 100000, 90.0);
    setup.costs.snm.switch_ms = detect::calibrated::snm().switch_ms * scale;
    const int mx = sim::max_realtime_streams(setup, 1, 48, 0.01);
    auto at16 = setup;
    at16.num_streams = 16;
    const auto r = sim::simulate_ffsva(at16);
    std::printf("x%-27.3f %12d %14.0f %10.2f\n", scale, mx,
                r.output_latency_ms.p50(), r.gpu0_utilization);
  }
  std::printf("(a 4-8x smaller model upload cheapens the per-batch model switch\n"
              " that dynamic batching amortizes -- the Section 5.5 trade-off)\n");
  return 0;
}
