# Empty dependencies file for ffsva_runtime.
# This may be replaced when dependencies are built.
