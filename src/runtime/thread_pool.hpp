// Fixed-size worker pool.
//
// FFS-VA runs the SDDs of all streams on the CPU (paper Section 3.1.2); the
// threaded engine multiplexes them over this pool instead of spawning one
// OS thread per stream when stream counts are large. Tasks are type-erased
// std::function<void()>; submit() returns a future-like completion via
// wait_idle() because pipeline stages track their own results through
// queues, not return values.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ffsva::runtime {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Returns false if the pool is shutting down.
  bool submit(std::function<void()> task);

  /// Block until every submitted task has finished and the queue is empty.
  void wait_idle();

  /// Stop accepting tasks, finish queued work, join workers. Idempotent.
  void shutdown();

  std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

}  // namespace ffsva::runtime
