// Per-frame filter outcomes for the simulator.
//
// The simulator needs to know, for each simulated frame, which cascade
// stage (if any) filters it. Two sources:
//
//  * TraceOutcomes replays a real trace recorded by core::record_trace over
//    the synthetic video with the real filters — scene structure and
//    burstiness are preserved exactly.
//  * MarkovOutcomes generates outcomes from a two-state (in-scene /
//    background) Markov chain with per-state conditional pass rates,
//    calibrated from measured traces. This is what makes wide TOR sweeps
//    (Figure 6a: TOR 0.05..1.0) affordable: the chain preserves the
//    scene-length burstiness that drives queue dynamics, while its
//    stationary target-frame fraction equals the requested TOR.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/trace.hpp"
#include "runtime/rng.hpp"

namespace ffsva::sim {

class OutcomeSource {
 public:
  virtual ~OutcomeSource() = default;
  /// Outcome for the next frame of this stream.
  virtual core::FilteredAt next() = 0;
};

/// Replays recorded outcomes, looping, starting at `offset` (different
/// streams replay the same trace out of phase).
class TraceOutcomes final : public OutcomeSource {
 public:
  TraceOutcomes(std::shared_ptr<const std::vector<core::FilteredAt>> outcomes,
                std::size_t offset)
      : outcomes_(std::move(outcomes)), pos_(outcomes_->empty() ? 0 : offset % outcomes_->size()) {}

  core::FilteredAt next() override {
    if (outcomes_->empty()) return core::FilteredAt::kSdd;
    const auto v = (*outcomes_)[pos_];
    pos_ = (pos_ + 1) % outcomes_->size();
    return v;
  }

 private:
  std::shared_ptr<const std::vector<core::FilteredAt>> outcomes_;
  std::size_t pos_;
};

/// Convert a recorded trace + thresholds into an outcome sequence.
std::vector<core::FilteredAt> outcomes_from_trace(
    const std::vector<core::FrameRecord>& records,
    const core::CascadeThresholds& thresholds);

/// Two-state Markov outcome generator.
struct MarkovParams {
  double tor = 0.10;              ///< Stationary fraction of in-scene frames.
  double mean_scene_len = 100.0;  ///< Mean in-scene run length (frames).
  // Conditional pass rates, in-scene vs background:
  double sdd_in = 0.99, sdd_out = 0.35;   ///< P(pass SDD | state)
  double snm_in = 0.95, snm_out = 0.12;   ///< P(pass SNM | passed SDD, state)
  double ty_in = 0.90, ty_out = 0.10;     ///< P(pass T-YOLO | passed SNM, state)

  /// Default calibration for a requested TOR, interpolated from traces of
  /// the jackson/coral workloads (see bench_fig5 / EXPERIMENTS.md).
  static MarkovParams for_tor(double tor, int number_of_objects = 1);

  /// Calibrate from a real recorded trace: in-scene/background state comes
  /// from ground truth, the conditional pass rates from applying the given
  /// thresholds to the recorded filter quantities. This is how the
  /// performance benches tie the queueing simulation to the real filters.
  static MarkovParams from_trace(const std::vector<core::FrameRecord>& records,
                                 const core::CascadeThresholds& thresholds);
};

class MarkovOutcomes final : public OutcomeSource {
 public:
  MarkovOutcomes(const MarkovParams& params, std::uint64_t seed);

  core::FilteredAt next() override;

  bool in_scene() const { return in_scene_; }

 private:
  MarkovParams p_;
  runtime::Xoshiro256 rng_;
  bool in_scene_ = false;
  double p_enter_ = 0.0;  ///< P(background -> scene) per frame.
  double p_leave_ = 0.0;  ///< P(scene -> background) per frame.
};

}  // namespace ffsva::sim
