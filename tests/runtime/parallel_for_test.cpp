#include "runtime/parallel_for.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace ffsva::runtime {
namespace {

class ParallelismGuard {
 public:
  ParallelismGuard() : saved_(compute_parallelism()) {}
  ~ParallelismGuard() { set_compute_parallelism(saved_); }

 private:
  int saved_;
};

TEST(ParallelFor, CoversRangeExactlyOnce) {
  ParallelismGuard guard;
  set_compute_parallelism(4);
  const std::int64_t n = 10007;  // Prime: never a multiple of the grain.
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
  parallel_for(0, n, 64, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (std::int64_t i = 0; i < n; ++i) {
    ASSERT_EQ(1, hits[static_cast<std::size_t>(i)].load()) << "index " << i;
  }
}

TEST(ParallelFor, MatchesSerialSum) {
  ParallelismGuard guard;
  std::vector<std::int64_t> v(5000);
  std::iota(v.begin(), v.end(), 1);
  const std::int64_t want = std::accumulate(v.begin(), v.end(), std::int64_t{0});
  for (int threads : {1, 2, 4}) {
    set_compute_parallelism(threads);
    std::atomic<std::int64_t> got{0};
    parallel_for(0, static_cast<std::int64_t>(v.size()), 128,
                 [&](std::int64_t b, std::int64_t e) {
                   std::int64_t local = 0;
                   for (std::int64_t i = b; i < e; ++i) {
                     local += v[static_cast<std::size_t>(i)];
                   }
                   got.fetch_add(local, std::memory_order_relaxed);
                 });
    EXPECT_EQ(want, got.load()) << "threads=" << threads;
  }
}

TEST(ParallelFor, EmptyRangeNeverCallsBody) {
  ParallelismGuard guard;
  set_compute_parallelism(4);
  std::atomic<int> calls{0};
  parallel_for(5, 5, 1, [&](std::int64_t, std::int64_t) { calls.fetch_add(1); });
  parallel_for(7, 3, 1, [&](std::int64_t, std::int64_t) { calls.fetch_add(1); });
  EXPECT_EQ(0, calls.load());
}

TEST(ParallelFor, PropagatesExceptionToCaller) {
  ParallelismGuard guard;
  set_compute_parallelism(4);
  EXPECT_THROW(
      parallel_for(0, 1000, 10,
                   [&](std::int64_t b, std::int64_t) {
                     if (b >= 500) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  // The pool must still be usable after an exceptional join.
  std::atomic<int> calls{0};
  parallel_for(0, 100, 10, [&](std::int64_t b, std::int64_t e) {
    calls.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(100, calls.load());
}

TEST(ParallelFor, NestedCallsComplete) {
  ParallelismGuard guard;
  set_compute_parallelism(4);
  std::atomic<std::int64_t> total{0};
  parallel_for(0, 8, 1, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      parallel_for(0, 100, 10, [&](std::int64_t ib, std::int64_t ie) {
        total.fetch_add(ie - ib, std::memory_order_relaxed);
      });
    }
  });
  EXPECT_EQ(800, total.load());
}

TEST(ParallelFor, SetParallelismClampsToOne) {
  ParallelismGuard guard;
  set_compute_parallelism(0);
  EXPECT_EQ(1, compute_parallelism());
  set_compute_parallelism(-3);
  EXPECT_EQ(1, compute_parallelism());
  set_compute_parallelism(3);
  EXPECT_EQ(3, compute_parallelism());
}

}  // namespace
}  // namespace ffsva::runtime
