#include "core/cluster.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/pipeline.hpp"

namespace ffsva::core {

using runtime::MutexLock;

ClusterManager::ClusterManager(int num_instances, const FfsVaConfig& config)
    : num_instances_(num_instances), config_(config) {
  if (num_instances < 1) throw std::invalid_argument("cluster needs >= 1 instance");
  MutexLock lk(mu_);
  instances_.reserve(static_cast<std::size_t>(num_instances));
  for (int i = 0; i < num_instances; ++i) instances_.emplace_back(config);
}

void ClusterManager::report_tyolo_service(int id, double now_sec, int frames) {
  MutexLock lk(mu_);
  instances_.at(static_cast<std::size_t>(id)).admission.on_tyolo_served(now_sec, frames);
}

void ClusterManager::report_queue_over_threshold(int id, double now_sec) {
  MutexLock lk(mu_);
  instances_.at(static_cast<std::size_t>(id)).admission.on_queue_over_threshold(now_sec);
}

void ClusterManager::report_snapshot(int id, double now_sec,
                                     const InstanceSnapshot& snap) {
  MutexLock lk(mu_);
  auto& inst = instances_.at(static_cast<std::size_t>(id));

  // T-YOLO service rate from the cumulative counter's delta. A counter that
  // went backwards means the instance restarted — re-baseline without
  // feeding a bogus (huge or negative) delta into the window.
  const std::uint64_t served = snap.tyolo_served();
  if (inst.have_baseline && served >= inst.last_tyolo_served) {
    const std::uint64_t delta = served - inst.last_tyolo_served;
    // A zero delta is still an observation: an idle instance must age into
    // "spare" (has_spare_capacity requires a full observed window).
    inst.admission.on_tyolo_served(
        now_sec, static_cast<int>(std::min<std::uint64_t>(delta, 1u << 30)));
  }
  inst.last_tyolo_served = served;
  inst.have_baseline = true;

  // Section 4.3.1: "when any queue of T-YOLO or SNM is longer than its
  // predefined threshold ... the instance overloads". The engine's queues
  // are bounded at exactly these thresholds, so full == over-threshold.
  const auto snm_cap =
      static_cast<std::size_t>(config_.capacity(config_.snm_queue_depth));
  const auto tyolo_cap =
      static_cast<std::size_t>(config_.capacity(config_.tyolo_queue_depth));
  for (const auto& s : snap.streams) {
    if (s.snm_queue_depth >= snm_cap || s.tyolo_queue_depth >= tyolo_cap) {
      inst.admission.on_queue_over_threshold(now_sec);
      break;
    }
  }

  inst.healthy = snap.health.quarantined_streams == 0;
}

bool ClusterManager::instance_healthy(int id) const {
  MutexLock lk(mu_);
  return instances_.at(static_cast<std::size_t>(id)).healthy;
}

void ClusterManager::set_instance_health(int id, bool healthy) {
  MutexLock lk(mu_);
  instances_.at(static_cast<std::size_t>(id)).healthy = healthy;
}

void ClusterManager::attach_stream(int stream_id, int instance_id) {
  MutexLock lk(mu_);
  attach_stream_locked(stream_id, instance_id);
}

void ClusterManager::detach_stream(int stream_id) {
  MutexLock lk(mu_);
  detach_stream_locked(stream_id);
}

void ClusterManager::attach_stream_locked(int stream_id, int instance_id) {
  detach_stream_locked(stream_id);
  auto& inst = instances_.at(static_cast<std::size_t>(instance_id));
  inst.streams.push_back(stream_id);
  stream_home_[stream_id] = instance_id;
  // Membership changed: the instance's cumulative tyolo_served() sums over
  // its *current* streams, so a stream arriving with history shifts the
  // counter by that stream's accumulated tyolo_in. Without a reset the next
  // snapshot's delta is inflated by the whole history (and a departure that
  // later returns can push the delta negative, silently clamped) — so the
  // served-delta baseline restarts at the next report_snapshot.
  inst.have_baseline = false;
}

void ClusterManager::detach_stream_locked(int stream_id) {
  const auto it = stream_home_.find(stream_id);
  if (it == stream_home_.end()) return;
  auto& inst = instances_.at(static_cast<std::size_t>(it->second));
  auto& v = inst.streams;
  v.erase(std::remove(v.begin(), v.end(), stream_id), v.end());
  stream_home_.erase(it);
  // Same baseline reset as attach: the departing stream takes its
  // accumulated tyolo_in out of the instance's cumulative counter.
  inst.have_baseline = false;
}

int ClusterManager::instance_of(int stream_id) const {
  MutexLock lk(mu_);
  const auto it = stream_home_.find(stream_id);
  return it == stream_home_.end() ? -1 : it->second;
}

int ClusterManager::stream_count(int instance_id) const {
  MutexLock lk(mu_);
  return stream_count_locked(instance_id);
}

int ClusterManager::stream_count_locked(int instance_id) const {
  return static_cast<int>(
      instances_.at(static_cast<std::size_t>(instance_id)).streams.size());
}

bool ClusterManager::instance_overloaded(int id, double now_sec) const {
  MutexLock lk(mu_);
  return overloaded_locked(id, now_sec);
}

bool ClusterManager::overloaded_locked(int id, double now_sec) const {
  return instances_.at(static_cast<std::size_t>(id)).admission.overloaded(now_sec);
}

bool ClusterManager::instance_has_spare(int id, double now_sec) {
  MutexLock lk(mu_);
  return has_spare_locked(id, now_sec);
}

bool ClusterManager::has_spare_locked(int id, double now_sec) {
  auto& inst = instances_.at(static_cast<std::size_t>(id));
  return inst.healthy && !inst.admission.overloaded(now_sec) &&
         inst.admission.has_spare_capacity(now_sec);
}

std::optional<int> ClusterManager::place_new_stream(double now_sec) {
  MutexLock lk(mu_);
  int best = -1;
  for (int i = 0; i < num_instances(); ++i) {
    if (!has_spare_locked(i, now_sec)) continue;
    if (best < 0 || stream_count_locked(i) < stream_count_locked(best)) best = i;
  }
  if (best < 0) return std::nullopt;
  return best;
}

std::optional<ReforwardDecision> ClusterManager::next_reforward(double now_sec) {
  MutexLock lk(mu_);
  // Find the most-loaded instance needing relief — overloaded queues, or
  // unhealthy (quarantines): a sick instance is drained even while its
  // queues look fine — and a spare, healthy target.
  int from = -1;
  for (int i = 0; i < num_instances(); ++i) {
    if (!overloaded_locked(i, now_sec) &&
        instances_.at(static_cast<std::size_t>(i)).healthy) {
      continue;
    }
    if (stream_count_locked(i) == 0) continue;
    if (from < 0 || stream_count_locked(i) > stream_count_locked(from)) from = i;
  }
  if (from < 0) return std::nullopt;
  int to = -1;
  for (int i = 0; i < num_instances(); ++i) {
    if (i == from || !has_spare_locked(i, now_sec)) continue;
    if (to < 0 || stream_count_locked(i) < stream_count_locked(to)) to = i;
  }
  if (to < 0) return std::nullopt;

  ReforwardDecision d;
  d.from_instance = from;
  d.to_instance = to;
  d.stream_id = instances_[static_cast<std::size_t>(from)].streams.back();
  attach_stream_locked(d.stream_id, to);
  return d;
}

}  // namespace ffsva::core
