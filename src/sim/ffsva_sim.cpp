#include "sim/ffsva_sim.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "core/policies.hpp"
#include "sim/engine.hpp"
#include "telemetry/export.hpp"
#include "telemetry/spans.hpp"

namespace ffsva::sim {

namespace {

struct SimFrame {
  double arrival = 0.0;
  core::FilteredAt outcome = core::FilteredAt::kNone;
};

/// Model-id space for the GPU0 switch accounting: stream i's SNM has id i,
/// the shared T-YOLO has a single id past all SNMs.
constexpr std::int64_t kTyoloModelBase = 1'000'000;

/// Trace lanes for virtual-time spans (the simulator has no real threads,
/// so resources play the role of timeline rows).
constexpr std::uint32_t kLaneGpu0 = 1;
constexpr std::uint32_t kLaneGpu1 = 2;
constexpr std::uint32_t kLaneCpu = 3;

struct SimStream {
  int id = 0;
  std::unique_ptr<OutcomeSource> outcomes;
  SimQueue<SimFrame> sdd_q;
  SimQueue<SimFrame> snm_q;
  SimQueue<SimFrame> tyolo_q;
  std::int64_t emitted = 0;
  bool snm_done = false;
  SimStreamStats stats;

  SimStream(int id_, std::unique_ptr<OutcomeSource> out, const core::FfsVaConfig& cfg,
            bool online)
      : id(id_), outcomes(std::move(out)),
        sdd_q(online ? static_cast<std::size_t>(std::max(1, cfg.ingest_buffer))
                     : static_cast<std::size_t>(cfg.capacity(cfg.sdd_queue_depth))),
        snm_q(static_cast<std::size_t>(cfg.capacity(cfg.snm_queue_depth))),
        tyolo_q(static_cast<std::size_t>(cfg.capacity(cfg.tyolo_queue_depth))) {}
};

class FfsVaSimulation {
 public:
  explicit FfsVaSimulation(const SimSetup& setup)
      : setup_(setup),
        cpu_(engine_, setup.costs.cpu_cores, "cpu"),
        gpu0_(engine_, "gpu0"),
        gpu1_(engine_, "gpu1"),
        ref_q_(static_cast<std::size_t>(setup.config.capacity(setup.config.ref_queue_depth))),
        scheduler_(setup.config.num_tyolo),
        batcher_(setup.config.batch_policy, setup.config.batch_size,
                 setup.config.snm_queue_depth),
        admission_(setup.config.admit_tyolo_fps, setup.config.admit_window_sec) {
    for (int i = 0; i < setup.num_streams; ++i) {
      auto outcomes = setup.make_outcomes
                          ? setup.make_outcomes(i)
                          : std::make_unique<MarkovOutcomes>(
                                MarkovParams::for_tor(0.1), 17u + static_cast<unsigned>(i));
      streams_.push_back(std::make_unique<SimStream>(i, std::move(outcomes), setup.config,
                                                     setup.online));
      streams_.back()->tyolo_q.set_push_hook([this] { wake_tyolo(); });
    }
  }

  SimResult run() {
    for (auto& s : streams_) {
      if (setup_.online) {
        start_online_prefetch(*s);
      } else {
        offline_prefetch_next(*s);
      }
      sdd_loop(*s);
      snm_loop(*s);
    }
    ref_loop();
    wake_tyolo();
    if (setup_.metrics_sink != nullptr) {
      const double interval =
          std::max(1, setup_.metrics_interval_ms) * 1e-3;
      schedule_metrics_tick(interval, interval);
    }
    engine_.run();
    if (setup_.metrics_sink != nullptr) emit_metrics_row();  // closing state
    return collect();
  }

 private:
  // ----------------------------------------------------------- telemetry --
  /// Record one completed unit of simulated work as a span ending *now* in
  /// virtual time. No-op without a trace buffer.
  void record_span(const char* name, telemetry::Stage stage, int stream,
                   int batch, double exec_sec, std::uint32_t lane) {
    if (setup_.trace == nullptr) return;
    telemetry::Span sp;
    sp.name = name;
    sp.stage = stage;
    sp.stream = stream;
    sp.batch = batch;
    sp.t_end_us = static_cast<std::int64_t>(engine_.now() * 1e6);
    sp.t_start_us =
        sp.t_end_us - std::max<std::int64_t>(
                          1, static_cast<std::int64_t>(exec_sec * 1e6));
    sp.tid = lane;
    setup_.trace->record(sp);
  }

  /// Virtual-time sampler: the engine-exporter's JSONL schema driven by the
  /// simulation clock instead of a thread.
  void schedule_metrics_tick(double at, double interval) {
    engine_.at(at, [this, at, interval] {
      emit_metrics_row();
      if (!ref_closed_) schedule_metrics_tick(at + interval, interval);
    });
  }

  telemetry::MetricsSnapshot metrics_snapshot() const {
    telemetry::MetricsSnapshot s;
    std::int64_t sdd_in = 0, sdd_pass = 0, snm_in = 0, snm_pass = 0;
    std::int64_t ty_in = 0, ty_pass = 0, outputs = 0, dropped = 0;
    std::size_t q_sdd = 0, q_snm = 0, q_ty = 0;
    for (const auto& st : streams_) {
      sdd_in += st->stats.sdd_in;
      sdd_pass += st->stats.sdd_pass;
      snm_in += st->stats.snm_in;
      snm_pass += st->stats.snm_pass;
      ty_in += st->stats.tyolo_in;
      ty_pass += st->stats.tyolo_pass;
      outputs += st->stats.outputs;
      dropped += st->stats.dropped;
      q_sdd += st->sdd_q.depth();
      q_snm += st->snm_q.depth();
      q_ty += st->tyolo_q.depth();
    }
    const auto c = [&s](const char* name, std::int64_t v) {
      s.counters.emplace_back(name, static_cast<std::uint64_t>(v));
    };
    // Same names as the engine registry so downstream tooling reads both.
    c("drop.ingest", dropped);
    c("drop.sdd", sdd_in - sdd_pass);
    c("drop.snm", snm_in - snm_pass);
    c("drop.tyolo", ty_in - ty_pass);
    c("executor.snm_batches", snm_batches_);
    c("ref.passed", outputs);
    c("sdd.in", sdd_in);
    c("sdd.passed", sdd_pass);
    c("snm.in", snm_in);
    c("snm.passed", snm_pass);
    c("tyolo.in", ty_in);
    c("tyolo.passed", ty_pass);
    s.gauges.emplace_back("queue.ref", static_cast<double>(ref_q_.depth()));
    s.gauges.emplace_back("queue.sdd", static_cast<double>(q_sdd));
    s.gauges.emplace_back("queue.snm", static_cast<double>(q_snm));
    s.gauges.emplace_back("queue.tyolo", static_cast<double>(q_ty));
    return s;
  }

  void emit_metrics_row() {
    const double t = engine_.now();
    telemetry::MetricsSnapshot cur = metrics_snapshot();
    const double dt = t - last_metrics_t_;
    if (dt <= 0.0 && have_metrics_prev_) return;  // nothing elapsed
    *setup_.metrics_sink << telemetry::metrics_jsonl_row(
                                cur, have_metrics_prev_ ? &metrics_prev_ : nullptr,
                                t, dt, setup_.metrics_label)
                         << '\n';
    metrics_prev_ = std::move(cur);
    last_metrics_t_ = t;
    have_metrics_prev_ = true;
  }
  // ----------------------------------------------------------- prefetch --
  void start_online_prefetch(SimStream& s) {
    const double interval = 1.0 / setup_.config.online_fps;
    // Stagger stream phases slightly so arrivals don't align pathologically.
    const double phase = interval * (static_cast<double>(s.id) /
                                     std::max(1, setup_.num_streams));
    schedule_online_arrival(s, phase, interval);
  }

  void schedule_online_arrival(SimStream& s, double at, double interval) {
    engine_.at(at, [this, &s, at, interval] {
      if (s.emitted >= setup_.frames_per_stream || at > setup_.duration_sec) {
        s.sdd_q.close();
        return;
      }
      ++s.emitted;
      SimFrame f{engine_.now(), s.outcomes->next()};
      if (s.sdd_q.try_push(f)) {
        ++s.stats.ingested;
      } else {
        // A live camera cannot block: the frame is lost (overload signal).
        ++s.stats.dropped;
      }
      schedule_online_arrival(s, at + interval, interval);
    });
  }

  void offline_prefetch_next(SimStream& s) {
    if (s.emitted >= setup_.frames_per_stream) {
      s.sdd_q.close();
      return;
    }
    ++s.emitted;
    // Decode on a CPU core, then hand the frame to the SDD queue (blocking:
    // the decoder thread stalls while the pipeline is full — feedback).
    cpu_.submit(setup_.costs.decode_us * 1e-6, [this, &s] {
      record_span("decode", telemetry::Stage::kPrefetch, s.id, 0,
                  setup_.costs.decode_us * 1e-6, kLaneCpu);
      SimFrame f{engine_.now(), s.outcomes->next()};
      ++s.stats.ingested;
      s.sdd_q.push_wait(f, [this, &s] { offline_prefetch_next(s); });
    });
  }

  // ---------------------------------------------------------------- SDD --
  void sdd_loop(SimStream& s) {
    s.sdd_q.pop_wait([this, &s](std::optional<SimFrame> f) {
      if (!f) {
        s.snm_q.close();
        return;
      }
      ++s.stats.sdd_in;
      const double service =
          (setup_.costs.sdd.resize_us + setup_.costs.sdd.per_frame_us) * 1e-6;
      cpu_.submit(service, [this, &s, service, fr = *f] {
        record_span("sdd.filter", telemetry::Stage::kSdd, s.id, 0, service,
                    kLaneCpu);
        if (fr.outcome == core::FilteredAt::kSdd) {
          terminal(fr);
          sdd_loop(s);
        } else {
          ++s.stats.sdd_pass;
          s.snm_q.push_wait(fr, [this, &s] { sdd_loop(s); });
        }
      });
    });
  }

  // ---------------------------------------------------------------- SNM --
  int snm_wait_target() const {
    switch (setup_.config.batch_policy) {
      case core::BatchPolicy::kStatic:
        return setup_.config.batch_size;
      case core::BatchPolicy::kFeedback:
        return std::min(setup_.config.batch_size, setup_.config.snm_queue_depth);
      case core::BatchPolicy::kDynamic:
        return 1;
    }
    return 1;
  }

  void snm_loop(SimStream& s) {
    s.snm_q.wait_depth(static_cast<std::size_t>(snm_wait_target()),
                       [this, &s](std::size_t avail) {
      const auto decision = batcher_.next_batch(static_cast<int>(avail),
                                                s.snm_q.closed());
      if (decision.take <= 0) {
        if (s.snm_q.closed() && s.snm_q.depth() == 0) {
          s.snm_done = true;
          wake_tyolo();
          return;
        }
        // Spurious wake (e.g. closed with leftovers below target): retry.
        snm_loop(s);
        return;
      }
      auto batch = s.snm_q.pop_some(static_cast<std::size_t>(decision.take));
      snm_batches_ += 1;
      snm_batched_frames_ += static_cast<std::int64_t>(batch.size());
      const double exec_us =
          setup_.costs.snm.setup_us +
          static_cast<double>(batch.size()) *
              (setup_.costs.snm.per_frame_us + setup_.costs.snm.resize_us);
      gpu0_.submit(s.id, setup_.costs.snm.switch_ms, exec_us,
                   [this, &s, exec_us, batch = std::move(batch)]() mutable {
        record_span("snm.batch", telemetry::Stage::kSnm, s.id,
                    static_cast<int>(batch.size()), exec_us * 1e-6, kLaneGpu0);
        deliver_snm_outputs(s, std::move(batch), 0);
      });
    });
  }

  /// Push the surviving frames of a finished SNM batch into the T-YOLO
  /// queue one by one (each push may park on the bounded queue — feedback).
  void deliver_snm_outputs(SimStream& s, std::vector<SimFrame> batch, std::size_t i) {
    for (; i < batch.size(); ++i) {
      ++s.stats.snm_in;
      if (batch[i].outcome == core::FilteredAt::kSnm) {
        terminal(batch[i]);
        continue;
      }
      ++s.stats.snm_pass;
      SimFrame fr = batch[i];
      s.tyolo_q.push_wait(fr, [this, &s, batch = std::move(batch), i]() mutable {
        deliver_snm_outputs(s, std::move(batch), i + 1);
      });
      return;  // resumed by the continuation above
    }
    snm_loop(s);
  }

  // ------------------------------------------------------------- T-YOLO --
  void wake_tyolo() {
    if (tyolo_busy_) return;
    std::vector<int> depths(streams_.size(), 0);
    bool any_open = false;
    for (std::size_t i = 0; i < streams_.size(); ++i) {
      depths[i] = static_cast<int>(streams_[i]->tyolo_q.depth());
      if (!streams_[i]->snm_done || depths[i] > 0) any_open = true;
    }
    const auto pick = scheduler_.next(depths);
    if (pick.stream < 0) {
      if (!any_open && !ref_closed_) {
        if (std::getenv("FFSVA_SIM_DEBUG")) {
          std::fprintf(stderr, "[sim %.4f] closing ref_q; snm_done/depths:", engine_.now());
          for (std::size_t i = 0; i < streams_.size(); ++i) {
            std::fprintf(stderr, " %d/%d", (int)streams_[i]->snm_done,
                         (int)streams_[i]->tyolo_q.depth());
          }
          std::fprintf(stderr, "\n");
        }
        ref_closed_ = true;
        ref_q_.close();
      }
      return;  // push hooks / snm_done will wake us again
    }
    SimStream& s = *streams_[static_cast<std::size_t>(pick.stream)];
    // Mark busy BEFORE popping: pop_some admits parked producers, whose
    // push hook re-enters wake_tyolo — the guard above must already hold.
    tyolo_busy_ = true;
    auto batch = s.tyolo_q.pop_some(static_cast<std::size_t>(pick.take));
    assert(!batch.empty());
    const double exec_us =
        setup_.costs.tyolo.setup_us +
        static_cast<double>(batch.size()) *
            (setup_.costs.tyolo.per_frame_us + setup_.costs.tyolo.resize_us);
    gpu0_.submit(kTyoloModelBase, setup_.costs.tyolo.switch_ms, exec_us,
                 [this, &s, exec_us, batch = std::move(batch)]() mutable {
      record_span("tyolo.batch", telemetry::Stage::kTyolo, s.id,
                  static_cast<int>(batch.size()), exec_us * 1e-6, kLaneGpu0);
      tyolo_served_ += static_cast<std::int64_t>(batch.size());
      admission_.on_tyolo_served(engine_.now(), static_cast<int>(batch.size()));
      deliver_tyolo_outputs(s, std::move(batch), 0);
    });
  }

  void deliver_tyolo_outputs(SimStream& s, std::vector<SimFrame> batch, std::size_t i) {
    for (; i < batch.size(); ++i) {
      ++s.stats.tyolo_in;
      if (batch[i].outcome == core::FilteredAt::kTyolo) {
        terminal(batch[i]);
        continue;
      }
      ++s.stats.tyolo_pass;
      std::pair<int, SimFrame> entry{s.id, batch[i]};
      ref_q_.push_wait(entry, [this, &s, batch = std::move(batch), i]() mutable {
        deliver_tyolo_outputs(s, std::move(batch), i + 1);
      });
      return;
    }
    tyolo_busy_ = false;
    wake_tyolo();
  }

  // ---------------------------------------------------------- reference --
  void ref_loop() {
    ref_q_.pop_wait([this](std::optional<std::pair<int, SimFrame>> entry) {
      if (!entry) return;
      auto [stream_id, fr] = *entry;
      const double exec_us = setup_.costs.ref.setup_us +
                             setup_.costs.ref.per_frame_us +
                             setup_.costs.ref.resize_us;
      gpu1_.submit(0, setup_.costs.ref.switch_ms, exec_us,
                   [this, stream_id, exec_us, fr] {
        record_span("ref.detect", telemetry::Stage::kRef, stream_id, 0,
                    exec_us * 1e-6, kLaneGpu1);
        SimStream& s = *streams_[static_cast<std::size_t>(stream_id)];
        ++s.stats.outputs;
        const double latency_ms = (engine_.now() - fr.arrival) * 1e3;
        output_latency_.add(latency_ms);
        terminal_latency_.add(latency_ms);
        s.stats.finish_time_sec = engine_.now();
        ref_loop();
      });
    });
  }

  void terminal(const SimFrame& fr) {
    terminal_latency_.add((engine_.now() - fr.arrival) * 1e3);
  }

  // -------------------------------------------------------------- result --
  SimResult collect() {
    SimResult r;
    r.sim_time_sec = engine_.now();
    for (auto& s : streams_) {
      if (s->stats.finish_time_sec == 0.0) s->stats.finish_time_sec = engine_.now();
      r.streams.push_back(s->stats);
      r.total_ingested += s->stats.ingested;
      r.total_dropped += s->stats.dropped;
      r.total_outputs += s->stats.outputs;
    }
    const double arrived =
        static_cast<double>(r.total_ingested + r.total_dropped);
    r.drop_rate = arrived > 0 ? static_cast<double>(r.total_dropped) / arrived : 0.0;
    r.realtime = r.drop_rate <= 0.005;
    r.throughput_fps = r.sim_time_sec > 0
                           ? static_cast<double>(r.total_ingested) / r.sim_time_sec
                           : 0.0;
    r.output_latency_ms = output_latency_;
    r.terminal_latency_ms = terminal_latency_;
    r.gpu0_utilization = gpu0_.utilization();
    r.gpu1_utilization = gpu1_.utilization();
    r.cpu_utilization = cpu_.utilization();
    r.gpu0_model_switches = gpu0_.switches();
    r.tyolo_service_fps =
        r.sim_time_sec > 0 ? static_cast<double>(tyolo_served_) / r.sim_time_sec : 0.0;
    r.mean_snm_batch = snm_batches_ > 0
                           ? static_cast<double>(snm_batched_frames_) /
                                 static_cast<double>(snm_batches_)
                           : 0.0;
    return r;
  }

  SimSetup setup_;
  SimEngine engine_;
  KServerResource cpu_;
  GpuDevice gpu0_;
  GpuDevice gpu1_;
  SimQueue<std::pair<int, SimFrame>> ref_q_;
  core::TYoloScheduler scheduler_;
  core::DynamicBatcher batcher_;
  core::AdmissionController admission_;
  std::vector<std::unique_ptr<SimStream>> streams_;
  bool tyolo_busy_ = false;
  bool ref_closed_ = false;
  std::int64_t tyolo_served_ = 0;
  std::int64_t snm_batches_ = 0;
  std::int64_t snm_batched_frames_ = 0;
  runtime::Histogram output_latency_;
  runtime::Histogram terminal_latency_;
  telemetry::MetricsSnapshot metrics_prev_;
  double last_metrics_t_ = 0.0;
  bool have_metrics_prev_ = false;
};

}  // namespace

SimResult simulate_ffsva(const SimSetup& setup) {
  FfsVaSimulation sim(setup);
  return sim.run();
}

SimResult simulate_baseline(const SimSetup& setup) {
  SimEngine engine;
  KServerResource cpu(engine, setup.costs.cpu_cores, "cpu");
  // YOLOv2 on both GPUs, one shared frame queue (Section 2.3: a dual-GPU
  // server analyzes up to four concurrent streams with YOLOv2).
  KServerResource gpus(engine, 2, "gpus");
  SimQueue<SimFrame> q(8);
  SimResult result;
  result.streams.resize(static_cast<std::size_t>(setup.num_streams));

  runtime::Histogram latency;
  std::int64_t outputs = 0;
  const double per_frame_sec = (setup.costs.ref.setup_us +
                                setup.costs.ref.per_frame_us +
                                setup.costs.ref.resize_us) * 1e-6;

  // Consumer: both GPU servers drain the shared queue.
  std::function<void()> consume = [&] {
    q.pop_wait([&](std::optional<SimFrame> f) {
      if (!f) return;
      gpus.submit(per_frame_sec, [&, fr = *f] {
        ++outputs;
        latency.add((engine.now() - fr.arrival) * 1e3);
        consume();
      });
    });
  };
  consume();
  consume();  // two logical consumers, one per GPU

  int open_streams = setup.num_streams;
  for (int i = 0; i < setup.num_streams; ++i) {
    if (setup.online) {
      const double interval = 1.0 / setup.config.online_fps;
      const double phase = interval * (static_cast<double>(i) /
                                       std::max(1, setup.num_streams));
      std::shared_ptr<std::function<void(double)>> arrive =
          std::make_shared<std::function<void(double)>>();
      *arrive = [&, i, interval, arrive](double at) {
        engine.at(at, [&, i, interval, at, arrive] {
          auto& ss = result.streams[static_cast<std::size_t>(i)];
          if (ss.ingested + ss.dropped >= setup.frames_per_stream ||
              at > setup.duration_sec) {
            if (--open_streams == 0) q.close();
            return;
          }
          SimFrame f{engine.now(), core::FilteredAt::kNone};
          if (q.try_push(f)) {
            ++ss.ingested;
          } else {
            ++ss.dropped;
          }
          (*arrive)(at + interval);
        });
      };
      (*arrive)(phase);
    } else {
      // Offline: decode then push (blocking), per stream.
      std::shared_ptr<std::function<void()>> produce =
          std::make_shared<std::function<void()>>();
      *produce = [&, i, produce] {
        auto& ss = result.streams[static_cast<std::size_t>(i)];
        if (ss.ingested >= setup.frames_per_stream) {
          if (--open_streams == 0) q.close();
          return;
        }
        cpu.submit(setup.costs.decode_us * 1e-6, [&, i, produce] {
          auto& ss2 = result.streams[static_cast<std::size_t>(i)];
          SimFrame f{engine.now(), core::FilteredAt::kNone};
          ++ss2.ingested;
          q.push_wait(f, [produce] { (*produce)(); });
        });
      };
      (*produce)();
    }
  }

  engine.run();

  result.sim_time_sec = engine.now();
  for (auto& s : result.streams) {
    result.total_ingested += s.ingested;
    result.total_dropped += s.dropped;
    s.outputs = 0;  // per-stream split not tracked in the baseline
  }
  result.total_outputs = outputs;
  const double arrived = static_cast<double>(result.total_ingested + result.total_dropped);
  result.drop_rate =
      arrived > 0 ? static_cast<double>(result.total_dropped) / arrived : 0.0;
  result.realtime = result.drop_rate <= 0.005;
  result.throughput_fps = result.sim_time_sec > 0
                              ? static_cast<double>(result.total_ingested) /
                                    result.sim_time_sec
                              : 0.0;
  result.output_latency_ms = latency;
  result.terminal_latency_ms = latency;
  result.gpu1_utilization = gpus.utilization();
  result.cpu_utilization = cpu.utilization();
  return result;
}

int max_realtime_streams(const SimSetup& base, int lo, int hi, double max_drop_rate,
                         bool baseline) {
  auto sustains = [&](int n) {
    SimSetup s = base;
    s.num_streams = n;
    const SimResult r = baseline ? simulate_baseline(s) : simulate_ffsva(s);
    return r.drop_rate <= max_drop_rate;
  };
  if (!sustains(lo)) return lo - 1;
  while (lo < hi) {
    const int mid = (lo + hi + 1) / 2;
    if (sustains(mid)) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

}  // namespace ffsva::sim
