// Lock-free metrics registry: named counters, gauges, and histograms whose
// hot-path recording is wait-free, allocation-free, and contention-sharded,
// with snapshot-on-demand merge for samplers and control planes.
//
// The engine's control decisions (feedback throttling, `num_tyolo`
// scheduling, Section 4.3.1 re-forwarding) all hinge on runtime signals —
// queue depths, per-stage service rates, drop rates — that must be
// observable *while the pipeline runs*, at a cost the pipeline cannot feel.
// The design follows the usual production-telemetry split:
//
//  * Counter   — monotonic event count. add() is one relaxed fetch_add on a
//    per-thread shard cell (cache-line padded, thread slot assigned once per
//    thread), so concurrent writers never touch the same cache line;
//    value() merges the shards with relaxed loads. Totals are exact once
//    writers quiesce and monotonically non-decreasing while they run.
//  * Gauge     — an instantaneous value polled at snapshot time via a
//    callback (a queue depth, a cumulative counter kept elsewhere as an
//    atomic). Registering costs a lock; the hot path never sees a gauge.
//  * AtomicHistogram — log-bucketed distribution (the exact bucketing
//    scheme of runtime::Histogram) over shared atomic buckets. record() is
//    two relaxed fetch_adds plus CAS min/max — lock-free and alloc-free;
//    batch-size and service-time distributions record at batch rate, so
//    bucket contention is negligible.
//
// Registration (counter()/gauge()/histogram()) takes the registry mutex and
// may allocate; callers hold the returned reference, which stays valid for
// the registry's lifetime. snapshot() walks everything under the same mutex
// and returns plain merged values.
//
// relaxed-ok: counter shards, histogram buckets, and min/max cells are
// independent monotonic accumulators; snapshot() is documented approximate
// while writers run and exact once they quiesce (a join edge, not an
// ordering edge, makes it exact).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/annotations.hpp"
#include "runtime/stats.hpp"

namespace ffsva::telemetry {

/// Small dense id for the calling thread, assigned on first use. Shared by
/// every sharded metric (and the trace recorder's tid), so one process has
/// one stable thread numbering.
std::uint32_t thread_slot();

/// Monotonic event counter, sharded to keep concurrent writers off each
/// other's cache lines.
class Counter {
 public:
  static constexpr std::size_t kShards = 16;

  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  /// Wait-free, alloc-free; safe from any thread.
  void add(std::uint64_t n = 1) {
    cells_[thread_slot() % kShards].v.fetch_add(n, std::memory_order_relaxed);
  }

  /// Merged total. Exact once writers quiesce; while they run, a sum that
  /// never decreases and never exceeds the true count at read completion.
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const auto& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Cell, kShards> cells_;
};

/// Instantaneous value, read via callback at snapshot time only.
class Gauge {
 public:
  using Fn = std::function<double()>;

  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set_fn(Fn fn) { fn_ = std::move(fn); }
  double value() const { return fn_ ? fn_() : 0.0; }

 private:
  Fn fn_;
};

/// Plain merged view of one histogram at snapshot time.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::vector<std::uint64_t> buckets;  ///< runtime::Histogram bucketing.

  double mean() const { return count ? sum / static_cast<double>(count) : 0.0; }
  /// Same semantics as runtime::Histogram::quantile (bucket representative
  /// clamped into [min, max]).
  double quantile(double q) const;
  /// Fold another snapshot into this one (same bucketing scheme by
  /// construction). Used to aggregate per-stream histograms at report time.
  void merge(const HistogramSnapshot& other);
};

/// Log-bucketed histogram over shared atomic buckets. record() is lock-free
/// and alloc-free from any thread; snapshot() is a relaxed walk that is
/// exact once writers quiesce.
class AtomicHistogram {
 public:
  AtomicHistogram();
  AtomicHistogram(const AtomicHistogram&) = delete;
  AtomicHistogram& operator=(const AtomicHistogram&) = delete;

  void record(double value);
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  HistogramSnapshot snapshot() const;

 private:
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// Everything the registry holds, merged into plain values. Entries are
/// sorted by name.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  std::uint64_t counter_or(std::string_view name, std::uint64_t fallback = 0) const;
  double gauge_or(std::string_view name, double fallback = 0.0) const;
  const HistogramSnapshot* histogram(std::string_view name) const;
};

/// Named metric registry. Handles returned by counter()/gauge()/histogram()
/// are stable for the registry's lifetime; repeated registration of a name
/// returns the same instance (a gauge's callback is replaced if a new one
/// is supplied).
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string& name) FFSVA_EXCLUDES(mu_);
  Gauge& gauge(const std::string& name, Gauge::Fn fn = nullptr)
      FFSVA_EXCLUDES(mu_);
  AtomicHistogram& histogram(const std::string& name) FFSVA_EXCLUDES(mu_);

  /// Merge every metric into plain values. Safe concurrently with recording
  /// (counters/histograms are relaxed reads); gauge callbacks run on the
  /// calling thread and must themselves be thread-safe.
  MetricsSnapshot snapshot() const FFSVA_EXCLUDES(mu_);

 private:
  // Held across gauge callbacks in snapshot(): anything a callback locks
  // (queue depths, pool state) must rank higher than this.
  mutable runtime::Mutex mu_{runtime::rank::kTelemetryRegistry,
                             "telemetry::Registry::mu_"};
  std::map<std::string, std::unique_ptr<Counter>> counters_ FFSVA_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ FFSVA_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<AtomicHistogram>> histograms_
      FFSVA_GUARDED_BY(mu_);
};

}  // namespace ffsva::telemetry
