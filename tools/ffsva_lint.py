#!/usr/bin/env python3
"""Project-specific concurrency lint for the FFS-VA tree.

Six rules, each enforcing a structural invariant the compiler cannot:

  raw-thread         std::thread may only appear under src/runtime/ (the
                     supervised-thread vocabulary lives there). Elsewhere a
                     site must carry a `// thread-ok: <reason>` marker — the
                     per-stream prefetch threads and the baseline harness in
                     core/pipeline.cpp are the intended users.

  relaxed-order      std::memory_order_relaxed is only legal in files whose
                     header carries a `// relaxed-ok: <reason>` audit
                     paragraph explaining where the happens-before edge
                     comes from instead.

  unbounded-channel  std::queue / std::deque declarations must carry a
                     `// bounded-ok: <reason>` marker saying why the
                     container cannot grow without bound (or is not an
                     inter-thread channel at all). Back-pressure is the
                     paper's central mechanism; an unbounded channel would
                     silently defeat it.

  naked-detach       .detach() may only appear under src/runtime/supervision
                     or with a `// detach-ok: <reason>` marker. The engine
                     joins every thread it starts (DESIGN.md Section 14);
                     a detach hides a lifetime from the supervisor.

  raw-socket         Raw socket syscalls (::socket/::bind/::connect/
                     ::accept/::send/::recv/...) may only appear under
                     src/net/ — the tree's single home for the syscall
                     surface (net/socket.hpp declares the invariant).
                     Elsewhere a site must carry a `// socket-ok: <reason>`
                     marker; everything above src/net/ speaks framed
                     messages through net::Channel, so a stray syscall
                     bypasses the wire protocol, its version gate, and the
                     net.* byte accounting.

  uncancellable-block  std::this_thread::sleep_for/sleep_until must sit
                     within MARKER_WINDOW lines of a cancellation check
                     (cancel_requested / check_cancel / stop_requested /
                     aborted / cancelled) or carry a `// cancel-ok: <reason>`
                     marker saying why the block is bounded without one. A
                     worker loop that sleeps blind cannot be wound down by
                     stop() or the watchdog's escalation (DESIGN.md
                     Section 14).

A marker counts when it appears on the flagged line or within the
MARKER_WINDOW preceding lines, and must be followed by a non-empty reason.
Markers without a reason are themselves violations (bare-marker).

Rules are matched against a *code view* of each file: string/char literal
contents, // comments, and /* */ blocks are blanked out first, so a
"::connect" inside a log message or a std::thread in a design comment
never needs a marker. Markers themselves are matched against the raw
lines — they live in comments by design.

Usage:
  tools/ffsva_lint.py [--root DIR] [paths...]   # default: scan DIR/src
  tools/ffsva_lint.py --self-test               # verify rules on fixtures

Exit codes: 0 clean, 1 violations found, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass

MARKER_WINDOW = 6  # lines above a site in which a marker still applies
RELAXED_HEADER_LINES = 40  # relaxed-ok must appear this early in the file

CPP_EXTENSIONS = (".cpp", ".cc", ".cxx", ".hpp", ".hh", ".h", ".inl")

MARKER_RE = {
    "thread-ok": re.compile(r"//.*\bthread-ok:\s*(\S.*)?"),
    "relaxed-ok": re.compile(r"//.*\brelaxed-ok:\s*(\S.*)?"),
    "bounded-ok": re.compile(r"//.*\bbounded-ok:\s*(\S.*)?"),
    "detach-ok": re.compile(r"//.*\bdetach-ok:\s*(\S.*)?"),
    "cancel-ok": re.compile(r"//.*\bcancel-ok:\s*(\S.*)?"),
    "socket-ok": re.compile(r"//.*\bsocket-ok:\s*(\S.*)?"),
}


@dataclass
class Violation:
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_code(text: str) -> list[str]:
    """Per-line *code view* of a translation unit: string/char literal
    contents, line comments, and block comments are blanked with spaces
    (newlines preserved), so rule regexes never fire on `log("::connect")`
    or on tokens inside a /* ... */ paragraph. The quotes themselves are
    kept so adjacent tokens stay separated. Raw strings (R"delim(...)delim")
    are handled; markers are matched against the *raw* lines, never this
    view, since they live in comments by design."""
    out: list[str] = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    delim = ""  # raw-string delimiter, ')delim"' form, when in a raw string
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "\n":
            out.append("\n")
            if state == "line_comment":
                state = "code"
            i += 1
            continue
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == '"':
                # Raw string? Scan back over the prefix for R (u8R, LR, ...).
                j = i - 1
                while j >= 0 and text[j] in "uUL8":
                    j -= 1
                if j >= 0 and text[j] == "R":
                    k = text.find("(", i + 1)
                    if k < 0:
                        out.append(c)
                        i += 1
                        continue
                    delim = ")" + text[i + 1 : k] + '"'
                    state = "raw_string"
                    out.append('"')
                    i = k + 1
                else:
                    state = "string"
                    out.append('"')
                    i += 1
            elif c == "'":
                state = "char"
                out.append("'")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state in ("line_comment", "block_comment"):
            if state == "block_comment" and c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append(" ")
                i += 1
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                if nxt == "\n":  # line continuation: keep the newline
                    out.append(" ")
                    i += 1
                else:
                    out.append("  ")
                    i += 2
            elif c == quote:
                state = "code"
                out.append(quote)
                i += 1
            else:
                out.append(" ")
                i += 1
        else:  # raw_string
            if text.startswith(delim, i):
                state = "code"
                out.append(" " * (len(delim) - 1) + '"')
                i += len(delim)
            else:
                out.append(" ")
                i += 1
    return "".join(out).splitlines()


def has_marker(lines: list[str], idx: int, marker: str) -> bool:
    """True when `marker` (with a reason) covers line index `idx` (0-based)."""
    pat = MARKER_RE[marker]
    lo = max(0, idx - MARKER_WINDOW)
    for probe in lines[lo : idx + 1]:
        m = pat.search(probe)
        if m and m.group(1):
            return True
    return False


def marker_without_reason(lines: list[str]) -> list[tuple[int, str]]:
    """(line_index, marker) pairs for markers that carry no reason."""
    out = []
    for i, line in enumerate(lines):
        for marker, pat in MARKER_RE.items():
            m = pat.search(line)
            if m and not m.group(1):
                out.append((i, marker))
    return out


THREAD_RE = re.compile(r"\bstd::thread\b(?!::)")  # ::hardware_concurrency ok
RELAXED_RE = re.compile(r"\bmemory_order_relaxed\b")
CHANNEL_RE = re.compile(r"\bstd::(?:queue|deque)\s*<")
DETACH_RE = re.compile(r"\.\s*detach\s*\(")
SLEEP_RE = re.compile(r"\bsleep_(?:for|until)\s*\(")
# Global-scope socket syscalls only: the lookbehind rejects qualified names
# (net::Channel::send definitions are not syscalls).
SOCKET_RE = re.compile(
    r"(?<![\w>])::(?:socket|bind|connect|accept4?|listen|send|recv|sendto|"
    r"recvfrom|sendmsg|recvmsg|shutdown|getsockopt|setsockopt)\s*\("
)
CANCEL_CHECK_RE = re.compile(
    r"\b(?:cancel_requested|check_cancel|cancelled|stop_requested|aborted)\b"
)


def has_cancel_check(code_lines: list[str], idx: int) -> bool:
    """True when a cancellation check appears in the *code view* (comments
    and strings blanked) of line `idx` or the MARKER_WINDOW lines above it —
    the shape of every sliced polling loop in the tree."""
    lo = max(0, idx - MARKER_WINDOW)
    return any(
        CANCEL_CHECK_RE.search(probe) for probe in code_lines[lo : idx + 1]
    )


def scan_file(relpath: str, text: str) -> list[Violation]:
    """Lint one file. `relpath` is the repo-relative path (forward slashes);
    path-based exemptions key off it."""
    relpath = relpath.replace(os.sep, "/")
    lines = text.splitlines()
    # Rules match the code view (strings/comments blanked); markers match
    # the raw lines (they live in comments).
    code_lines = strip_code(text)
    out: list[Violation] = []

    in_runtime = relpath.startswith("src/runtime/")
    in_supervision = relpath.startswith("src/runtime/supervision")
    in_net = relpath.startswith("src/net/")

    relaxed_headered = any(
        MARKER_RE["relaxed-ok"].search(line) for line in lines[:RELAXED_HEADER_LINES]
    )

    for i in range(len(lines)):
        code = code_lines[i] if i < len(code_lines) else ""
        lineno = i + 1

        if not in_runtime and THREAD_RE.search(code):
            if not has_marker(lines, i, "thread-ok"):
                out.append(
                    Violation(
                        relpath,
                        lineno,
                        "raw-thread",
                        "std::thread outside src/runtime/ without a "
                        "'// thread-ok: <reason>' marker",
                    )
                )

        if RELAXED_RE.search(code) and not relaxed_headered:
            out.append(
                Violation(
                    relpath,
                    lineno,
                    "relaxed-order",
                    "memory_order_relaxed in a file without a "
                    f"'// relaxed-ok: <reason>' header (first "
                    f"{RELAXED_HEADER_LINES} lines)",
                )
            )

        if CHANNEL_RE.search(code) and not has_marker(lines, i, "bounded-ok"):
            out.append(
                Violation(
                    relpath,
                    lineno,
                    "unbounded-channel",
                    "std::queue/std::deque without a "
                    "'// bounded-ok: <reason>' marker",
                )
            )

        if not in_supervision and DETACH_RE.search(code):
            if not has_marker(lines, i, "detach-ok"):
                out.append(
                    Violation(
                        relpath,
                        lineno,
                        "naked-detach",
                        ".detach() outside supervision without a "
                        "'// detach-ok: <reason>' marker",
                    )
                )

        if not in_net and SOCKET_RE.search(code):
            if not has_marker(lines, i, "socket-ok"):
                out.append(
                    Violation(
                        relpath,
                        lineno,
                        "raw-socket",
                        "raw socket syscall outside src/net/ without a "
                        "'// socket-ok: <reason>' marker",
                    )
                )

        if SLEEP_RE.search(code):
            if not has_cancel_check(code_lines, i) and not has_marker(
                lines, i, "cancel-ok"
            ):
                out.append(
                    Violation(
                        relpath,
                        lineno,
                        "uncancellable-block",
                        "blocking sleep with no cancellation check within "
                        f"{MARKER_WINDOW} lines and no "
                        "'// cancel-ok: <reason>' marker",
                    )
                )

    for i, marker in marker_without_reason(lines):
        out.append(
            Violation(
                relpath,
                i + 1,
                "bare-marker",
                f"'{marker}:' marker with no reason — say why",
            )
        )

    return out


def collect_files(root: str, paths: list[str]) -> list[str]:
    """Expand files/directories into a sorted list of C++ sources."""
    found: list[str] = []
    for p in paths:
        full = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isfile(full):
            found.append(full)
        elif os.path.isdir(full):
            for dirpath, dirnames, filenames in os.walk(full):
                dirnames.sort()
                for name in sorted(filenames):
                    if name.endswith(CPP_EXTENSIONS):
                        found.append(os.path.join(dirpath, name))
        else:
            raise FileNotFoundError(p)
    return found


def run_lint(root: str, paths: list[str]) -> int:
    violations: list[Violation] = []
    for path in collect_files(root, paths):
        rel = os.path.relpath(path, root)
        with open(path, encoding="utf-8", errors="replace") as fh:
            violations.extend(scan_file(rel, fh.read()))
    for v in violations:
        print(v)
    if violations:
        print(f"ffsva_lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    return 0


# ---------------------------------------------------------------------------
# Self-test: every rule must fire on its seeded fixture and stay silent on
# the clean fixture. Fixture files live in tests/lint/fixtures/ and are
# scanned under fake src/-relative paths so the path exemptions engage.


def self_test(root: str) -> int:
    fixtures = os.path.join(root, "tests", "lint", "fixtures")
    # fixture file -> (pretend relpath, exactly-expected rule ids)
    cases = {
        "bad_thread.cpp": ("src/core/bad_thread.cpp", {"raw-thread"}),
        "bad_relaxed.cpp": ("src/core/bad_relaxed.cpp", {"relaxed-order"}),
        "bad_queue.hpp": ("src/core/bad_queue.hpp", {"unbounded-channel"}),
        "bad_detach.cpp": ("src/core/bad_detach.cpp", {"naked-detach"}),
        "bad_marker.cpp": ("src/core/bad_marker.cpp", {"bare-marker"}),
        "bad_sleep.cpp": ("src/core/bad_sleep.cpp", {"uncancellable-block"}),
        "bad_socket.cpp": ("src/core/bad_socket.cpp", {"raw-socket"}),
        "good_socket.cpp": ("src/core/good_socket.cpp", set()),
        "good_sleep.cpp": ("src/core/good_sleep.cpp", set()),
        "clean.cpp": ("src/core/clean.cpp", set()),
        # Rule tokens inside string literals / block comments are data, not
        # code — the code-view pass must keep every rule silent.
        "good_string_literal.cpp": ("src/core/good_string_literal.cpp", set()),
        "good_block_comment.cpp": ("src/core/good_block_comment.cpp", set()),
        # The same thread fixture under src/runtime/ must pass: the rule is
        # a location rule, not a token ban.
        "bad_thread.cpp#runtime": ("src/runtime/bad_thread.cpp", set()),
        # Same for sockets: the syscalls are legal in their one home.
        "bad_socket.cpp#net": ("src/net/bad_socket.cpp", set()),
    }
    failures = 0
    for key, (relpath, expected) in cases.items():
        fname = key.split("#")[0]
        with open(os.path.join(fixtures, fname), encoding="utf-8") as fh:
            got = {v.rule for v in scan_file(relpath, fh.read())}
        if got != expected:
            print(
                f"self-test FAILED: {fname} as {relpath}: "
                f"expected rules {sorted(expected)}, got {sorted(got)}",
                file=sys.stderr,
            )
            failures += 1
    if failures:
        return 1
    print(f"ffsva_lint self-test: {len(cases)} fixture cases ok")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root", default=None, help="repo root (default: parent of tools/)"
    )
    parser.add_argument(
        "--self-test", action="store_true", help="verify the rules on fixtures"
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to scan (default: src)"
    )
    args = parser.parse_args(argv)

    root = args.root or os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    if args.self_test:
        return self_test(root)
    try:
        return run_lint(root, args.paths or ["src"])
    except FileNotFoundError as exc:
        print(f"ffsva_lint: no such path: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
