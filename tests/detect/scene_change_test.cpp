#include "detect/scene_change.hpp"

#include <gtest/gtest.h>

#include "runtime/rng.hpp"

namespace ffsva::detect {
namespace {

SceneChangeConfig fast_config() {
  SceneChangeConfig c;
  c.window_frames = 100;
  c.confirm_frames = 50;
  c.floor_factor = 4.0;
  c.floor_offset = 8.0;
  return c;
}

TEST(SceneChange, QuietStreamNeverTriggers) {
  SceneChangeMonitor mon(fast_config(), 5.0);
  runtime::Xoshiro256 rng(1);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_FALSE(mon.observe(rng.uniform(2.0, 8.0)));
  }
  EXPECT_FALSE(mon.triggered());
}

TEST(SceneChange, ContentSpikesDoNotTrigger) {
  // Busy traffic: big transient distances, but background frames between
  // scenes keep pulling the floor down.
  SceneChangeMonitor mon(fast_config(), 5.0);
  runtime::Xoshiro256 rng(2);
  for (int i = 0; i < 3000; ++i) {
    // 60-frame scenes with distance ~300, 20-frame gaps at ~4.
    const bool in_scene = (i % 80) < 60;
    EXPECT_FALSE(mon.observe(in_scene ? rng.uniform(200.0, 400.0)
                                      : rng.uniform(2.0, 6.0)));
  }
}

TEST(SceneChange, SustainedShiftTriggersOnce) {
  SceneChangeMonitor mon(fast_config(), 5.0);
  runtime::Xoshiro256 rng(3);
  for (int i = 0; i < 300; ++i) mon.observe(rng.uniform(2.0, 6.0));
  // Camera bumped: even the emptiest frames now measure ~120.
  int fired_at = -1;
  for (int i = 0; i < 1000; ++i) {
    if (mon.observe(rng.uniform(120.0, 200.0)) && fired_at < 0) fired_at = i;
  }
  EXPECT_GE(fired_at, 0);
  EXPECT_TRUE(mon.triggered());
  // Fires after the window flushes the old floor + the confirmation span.
  EXPECT_LE(fired_at, 100 + 50 + 5);
  // Does not fire a second time.
  for (int i = 0; i < 500; ++i) EXPECT_FALSE(mon.observe(150.0));
}

TEST(SceneChange, ResetRearmsAgainstNewLevel) {
  SceneChangeMonitor mon(fast_config(), 5.0);
  for (int i = 0; i < 400; ++i) mon.observe(150.0);
  EXPECT_TRUE(mon.triggered());
  // Re-specialized for the new viewpoint: 150 is the new normal.
  mon.reset(150.0);
  EXPECT_FALSE(mon.triggered());
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(mon.observe(150.0));
  // A second bump triggers again.
  bool fired = false;
  for (int i = 0; i < 400; ++i) fired = mon.observe(2000.0) || fired;
  EXPECT_TRUE(fired);
}

TEST(SceneChange, FloorTracksWindowMinimum) {
  SceneChangeConfig cfg = fast_config();
  cfg.window_frames = 4;
  SceneChangeMonitor mon(cfg, 5.0);
  mon.observe(10.0);  // index 0
  mon.observe(3.0);   // index 1
  mon.observe(7.0);   // index 2
  EXPECT_DOUBLE_EQ(mon.floor(), 3.0);
  mon.observe(9.0);   // index 3: window [0..3]
  mon.observe(8.0);   // index 4: window [1..4], 3.0 still inside
  EXPECT_DOUBLE_EQ(mon.floor(), 3.0);
  mon.observe(11.0);  // index 5: window [2..5], the 3.0 expired
  EXPECT_DOUBLE_EQ(mon.floor(), 7.0);
}

TEST(SceneChange, NoTriggerBeforeWindowFills) {
  SceneChangeMonitor mon(fast_config(), 5.0);
  // Elevated from the very first frame, but the first `window+confirm`
  // region must pass before firing.
  int fired_at = -1;
  for (int i = 0; i < 400 && fired_at < 0; ++i) {
    if (mon.observe(500.0)) fired_at = i;
  }
  EXPECT_GE(fired_at, 100 + 50 - 2);
}

}  // namespace
}  // namespace ffsva::detect
